package coemu_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"coemu"
	"coemu/internal/service"
)

// Differential tests for the predicted-quiescence cycle batching and
// the channel loopback fast path. The contract under test: every
// modeled metric — the virtual-time ledger with its per-category
// charge counts, all behavioral counters (rollbacks included), channel
// statistics, LOB peak, histograms — is bit-identical whatever the
// batch cap, and whether packets really cross the wire codec or take
// the in-process loopback. The comparison serializes reports through
// the service's deterministic JSON view and requires byte equality.

// batchSweep is the batch-cap grid: 1 (batching disabled — the
// single-step reference), a boundary value, a prime that misaligns
// with every workload gap, and the default.
var batchSweep = []int{1, 2, 7, 64}

// exampleSpecs loads every examples/*/spec.json.
func exampleSpecs(t *testing.T) map[string]*coemu.Spec {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("examples", "*", "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example specs found")
	}
	specs := make(map[string]*coemu.Spec, len(paths))
	for _, p := range paths {
		sp, err := coemu.LoadSpec(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		specs[filepath.Base(filepath.Dir(p))] = sp
	}
	return specs
}

// runSpec executes a compiled spec with the given config overrides and
// returns the deterministic JSON projection of its report plus the raw
// report for targeted assertions.
func runSpec(t *testing.T, sp *coemu.Spec, mutate func(*coemu.Config)) ([]byte, *coemu.Report) {
	t.Helper()
	d, cfg, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := coemu.Run(d, cfg, sp.Run.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(service.NewReportView(rep))
	if err != nil {
		t.Fatal(err)
	}
	return b, rep
}

// TestBatchSweepBitIdentical sweeps the batch cap over every example
// spec and asserts bit-identical reports — and, explicitly, identical
// rollback counts — against the single-step reference (CycleBatch=1).
func TestBatchSweepBitIdentical(t *testing.T) {
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			want, wantRep := runSpec(t, sp, func(c *coemu.Config) { c.CycleBatch = 1 })
			for _, k := range batchSweep[1:] {
				got, gotRep := runSpec(t, sp, func(c *coemu.Config) { c.CycleBatch = k })
				if gotRep.Stats.Rollbacks != wantRep.Stats.Rollbacks {
					t.Errorf("K=%d: %d rollbacks, single-step has %d",
						k, gotRep.Stats.Rollbacks, wantRep.Stats.Rollbacks)
				}
				if string(got) != string(want) {
					t.Errorf("K=%d report differs from single-step:\nK=%d: %s\nK=1:  %s", k, k, got, want)
				}
			}
		})
	}
}

// runDesign executes a closure-built design and returns the
// deterministic JSON projection of its report plus the raw report.
func runDesign(t *testing.T, d coemu.Design, cfg coemu.Config, cycles int64) ([]byte, *coemu.Report) {
	t.Helper()
	rep, err := coemu.Run(d, cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(service.NewReportView(rep))
	if err != nil {
		t.Fatal(err)
	}
	return b, rep
}

// TestBatchSweepBitIdenticalIdleHeavy is the non-vacuous half of the
// differential suite: the example specs are busy workloads on which
// the fast path rarely fires, so this sweep runs an idle-heavy gapped
// stream (the BenchmarkCycleBatching design) where most cycles batch,
// asserts the fast path really fired, and still requires bit-identical
// reports against the single-step reference.
func TestBatchSweepBitIdenticalIdleHeavy(t *testing.T) {
	const cycles = 20000
	for _, mode := range []coemu.Mode{coemu.ALS, coemu.SLA, coemu.Auto, coemu.Conservative} {
		t.Run(mode.String(), func(t *testing.T) {
			want, _ := runDesign(t, gappedStreamDesign(48),
				coemu.Config{Mode: mode, CycleBatch: 1}, cycles)
			for _, k := range batchSweep[1:] {
				got, rep := runDesign(t, gappedStreamDesign(48),
					coemu.Config{Mode: mode, CycleBatch: k}, cycles)
				if rep.Stats.BatchedCycles == 0 {
					t.Errorf("K=%d: fast path never fired on the idle-heavy design; the differential is vacuous", k)
				}
				if string(got) != string(want) {
					t.Errorf("K=%d report differs from single-step:\nK=%d: %s\nK=1:  %s", k, k, got, want)
				}
			}
		})
	}
}

// TestBatchSweepBitIdenticalUnderInjectedFaults repeats the sweep with
// the fault injector active (accuracy pinned below 1), the regime
// where follow-up batching must disable itself so the injector draws
// its per-check randomness cycle by cycle.
func TestBatchSweepBitIdenticalUnderInjectedFaults(t *testing.T) {
	sp := exampleSpecs(t)["quickstart"]
	inject := func(c *coemu.Config) { c.Accuracy = 0.9; c.FaultSeed = 41 }
	want, wantRep := runSpec(t, sp, func(c *coemu.Config) { inject(c); c.CycleBatch = 1 })
	if wantRep.Stats.Rollbacks == 0 {
		t.Fatal("injector produced no rollbacks; the sweep would prove nothing")
	}
	for _, k := range batchSweep[1:] {
		got, _ := runSpec(t, sp, func(c *coemu.Config) { inject(c); c.CycleBatch = k })
		if string(got) != string(want) {
			t.Errorf("K=%d report differs from single-step under injected faults", k)
		}
	}
}

// TestBatchSweepBitIdenticalUnderAdaptiveGovernor pins the governor
// interaction: on the cycle where the misprediction EWMA decays across
// the adaptive threshold, the seed's leader choice was made under
// back-off (predictors never consulted) while the next single-step
// choice would consult them — a stretch must never batch across that
// edge. The scenario forces frequent governor flips (injected faults)
// on an idle-heavy stream where conservative stretches batch hard.
func TestBatchSweepBitIdenticalUnderAdaptiveGovernor(t *testing.T) {
	const cycles = 50000
	cfgFor := func(k int) coemu.Config {
		return coemu.Config{Mode: coemu.ALS, PredictIdle: true, Adaptive: true,
			Accuracy: 0.5, FaultSeed: 9, CycleBatch: k}
	}
	want, wantRep := runDesign(t, gappedStreamDesign(48), cfgFor(1), cycles)
	if wantRep.Stats.Rollbacks == 0 || wantRep.Stats.ConservativeCycles == 0 {
		t.Fatal("scenario exercises neither the governor nor rollbacks; it would prove nothing")
	}
	for _, k := range batchSweep[1:] {
		got, rep := runDesign(t, gappedStreamDesign(48), cfgFor(k), cycles)
		if rep.Stats.BatchedCycles == 0 {
			t.Errorf("K=%d: fast path never fired", k)
		}
		if string(got) != string(want) {
			t.Errorf("K=%d report differs from single-step under the adaptive governor", k)
		}
	}
}

// TestWireCodecDifferential pins the loopback fast path against the
// real wire codec: forcing every packet through pack/unpack must yield
// byte-identical reports on every example, for both the single-step
// and the batched engine.
func TestWireCodecDifferential(t *testing.T) {
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []int{1, 64} {
				loop, _ := runSpec(t, sp, func(c *coemu.Config) { c.CycleBatch = k })
				wire, _ := runSpec(t, sp, func(c *coemu.Config) { c.CycleBatch = k; c.WirePackets = true })
				if string(loop) != string(wire) {
					t.Errorf("K=%d: loopback report differs from wire-codec report:\nloopback: %s\nwire:     %s", k, loop, wire)
				}
			}
		})
	}
}

// TestBatchedTraceEquivalence runs the most idle-heavy example with
// tracing and the protocol checker on, at batched and single-step
// caps, and requires cycle-identical traces — the batched path must
// reproduce not just the metrics but the committed MSABS stream.
func TestBatchedTraceEquivalence(t *testing.T) {
	sp := exampleSpecs(t)["multimaster"]
	d, cfg, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg.KeepTrace = true
	cfg.CheckProtocol = true
	cycles := int64(5000)

	cfg.CycleBatch = 1
	single, err := coemu.Run(d, cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg.CycleBatch = 64
	batched, err := coemu.Run(d2, cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Trace) != len(batched.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(single.Trace), len(batched.Trace))
	}
	for i := range single.Trace {
		if !single.Trace[i].Equal(batched.Trace[i]) {
			t.Fatalf("trace diverged at cycle %d", i)
		}
	}
}
