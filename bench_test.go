// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus host-side throughput benchmarks of the
// library itself.
//
//	go test -bench=. -benchmem
//
// Modeled quantities (the paper's metrics) are attached to each
// benchmark as custom metrics:
//
//	modeled-kcyc/s   simulation performance on the virtual clock
//	gain-x           speedup over the conventional baseline
//
// while ns/op measures the host cost of reproducing the experiment.
package coemu_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"coemu"
	"coemu/internal/device"
	"coemu/internal/perfmodel"
)

// parMap computes f(0..n-1) on a worker pool and returns the results in
// index order — the cmd/sweep -j pattern. Engine runs are independent
// and single-threaded, so DES sweeps scale with cores while their
// deterministic outputs stay ordered.
func parMap[T any](n int, f func(i int) T) []T {
	res := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return res
}

// streamDesign is the canonical ALS configuration: an RTL write-stream
// master in the accelerator, a TL memory in the simulator.
func streamDesign() coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name:   "dma",
			Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
					coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name:   "mem",
			Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
}

// slaDesign flips the placement so the simulator is the data source.
func slaDesign() coemu.Design {
	d := streamDesign()
	d.Masters[0].Domain = coemu.SimDomain
	d.Slaves[0].Domain = coemu.AccDomain
	return d
}

const benchCycles = 5000

// runModeled executes one engine run per iteration — spread across a
// worker pool, since runs are independent and deterministic — and
// reports the modeled performance metrics. ns/op therefore measures
// pooled wall time per run; the single-thread host numbers live in
// BenchmarkHostThroughput, which stays serial on purpose.
func runModeled(b *testing.B, d coemu.Design, cfg coemu.Config, conv float64) {
	b.Helper()
	var mu sync.Mutex
	var rep *coemu.Report
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := coemu.Run(d, cfg, benchCycles)
			if err != nil {
				b.Error(err)
				return
			}
			mu.Lock()
			rep = r
			mu.Unlock()
		}
	})
	if rep == nil {
		b.Fatal("no run completed")
	}
	b.ReportMetric(rep.Perf()/1e3, "modeled-kcyc/s")
	if conv > 0 {
		b.ReportMetric(rep.Perf()/conv, "gain-x")
	}
}

// conventionalPerf computes the conventional baseline once.
func conventionalPerf(b *testing.B, d coemu.Design) float64 {
	b.Helper()
	rep, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative}, benchCycles)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Perf()
}

// BenchmarkChannelCharacterization regenerates E1 (paper §1.2): the
// per-access cost and effective bandwidth of the layered transport for
// representative payload sizes.
func BenchmarkChannelCharacterization(b *testing.B) {
	stack := device.IPROVE()
	for _, words := range []int{1, 5, 64, 1024} {
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				cost = stack.AccessCost(device.SimToAcc, words).Seconds()
			}
			b.ReportMetric(cost*1e6, "modeled-us/access")
			b.ReportMetric(stack.EffectiveBandwidth(device.SimToAcc, words)/1e6, "modeled-Mwords/s")
			b.ReportMetric(100*stack.StartupFraction(device.SimToAcc, words), "startup-%")
		})
	}
}

// BenchmarkConventionalBaseline regenerates the paper's 38.9 kcycles/s
// conventional figure on the executable engine.
func BenchmarkConventionalBaseline(b *testing.B) {
	runModeled(b, streamDesign(), coemu.Config{Mode: coemu.Conservative}, 0)
}

// BenchmarkTable2ALS regenerates E2 (Table 2): the executable engine
// swept over the published accuracy grid in ALS mode with the paper's
// 1000 rollback variables.
func BenchmarkTable2ALS(b *testing.B) {
	d := streamDesign()
	conv := conventionalPerf(b, d)
	for _, p := range []float64{1.000, 0.990, 0.960, 0.900, 0.800, 0.600, 0.300, 0.100} {
		b.Run(fmt.Sprintf("p=%.3f", p), func(b *testing.B) {
			runModeled(b, d, coemu.Config{
				Mode: coemu.ALS, Accuracy: p, FaultSeed: 12345, RollbackVars: 1000,
			}, conv)
		})
	}
}

// BenchmarkFigure4Sweep regenerates E3 (Figure 4): the four
// (simulator speed × LOB depth) configurations at three representative
// accuracies each.
//
// LOB depths are scaled ×4 versus the paper's 64/8: the paper's model
// assumes 2 LOB words per run-ahead cycle while this engine's real wire
// encoding needs ~7-8, so depths 256/32 reproduce the paper's run-ahead
// spans (M=32 and M=4). See EXPERIMENTS.md.
func BenchmarkFigure4Sweep(b *testing.B) {
	d := streamDesign()
	cfgs := []struct {
		sim float64
		lob int
	}{{1e5, 256}, {1e5, 32}, {1e6, 256}, {1e6, 32}}
	// The four conventional baselines are independent DES runs: compute
	// them on the worker pool before the measured sub-benchmarks start.
	convs := parMap(len(cfgs), func(i int) float64 {
		rep, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative, SimSpeed: cfgs[i].sim}, benchCycles)
		if err != nil {
			b.Error(err)
			return 0
		}
		return rep.Perf()
	})
	for i, cfg := range cfgs {
		conv := convs[i]
		if conv == 0 {
			b.Fatal("baseline run failed")
		}
		for _, p := range []float64{1, 0.9, 0.5} {
			name := fmt.Sprintf("sim=%.0fk/lob=%d/p=%.1f", cfg.sim/1e3, cfg.lob, p)
			b.Run(name, func(b *testing.B) {
				runModeled(b, d, coemu.Config{
					Mode: coemu.ALS, SimSpeed: cfg.sim, LOBDepth: cfg.lob,
					Accuracy: p, FaultSeed: 7, RollbackVars: 1000,
				}, conv)
			})
		}
	}
}

// BenchmarkSLASweep regenerates E4 (§6 SLA results): simulator-led runs
// at the two published simulator speeds.
func BenchmarkSLASweep(b *testing.B) {
	d := slaDesign()
	sims := []float64{1e5, 1e6}
	convs := parMap(len(sims), func(i int) float64 {
		rep, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative, SimSpeed: sims[i]}, benchCycles)
		if err != nil {
			b.Error(err)
			return 0
		}
		return rep.Perf()
	})
	for i, sim := range sims {
		conv := convs[i]
		if conv == 0 {
			b.Fatal("baseline run failed")
		}
		for _, p := range []float64{1, 0.9, 0.7} {
			b.Run(fmt.Sprintf("sim=%.0fk/p=%.1f", sim/1e3, p), func(b *testing.B) {
				runModeled(b, d, coemu.Config{
					Mode: coemu.SLA, SimSpeed: sim,
					Accuracy: p, FaultSeed: 7, RollbackVars: 1000,
				}, conv)
			})
		}
	}
}

// BenchmarkHeadlineAnalytic regenerates E5 plus the analytic Table 2 /
// Figure 4 computations themselves (they are what the paper actually
// published).
func BenchmarkHeadlineAnalytic(b *testing.B) {
	b.Run("table2", func(b *testing.B) {
		var rows []coemu.AnalyticRow
		for i := 0; i < b.N; i++ {
			rows = coemu.Table2()
		}
		b.ReportMetric(rows[0].Perf/1e3, "modeled-kcyc/s")
		b.ReportMetric(rows[0].Ratio, "gain-x")
	})
	b.Run("figure4", func(b *testing.B) {
		var s []coemu.Figure4Series
		for i := 0; i < b.N; i++ {
			s = coemu.Figure4()
		}
		b.ReportMetric(s[2].Rows[0].Perf/1e3, "modeled-kcyc/s")
	})
	b.Run("headline", func(b *testing.B) {
		var g float64
		for i := 0; i < b.N; i++ {
			g = coemu.HeadlineGainPercent()
		}
		b.ReportMetric(g, "gain-%")
	})
	b.Run("sla-breakeven", func(b *testing.B) {
		var r []coemu.SLAResult
		for i := 0; i < b.N; i++ {
			r = coemu.SLAClaims()
		}
		b.ReportMetric(r[1].BreakEven*100, "breakeven-%")
	})
	_ = perfmodel.Default()
}

// readStreamDesign puts the master in the simulator reading from an
// accelerator memory, the topology where remote address-phase
// prediction (and its extensions) is on the critical path.
func readStreamDesign() coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name:   "rdr",
			Domain: coemu.SimDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, false,
					coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name:   "mem",
			Domain: coemu.AccDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
}

// BenchmarkAblation quantifies the design choices DESIGN.md calls out:
// the prediction extensions beyond the paper (idle continuation,
// stride-predicted burst starts) and the adaptive mode governor.
func BenchmarkAblation(b *testing.B) {
	d := readStreamDesign()
	conv := conventionalPerf(b, d)
	cases := []struct {
		name string
		cfg  coemu.Config
	}{
		{"als-paper", coemu.Config{Mode: coemu.ALS}},
		{"als+predict-idle", coemu.Config{Mode: coemu.ALS, PredictIdle: true}},
		{"als+predict-starts", coemu.Config{Mode: coemu.ALS, PredictBurstStarts: true}},
		{"als+both", coemu.Config{Mode: coemu.ALS, PredictIdle: true, PredictBurstStarts: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			runModeled(b, d, c.cfg, conv)
		})
	}
	// Governor ablation at hostile accuracy: plain ALS drops below the
	// conventional baseline; the governor holds the floor near it.
	ds := streamDesign()
	convS := conventionalPerf(b, ds)
	b.Run("governor-off/p=0.05", func(b *testing.B) {
		runModeled(b, ds, coemu.Config{Mode: coemu.ALS, Accuracy: 0.05, FaultSeed: 8}, convS)
	})
	b.Run("governor-on/p=0.05", func(b *testing.B) {
		runModeled(b, ds, coemu.Config{Mode: coemu.ALS, Accuracy: 0.05, FaultSeed: 8, Adaptive: true}, convS)
	})
}

// gappedStreamDesign is the idle-heavy ALS split: INCR8 write bursts
// separated by long generator gaps, so most target cycles are
// provably quiescent — the workload the predicted-quiescence cycle
// batching exists for.
func gappedStreamDesign(gap int) coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name:   "dma",
			Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
					coemu.BurstIncr8, coemu.Size32, 0, gap, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name:   "mem",
			Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
}

// BenchmarkCycleBatching is the batched-vs-unbatched A/B of PR 3,
// serial on purpose (its metric is single-thread host speed). The
// idle-stream pairs isolate the predicted-quiescence fast path
// (CycleBatch=1 disables it; modeled metrics are bit-identical either
// way); the busy-stream pair isolates the channel loopback against the
// forced wire codec on a workload where batching never fires.
func BenchmarkCycleBatching(b *testing.B) {
	cases := []struct {
		name string
		d    coemu.Design
		cfg  coemu.Config
	}{
		{"idle-stream/als/batch=1", gappedStreamDesign(48), coemu.Config{Mode: coemu.ALS, CycleBatch: 1}},
		{"idle-stream/als/batch=64", gappedStreamDesign(48), coemu.Config{Mode: coemu.ALS}},
		{"idle-stream/conservative/batch=1", gappedStreamDesign(48), coemu.Config{Mode: coemu.Conservative, CycleBatch: 1}},
		{"idle-stream/conservative/batch=64", gappedStreamDesign(48), coemu.Config{Mode: coemu.Conservative}},
		{"busy-stream/als/wire-codec", streamDesign(), coemu.Config{Mode: coemu.ALS, WirePackets: true}},
		{"busy-stream/als/loopback", streamDesign(), coemu.Config{Mode: coemu.ALS}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var batched int64
			for i := 0; i < b.N; i++ {
				rep, err := coemu.Run(c.d, c.cfg, benchCycles)
				if err != nil {
					b.Fatal(err)
				}
				batched = rep.Stats.BatchedCycles
			}
			b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
			b.ReportMetric(float64(batched), "batched-cyc")
		})
	}
}

// multimasterDesign compiles the multimaster example spec once; the
// compiled design builds fresh component instances per engine run, so
// it is safe to reuse across benchmark iterations.
func multimasterDesign(b *testing.B) (coemu.Design, coemu.Config) {
	b.Helper()
	s, err := coemu.LoadSpec("examples/multimaster/spec.json")
	if err != nil {
		b.Fatal(err)
	}
	d, cfg, err := s.Compile()
	if err != nil {
		b.Fatal(err)
	}
	return d, cfg
}

// BenchmarkHostThroughput measures the library's real (host) speed:
// target cycles simulated per host second, for the reference bus, the
// conservative engine and the optimistic engine.
func BenchmarkHostThroughput(b *testing.B) {
	d := streamDesign()
	b.Run("reference-bus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coemu.RunReference(d, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
	b.Run("conservative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative}, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
	b.Run("als", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coemu.Run(d, coemu.Config{Mode: coemu.ALS}, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
	b.Run("als-rollback-heavy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := coemu.Config{Mode: coemu.ALS, Accuracy: 0.5, FaultSeed: 3}
			if _, err := coemu.Run(d, cfg, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
	b.Run("als-workers4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coemu.Run(d, coemu.Config{Mode: coemu.ALS, Workers: 4}, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
	// multimaster is the parallel cycle loop's target workload: four
	// masters split across both buses, so Workers=4 engages the domain
	// pipeline and the per-bus drive fan-out. The workers4 variants back
	// the benchdiff scaling gate (see BENCH_baseline.json "scaling"):
	// on a multi-core runner workers=4 must beat workers=1 by the
	// configured floor, while workers=1 stays inside the plain
	// regression envelope.
	mmd, mmCfg := multimasterDesign(b)
	b.Run("multimaster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coemu.Run(mmd, mmCfg, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
	b.Run("multimaster-workers4", func(b *testing.B) {
		cfg := mmCfg
		cfg.Workers = 4
		for i := 0; i < b.N; i++ {
			if _, err := coemu.Run(mmd, cfg, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
	// rollback-storm mirrors examples/rollback-storm part 1: organic
	// mispredictions from a jittery slave the wait model cannot track,
	// so rollback and roll-forth dominate without the fault injector.
	b.Run("rollback-storm", func(b *testing.B) {
		dj := coemu.Design{
			Masters: []coemu.MasterSpec{{
				Name:   "dma",
				Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
						coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
				},
			}},
			Slaves: []coemu.SlaveSpec{{
				Name:      "flaky",
				Domain:    coemu.SimDomain,
				Region:    coemu.Region{Lo: 0, Hi: 0x80000},
				New:       func() coemu.Slave { return coemu.NewJitterMemory("flaky", 1, 2, 7) },
				WaitFirst: 1, WaitNext: 1,
			}},
		}
		for i := 0; i < b.N; i++ {
			if _, err := coemu.Run(dj, coemu.Config{Mode: coemu.ALS}, benchCycles); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
	})
}
