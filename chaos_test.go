package coemu_test

import (
	"encoding/json"
	"errors"
	"testing"

	"coemu"
	"coemu/internal/channel"
	"coemu/internal/faultplan"
	"coemu/internal/service"
)

// Differential tests for channel fault injection. The contract: fault
// injection is a host-side chaos surface — a run that survives its
// faults (duplicates dropped, delays absorbed) produces the
// byte-identical report of a fault-free run, and a fault the protocol
// cannot absorb (bit corruption) surfaces as a clean typed error, not
// silent divergence.

// TestChannelFaultsBitIdentical runs every example spec with an
// aggressive survivable plan (every frame duplicated, some delayed)
// and requires byte-identical reports against the plain wire-codec
// run.
func TestChannelFaultsBitIdentical(t *testing.T) {
	plan := &faultplan.ChannelFault{Duplicate: 1, Delay: 0.01, MaxDelayUS: 5}
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			want, _ := runSpec(t, sp, func(c *coemu.Config) { c.WirePackets = true })
			got, _ := runSpec(t, sp, func(c *coemu.Config) {
				c.ChannelFaults = plan
				c.ChannelFaultSeed = 7
			})
			if string(got) != string(want) {
				t.Errorf("faulted report differs from fault-free:\nfaulted: %s\nclean:   %s", got, want)
			}
		})
	}
}

// TestChannelFaultCorruptionSurfaces forces a bit flip on the first
// frame and requires the run to fail with the frame-corruption
// sentinel instead of diverging.
func TestChannelFaultCorruptionSurfaces(t *testing.T) {
	sp := exampleSpecs(t)["quickstart"]
	d, cfg, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg.ChannelFaults = &faultplan.ChannelFault{Corrupt: 1}
	_, err = coemu.Run(d, cfg, sp.Run.Cycles)
	if !errors.Is(err, channel.ErrFrameCorrupt) {
		t.Fatalf("run err = %v, want channel.ErrFrameCorrupt", err)
	}
}

// TestChannelFaultsDeterministic pins the seed contract: the same plan
// and seed either survive identically or fail identically, run after
// run.
func TestChannelFaultsDeterministic(t *testing.T) {
	sp := exampleSpecs(t)["quickstart"]
	run := func() (string, string) {
		d, cfg, err := sp.Compile()
		if err != nil {
			t.Fatal(err)
		}
		cfg.ChannelFaults = &faultplan.ChannelFault{Corrupt: 0.002, Duplicate: 0.5}
		cfg.ChannelFaultSeed = 1234
		rep, err := coemu.Run(d, cfg, sp.Run.Cycles)
		if err != nil {
			return "", err.Error()
		}
		b, err := json.Marshal(service.NewReportView(rep))
		if err != nil {
			t.Fatal(err)
		}
		return string(b), ""
	}
	rep1, err1 := run()
	rep2, err2 := run()
	if rep1 != rep2 || err1 != err2 {
		t.Fatalf("seeded fault runs diverged:\nrun1: rep=%q err=%q\nrun2: rep=%q err=%q", rep1, rep2, err1, err2)
	}
}
