// Command benchdiff is the benchmark-regression gate run by CI: it
// parses `go test -bench` output, extracts a custom throughput metric
// (target-cyc/s by default), and compares it against a checked-in
// baseline, failing when any benchmark regresses beyond the allowed
// fraction.
//
//	go test -run '^$' -bench ... -benchtime=500ms -count=3 | tee bench.out
//	benchdiff -baseline BENCH_baseline.json -out BENCH_ci.json bench.out
//
// When a benchmark appears several times (-count > 1), the best run is
// kept — the maximum throughput a machine demonstrates is its least
// noisy estimate.
//
//	benchdiff -update -baseline BENCH_baseline.json bench.out
//
// rewrites the baseline from the given output instead of comparing
// (the baseline's scaling rules are preserved).
//
// Besides the absolute comparison, the baseline may carry "scaling"
// rules — intra-run ratio gates of the form
// current[bench] >= floor * current[base]. Both sides come from the
// same run, so the rules assert machine-independent properties like
// parallel speedup (a workers=4 benchmark beating its workers=1
// sibling). -scaling=false skips them, e.g. on a single-core host
// where no speedup is possible.
//
// Exit status: 0 on success, 1 on regressions, baseline benchmarks
// missing from the current run, or failed scaling rules; 2 on
// usage/parse errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Results is the JSON schema of BENCH_baseline.json and BENCH_ci.json:
// the compared metric plus one best-run value per benchmark.
type Results struct {
	// Metric is the bench unit the values were extracted from.
	Metric string `json:"metric"`
	// Benchmarks maps the benchmark name (without the "Benchmark"
	// prefix and the -procs suffix) to its best observed metric value.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Scaling holds intra-run ratio assertions: each rule requires the
	// CURRENT run's Bench value to reach at least Floor times the
	// CURRENT run's Base value. Unlike the baseline comparison, both
	// sides come from the same run on the same machine, so the rules
	// gate relative properties (e.g. parallel speedup) that absolute
	// baselines cannot: a workers=4 benchmark must beat its workers=1
	// sibling by the floor wherever the gate runs, regardless of how
	// fast the machine is. Rules ride in the baseline file and are
	// preserved by -update.
	Scaling []ScalingRule `json:"scaling,omitempty"`
	// Comparison is only present in -out files: the per-benchmark
	// verdicts against the baseline.
	Comparison []Verdict `json:"comparison,omitempty"`
	// MaxRegress is only present in -out files: the allowed fractional
	// regression the run was gated on.
	MaxRegress float64 `json:"max_regress,omitempty"`
}

// ScalingRule is one intra-run ratio gate: current[Bench] must be at
// least current[Base] * Floor.
type ScalingRule struct {
	Bench string  `json:"bench"`
	Base  string  `json:"base"`
	Floor float64 `json:"floor"`
}

// Verdict is one benchmark's comparison against the baseline.
type Verdict struct {
	Name     string  `json:"name"`
	Current  float64 `json:"current"`
	Baseline float64 `json:"baseline"`
	// Ratio is current/baseline: 1.0 means parity, below
	// 1-MaxRegress means the gate fails.
	Ratio      float64 `json:"ratio"`
	Regression bool    `json:"regression"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON file to compare against (or rewrite with -update)")
	out := flag.String("out", "", "write the current results (with comparison) to this JSON file")
	metric := flag.String("metric", "target-cyc/s", "bench metric unit to extract")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional regression before failing")
	update := flag.Bool("update", false, "rewrite -baseline from the parsed output instead of comparing")
	scaling := flag.Bool("scaling", true, "evaluate the baseline's intra-run scaling rules (disable on single-core hosts)")
	flag.Parse()

	if flag.NArg() > 1 {
		fatalf(2, "usage: benchdiff [flags] [bench-output.txt]")
	}
	var in io.Reader = os.Stdin
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf(2, "%v", err)
		}
		defer f.Close()
		in = f
	}

	current, err := parseBench(in, *metric)
	if err != nil {
		fatalf(2, "%v", err)
	}
	if len(current.Benchmarks) == 0 {
		fatalf(2, "no benchmarks with a %q metric in the input", *metric)
	}

	if *update {
		if *baseline == "" {
			fatalf(2, "-update requires -baseline")
		}
		// Re-baselining refreshes the measured values; the scaling rules
		// are policy, not measurement, and carry over unchanged.
		if prev, err := readResults(*baseline); err == nil {
			current.Scaling = prev.Scaling
		}
		if err := writeResults(*baseline, current); err != nil {
			fatalf(2, "%v", err)
		}
		fmt.Printf("baseline %s updated with %d benchmarks\n", *baseline, len(current.Benchmarks))
		return
	}

	if *baseline == "" {
		fatalf(2, "-baseline is required (or use -update to create one)")
	}
	base, err := readResults(*baseline)
	if err != nil {
		fatalf(2, "%v", err)
	}
	if base.Metric != "" && base.Metric != current.Metric {
		fatalf(2, "baseline metric %q does not match -metric %q", base.Metric, current.Metric)
	}

	verdicts, missing, news := compare(base, current, *maxRegress)
	current.Comparison = verdicts
	current.MaxRegress = *maxRegress
	if *out != "" {
		if err := writeResults(*out, current); err != nil {
			fatalf(2, "%v", err)
		}
	}

	failed := false
	for _, v := range verdicts {
		status := "ok"
		if v.Regression {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-60s %12.0f -> %12.0f  (%.3fx) %s\n",
			v.Name, v.Baseline, v.Current, v.Ratio, status)
	}
	for _, name := range news {
		fmt.Printf("%-60s %25.0f  NEW (no baseline; add with -update)\n",
			name, current.Benchmarks[name])
	}
	for _, name := range missing {
		fmt.Printf("%-60s missing from the current run\n", name)
		failed = true
	}
	if *scaling {
		for _, rule := range base.Scaling {
			ok, msg := checkScaling(rule, current.Benchmarks)
			fmt.Println(msg)
			if !ok {
				failed = true
			}
		}
	} else if len(base.Scaling) > 0 {
		fmt.Printf("scaling rules skipped (-scaling=false): %d rules not evaluated\n", len(base.Scaling))
	}
	if failed {
		fatalf(1, "benchmark gate failed (allowed regression %.0f%%)", *maxRegress*100)
	}
	fmt.Printf("benchmark gate passed: %d benchmarks within %.0f%% of baseline (%d new)\n",
		len(verdicts), *maxRegress*100, len(news))
}

// checkScaling evaluates one intra-run ratio rule. A rule whose
// benchmarks are absent from the current run fails — like a missing
// baseline benchmark, a scaling gate that silently stops measuring is
// no gate.
func checkScaling(rule ScalingRule, current map[string]float64) (bool, string) {
	bench, okB := current[rule.Bench]
	base, okA := current[rule.Base]
	switch {
	case !okB || !okA:
		which := rule.Bench
		if okB {
			which = rule.Base
		}
		return false, fmt.Sprintf("scaling %s >= %.2fx %-30s SKIPPED: %s missing from the current run",
			rule.Bench, rule.Floor, rule.Base, which)
	case base <= 0:
		return false, fmt.Sprintf("scaling %s >= %.2fx %-30s FAILED: base value %.0f", rule.Bench, rule.Floor, rule.Base, base)
	}
	ratio := bench / base
	if ratio < rule.Floor {
		return false, fmt.Sprintf("scaling %-40s %.3fx of %s  (floor %.2fx) FAILED",
			rule.Bench, ratio, rule.Base, rule.Floor)
	}
	return true, fmt.Sprintf("scaling %-40s %.3fx of %s  (floor %.2fx) ok",
		rule.Bench, ratio, rule.Base, rule.Floor)
}

// parseBench extracts the chosen metric from `go test -bench` output,
// keeping each benchmark's best run.
func parseBench(r io.Reader, metric string) (*Results, error) {
	res := &Results{Metric: metric, Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := normalizeName(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad %s value %q", name, metric, fields[i])
			}
			if v > res.Benchmarks[name] {
				res.Benchmarks[name] = v
			}
		}
	}
	return res, sc.Err()
}

// normalizeName strips the Benchmark prefix and the -procs suffix.
func normalizeName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// compare gates every baseline benchmark against the current run.
// Benchmarks present in the run but absent from the baseline are new:
// they are reported (so the operator knows to re-baseline with
// -update) but never fail the gate — a fresh benchmark must be able to
// land in the same change as its code. Benchmarks missing from the
// current run are reported as failures — a silently shrinking gate is
// no gate.
func compare(base, current *Results, maxRegress float64) (verdicts []Verdict, missing, news []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := current.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		v := Verdict{Name: name, Current: c, Baseline: b}
		if b > 0 {
			v.Ratio = c / b
			v.Regression = v.Ratio < 1-maxRegress
		}
		verdicts = append(verdicts, v)
	}
	for name := range current.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			news = append(news, name)
		}
	}
	sort.Strings(news)
	return verdicts, missing, news
}

func readResults(path string) (*Results, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res Results
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &res, nil
}

func writeResults(path string, res *Results) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(code)
}
