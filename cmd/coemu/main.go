// Command coemu runs one co-emulation scenario and prints the full
// virtual-time report: the Table 2-style per-cycle cost breakdown,
// behavioral counters, channel statistics and transition-length
// distribution.
//
//	coemu -mode als -workload stream -cycles 50000
//	coemu -mode auto -workload duplex -accuracy 0.9 -lob 128
//	coemu -spec examples/quickstart/spec.json
//
// With -spec, the design, configuration and cycle budget all come from
// the declarative JSON spec (see internal/spec) and the other scenario
// flags are ignored.
//
// With -remote-domain addr (requires -spec), the run goes
// cross-process: the accelerator domain is hosted by a
// `coemud -domain-serve addr` process, the spec ships in the connect
// handshake, and both processes run mirrored lockstep engines over the
// TCP channel (see internal/remote). The printed report is
// bit-identical to the in-process run. If the spec sets
// run.measured_latency, the client also samples the real link RTT and
// prints a masked-performance estimate — what the prediction
// packetizing would deliver against the measured link instead of the
// modeled channel — to stderr.
//
// With -trace-out trace.json, the run records its protocol events —
// conservative stretches, run-ahead and follow-up spans, rollbacks,
// channel flushes — into a ring buffer (-trace-ring bounds it) and
// writes a Chrome trace_event file at exit; load it in Perfetto or
// chrome://tracing to see the engine's cycle-level schedule. Tracing is
// a pure observer: the report is bit-identical with and without it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"coemu"
	"coemu/internal/channel"
	"coemu/internal/ip"
	"coemu/internal/remote"
	"coemu/internal/trace"
	"coemu/internal/vclock"
	"coemu/internal/workload"
)

func main() {
	mode := flag.String("mode", "als", "conservative|sla|als|auto")
	wl := flag.String("workload", "stream", "stream|readback|duplex|random|script")
	scriptPath := flag.String("script", "", "transfer script for -workload script (see workload.ParseScript)")
	cycles := flag.Int64("cycles", 50000, "target cycles")
	simSpeed := flag.Float64("sim", 1e6, "simulator speed (cycles/s)")
	accSpeed := flag.Float64("acc", 1e7, "accelerator speed (cycles/s)")
	lob := flag.Int("lob", 64, "LOB depth (words)")
	accuracy := flag.Float64("accuracy", 1, "pinned prediction accuracy (1 = organic)")
	seed := flag.Uint64("seed", 1, "workload / fault seed")
	vars := flag.Int("vars", 0, "rollback variable override (0 = actual)")
	predictIdle := flag.Bool("predict-idle", false, "extension: predict idle continuation of remote masters")
	predictStarts := flag.Bool("predict-starts", false, "extension: predict burst starts by stride")
	adaptive := flag.Bool("adaptive", false, "extension: adaptive conservative fallback governor")
	workers := flag.Int("workers", 0, "engine worker goroutines (0 = spec/default, 1 = sequential; reports are bit-identical at any width)")
	specPath := flag.String("spec", "", "run a declarative JSON spec file (ignores the scenario flags)")
	remoteDomain := flag.String("remote-domain", "", "dial a `coemud -domain-serve` accelerator-domain host at this TCP address and run -spec cross-process")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event file (Perfetto-loadable) of the run's protocol events")
	traceRing := flag.Int("trace-ring", 0, "protocol trace ring capacity in events (0 = default)")
	flag.Parse()

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(*traceRing)
	}

	if *remoteDomain != "" {
		if *specPath == "" {
			fmt.Fprintln(os.Stderr, "-remote-domain requires -spec: the spec ships to the domain host in the handshake")
			os.Exit(2)
		}
		s, err := coemu.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res, err := remote.Run(context.Background(), *remoteDomain, s, remote.RunOptions{Tracer: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		print(res.Report)
		st := res.Transport
		fmt.Fprintf(os.Stderr, "transport: %d frames sent, %d received, %d retransmits, %d resyncs, %d reconnects\n",
			st.Sent, st.Received, st.Retransmits, st.Resyncs, st.Reconnects)
		if m := res.Measured; m != nil {
			fmt.Fprintf(os.Stderr, "measured link: rtt mean %v p99 %v (%d samples)\n", m.RTTMean, m.RTTP99, m.Samples)
			fmt.Fprintf(os.Stderr, "masked performance against measured link: %.0f cyc/s\n", m.MaskedPerf)
		}
		if rec != nil {
			// Fold the transport's connect/resync/retransmit events into
			// the protocol trace so the wire shows up as its own track.
			for _, ev := range res.Events {
				rec.Record(ev)
			}
		}
		writeTrace(*traceOut, rec)
		return
	}

	if *specPath != "" {
		s, err := coemu.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		d, cfg, err := s.Compile()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Tracer = rec
		if *workers > 0 {
			cfg.Workers = *workers
		}
		rep, err := coemu.Run(d, cfg, s.Run.Cycles)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		print(rep)
		writeTrace(*traceOut, rec)
		return
	}

	m, ok := map[string]coemu.Mode{
		"conservative": coemu.Conservative,
		"sla":          coemu.SLA,
		"als":          coemu.ALS,
		"auto":         coemu.Auto,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var design coemu.Design
	if *wl == "script" {
		var err error
		design, err = scriptDesign(*scriptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		var ok bool
		design, ok = designs(*seed)[*wl]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			os.Exit(2)
		}
	}

	cfg := coemu.Config{
		Mode: m, SimSpeed: *simSpeed, AccSpeed: *accSpeed,
		LOBDepth: *lob, Accuracy: *accuracy, FaultSeed: *seed,
		RollbackVars: *vars,
		PredictIdle:  *predictIdle, PredictBurstStarts: *predictStarts,
		Adaptive: *adaptive,
		Tracer:   rec,
		Workers:  *workers,
	}
	rep, err := coemu.Run(design, cfg, *cycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	print(rep)
	writeTrace(*traceOut, rec)
}

// writeTrace dumps a recorded run as a Chrome trace_event file. A nil
// recorder (no -trace-out) is a no-op.
func writeTrace(path string, rec *trace.Recorder) {
	if rec == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := trace.WriteChromeTrace(f, rec.Events()); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Stderr, so stdout stays byte-identical with and without tracing.
	fmt.Fprintf(os.Stderr, "protocol trace: %d events to %s", rec.Len(), path)
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, " (%d oldest dropped; raise -trace-ring)", d)
	}
	fmt.Fprintln(os.Stderr)
}

// scriptDesign builds a single-master design driven by a user transfer
// script (an RTL master in the accelerator against a TL memory).
func scriptDesign(path string) (coemu.Design, error) {
	if path == "" {
		return coemu.Design{}, fmt.Errorf("-workload script requires -script <file>")
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return coemu.Design{}, err
	}
	// Parse once up front for early error reporting; the design builds
	// fresh generators per engine.
	if _, err := workload.ParseScript(string(src)); err != nil {
		return coemu.Design{}, err
	}
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name: "script", Domain: coemu.AccDomain,
			NewGen: func() ip.Generator {
				g, err := workload.ParseScript(string(src))
				if err != nil {
					panic(err) // validated above
				}
				return g
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name: "mem", Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}, nil
}

// designs returns the named workload presets.
func designs(seed uint64) map[string]coemu.Design {
	return map[string]coemu.Design{
		// stream: RTL DMA in the accelerator writing into a TL memory —
		// the canonical ALS configuration.
		"stream": {
			Masters: []coemu.MasterSpec{{
				Name: "dma", Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
						coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
				},
			}},
			Slaves: []coemu.SlaveSpec{{
				Name: "mem", Domain: coemu.SimDomain,
				Region: coemu.Region{Lo: 0, Hi: 0x80000},
				New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
			}},
		},
		// readback: the same topology but reading — data flows against
		// the ALS leader, forcing conservative operation.
		"readback": {
			Masters: []coemu.MasterSpec{{
				Name: "rdr", Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, false,
						coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
				},
			}},
			Slaves: []coemu.SlaveSpec{{
				Name: "mem", Domain: coemu.SimDomain,
				Region: coemu.Region{Lo: 0, Hi: 0x80000},
				New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
			}},
		},
		// duplex: DMA copying between domains plus a CPU and an IRQ
		// peripheral; leaders flip with the data direction.
		"duplex": {
			Masters: []coemu.MasterSpec{
				{
					Name: "dma", Domain: coemu.AccDomain,
					NewGen: func() coemu.Generator {
						return coemu.NewDMACopy(
							coemu.Window{Lo: 0x0000, Hi: 0x2000},
							coemu.Window{Lo: 0x8000, Hi: 0xA000},
							coemu.BurstIncr8, 2, 0)
					},
				},
				{
					Name: "cpu", Domain: coemu.SimDomain,
					NewGen: func() coemu.Generator {
						return coemu.NewCPU([]coemu.Window{
							{Lo: 0x0000, Hi: 0x2000}, {Lo: 0x8000, Hi: 0xA000},
						}, 0.5, 6, 0, seed)
					},
				},
			},
			Slaves: []coemu.SlaveSpec{
				{
					Name: "sram", Domain: coemu.SimDomain,
					Region: coemu.Region{Lo: 0x0000, Hi: 0x4000},
					New:    func() coemu.Slave { return coemu.NewSRAM("sram") },
				},
				{
					Name: "ddr", Domain: coemu.AccDomain,
					Region:    coemu.Region{Lo: 0x8000, Hi: 0xC000},
					New:       func() coemu.Slave { return coemu.NewMemory("ddr", 2, 1) },
					WaitFirst: 2, WaitNext: 1,
				},
				{
					Name: "irqc", Domain: coemu.AccDomain,
					Region:  coemu.Region{Lo: 0xF000, Hi: 0xF100},
					New:     func() coemu.Slave { return coemu.NewIRQPeriph("irqc", 0x1) },
					IRQMask: 0x1, WaitFirst: 1, WaitNext: 1,
				},
			},
		},
		// random: a CPU hammering a jittery memory across the split —
		// organic mispredictions guaranteed.
		"random": {
			Masters: []coemu.MasterSpec{{
				Name: "cpu", Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewCPU([]coemu.Window{{Lo: 0, Hi: 0x4000}}, 0.8, 3, 0, seed)
				},
			}},
			Slaves: []coemu.SlaveSpec{{
				Name: "jmem", Domain: coemu.SimDomain,
				Region:    coemu.Region{Lo: 0, Hi: 0x8000},
				New:       func() coemu.Slave { return coemu.NewJitterMemory("jmem", 1, 2, seed) },
				WaitFirst: 1, WaitNext: 1,
			}},
		},
	}
}

func print(rep *coemu.Report) {
	fmt.Printf("mode: %v\n", rep.Mode)
	fmt.Printf("target cycles: %d\n", rep.Cycles)
	fmt.Printf("virtual wall time: %v\n", rep.Ledger.Total())
	fmt.Printf("simulation performance: %.2f kcycles/s\n\n", rep.Perf()/1e3)

	fmt.Println("per-cycle cost breakdown (Table 2 rows):")
	for _, c := range vclock.Categories() {
		fmt.Printf("  %-9s %12v/cycle  (%d charges)\n",
			c, rep.Ledger.PerCycle(c, rep.Cycles), rep.Ledger.Count(c))
	}

	s := rep.Stats
	fmt.Printf("\nbehavior: %d conservative cycles, %d transitions (sim-led %d, acc-led %d)\n",
		s.ConservativeCycles, s.Transitions, s.TransitionsByLead[0], s.TransitionsByLead[1])
	fmt.Printf("  run-ahead %d, follow-up %d, roll-forth %d cycles; %d rollbacks\n",
		s.RunAheadCycles, s.FollowUpCycles, s.RollForthCycles, s.Rollbacks)
	fmt.Printf("  predictions checked %d, mispredicted %d (injected %d)\n",
		s.ChecksTotal, s.Mispredicts, s.Injected)
	if len(s.Declines) > 0 {
		fmt.Println("  decline reasons:")
		for r, n := range s.Declines {
			fmt.Printf("    %-48s %d\n", r, n)
		}
	}

	ch := rep.Channel
	fmt.Printf("\nchannel: %d accesses, %d words (sim->acc %d/%d, acc->sim %d/%d)\n",
		ch.TotalAccesses(), ch.TotalWords(),
		ch.Accesses[channel.SimToAcc], ch.Words[channel.SimToAcc],
		ch.Accesses[channel.AccToSim], ch.Words[channel.AccToSim])
	fmt.Printf("  payload histogram (words): %v buckets sim->acc %v | acc->sim %v\n",
		channel.BucketLabels(), ch.SizeHist[channel.SimToAcc], ch.SizeHist[channel.AccToSim])

	if rep.TransitionLengths.N() > 0 {
		fmt.Printf("\ntransition length: mean %.1f cycles, p50 %d, p95 %d, max %d (LOB peak %d words)\n",
			rep.TransitionLengths.Mean(), rep.TransitionLengths.Quantile(0.5),
			rep.TransitionLengths.Quantile(0.95), rep.TransitionLengths.Quantile(1),
			rep.LOBPeakWords)
	}
	if rep.RollForthLengths.N() > 0 {
		fmt.Printf("roll-forth length: mean %.1f cycles, max %d\n",
			rep.RollForthLengths.Mean(), rep.RollForthLengths.Quantile(1))
	}
}
