package main

// The chaos differential suite: a remote sweep driven through two
// daemons under an aggressive fault plan — injected worker panics,
// slow runs, channel corruption/duplication/delay, store write errors
// and torn writes, two store entries corrupted on disk up front, and
// one daemon killed mid-sweep — must converge to the exact NDJSON
// point lines a fault-free in-process sweep produces: every point
// present, byte-identical reports, no daemon crash. This is the
// end-to-end proof that fault injection perturbs only scheduling and
// effort, never results.

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"coemu/internal/faultplan"
	"coemu/internal/service"
	"coemu/internal/spec"
	"coemu/internal/store"
	"coemu/internal/sweepclient"
)

// chaosPoints expands the suite's 6-point grid. The run carries a
// generous timeout so the deadline path is armed without firing.
func chaosPoints(t *testing.T) []*spec.Spec {
	t.Helper()
	doc := `{
	  "name": "chaos-grid",
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x10000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x20000"}}]
	  },
	  "run": {"mode": "als", "cycles": 5000, "timeout": "1m"},
	  "sweep": {"axes": [
	    {"field": "run.accuracy", "values": [1, 0.9, 0.5]},
	    {"field": "run.lob_depth", "values": [32, 64]}
	  ]}
	}`
	ss, err := spec.ParseSweep([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	points, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// referenceSweep runs the points on a fault-free in-process service
// and returns the canonical per-point lines plus each point's stored
// report bytes (for priming the chaos store).
func referenceSweep(t *testing.T, points []*spec.Spec) ([]service.SweepLine, map[string][]byte) {
	t.Helper()
	clean := service.New(service.Options{Workers: 2})
	defer clean.Close()
	sw, err := clean.StartSweepPoints(context.Background(), points, false)
	if err != nil {
		t.Fatal(err)
	}
	agg := service.NewSweepAggregator(sw.Total())
	lines := make([]service.SweepLine, 0, sw.Total())
	byHash := make(map[string][]byte)
	for pr := range sw.Results() {
		if pr.Err != nil {
			t.Fatalf("fault-free reference point %d failed: %v", pr.Index, pr.Err)
		}
		lines = append(lines, agg.Add(pr))
		byHash[pr.Hash] = pr.Result.JSON
	}
	return lines, byHash
}

// chaosLogf routes a daemon's service log to CHAOS_LOG_DIR (for CI
// artifact upload on failure) or to the test log.
func chaosLogf(t *testing.T, name string) func(string, ...any) {
	dir := os.Getenv("CHAOS_LOG_DIR")
	if dir == "" {
		return t.Logf
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, name+".log"),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return log.New(f, name+" ", log.LstdFlags|log.Lmicroseconds).Printf
}

func TestChaosDifferentialSweep(t *testing.T) {
	points := chaosPoints(t)
	ref, byHash := referenceSweep(t, points)

	// Shared store, primed with two entries that are then corrupted on
	// disk — the torn garbage a crashed writer or bad disk leaves.
	dir := t.TempDir()
	prime, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, i := range []int{0, 3} {
		h := ref[i].Hash
		if err := prime.Put(h, byHash[h]); err != nil {
			t.Fatal(err)
		}
		garbage := []byte(fmt.Sprintf("torn garbage %d — not json, wrong hash", i))
		if err := os.WriteFile(filepath.Join(dir, h[:2], h+".json"), garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}

	// Channel faults are the absorbed kinds (duplication, delay): with
	// per-frame corruption even a tiny probability compounds over the
	// thousands of frames in one run and no retry budget converges;
	// corruption → typed error → retry is pinned deterministically in
	// the channel, engine and sweepclient tests instead.
	plan := &faultplan.Plan{
		Seed:    42,
		Channel: &faultplan.ChannelFault{Duplicate: 0.35, Delay: 0.05, MaxDelayUS: 200},
		Service: &faultplan.ServiceFault{WorkerPanic: 0.25, SlowRun: 0.5, SlowDelayMS: 20},
		Store:   &faultplan.StoreFault{WriteError: 0.3, TornWrite: 0.3},
	}

	newDaemon := func(name string, seed uint64) (*service.Service, *httptest.Server) {
		disk, err := store.Open(dir, store.Options{Faults: plan.Store, FaultSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Options{
			Workers: 2,
			Store:   disk,
			Faults:  plan,
			Logf:    chaosLogf(t, name),
		})
		return svc, httptest.NewServer(newMux(svc, 1<<20, 100))
	}
	svcA, srvA := newDaemon("daemon-a", plan.Seed)
	svcB, srvB := newDaemon("daemon-b", plan.Seed+1)
	t.Cleanup(func() {
		srvB.Close()
		svcB.Close()
	})

	// Kill daemon A mid-sweep: cut its client streams, stop its
	// listener, cancel its jobs. The client must fail over to B and
	// resume with only the missing points.
	var killOnce sync.Once
	killA := func() {
		killOnce.Do(func() {
			srvA.CloseClientConnections()
			srvA.Close()
			svcA.Close()
		})
	}
	timer := time.AfterFunc(75*time.Millisecond, killA)
	defer timer.Stop()
	defer killA()

	client, err := sweepclient.New(sweepclient.Options{
		URLs:        []string{srvA.URL, srvB.URL},
		Retries:     40,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines, _, err := client.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}

	// Every point settled cleanly and byte-identically to the
	// fault-free reference — no completed point lost, none perturbed.
	if len(lines) != len(ref) {
		t.Fatalf("%d lines for %d points", len(lines), len(ref))
	}
	for i := range lines {
		if lines[i].Error != "" {
			t.Fatalf("point %d (%s) failed under chaos: %s", i, lines[i].Name, lines[i].Error)
		}
		got, err := json.Marshal(&lines[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(&ref[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("point %d differs under chaos:\ngot:  %s\nwant: %s", i, got, want)
		}
	}

	// The corrupted entries were detected and quarantined, not served.
	qfiles, err := filepath.Glob(filepath.Join(dir, "quarantine", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qfiles) == 0 {
		t.Fatalf("no quarantined entries after %d corrupted on disk", corrupted)
	}

	// The surviving daemon is still healthy and serving.
	code, body := get(t, srvB.URL+"/v1/healthz")
	if code != 200 {
		t.Fatalf("daemon B /v1/healthz = %d: %s", code, body)
	}
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal(body, &health); err != nil || !health.OK {
		t.Fatalf("daemon B unhealthy after the storm: %s", body)
	}
}
