package main

// The fleet chaos suite: a sharded sweep across three real daemons
// over one shared store, with the busiest daemon killed abruptly
// mid-sweep and the client itself killed mid-stream. A resumed client
// (same journal) must finish on the survivors alone, byte-identical
// to a fault-free local expansion; after the dead daemon restarts, a
// final full pass must start zero engine jobs — store-held points are
// never re-run.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"coemu/internal/faultplan"
	"coemu/internal/service"
	"coemu/internal/spec"
	"coemu/internal/store"
	"coemu/internal/sweepclient"
)

// fleetPoints expands a 12-point grid — wide enough that every shard
// holds several points when the kill lands.
func fleetPoints(t *testing.T) []*spec.Spec {
	t.Helper()
	doc := `{
	  "name": "fleet-grid",
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x10000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x20000"}}]
	  },
	  "run": {"mode": "als", "cycles": 8000, "timeout": "1m"},
	  "sweep": {"axes": [
	    {"field": "run.accuracy", "values": [1, 0.9, 0.8, 0.5]},
	    {"field": "run.lob_depth", "values": [32, 64, 128]}
	  ]}
	}`
	ss, err := spec.ParseSweep([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	points, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// fleetDaemon is a coemud instance that can be killed abruptly and
// restarted on the same address with the same store directory — the
// process-level failure the fleet client must ride out.
type fleetDaemon struct {
	t    *testing.T
	name string
	dir  string

	mu   sync.Mutex
	addr string
	srv  *http.Server
	svc  *service.Service
}

// fleetSlowPlan stretches every engine run so kills land mid-sweep.
// A pure delay: the differential suite pins that injected faults
// never perturb results.
var fleetSlowPlan = &faultplan.Plan{
	Seed:    7,
	Service: &faultplan.ServiceFault{SlowRun: 1, SlowDelayMS: 30},
}

func startFleetDaemon(t *testing.T, name, dir string) *fleetDaemon {
	d := &fleetDaemon{t: t, name: name, dir: dir, addr: "127.0.0.1:0"}
	d.start()
	t.Cleanup(d.kill)
	return d
}

func (d *fleetDaemon) start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ln net.Listener
	var err error
	// Rebinding a just-closed address can race the kernel briefly.
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", d.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		d.t.Fatalf("daemon %s: bind %s: %v", d.name, d.addr, err)
	}
	d.addr = ln.Addr().String()
	disk, err := store.Open(d.dir, store.Options{})
	if err != nil {
		d.t.Fatalf("daemon %s: open store: %v", d.name, err)
	}
	d.svc = service.New(service.Options{
		Workers: 2,
		Store:   disk,
		Faults:  fleetSlowPlan,
		Logf:    chaosLogf(d.t, d.name),
	})
	d.srv = &http.Server{Handler: newMux(d.svc, 1<<20, 100)}
	go d.srv.Serve(ln)
}

// kill cuts the listener and every live connection and cancels
// in-flight jobs — the socket-level shape of a SIGKILL.
func (d *fleetDaemon) kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.srv == nil {
		return
	}
	d.srv.Close()
	d.svc.Close()
	d.srv, d.svc = nil, nil
}

func (d *fleetDaemon) url() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return "http://" + d.addr
}

func (d *fleetDaemon) engineRuns() int64 {
	_, body := get(d.t, d.url()+"/v1/stats")
	var c service.Counters
	if err := json.Unmarshal(body, &c); err != nil {
		d.t.Fatalf("daemon %s: bad stats: %v: %s", d.name, err, body)
	}
	return c.EngineRuns
}

func TestFleetChaosSweep(t *testing.T) {
	points := fleetPoints(t)
	ref, _ := referenceSweep(t, points)

	storeDir := t.TempDir()
	daemons := []*fleetDaemon{
		startFleetDaemon(t, "fleet-d0", storeDir),
		startFleetDaemon(t, "fleet-d1", storeDir),
		startFleetDaemon(t, "fleet-d2", storeDir),
	}
	urls := make([]string, len(daemons))
	for i, d := range daemons {
		urls[i] = d.url()
	}

	// Pick the kill victim up front: the daemon the ring hands the
	// most points. Its shard is guaranteed to still be in flight when
	// the survivors report their first finished runs.
	hashes := make([]string, len(points))
	for i, p := range points {
		h, err := p.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = h
	}
	ring, err := sweepclient.NewRing(urls, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	assign := ring.Assign(hashes, nil)
	victim, survivors := 0, []*fleetDaemon(nil)
	for i, d := range daemons {
		if len(assign[d.url()]) > len(assign[daemons[victim].url()]) {
			victim = i
		}
	}
	for i, d := range daemons {
		if i != victim {
			survivors = append(survivors, d)
		}
	}
	t.Logf("victim: daemon %d with %d of %d points", victim,
		len(assign[daemons[victim].url()]), len(points))

	jpath := filepath.Join(t.TempDir(), "resume.ndjson")
	newFleet := func(j *sweepclient.Journal, name string) *sweepclient.Fleet {
		f, err := sweepclient.NewFleet(sweepclient.FleetOptions{
			URLs:          urls,
			Retries:       20,
			BaseBackoff:   5 * time.Millisecond,
			MaxBackoff:    100 * time.Millisecond,
			ProbeInterval: 20 * time.Millisecond,
			FailThreshold: 2,
			Journal:       j,
			Logf:          chaosLogf(t, name),
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Phase 1: the doomed client. As soon as the survivors report
	// finished runs, SIGKILL the victim mid-shard; as soon as the
	// client journals its first completed points, kill the client.
	j1, err := sweepclient.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	f1 := newFleet(j1, "fleet-client-1")
	go func() {
		defer close(done)
		f1.RunPoints(ctx, points) // this client dies; its outcome is irrelevant
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("survivors never reported a finished run")
		}
		runs := int64(0)
		for _, d := range survivors {
			runs += d.engineRuns()
		}
		if runs >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	daemons[victim].kill()
	t.Logf("daemon %d killed with %d/%d points journaled", victim, j1.Len(), len(points))
	for j1.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client journaled no progress after the kill")
		}
		select {
		case <-done:
			t.Fatal("client finished before it could be killed mid-stream")
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	<-done
	f1.Close()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	journaled := j1.Len()
	t.Logf("client killed with %d/%d points journaled", journaled, len(points))
	if journaled == 0 || journaled >= len(points) {
		t.Fatalf("kill window missed: %d of %d points journaled, want a strict subset",
			journaled, len(points))
	}

	// Phase 2: the victim stays dead. A fresh client resumes from the
	// journal, must evict the dead member, finish the sweep on the
	// survivors alone, and settle byte-identical to the fault-free
	// reference.
	j2, err := sweepclient.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != journaled {
		t.Fatalf("journal reopened with %d records, want %d", j2.Len(), journaled)
	}
	f2 := newFleet(j2, "fleet-client-2")
	lines, _, err := f2.RunPoints(context.Background(), points)
	f2.Close()
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	requireRefIdentical(t, ref, lines, "resumed")

	// Phase 3: the victim restarts on its old address. A full pass
	// across the whole fleet must come entirely from the shared store:
	// zero engine jobs started on any daemon, identical bytes again.
	daemons[victim].start()
	before := int64(0)
	for _, d := range daemons {
		before += d.engineRuns()
	}
	f3 := newFleet(nil, "fleet-client-3")
	lines3, _, err := f3.RunPoints(context.Background(), points)
	f3.Close()
	if err != nil {
		t.Fatalf("verification sweep failed: %v", err)
	}
	requireRefIdentical(t, ref, lines3, "verification")
	after := int64(0)
	for _, d := range daemons {
		after += d.engineRuns()
	}
	if delta := after - before; delta != 0 {
		t.Fatalf("verification pass started %d engine jobs; store-held points must never re-run", delta)
	}
}

// requireRefIdentical asserts a sweep settled byte-identical to the
// fault-free reference lines.
func requireRefIdentical(t *testing.T, ref, lines []service.SweepLine, label string) {
	t.Helper()
	if len(lines) != len(ref) {
		t.Fatalf("%s sweep: %d lines for %d points", label, len(lines), len(ref))
	}
	for i := range lines {
		if lines[i].Error != "" {
			t.Fatalf("%s sweep: point %d (%s) failed: %s", label, i, lines[i].Name, lines[i].Error)
		}
		got, err := json.Marshal(&lines[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(&ref[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s sweep: point %d differs:\ngot:  %s\nwant: %s", label, i, got, want)
		}
	}
}
