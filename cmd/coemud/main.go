// Command coemud serves co-emulation runs over HTTP: clients submit
// declarative JSON run specs (see internal/spec) and get back the full
// modeled report. A bounded worker pool executes runs in parallel,
// duplicate specs coalesce onto one run, and an LRU cache keyed by the
// canonical spec hash answers repeats with bit-identical reports.
// In-flight runs cancel within one domain cycle when the submitting
// client aborts or the server shuts down.
//
//	coemud -addr :8080 -j 8 -cache 256
//
// API (JSON in, JSON out):
//
//	POST   /v1/run              run a spec synchronously; the report is
//	                            the response body. Aborting the request
//	                            cancels the run (unless another client
//	                            shares it).
//	POST   /v1/jobs             submit a spec asynchronously; returns
//	                            {id, hash, status, cached}.
//	GET    /v1/jobs             list known jobs, newest first.
//	GET    /v1/jobs/{id}        job status.
//	GET    /v1/jobs/{id}/result block until the job completes, then
//	                            return its report.
//	DELETE /v1/jobs/{id}        cancel a job.
//	POST   /v1/sweep            {"specs": [spec, ...]}: run a batch on
//	                            the pool; returns per-spec results in
//	                            input order.
//	GET    /v1/stats            worker/cache counters.
//	GET    /healthz             liveness.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"coemu/internal/service"
	"coemu/internal/spec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", runtime.NumCPU(), "worker pool width (parallel engine runs)")
	cache := flag.Int("cache", 128, "result cache capacity in reports (negative disables)")
	queue := flag.Int("queue", 256, "pending job queue depth")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body bytes")
	flag.Parse()

	svc := service.New(service.Options{Workers: *jobs, CacheSize: *cache, QueueDepth: *queue})
	srv := &http.Server{
		Addr:    *addr,
		Handler: newMux(svc, *maxBody),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("coemud listening on %s (%d workers, cache %d)", *addr, *jobs, *cache)

	select {
	case <-ctx.Done():
		log.Print("shutting down")
	case err := <-errc:
		log.Fatal(err)
	}

	// Cancel the in-flight runs concurrently with draining connections:
	// handlers blocked in job.Wait unblock only once their jobs cancel,
	// so closing the service must not wait for Shutdown to return. The
	// engine's domain-cycle cancellation keeps the whole drain prompt.
	svcClosed := make(chan struct{})
	go func() {
		svc.Close()
		close(svcClosed)
	}()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	<-svcClosed
}

// newMux builds the HTTP API around a job service.
func newMux(svc *service.Service, maxBody int64) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		hits, misses, size := svc.CacheStats()
		writeJSON(w, http.StatusOK, map[string]any{
			"cache_hits":   hits,
			"cache_misses": misses,
			"cache_size":   size,
			"jobs":         svc.JobCount(),
		})
	})

	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := readSpec(w, r, maxBody)
		if !ok {
			return
		}
		// Ephemeral: if this client aborts and nobody else shares the
		// job, the run is canceled.
		job, err := svc.Submit(sp, true)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		rep, err := job.Wait(r.Context())
		if err != nil {
			writeRunError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, service.NewReportView(rep))
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := readSpec(w, r, maxBody)
		if !ok {
			return
		}
		job, err := svc.Submit(sp, false)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Info())
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Jobs())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Info())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		rep, err := job.Wait(r.Context())
		if err != nil {
			writeRunError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, service.NewReportView(rep))
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
	})

	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var batch struct {
			Specs []json.RawMessage `json:"specs"`
		}
		if !readBody(w, r, maxBody, &batch) {
			return
		}
		if len(batch.Specs) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("sweep: no specs"))
			return
		}
		type result struct {
			Hash   string              `json:"hash,omitempty"`
			Report *service.ReportView `json:"report,omitempty"`
			Error  string              `json:"error,omitempty"`
		}
		results := make([]result, len(batch.Specs))
		var wg sync.WaitGroup
		for i, raw := range batch.Specs {
			sp, err := spec.Parse(raw)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			job, err := svc.Submit(sp, true)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			results[i].Hash = job.Hash()
			wg.Add(1)
			go func(i int, job *service.Job) {
				defer wg.Done()
				rep, err := job.Wait(r.Context())
				if err != nil {
					results[i].Error = err.Error()
					return
				}
				results[i].Report = service.NewReportView(rep)
			}(i, job)
		}
		wg.Wait()
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
	})

	return mux
}

// readSpec decodes a spec request body, reporting HTTP errors itself.
func readSpec(w http.ResponseWriter, r *http.Request, maxBody int64) (*spec.Spec, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	if int64(len(body)) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body over %d bytes", maxBody))
		return nil, false
	}
	sp, err := spec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return sp, true
}

// readBody decodes an arbitrary JSON request body.
func readBody(w http.ResponseWriter, r *http.Request, maxBody int64, into any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if int64(len(body)) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body over %d bytes", maxBody))
		return false
	}
	if err := json.Unmarshal(body, into); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// writeSubmitError maps Submit failures to HTTP statuses.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, service.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// writeRunError maps Wait failures to HTTP statuses.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		// Client went away or the job was canceled under it.
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
