// Command coemud serves co-emulation runs over HTTP: clients submit
// declarative JSON run specs (see internal/spec) and get back the full
// modeled report. A bounded worker pool executes runs in parallel,
// duplicate specs coalesce onto one run, and an LRU cache keyed by the
// canonical spec hash answers repeats with bit-identical reports.
// With -store, completed results are also written through to a
// persistent content-addressed store, so a restarted daemon (or a
// sibling process sharing the directory) serves previously computed
// runs with zero engine runs. In-flight runs cancel within one domain
// cycle when the submitting client aborts or the server shuts down.
//
//	coemud -addr :8080 -j 8 -cache 256 -store /var/lib/coemud
//
// API (JSON in, JSON out):
//
//	POST   /v1/run              run a spec synchronously; the report is
//	                            the response body. Aborting the request
//	                            cancels the run (unless another client
//	                            shares it).
//	POST   /v1/jobs             submit a spec asynchronously; returns
//	                            {id, hash, status, cached}.
//	GET    /v1/jobs             list known jobs, newest first.
//	GET    /v1/jobs/{id}        job status.
//	GET    /v1/jobs/{id}/result block until the job completes, then
//	                            return its report.
//	GET    /v1/jobs/{id}/events stream the job's lifecycle as
//	                            Server-Sent Events: one "status" event
//	                            per state change, stream closed at the
//	                            terminal state.
//	GET    /v1/jobs/{id}/trace  a finished job's protocol event trace
//	                            (submit with "run": {"trace": true}).
//	                            Default JSON events; ?format=chrome
//	                            emits a Chrome trace_event document for
//	                            Perfetto / chrome://tracing.
//	DELETE /v1/jobs/{id}        cancel a job.
//	POST   /v1/sweep            a sweep document (spec + "sweep" grid
//	                            block) or {"specs": [spec, ...]}: fan
//	                            the points out over the pool, streaming
//	                            one NDJSON result line per point in
//	                            point order plus a final aggregate line.
//	GET    /v1/stats            worker/cache/store/sweep counters.
//	GET    /v1/results/{hash}   a completed run's canonical report bytes
//	                            by canonical spec hash — cache/store
//	                            only, never schedules work; 404 when
//	                            unknown. HEAD probes presence. Fleet
//	                            sweep clients use it to splice
//	                            store-held points instead of re-running
//	                            them.
//	GET    /v1/healthz          readiness: {ok, queue, queue_capacity,
//	                            saturated, store?}. ok goes false (HTTP
//	                            503) while the worker queue is
//	                            saturated; store carries entry/byte/
//	                            quarantine occupancy so fleet probers
//	                            can prefer lightly-loaded shards.
//	GET    /healthz             liveness.
//
// Overload is shed rather than queued without bound: when the worker
// queue is full, submissions fail with 503 and a Retry-After hint, and
// /v1/sweep rejects new sweeps while saturated — resilient clients
// (cmd/sweep -remote, internal/sweepclient) back off and fail over.
//
// With -fault-plan plan.json, a seeded fault-injection plan (see
// internal/faultplan) is armed daemon-wide for chaos testing: worker
// panics and slow runs at the service layer, write errors and torn
// writes at the store, packet duplication/corruption/delay on every
// job's channel. All injection is off without the flag.
//
// With -domain-serve addr, the daemon runs in a different mode
// entirely: instead of the HTTP service it hosts the accelerator
// domain for cross-process co-emulation (see internal/remote). A
// `coemu -remote-domain addr -spec spec.json` client dials in, ships
// its spec in the connect handshake, and both processes run mirrored
// lockstep engines over the TCP channel; the daemon is spec-agnostic
// and verifies the client's canonical spec hash before running.
//
// Observability: GET /metrics serves Prometheus text exposition
// (disable with -metrics=false) — job/queue/store latency histograms
// and engine-protocol counters from internal/service plus mirrored
// service counters, so /metrics and /v1/stats always agree. Requests
// are logged structurally (slog, -log-level) with an X-Request-Id
// echoed to the client. -pprof mounts net/http/pprof at /debug/pprof/
// for live profiling; it is off by default.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"coemu/internal/channel/tcpchan"
	"coemu/internal/faultplan"
	"coemu/internal/metrics"
	"coemu/internal/remote"
	"coemu/internal/service"
	"coemu/internal/spec"
	"coemu/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", runtime.NumCPU(), "worker pool width (parallel engine runs)")
	cache := flag.Int("cache", 128, "result cache capacity in reports (negative disables)")
	queue := flag.Int("queue", 256, "pending job queue depth")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body bytes")
	sweepMax := flag.Int("sweep-max", spec.MaxSweepPoints, "maximum points one /v1/sweep request may expand to")
	storeDir := flag.String("store", "", "persistent result store directory (empty disables)")
	storeMax := flag.Int("store-max", store.DefaultMaxEntries, "persistent store entry bound (negative = unbounded)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "persistent store disk-byte bound (0 = unbounded)")
	storeMaxAge := flag.Duration("store-max-age", 0, "persistent store entry age bound; entries unused longer are deleted (0 = unbounded)")
	faultPlanPath := flag.String("fault-plan", "", "seeded fault-injection plan JSON (see internal/faultplan); injection off when empty")
	metricsOn := flag.Bool("metrics", true, "serve Prometheus metrics at /metrics")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof profiles at /debug/pprof/")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	domainServe := flag.String("domain-serve", "", "host the accelerator domain for cross-process co-emulation on this TCP address instead of the HTTP service")
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *domainServe != "" {
		runDomainServe(*domainServe, logger)
		return
	}

	var plan *faultplan.Plan
	if *faultPlanPath != "" {
		p, err := faultplan.Load(*faultPlanPath)
		if err != nil {
			log.Fatal(err)
		}
		plan = p
		logger.Info("fault plan armed", "path", *faultPlanPath, "seed", plan.Seed)
	}

	logf := func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) }
	opts := service.Options{Workers: *jobs, CacheSize: *cache, QueueDepth: *queue, Logf: logf, Faults: plan}
	var reg *metrics.Registry
	if *metricsOn {
		reg = metrics.NewRegistry()
		opts.Metrics = service.NewMetrics(reg)
	}
	if *storeDir != "" {
		storeOpts := store.Options{MaxEntries: *storeMax, MaxBytes: *storeMaxBytes, MaxAge: *storeMaxAge}
		if plan != nil {
			storeOpts.Faults, storeOpts.FaultSeed = plan.Store, plan.Seed
		}
		disk, err := store.Open(*storeDir, storeOpts)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("result store open", "dir", disk.Dir(), "entries", disk.Len(), "bytes", disk.Bytes())
		opts.Store = disk
	}
	svc := service.New(opts)
	mux := newMux(svc, *maxBody, *sweepMax)
	srv := &http.Server{
		Addr:    *addr,
		Handler: observe(mux, svc, observeConfig{Registry: reg, Pprof: *pprofOn, Logger: logger}),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("coemud listening", "addr", *addr, "workers", *jobs, "cache", *cache,
		"metrics", *metricsOn, "pprof", *pprofOn)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
	case err := <-errc:
		log.Fatal(err)
	}

	// Cancel the in-flight runs concurrently with draining connections:
	// handlers blocked in job.Wait unblock only once their jobs cancel,
	// so closing the service must not wait for Shutdown to return. The
	// engine's domain-cycle cancellation keeps the whole drain prompt.
	svcClosed := make(chan struct{})
	go func() {
		svc.Close()
		close(svcClosed)
	}()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	<-svcClosed
}

// runDomainServe hosts the accelerator domain for cross-process
// co-emulation: accept a mirrored-lockstep session, run the
// accelerator-authoritative engine on the spec shipped in the
// handshake, cross-check the final report with the client, repeat. A
// SIGINT/SIGTERM closes the listener and returns.
func runDomainServe(addr string, logger *slog.Logger) {
	l, err := tcpchan.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	logger.Info("accelerator domain listening", "addr", l.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = remote.Serve(ctx, l, remote.ServeOptions{
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
		OnSession: func(info remote.SessionInfo) {
			st := info.Transport
			logger.Info("session transport",
				"hash", shortHash(info.Hash),
				"frames_sent", st.Sent, "frames_received", st.Received,
				"retransmits", st.Retransmits, "resyncs", st.Resyncs,
				"reconnects", st.Reconnects, "wire_faults", st.WireFaults,
				"rtt_mean", st.RTTMean, "rtt_p99", st.RTTP99, "rtt_samples", st.RTTSamples)
		},
	})
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	logger.Info("domain server stopped")
}

// shortHash abbreviates a canonical spec hash for log lines.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// newMux builds the HTTP API around a job service. sweepMax caps how
// many points one /v1/sweep request may expand to — the document's own
// max_points cannot raise it, so an untrusted request cannot blow the
// daemon up by declaring a huge grid.
func newMux(svc *service.Service, maxBody int64, sweepMax int) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		pending, capacity := svc.QueueDepth()
		saturated := svc.Saturated()
		status := http.StatusOK
		if saturated {
			w.Header().Set("Retry-After", retryAfter)
			status = http.StatusServiceUnavailable
		}
		body := map[string]any{
			"ok":             !saturated,
			"queue":          pending,
			"queue_capacity": capacity,
			"saturated":      saturated,
		}
		// Store occupancy rides along (absent without -store) so fleet
		// probers can prefer lightly-loaded shards; the bare-200 contract
		// for old clients is untouched — they simply ignore the field.
		if st, ok := svc.StoreStats(); ok {
			body["store"] = map[string]any{
				"entries":     st.Entries,
				"bytes":       st.Bytes,
				"quarantined": st.Quarantined,
			}
		}
		writeJSON(w, status, body)
	})

	// The fleet's incremental-resubmission probe: canonical report bytes
	// by canonical spec hash, from the completed-result layers only
	// (memory cache, then store) — never schedules an engine run. The
	// body is the exact canonical compact JSON, so a fleet client can
	// splice it verbatim into a sweep line and preserve bit-identity.
	// The GET pattern also serves HEAD (presence probe, no body).
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		res, ok := svc.Lookup(r.PathValue("hash"))
		if !ok {
			writeError(w, http.StatusNotFound, errNoResult)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(res.JSON)))
		w.WriteHeader(http.StatusOK)
		if r.Method == http.MethodHead {
			return
		}
		if _, err := w.Write(res.JSON); err != nil {
			log.Printf("write response: %v", err)
		}
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Counters())
	})

	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := readSpec(w, r, maxBody)
		if !ok {
			return
		}
		// Ephemeral: if this client aborts and nobody else shares the
		// job, the run is canceled.
		job, err := svc.Submit(sp, true)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		res, err := job.Wait(r.Context())
		if err != nil {
			writeRunError(w, err)
			return
		}
		writeReport(w, res)
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := readSpec(w, r, maxBody)
		if !ok {
			return
		}
		job, err := svc.Submit(sp, false)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Info())
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Jobs())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Info())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		res, err := job.Wait(r.Context())
		if err != nil {
			writeRunError(w, err)
			return
		}
		writeReport(w, res)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", handleJobEvents(svc))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", handleJobTrace(svc))

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
	})

	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		// Shed new sweeps while the worker queue is saturated: one
		// sweep fans out many jobs, and rejecting it up front with a
		// Retry-After hint lets a resilient client back off or fail
		// over instead of stalling mid-stream on a full queue.
		if svc.Saturated() {
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusServiceUnavailable, service.ErrQueueFull)
			return
		}
		body, ok := readRaw(w, r, maxBody)
		if !ok {
			return
		}
		points, err := sweepPoints(body, sweepMax)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sw, err := svc.StartSweepPoints(r.Context(), points, true)
		if err != nil {
			writeSubmitError(w, err)
			return
		}

		// NDJSON: one line per point in point order as each settles,
		// then one aggregate line. Flush per line so a slow sweep
		// streams progress.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		agg := service.NewSweepAggregator(sw.Total())
		for pr := range sw.Results() {
			if err := enc.Encode(agg.Add(pr)); err != nil {
				return // client went away; sweep ctx cancels via r.Context
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err := enc.Encode(agg.Line()); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	})

	return mux
}

// sweepPoints turns a /v1/sweep request body into expanded spec
// points: either an explicit {"specs": [...]} list or a sweep document
// (a spec with an optional "sweep" grid block). sweepMax bounds the
// point count either way.
func sweepPoints(body []byte, sweepMax int) ([]*spec.Spec, error) {
	var batch struct {
		Specs []json.RawMessage `json:"specs"`
	}
	if err := json.Unmarshal(body, &batch); err == nil && len(batch.Specs) > 0 {
		if len(batch.Specs) > sweepMax {
			return nil, fmt.Errorf("sweep: %d specs over the server bound of %d", len(batch.Specs), sweepMax)
		}
		points := make([]*spec.Spec, len(batch.Specs))
		for i, raw := range batch.Specs {
			sp, err := spec.Parse(raw)
			if err != nil {
				return nil, fmt.Errorf("specs[%d]: %w", i, err)
			}
			points[i] = sp
		}
		return points, nil
	}
	ss, err := spec.ParseSweep(body)
	if err != nil {
		return nil, err
	}
	if n := ss.Points(); n > sweepMax {
		return nil, fmt.Errorf("sweep: %d points over the server bound of %d", n, sweepMax)
	}
	points, err := ss.Expand()
	if err != nil {
		return nil, err
	}
	return points, nil
}

// writeReport serves a run result: the stored canonical bytes,
// re-indented. Using the canonical bytes (rather than re-projecting a
// report) keeps responses byte-identical across cache hits, store hits
// and fresh runs.
func writeReport(w http.ResponseWriter, res *service.Result) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, res.JSON, "", "  "); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	buf.WriteByte('\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("write response: %v", err)
	}
}

// readRaw reads a bounded request body, reporting HTTP errors itself.
func readRaw(w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	if int64(len(body)) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body over %d bytes", maxBody))
		return nil, false
	}
	return body, true
}

// readSpec decodes a spec request body, reporting HTTP errors itself.
func readSpec(w http.ResponseWriter, r *http.Request, maxBody int64) (*spec.Spec, bool) {
	body, ok := readRaw(w, r, maxBody)
	if !ok {
		return nil, false
	}
	sp, err := spec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return sp, true
}

// retryAfter is the Retry-After hint (in seconds) sent with every
// load-shedding 503: long enough for a queue slot to free, short
// enough that failover clients reprobe promptly.
const retryAfter = "1"

// errNoResult is the 404 body for /v1/results/{hash} misses.
var errNoResult = errors.New("no completed result for that hash")

// writeSubmitError maps Submit failures to HTTP statuses. Queue-full
// rejections carry a Retry-After hint so well-behaved clients back off
// instead of hammering a saturated daemon.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfter)
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, service.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// writeRunError maps Wait failures to HTTP statuses.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		// Client went away or the job was canceled under it.
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
