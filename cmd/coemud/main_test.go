package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coemu/internal/service"
)

func specJSON(cycles int64) string {
	return fmt.Sprintf(`{
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": %d}
	}`, cycles)
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Options{Workers: 2})
	ts := httptest.NewServer(newMux(svc, 1<<20))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestRunEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts.URL+"/v1/run", specJSON(2000))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var view service.ReportView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Cycles != 2000 || view.Mode != "ALS" {
		t.Fatalf("report %+v", view)
	}
	if view.Stats.Committed != 2000 {
		t.Fatalf("committed %d cycles", view.Stats.Committed)
	}
	if view.Perf <= 0 {
		t.Fatal("non-positive modeled performance")
	}
}

func TestDuplicateRunBitIdentical(t *testing.T) {
	ts := newTestServer(t)
	code1, body1 := post(t, ts.URL+"/v1/run", specJSON(3000))
	code2, body2 := post(t, ts.URL+"/v1/run", specJSON(3000))
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d/%d", code1, code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("duplicate spec served a byte-different report")
	}
	// The second run came from the cache.
	_, statsBody := get(t, ts.URL+"/v1/stats")
	var st map[string]any
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if hits := st["cache_hits"].(float64); hits < 1 {
		t.Fatalf("cache hits %v, want >= 1", hits)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts.URL+"/v1/jobs", specJSON(2500))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var info service.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Hash == "" {
		t.Fatalf("incomplete info %+v", info)
	}

	code, body = get(t, ts.URL+"/v1/jobs/"+info.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status %d: %s", code, body)
	}
	var view service.ReportView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Cycles != 2500 {
		t.Fatalf("cycles %d", view.Cycles)
	}

	code, body = get(t, ts.URL+"/v1/jobs/"+info.ID)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Status != service.StatusDone {
		t.Fatalf("job status %s, want done", info.Status)
	}

	if code, _ := get(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d", code)
	}
}

func TestClientAbortCancelsRun(t *testing.T) {
	ts := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run",
		strings.NewReader(specJSON(int64(1)<<40)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("expected the aborted request to fail")
	}
	// The abandoned run must reach a canceled terminal state promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, ts.URL+"/v1/jobs")
		var jobs []service.Info
		if err := json.Unmarshal(body, &jobs); err != nil {
			t.Fatal(err)
		}
		if len(jobs) == 1 && jobs[0].Status == service.StatusCanceled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not canceled after abort: %+v", jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelEndpoint(t *testing.T) {
	ts := newTestServer(t)
	_, body := post(t, ts.URL+"/v1/jobs", specJSON(int64(1)<<40))
	var info service.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, ts.URL+"/v1/jobs/"+info.ID)
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status == service.StatusCanceled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after cancel", info.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t)
	batch := fmt.Sprintf(`{"specs": [%s, %s, %s]}`,
		specJSON(1000), specJSON(1500), specJSON(1000))
	code, body := post(t, ts.URL+"/v1/sweep", batch)
	if code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", code, body)
	}
	var out struct {
		Results []struct {
			Hash   string              `json:"hash"`
			Report *service.ReportView `json:"report"`
			Error  string              `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Report == nil {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	if out.Results[0].Report.Cycles != 1000 || out.Results[1].Report.Cycles != 1500 {
		t.Fatal("sweep results out of order")
	}
	if out.Results[0].Hash != out.Results[2].Hash {
		t.Fatal("identical specs hashed differently")
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := post(t, ts.URL+"/v1/run", "{"); code != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/run", `{"design":{"masters":[]},"run":{"mode":"als","cycles":10}}`); code != http.StatusBadRequest {
		t.Fatalf("invalid spec status %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/sweep", `{"specs": []}`); code != http.StatusBadRequest {
		t.Fatalf("empty sweep status %d", code)
	}
}
