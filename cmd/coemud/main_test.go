package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coemu/internal/service"
	"coemu/internal/store"
)

func specJSON(cycles int64) string {
	return fmt.Sprintf(`{
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": %d}
	}`, cycles)
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	return newTestServerOpts(t, service.Options{Workers: 2})
}

func newTestServerOpts(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	svc := service.New(opts)
	ts := httptest.NewServer(newMux(svc, 1<<20, 100))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// decodeNDJSON splits a /v1/sweep response into point lines and the
// final aggregate line.
func decodeNDJSON(t *testing.T, body []byte) ([]service.SweepLine, service.SweepAggregate) {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("NDJSON stream has %d lines: %s", len(lines), body)
	}
	var agg service.SweepAggregateLine
	if err := json.Unmarshal(lines[len(lines)-1], &agg); err != nil {
		t.Fatalf("aggregate line: %v: %s", err, lines[len(lines)-1])
	}
	points := make([]service.SweepLine, 0, len(lines)-1)
	for _, raw := range lines[:len(lines)-1] {
		var pl service.SweepLine
		if err := json.Unmarshal(raw, &pl); err != nil {
			t.Fatalf("point line: %v: %s", err, raw)
		}
		points = append(points, pl)
	}
	return points, agg.Aggregate
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestRunEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts.URL+"/v1/run", specJSON(2000))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var view service.ReportView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Cycles != 2000 || view.Mode != "ALS" {
		t.Fatalf("report %+v", view)
	}
	if view.Stats.Committed != 2000 {
		t.Fatalf("committed %d cycles", view.Stats.Committed)
	}
	if view.Perf <= 0 {
		t.Fatal("non-positive modeled performance")
	}
}

func TestDuplicateRunBitIdentical(t *testing.T) {
	ts := newTestServer(t)
	code1, body1 := post(t, ts.URL+"/v1/run", specJSON(3000))
	code2, body2 := post(t, ts.URL+"/v1/run", specJSON(3000))
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d/%d", code1, code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("duplicate spec served a byte-different report")
	}
	// The second run came from the cache.
	_, statsBody := get(t, ts.URL+"/v1/stats")
	var st map[string]any
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if hits := st["cache_hits"].(float64); hits < 1 {
		t.Fatalf("cache hits %v, want >= 1", hits)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts.URL+"/v1/jobs", specJSON(2500))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var info service.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Hash == "" {
		t.Fatalf("incomplete info %+v", info)
	}

	code, body = get(t, ts.URL+"/v1/jobs/"+info.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status %d: %s", code, body)
	}
	var view service.ReportView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Cycles != 2500 {
		t.Fatalf("cycles %d", view.Cycles)
	}

	code, body = get(t, ts.URL+"/v1/jobs/"+info.ID)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Status != service.StatusDone {
		t.Fatalf("job status %s, want done", info.Status)
	}

	if code, _ := get(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d", code)
	}
}

func TestClientAbortCancelsRun(t *testing.T) {
	ts := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run",
		strings.NewReader(specJSON(int64(1)<<40)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("expected the aborted request to fail")
	}
	// The abandoned run must reach a canceled terminal state promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, ts.URL+"/v1/jobs")
		var jobs []service.Info
		if err := json.Unmarshal(body, &jobs); err != nil {
			t.Fatal(err)
		}
		if len(jobs) == 1 && jobs[0].Status == service.StatusCanceled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not canceled after abort: %+v", jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelEndpoint(t *testing.T) {
	ts := newTestServer(t)
	_, body := post(t, ts.URL+"/v1/jobs", specJSON(int64(1)<<40))
	var info service.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, ts.URL+"/v1/jobs/"+info.ID)
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status == service.StatusCanceled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after cancel", info.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSweepEndpointSpecList(t *testing.T) {
	ts := newTestServer(t)
	batch := fmt.Sprintf(`{"specs": [%s, %s, %s]}`,
		specJSON(1000), specJSON(1500), specJSON(1000))
	code, body := post(t, ts.URL+"/v1/sweep", batch)
	if code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", code, body)
	}
	points, agg := decodeNDJSON(t, body)
	if len(points) != 3 {
		t.Fatalf("%d point lines", len(points))
	}
	for i, pl := range points {
		if pl.Index != i || pl.Error != "" || pl.Report == nil {
			t.Fatalf("point %d: %+v", i, pl)
		}
	}
	var v0, v1 service.ReportView
	if err := json.Unmarshal(points[0].Report, &v0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(points[1].Report, &v1); err != nil {
		t.Fatal(err)
	}
	if v0.Cycles != 1000 || v1.Cycles != 1500 {
		t.Fatal("sweep results out of order")
	}
	if points[0].Hash != points[2].Hash {
		t.Fatal("identical specs hashed differently")
	}
	if !bytes.Equal(points[0].Report, points[2].Report) {
		t.Fatal("identical specs returned different report bytes")
	}
	if agg.Points != 3 || agg.OK != 3 || agg.Errors != 0 {
		t.Fatalf("aggregate %+v", agg)
	}
	if len(agg.Table) != 3 || agg.Table[1].Committed != 1500 {
		t.Fatalf("aggregate table %+v", agg.Table)
	}
}

func sweepDocJSON(cycles int64) string {
	return fmt.Sprintf(`{
	  "name": "grid",
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": %d},
	  "sweep": {"axes": [
	    {"field": "run.accuracy", "values": [1, 0.9]},
	    {"field": "run.lob_depth", "values": [32, 64]}
	  ]}
	}`, cycles)
}

func TestSweepEndpointGrid(t *testing.T) {
	ts := newTestServer(t)
	code, body := post(t, ts.URL+"/v1/sweep", sweepDocJSON(1200))
	if code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", code, body)
	}
	points, agg := decodeNDJSON(t, body)
	if len(points) != 4 {
		t.Fatalf("%d point lines, want 4", len(points))
	}
	hashes := map[string]bool{}
	for i, pl := range points {
		if pl.Error != "" || pl.Report == nil {
			t.Fatalf("point %d: %+v", i, pl)
		}
		if !strings.Contains(pl.Name, "run.accuracy=") {
			t.Fatalf("point %d name %q lacks axis labels", i, pl.Name)
		}
		hashes[pl.Hash] = true
	}
	if len(hashes) != 4 {
		t.Fatalf("%d distinct hashes, want 4", len(hashes))
	}
	if agg.Points != 4 || agg.OK != 4 {
		t.Fatalf("aggregate %+v", agg)
	}

	// Stats picked up the sweep counters.
	_, statsBody := get(t, ts.URL+"/v1/stats")
	var c service.Counters
	if err := json.Unmarshal(statsBody, &c); err != nil {
		t.Fatal(err)
	}
	if c.Sweeps != 1 || c.SweepPoints != 4 {
		t.Fatalf("stats %+v", c)
	}
}

func TestSweepRestartServedFromStore(t *testing.T) {
	dir := t.TempDir()
	open := func() *httptest.Server {
		disk, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return newTestServerOpts(t, service.Options{Workers: 2, Store: disk})
	}

	ts := open()
	code, body1 := post(t, ts.URL+"/v1/sweep", sweepDocJSON(900))
	if code != http.StatusOK {
		t.Fatalf("first sweep status %d", code)
	}
	points1, _ := decodeNDJSON(t, body1)

	// "Restart": a second daemon over the same store directory with a
	// cold memory cache.
	ts2 := open()
	code, body2 := post(t, ts2.URL+"/v1/sweep", sweepDocJSON(900))
	if code != http.StatusOK {
		t.Fatalf("second sweep status %d", code)
	}
	points2, agg2 := decodeNDJSON(t, body2)
	if len(points2) != len(points1) {
		t.Fatalf("point counts differ: %d vs %d", len(points2), len(points1))
	}
	for i := range points2 {
		if !bytes.Equal(points1[i].Report, points2[i].Report) {
			t.Fatalf("point %d report bytes differ across restart", i)
		}
	}
	if agg2.StoreHits != len(points2) {
		t.Fatalf("restart aggregate %+v, want %d store hits", agg2, len(points2))
	}
	_, statsBody := get(t, ts2.URL+"/v1/stats")
	var c service.Counters
	if err := json.Unmarshal(statsBody, &c); err != nil {
		t.Fatal(err)
	}
	if c.EngineRuns != 0 {
		t.Fatalf("restarted daemon ran %d engine runs, want 0", c.EngineRuns)
	}
	if c.StoreHits != int64(len(points2)) {
		t.Fatalf("store hits %d, want %d", c.StoreHits, len(points2))
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := post(t, ts.URL+"/v1/run", "{"); code != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/run", `{"design":{"masters":[]},"run":{"mode":"als","cycles":10}}`); code != http.StatusBadRequest {
		t.Fatalf("invalid spec status %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/sweep", `{"specs": []}`); code != http.StatusBadRequest {
		t.Fatalf("empty sweep status %d", code)
	}
}

func TestSweepServerPointBound(t *testing.T) {
	// The test server caps sweeps at 100 points; a document declaring a
	// bigger grid (and a permissive max_points of its own) must be
	// rejected before any expansion work happens.
	ts := newTestServer(t)
	vals := make([]string, 150)
	for i := range vals {
		vals[i] = fmt.Sprintf("%d", i+8)
	}
	doc := strings.Replace(sweepDocJSON(1000),
		`"sweep": {"axes": [`,
		fmt.Sprintf(`"sweep": {"max_points": 100000, "axes": [
	    {"field": "run.rollback_vars", "values": [%s]},`, strings.Join(vals, ",")),
		1)
	code, body := post(t, ts.URL+"/v1/sweep", doc)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized sweep status %d: %.200s", code, body)
	}
	if !strings.Contains(string(body), "server bound") {
		t.Fatalf("unexpected error body: %s", body)
	}
}
