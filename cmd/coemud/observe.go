package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"coemu/internal/metrics"
	"coemu/internal/service"
	"coemu/internal/trace"
)

// observeConfig selects the daemon's observability surfaces.
type observeConfig struct {
	// Registry, when non-nil, is exposed at GET /metrics and mirrors the
	// service counters on every scrape.
	Registry *metrics.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// Logger, when non-nil, logs one structured line per request with a
	// daemon-unique request ID (also echoed as X-Request-Id).
	Logger *slog.Logger
}

// observe mounts the observability endpoints on mux and wraps it in the
// request-logging middleware, returning the handler to serve.
func observe(mux *http.ServeMux, svc *service.Service, cfg observeConfig) http.Handler {
	if cfg.Registry != nil {
		mirrorCounters(cfg.Registry, svc)
		mux.Handle("GET /metrics", cfg.Registry.Handler())
	}
	if cfg.Pprof {
		// Mount explicitly instead of importing for the DefaultServeMux
		// side effect: the daemon's mux never serves handlers it did not
		// register, and profiling stays off without the flag.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if cfg.Logger == nil {
		return mux
	}
	return logRequests(cfg.Logger, mux)
}

// mirrorCounters republishes the service-wide lifecycle counters
// (service.Counters, the /v1/stats payload) into reg as coemu_-prefixed
// counters and gauges, refreshed by a collect hook on every scrape —
// so /metrics and /v1/stats can never disagree about, say, how many
// engine runs have happened.
func mirrorCounters(reg *metrics.Registry, svc *service.Service) {
	type mirror struct {
		c   *metrics.Counter
		get func(service.Counters) int64
	}
	mirrors := []mirror{
		{reg.NewCounter("coemu_cache_hits_total",
			"Result-cache hits (duplicate submissions answered from memory)."),
			func(c service.Counters) int64 { return c.CacheHits }},
		{reg.NewCounter("coemu_cache_misses_total",
			"Result-cache misses."),
			func(c service.Counters) int64 { return c.CacheMisses }},
		{reg.NewCounter("coemu_engine_runs_total",
			"Jobs that actually executed an engine run."),
			func(c service.Counters) int64 { return c.EngineRuns }},
		{reg.NewCounter("coemu_sweeps_total",
			"Sweeps started."),
			func(c service.Counters) int64 { return c.Sweeps }},
		{reg.NewCounter("coemu_sweep_points_total",
			"Points the started sweeps expanded to."),
			func(c service.Counters) int64 { return c.SweepPoints }},
		{reg.NewCounter("coemu_store_hits_total",
			"Persistent-store probe hits."),
			func(c service.Counters) int64 { return c.StoreHits }},
		{reg.NewCounter("coemu_store_misses_total",
			"Persistent-store probe misses."),
			func(c service.Counters) int64 { return c.StoreMisses }},
		{reg.NewCounter("coemu_store_puts_total",
			"Results written through to the persistent store."),
			func(c service.Counters) int64 { return c.StorePuts }},
		{reg.NewCounter("coemu_store_evictions_total",
			"Persistent-store entries evicted by the store bounds."),
			func(c service.Counters) int64 { return c.StoreEvictions }},
		{reg.NewCounter("coemu_store_quarantined_total",
			"Store entries quarantined after failing content verification."),
			func(c service.Counters) int64 { return c.StoreQuarantined }},
		{reg.NewCounter("coemu_worker_panics_total",
			"Engine runs that panicked (organic or injected) and were recovered."),
			func(c service.Counters) int64 { return c.WorkerPanics }},
		{reg.NewCounter("coemu_job_timeouts_total",
			"Jobs failed on their run.timeout deadline."),
			func(c service.Counters) int64 { return c.JobTimeouts }},
		{reg.NewCounter("coemu_faults_injected_total",
			"Service-layer faults actually fired by the armed fault plan."),
			func(c service.Counters) int64 { return c.FaultsInjected }},
	}
	cacheEntries := reg.NewGauge("coemu_cache_entries",
		"Reports currently held by the in-memory result cache.")
	storeEntries := reg.NewGauge("coemu_store_entries",
		"Entries currently in the persistent store.")
	jobsRetained := reg.NewGauge("coemu_jobs_retained",
		"Jobs currently queryable by ID.")
	queuePending := reg.NewGauge("coemu_queue_pending",
		"Jobs waiting in the worker queue.")
	queueCapacity := reg.NewGauge("coemu_queue_capacity",
		"Worker-queue capacity.")

	reg.OnCollect(func() {
		c := svc.Counters()
		for _, m := range mirrors {
			m.c.Set(m.get(c))
		}
		cacheEntries.Set(float64(c.CacheSize))
		storeEntries.Set(float64(c.StoreEntries))
		jobsRetained.Set(float64(c.Jobs))
		pending, capacity := svc.QueueDepth()
		queuePending.Set(float64(pending))
		queueCapacity.Set(float64(capacity))
	})
}

// reqSeq numbers requests daemon-wide for the X-Request-Id header and
// the per-request log line.
var reqSeq atomic.Int64

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (SSE,
// NDJSON sweeps) still flush through the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests wraps next so every request gets a daemon-unique ID
// (echoed as X-Request-Id) and one structured completion line.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", time.Since(start).Round(time.Microsecond).String(),
		)
	})
}

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
}

// handleJobEvents streams a job's lifecycle over Server-Sent Events:
// one "status" event per snapshot (the current state immediately, then
// one per transition), then the stream closes when the job is terminal.
func handleJobEvents(svc *service.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("response writer cannot stream"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()

		ch := job.Watch()
		for {
			select {
			case info, open := <-ch:
				if !open {
					return
				}
				data, err := json.Marshal(info)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "event: status\ndata: %s\n\n", data)
				flusher.Flush()
			case <-r.Context().Done():
				return
			}
		}
	}
}

// handleJobTrace serves a finished job's protocol event trace: the raw
// event stream as JSON by default, or a Chrome trace_event document
// (load it in Perfetto or chrome://tracing) with ?format=chrome.
func handleJobTrace(svc *service.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		rec, err := job.Trace()
		if err != nil {
			// Unfinished jobs may still produce a trace; untraced runs
			// never will.
			status := http.StatusNotFound
			if !jobFinished(job) {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			trace.WriteEventsJSON(w, rec.Events(), rec.Dropped())
		case "chrome", "perfetto":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%s-trace.json", job.ID()))
			w.WriteHeader(http.StatusOK)
			trace.WriteChromeTrace(w, rec.Events())
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown trace format %q (want json or chrome)", format))
		}
	}
}

// jobFinished reports whether a job has reached a terminal state.
func jobFinished(job *service.Job) bool {
	switch job.Info().Status {
	case service.StatusDone, service.StatusFailed, service.StatusCanceled:
		return true
	}
	return false
}
