package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"coemu/internal/faultplan"
	"coemu/internal/metrics"
	"coemu/internal/service"
)

// newObservedServer builds a daemon with the full observability stack:
// metrics registry wired into the service, request logging, and the
// caller's observe configuration.
func newObservedServer(t *testing.T, opts service.Options, cfg observeConfig) *httptest.Server {
	t.Helper()
	if cfg.Registry != nil {
		opts.Metrics = service.NewMetrics(cfg.Registry)
	}
	svc := service.New(opts)
	mux := newMux(svc, 1<<20, 100)
	ts := httptest.NewServer(observe(mux, svc, cfg))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// scrape fetches and parses /metrics, returning families by name.
func scrape(t *testing.T, base string) map[string]metrics.ParsedFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	fams, err := metrics.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := make(map[string]metrics.ParsedFamily, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// sampleValue returns the single unlabeled sample of a family.
func sampleValue(t *testing.T, fams map[string]metrics.ParsedFamily, name string) float64 {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("family %s missing from exposition", name)
	}
	for _, s := range f.Samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value
		}
	}
	t.Fatalf("family %s has no unlabeled sample", name)
	return 0
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	ts := newObservedServer(t, service.Options{Workers: 2}, observeConfig{Registry: reg})

	if code, _ := post(t, ts.URL+"/v1/run", specJSON(3000)); code != http.StatusOK {
		t.Fatalf("run = %d", code)
	}
	fams := scrape(t, ts.URL)
	runs := sampleValue(t, fams, "coemu_engine_runs_total")
	if runs != 1 {
		t.Fatalf("coemu_engine_runs_total = %v after one run, want 1", runs)
	}
	for _, name := range []string{
		"coemu_job_seconds", "coemu_job_queue_seconds",
		"coemu_engine_committed_cycles_total", "coemu_engine_transitions_total",
		"coemu_cache_hits_total", "coemu_queue_capacity", "coemu_jobs_retained",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("family %s missing from exposition", name)
		}
	}
	if got := sampleValue(t, fams, "coemu_engine_committed_cycles_total"); got < 3000 {
		t.Errorf("coemu_engine_committed_cycles_total = %v, want >= 3000", got)
	}

	// A second distinct run moves the mirrored counters; a duplicate
	// moves the cache-hit counter. Counters only go forward.
	if code, _ := post(t, ts.URL+"/v1/run", specJSON(3500)); code != http.StatusOK {
		t.Fatal("second run failed")
	}
	if code, _ := post(t, ts.URL+"/v1/run", specJSON(3000)); code != http.StatusOK {
		t.Fatal("duplicate run failed")
	}
	fams2 := scrape(t, ts.URL)
	if got := sampleValue(t, fams2, "coemu_engine_runs_total"); got != 2 {
		t.Errorf("coemu_engine_runs_total = %v after two distinct runs, want 2", got)
	}
	if got := sampleValue(t, fams2, "coemu_cache_hits_total"); got < 1 {
		t.Errorf("coemu_cache_hits_total = %v after a duplicate, want >= 1", got)
	}
	if got := sampleValue(t, fams2, "coemu_engine_committed_cycles_total"); got < 6500 {
		t.Errorf("committed cycles did not accumulate: %v", got)
	}
}

func TestMetricsChaosCountersMove(t *testing.T) {
	reg := metrics.NewRegistry()
	ts := newObservedServer(t, service.Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 5, Service: &faultplan.ServiceFault{WorkerPanic: 1}},
	}, observeConfig{Registry: reg})

	if code, _ := post(t, ts.URL+"/v1/run", specJSON(1500)); code != http.StatusInternalServerError {
		t.Fatalf("fault-doomed run = %d, want 500", code)
	}
	fams := scrape(t, ts.URL)
	if got := sampleValue(t, fams, "coemu_worker_panics_total"); got != 1 {
		t.Errorf("coemu_worker_panics_total = %v, want 1", got)
	}
	if got := sampleValue(t, fams, "coemu_faults_injected_total"); got < 1 {
		t.Errorf("coemu_faults_injected_total = %v, want >= 1", got)
	}
}

func TestMetricsDisabled(t *testing.T) {
	ts := newObservedServer(t, service.Options{Workers: 1}, observeConfig{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics without a registry = %d, want 404", resp.StatusCode)
	}
}

func TestSSEJobEvents(t *testing.T) {
	ts := newTestServer(t)

	code, body := post(t, ts.URL+"/v1/jobs", specJSON(4000))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var info service.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// Read the whole stream: the server closes it at the terminal state.
	var events int
	var last service.Info
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			events++
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
		} else if line != "" && line != "event: status" {
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no SSE events before stream close")
	}
	if last.Status != service.StatusDone {
		t.Fatalf("last SSE status = %s, want done", last.Status)
	}

	// Unknown job IDs are a clean 404, not a hung stream.
	resp2, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-job events = %d, want 404", resp2.StatusCode)
	}
}

// tracedSpecJSON is specJSON with the host-only trace knob set.
func tracedSpecJSON(cycles int64) string {
	s := specJSON(cycles)
	return strings.Replace(s, `"mode": "als"`, `"mode": "als", "trace": true`, 1)
}

func TestTraceEndpoint(t *testing.T) {
	ts := newTestServer(t)

	code, body := post(t, ts.URL+"/v1/jobs", tracedSpecJSON(3000))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var info service.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, info.ID)); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}

	// Default format: the raw event stream.
	code, body = get(t, fmt.Sprintf("%s/v1/jobs/%s/trace", ts.URL, info.ID))
	if code != http.StatusOK {
		t.Fatalf("trace = %d: %s", code, body)
	}
	var doc struct {
		Dropped int64             `json:"dropped"`
		Events  []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) == 0 {
		t.Fatal("trace has no events")
	}

	// Chrome format: a trace_event document with named tracks.
	code, body = get(t, fmt.Sprintf("%s/v1/jobs/%s/trace?format=chrome", ts.URL, info.ID))
	if code != http.StatusOK {
		t.Fatalf("chrome trace = %d", code)
	}
	var chrome []json.RawMessage
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome) == 0 {
		t.Fatal("chrome trace has no records")
	}
	if !strings.Contains(string(body), "thread_name") {
		t.Fatal("chrome trace missing track metadata")
	}

	if code, _ = get(t, fmt.Sprintf("%s/v1/jobs/%s/trace?format=bogus", ts.URL, info.ID)); code != http.StatusBadRequest {
		t.Fatalf("bogus format = %d, want 400", code)
	}

	// An untraced job has no trace.
	code, body = post(t, ts.URL+"/v1/jobs", specJSON(1000))
	if code != http.StatusAccepted {
		t.Fatal("untraced submit failed")
	}
	var plain service.Info
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	get(t, fmt.Sprintf("%s/v1/jobs/%s/result", ts.URL, plain.ID))
	if code, _ = get(t, fmt.Sprintf("%s/v1/jobs/%s/trace", ts.URL, plain.ID)); code != http.StatusNotFound {
		t.Fatalf("untraced trace = %d, want 404", code)
	}
}

func TestPprofGating(t *testing.T) {
	off := newObservedServer(t, service.Options{Workers: 1}, observeConfig{})
	if code, _ := get(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof off = %d, want 404", code)
	}
	on := newObservedServer(t, service.Options{Workers: 1}, observeConfig{Pprof: true})
	if code, _ := get(t, on.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof on = %d, want 200", code)
	}
}

func TestRequestIDHeader(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ts := newObservedServer(t, service.Options{Workers: 1}, observeConfig{Logger: logger})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(id, "req-") {
		t.Fatalf("X-Request-Id = %q, want req-*", id)
	}
}

func TestLogLevelParsing(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := parseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("parseLogLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseLogLevel("loud"); err == nil {
		t.Error("parseLogLevel accepted an unknown level")
	}
}
