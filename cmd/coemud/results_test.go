package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"coemu/internal/service"
	"coemu/internal/spec"
	"coemu/internal/store"
)

func TestResultsEndpoint(t *testing.T) {
	disk, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerOpts(t, service.Options{Workers: 2, Store: disk})

	sp, err := spec.Parse([]byte(specJSON(2000)))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := sp.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}

	// Before the run: a lookup is a 404, never a scheduled job.
	if code, _ := get(t, ts.URL+"/v1/results/"+hash); code != http.StatusNotFound {
		t.Fatalf("lookup before any run: status %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/results/not-a-hash"); code != http.StatusNotFound {
		t.Fatalf("bogus hash: status %d, want 404", code)
	}

	if code, body := post(t, ts.URL+"/v1/run", specJSON(2000)); code != http.StatusOK {
		t.Fatalf("run failed: %d: %s", code, body)
	}
	want, ok := disk.Get(hash)
	if !ok {
		t.Fatal("completed run not written through to the store")
	}

	// GET serves the exact canonical compact bytes — the contract that
	// lets a fleet client splice them into a sweep line verbatim.
	code, body := get(t, ts.URL+"/v1/results/"+hash)
	if code != http.StatusOK {
		t.Fatalf("lookup after run: status %d", code)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("lookup bytes differ from the stored canonical report:\n%s\n%s", body, want)
	}

	// HEAD probes presence: same status and length, no body.
	resp, err := http.Head(ts.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", resp.StatusCode)
	}
	if got := resp.ContentLength; got != int64(len(want)) {
		t.Fatalf("HEAD Content-Length %d, want %d", got, len(want))
	}
	if b, _ := io.ReadAll(resp.Body); len(b) != 0 {
		t.Fatalf("HEAD returned a %d-byte body", len(b))
	}

	// The endpoint must not have queued any engine work of its own.
	var c service.Counters
	if _, body := get(t, ts.URL+"/v1/stats"); json.Unmarshal(body, &c) != nil {
		t.Fatal("bad stats body")
	}
	if c.EngineRuns != 1 {
		t.Fatalf("engine runs = %d after one run plus lookups, want 1", c.EngineRuns)
	}
}

func TestHealthzReportsStoreAndQueue(t *testing.T) {
	disk, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerOpts(t, service.Options{Workers: 2, Store: disk})
	if code, body := post(t, ts.URL+"/v1/run", specJSON(1500)); code != http.StatusOK {
		t.Fatalf("run failed: %d: %s", code, body)
	}

	code, body := get(t, ts.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var h struct {
		OK            bool `json:"ok"`
		Queue         int  `json:"queue"`
		QueueCapacity int  `json:"queue_capacity"`
		Saturated     bool `json:"saturated"`
		Store         *struct {
			Entries     int   `json:"entries"`
			Bytes       int64 `json:"bytes"`
			Quarantined int64 `json:"quarantined"`
		} `json:"store"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body: %v: %s", err, body)
	}
	if !h.OK || h.Saturated {
		t.Fatalf("healthz %+v on an idle daemon", h)
	}
	if h.QueueCapacity <= 0 {
		t.Fatal("healthz lost the queue-depth contract")
	}
	if h.Store == nil {
		t.Fatalf("healthz has no store block: %s", body)
	}
	if h.Store.Entries != 1 || h.Store.Bytes <= 0 || h.Store.Quarantined != 0 {
		t.Fatalf("healthz store block %+v, want 1 entry with bytes", h.Store)
	}
}

func TestHealthzOmitsStoreWithoutOne(t *testing.T) {
	ts := newTestServer(t)
	_, body := get(t, ts.URL+"/v1/healthz")
	if strings.Contains(string(body), `"store"`) {
		t.Fatalf("store-less daemon advertises store stats: %s", body)
	}
}
