package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MixEntry is one weighted job kind in the generated load: "run" issues
// synchronous POST /v1/run requests, "job" drives the asynchronous
// submit-then-wait pair (POST /v1/jobs + GET /v1/jobs/{id}/result).
type MixEntry struct {
	Kind   string
	Weight int
}

// ParseMix parses a -mix flag value like "run=3,job=1" into weighted
// entries.
func ParseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weightStr, ok := strings.Cut(part, "=")
		weight := 1
		if ok {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("mix: bad weight in %q", part)
			}
			weight = w
		}
		switch kind {
		case "run", "job":
			mix = append(mix, MixEntry{Kind: kind, Weight: weight})
		default:
			return nil, fmt.Errorf("mix: unknown job kind %q (want run or job)", kind)
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("mix: empty")
	}
	return mix, nil
}

// schedule unrolls the mix into a repeating kind sequence, so the i-th
// request's kind is deterministic: weights become exact ratios, not
// sampling odds.
func schedule(mix []MixEntry) []string {
	var seq []string
	for _, m := range mix {
		for i := 0; i < m.Weight; i++ {
			seq = append(seq, m.Kind)
		}
	}
	return seq
}

// Options configures one load-generation session.
type Options struct {
	// BaseURL is the daemon under load, e.g. "http://localhost:8080".
	BaseURL string
	// Mix is the weighted job-kind mix (default: all "run").
	Mix []MixEntry
	// Concurrency is the ramp: one measurement step per worker count.
	Concurrency []int
	// Requests is the request budget per step.
	Requests int
	// Cycles is the base per-job cycle budget.
	Cycles int64
	// Variants is how many distinct specs the generator cycles through.
	// Identical specs coalesce on the daemon's canonical hash, so a
	// small variant pool turns the benchmark into a cache test; the
	// default (one variant per request across the whole ramp) defeats
	// deduplication entirely by giving every request its own cycle
	// budget.
	Variants int
	// Client is the HTTP client (default: a 30s-timeout client).
	Client *http.Client
}

// StepResult is one concurrency step's measurement.
type StepResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_rps"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// Knee marks where the latency curve bends: the last ramp step that
// still bought meaningful throughput for its added concurrency.
type Knee struct {
	Concurrency int     `json:"concurrency"`
	Throughput  float64 `json:"throughput_rps"`
	P99MS       float64 `json:"p99_ms"`
}

// Report is the session's full result, shaped for JSON.
type Report struct {
	BaseURL string       `json:"base_url"`
	Mix     string       `json:"mix"`
	Steps   []StepResult `json:"steps"`
	Knee    *Knee        `json:"knee,omitempty"`
}

// kneeGainFrac is the marginal-throughput threshold for the knee
// heuristic: a ramp step must improve throughput by at least this
// fraction over its predecessor to count as still scaling.
const kneeGainFrac = 0.10

// FindKnee locates the latency-curve knee in a ramp: the last step
// whose throughput improved by at least kneeGainFrac over the previous
// step. Steps past the knee add latency without adding throughput.
// Returns nil for ramps too short to bend (fewer than two steps).
func FindKnee(steps []StepResult) *Knee {
	if len(steps) < 2 {
		return nil
	}
	knee := steps[0]
	for _, s := range steps[1:] {
		if s.Throughput >= knee.Throughput*(1+kneeGainFrac) {
			knee = s
		}
	}
	return &Knee{Concurrency: knee.Concurrency, Throughput: knee.Throughput, P99MS: knee.P99MS}
}

// quantile returns the q-quantile of sorted (ascending) samples by
// nearest-rank (rounding up, so p99 of a small sample reads the tail,
// not the body).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q * float64(len(sorted)-1)))
	return sorted[idx]
}

// summarize folds per-request latencies (milliseconds) into one step
// result.
func summarize(concurrency int, latencies []float64, errors int, elapsed time.Duration) StepResult {
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	res := StepResult{
		Concurrency: concurrency,
		Requests:    len(latencies),
		Errors:      errors,
		Seconds:     elapsed.Seconds(),
	}
	if elapsed > 0 {
		res.Throughput = float64(len(latencies)) / elapsed.Seconds()
	}
	if len(sorted) > 0 {
		res.MeanMS = sum / float64(len(sorted))
		res.P50MS = quantile(sorted, 0.50)
		res.P95MS = quantile(sorted, 0.95)
		res.P99MS = quantile(sorted, 0.99)
		res.MaxMS = sorted[len(sorted)-1]
	}
	return res
}

// specBody renders the i-th generated spec. Variants are distinct
// cycle budgets (base + variant) — distinct canonical hashes, so the
// daemon cannot answer the load from its result cache.
func specBody(cycles int64, variants, i int) []byte {
	if variants > 1 {
		cycles += int64(i % variants)
	}
	return []byte(fmt.Sprintf(`{
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": %d}
	}`, cycles))
}

// Run drives the full concurrency ramp against the daemon and returns
// the per-step measurements with the located knee.
func Run(opts Options) (*Report, error) {
	if opts.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: request budget must be positive")
	}
	if len(opts.Concurrency) == 0 {
		opts.Concurrency = []int{1, 2, 4, 8}
	}
	if len(opts.Mix) == 0 {
		opts.Mix = []MixEntry{{Kind: "run", Weight: 1}}
	}
	if opts.Variants <= 0 {
		opts.Variants = opts.Requests * len(opts.Concurrency)
	}
	if opts.Cycles <= 0 {
		opts.Cycles = 5000
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	seq := schedule(opts.Mix)
	var mixNames []string
	for _, m := range opts.Mix {
		mixNames = append(mixNames, fmt.Sprintf("%s=%d", m.Kind, m.Weight))
	}
	rep := &Report{BaseURL: opts.BaseURL, Mix: strings.Join(mixNames, ",")}

	for si, c := range opts.Concurrency {
		if c < 1 {
			return nil, fmt.Errorf("loadgen: concurrency %d", c)
		}
		// base offsets the spec-variant index so later ramp steps do
		// not replay earlier steps' specs into the daemon's cache.
		step, err := runStep(client, opts, seq, c, si*opts.Requests)
		if err != nil {
			return nil, err
		}
		rep.Steps = append(rep.Steps, step)
	}
	rep.Knee = FindKnee(rep.Steps)
	return rep, nil
}

// runStep fires one step's request budget from c workers, measuring
// per-request latency.
func runStep(client *http.Client, opts Options, seq []string, c, base int) (StepResult, error) {
	latencies := make([]float64, opts.Requests)
	errs := make([]error, opts.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				body := specBody(opts.Cycles, opts.Variants, base+i)
				t0 := time.Now()
				errs[i] = oneRequest(client, opts.BaseURL, seq[i%len(seq)], body)
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1e3
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok := latencies[:0]
	errors := 0
	for i := range latencies {
		if errs[i] != nil {
			errors++
			continue
		}
		ok = append(ok, latencies[i])
	}
	return summarize(c, ok, errors, elapsed), nil
}

// oneRequest issues a single job of the given kind and waits for its
// result.
func oneRequest(client *http.Client, base, kind string, body []byte) error {
	switch kind {
	case "run":
		return expectOK(client.Post(base+"/v1/run", "application/json", bytes.NewReader(body)))
	case "job":
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, data)
		}
		var info struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &info); err != nil {
			return err
		}
		return expectOK(client.Get(base + "/v1/jobs/" + info.ID + "/result"))
	default:
		return fmt.Errorf("unknown job kind %q", kind)
	}
}

// expectOK drains a response and converts non-200 statuses to errors.
func expectOK(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}
