package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("run=3,job=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0] != (MixEntry{"run", 3}) || mix[1] != (MixEntry{"job", 1}) {
		t.Fatalf("mix = %+v", mix)
	}
	seq := schedule(mix)
	if len(seq) != 4 || seq[0] != "run" || seq[3] != "job" {
		t.Fatalf("schedule = %v", seq)
	}
	if _, err := ParseMix("sweep=1"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseMix("run=0"); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := ParseMix(""); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestParseRamp(t *testing.T) {
	ramp, err := parseRamp("1, 2,4")
	if err != nil || len(ramp) != 3 || ramp[2] != 4 {
		t.Fatalf("ramp = %v, %v", ramp, err)
	}
	if _, err := parseRamp("0"); err == nil {
		t.Error("zero concurrency accepted")
	}
	if _, err := parseRamp("a"); err == nil {
		t.Error("junk accepted")
	}
}

func TestQuantileAndSummarize(t *testing.T) {
	lat := []float64{5, 1, 3, 2, 4} // 1..5 ms
	s := summarize(2, lat, 1, time.Second)
	if s.Requests != 5 || s.Errors != 1 || s.Concurrency != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Throughput != 5 {
		t.Errorf("throughput = %v, want 5 req/s", s.Throughput)
	}
	if s.MeanMS != 3 || s.P50MS != 3 || s.MaxMS != 5 {
		t.Errorf("mean/p50/max = %v/%v/%v", s.MeanMS, s.P50MS, s.MaxMS)
	}
	if s.P99MS != 5 {
		t.Errorf("p99 = %v, want 5", s.P99MS)
	}
	empty := summarize(1, nil, 3, time.Second)
	if empty.Requests != 0 || empty.P99MS != 0 || empty.Errors != 3 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestFindKnee(t *testing.T) {
	steps := []StepResult{
		{Concurrency: 1, Throughput: 100, P99MS: 10},
		{Concurrency: 2, Throughput: 190, P99MS: 11},
		{Concurrency: 4, Throughput: 360, P99MS: 13},
		{Concurrency: 8, Throughput: 380, P99MS: 25}, // +5%: saturated
		{Concurrency: 16, Throughput: 385, P99MS: 60},
	}
	knee := FindKnee(steps)
	if knee == nil || knee.Concurrency != 4 {
		t.Fatalf("knee = %+v, want concurrency 4", knee)
	}
	if FindKnee(steps[:1]) != nil {
		t.Error("one-step ramp produced a knee")
	}
	// A ramp that never stops scaling knees at its last step.
	linear := []StepResult{
		{Concurrency: 1, Throughput: 100},
		{Concurrency: 2, Throughput: 200},
		{Concurrency: 4, Throughput: 400},
	}
	if k := FindKnee(linear); k == nil || k.Concurrency != 4 {
		t.Errorf("linear knee = %+v, want last step", k)
	}
}

func TestSpecVariantsDefeatDedup(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		seen[string(specBody(5000, 8, i))] = true
	}
	if len(seen) != 8 {
		t.Fatalf("8 requests over 8 variants produced %d distinct specs", len(seen))
	}
	// variants=1 pins one spec: the cache-measurement mode.
	if string(specBody(5000, 1, 0)) != string(specBody(5000, 1, 7)) {
		t.Fatal("variants=1 produced distinct specs")
	}
}

// TestRunAgainstStubDaemon drives the full ramp against a stub daemon
// and checks the report shape, the mixed endpoints, and that the spec
// jitter reaches the server.
func TestRunAgainstStubDaemon(t *testing.T) {
	var mu sync.Mutex
	cyclesSeen := map[int64]bool{}
	runCalls, jobCalls := 0, 0

	mux := http.NewServeMux()
	record := func(r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var sp struct {
			Run struct {
				Cycles int64 `json:"cycles"`
			} `json:"run"`
		}
		json.Unmarshal(body, &sp)
		mu.Lock()
		cyclesSeen[sp.Run.Cycles] = true
		mu.Unlock()
	}
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		record(r)
		mu.Lock()
		runCalls++
		mu.Unlock()
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		record(r)
		mu.Lock()
		jobCalls++
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id": "job-000001"}`))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(Options{
		BaseURL:     ts.URL,
		Mix:         []MixEntry{{"run", 1}, {"job", 1}},
		Concurrency: []int{1, 2},
		Requests:    12,
		Cycles:      5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(rep.Steps))
	}
	for _, s := range rep.Steps {
		if s.Requests != 12 || s.Errors != 0 {
			t.Fatalf("step %+v, want 12 clean requests", s)
		}
		if s.Throughput <= 0 || s.P99MS < s.P50MS {
			t.Fatalf("implausible step %+v", s)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if runCalls == 0 || jobCalls == 0 {
		t.Fatalf("mix not exercised: run=%d job=%d", runCalls, jobCalls)
	}
	// Default variants span the whole ramp: every request in every
	// step carries a distinct cycle budget, so nothing coalesces on
	// the daemon's canonical hash.
	if len(cyclesSeen) != 24 {
		t.Fatalf("saw %d distinct cycle budgets, want 24 (dedup-defeating jitter)", len(cyclesSeen))
	}
}

// TestRunErrorsCounted checks that failing requests land in the error
// count, not the latency distribution.
func TestRunErrorsCounted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	rep, err := Run(Options{BaseURL: ts.URL, Concurrency: []int{2}, Requests: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps[0].Errors != 6 || rep.Steps[0].Requests != 0 {
		t.Fatalf("step = %+v, want 6 errors and 0 clean requests", rep.Steps[0])
	}
}
