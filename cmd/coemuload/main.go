// Command coemuload generates load against a running coemud daemon and
// reports the latency/throughput curve: per-request p50/p95/p99 wall
// time and requests-per-second at each step of a concurrency ramp,
// plus the located knee — the last concurrency that still bought
// meaningful throughput, past which added clients only buy latency.
//
//	coemud -addr :8080 &
//	coemuload -addr http://localhost:8080 -n 200 -ramp 1,2,4,8,16
//	coemuload -addr http://localhost:8080 -mix run=3,job=1 -out report.json
//
// The job mix is weighted: "run" issues synchronous POST /v1/run
// requests, "job" the asynchronous submit-then-wait pair. Generated
// specs default to one distinct cycle budget per request so the
// daemon's canonical-hash deduplication cannot answer the load from
// its cache; -variants narrows the pool to measure cache behavior
// instead (e.g. -variants 1 makes every request after the first a
// cache hit).
//
// The human-readable table goes to stdout; -out writes the full
// measurement as JSON for dashboards and CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "daemon base URL")
	n := flag.Int("n", 100, "requests per ramp step")
	ramp := flag.String("ramp", "1,2,4,8", "comma-separated concurrency ramp")
	mixFlag := flag.String("mix", "run=1", "weighted job mix, e.g. run=3,job=1")
	cycles := flag.Int64("cycles", 5000, "base cycle budget per generated job")
	variants := flag.Int("variants", 0, "distinct spec variants (0 = one per request; 1 = all duplicates)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	out := flag.String("out", "", "write the JSON report to this file")
	flag.Parse()

	mix, err := ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	concurrency, err := parseRamp(*ramp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rep, err := Run(Options{
		BaseURL:     strings.TrimRight(*addr, "/"),
		Mix:         mix,
		Concurrency: concurrency,
		Requests:    *n,
		Cycles:      *cycles,
		Variants:    *variants,
		Client:      &http.Client{Timeout: *timeout},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	printReport(rep)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// parseRamp parses "1,2,4,8" into the concurrency steps.
func parseRamp(s string) ([]int, error) {
	var ramp []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("ramp: bad concurrency %q", part)
		}
		ramp = append(ramp, c)
	}
	if len(ramp) == 0 {
		return nil, fmt.Errorf("ramp: empty")
	}
	return ramp, nil
}

// printReport renders the measurement as a table plus the knee line.
func printReport(rep *Report) {
	fmt.Printf("target %s, mix %s\n", rep.BaseURL, rep.Mix)
	fmt.Printf("%6s %8s %7s %10s %9s %9s %9s %9s\n",
		"conc", "reqs", "errs", "req/s", "mean ms", "p50 ms", "p95 ms", "p99 ms")
	for _, s := range rep.Steps {
		fmt.Printf("%6d %8d %7d %10.1f %9.2f %9.2f %9.2f %9.2f\n",
			s.Concurrency, s.Requests, s.Errors, s.Throughput,
			s.MeanMS, s.P50MS, s.P95MS, s.P99MS)
	}
	if rep.Knee != nil {
		fmt.Printf("knee: concurrency %d (%.1f req/s, p99 %.2f ms) — beyond this, added clients buy latency, not throughput\n",
			rep.Knee.Concurrency, rep.Knee.Throughput, rep.Knee.P99MS)
	}
}
