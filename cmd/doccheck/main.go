// Command doccheck is the repository's missing-godoc linter: it walks
// Go source trees and reports every exported package-level identifier
// that lacks a doc comment, plus every package that lacks a package
// comment. CI runs it over the whole module so documentation debt
// fails the build instead of accumulating silently.
//
// Usage:
//
//	doccheck [dir ...]   (default ".")
//
// Rules, deliberately simpler than golint's but strict:
//
//   - every exported func, method (on an exported type), type, const
//     and var needs a doc comment on itself or its enclosing group;
//   - every package needs a package comment on at least one file;
//   - _test.go files and testdata/vendor directories are skipped.
//
// Exit status is 1 when findings exist, 0 otherwise.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var findings []string
	for _, root := range dirs {
		f, err := checkTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, f...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers without doc comments\n", len(findings))
		os.Exit(1)
	}
}

// checkTree lints every Go package directory under root.
func checkTree(root string) ([]string, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			byDir[dir] = append(byDir[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var findings []string
	for dir, files := range byDir {
		f, err := checkPackage(dir, files)
		if err != nil {
			return nil, err
		}
		findings = append(findings, f...)
	}
	return findings, nil
}

// checkPackage lints one package directory.
func checkPackage(dir string, files []string) ([]string, error) {
	fset := token.NewFileSet()
	var findings []string
	hasPkgDoc := false
	pkgName := ""
	sort.Strings(files)
	for _, path := range files {
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName = file.Name.Name
		if file.Doc != nil {
			hasPkgDoc = true
		}
		findings = append(findings, checkFile(fset, file)...)
	}
	if !hasPkgDoc && pkgName != "" {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkgName))
	}
	return findings, nil
}

// checkFile lints the top-level declarations of one file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			if d.Doc != nil && len(d.Specs) > 0 && d.Lparen == token.NoPos {
				// Single-spec declaration documented on the decl.
				continue
			}
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && !groupDoc {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil || groupDoc {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// exportedReceiver reports whether a method receiver names an exported
// type (methods on unexported types are internal API).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
