// Command sweep emits the evaluation data as CSV files for plotting:
//
//	sweep -out results/           # writes:
//	  results/table2.csv          analytic Table 2 (paper values included)
//	  results/figure4.csv         analytic Figure 4, all four series
//	  results/des_accuracy.csv    executable-engine accuracy sweep
//	  results/des_lob.csv         executable-engine LOB-depth sweep
//
// With -spec file.json, the DES sweeps run the declarative spec's
// design and base configuration instead of the built-in stream design;
// the sweep still varies accuracy and LOB depth around that base.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"coemu"
	"coemu/internal/perfmodel"
)

// jobs is the DES worker-pool width (the -j flag).
var jobs int

// desBase supplies the design, base config and cycle budget the DES
// sweeps vary around: the built-in stream design by default, or a
// declarative spec with -spec.
type desBase struct {
	design func() coemu.Design
	cfg    coemu.Config
	cycles int64
}

func main() {
	out := flag.String("out", ".", "output directory")
	cycles := flag.Int64("cycles", 20000, "target cycles per DES run")
	specPath := flag.String("spec", "", "sweep a declarative JSON spec's design instead of the built-in stream design")
	flag.IntVar(&jobs, "j", runtime.NumCPU(), "parallel DES engine runs")
	flag.Parse()
	if jobs < 1 {
		jobs = 1
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	base := desBase{design: desDesign, cycles: *cycles}
	if *specPath != "" {
		s, err := coemu.LoadSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		d, cfg, err := s.Compile()
		if err != nil {
			fatal(err)
		}
		base = desBase{design: func() coemu.Design { return d }, cfg: cfg, cycles: s.Run.Cycles}
	}
	writeTable2(filepath.Join(*out, "table2.csv"))
	writeFigure4(filepath.Join(*out, "figure4.csv"))
	writeDESAccuracy(filepath.Join(*out, "des_accuracy.csv"), base)
	writeDESLOB(filepath.Join(*out, "des_lob.csv"), base)
}

// parMap computes f(0..n-1) on a pool of jobs workers and returns the
// results in index order. Each engine run is independent and
// single-threaded, so the sweeps scale with cores while the CSV rows
// stay in their deterministic order.
func parMap[T any](n int, f func(i int) T) []T {
	res := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	workers := jobs
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func create(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
	return f
}

// paperTable2 maps accuracy to the published (perf, ratio).
var paperTable2 = map[float64][2]float64{
	1.000: {652e3, 16.75}, 0.990: {543e3, 13.97}, 0.960: {363e3, 9.33},
	0.900: {226e3, 5.80}, 0.800: {138e3, 3.56}, 0.600: {76.7e3, 1.91},
	0.300: {46.1e3, 1.19}, 0.100: {36.7e3, 0.94},
}

func writeTable2(path string) {
	f := create(path)
	defer f.Close()
	fmt.Fprintln(f, "p,tsim,tacc,tstore,trestore,tch,perf,ratio,paper_perf,paper_ratio")
	for _, r := range perfmodel.Table2() {
		pp := paperTable2[r.P]
		fmt.Fprintf(f, "%.3f,%.3e,%.3e,%.3e,%.3e,%.3e,%.1f,%.3f,%.1f,%.3f\n",
			r.P, r.Tsim, r.Tacc, r.Tstore, r.Trestore, r.Tch, r.Perf, r.Ratio, pp[0], pp[1])
	}
}

func writeFigure4(path string) {
	f := create(path)
	defer f.Close()
	series := perfmodel.Figure4()
	fmt.Fprint(f, "p")
	for _, s := range series {
		fmt.Fprintf(f, ",%q,%q_conventional", s.Config.Label(), s.Config.Label())
	}
	fmt.Fprintln(f)
	for i, p := range perfmodel.Figure4Accuracies {
		fmt.Fprintf(f, "%.3f", p)
		for _, s := range series {
			fmt.Fprintf(f, ",%.1f,%.1f", s.Rows[i].Perf, s.Conventional)
		}
		fmt.Fprintln(f)
	}
}

func desDesign() coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name: "dma", Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
					coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name: "mem", Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
}

// sweepMode picks the optimistic mode the DES sweeps run in: the
// base's own mode, or ALS when the base is conservative (sweeping a
// conservative run's accuracy would be a no-op).
func sweepMode(base desBase) coemu.Mode {
	if base.cfg.Mode == coemu.Conservative {
		return coemu.ALS
	}
	return base.cfg.Mode
}

func writeDESAccuracy(path string, base desBase) {
	f := create(path)
	defer f.Close()
	convCfg := base.cfg
	convCfg.Mode = coemu.Conservative
	conv, err := coemu.Run(base.design(), convCfg, base.cycles)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f, "p,perf,ratio,transitions,rollbacks,accesses,words")
	ps := []float64{1, 0.99, 0.96, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
	reps := parMap(len(ps), func(i int) *coemu.Report {
		cfg := base.cfg
		cfg.Mode = sweepMode(base)
		cfg.Accuracy, cfg.FaultSeed, cfg.RollbackVars = ps[i], 12345, 1000
		rep, err := coemu.Run(base.design(), cfg, base.cycles)
		if err != nil {
			fatal(err)
		}
		return rep
	})
	for i, rep := range reps {
		fmt.Fprintf(f, "%.2f,%.1f,%.3f,%d,%d,%d,%d\n",
			ps[i], rep.Perf(), rep.Perf()/conv.Perf(),
			rep.Stats.Transitions, rep.Stats.Rollbacks,
			rep.Channel.TotalAccesses(), rep.Channel.TotalWords())
	}
}

func writeDESLOB(path string, base desBase) {
	f := create(path)
	defer f.Close()
	convCfg := base.cfg
	convCfg.Mode = coemu.Conservative
	conv, err := coemu.Run(base.design(), convCfg, base.cycles)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f, "lob_words,perf,ratio,mean_transition,accesses")
	lobs := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	reps := parMap(len(lobs), func(i int) *coemu.Report {
		cfg := base.cfg
		cfg.Mode = sweepMode(base)
		cfg.LOBDepth = lobs[i]
		rep, err := coemu.Run(base.design(), cfg, base.cycles)
		if err != nil {
			fatal(err)
		}
		return rep
	})
	for i, rep := range reps {
		fmt.Fprintf(f, "%d,%.1f,%.3f,%.2f,%d\n",
			lobs[i], rep.Perf(), rep.Perf()/conv.Perf(),
			rep.TransitionLengths.Mean(), rep.Channel.TotalAccesses())
	}
}
