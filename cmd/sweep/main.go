// Command sweep runs parameter sweeps over the co-emulation engine —
// in-process on a local worker pool, or remotely against a coemud
// daemon — and emits the evaluation data as CSV files for plotting:
//
//	sweep -out results/           # writes:
//	  results/table2.csv          analytic Table 2 (paper values included)
//	  results/figure4.csv         analytic Figure 4, all four series
//	  results/des_accuracy.csv    executable-engine accuracy sweep
//	  results/des_lob.csv         executable-engine LOB-depth sweep
//
// With -spec file.json, the DES sweeps run the declarative spec's
// design and base configuration instead of the built-in stream design;
// the sweep still varies accuracy and LOB depth around that base.
//
// With -grid sweep.json, the command instead expands the declarative
// sweep document (a spec plus a "sweep" grid block, see internal/spec)
// and streams one NDJSON result line per point, in point order, plus a
// final aggregate line — the same wire format coemud's /v1/sweep
// serves, byte-identical line for line.
//
// With -remote http://host:8080[,http://host2:8080], runs are not
// executed in this process: grid mode expands the document locally and
// shards the points across the daemon fleet by consistent hash (one
// URL degenerates to plain failover submission), and the DES CSV
// sweeps (which then require -spec) submit their points as a spec
// batch — sharing the daemons' worker pools, result caches and
// persistent store with every other client. Remote submission is
// resilient: transient failures retry with exponential backoff
// (-retries bounds the budget), a health prober evicts dead daemons
// and rebalances only their unfinished points onto survivors, and
// points whose results already sit in the daemons' shared store are
// spliced via /v1/results/{hash} instead of re-run (see
// internal/sweepclient).
//
// With -resume journal.ndjson (grid+remote mode), completed point
// hashes are journaled durably as the sweep streams; re-running the
// same invocation after a crash restores the journaled points from the
// daemons' store and submits only the remainder, so an interrupted
// sweep restarts exactly where it stopped.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"coemu"
	"coemu/internal/perfmodel"
	"coemu/internal/service"
	"coemu/internal/spec"
	"coemu/internal/sweepclient"
)

// jobs is the DES worker-pool width (the -j flag).
var jobs int

// desBase supplies the design, base config and cycle budget the DES
// sweeps vary around: the built-in stream design by default, or a
// declarative spec with -spec.
type desBase struct {
	design func() coemu.Design
	cfg    coemu.Config
	cycles int64
}

func main() {
	out := flag.String("out", ".", "output directory for the CSV sweeps")
	cycles := flag.Int64("cycles", 20000, "target cycles per DES run")
	specPath := flag.String("spec", "", "sweep a declarative JSON spec's design instead of the built-in stream design")
	gridPath := flag.String("grid", "", "expand and run a declarative sweep document, streaming NDJSON results to stdout")
	remote := flag.String("remote", "", "comma-separated coemud base URLs; shard the sweep across the daemon fleet instead of in-process runs")
	retries := flag.Int("retries", sweepclient.DefaultRetries, "remote mode: how many transient failures (daemon down, 5xx, cut stream) to ride out")
	resume := flag.String("resume", "", "remote grid mode: crash-safe resume journal path; journals completed point hashes and skips them on re-run")
	flag.IntVar(&jobs, "j", runtime.NumCPU(), "parallel DES engine runs (local mode)")
	flag.Parse()
	if jobs < 1 {
		jobs = 1
	}
	remotes := splitRemotes(*remote)

	if *gridPath != "" {
		if err := runGrid(*gridPath, remotes, *retries, *resume, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *resume != "" {
		fatal(fmt.Errorf("-resume applies to remote grid sweeps (-grid with -remote)"))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	base := desBase{design: desDesign, cycles: *cycles}
	var baseSpec *coemu.Spec
	if *specPath != "" {
		s, err := coemu.LoadSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		d, cfg, err := s.Compile()
		if err != nil {
			fatal(err)
		}
		base = desBase{design: func() coemu.Design { return d }, cfg: cfg, cycles: s.Run.Cycles}
		baseSpec = s
	}
	var runner desRunner = &localRunner{base: base}
	if len(remotes) > 0 {
		if baseSpec == nil {
			fatal(fmt.Errorf("-remote CSV sweeps need -spec (the daemon runs declarative specs)"))
		}
		client, err := newRemoteClient(remotes, *retries)
		if err != nil {
			fatal(err)
		}
		runner = &remoteRunner{base: baseSpec, client: client}
	}
	writeTable2(filepath.Join(*out, "table2.csv"))
	writeFigure4(filepath.Join(*out, "figure4.csv"))
	writeDESAccuracy(filepath.Join(*out, "des_accuracy.csv"), base, runner)
	writeDESLOB(filepath.Join(*out, "des_lob.csv"), base, runner)
}

// runGrid executes a sweep document and streams the NDJSON results —
// locally on the worker pool, or sharded across a coemud fleet with
// -remote.
func runGrid(path string, remotes []string, retries int, resume string, w io.Writer) error {
	if len(remotes) > 0 {
		// Expand locally so a bad document fails with a spec error
		// rather than an HTTP one, and so retry rounds can re-submit
		// individual points.
		ss, err := spec.LoadSweep(path)
		if err != nil {
			return err
		}
		points, err := ss.Expand()
		if err != nil {
			return err
		}
		opts := sweepclient.FleetOptions{
			URLs:    remotes,
			Retries: retries,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		if resume != "" {
			journal, jerr := sweepclient.OpenJournal(resume)
			if jerr != nil {
				return jerr
			}
			defer journal.Close()
			opts.Journal = journal
		}
		fleet, err := sweepclient.NewFleet(opts)
		if err != nil {
			return err
		}
		defer fleet.Close()
		lines, rawAgg, err := fleet.RunPoints(context.Background(), points)
		if err != nil {
			return err
		}
		return sweepclient.WriteNDJSON(w, lines, rawAgg)
	}
	if resume != "" {
		return fmt.Errorf("-resume needs -remote: local grid runs have no fleet store to restore from")
	}

	ss, err := spec.LoadSweep(path)
	if err != nil {
		return err
	}
	points, err := ss.Expand()
	if err != nil {
		return err
	}
	type outcome struct {
		res *service.Result
		err error
	}
	results := parMap(len(points), func(i int) outcome {
		rep, err := runPoint(points[i])
		if err != nil {
			return outcome{err: err}
		}
		res, err := service.NewResult(rep)
		return outcome{res: res, err: err}
	})
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	agg := service.NewSweepAggregator(len(points))
	for i, o := range results {
		pr := service.PointResult{Index: i, Name: points[i].Name, Result: o.res, Err: o.err}
		if h, err := points[i].CanonicalHash(); err == nil {
			pr.Hash = h
		}
		if err := enc.Encode(agg.Add(pr)); err != nil {
			return err
		}
	}
	return enc.Encode(agg.Line())
}

// runPoint compiles and runs one expanded spec in-process.
func runPoint(sp *spec.Spec) (*coemu.Report, error) {
	d, cfg, err := sp.Compile()
	if err != nil {
		return nil, err
	}
	return coemu.Run(d, cfg, sp.Run.Cycles)
}

// parMap computes f(0..n-1) on a pool of jobs workers and returns the
// results in index order. Each engine run is independent and
// single-threaded, so the sweeps scale with cores while the output
// rows stay in their deterministic order.
func parMap[T any](n int, f func(i int) T) []T {
	res := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	workers := jobs
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func create(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
	return f
}

// splitRemotes parses the comma-separated -remote list.
func splitRemotes(remote string) []string {
	var urls []string
	for _, u := range strings.Split(remote, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// newRemoteClient builds the resilient daemon client the remote modes
// share, logging retry/failover decisions to stderr so they don't
// pollute the NDJSON stream on stdout.
func newRemoteClient(remotes []string, retries int) (*sweepclient.Client, error) {
	return sweepclient.New(sweepclient.Options{
		URLs:    remotes,
		Retries: retries,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
}

// desPoint is one DES sweep point: the base run with the paper's
// sweep parameters overridden. It deliberately carries only the fields
// the CSV sweeps vary, so local (coemu.Config) and remote (spec.Run)
// execution stay in lockstep.
type desPoint struct {
	mode         coemu.Mode
	setAccuracy  bool
	accuracy     float64
	faultSeed    uint64
	rollbackVars int
	lobDepth     int // 0 keeps the base depth
}

// desReport is the report subset the CSV writers consume, sourced from
// an in-process coemu.Report or a remote service.ReportView.
type desReport struct {
	perf           float64
	transitions    int64
	rollbacks      int64
	accesses       int64
	words          int64
	meanTransition float64
}

// desRunner executes DES sweep points, locally or against a daemon.
type desRunner interface {
	runPoints(points []desPoint) ([]*desReport, error)
}

// localRunner runs points in-process on the parMap pool.
type localRunner struct {
	base desBase
}

func (l *localRunner) runPoints(points []desPoint) ([]*desReport, error) {
	var firstErr error
	var mu sync.Mutex
	reps := parMap(len(points), func(i int) *desReport {
		cfg := l.base.cfg
		applyPointConfig(&cfg, points[i])
		rep, err := coemu.Run(l.base.design(), cfg, l.base.cycles)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return nil
		}
		return localReport(rep)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return reps, nil
}

// applyPointConfig overlays a sweep point on a base engine config.
func applyPointConfig(cfg *coemu.Config, p desPoint) {
	cfg.Mode = p.mode
	if p.setAccuracy {
		cfg.Accuracy, cfg.FaultSeed, cfg.RollbackVars = p.accuracy, p.faultSeed, p.rollbackVars
	}
	if p.lobDepth != 0 {
		cfg.LOBDepth = p.lobDepth
	}
}

// localReport projects an in-process report.
func localReport(rep *coemu.Report) *desReport {
	r := &desReport{
		perf:        rep.Perf(),
		transitions: rep.Stats.Transitions,
		rollbacks:   rep.Stats.Rollbacks,
		accesses:    rep.Channel.TotalAccesses(),
		words:       rep.Channel.TotalWords(),
	}
	if rep.TransitionLengths != nil {
		r.meanTransition = rep.TransitionLengths.Mean()
	}
	return r
}

// remoteRunner submits points to coemud daemons as a /v1/sweep spec
// batch: a daemon's pool runs them in parallel and its cache/store
// answer repeats without recomputation. The shared sweepclient rides
// out transient daemon failures and fails over across -remote URLs.
type remoteRunner struct {
	base   *coemu.Spec
	client *sweepclient.Client
}

func (r *remoteRunner) runPoints(points []desPoint) ([]*desReport, error) {
	specs := make([]*spec.Spec, len(points))
	for i, p := range points {
		sp := *r.base
		applyPointRun(&sp.Run, p)
		specs[i] = &sp
	}
	lines, _, err := r.client.RunPoints(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	reps := make([]*desReport, len(lines))
	for i, pl := range lines {
		if pl.Error != "" {
			return nil, fmt.Errorf("remote sweep point %d: %s", pl.Index, pl.Error)
		}
		var v service.ReportView
		if err := json.Unmarshal(pl.Report, &v); err != nil {
			return nil, fmt.Errorf("remote sweep point %d: %w", pl.Index, err)
		}
		reps[i] = remoteReport(&v)
	}
	return reps, nil
}

// applyPointRun overlays a sweep point on a base declarative run.
func applyPointRun(run *spec.Run, p desPoint) {
	run.Mode = strings.ToLower(p.mode.String())
	if p.setAccuracy {
		run.Accuracy, run.FaultSeed, run.RollbackVars = p.accuracy, p.faultSeed, p.rollbackVars
	}
	if p.lobDepth != 0 {
		run.LOBDepth = p.lobDepth
	}
}

// remoteReport projects a daemon report view.
func remoteReport(v *service.ReportView) *desReport {
	r := &desReport{
		perf:        v.Perf,
		transitions: v.Stats.Transitions,
		rollbacks:   v.Stats.Rollbacks,
		accesses:    v.Channel.TotalAccesses(),
		words:       v.Channel.TotalWords(),
	}
	if v.TransitionLengths != nil {
		r.meanTransition = v.TransitionLengths.Mean
	}
	return r
}

// paperTable2 maps accuracy to the published (perf, ratio).
var paperTable2 = map[float64][2]float64{
	1.000: {652e3, 16.75}, 0.990: {543e3, 13.97}, 0.960: {363e3, 9.33},
	0.900: {226e3, 5.80}, 0.800: {138e3, 3.56}, 0.600: {76.7e3, 1.91},
	0.300: {46.1e3, 1.19}, 0.100: {36.7e3, 0.94},
}

func writeTable2(path string) {
	f := create(path)
	defer f.Close()
	fmt.Fprintln(f, "p,tsim,tacc,tstore,trestore,tch,perf,ratio,paper_perf,paper_ratio")
	for _, r := range perfmodel.Table2() {
		pp := paperTable2[r.P]
		fmt.Fprintf(f, "%.3f,%.3e,%.3e,%.3e,%.3e,%.3e,%.1f,%.3f,%.1f,%.3f\n",
			r.P, r.Tsim, r.Tacc, r.Tstore, r.Trestore, r.Tch, r.Perf, r.Ratio, pp[0], pp[1])
	}
}

func writeFigure4(path string) {
	f := create(path)
	defer f.Close()
	series := perfmodel.Figure4()
	fmt.Fprint(f, "p")
	for _, s := range series {
		fmt.Fprintf(f, ",%q,%q_conventional", s.Config.Label(), s.Config.Label())
	}
	fmt.Fprintln(f)
	for i, p := range perfmodel.Figure4Accuracies {
		fmt.Fprintf(f, "%.3f", p)
		for _, s := range series {
			fmt.Fprintf(f, ",%.1f,%.1f", s.Rows[i].Perf, s.Conventional)
		}
		fmt.Fprintln(f)
	}
}

func desDesign() coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name: "dma", Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
					coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name: "mem", Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
}

// sweepMode picks the optimistic mode the DES sweeps run in: the
// base's own mode, or ALS when the base is conservative (sweeping a
// conservative run's accuracy would be a no-op).
func sweepMode(base desBase) coemu.Mode {
	if base.cfg.Mode == coemu.Conservative {
		return coemu.ALS
	}
	return base.cfg.Mode
}

func writeDESAccuracy(path string, base desBase, runner desRunner) {
	f := create(path)
	defer f.Close()
	conv, err := runner.runPoints([]desPoint{{mode: coemu.Conservative}})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f, "p,perf,ratio,transitions,rollbacks,accesses,words")
	ps := []float64{1, 0.99, 0.96, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
	points := make([]desPoint, len(ps))
	for i, p := range ps {
		points[i] = desPoint{mode: sweepMode(base), setAccuracy: true,
			accuracy: p, faultSeed: 12345, rollbackVars: 1000}
	}
	reps, err := runner.runPoints(points)
	if err != nil {
		fatal(err)
	}
	for i, rep := range reps {
		fmt.Fprintf(f, "%.2f,%.1f,%.3f,%d,%d,%d,%d\n",
			ps[i], rep.perf, rep.perf/conv[0].perf,
			rep.transitions, rep.rollbacks, rep.accesses, rep.words)
	}
}

func writeDESLOB(path string, base desBase, runner desRunner) {
	f := create(path)
	defer f.Close()
	conv, err := runner.runPoints([]desPoint{{mode: coemu.Conservative}})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(f, "lob_words,perf,ratio,mean_transition,accesses")
	lobs := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	points := make([]desPoint, len(lobs))
	for i, lob := range lobs {
		points[i] = desPoint{mode: sweepMode(base), lobDepth: lob}
	}
	reps, err := runner.runPoints(points)
	if err != nil {
		fatal(err)
	}
	for i, rep := range reps {
		fmt.Fprintf(f, "%d,%.1f,%.3f,%.2f,%d\n",
			lobs[i], rep.perf, rep.perf/conv[0].perf,
			rep.meanTransition, rep.accesses)
	}
}
