// Command tables regenerates every table and figure of the paper's
// evaluation, printing the published values next to the reproduced ones.
//
//	tables -exp all        # everything (default)
//	tables -exp channel    # §1.2 channel characterization
//	tables -exp table2     # Table 2: Performance of ALS
//	tables -exp figure4    # Figure 4: accuracy sweep, four configs
//	tables -exp sla        # §6 SLA claims
//	tables -exp headline   # abstract's 1500% claim
//	tables -exp des        # executable-engine accuracy sweep (DES)
package main

import (
	"flag"
	"fmt"
	"os"

	"coemu"
	"coemu/internal/device"
	"coemu/internal/perfmodel"
	"coemu/internal/vclock"
)

func main() {
	exp := flag.String("exp", "all", "experiment: channel|table2|figure4|sla|headline|des|all")
	cycles := flag.Int64("cycles", 20000, "target cycles per DES run")
	flag.Parse()

	switch *exp {
	case "channel":
		channelExp()
	case "table2":
		table2Exp()
	case "figure4":
		figure4Exp()
	case "sla":
		slaExp()
	case "headline":
		headlineExp()
	case "des":
		desExp(*cycles)
	case "all":
		channelExp()
		fmt.Println()
		table2Exp()
		fmt.Println()
		figure4Exp()
		fmt.Println()
		slaExp()
		fmt.Println()
		headlineExp()
		fmt.Println()
		desExp(*cycles)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// channelExp reproduces the §1.2 channel characterization: the layered
// startup overhead and the effective bandwidth collapse for short
// transfers.
func channelExp() {
	s := device.IPROVE()
	fmt.Println("== E1: simulator-accelerator channel characterization (paper §1.2) ==")
	fmt.Printf("startup overhead: %v (paper: 12.2 µs)\n", s.Startup())
	for _, l := range s.Layers {
		fmt.Printf("  %-48s %v\n", l.Name, l.Startup)
	}
	fmt.Printf("payload sim->acc: %.2f ns/word (paper: 49.95)\n", float64(s.WordPsSimToAcc)/1e3)
	fmt.Printf("payload acc->sim: %.2f ns/word (paper: 75.73)\n", float64(s.WordPsAccToSim)/1e3)
	fmt.Println("\nwords  access-cost   eff-bandwidth  startup-share")
	for _, n := range []int{1, 2, 5, 16, 64, 256, 1024, 8192} {
		fmt.Printf("%5d  %11v  %9.2f MW/s  %8.1f%%\n",
			n, s.AccessCost(device.SimToAcc, n),
			s.EffectiveBandwidth(device.SimToAcc, n)/1e6,
			100*s.StartupFraction(device.SimToAcc, n))
	}
	fmt.Println("\nA per-cycle payload of <=5 words (the paper's observation for")
	fmt.Println("bus-connected SoCs) keeps the channel >97% startup overhead —")
	fmt.Println("the motivation for merging transfers into burst packets.")
}

// paperTable2 is the published table for side-by-side printing.
var paperTable2 = map[float64][2]float64{ // p -> {perf, ratio}
	1.000: {652e3, 16.75}, 0.990: {543e3, 13.97}, 0.960: {363e3, 9.33},
	0.900: {226e3, 5.80}, 0.800: {138e3, 3.56}, 0.600: {76.7e3, 1.91},
	0.300: {46.1e3, 1.19}, 0.100: {36.7e3, 0.94},
}

func table2Exp() {
	fmt.Println("== E2: Table 2 — Performance of ALS (analytic model) ==")
	fmt.Println("assumptions: sim 1,000 kcyc/s, acc 10 Mcyc/s, LOB 64 words, 1000 rollback vars")
	conv := perfmodel.Default().Conventional()
	fmt.Printf("conventional baseline: %.1f kcyc/s (paper: 38.9)\n\n", conv/1e3)
	fmt.Println(" p      Tsim     Tacc     Tstore    Trest.    Tch       Perf      Ratio | paper Perf  Ratio")
	for _, r := range perfmodel.Table2() {
		pp := paperTable2[r.P]
		fmt.Printf("%5.3f  %.1e  %.1e  %.2e  %.2e  %.1e  %7.1fk  %5.2f | %8.1fk  %5.2f\n",
			r.P, r.Tsim, r.Tacc, r.Tstore, r.Trestore, r.Tch, r.Perf/1e3, r.Ratio,
			pp[0]/1e3, pp[1])
	}
}

func figure4Exp() {
	fmt.Println("== E3: Figure 4 — simulation performance vs prediction accuracy ==")
	series := perfmodel.Figure4()
	fmt.Print("  p    ")
	for _, s := range series {
		fmt.Printf("  %-22s", s.Config.Label())
	}
	fmt.Println()
	for i, p := range perfmodel.Figure4Accuracies {
		fmt.Printf("%5.3f  ", p)
		for _, s := range series {
			fmt.Printf("  %-22.0f", s.Rows[i].Perf)
		}
		fmt.Println()
	}
	fmt.Println("\nconventional baselines (horizontal lines in the figure):")
	for _, s := range series[:1] {
		_ = s
	}
	fmt.Printf("  sim=100k:  %.1f kcyc/s (paper: 28.8)\n", series[0].Conventional/1e3)
	fmt.Printf("  sim=1000k: %.1f kcyc/s (paper: 38.9)\n", series[2].Conventional/1e3)
}

func slaExp() {
	fmt.Println("== E4: SLA results (paper §6 text) ==")
	for _, r := range perfmodel.SLA() {
		paperGain, paperBE := 3.25, 0.98
		if r.SimSpeed == 1e6 {
			paperGain, paperBE = 15.34, 0.70
		}
		fmt.Printf("sim=%6.0fk: max gain %.2f (paper %.2f), break-even accuracy %.2f (paper %.2f)\n",
			r.SimSpeed/1e3, r.MaxGain, paperGain, r.BreakEven, paperBE)
	}
}

func headlineExp() {
	fmt.Println("== E5: headline claim (abstract) ==")
	fmt.Printf("gain at 100%% prediction accuracy: %.0f%% (paper: ~1500%%)\n",
		coemu.HeadlineGainPercent())
}

// desExp sweeps the executable engine over the accuracy grid using the
// canonical ALS configuration (streaming RTL master in the accelerator,
// TL memory in the simulator) with injected fault rates, demonstrating
// that the discrete-event system reproduces the analytic shape.
func desExp(cycles int64) {
	fmt.Println("== E6: executable engine (DES) accuracy sweep, ALS streaming design ==")
	design := coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name:   "dma",
			Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
					coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name:   "mem",
			Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
	conv, err := coemu.Run(design, coemu.Config{Mode: coemu.Conservative}, cycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("conventional: %.1f kcyc/s (%d channel accesses)\n\n",
		conv.Perf()/1e3, conv.Channel.TotalAccesses())
	fmt.Println(" p      perf       ratio  transitions  rollbacks  accesses  words")
	for _, p := range []float64{1, 0.99, 0.96, 0.9, 0.8, 0.6, 0.3, 0.1} {
		rep, err := coemu.Run(design, coemu.Config{
			Mode: coemu.ALS, Accuracy: p, FaultSeed: 12345, RollbackVars: 1000,
		}, cycles)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%5.2f  %8.1fk  %6.2f  %11d  %9d  %8d  %6d\n",
			p, rep.Perf()/1e3, rep.Perf()/conv.Perf(),
			rep.Stats.Transitions, rep.Stats.Rollbacks,
			rep.Channel.TotalAccesses(), rep.Channel.TotalWords())
	}
	fmt.Println("\nper-cycle cost breakdown at p=1 (compare Table 2 row 1):")
	rep, _ := coemu.Run(design, coemu.Config{Mode: coemu.ALS, RollbackVars: 1000}, cycles)
	for _, c := range []vclock.Category{vclock.Sim, vclock.Acc, vclock.Store, vclock.Restore, vclock.Channel} {
		fmt.Printf("  %-9s %v/cycle\n", c, rep.Ledger.PerCycle(c, rep.Cycles))
	}
}
