// Command vcddump runs a small co-emulation scenario and writes both the
// reference and co-emulated bus traces as VCD waveforms (plus CSV),
// letting the cycle-exact equivalence be inspected in a waveform viewer.
//
//	vcddump -cycles 200 -mode auto -out trace
//	# writes trace_ref.vcd, trace_coemu.vcd, trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"coemu"
)

func main() {
	cycles := flag.Int64("cycles", 200, "target cycles")
	modeName := flag.String("mode", "auto", "conservative|sla|als|auto")
	out := flag.String("out", "trace", "output file prefix")
	flag.Parse()

	mode, ok := map[string]coemu.Mode{
		"conservative": coemu.Conservative,
		"sla":          coemu.SLA,
		"als":          coemu.ALS,
		"auto":         coemu.Auto,
	}[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	design := coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name: "dma", Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewDMACopy(
					coemu.Window{Lo: 0x0000, Hi: 0x1000},
					coemu.Window{Lo: 0x8000, Hi: 0x9000},
					coemu.BurstIncr8, 1, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{
			{
				Name: "sram", Domain: coemu.SimDomain,
				Region: coemu.Region{Lo: 0x0000, Hi: 0x4000},
				New:    func() coemu.Slave { return coemu.NewSRAM("sram") },
			},
			{
				Name: "ddr", Domain: coemu.AccDomain,
				Region:    coemu.Region{Lo: 0x8000, Hi: 0xC000},
				New:       func() coemu.Slave { return coemu.NewMemory("ddr", 1, 0) },
				WaitFirst: 1, WaitNext: 0,
			},
		},
	}

	ref, err := coemu.RunReference(design, *cycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := coemu.Run(design, coemu.Config{Mode: mode, KeepTrace: true}, *cycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	diverged := -1
	for i := range ref {
		if !ref[i].Equal(rep.Trace[i]) {
			diverged = i
			break
		}
	}
	if diverged >= 0 {
		fmt.Printf("WARNING: traces diverge at cycle %d\n", diverged)
	} else {
		fmt.Printf("traces identical over %d cycles\n", len(ref))
	}

	write := func(name string, f func(*os.File) error) {
		fh, err := os.Create(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer fh.Close()
		if err := f(fh); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", name)
	}
	write(*out+"_ref.vcd", func(f *os.File) error { return coemu.WriteVCD(f, "ahb_ref", ref, 10) })
	write(*out+"_coemu.vcd", func(f *os.File) error { return coemu.WriteVCD(f, "ahb_coemu", rep.Trace, 10) })
	write(*out+".csv", func(f *os.File) error { return coemu.WriteTraceCSV(f, rep.Trace) })
}
