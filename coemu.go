// Package coemu is a transaction-level hardware/software co-emulation
// framework implementing the prediction packetizing scheme of Lee,
// Chung, Ahn, Lee and Kyung, "A Prediction Packetizing Scheme for
// Reducing Channel Traffic in Transaction-Level Hardware/Software
// Co-Emulation" (DATE 2005).
//
// An SoC design — AHB bus masters and slaves, each assigned to either
// the software simulator domain (transaction-level components) or the
// hardware accelerator domain (RTL components) — is split across two
// half-bus models connected by a cost-modeled simulator–accelerator
// channel. The engine synchronizes the domains either conservatively
// (both domains exchange signal values every target cycle, paying the
// channel's 12.2 µs startup overhead twice per cycle) or optimistically:
// a leader domain runs ahead predicting the other domain's responses,
// packetizes dozens of cycles into one burst channel access, and rolls
// back when the lagger detects a misprediction.
//
// # Quick start
//
//	design := coemu.Design{
//	    Masters: []coemu.MasterSpec{{
//	        Name:   "dma",
//	        Domain: coemu.AccDomain, // an RTL block in the accelerator
//	        NewGen: func() coemu.Generator {
//	            return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x4000},
//	                true, coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
//	        },
//	    }},
//	    Slaves: []coemu.SlaveSpec{{
//	        Name:   "mem",
//	        Domain: coemu.SimDomain, // a TL model in the simulator
//	        Region: coemu.Region{Lo: 0, Hi: 0x8000},
//	        New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
//	    }},
//	}
//	rep, err := coemu.Run(design, coemu.Config{Mode: coemu.ALS}, 100000)
//	// rep.Perf() is the modeled simulation performance in cycles/sec.
//
// The virtual-time report breaks down exactly like the paper's Table 2:
// simulator time, accelerator time, state store/restore time and channel
// time per committed target cycle.
//
// The analytic counterpart of the engine lives behind Table2, Figure4,
// SLAClaims and HeadlineGainPercent, which regenerate the paper's
// published evaluation.
package coemu

import (
	"context"
	"io"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/core"
	"coemu/internal/device"
	"coemu/internal/ip"
	"coemu/internal/perfmodel"
	"coemu/internal/spec"
	"coemu/internal/trace"
	"coemu/internal/workload"
)

// Core design and engine types.
type (
	// Design describes a complete SoC: components and domain placement.
	Design = core.Design
	// MasterSpec declares one bus master.
	MasterSpec = core.MasterSpec
	// SlaveSpec declares one bus slave.
	SlaveSpec = core.SlaveSpec
	// Config parameterizes a run (mode, speeds, LOB depth, accuracy...).
	Config = core.Config
	// Report is the outcome of a run: virtual-time ledger, behavioral
	// counters, channel statistics and (optionally) the MSABS trace.
	Report = core.Report
	// Mode selects conservative or optimistic synchronization.
	Mode = core.Mode
	// DomainID places a component in the simulator or the accelerator.
	DomainID = core.DomainID
	// Engine drives one co-emulation session.
	Engine = core.Engine
	// Stats carries the engine's behavioral counters.
	Stats = core.Stats
)

// Bus-facing component types.
type (
	// Region is a half-open address window routed to one slave.
	Region = bus.Region
	// Slave is the AHB slave interface.
	Slave = bus.Slave
	// Master is the AHB master interface.
	Master = bus.Master
	// Generator supplies transfers to a traffic master.
	Generator = ip.Generator
	// Xfer is one generated bus transaction.
	Xfer = ip.Xfer
	// Window is an address range for workload generators.
	Window = workload.Window
	// CycleState is the per-cycle MSABS record (full bus state).
	CycleState = amba.CycleState
)

// Domain placement.
const (
	// SimDomain runs transaction-level components on the simulator.
	SimDomain = core.SimDomain
	// AccDomain runs RTL components on the accelerator.
	AccDomain = core.AccDomain
)

// Operating modes.
const (
	// Conservative synchronizes every cycle (the paper's baseline).
	Conservative = core.Conservative
	// SLA lets the simulator lead (Simulator Leading Accelerator).
	SLA = core.SLA
	// ALS lets the accelerator lead (Accelerator Leading Simulator).
	ALS = core.ALS
	// Auto picks the leader per transition from the data-flow direction.
	Auto = core.Auto
)

// AHB vocabulary re-exported for building workloads.
type (
	// Burst is the HBURST encoding.
	Burst = amba.Burst
	// Size is the HSIZE encoding.
	Size = amba.Size
)

// Burst types.
const (
	BurstSingle = amba.BurstSingle
	BurstIncr   = amba.BurstIncr
	BurstWrap4  = amba.BurstWrap4
	BurstIncr4  = amba.BurstIncr4
	BurstWrap8  = amba.BurstWrap8
	BurstIncr8  = amba.BurstIncr8
	BurstWrap16 = amba.BurstWrap16
	BurstIncr16 = amba.BurstIncr16
)

// Transfer sizes supported by the 32-bit data bus.
const (
	Size8  = amba.Size8
	Size16 = amba.Size16
	Size32 = amba.Size32
)

// NewEngine builds the split co-emulation system for a design.
func NewEngine(d Design, cfg Config) (*Engine, error) { return core.NewEngine(d, cfg) }

// Run builds and executes a co-emulation session for the given number
// of target cycles.
func Run(d Design, cfg Config, cycles int64) (*Report, error) {
	return RunContext(context.Background(), d, cfg, cycles)
}

// RunContext is Run with cancellation: the engine polls ctx at
// domain-cycle granularity (without allocating in the hot loop), so a
// cancel or deadline lands within one target cycle of work and the run
// returns ctx.Err().
func RunContext(ctx context.Context, d Design, cfg Config, cycles int64) (*Report, error) {
	e, err := core.NewEngine(d, cfg)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, cycles)
}

// RunReference executes the monolithic golden model of the design and
// returns its MSABS trace; co-emulated traces must match it exactly.
func RunReference(d Design, cycles int64) ([]CycleState, error) {
	return core.RunReference(d, cycles)
}

// Slave constructors.

// NewSRAM creates a zero-wait memory slave.
func NewSRAM(name string) *ip.Memory { return ip.NewSRAM(name) }

// NewMemory creates a memory slave with a deterministic wait profile:
// firstWait cycles for the first beat of a run, nextWait for later ones.
func NewMemory(name string, firstWait, nextWait int) *ip.Memory {
	return ip.NewMemory(name, firstWait, nextWait)
}

// NewJitterMemory creates a memory with pseudo-random extra latency in
// [0, spread] per beat — traffic the response predictor cannot track,
// producing organic mispredictions and rollbacks.
func NewJitterMemory(name string, base, spread int, seed uint64) *ip.JitterMemory {
	return ip.NewJitterMemory(name, base, spread, seed)
}

// NewRetryMemory creates a memory that RETRYs the first attempt of every
// retryEvery-th beat.
func NewRetryMemory(name string, waits, retryEvery int) *ip.RetryMemory {
	return ip.NewRetryMemory(name, waits, retryEvery)
}

// NewSplitMemory creates a memory that answers every splitEvery-th beat
// with a SPLIT response, releasing the parked master via its HSPLITx
// line releaseAfter cycles later. Declare SplitCapable on its SlaveSpec.
func NewSplitMemory(name string, waits, splitEvery, releaseAfter int) *ip.SplitMemory {
	return ip.NewSplitMemory(name, waits, splitEvery, releaseAfter)
}

// NewErrorSlave creates a slave answering every beat with a two-cycle
// ERROR.
func NewErrorSlave(name string) *ip.ErrorSlave { return ip.NewErrorSlave(name) }

// NewIRQPeriph creates a register-file peripheral with a countdown
// interrupt on the given IRQ line bit.
func NewIRQPeriph(name string, line uint32) *ip.IRQPeriph { return ip.NewIRQPeriph(name, line) }

// Workload generator constructors.

// NewStream creates a unidirectional burst stream through a window —
// the linearly-addressed traffic the paper's prediction thrives on.
func NewStream(win Window, write bool, burst Burst, size Size, incrLen, gap int, max int64) *workload.Stream {
	return workload.NewStream(win, write, burst, size, incrLen, gap, max)
}

// NewDMACopy creates a DMA-style generator alternating read bursts from
// src with write bursts to dst.
func NewDMACopy(src, dst Window, burst Burst, gap int, max int64) *workload.DMACopy {
	return workload.NewDMACopy(src, dst, burst, gap, max)
}

// NewCPU creates a randomized CPU-like generator over the windows.
func NewCPU(windows []Window, writeRatio float64, maxGap int, max int64, seed uint64) *workload.CPU {
	return workload.NewCPU(windows, writeRatio, maxGap, max, seed)
}

// NewSequence creates a generator replaying a fixed transfer list.
func NewSequence(xfers ...Xfer) *workload.Sequence { return workload.NewSequence(xfers...) }

// Declarative design specs.

// Spec is a JSON-serializable description of a complete run: the SoC
// design (masters, slaves, generators, domain placement) plus the
// engine configuration and cycle budget. Spec.Compile yields the
// (Design, Config) pair; Spec.CanonicalHash is the deterministic run
// identity the coemud result cache keys on.
type Spec = spec.Spec

// ParseSpec decodes and validates a JSON run spec.
func ParseSpec(data []byte) (*Spec, error) { return spec.Parse(data) }

// LoadSpec reads and parses a JSON run spec file.
func LoadSpec(path string) (*Spec, error) { return spec.Load(path) }

// SweepSpec is a run spec plus an optional parameter grid ("sweep"
// block). SweepSpec.Expand materializes the grid as concrete Specs,
// each with its own canonical hash — the unit cmd/sweep -grid and the
// coemud /v1/sweep endpoint fan out over the worker pool.
type SweepSpec = spec.SweepSpec

// ParseSweepSpec decodes and validates a JSON sweep document.
func ParseSweepSpec(data []byte) (*SweepSpec, error) { return spec.ParseSweep(data) }

// LoadSweepSpec reads and parses a JSON sweep document file.
func LoadSweepSpec(path string) (*SweepSpec, error) { return spec.LoadSweep(path) }

// Analytic model (the paper's §6 evaluation).

type (
	// AnalyticParams holds the closed-form model's constants.
	AnalyticParams = perfmodel.Params
	// AnalyticRow is one Table 2 line.
	AnalyticRow = perfmodel.Row
	// Figure4Series is one curve of Figure 4.
	Figure4Series = perfmodel.Figure4Series
	// SLAResult captures an SLA max-gain/break-even pair.
	SLAResult = perfmodel.SLAResult
)

// AnalyticDefaults returns the paper's Table 2 configuration.
func AnalyticDefaults() AnalyticParams { return perfmodel.Default() }

// Table2 regenerates the paper's Table 2 (ALS accuracy sweep).
func Table2() []AnalyticRow { return perfmodel.Table2() }

// Figure4 regenerates the paper's Figure 4 (four-configuration sweep).
func Figure4() []Figure4Series { return perfmodel.Figure4() }

// SLAClaims regenerates the §6 SLA maximum gains and break-evens.
func SLAClaims() []SLAResult { return perfmodel.SLA() }

// HeadlineGainPercent returns the abstract's "1500%" headline gain.
func HeadlineGainPercent() float64 { return perfmodel.HeadlineGain() }

// Channel transport model.

// TransportStack is the layered host-accelerator transport cost model.
type TransportStack = device.Stack

// IPROVEStack returns the transport stack calibrated to the paper's
// measured iPROVE constants (12.2 µs startup, 49.95/75.73 ns per word).
func IPROVEStack() TransportStack { return device.IPROVE() }

// Trace output.

// Protocol tracing re-exported so library users can attach a recorder
// via Config.Tracer and export what it captured.
type (
	// TraceRecorder is the ring-buffered protocol-event recorder
	// accepted by Config.Tracer.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded protocol event.
	TraceEvent = trace.Event
)

// NewTraceRecorder returns a recorder whose ring holds up to the given
// number of events (0 picks the default capacity).
func NewTraceRecorder(ring int) *TraceRecorder { return trace.NewRecorder(ring) }

// WriteChromeTrace writes recorded events in Chrome trace_event form,
// loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return trace.WriteChromeTrace(w, events)
}

// WriteVCD dumps a trace as a VCD waveform.
func WriteVCD(w io.Writer, module string, cycles []CycleState, timescaleNs int) error {
	return trace.WriteVCD(w, module, cycles, timescaleNs)
}

// WriteTraceCSV dumps a trace as CSV.
func WriteTraceCSV(w io.Writer, cycles []CycleState) error {
	return trace.WriteCSV(w, cycles)
}
