package coemu_test

import (
	"strings"
	"testing"

	"coemu"
)

// apiDesign builds a small design purely through the public façade.
func apiDesign() coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{
			{
				Name:   "dma",
				Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x2000}, true,
						coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
				},
			},
			{
				Name:   "cpu",
				Domain: coemu.SimDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewCPU([]coemu.Window{{Lo: 0, Hi: 0x2000}}, 0.5, 3, 0, 42)
				},
			},
		},
		Slaves: []coemu.SlaveSpec{
			{
				Name:   "mem",
				Domain: coemu.SimDomain,
				Region: coemu.Region{Lo: 0, Hi: 0x4000},
				New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
			},
			{
				Name:    "timer",
				Domain:  coemu.AccDomain,
				Region:  coemu.Region{Lo: 0x8000, Hi: 0x8100},
				New:     func() coemu.Slave { return coemu.NewIRQPeriph("timer", 0x2) },
				IRQMask: 0x2, WaitFirst: 1, WaitNext: 1,
			},
		},
	}
}

func TestPublicAPIRunAndEquivalence(t *testing.T) {
	d := apiDesign()
	ref, err := coemu.RunReference(d, 800)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coemu.Run(d, coemu.Config{Mode: coemu.Auto, KeepTrace: true, CheckProtocol: true}, 800)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Perf() <= 0 {
		t.Fatal("no performance reported")
	}
	for i := range ref {
		if !ref[i].Equal(rep.Trace[i]) {
			t.Fatalf("trace diverged at cycle %d", i)
		}
	}
}

func TestPublicAPIModesOrdering(t *testing.T) {
	// Sanity ordering on a predictable workload: optimistic modes beat
	// conservative.
	d := coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name: "dma", Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x8000}, true,
					coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name: "mem", Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x10000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
	conv, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	als, err := coemu.Run(d, coemu.Config{Mode: coemu.ALS}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if als.Perf() < 2*conv.Perf() {
		t.Fatalf("ALS %.0f should dominate conventional %.0f", als.Perf(), conv.Perf())
	}
}

func TestPublicAnalytics(t *testing.T) {
	rows := coemu.Table2()
	if len(rows) != 8 || rows[0].Ratio < 15 {
		t.Fatalf("Table2 head ratio = %v", rows[0].Ratio)
	}
	if got := coemu.HeadlineGainPercent(); got < 1400 || got > 1700 {
		t.Fatalf("headline gain = %v", got)
	}
	if len(coemu.Figure4()) != 4 {
		t.Fatal("Figure4 series count")
	}
	if len(coemu.SLAClaims()) != 2 {
		t.Fatal("SLA claims count")
	}
	stack := coemu.IPROVEStack()
	if stack.Startup().Microseconds() != 12 { // 12.2 µs truncates to 12
		t.Fatalf("stack startup = %v", stack.Startup())
	}
	if coemu.AnalyticDefaults().LOBDepthWords != 64 {
		t.Fatal("analytic defaults")
	}
}

func TestPublicTraceWriters(t *testing.T) {
	d := apiDesign()
	rep, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative, KeepTrace: true}, 50)
	if err != nil {
		t.Fatal(err)
	}
	var vcd, csv strings.Builder
	if err := coemu.WriteVCD(&vcd, "ahb", rep.Trace, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vcd.String(), "$enddefinitions") {
		t.Fatal("VCD missing definitions")
	}
	if err := coemu.WriteTraceCSV(&csv, rep.Trace); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 51 {
		t.Fatalf("CSV has %d lines, want 51", got)
	}
}

func TestPublicComponentConstructors(t *testing.T) {
	if coemu.NewMemory("m", 1, 2) == nil ||
		coemu.NewJitterMemory("j", 1, 2, 3) == nil ||
		coemu.NewRetryMemory("r", 0, 2) == nil ||
		coemu.NewErrorSlave("e") == nil ||
		coemu.NewIRQPeriph("p", 1) == nil {
		t.Fatal("constructor returned nil")
	}
	if coemu.NewSequence(coemu.Xfer{Addr: 4}) == nil ||
		coemu.NewDMACopy(coemu.Window{Lo: 0, Hi: 0x100}, coemu.Window{Lo: 0x200, Hi: 0x300}, coemu.BurstIncr4, 0, 0) == nil {
		t.Fatal("generator constructor returned nil")
	}
}

func TestPublicExtensions(t *testing.T) {
	d := coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name: "rdr", Domain: coemu.SimDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x8000}, false,
					coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name: "mem", Domain: coemu.AccDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x10000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}
	base, err := coemu.Run(d, coemu.Config{Mode: coemu.ALS}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := coemu.Run(d, coemu.Config{Mode: coemu.ALS, PredictBurstStarts: true}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Perf() <= base.Perf() {
		t.Fatalf("stride extension did not help: %.0f vs %.0f", ext.Perf(), base.Perf())
	}
}
