package coemu_test

import (
	"testing"

	"coemu"
)

// Differential tests for the dirty-delta incremental snapshots. The
// contract under test: every modeled metric — the virtual-time ledger
// with its per-category charge counts (Store and Restore included),
// all behavioral counters, channel statistics, histograms and traces —
// is bit-identical whatever the delta cadence, and cadence 1
// reproduces the pre-delta full-save path exactly. Comparison is byte
// equality of the service's deterministic JSON report view, exactly as
// in the cycle-batching differential suite.

// deltaSweep is the cadence grid the acceptance criteria name: 1
// (every save full — the pre-delta reference), a short ring, and the
// default.
var deltaSweep = []int{1, 4, 16}

// TestDeltaSweepBitIdentical sweeps the snapshot cadence over every
// example spec and asserts bit-identical reports — and, explicitly,
// identical store/restore charge counts — against the full-save
// reference (DeltaCadence=1).
func TestDeltaSweepBitIdentical(t *testing.T) {
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			want, wantRep := runSpec(t, sp, func(c *coemu.Config) { c.DeltaCadence = 1 })
			for _, k := range deltaSweep[1:] {
				got, gotRep := runSpec(t, sp, func(c *coemu.Config) { c.DeltaCadence = k })
				if gotRep.Stats.Stores != wantRep.Stats.Stores ||
					gotRep.Stats.Restores != wantRep.Stats.Restores {
					t.Errorf("cadence=%d: %d stores/%d restores, full-save has %d/%d",
						k, gotRep.Stats.Stores, gotRep.Stats.Restores,
						wantRep.Stats.Stores, wantRep.Stats.Restores)
				}
				if string(got) != string(want) {
					t.Errorf("cadence=%d report differs from full-save:\ncadence=%d: %s\ncadence=1: %s", k, k, got, want)
				}
			}
		})
	}
}

// TestDeltaSweepUnderInjectedFaultStorm repeats the sweep under a
// pinned-accuracy rollback storm on every example spec: with every
// other check injected wrong, each transition's snapshot is restored
// almost as often as it is taken, so the delta ring's save, clean-skip
// and restore paths all run hot. The storm must change nothing.
func TestDeltaSweepUnderInjectedFaultStorm(t *testing.T) {
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			inject := func(c *coemu.Config) { c.Accuracy = 0.5; c.FaultSeed = 3 }
			want, wantRep := runSpec(t, sp, func(c *coemu.Config) { inject(c); c.DeltaCadence = 1 })
			for _, k := range deltaSweep[1:] {
				got, gotRep := runSpec(t, sp, func(c *coemu.Config) { inject(c); c.DeltaCadence = k })
				if gotRep.Stats.Rollbacks != wantRep.Stats.Rollbacks {
					t.Errorf("cadence=%d: %d rollbacks, full-save has %d",
						k, gotRep.Stats.Rollbacks, wantRep.Stats.Rollbacks)
				}
				if string(got) != string(want) {
					t.Errorf("cadence=%d report differs from full-save under the fault storm", k)
				}
			}
		})
	}
}

// TestDeltaSweepOrganicStorm pins the cadence sweep on the
// rollback-storm workload: a jittery slave the wait model cannot
// track, so the leader rolls back organically and rollback distances
// vary with the jitter PRNG.
func TestDeltaSweepOrganicStorm(t *testing.T) {
	const cycles = 20000
	jitter := func() coemu.Design {
		return coemu.Design{
			Masters: []coemu.MasterSpec{{
				Name:   "dma",
				Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
						coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
				},
			}},
			Slaves: []coemu.SlaveSpec{{
				Name:      "flaky",
				Domain:    coemu.SimDomain,
				Region:    coemu.Region{Lo: 0, Hi: 0x80000},
				New:       func() coemu.Slave { return coemu.NewJitterMemory("flaky", 1, 2, 7) },
				WaitFirst: 1, WaitNext: 1,
			}},
		}
	}
	cfg := coemu.Config{Mode: coemu.ALS, KeepTrace: true, CheckProtocol: true, DeltaCadence: 1}
	want, wantRep := runDesign(t, jitter(), cfg, cycles)
	if wantRep.Stats.Rollbacks == 0 {
		t.Fatal("jitter produced no rollbacks; the sweep would prove nothing")
	}
	for _, k := range deltaSweep[1:] {
		cfg.DeltaCadence = k
		got, _ := runDesign(t, jitter(), cfg, cycles)
		if string(got) != string(want) {
			t.Errorf("cadence=%d report differs from full-save on the organic storm", k)
		}
	}
}

// TestDeltaSweepMemoryInLeader puts the written memory inside the
// leader domain — writer master and memory both local to the
// accelerator, the simulator side empty — so every run-ahead cycle
// lands write data in the leader's memory and every injected rollback
// rewinds it through the page-granular copy-on-write undo. The
// write-beat ground truth (the master's completed-beat log) and every
// modeled metric must come out bit-identical at every cadence.
func TestDeltaSweepMemoryInLeader(t *testing.T) {
	const cycles = 10000
	design := func() coemu.Design {
		return coemu.Design{
			Masters: []coemu.MasterSpec{{
				Name:   "dma",
				Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000}, true,
						coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
				},
			}},
			Slaves: []coemu.SlaveSpec{{
				Name:   "mem",
				Domain: coemu.AccDomain,
				Region: coemu.Region{Lo: 0, Hi: 0x80000},
				New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
			}},
		}
	}
	cfg := coemu.Config{Mode: coemu.ALS, Accuracy: 0.5, FaultSeed: 3,
		KeepTrace: true, CheckProtocol: true, DeltaCadence: 1}
	want, wantRep := runDesign(t, design(), cfg, cycles)
	if wantRep.Stats.Rollbacks == 0 {
		t.Fatal("injector produced no rollbacks; the sweep would prove nothing")
	}
	for _, k := range deltaSweep[1:] {
		cfg.DeltaCadence = k
		got, _ := runDesign(t, design(), cfg, cycles)
		if string(got) != string(want) {
			t.Errorf("cadence=%d report differs from full-save with the memory in the leader", k)
		}
	}
}

// TestDeltaTraceEquivalence runs a rollback-heavy configuration with
// tracing and the protocol checker on across the cadence grid and
// requires cycle-identical traces — the delta restore must reproduce
// not just the metrics but the committed MSABS stream.
func TestDeltaTraceEquivalence(t *testing.T) {
	const cycles = 10000
	run := func(k int) *coemu.Report {
		rep, err := coemu.Run(gappedStreamDesign(0), coemu.Config{
			Mode: coemu.ALS, Accuracy: 0.6, FaultSeed: 17,
			KeepTrace: true, CheckProtocol: true, DeltaCadence: k,
		}, cycles)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(1)
	if want.Stats.Rollbacks == 0 {
		t.Fatal("no rollbacks; trace equivalence would prove nothing")
	}
	for _, k := range deltaSweep[1:] {
		got := run(k)
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("cadence=%d: %d trace records, full-save has %d", k, len(got.Trace), len(want.Trace))
		}
		for i := range want.Trace {
			if !got.Trace[i].Equal(want.Trace[i]) {
				t.Fatalf("cadence=%d trace diverges at cycle %d:\nfull:  %s\ndelta: %s",
					k, i, want.Trace[i], got.Trace[i])
			}
		}
	}
}
