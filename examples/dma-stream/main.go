// dma-stream: the workload the paper's introduction motivates — an RTL
// block under test in the accelerator produces a long data stream into
// the transaction-level platform model. Sweeps the LOB depth to show its
// effect on channel-access amortization (the paper's Figure 4 knob).
//
//	go run ./examples/dma-stream
package main

import (
	"fmt"
	"log"

	"coemu"
)

func design() coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name:   "video-dma",
			Domain: coemu.AccDomain, // the RTL block being emulated
			NewGen: func() coemu.Generator {
				// A frame writer: INCR16 bursts, one idle cycle between
				// bursts (descriptor fetch time).
				return coemu.NewStream(
					coemu.Window{Lo: 0, Hi: 0x100000},
					true, coemu.BurstIncr16, coemu.Size32, 0, 1, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name:      "framebuf",
			Domain:    coemu.SimDomain, // TL platform memory
			Region:    coemu.Region{Lo: 0, Hi: 0x200000},
			New:       func() coemu.Slave { return coemu.NewMemory("framebuf", 1, 0) },
			WaitFirst: 1, WaitNext: 0,
		}},
	}
}

func main() {
	const cycles = 40000
	d := design()

	conv, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative}, cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional baseline: %.1f kcycles/s\n\n", conv.Perf()/1e3)

	fmt.Println("LOB    perf       gain   accesses  mean-transition  flush-words/access")
	for _, lob := range []int{8, 16, 32, 64, 128, 256, 512} {
		rep, err := coemu.Run(d, coemu.Config{Mode: coemu.ALS, LOBDepth: lob}, cycles)
		if err != nil {
			log.Fatal(err)
		}
		acc := rep.Channel.TotalAccesses()
		fmt.Printf("%4d  %8.1fk  %5.2fx  %8d  %15.1f  %18.1f\n",
			lob, rep.Perf()/1e3, rep.Perf()/conv.Perf(), acc,
			rep.TransitionLengths.Mean(),
			float64(rep.Channel.TotalWords())/float64(acc))
	}

	fmt.Println("\nDeeper LOBs amortize the 12.2 µs channel startup across more")
	fmt.Println("cycles per flush — the gain saturates once per-cycle domain time")
	fmt.Println("dominates, exactly the Figure 4 behavior at high accuracy.")
}
