// multimaster: three masters with static arbitration priority contending
// for one bus split across the two domains, plus an interrupt
// peripheral. Shows the dynamic (Auto) leader election following the
// data-flow direction, arbitration-request prediction, and interrupt
// lines crossing the domain boundary as MSABS members.
//
//	go run ./examples/multimaster
package main

import (
	"fmt"
	"log"

	"coemu"
)

func main() {
	design := coemu.Design{
		Masters: []coemu.MasterSpec{
			{
				// Highest priority: an RTL video DMA in the accelerator.
				Name:   "vdma",
				Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0x00000, Hi: 0x08000},
						true, coemu.BurstIncr8, coemu.Size32, 0, 4, 0)
				},
			},
			{
				// A TL CPU model in the simulator, mixed reads/writes.
				Name:   "cpu",
				Domain: coemu.SimDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewCPU([]coemu.Window{
						{Lo: 0x00000, Hi: 0x08000},
						{Lo: 0x10000, Hi: 0x12000},
					}, 0.6, 5, 0, 2024)
				},
			},
			{
				// Lowest priority: an RTL peripheral DMA copying between
				// the two memories.
				Name:   "pdma",
				Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewDMACopy(
						coemu.Window{Lo: 0x00000, Hi: 0x04000},
						coemu.Window{Lo: 0x10000, Hi: 0x11000},
						coemu.BurstIncr4, 6, 0)
				},
			},
		},
		Slaves: []coemu.SlaveSpec{
			{
				Name:      "dram",
				Domain:    coemu.SimDomain,
				Region:    coemu.Region{Lo: 0x00000, Hi: 0x10000},
				New:       func() coemu.Slave { return coemu.NewMemory("dram", 2, 1) },
				WaitFirst: 2, WaitNext: 1,
			},
			{
				Name:   "spm",
				Domain: coemu.AccDomain,
				Region: coemu.Region{Lo: 0x10000, Hi: 0x14000},
				New:    func() coemu.Slave { return coemu.NewSRAM("spm") },
			},
			{
				Name:    "timer",
				Domain:  coemu.AccDomain,
				Region:  coemu.Region{Lo: 0x20000, Hi: 0x20100},
				New:     func() coemu.Slave { return coemu.NewIRQPeriph("timer", 0x1) },
				IRQMask: 0x1, WaitFirst: 1, WaitNext: 1,
			},
		},
	}

	const cycles = 30000

	// Cycle-exact equivalence against the monolithic bus, with all the
	// arbitration contention in play.
	ref, err := coemu.RunReference(design, 3000)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := coemu.Run(design, coemu.Config{Mode: coemu.Auto, KeepTrace: true}, 3000)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ref {
		if !ref[i].Equal(rep.Trace[i]) {
			log.Fatalf("trace diverged at cycle %d", i)
		}
	}
	fmt.Println("equivalence: 3-master arbitration identical to the reference bus")

	conv, err := coemu.Run(design, coemu.Config{Mode: coemu.Conservative}, cycles)
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []coemu.Mode{coemu.SLA, coemu.ALS, coemu.Auto} {
		r, err := coemu.Run(design, coemu.Config{Mode: mode}, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13v %8.1f kcycles/s  gain %.2fx  (sim-led %d / acc-led %d transitions, %d rollbacks)\n",
			mode, r.Perf()/1e3, r.Perf()/conv.Perf(),
			r.Stats.TransitionsByLead[coemu.SimDomain],
			r.Stats.TransitionsByLead[coemu.AccDomain],
			r.Stats.Rollbacks)
	}
	fmt.Printf("conventional  %8.1f kcycles/s\n", conv.Perf()/1e3)
	fmt.Println("\nAuto mode flips the leader with the data-flow direction, so it")
	fmt.Println("harvests transitions that the fixed SLA/ALS modes must decline.")
}
