// Quickstart: split a two-component SoC across the simulator and the
// accelerator, run it conventionally and optimistically, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"coemu"
)

func main() {
	// The SoC: an RTL DMA engine (accelerator domain) streaming write
	// bursts into a transaction-level memory model (simulator domain).
	design := coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name:   "dma",
			Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(
					coemu.Window{Lo: 0, Hi: 0x10000}, // march through 64 KiB
					true,                             // writes
					coemu.BurstIncr8, coemu.Size32,
					0, 0, 0, // no INCR override, no gaps, unbounded
				)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name:   "mem",
			Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x20000},
			New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
		}},
	}

	const cycles = 50000

	// First, prove the split system behaves exactly like a monolithic
	// bus: compare MSABS traces cycle by cycle.
	ref, err := coemu.RunReference(design, 2000)
	if err != nil {
		log.Fatal(err)
	}
	chk, err := coemu.Run(design, coemu.Config{Mode: coemu.ALS, KeepTrace: true}, 2000)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ref {
		if !ref[i].Equal(chk.Trace[i]) {
			log.Fatalf("trace diverged at cycle %d", i)
		}
	}
	fmt.Println("equivalence: co-emulated trace matches the monolithic reference (2000 cycles)")

	// Conventional co-emulation: both domains synchronize every cycle.
	conv, err := coemu.Run(design, coemu.Config{Mode: coemu.Conservative}, cycles)
	if err != nil {
		log.Fatal(err)
	}

	// Optimistic co-emulation: the accelerator leads (ALS), predictions
	// replace the per-cycle reads, the LOB packetizes the writes.
	als, err := coemu.Run(design, coemu.Config{Mode: coemu.ALS}, cycles)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconventional: %8.1f kcycles/s   (%6d channel accesses)\n",
		conv.Perf()/1e3, conv.Channel.TotalAccesses())
	fmt.Printf("ALS:          %8.1f kcycles/s   (%6d channel accesses)\n",
		als.Perf()/1e3, als.Channel.TotalAccesses())
	fmt.Printf("speedup: %.2fx, channel accesses reduced %.1fx\n",
		als.Perf()/conv.Perf(),
		float64(conv.Channel.TotalAccesses())/float64(als.Channel.TotalAccesses()))
	fmt.Printf("\ntransitions: %d (mean length %.1f cycles), rollbacks: %d\n",
		als.Stats.Transitions, als.TransitionLengths.Mean(), als.Stats.Rollbacks)
}
