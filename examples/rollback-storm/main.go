// rollback-storm: deliberately hostile conditions for the optimistic
// scheme — a jittery memory the response predictor cannot track, plus a
// pinned-accuracy sweep. Shows rollback/roll-forth behavior, the
// accuracy point where optimism stops paying off (the paper's Table 2
// crossover), and why SLA degrades faster than ALS (§6).
//
//	go run ./examples/rollback-storm
package main

import (
	"fmt"
	"log"

	"coemu"
)

func jitterDesign() coemu.Design {
	return coemu.Design{
		Masters: []coemu.MasterSpec{{
			Name:   "dma",
			Domain: coemu.AccDomain,
			NewGen: func() coemu.Generator {
				return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000},
					true, coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
			},
		}},
		Slaves: []coemu.SlaveSpec{{
			Name:   "flaky",
			Domain: coemu.SimDomain,
			Region: coemu.Region{Lo: 0, Hi: 0x80000},
			// Real latency = 1 + jitter in [0,2]; the wait model is told
			// the nominal profile (1,1) and misses whenever jitter hits.
			New:       func() coemu.Slave { return coemu.NewJitterMemory("flaky", 1, 2, 7) },
			WaitFirst: 1, WaitNext: 1,
		}},
	}
}

func cleanDesign() coemu.Design {
	d := jitterDesign()
	d.Slaves[0].New = func() coemu.Slave { return coemu.NewSRAM("mem") }
	d.Slaves[0].WaitFirst, d.Slaves[0].WaitNext = 0, 0
	return d
}

func main() {
	const cycles = 30000

	// Part 1: organic mispredictions from the jittery slave.
	d := jitterDesign()
	conv, err := coemu.Run(d, coemu.Config{Mode: coemu.Conservative}, cycles)
	if err != nil {
		log.Fatal(err)
	}
	als, err := coemu.Run(d, coemu.Config{Mode: coemu.ALS}, cycles)
	if err != nil {
		log.Fatal(err)
	}
	organic := float64(als.Stats.Mispredicts) / float64(als.Stats.ChecksTotal)
	fmt.Printf("jittery slave: organic misprediction rate %.1f%% (%d rollbacks, mean roll-forth %.1f cycles)\n",
		100*organic, als.Stats.Rollbacks, als.RollForthLengths.Mean())
	fmt.Printf("  ALS still wins: %.1f vs %.1f kcycles/s (%.2fx)\n\n",
		als.Perf()/1e3, conv.Perf()/1e3, als.Perf()/conv.Perf())

	// Part 2: pinned-accuracy sweep on a clean design — the executable
	// analog of Table 2's accuracy axis, for both operating modes.
	clean := cleanDesign()
	// SLA needs the data source in the simulator: build a variant with
	// flipped placement. (Design holds slices, so a fresh build — not a
	// struct copy — keeps the two variants independent.)
	sla := cleanDesign()
	sla.Masters[0].Domain = coemu.SimDomain
	sla.Slaves[0].Domain = coemu.AccDomain

	cleanConv, err := coemu.Run(clean, coemu.Config{Mode: coemu.Conservative}, cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accuracy   ALS-gain   SLA-gain   (executable engine, gain vs conventional)")
	for _, p := range []float64{1, 0.95, 0.9, 0.8, 0.6, 0.4, 0.2, 0.1} {
		a, err := coemu.Run(clean, coemu.Config{Mode: coemu.ALS, Accuracy: p, FaultSeed: 5, RollbackVars: 1000}, cycles)
		if err != nil {
			log.Fatal(err)
		}
		s, err := coemu.Run(sla, coemu.Config{Mode: coemu.SLA, Accuracy: p, FaultSeed: 5, RollbackVars: 1000}, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.2f     %6.2fx    %6.2fx\n",
			p, a.Perf()/cleanConv.Perf(), s.Perf()/cleanConv.Perf())
	}
	fmt.Println("\nSLA degrades faster: every rolled-back cycle costs a full simulator")
	fmt.Println("cycle (1 µs) instead of an accelerator cycle (0.1 µs) — the paper's")
	fmt.Println("explanation for SLA's higher break-even accuracy.")
}
