// split-latency: AHB SPLIT transactions across the domain boundary. A
// long-latency memory controller in the simulator parks the RTL master
// with SPLIT responses; while the master is split-masked a second
// master keeps the bus busy; the HSPLITx release pulses travel as MSABS
// members over the co-emulation channel.
//
//	go run ./examples/split-latency
package main

import (
	"fmt"
	"log"

	"coemu"
)

func main() {
	design := coemu.Design{
		Masters: []coemu.MasterSpec{
			{
				// High priority, but keeps getting split by the slow
				// controller.
				Name:   "fetcher",
				Domain: coemu.AccDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x8000},
						true, coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
				},
			},
			{
				// Low priority; overtakes whenever the fetcher is parked.
				Name:   "logger",
				Domain: coemu.SimDomain,
				NewGen: func() coemu.Generator {
					return coemu.NewStream(coemu.Window{Lo: 0x10000, Hi: 0x12000},
						true, coemu.BurstIncr4, coemu.Size32, 0, 1, 0)
				},
			},
		},
		Slaves: []coemu.SlaveSpec{
			{
				// Splits every 4th beat, releasing after 12 cycles —
				// an abstract DRAM controller hiding bank conflicts.
				Name:         "dramc",
				Domain:       coemu.SimDomain,
				Region:       coemu.Region{Lo: 0, Hi: 0x10000},
				New:          func() coemu.Slave { return coemu.NewSplitMemory("dramc", 1, 4, 12) },
				SplitCapable: true,
				WaitFirst:    1, WaitNext: 1,
			},
			{
				Name:   "sram",
				Domain: coemu.AccDomain,
				Region: coemu.Region{Lo: 0x10000, Hi: 0x14000},
				New:    func() coemu.Slave { return coemu.NewSRAM("sram") },
			},
		},
	}

	// Prove cycle-exactness with SPLIT machinery in the loop.
	const check = 2500
	ref, err := coemu.RunReference(design, check)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := coemu.Run(design, coemu.Config{Mode: coemu.Auto, KeepTrace: true}, check)
	if err != nil {
		log.Fatal(err)
	}
	splitsSeen, releases := 0, 0
	for i := range ref {
		if !ref[i].Equal(rep.Trace[i]) {
			log.Fatalf("trace diverged at cycle %d", i)
		}
		if ref[i].Reply.Resp == 3 && ref[i].Reply.Ready { // second SPLIT cycle
			splitsSeen++
		}
		if ref[i].Split != 0 {
			releases++
		}
	}
	fmt.Printf("equivalence holds through %d SPLIT responses and %d HSPLITx releases\n",
		splitsSeen, releases)

	const cycles = 30000
	conv, err := coemu.Run(design, coemu.Config{Mode: coemu.Conservative}, cycles)
	if err != nil {
		log.Fatal(err)
	}
	auto, err := coemu.Run(design, coemu.Config{Mode: coemu.Auto}, cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional %.1f kcycles/s, auto %.1f kcycles/s (%.2fx)\n",
		conv.Perf()/1e3, auto.Perf()/1e3, auto.Perf()/conv.Perf())
	fmt.Printf("rollbacks: %d (every remote SPLIT and release pulse defeats the wait model)\n",
		auto.Stats.Rollbacks)
	fmt.Println("\nSPLIT responses park the fetcher; the HSPLITx release crosses the")
	fmt.Println("channel as an MSABS member, exactly as the paper's signal grouping")
	fmt.Println("(Figure 1) requires.")
}
