module coemu

go 1.22
