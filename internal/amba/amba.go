// Package amba implements the subset of the AMBA AHB (Advanced
// High-performance Bus) protocol needed to reproduce the DATE'05
// prediction-packetizing co-emulation paper.
//
// The package provides:
//
//   - the AHB signal vocabulary (HTRANS, HBURST, HSIZE, HRESP encodings),
//   - burst address arithmetic (the "predictable" address/control
//     successor the paper's leader uses to run ahead),
//   - the MSABS — minimal set of active bus signals — record exchanged
//     between the two verification domains each target cycle,
//   - a compact word-level wire encoding of partial MSABS records used by
//     the channel packetizer, and
//   - a streaming protocol checker that validates cycle traces against
//     the AHB pipeline rules.
//
// Only statically-configured arbitration priority and address maps are
// supported, mirroring the paper's assumption (footnote 4) that arbiter
// and decoder outputs are deducible from request and address signals.
package amba

import "fmt"

// Word is a 32-bit bus data word. The paper's channel cost constants are
// quoted per 32-bit word over a 32-bit PCI bus, so the word size is fixed.
type Word uint32

// Addr is a 32-bit AHB address.
type Addr uint32

// Trans is the HTRANS transfer-type encoding.
type Trans uint8

// HTRANS encodings, per AMBA Specification rev 2.0.
const (
	// TransIdle indicates no transfer is required.
	TransIdle Trans = 0
	// TransBusy inserts an idle beat in the middle of a burst; the
	// master retains ownership and the burst continues afterwards.
	TransBusy Trans = 1
	// TransNonSeq starts a single transfer or the first beat of a burst.
	TransNonSeq Trans = 2
	// TransSeq continues a burst; address is related to the previous
	// beat by the burst's address successor.
	TransSeq Trans = 3
)

// Active reports whether the transfer type carries a real beat (NONSEQ or
// SEQ). IDLE and BUSY beats do not transfer data.
func (t Trans) Active() bool { return t == TransNonSeq || t == TransSeq }

// Valid reports whether t is one of the four defined HTRANS encodings.
func (t Trans) Valid() bool { return t <= TransSeq }

// String returns the AHB mnemonic.
func (t Trans) String() string {
	switch t {
	case TransIdle:
		return "IDLE"
	case TransBusy:
		return "BUSY"
	case TransNonSeq:
		return "NONSEQ"
	case TransSeq:
		return "SEQ"
	default:
		return fmt.Sprintf("Trans(%d)", uint8(t))
	}
}

// Burst is the HBURST burst-type encoding.
type Burst uint8

// HBURST encodings, per AMBA Specification rev 2.0.
const (
	BurstSingle Burst = 0 // single transfer
	BurstIncr   Burst = 1 // incrementing burst of unspecified length
	BurstWrap4  Burst = 2 // 4-beat wrapping burst
	BurstIncr4  Burst = 3 // 4-beat incrementing burst
	BurstWrap8  Burst = 4 // 8-beat wrapping burst
	BurstIncr8  Burst = 5 // 8-beat incrementing burst
	BurstWrap16 Burst = 6 // 16-beat wrapping burst
	BurstIncr16 Burst = 7 // 16-beat incrementing burst
)

// Beats returns the architected beat count of the burst, or 0 for
// BurstIncr whose length is unspecified by the protocol.
func (b Burst) Beats() int {
	switch b {
	case BurstSingle:
		return 1
	case BurstIncr:
		return 0
	case BurstWrap4, BurstIncr4:
		return 4
	case BurstWrap8, BurstIncr8:
		return 8
	case BurstWrap16, BurstIncr16:
		return 16
	default:
		return 0
	}
}

// Wrapping reports whether the burst wraps at its natural boundary.
func (b Burst) Wrapping() bool {
	return b == BurstWrap4 || b == BurstWrap8 || b == BurstWrap16
}

// Valid reports whether b is a defined HBURST encoding.
func (b Burst) Valid() bool { return b <= BurstIncr16 }

// String returns the AHB mnemonic.
func (b Burst) String() string {
	switch b {
	case BurstSingle:
		return "SINGLE"
	case BurstIncr:
		return "INCR"
	case BurstWrap4:
		return "WRAP4"
	case BurstIncr4:
		return "INCR4"
	case BurstWrap8:
		return "WRAP8"
	case BurstIncr8:
		return "INCR8"
	case BurstWrap16:
		return "WRAP16"
	case BurstIncr16:
		return "INCR16"
	default:
		return fmt.Sprintf("Burst(%d)", uint8(b))
	}
}

// Size is the HSIZE transfer-size encoding: the transfer moves 2^Size
// bytes per beat.
type Size uint8

// HSIZE encodings. Sizes above Size32 are architecturally defined but a
// 32-bit data bus can only carry up to Size32 per beat; the checker
// rejects larger sizes.
const (
	Size8    Size = 0
	Size16   Size = 1
	Size32   Size = 2
	Size64   Size = 3
	Size128  Size = 4
	Size256  Size = 5
	Size512  Size = 6
	Size1024 Size = 7
)

// Bytes returns the number of bytes moved per beat.
func (s Size) Bytes() int { return 1 << s }

// Valid reports whether s is a defined HSIZE encoding.
func (s Size) Valid() bool { return s <= Size1024 }

// FitsBus reports whether the size fits a 32-bit data bus.
func (s Size) FitsBus() bool { return s <= Size32 }

// String returns a human-readable size.
func (s Size) String() string {
	if !s.Valid() {
		return fmt.Sprintf("Size(%d)", uint8(s))
	}
	return fmt.Sprintf("%dbit", 8*s.Bytes())
}

// Resp is the HRESP response encoding.
type Resp uint8

// HRESP encodings, per AMBA Specification rev 2.0.
const (
	RespOkay  Resp = 0
	RespError Resp = 1
	RespRetry Resp = 2
	RespSplit Resp = 3
)

// Valid reports whether r is a defined HRESP encoding.
func (r Resp) Valid() bool { return r <= RespSplit }

// String returns the AHB mnemonic.
func (r Resp) String() string {
	switch r {
	case RespOkay:
		return "OKAY"
	case RespError:
		return "ERROR"
	case RespRetry:
		return "RETRY"
	case RespSplit:
		return "SPLIT"
	default:
		return fmt.Sprintf("Resp(%d)", uint8(r))
	}
}

// Prot is the HPROT protection-control bitmask. It rides along in the
// MSABS (the paper lists HPROT among the predictable control signals) but
// carries no behavioral weight in this model.
type Prot uint8

// HPROT bit positions.
const (
	ProtData       Prot = 1 << 0 // data access (vs opcode fetch)
	ProtPrivileged Prot = 1 << 1
	ProtBufferable Prot = 1 << 2
	ProtCacheable  Prot = 1 << 3
)
