package amba

import "testing"

func TestTransEncoding(t *testing.T) {
	cases := []struct {
		t      Trans
		str    string
		active bool
	}{
		{TransIdle, "IDLE", false},
		{TransBusy, "BUSY", false},
		{TransNonSeq, "NONSEQ", true},
		{TransSeq, "SEQ", true},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.str {
			t.Errorf("Trans(%d).String() = %q, want %q", c.t, got, c.str)
		}
		if got := c.t.Active(); got != c.active {
			t.Errorf("Trans(%d).Active() = %v, want %v", c.t, got, c.active)
		}
		if !c.t.Valid() {
			t.Errorf("Trans(%d) should be valid", c.t)
		}
	}
	if Trans(4).Valid() {
		t.Error("Trans(4) should be invalid")
	}
}

func TestBurstBeats(t *testing.T) {
	cases := []struct {
		b     Burst
		beats int
		wrap  bool
	}{
		{BurstSingle, 1, false},
		{BurstIncr, 0, false},
		{BurstWrap4, 4, true},
		{BurstIncr4, 4, false},
		{BurstWrap8, 8, true},
		{BurstIncr8, 8, false},
		{BurstWrap16, 16, true},
		{BurstIncr16, 16, false},
	}
	for _, c := range cases {
		if got := c.b.Beats(); got != c.beats {
			t.Errorf("%s.Beats() = %d, want %d", c.b, got, c.beats)
		}
		if got := c.b.Wrapping(); got != c.wrap {
			t.Errorf("%s.Wrapping() = %v, want %v", c.b, got, c.wrap)
		}
	}
	if Burst(8).Valid() {
		t.Error("Burst(8) should be invalid")
	}
}

func TestSizeBytes(t *testing.T) {
	if Size8.Bytes() != 1 || Size16.Bytes() != 2 || Size32.Bytes() != 4 {
		t.Fatalf("size byte widths wrong: %d %d %d", Size8.Bytes(), Size16.Bytes(), Size32.Bytes())
	}
	if !Size32.FitsBus() {
		t.Error("Size32 must fit a 32-bit bus")
	}
	if Size64.FitsBus() {
		t.Error("Size64 must not fit a 32-bit bus")
	}
	if Size1024.Bytes() != 128 {
		t.Errorf("Size1024.Bytes() = %d, want 128", Size1024.Bytes())
	}
}

func TestRespString(t *testing.T) {
	want := map[Resp]string{
		RespOkay: "OKAY", RespError: "ERROR", RespRetry: "RETRY", RespSplit: "SPLIT",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Resp %d String = %q, want %q", r, r.String(), s)
		}
		if !r.Valid() {
			t.Errorf("Resp %d should be valid", r)
		}
	}
	if Resp(4).Valid() {
		t.Error("Resp(4) should be invalid")
	}
}

func TestOkayReady(t *testing.T) {
	r := OkayReady()
	if !r.Ready || r.Resp != RespOkay || r.RData != 0 {
		t.Fatalf("OkayReady() = %+v", r)
	}
}

func TestAddrPhaseIdleAndString(t *testing.T) {
	var ap AddrPhase
	if !ap.Idle() {
		t.Error("zero AddrPhase must be idle")
	}
	ap = AddrPhase{Addr: 0x1000, Trans: TransNonSeq, Write: true, Size: Size32, Burst: BurstIncr4}
	if ap.Idle() {
		t.Error("NONSEQ phase must not be idle")
	}
	if got := ap.String(); got == "" {
		t.Error("String must be non-empty")
	}
}
