package amba

// Burst address arithmetic.
//
// The paper's central predictability argument (§3) is that the address
// and control signals of the active bus master "can be deduced from their
// values at the start of a burst transfer ... as their values either
// increase linearly over time or remain constant throughout a single
// burst transaction". This file implements exactly that successor
// function, shared by the real bus model, the pin-level masters, and the
// leader-side address/control predictor.

// WrapBoundaryBytes returns the size in bytes of the address window a
// wrapping burst stays inside: beats × bytes-per-beat. For non-wrapping
// bursts it returns 0.
func WrapBoundaryBytes(b Burst, s Size) int {
	if !b.Wrapping() {
		return 0
	}
	return b.Beats() * s.Bytes()
}

// NextAddr returns the address of the beat following a beat at addr in a
// burst of type b with transfer size s.
//
// Incrementing bursts (and INCR) advance by the beat size. Wrapping
// bursts advance by the beat size but wrap around at the natural
// boundary of beats×size bytes. SINGLE bursts have no successor; by
// convention NextAddr returns the incremented address, which the checker
// will reject if a SEQ beat ever follows a SINGLE.
func NextAddr(addr Addr, s Size, b Burst) Addr {
	step := Addr(s.Bytes())
	next := addr + step
	if !b.Wrapping() {
		return next
	}
	boundary := Addr(WrapBoundaryBytes(b, s))
	base := addr &^ (boundary - 1)
	return base + (next-base)%boundary
}

// BurstAddrs returns the full address sequence of an architected-length
// burst starting at start. For BurstIncr the protocol does not fix a
// length, so n gives the number of beats to generate. For fixed-length
// bursts n is ignored.
func BurstAddrs(start Addr, s Size, b Burst, n int) []Addr {
	beats := b.Beats()
	if beats == 0 {
		beats = n
	}
	if beats <= 0 {
		return nil
	}
	out := make([]Addr, beats)
	a := start
	for i := 0; i < beats; i++ {
		out[i] = a
		a = NextAddr(a, s, b)
	}
	return out
}

// Aligned reports whether addr is aligned to the transfer size, an AHB
// requirement for every beat.
func Aligned(addr Addr, s Size) bool {
	return addr%Addr(s.Bytes()) == 0
}
