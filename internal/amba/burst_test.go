package amba

import (
	"testing"
	"testing/quick"
)

func TestNextAddrIncrementing(t *testing.T) {
	cases := []struct {
		addr Addr
		s    Size
		b    Burst
		want Addr
	}{
		{0x1000, Size32, BurstIncr, 0x1004},
		{0x1000, Size16, BurstIncr4, 0x1002},
		{0x1000, Size8, BurstIncr16, 0x1001},
		{0xFFFC, Size32, BurstIncr, 0x10000},
	}
	for _, c := range cases {
		if got := NextAddr(c.addr, c.s, c.b); got != c.want {
			t.Errorf("NextAddr(%08x,%v,%v) = %08x, want %08x", uint32(c.addr), c.s, c.b, uint32(got), uint32(c.want))
		}
	}
}

func TestNextAddrWrap4(t *testing.T) {
	// WRAP4 of 32-bit transfers wraps inside a 16-byte window.
	seq := BurstAddrs(0x38, Size32, BurstWrap4, 0)
	want := []Addr{0x38, 0x3c, 0x30, 0x34}
	if len(seq) != len(want) {
		t.Fatalf("got %d beats, want %d", len(seq), len(want))
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("beat %d: got %08x, want %08x", i, uint32(seq[i]), uint32(want[i]))
		}
	}
}

func TestNextAddrWrap8Halfword(t *testing.T) {
	// WRAP8 of halfword transfers wraps inside a 16-byte window too.
	seq := BurstAddrs(0x34, Size16, BurstWrap8, 0)
	want := []Addr{0x34, 0x36, 0x38, 0x3a, 0x3c, 0x3e, 0x30, 0x32}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("beat %d: got %08x, want %08x", i, uint32(seq[i]), uint32(want[i]))
		}
	}
}

func TestBurstAddrsIncrLength(t *testing.T) {
	seq := BurstAddrs(0x100, Size32, BurstIncr, 5)
	if len(seq) != 5 {
		t.Fatalf("INCR with n=5 gave %d beats", len(seq))
	}
	for i, a := range seq {
		if want := Addr(0x100 + 4*i); a != want {
			t.Errorf("beat %d: got %08x want %08x", i, uint32(a), uint32(want))
		}
	}
	if got := BurstAddrs(0x100, Size32, BurstIncr, 0); got != nil {
		t.Errorf("INCR with n=0 should be nil, got %v", got)
	}
}

func TestWrapBoundaryBytes(t *testing.T) {
	if got := WrapBoundaryBytes(BurstWrap4, Size32); got != 16 {
		t.Errorf("WRAP4/32bit boundary = %d, want 16", got)
	}
	if got := WrapBoundaryBytes(BurstWrap16, Size8); got != 16 {
		t.Errorf("WRAP16/8bit boundary = %d, want 16", got)
	}
	if got := WrapBoundaryBytes(BurstIncr8, Size32); got != 0 {
		t.Errorf("INCR8 boundary = %d, want 0", got)
	}
}

func TestAligned(t *testing.T) {
	if !Aligned(0x1002, Size16) {
		t.Error("0x1002 is halfword aligned")
	}
	if Aligned(0x1002, Size32) {
		t.Error("0x1002 is not word aligned")
	}
	if !Aligned(0x0, Size32) {
		t.Error("0 is aligned to everything")
	}
}

// Property: wrapping bursts never leave their wrap window, and all beats
// of any burst remain aligned.
func TestBurstPropertyWrapWindow(t *testing.T) {
	f := func(start uint32, sizeRaw, burstRaw uint8) bool {
		s := Size(sizeRaw % 3) // 8/16/32-bit only (bus width)
		b := Burst(burstRaw % 8)
		startAddr := Addr(start) &^ (Addr(s.Bytes()) - 1) // align
		n := b.Beats()
		if n == 0 {
			n = 8
		}
		seq := BurstAddrs(startAddr, s, b, n)
		if b.Wrapping() {
			boundary := Addr(WrapBoundaryBytes(b, s))
			base := startAddr &^ (boundary - 1)
			for _, a := range seq {
				if a < base || a >= base+boundary {
					return false
				}
			}
		}
		for _, a := range seq {
			if !Aligned(a, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: within one wrap window, the wrap-burst address sequence
// visits every beat slot exactly once (it is a permutation).
func TestBurstPropertyWrapPermutation(t *testing.T) {
	f := func(start uint32, which uint8) bool {
		b := []Burst{BurstWrap4, BurstWrap8, BurstWrap16}[which%3]
		s := Size32
		startAddr := Addr(start) &^ 3
		seq := BurstAddrs(startAddr, s, b, 0)
		seen := map[Addr]bool{}
		for _, a := range seq {
			if seen[a] {
				return false
			}
			seen[a] = true
		}
		return len(seen) == b.Beats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: incrementing bursts increase strictly monotonically by the
// beat size.
func TestBurstPropertyIncrMonotone(t *testing.T) {
	f := func(start uint32, sizeRaw uint8, n uint8) bool {
		s := Size(sizeRaw % 3)
		startAddr := Addr(start&0x0fffffff) &^ (Addr(s.Bytes()) - 1)
		beats := int(n%32) + 2
		seq := BurstAddrs(startAddr, s, BurstIncr, beats)
		for i := 1; i < len(seq); i++ {
			if seq[i] != seq[i-1]+Addr(s.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
