package amba

import "fmt"

// Byte-boundary helpers for transports that carry word packets over an
// octet stream (the TCP transport's frame payloads, handshake blobs).
// Words travel little-endian — the byte order of every host this runs
// on — and byte blobs of arbitrary length are framed with an explicit
// length word so the word padding round-trips losslessly.

// WordBytes is the wire size of one channel word in bytes.
const WordBytes = 4

// PutWord appends the little-endian encoding of w to dst.
func PutWord(dst []byte, w Word) []byte {
	return append(dst, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

// GetWord decodes a little-endian word from the first WordBytes of src.
// The caller guarantees len(src) >= WordBytes.
func GetWord(src []byte) Word {
	return Word(src[0]) | Word(src[1])<<8 | Word(src[2])<<16 | Word(src[3])<<24
}

// PackBytes appends b to dst as a word sequence: one length word
// followed by the bytes packed little-endian, the final word
// zero-padded. UnpackBytes inverts it.
func PackBytes(dst []Word, b []byte) []Word {
	dst = append(dst, Word(len(b)))
	for len(b) >= WordBytes {
		dst = append(dst, GetWord(b))
		b = b[WordBytes:]
	}
	if len(b) > 0 {
		var w Word
		for i, c := range b {
			w |= Word(c) << (8 * i)
		}
		dst = append(dst, w)
	}
	return dst
}

// UnpackBytes decodes a word sequence produced by PackBytes back into
// the original byte blob.
func UnpackBytes(words []Word) ([]byte, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("amba: unpack bytes: empty sequence")
	}
	n := int(words[0])
	words = words[1:]
	want := (n + WordBytes - 1) / WordBytes
	if n < 0 || want != len(words) {
		return nil, fmt.Errorf("amba: unpack bytes: length %d needs %d payload words, have %d", n, want, len(words))
	}
	b := make([]byte, 0, n)
	for _, w := range words {
		b = PutWord(b, w)
	}
	return b[:n], nil
}
