package amba

import "fmt"

// Checker validates a stream of per-cycle MSABS records against the AHB
// pipeline rules. It is attached to the monolithic reference bus in tests
// and to the merged trace of the co-emulated system, so a protocol
// violation introduced by the domain split (rather than by a component)
// is caught at the cycle it happens.
//
// The zero value is a checker at bus reset. Checker is strictly
// streaming: feed cycles in order via Check.
type Checker struct {
	cycle int64
	init  bool
	prev  CycleState

	// burst progress of the current address-phase owner
	burstActive bool
	burstMaster int
	burstBurst  Burst
	burstSize   Size
	burstWrite  bool
	burstProt   Prot
	nextAddr    Addr
	remaining   int // beats left after the current one; -1 for INCR

	// two-cycle response tracking
	pendingResp Resp

	// data-phase ownership tracking: which master's beat currently
	// occupies the data phase (the one a RETRY/SPLIT/ERROR addresses).
	dpOwner      int
	dpOwnerValid bool
}

// ViolationError describes a protocol violation at a specific cycle.
type ViolationError struct {
	Cycle int64
	Rule  string
	Got   CycleState
}

// Error implements error.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("amba: cycle %d: %s (state: %s)", e.Cycle, e.Rule, e.Got)
}

func (k *Checker) fail(rule string, cs CycleState) error {
	return &ViolationError{Cycle: k.cycle, Rule: rule, Got: cs}
}

// Cycles returns how many cycles have been checked so far.
func (k *Checker) Cycles() int64 { return k.cycle }

// Check validates one cycle record and advances the checker's pipeline
// model. It returns nil when the cycle is protocol-legal.
func (k *Checker) Check(cs CycleState) error {
	defer func() { k.cycle++ }()

	if err := k.checkEncodings(cs); err != nil {
		return err
	}
	if err := k.checkResponse(cs); err != nil {
		return err
	}
	if k.init {
		if err := k.checkSequencing(cs); err != nil {
			return err
		}
	}
	k.advance(cs)
	return nil
}

func (k *Checker) checkEncodings(cs CycleState) error {
	ap := cs.AP
	if !ap.Trans.Valid() {
		return k.fail("invalid HTRANS encoding", cs)
	}
	if !ap.Burst.Valid() {
		return k.fail("invalid HBURST encoding", cs)
	}
	if !ap.Size.Valid() {
		return k.fail("invalid HSIZE encoding", cs)
	}
	if !cs.Reply.Resp.Valid() {
		return k.fail("invalid HRESP encoding", cs)
	}
	if ap.Trans.Active() {
		if !ap.Size.FitsBus() {
			return k.fail("HSIZE exceeds 32-bit data bus width", cs)
		}
		if !Aligned(ap.Addr, ap.Size) {
			return k.fail("unaligned address for transfer size", cs)
		}
	}
	if cs.Grant < 0 || cs.Grant >= MaxMasters {
		return k.fail("grant index out of range", cs)
	}
	return nil
}

// checkResponse enforces the wait-state and two-cycle response rules:
// OKAY may be stretched with HREADY low arbitrarily; ERROR, RETRY and
// SPLIT must be signaled for exactly one cycle with HREADY low and then
// one cycle with HREADY high.
func (k *Checker) checkResponse(cs CycleState) error {
	r := cs.Reply
	if k.pendingResp != RespOkay {
		// Second cycle of a two-cycle response.
		if !r.Ready || r.Resp != k.pendingResp {
			return k.fail(fmt.Sprintf("second cycle of %s response must be ready with same response", k.pendingResp), cs)
		}
		return nil
	}
	if r.Resp != RespOkay && r.Ready {
		return k.fail(fmt.Sprintf("%s response must start with HREADY low", r.Resp), cs)
	}
	return nil
}

func (k *Checker) checkSequencing(cs CycleState) error {
	prev := k.prev
	ap := cs.AP

	// During wait states the master must hold the address phase stable.
	// Exception: the first cycle of RETRY/SPLIT/ERROR (ready low, resp
	// not OKAY) requires the master whose beat received the response —
	// the data-phase owner — to change its address phase to IDLE. A
	// *different* master holding the address phase (possible after a
	// grant handover) follows the ordinary hold rule instead.
	if !prev.Reply.Ready {
		twoCycle := prev.Reply.Resp != RespOkay
		ownerIsRetried := k.dpOwnerValid && k.dpOwner == cs.Grant
		if twoCycle && ownerIsRetried {
			if ap.Trans != TransIdle && cs.Grant == prev.Grant {
				return k.fail(fmt.Sprintf("master must drive IDLE after first cycle of %s", prev.Reply.Resp), cs)
			}
		} else if cs.Grant == prev.Grant && ap != prev.AP {
			return k.fail("address phase changed during wait state", cs)
		}
		return nil
	}

	switch ap.Trans {
	case TransSeq:
		if !k.burstActive {
			return k.fail("SEQ without an active burst", cs)
		}
		if cs.Grant != k.burstMaster {
			return k.fail("SEQ from a master that does not own the burst", cs)
		}
		if k.remaining == 0 {
			return k.fail("SEQ beyond the architected burst length", cs)
		}
		if ap.Addr != k.nextAddr {
			return k.fail(fmt.Sprintf("SEQ address %08x, burst successor requires %08x", uint32(ap.Addr), uint32(k.nextAddr)), cs)
		}
		if ap.Burst != k.burstBurst || ap.Size != k.burstSize || ap.Write != k.burstWrite || ap.Prot != k.burstProt {
			return k.fail("control signals changed mid-burst", cs)
		}
	case TransBusy:
		if !k.burstActive || cs.Grant != k.burstMaster {
			return k.fail("BUSY without an active burst", cs)
		}
		if k.remaining == 0 {
			return k.fail("BUSY after the final beat of a fixed-length burst", cs)
		}
	case TransNonSeq:
		if ap.Burst == BurstSingle || ap.Burst == BurstIncr {
			break
		}
		// A NONSEQ may legally cut a fixed burst short only when the
		// master lost the bus or the previous burst finished; the same
		// master restarting mid-burst is a violation.
		if k.burstActive && cs.Grant == k.burstMaster && k.remaining > 0 && prev.AP.Trans != TransIdle {
			return k.fail("NONSEQ restarted a fixed-length burst in progress", cs)
		}
	}
	return nil
}

// advance moves the pipeline model forward after a legal cycle.
func (k *Checker) advance(cs CycleState) {
	// Two-cycle response tracking.
	if cs.Reply.Resp != RespOkay && !cs.Reply.Ready {
		k.pendingResp = cs.Reply.Resp
	} else {
		k.pendingResp = RespOkay
	}

	if cs.Reply.Ready {
		ap := cs.AP
		// Data-phase handover: an accepted active beat enters the data
		// phase owned by the current grant holder; otherwise the data
		// phase empties.
		if ap.Trans.Active() {
			k.dpOwner = cs.Grant
			k.dpOwnerValid = true
		} else {
			k.dpOwnerValid = false
		}
		switch {
		case ap.Trans == TransNonSeq:
			k.burstActive = true
			k.burstMaster = cs.Grant
			k.burstBurst = ap.Burst
			k.burstSize = ap.Size
			k.burstWrite = ap.Write
			k.burstProt = ap.Prot
			k.nextAddr = NextAddr(ap.Addr, ap.Size, ap.Burst)
			if beats := ap.Burst.Beats(); beats > 0 {
				k.remaining = beats - 1
			} else {
				k.remaining = -1 // INCR: unbounded
			}
			if ap.Burst == BurstSingle {
				k.burstActive = false
			}
		case ap.Trans == TransSeq:
			k.nextAddr = NextAddr(ap.Addr, ap.Size, ap.Burst)
			if k.remaining > 0 {
				k.remaining--
			}
			// Keep the burst tracked at remaining==0 so that an illegal
			// extra SEQ is reported as over-length rather than orphaned.
		case ap.Trans == TransIdle:
			k.burstActive = false
		case ap.Trans == TransBusy:
			// burst paused; nothing advances
		}
		// Losing the bus terminates the burst tracking for the old owner.
		if k.burstActive && cs.Grant != k.burstMaster {
			k.burstActive = false
		}
	}

	k.prev = cs
	k.init = true
}
