package amba

import (
	"strings"
	"testing"
)

func okCycle(ap AddrPhase) CycleState {
	return CycleState{AP: ap, Reply: OkayReady()}
}

func feed(t *testing.T, k *Checker, cs ...CycleState) error {
	t.Helper()
	for i, c := range cs {
		if err := k.Check(c); err != nil {
			_ = i
			return err
		}
	}
	return nil
}

func TestCheckerAcceptsIncr4Burst(t *testing.T) {
	var k Checker
	ap := AddrPhase{Addr: 0x1000, Trans: TransNonSeq, Write: true, Size: Size32, Burst: BurstIncr4}
	cycles := []CycleState{okCycle(AddrPhase{})}
	a := ap
	for i := 0; i < 4; i++ {
		cycles = append(cycles, okCycle(a))
		a.Addr = NextAddr(a.Addr, a.Size, a.Burst)
		a.Trans = TransSeq
	}
	cycles = append(cycles, okCycle(AddrPhase{}))
	if err := feed(t, &k, cycles...); err != nil {
		t.Fatalf("legal burst rejected: %v", err)
	}
}

func TestCheckerRejectsBadSeqAddress(t *testing.T) {
	var k Checker
	ap := AddrPhase{Addr: 0x1000, Trans: TransNonSeq, Size: Size32, Burst: BurstIncr4}
	bad := AddrPhase{Addr: 0x1010, Trans: TransSeq, Size: Size32, Burst: BurstIncr4}
	err := feed(t, &k, okCycle(ap), okCycle(bad))
	if err == nil || !strings.Contains(err.Error(), "SEQ address") {
		t.Fatalf("want SEQ address violation, got %v", err)
	}
}

func TestCheckerRejectsSeqWithoutBurst(t *testing.T) {
	var k Checker
	err := feed(t, &k,
		okCycle(AddrPhase{}),
		okCycle(AddrPhase{Addr: 0x10, Trans: TransSeq, Size: Size32, Burst: BurstIncr4}))
	if err == nil || !strings.Contains(err.Error(), "SEQ without") {
		t.Fatalf("want SEQ-without-burst violation, got %v", err)
	}
}

func TestCheckerRejectsControlChangeMidBurst(t *testing.T) {
	var k Checker
	ap := AddrPhase{Addr: 0x1000, Trans: TransNonSeq, Size: Size32, Burst: BurstIncr4}
	next := AddrPhase{Addr: 0x1004, Trans: TransSeq, Size: Size32, Burst: BurstIncr4, Write: true}
	err := feed(t, &k, okCycle(ap), okCycle(next))
	if err == nil || !strings.Contains(err.Error(), "control signals changed") {
		t.Fatalf("want mid-burst control violation, got %v", err)
	}
}

func TestCheckerRejectsSeqBeyondBurstLength(t *testing.T) {
	var k Checker
	ap := AddrPhase{Addr: 0x1000, Trans: TransNonSeq, Size: Size32, Burst: BurstIncr4}
	cycles := []CycleState{okCycle(ap)}
	a := ap
	for i := 0; i < 4; i++ {
		a.Addr = NextAddr(a.Addr, a.Size, a.Burst)
		a.Trans = TransSeq
		cycles = append(cycles, okCycle(a))
	}
	err := feed(t, &k, cycles...)
	if err == nil || !strings.Contains(err.Error(), "beyond the architected") {
		t.Fatalf("want over-length violation, got %v", err)
	}
}

func TestCheckerWaitStateHold(t *testing.T) {
	ap := AddrPhase{Addr: 0x2000, Trans: TransNonSeq, Size: Size32, Burst: BurstSingle}
	wait := CycleState{AP: ap, Reply: SlaveReply{Ready: false, Resp: RespOkay}}

	var k Checker
	// Holding the phase through the wait state is legal.
	if err := feed(t, &k, wait, okCycle(ap)); err != nil {
		t.Fatalf("held wait state rejected: %v", err)
	}

	var k2 Checker
	moved := ap
	moved.Addr = 0x3000
	err := feed(t, &k2, wait, okCycle(moved))
	if err == nil || !strings.Contains(err.Error(), "changed during wait state") {
		t.Fatalf("want wait-state hold violation, got %v", err)
	}
}

func TestCheckerTwoCycleError(t *testing.T) {
	ap := AddrPhase{Addr: 0x2000, Trans: TransNonSeq, Size: Size32, Burst: BurstSingle}
	first := CycleState{AP: ap, Reply: SlaveReply{Ready: false, Resp: RespError}}
	second := CycleState{AP: AddrPhase{}, Reply: SlaveReply{Ready: true, Resp: RespError}}

	var k Checker
	if err := feed(t, &k, okCycle(ap), first, second, okCycle(AddrPhase{})); err != nil {
		t.Fatalf("legal two-cycle ERROR rejected: %v", err)
	}

	// Single-cycle ERROR with ready high is illegal.
	var k2 Checker
	bad := CycleState{AP: ap, Reply: SlaveReply{Ready: true, Resp: RespError}}
	if err := feed(t, &k2, bad); err == nil {
		t.Fatal("single-cycle ERROR accepted")
	}

	// Second cycle must repeat the response.
	var k3 Checker
	wrongSecond := CycleState{AP: AddrPhase{}, Reply: OkayReady()}
	if err := feed(t, &k3, okCycle(ap), first, wrongSecond); err == nil {
		t.Fatal("ERROR second cycle with OKAY accepted")
	}
}

func TestCheckerRetryForcesIdle(t *testing.T) {
	ap := AddrPhase{Addr: 0x2000, Trans: TransNonSeq, Size: Size32, Burst: BurstIncr4}
	seq := ap
	seq.Trans = TransSeq
	seq.Addr = 0x2004
	// Beat 0 accepted; during beat 0's data phase the slave signals
	// RETRY while the master is already presenting beat 1 (SEQ).
	first := CycleState{AP: seq, Reply: SlaveReply{Ready: false, Resp: RespRetry}}
	// Master ignores the RETRY and keeps driving the beat: violation.
	keep := CycleState{AP: seq, Reply: SlaveReply{Ready: true, Resp: RespRetry}}
	var k Checker
	err := feed(t, &k, okCycle(ap), first, keep)
	if err == nil || !strings.Contains(err.Error(), "must drive IDLE") {
		t.Fatalf("want IDLE-after-RETRY violation, got %v", err)
	}
}

func TestCheckerRejectsUnaligned(t *testing.T) {
	var k Checker
	ap := AddrPhase{Addr: 0x1002, Trans: TransNonSeq, Size: Size32, Burst: BurstSingle}
	if err := feed(t, &k, okCycle(ap)); err == nil {
		t.Fatal("unaligned transfer accepted")
	}
}

func TestCheckerRejectsWideTransfers(t *testing.T) {
	var k Checker
	ap := AddrPhase{Addr: 0x1000, Trans: TransNonSeq, Size: Size64, Burst: BurstSingle}
	if err := feed(t, &k, okCycle(ap)); err == nil {
		t.Fatal("64-bit transfer on 32-bit bus accepted")
	}
}

func TestCheckerBusyMidBurst(t *testing.T) {
	ap := AddrPhase{Addr: 0x1000, Trans: TransNonSeq, Size: Size32, Burst: BurstIncr4}
	busy := ap
	busy.Trans = TransBusy
	busy.Addr = 0x1004
	seq := ap
	seq.Trans = TransSeq
	seq.Addr = 0x1004
	var k Checker
	if err := feed(t, &k, okCycle(ap), okCycle(busy), okCycle(seq)); err != nil {
		t.Fatalf("BUSY mid-burst rejected: %v", err)
	}

	// BUSY with no burst in progress is illegal.
	var k2 Checker
	if err := feed(t, &k2, okCycle(AddrPhase{}), okCycle(busy)); err == nil {
		t.Fatal("BUSY without burst accepted")
	}
}

func TestCheckerRetryWithGrantHandover(t *testing.T) {
	// Master 0's beat is accepted and enters the data phase while the
	// grant moves to master 1, which presents its own NONSEQ. Master
	// 0's beat then receives a two-cycle RETRY. Master 1 — not the
	// retried master — must HOLD its address phase through both RETRY
	// cycles; only the data-phase owner is required to IDLE.
	m0beat := AddrPhase{Addr: 0x100, Trans: TransNonSeq, Size: Size32, Burst: BurstSingle}
	m1beat := AddrPhase{Addr: 0x200, Trans: TransNonSeq, Write: true, Size: Size32, Burst: BurstSingle}
	cycles := []CycleState{
		// cycle 0: m0 presents its beat, accepted (ready).
		{AP: m0beat, Grant: 0, Reply: OkayReady()},
		// cycle 1: grant moved to m1, m0's beat in data phase gets the
		// first RETRY cycle while m1 presents its beat.
		{AP: m1beat, Grant: 1, Reply: SlaveReply{Ready: false, Resp: RespRetry}},
		// cycle 2: second RETRY cycle; m1 HOLDS its address phase
		// (legal: it is not the retried master).
		{AP: m1beat, Grant: 1, Reply: SlaveReply{Ready: true, Resp: RespRetry}},
		// cycle 3: m1's beat proceeds through its data phase.
		{AP: AddrPhase{}, Grant: 1, Reply: OkayReady()},
	}
	var k Checker
	if err := feed(t, &k, cycles...); err != nil {
		t.Fatalf("grant-handover RETRY sequence rejected: %v", err)
	}

	// Control: when the retried master itself holds the address phase
	// it must IDLE, and the checker still enforces that.
	var k2 Checker
	bad := []CycleState{
		{AP: m0beat, Grant: 0, Reply: OkayReady()},
		{AP: m0beat, Grant: 0, Reply: SlaveReply{Ready: false, Resp: RespRetry}},
		{AP: m0beat, Grant: 0, Reply: SlaveReply{Ready: true, Resp: RespRetry}},
	}
	err := feed(t, &k2, bad...)
	if err == nil || !strings.Contains(err.Error(), "must drive IDLE") {
		t.Fatalf("retried owner keeping its beat must be rejected, got %v", err)
	}
}

func TestCheckerViolationErrorFields(t *testing.T) {
	var k Checker
	ap := AddrPhase{Addr: 0x1002, Trans: TransNonSeq, Size: Size32}
	err := k.Check(okCycle(ap))
	ve, ok := err.(*ViolationError)
	if !ok {
		t.Fatalf("want *ViolationError, got %T", err)
	}
	if ve.Cycle != 0 {
		t.Errorf("cycle = %d, want 0", ve.Cycle)
	}
	if k.Cycles() != 1 {
		t.Errorf("Cycles() = %d, want 1", k.Cycles())
	}
}
