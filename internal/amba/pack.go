package amba

import "fmt"

// Wire encoding of PartialState records.
//
// The channel cost model charges per 32-bit word, so the packetizer packs
// a domain's per-cycle contribution into as few words as possible. The
// layout is:
//
//	word 0: header
//	  bits  0..7   presence flags (hasAP, hasWData, hasReply)
//	  bits  8..15  req bits     (up to 8 masters)
//	  bits 16..23  req mask
//	  bits 24..31  irq bits (owned bits pre-masked; mask implied static)
//	word 1..2: HADDR, control word          (present iff hasAP)
//	word 3:    HWDATA                        (present iff hasWData)
//	word 4:    reply word (ready|resp|rdata16hi? no — see below)
//	word 5:    HRDATA                        (present iff hasReply)
//
// The reply costs two words (flags + full HRDATA) to keep HRDATA
// lossless. The paper's §1.2 observation that per-cycle payloads rarely
// exceed five words matches this layout.
const (
	flagAP uint32 = 1 << 0
	flagWD uint32 = 1 << 1
	flagRP uint32 = 1 << 2
	flagSP uint32 = 1 << 3

	flagReplyReady uint32 = 1 << 2
)

// MaxMasters is the largest number of bus masters the wire encoding (and
// the AHB spec, which defines 16 HBUSREQ lines; we pack 8) supports.
const MaxMasters = 8

// MaxIRQLines is the number of interrupt lines carried in the header.
const MaxIRQLines = 8

// PackedWords returns the number of words Pack will emit for p.
func (p PartialState) PackedWords() int {
	n := 1
	if p.HasAP {
		n += 2
	}
	if p.HasWData {
		n++
	}
	if p.HasReply {
		n += 2
	}
	if p.SplitMask != 0 {
		n++
	}
	return n
}

// Pack appends the wire encoding of p to dst and returns the extended
// slice. IRQMask and ReqMask are assumed to be static configuration known
// to both sides; masks are transmitted anyway (one byte each inside the
// header) so that a receiver can be self-contained.
func (p PartialState) Pack(dst []Word) []Word {
	var flags uint32
	if p.HasAP {
		flags |= flagAP
	}
	if p.HasWData {
		flags |= flagWD
	}
	if p.HasReply {
		flags |= flagRP
	}
	if p.SplitMask != 0 {
		flags |= flagSP
	}
	header := flags |
		(p.Req&p.ReqMask&0xff)<<8 |
		(p.ReqMask&0xff)<<16 |
		(p.IRQ&p.IRQMask&0xff)<<24
	dst = append(dst, Word(header))
	if p.HasAP {
		dst = append(dst, Word(p.AP.Addr), Word(packCtrl(p.AP)))
	}
	if p.HasWData {
		dst = append(dst, p.WData)
	}
	if p.HasReply {
		var rw uint32
		rw = uint32(p.Reply.Resp)
		if p.Reply.Ready {
			rw |= flagReplyReady
		}
		dst = append(dst, Word(rw), p.Reply.RData)
	}
	if p.SplitMask != 0 {
		dst = append(dst, Word((p.Split&p.SplitMask&0xff)|(p.SplitMask&0xff)<<8))
	}
	return dst
}

// packCtrl folds the control group into one word:
// bits 0..1 HTRANS, 2 HWRITE, 3..5 HSIZE, 6..8 HBURST, 9..12 HPROT.
func packCtrl(a AddrPhase) uint32 {
	w := uint32(a.Trans) & 0x3
	if a.Write {
		w |= 1 << 2
	}
	w |= (uint32(a.Size) & 0x7) << 3
	w |= (uint32(a.Burst) & 0x7) << 6
	w |= (uint32(a.Prot) & 0xf) << 9
	return w
}

func unpackCtrl(w uint32) AddrPhase {
	return AddrPhase{
		Trans: Trans(w & 0x3),
		Write: w&(1<<2) != 0,
		Size:  Size((w >> 3) & 0x7),
		Burst: Burst((w >> 6) & 0x7),
		Prot:  Prot((w >> 9) & 0xf),
	}
}

// Unpack decodes one PartialState from the front of src, returning the
// state, the remaining words, and an error on truncated input. The
// receiver must supply irqMask, which is static configuration (the header
// carries pre-masked IRQ bits only).
func Unpack(src []Word, irqMask uint32) (PartialState, []Word, error) {
	if len(src) == 0 {
		return PartialState{}, nil, fmt.Errorf("amba: unpack: empty input")
	}
	h := uint32(src[0])
	src = src[1:]
	var p PartialState
	p.ReqMask = (h >> 16) & 0xff
	p.Req = (h >> 8) & 0xff & p.ReqMask
	p.IRQMask = irqMask
	p.IRQ = (h >> 24) & 0xff & irqMask
	if h&flagAP != 0 {
		if len(src) < 2 {
			return PartialState{}, nil, fmt.Errorf("amba: unpack: truncated address phase")
		}
		p.HasAP = true
		ap := unpackCtrl(uint32(src[1]))
		ap.Addr = Addr(src[0])
		p.AP = ap
		src = src[2:]
	}
	if h&flagWD != 0 {
		if len(src) < 1 {
			return PartialState{}, nil, fmt.Errorf("amba: unpack: truncated write data")
		}
		p.HasWData = true
		p.WData = src[0]
		src = src[1:]
	}
	if h&flagRP != 0 {
		if len(src) < 2 {
			return PartialState{}, nil, fmt.Errorf("amba: unpack: truncated reply")
		}
		p.HasReply = true
		rw := uint32(src[0])
		p.Reply = SlaveReply{
			Ready: rw&flagReplyReady != 0,
			Resp:  Resp(rw & 0x3),
			RData: src[1],
		}
		src = src[2:]
	}
	if h&flagSP != 0 {
		if len(src) < 1 {
			return PartialState{}, nil, fmt.Errorf("amba: unpack: truncated split word")
		}
		sw := uint32(src[0])
		p.SplitMask = (sw >> 8) & 0xff
		p.Split = sw & 0xff & p.SplitMask
		src = src[1:]
	}
	return p, src, nil
}
