package amba

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPartial(r *rand.Rand) PartialState {
	var p PartialState
	p.ReqMask = uint32(r.Intn(256))
	p.Req = uint32(r.Intn(256)) & p.ReqMask
	p.IRQMask = uint32(r.Intn(256))
	p.IRQ = uint32(r.Intn(256)) & p.IRQMask
	if r.Intn(2) == 0 {
		p.HasAP = true
		p.AP = AddrPhase{
			Addr:  Addr(r.Uint32()),
			Trans: Trans(r.Intn(4)),
			Write: r.Intn(2) == 0,
			Size:  Size(r.Intn(8)),
			Burst: Burst(r.Intn(8)),
			Prot:  Prot(r.Intn(16)),
		}
	}
	if r.Intn(2) == 0 {
		p.HasWData = true
		p.WData = Word(r.Uint32())
	}
	if r.Intn(2) == 0 {
		p.HasReply = true
		p.Reply = SlaveReply{
			Ready: r.Intn(2) == 0,
			Resp:  Resp(r.Intn(4)),
			RData: Word(r.Uint32()),
		}
	}
	if r.Intn(2) == 0 {
		p.SplitMask = uint32(1 + r.Intn(255))
		p.Split = uint32(r.Intn(256)) & p.SplitMask
	}
	return p
}

// Property: Unpack(Pack(p)) == p for any partial state.
func TestPackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		p := randomPartial(r)
		words := p.Pack(nil)
		if len(words) != p.PackedWords() {
			t.Fatalf("PackedWords = %d but Pack emitted %d", p.PackedWords(), len(words))
		}
		got, rest, err := Unpack(words, p.IRQMask)
		if err != nil {
			t.Fatalf("unpack: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("unpack left %d words", len(rest))
		}
		if !got.Equal(p) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
		}
	}
}

// Property: packing is append-only and multiple records concatenate and
// split back correctly.
func TestPackConcatenation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(8)
		var words []Word
		var in []PartialState
		for j := 0; j < n; j++ {
			p := randomPartial(r)
			in = append(in, p)
			words = p.Pack(words)
		}
		rest := words
		for j := 0; j < n; j++ {
			var got PartialState
			var err error
			got, rest, err = Unpack(rest, in[j].IRQMask)
			if err != nil {
				t.Fatalf("record %d: %v", j, err)
			}
			if !got.Equal(in[j]) {
				t.Fatalf("record %d mismatch", j)
			}
		}
		if len(rest) != 0 {
			t.Fatalf("leftover %d words", len(rest))
		}
	}
}

func TestUnpackTruncated(t *testing.T) {
	p := PartialState{HasAP: true, AP: AddrPhase{Addr: 4, Trans: TransNonSeq, Size: Size32}}
	words := p.Pack(nil)
	for cut := 0; cut < len(words); cut++ {
		if _, _, err := Unpack(words[:cut], 0); err == nil {
			t.Errorf("truncation at %d words not detected", cut)
		}
	}
	p2 := PartialState{HasReply: true, Reply: SlaveReply{Ready: true}}
	w2 := p2.Pack(nil)
	if _, _, err := Unpack(w2[:len(w2)-1], 0); err == nil {
		t.Error("truncated reply not detected")
	}
	p3 := PartialState{HasWData: true, WData: 9}
	w3 := p3.Pack(nil)
	if _, _, err := Unpack(w3[:1], 0); err == nil {
		t.Error("truncated write data not detected")
	}
}

// Property (quick): the header always costs exactly one word and payload
// size is bounded by 7 words (header + AP + wdata + reply + split),
// matching the paper's "does not exceed five words" payload observation
// plus our framing.
func TestPackSizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPartial(r)
		n := len(p.Pack(nil))
		return n >= 1 && n <= 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackEmpty(t *testing.T) {
	if _, _, err := Unpack(nil, 0); err == nil {
		t.Fatal("empty unpack must fail")
	}
}
