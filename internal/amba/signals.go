package amba

import "fmt"

// AddrPhase bundles the address-phase signals driven by the active bus
// master: HADDR plus the control group (HTRANS, HWRITE, HSIZE, HBURST,
// HPROT). These are the "predictable" members of the MSABS.
type AddrPhase struct {
	Addr  Addr
	Trans Trans
	Write bool
	Size  Size
	Burst Burst
	Prot  Prot
}

// Idle reports whether the address phase carries no beat request.
func (a AddrPhase) Idle() bool { return a.Trans == TransIdle }

// String renders the address phase compactly for traces and errors.
func (a AddrPhase) String() string {
	rw := "R"
	if a.Write {
		rw = "W"
	}
	return fmt.Sprintf("%s %s@%08x %s %s", a.Trans, rw, uint32(a.Addr), a.Size, a.Burst)
}

// SlaveReply bundles the data-phase response signals driven by the active
// bus slave: HREADY, HRESP and HRDATA.
type SlaveReply struct {
	Ready bool
	Resp  Resp
	RData Word
}

// OkayReady is the default reply of an idle bus: zero wait states, OKAY.
func OkayReady() SlaveReply { return SlaveReply{Ready: true, Resp: RespOkay} }

// String renders the reply compactly.
func (r SlaveReply) String() string {
	rdy := "wait"
	if r.Ready {
		rdy = "ready"
	}
	return fmt.Sprintf("%s/%s rdata=%08x", rdy, r.Resp, uint32(r.RData))
}

// CycleState is the complete MSABS record for one target clock cycle: the
// values of the minimal set of active bus signals, plus the arbitration
// grant (derivable from Req under static priority, recorded for tracing)
// and interrupt lines (which the paper says must be treated like MSABS
// members when they cross the domain boundary).
type CycleState struct {
	// AP holds the address-phase signals of the granted master.
	AP AddrPhase
	// WData is HWDATA: the write data driven by the master owning the
	// data phase. Valid only during the data phase of a write beat.
	WData Word
	// Reply holds HREADY/HRESP/HRDATA from the active slave.
	Reply SlaveReply
	// Req is the HBUSREQx bitmask over all masters (bit i = master i).
	Req uint32
	// Grant is the index of the master owning the address phase this
	// cycle. It is the arbitration *result*, deducible from Req and the
	// static priority map, so it is not transferred on the channel.
	Grant int
	// IRQ is a bitmask of interrupt lines, an example of a non-bus
	// signal crossing the boundary.
	IRQ uint32
	// Split is the HSPLITx bitmask: bit i set means some slave signals
	// that split-masked master i may be granted again. Part of the
	// MSABS (the paper lists HSPLITx among the active bus slave's
	// response signals).
	Split uint32
}

// Equal reports whether two cycle records carry the same MSABS values.
// Grant participates: although derivable, a mismatch there indicates the
// two half-bus arbiters diverged, which the equivalence tests must catch.
func (c CycleState) Equal(o CycleState) bool { return c == o }

// String renders one trace line.
func (c CycleState) String() string {
	return fmt.Sprintf("grant=%d req=%04b ap=[%s] wdata=%08x reply=[%s] irq=%02x split=%02x",
		c.Grant, c.Req, c.AP, uint32(c.WData), c.Reply, c.IRQ, c.Split)
}

// PartialState is the subset of a CycleState driven by one verification
// domain: what that domain's channel wrapper must transmit (or the remote
// leader must predict) for one target cycle. Presence flags distinguish
// "this domain drives the signal group" from "signal group is driven
// remotely"; the packetizer only transmits present groups, which is how
// the MSABS restriction reduces payload size.
type PartialState struct {
	// Req carries this domain's masters' request bits, positioned in
	// their global bit positions. ReqMask marks which bits are owned by
	// this domain (always present: every master's HBUSREQ is in MSABS).
	Req     uint32
	ReqMask uint32

	// HasAP is set when the active (granted) master is local to this
	// domain, making it the driver of address and control.
	HasAP bool
	AP    AddrPhase

	// HasWData is set when a local master owns the data phase of a
	// write beat.
	HasWData bool
	WData    Word

	// HasReply is set when the active slave is local to this domain.
	HasReply bool
	Reply    SlaveReply

	// IRQ carries interrupt lines sourced by this domain, with IRQMask
	// marking owned bits.
	IRQ     uint32
	IRQMask uint32

	// Split carries the HSPLITx lines (bit i releases split-masked
	// master i) raised by slaves in this domain; SplitMask marks the
	// master bits whose split release this domain's slaves can drive.
	Split     uint32
	SplitMask uint32
}

// Merge combines the contributions of the two domains into the full
// MSABS record. Exactly one side may drive each optional group; Merge
// panics when both do, because that indicates the two half-bus models
// disagree about bus state — a protocol-splitting bug the engine must
// never mask.
func Merge(a, b PartialState) CycleState {
	var c CycleState
	MergeInto(&c, &a, &b)
	return c
}

// MergeInto is Merge writing through pointers: dst receives the full
// record and the contributions are read in place. The engine's cycle
// loop merges once per committed cycle, so the value copies Merge
// implies are worth avoiding.
func MergeInto(dst *CycleState, a, b *PartialState) {
	if a.ReqMask&b.ReqMask != 0 {
		panic(fmt.Sprintf("amba: overlapping request ownership %04x/%04x", a.ReqMask, b.ReqMask))
	}
	// Every field of dst is written exactly once (no zero-then-set):
	// MergeInto runs once per committed cycle.
	c := dst
	c.Grant = 0
	c.Req = (a.Req & a.ReqMask) | (b.Req & b.ReqMask)
	c.IRQ = (a.IRQ & a.IRQMask) | (b.IRQ & b.IRQMask)
	// HSPLITx lines are per-slave vectors ORed by the arbiter, so both
	// domains may legitimately release the same master; no exclusivity.
	c.Split = (a.Split & a.SplitMask) | (b.Split & b.SplitMask)
	switch {
	case a.HasAP && b.HasAP:
		panic("amba: both domains drive the address phase")
	case a.HasAP:
		c.AP = a.AP
	case b.HasAP:
		c.AP = b.AP
	default:
		c.AP = AddrPhase{}
	}
	switch {
	case a.HasWData && b.HasWData:
		panic("amba: both domains drive write data")
	case a.HasWData:
		c.WData = a.WData
	case b.HasWData:
		c.WData = b.WData
	default:
		c.WData = 0
	}
	switch {
	case a.HasReply && b.HasReply:
		panic("amba: both domains drive the slave reply")
	case a.HasReply:
		c.Reply = a.Reply
	case b.HasReply:
		c.Reply = b.Reply
	default:
		// No transfer in the data phase anywhere: the bus presents the
		// idle response (zero wait states, OKAY), computable by both
		// domains locally, so it never crosses the channel.
		c.Reply = OkayReady()
	}
}

// Equal reports deep equality of two partial states, including presence
// flags. Used by the lagger's prediction check (L-1 in the paper's CW
// state diagram).
func (p PartialState) Equal(o PartialState) bool { return p == o }
