package amba

import (
	"strings"
	"testing"
)

func TestMergeDisjointOwnership(t *testing.T) {
	a := PartialState{
		Req: 0b01, ReqMask: 0b01,
		HasAP: true,
		AP:    AddrPhase{Addr: 0x100, Trans: TransNonSeq, Write: true, Size: Size32, Burst: BurstSingle},
		IRQ:   0x1, IRQMask: 0x3,
	}
	b := PartialState{
		Req: 0b10, ReqMask: 0b10,
		HasReply: true,
		Reply:    SlaveReply{Ready: true, Resp: RespOkay, RData: 0xdead},
		IRQ:      0x8, IRQMask: 0xc,
	}
	c := Merge(a, b)
	if c.Req != 0b11 {
		t.Errorf("merged Req = %04b", c.Req)
	}
	if c.AP != a.AP {
		t.Errorf("merged AP = %v", c.AP)
	}
	if c.Reply != b.Reply {
		t.Errorf("merged Reply = %v", c.Reply)
	}
	if c.IRQ != 0x9 {
		t.Errorf("merged IRQ = %x, want 9", c.IRQ)
	}
}

func TestMergeDefaultsToIdleResponse(t *testing.T) {
	a := PartialState{ReqMask: 0b01}
	b := PartialState{ReqMask: 0b10}
	c := Merge(a, b)
	if !c.Reply.Ready || c.Reply.Resp != RespOkay {
		t.Fatalf("idle merge must give OKAY/ready, got %v", c.Reply)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestMergeConflictsPanic(t *testing.T) {
	mustPanic(t, "req overlap", func() {
		Merge(PartialState{ReqMask: 1}, PartialState{ReqMask: 1})
	})
	mustPanic(t, "double AP", func() {
		Merge(PartialState{HasAP: true, ReqMask: 1}, PartialState{HasAP: true, ReqMask: 2})
	})
	mustPanic(t, "double wdata", func() {
		Merge(PartialState{HasWData: true, ReqMask: 1}, PartialState{HasWData: true, ReqMask: 2})
	})
	mustPanic(t, "double reply", func() {
		Merge(PartialState{HasReply: true, ReqMask: 1}, PartialState{HasReply: true, ReqMask: 2})
	})
}

func TestCycleStateString(t *testing.T) {
	cs := CycleState{Grant: 2, Req: 0b0110}
	s := cs.String()
	if !strings.Contains(s, "grant=2") {
		t.Errorf("String() = %q", s)
	}
}

func TestCycleStateEqual(t *testing.T) {
	a := CycleState{Grant: 1, Req: 3, WData: 7}
	b := a
	if !a.Equal(b) {
		t.Error("identical states must be equal")
	}
	b.WData = 8
	if a.Equal(b) {
		t.Error("different states must not be equal")
	}
}
