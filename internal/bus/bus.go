// Package bus implements a cycle-accurate AMBA AHB bus fabric: a fixed
// (static) priority arbiter, a static address decoder, the two-stage
// address/data pipeline and the default-slave behavior.
//
// The same Bus type serves two roles in the reproduction:
//
//   - as the monolithic reference model ("the target bus") against which
//     every co-emulated run is checked for cycle-exact equivalence, and
//   - as the half-bus model (the paper's HBMS/HBMA) inside each
//     verification domain, where components living in the other domain
//     are declared *external*: the bus computes everything driven by its
//     local components and receives the externally-driven signal groups
//     (an amba.PartialState) at commit time — either read from the
//     channel or predicted by the leader.
//
// Each cycle is split into Evaluate (compute locally-driven outputs from
// registered state; legal because AHB confines inter-component
// communication to clock edges, the paper's §3 argument) and Commit
// (merge the remote contribution, advance the pipeline, deliver
// feedback). The monolithic reference bus is simply a bus with no
// external components committed with an empty remote contribution.
package bus

import (
	"fmt"

	"coemu/internal/amba"
)

// MasterDrive is everything a bus master drives in one cycle: its bus
// request line, its address-phase signals (sampled only while the master
// owns the address phase) and its write data (sampled only while the
// master owns the data phase of a write beat).
type MasterDrive struct {
	Req   bool
	AP    amba.AddrPhase
	WData amba.Word
}

// MasterFeedback is everything a master samples at the end of a cycle.
type MasterFeedback struct {
	// Granted reports that the master owned the address phase this cycle.
	Granted bool
	// GrantNext reports that the master will own the address phase next
	// cycle (HGRANT && HREADY at this edge).
	GrantNext bool
	// Ready is the bus-wide HREADY this cycle.
	Ready bool
	// OwnsData reports that this master's beat was in the data phase.
	OwnsData bool
	// Resp and RData are meaningful when OwnsData is set.
	Resp  amba.Resp
	RData amba.Word
	// SplitMasked reports that the master is split-masked for the next
	// cycle: it must not present address phases until released.
	SplitMasked bool
}

// Master is a bus master: CPU model, DMA engine, or any traffic source.
// Drive is called exactly once per cycle during Evaluate; Commit exactly
// once during the bus Commit. Both must be deterministic functions of
// component state (roll-forth replays them).
type Master interface {
	Name() string
	Drive() MasterDrive
	Commit(fb MasterFeedback)
}

// Slave is a bus slave. Respond is called during Evaluate on each cycle
// one of its beats spends in the data phase (repeatedly across wait
// states) and must not depend on write data — HREADY/HRESP/HRDATA are
// functions of the slave's own state, which is what makes the split
// evaluation (and the paper's response prediction) sound. WriteCommit
// delivers the write data of a completing write beat at the clock edge.
// Commit follows every Respond with the final bus HREADY.
type Slave interface {
	Name() string
	Respond(ap amba.AddrPhase) amba.SlaveReply
	WriteCommit(ap amba.AddrPhase, wdata amba.Word)
	Commit(ready bool)
}

// IRQSource is optionally implemented by masters or slaves that drive
// interrupt lines. Each source owns a static subset of lines.
type IRQSource interface {
	IRQ() uint32
}

// SplitSource is implemented by slaves capable of SPLIT responses. The
// bus polls SplitRelease once per cycle during Evaluate; set bits are
// the HSPLITx lines releasing split-masked masters.
type SplitSource interface {
	SplitRelease() uint32
}

// SplitNotifiee is optionally implemented by SPLIT-capable slaves that
// need to know which master they just split (AHB slaves see HMASTER;
// this callback stands in for it).
type SplitNotifiee interface {
	NotifySplit(master int)
}

// Region is a half-open address window [Lo, Hi) routed to one slave.
type Region struct {
	Lo, Hi amba.Addr
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a amba.Addr) bool { return a >= r.Lo && a < r.Hi }

// DefaultSlaveIndex marks a data phase owned by the built-in default
// slave (no decoder region matched).
const DefaultSlaveIndex = -1

// dataPhase tracks the transfer currently in the bus data phase.
type dataPhase struct {
	Valid  bool
	AP     amba.AddrPhase
	Master int
	Slave  int // DefaultSlaveIndex for the default slave
}

// busState is the registered state of the fabric, separated out so the
// rollback registry can snapshot it wholesale.
type busState struct {
	Grant  int
	DP     dataPhase
	DefErr bool // default slave is in the second cycle of an ERROR
	Cycle  int64
	// SplitMask marks masters currently split-masked: they completed a
	// SPLIT response and must not be granted until a slave raises their
	// HSPLITx line.
	SplitMask uint32
}

// evalState holds the outputs of Evaluate until the matching Commit.
type evalState struct {
	valid  bool
	drives []MasterDrive
	local  amba.PartialState
}

// Bus is a single AHB layer. Construct with New, attach components with
// AddMaster/MapSlave (or their External variants for components living
// in the other verification domain), then call Evaluate+Commit once per
// target cycle. Step combines both for fully-local buses.
type Bus struct {
	name    string
	masters []Master // nil entries are external
	slaves  []Slave  // nil entries are external
	mnames  []string
	snames  []string
	regions []Region
	irqs    []IRQSource
	irqMask uint32 // IRQ bits owned by local components

	// ownsDefault makes this bus the driver of default-slave replies.
	// Exactly one of the two half-buses owns them (the reference bus
	// always does); see MapExternalSlave documentation.
	ownsDefault bool

	// splits collects local SPLIT-capable slaves; non-empty makes the
	// bus a driver of HSPLITx lines for all masters.
	splits []SplitSource

	st   busState
	eval evalState
	res  StepResult // CommitFrom result record, reused every cycle

	// drives is the Evaluate scratch buffer, sized to the master count
	// and reused every cycle so the steady-state loop never allocates.
	// Slots of external (nil) masters stay zero forever; local slots
	// are overwritten each Evaluate before any read, so the buffer is
	// never re-zeroed on the hot path.
	drives []MasterDrive

	// localReq caches LocalReqMask (the topology is fixed after
	// construction; recomputing it per cycle showed in profiles).
	localReq uint32

	// lane, when non-nil, fans the Evaluate master-drive loop out
	// across the lane and the calling goroutine (SetEvalLane). laneIdx
	// and inlineIdx partition the local master indices between the
	// two; laneTask is the prebuilt lane closure so the per-cycle
	// dispatch never allocates.
	lane      EvalLane
	laneIdx   []int
	inlineIdx []int
	laneTask  func()

	// saved/clean implement compare-on-save dirty tracking
	// (rollback.DeltaSnapshotter); busState is a small value struct.
	saved busState
	clean bool
}

// New creates an empty bus fabric that owns the default slave.
func New(name string) *Bus {
	return &Bus{name: name, ownsDefault: true}
}

// Name returns the fabric's diagnostic name.
func (b *Bus) Name() string { return b.name }

// SetOwnsDefault configures whether this bus drives default-slave
// replies locally (true) or expects them in the remote contribution.
func (b *Bus) SetOwnsDefault(v bool) { b.ownsDefault = v }

// OwnsDefaultSlave reports whether this bus drives default-slave replies.
func (b *Bus) OwnsDefaultSlave() bool { return b.ownsDefault }

// AddMaster attaches a local master and returns its index, which is both
// its HBUSREQ bit position and its arbitration priority (lower index
// wins — the static priority scheme the paper assumes).
func (b *Bus) AddMaster(m Master) int {
	if m == nil {
		panic("bus: nil master (use AddExternalMaster)")
	}
	return b.addMaster(m, m.Name())
}

// AddExternalMaster reserves the next master index for a master that
// lives in the other verification domain. Its request bit, address
// phase and write data arrive in the remote contribution at Commit.
func (b *Bus) AddExternalMaster(name string) int {
	return b.addMaster(nil, name)
}

func (b *Bus) addMaster(m Master, name string) int {
	if len(b.masters) >= amba.MaxMasters {
		panic(fmt.Sprintf("bus %s: more than %d masters", b.name, amba.MaxMasters))
	}
	b.masters = append(b.masters, m)
	b.mnames = append(b.mnames, name)
	if m != nil {
		b.localReq |= 1 << uint(len(b.masters)-1)
	}
	if src, ok := m.(IRQSource); ok && m != nil {
		b.irqs = append(b.irqs, src)
	}
	return len(b.masters) - 1
}

// MapSlave attaches a local slave to an address region and returns its
// index. Regions must not overlap; the decoder is static per the
// paper's footnote 4. irqMask declares the interrupt lines the slave
// owns (0 for none); the slave must implement IRQSource if non-zero.
func (b *Bus) MapSlave(s Slave, r Region, irqMask uint32) int {
	if s == nil {
		panic("bus: nil slave (use MapExternalSlave)")
	}
	idx := b.mapSlave(s, s.Name(), r)
	if irqMask != 0 {
		src, ok := s.(IRQSource)
		if !ok {
			panic(fmt.Sprintf("bus %s: slave %s declares IRQ lines but is no IRQSource", b.name, s.Name()))
		}
		b.irqs = append(b.irqs, src)
		b.irqMask |= irqMask
	}
	return idx
}

// MapExternalSlave reserves a region for a slave living in the other
// verification domain: the decoder routes beats to it, but its replies
// arrive in the remote contribution.
func (b *Bus) MapExternalSlave(name string, r Region) int {
	return b.mapSlave(nil, name, r)
}

func (b *Bus) mapSlave(s Slave, name string, r Region) int {
	if r.Hi <= r.Lo {
		panic(fmt.Sprintf("bus %s: empty region [%x,%x)", b.name, r.Lo, r.Hi))
	}
	for i, old := range b.regions {
		if r.Lo < old.Hi && old.Lo < r.Hi {
			panic(fmt.Sprintf("bus %s: region [%x,%x) overlaps slave %d", b.name, r.Lo, r.Hi, i))
		}
	}
	b.slaves = append(b.slaves, s)
	b.snames = append(b.snames, name)
	b.regions = append(b.regions, r)
	if src, ok := s.(SplitSource); ok && s != nil {
		b.splits = append(b.splits, src)
	}
	return len(b.slaves) - 1
}

// Masters returns the number of attached masters (local + external).
func (b *Bus) Masters() int { return len(b.masters) }

// Slaves returns the number of attached slaves (local + external).
func (b *Bus) Slaves() int { return len(b.slaves) }

// MasterLocal reports whether master i is local to this bus.
func (b *Bus) MasterLocal(i int) bool { return b.masters[i] != nil }

// SlaveLocal reports whether slave i is local to this bus.
func (b *Bus) SlaveLocal(i int) bool {
	return i != DefaultSlaveIndex && b.slaves[i] != nil
}

// LocalReqMask returns the HBUSREQ bits owned by local masters.
func (b *Bus) LocalReqMask() uint32 { return b.localReq }

// LocalIRQMask returns the interrupt lines owned by local components.
func (b *Bus) LocalIRQMask() uint32 { return b.irqMask }

// LocalSplitMask returns the HSPLITx bits this bus's local slaves can
// drive: every master bit when any local slave is SPLIT-capable.
func (b *Bus) LocalSplitMask() uint32 {
	if len(b.splits) == 0 {
		return 0
	}
	return (1 << uint(len(b.masters))) - 1
}

// SplitMasked returns the masters currently split-masked.
func (b *Bus) SplitMasked() uint32 { return b.st.SplitMask }

// Grant returns the master owning the address phase of the next cycle.
func (b *Bus) Grant() int { return b.st.Grant }

// DataPhase returns the transfer occupying the data phase of the next
// cycle: its validity, accepted address phase, and owner indexes.
func (b *Bus) DataPhase() (valid bool, ap amba.AddrPhase, master, slave int) {
	return b.st.DP.Valid, b.st.DP.AP, b.st.DP.Master, b.st.DP.Slave
}

// Decode returns the slave index owning address a, or DefaultSlaveIndex.
func (b *Bus) Decode(a amba.Addr) int {
	for i, r := range b.regions {
		if r.Contains(a) {
			return i
		}
	}
	return DefaultSlaveIndex
}

// Arbitrate computes the next address-phase owner from the full request
// mask: the lowest-index requesting master wins; with no requests the
// bus stays parked on the current owner (AHB default-master behavior).
// Split-masked masters are never granted: the arbiter skips their
// requests and will not park on them while an unmasked master exists.
func (b *Bus) Arbitrate(req uint32) int {
	masked := b.st.SplitMask
	for i := range b.masters {
		if req&^masked&(1<<uint(i)) != 0 {
			return i
		}
	}
	if masked&(1<<uint(b.st.Grant)) == 0 {
		return b.st.Grant
	}
	for i := range b.masters {
		if masked&(1<<uint(i)) == 0 {
			return i
		}
	}
	return b.st.Grant // every master split-masked: bus idles
}

// EvalLane is a worker lane the bus fans its Evaluate master-drive
// loop out to: Dispatch hands the lane a task, Wait joins it. The
// caller of Evaluate owns the lane for the duration of the call (the
// engine's worker pool provides one dedicated lane per bus).
type EvalLane interface {
	Dispatch(fn func())
	Wait()
}

// SetEvalLane installs (nil removes) a worker lane for the Evaluate
// master-drive fan-out. Master Drive calls touch only that master's
// own state, so they may run concurrently; the request-bit merge stays
// on the calling goroutine in master-index order after the join, so
// the evaluated contribution is byte-stable regardless of completion
// order. With fewer than two local masters the lane is ignored — there
// is nothing to overlap.
func (b *Bus) SetEvalLane(l EvalLane) {
	b.lane = nil
	b.laneTask = nil
	b.laneIdx = b.laneIdx[:0]
	b.inlineIdx = b.inlineIdx[:0]
	if l == nil {
		return
	}
	local := 0
	for i, m := range b.masters {
		if m == nil {
			continue
		}
		// Interleave the split so heterogeneous masters spread across
		// both sides instead of clustering on one.
		if local%2 == 1 {
			b.laneIdx = append(b.laneIdx, i)
		} else {
			b.inlineIdx = append(b.inlineIdx, i)
		}
		local++
	}
	if local < 2 {
		b.laneIdx = b.laneIdx[:0]
		b.inlineIdx = b.inlineIdx[:0]
		return
	}
	b.lane = l
	b.laneTask = func() {
		for _, i := range b.laneIdx {
			b.drives[i] = b.masters[i].Drive()
		}
	}
}

// Evaluate computes everything this bus's local components drive in the
// upcoming cycle and returns it as a partial MSABS contribution. It must
// be followed by exactly one Commit. Calling Evaluate twice without a
// Commit panics — that would double-step component state.
func (b *Bus) Evaluate() amba.PartialState {
	var p amba.PartialState
	b.EvaluateInto(&p)
	return p
}

// EvaluateInto is Evaluate writing the contribution through dst — the
// engine's cycle loop deposits it straight into a LOB entry without
// the intermediate value copies a return implies.
func (b *Bus) EvaluateInto(dst *amba.PartialState) {
	if b.eval.valid {
		panic(fmt.Sprintf("bus %s: Evaluate without intervening Commit", b.name))
	}
	if len(b.masters) == 0 {
		panic(fmt.Sprintf("bus %s: no masters", b.name))
	}

	if cap(b.drives) < len(b.masters) {
		b.drives = make([]MasterDrive, len(b.masters))
	}
	drives := b.drives[:len(b.masters)]
	// Build the contribution directly in the eval stash; one copy out
	// to the caller at the end.
	local := &b.eval.local
	*local = amba.PartialState{ReqMask: b.localReq, IRQMask: b.irqMask}

	if b.lane != nil {
		// Fan the drive loop out: the lane runs its half of the local
		// masters while this goroutine runs the other. Each Drive
		// writes only its own drives slot and its own master's state;
		// the deterministic request-bit merge below happens after the
		// join, in master-index order.
		b.lane.Dispatch(b.laneTask)
		for _, i := range b.inlineIdx {
			drives[i] = b.masters[i].Drive()
		}
		b.lane.Wait()
		for i := range drives {
			if drives[i].Req {
				local.Req |= 1 << uint(i)
			}
		}
	} else {
		for i, m := range b.masters {
			if m == nil {
				continue
			}
			drives[i] = m.Drive()
			if drives[i].Req {
				local.Req |= 1 << uint(i)
			}
		}
	}

	if b.masters[b.st.Grant] != nil {
		local.HasAP = true
		local.AP = drives[b.st.Grant].AP
	}

	dp := b.st.DP
	if dp.Valid {
		switch {
		case dp.Slave == DefaultSlaveIndex:
			if b.ownsDefault {
				local.HasReply = true
				local.Reply = b.defaultSlaveReply()
			}
		case b.slaves[dp.Slave] != nil:
			local.HasReply = true
			local.Reply = b.slaves[dp.Slave].Respond(dp.AP)
		}
		if dp.AP.Write && b.masters[dp.Master] != nil {
			local.HasWData = true
			local.WData = drives[dp.Master].WData
		}
	}

	for _, s := range b.irqs {
		local.IRQ |= s.IRQ()
	}
	local.IRQ &= b.irqMask

	local.SplitMask = b.LocalSplitMask()
	for _, s := range b.splits {
		local.Split |= s.SplitRelease()
	}
	local.Split &= local.SplitMask

	b.eval.valid = true
	b.eval.drives = drives
	*dst = *local
}

// StepResult reports one completed bus cycle: the full MSABS record plus
// the data-phase bookkeeping the co-emulation engine needs to decide
// which domain drives which signal group.
type StepResult struct {
	State amba.CycleState
	// DataValid reports a real transfer occupied the data phase.
	DataValid bool
	// DataMaster/DataSlave identify its owner endpoints (DataSlave may
	// be DefaultSlaveIndex).
	DataMaster int
	DataSlave  int
	// DataWrite mirrors the direction of the data-phase beat.
	DataWrite bool
}

// Commit merges the remote contribution with the local evaluation,
// advances the pipeline by one clock edge and delivers feedback to the
// local components. For a fully-local bus pass an empty PartialState.
func (b *Bus) Commit(remote amba.PartialState) StepResult {
	return *b.CommitFrom(&remote)
}

// CommitFrom is Commit reading the remote contribution in place and
// returning a pointer into the bus-owned result record, valid until
// the next Commit — the engine's cycle loop commits once per target
// cycle, and the state-record value copies a return implies were a
// measurable slice of it.
func (b *Bus) CommitFrom(remote *amba.PartialState) *StepResult {
	if !b.eval.valid {
		panic(fmt.Sprintf("bus %s: Commit without Evaluate", b.name))
	}
	drives := b.eval.drives
	b.eval.valid = false

	res := &b.res
	amba.MergeInto(&res.State, &b.eval.local, remote)
	full := &res.State
	full.Grant = b.st.Grant
	dp := b.st.DP
	reply := full.Reply

	// Split-mask maintenance precedes arbitration: a master whose beat
	// completes with SPLIT this cycle must not be granted next cycle,
	// while HSPLITx lines raised this cycle re-enable their masters.
	b.st.SplitMask &^= full.Split
	if dp.Valid && reply.Ready && reply.Resp == amba.RespSplit {
		b.st.SplitMask |= 1 << uint(dp.Master)
		if dp.Slave != DefaultSlaveIndex && b.slaves[dp.Slave] != nil {
			if n, ok := b.slaves[dp.Slave].(SplitNotifiee); ok {
				n.NotifySplit(dp.Master)
			}
		}
	}

	// Arbitration (combinational; takes effect at the edge when ready).
	nextGrant := b.Arbitrate(full.Req)

	res.DataValid = dp.Valid
	res.DataMaster = dp.Master
	res.DataSlave = dp.Slave
	res.DataWrite = dp.Valid && dp.AP.Write

	// Write data lands in the local slave at the completing edge.
	if dp.Valid && dp.AP.Write && reply.Ready && reply.Resp == amba.RespOkay &&
		dp.Slave != DefaultSlaveIndex && b.slaves[dp.Slave] != nil {
		b.slaves[dp.Slave].WriteCommit(dp.AP, full.WData)
	}

	// Pipeline advance.
	grantBefore := b.st.Grant
	if reply.Ready {
		ap := &full.AP
		if ap.Trans.Active() {
			b.st.DP.Valid = true
			b.st.DP.AP = *ap
			b.st.DP.Master = b.st.Grant
			b.st.DP.Slave = b.Decode(ap.Addr)
		} else {
			b.st.DP = dataPhase{}
		}
		b.st.Grant = nextGrant
	}
	b.st.Cycle++

	// Feedback to local masters.
	for i, m := range b.masters {
		if m == nil {
			continue
		}
		fb := MasterFeedback{
			Granted:     i == grantBefore,
			GrantNext:   i == b.st.Grant,
			Ready:       reply.Ready,
			OwnsData:    dp.Valid && dp.Master == i,
			SplitMasked: b.st.SplitMask&(1<<uint(i)) != 0,
		}
		if fb.OwnsData {
			fb.Resp = reply.Resp
			fb.RData = reply.RData
		}
		m.Commit(fb)
	}
	if dp.Valid && dp.Slave != DefaultSlaveIndex && b.slaves[dp.Slave] != nil {
		b.slaves[dp.Slave].Commit(reply.Ready)
	}
	_ = drives
	return res
}

// Quiescent reports whether the fabric is at an idle fixed point: no
// transfer in the data phase, no master split-masked, no default-slave
// ERROR in flight, and no Evaluate outstanding. At such a point a
// cycle committed with an inactive contribution from every master
// leaves all registered bus state except the cycle counter unchanged,
// which is the property the engine's predicted-quiescence batching
// relies on.
func (b *Bus) Quiescent() bool {
	return !b.eval.valid && !b.st.DP.Valid && b.st.SplitMask == 0 && !b.st.DefErr
}

// SkipQuiescent commits n quiescent cycles in one step. The caller
// must have proven the fixed point (Quiescent bus, inactive masters)
// for the whole span; only the cycle counter advances, exactly as n
// idle Evaluate/Commit rounds would leave it.
func (b *Bus) SkipQuiescent(n int64) {
	b.st.Cycle += n
}

// Step evaluates and commits one cycle of a fully-local bus.
func (b *Bus) Step() StepResult {
	b.Evaluate()
	return b.Commit(amba.PartialState{})
}

// defaultSlaveReply implements the AHB default slave: active beats that
// decode to no region receive a two-cycle ERROR response.
func (b *Bus) defaultSlaveReply() amba.SlaveReply {
	if b.st.DefErr {
		b.st.DefErr = false
		return amba.SlaveReply{Ready: true, Resp: amba.RespError}
	}
	b.st.DefErr = true
	return amba.SlaveReply{Ready: false, Resp: amba.RespError}
}

// Cycle returns the number of completed bus cycles.
func (b *Bus) Cycle() int64 { return b.st.Cycle }

// Save implements rollback.Snapshotter for the fabric's registered
// state. Snapshots may only be taken between cycles (never between
// Evaluate and Commit).
func (b *Bus) Save() any { return b.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a bus.
func (b *Bus) SaveInto(prev any) any {
	if b.eval.valid {
		panic(fmt.Sprintf("bus %s: snapshot between Evaluate and Commit", b.name))
	}
	st, ok := prev.(*busState)
	if !ok {
		st = new(busState)
	}
	*st = b.st
	return st
}

// Restore implements rollback.Snapshotter.
func (b *Bus) Restore(s any) {
	st, ok := s.(*busState)
	if !ok {
		panic(fmt.Sprintf("bus %s: bad snapshot %T", b.name, s))
	}
	b.st = *st
	b.eval = evalState{}
}

// Dirty implements rollback.DeltaSnapshotter: the fabric changed iff
// its registered state moved since the last MarkClean (the cycle
// counter alone makes any committed cycle dirty, as it must).
func (b *Bus) Dirty() bool { return !b.clean || b.st != b.saved }

// MarkClean implements rollback.DeltaSnapshotter.
func (b *Bus) MarkClean() {
	b.saved = b.st
	b.clean = true
}

// SaveDelta implements rollback.DeltaSnapshotter; busState is one
// small value struct, so deltas are self-contained copies.
func (b *Bus) SaveDelta(prev any) any { return b.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (b *Bus) RestoreDelta(newest any) { b.Restore(newest) }
