package bus

import (
	"testing"

	"coemu/internal/amba"
)

// scriptMaster drives a fixed per-cycle script and records feedback.
type scriptMaster struct {
	name   string
	drives []MasterDrive
	i      int
	fbs    []MasterFeedback
	hold   MasterDrive
}

func (m *scriptMaster) Name() string { return m.name }

func (m *scriptMaster) Drive() MasterDrive {
	if m.i < len(m.drives) {
		m.hold = m.drives[m.i]
		m.i++
	} else {
		m.hold = MasterDrive{}
	}
	return m.hold
}

func (m *scriptMaster) Commit(fb MasterFeedback) { m.fbs = append(m.fbs, fb) }

// stubSlave replies ready with a fixed data word after a fixed number of
// wait states per beat.
type stubSlave struct {
	name     string
	waits    int
	left     int
	fresh    bool
	rdata    amba.Word
	writes   []amba.Word
	respond  int
	commits  int
	readyCnt int
}

func (s *stubSlave) Name() string { return s.name }

func (s *stubSlave) Respond(ap amba.AddrPhase) amba.SlaveReply {
	s.respond++
	if !s.fresh {
		s.left = s.waits
		s.fresh = true
	}
	if s.left > 0 {
		s.left--
		return amba.SlaveReply{Ready: false, Resp: amba.RespOkay}
	}
	return amba.SlaveReply{Ready: true, Resp: amba.RespOkay, RData: s.rdata}
}

func (s *stubSlave) WriteCommit(ap amba.AddrPhase, wdata amba.Word) {
	s.writes = append(s.writes, wdata)
}

func (s *stubSlave) Commit(ready bool) {
	s.commits++
	if ready {
		s.fresh = false
		s.readyCnt++
	}
}

func singleBeat(addr amba.Addr, write bool) MasterDrive {
	return MasterDrive{
		Req: true,
		AP:  amba.AddrPhase{Addr: addr, Trans: amba.TransNonSeq, Write: write, Size: amba.Size32, Burst: amba.BurstSingle},
	}
}

func TestBusGrantParksOnCurrentOwner(t *testing.T) {
	b := New("t")
	m0 := &scriptMaster{name: "m0"}
	b.AddMaster(m0)
	b.MapSlave(&stubSlave{name: "s"}, Region{0, 0x1000}, 0)
	res := b.Step()
	if res.State.Grant != 0 {
		t.Fatalf("grant = %d, want 0", res.State.Grant)
	}
	if !res.State.Reply.Ready {
		t.Fatal("idle bus must be ready")
	}
}

func TestBusPriorityArbitration(t *testing.T) {
	b := New("t")
	m0 := &scriptMaster{name: "m0"} // never requests
	m1 := &scriptMaster{name: "m1", drives: []MasterDrive{{Req: true}, {Req: true}}}
	m2 := &scriptMaster{name: "m2", drives: []MasterDrive{{Req: true}, {Req: true}}}
	b.AddMaster(m0)
	b.AddMaster(m1)
	b.AddMaster(m2)
	b.MapSlave(&stubSlave{name: "s"}, Region{0, 0x1000}, 0)

	b.Step() // both m1 and m2 request; m1 has priority
	if !m1.fbs[0].GrantNext {
		t.Error("m1 must be granted next")
	}
	if m2.fbs[0].GrantNext {
		t.Error("m2 must not be granted while m1 requests")
	}
	res := b.Step()
	if res.State.Grant != 1 {
		t.Errorf("cycle 1 grant = %d, want 1", res.State.Grant)
	}
}

func TestBusPipelinedWriteReachesSlave(t *testing.T) {
	b := New("t")
	m := &scriptMaster{name: "m", drives: []MasterDrive{
		{Req: true}, // cycle 0: request, not yet granted... grant parks on 0 though
	}}
	// Master 0 is parked-granted from reset, so it can present
	// immediately; craft the script accordingly.
	m.drives = []MasterDrive{
		singleBeat(0x40, true), // cycle 0: address phase
		{WData: 0xCAFEBABE},    // cycle 1: data phase
		{},                     // cycle 2: idle
	}
	s := &stubSlave{name: "s"}
	b.AddMaster(m)
	b.MapSlave(s, Region{0, 0x1000}, 0)

	r0 := b.Step()
	if !r0.State.AP.Trans.Active() {
		t.Fatal("cycle 0 must carry the address phase")
	}
	if r0.DataValid {
		t.Fatal("cycle 0 has no data phase")
	}
	r1 := b.Step()
	if !r1.DataValid || r1.DataMaster != 0 || r1.DataSlave != 0 {
		t.Fatalf("cycle 1 data phase = %+v", r1)
	}
	if r1.State.WData != 0xCAFEBABE {
		t.Fatalf("wdata = %x", uint32(r1.State.WData))
	}
	if len(s.writes) != 1 || s.writes[0] != 0xCAFEBABE {
		t.Fatalf("slave saw writes %v", s.writes)
	}
	if !m.fbs[1].OwnsData || m.fbs[1].Resp != amba.RespOkay {
		t.Fatalf("master feedback %+v", m.fbs[1])
	}
}

func TestBusWaitStatesFreezeGrantAndPhase(t *testing.T) {
	b := New("t")
	m := &scriptMaster{name: "m", drives: []MasterDrive{
		singleBeat(0x40, false),
		{}, {}, {},
	}}
	hungry := &scriptMaster{name: "h", drives: []MasterDrive{
		{Req: true}, {Req: true}, {Req: true}, {Req: true},
	}}
	s := &stubSlave{name: "s", waits: 2, rdata: 0x1234}
	b.AddMaster(m)
	b.AddMaster(hungry)
	b.MapSlave(s, Region{0, 0x1000}, 0)

	b.Step() // addr phase accepted (m has priority); hungry requests
	r1 := b.Step()
	if r1.State.Reply.Ready {
		t.Fatal("cycle 1 should be a wait state")
	}
	r2 := b.Step()
	if r2.State.Reply.Ready {
		t.Fatal("cycle 2 should still wait")
	}
	// Grant must not move to the hungry master during wait states.
	if r1.State.Grant != 0 || r2.State.Grant != 0 {
		t.Fatalf("grant moved during wait states: %d, %d", r1.State.Grant, r2.State.Grant)
	}
	r3 := b.Step()
	if !r3.State.Reply.Ready {
		t.Fatal("cycle 3 should complete")
	}
	if r3.State.Reply.RData != 0x1234 {
		t.Fatalf("rdata = %x", uint32(r3.State.Reply.RData))
	}
	if got := m.fbs[3]; !got.OwnsData || !got.Ready {
		t.Fatalf("master completion feedback %+v", got)
	}
	// Only after the completing edge does the hungry master get the bus.
	r4 := b.Step()
	if r4.State.Grant != 1 {
		t.Fatalf("cycle 4 grant = %d, want 1", r4.State.Grant)
	}
}

func TestBusDefaultSlaveTwoCycleError(t *testing.T) {
	b := New("t")
	m := &scriptMaster{name: "m", drives: []MasterDrive{
		singleBeat(0x9000, false), // unmapped address
		{}, {}, {},
	}}
	b.AddMaster(m)
	b.MapSlave(&stubSlave{name: "s"}, Region{0, 0x1000}, 0)

	b.Step()
	r1 := b.Step()
	if r1.State.Reply.Ready || r1.State.Reply.Resp != amba.RespError {
		t.Fatalf("cycle 1 = %v, want first ERROR cycle", r1.State.Reply)
	}
	if r1.DataSlave != DefaultSlaveIndex {
		t.Fatalf("data slave = %d, want default", r1.DataSlave)
	}
	r2 := b.Step()
	if !r2.State.Reply.Ready || r2.State.Reply.Resp != amba.RespError {
		t.Fatalf("cycle 2 = %v, want second ERROR cycle", r2.State.Reply)
	}
}

func TestBusDecode(t *testing.T) {
	b := New("t")
	b.AddMaster(&scriptMaster{name: "m"})
	s0 := b.MapSlave(&stubSlave{name: "a"}, Region{0x0000, 0x1000}, 0)
	s1 := b.MapSlave(&stubSlave{name: "b"}, Region{0x1000, 0x2000}, 0)
	if got := b.Decode(0x0800); got != s0 {
		t.Errorf("decode 0x800 = %d, want %d", got, s0)
	}
	if got := b.Decode(0x1000); got != s1 {
		t.Errorf("decode 0x1000 = %d, want %d", got, s1)
	}
	if got := b.Decode(0x5000); got != DefaultSlaveIndex {
		t.Errorf("decode 0x5000 = %d, want default", got)
	}
}

func TestBusRejectsOverlappingRegions(t *testing.T) {
	b := New("t")
	b.MapSlave(&stubSlave{name: "a"}, Region{0x0000, 0x1000}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping region must panic")
		}
	}()
	b.MapSlave(&stubSlave{name: "b"}, Region{0x0800, 0x1800}, 0)
}

func TestBusSnapshotRestore(t *testing.T) {
	b := New("t")
	m := &scriptMaster{name: "m", drives: []MasterDrive{
		singleBeat(0x40, true), {WData: 1}, {},
	}}
	b.AddMaster(m)
	b.MapSlave(&stubSlave{name: "s"}, Region{0, 0x1000}, 0)

	b.Step()
	snap := b.Save()
	cycleAt := b.Cycle()
	b.Step()
	b.Step()
	b.Restore(snap)
	if b.Cycle() != cycleAt {
		t.Fatalf("restored cycle = %d, want %d", b.Cycle(), cycleAt)
	}
}

func TestBusPanicsWithoutMasters(t *testing.T) {
	b := New("t")
	defer func() {
		if recover() == nil {
			t.Fatal("Step without masters must panic")
		}
	}()
	b.Step()
}

func TestRegionContains(t *testing.T) {
	r := Region{0x100, 0x200}
	if !r.Contains(0x100) || r.Contains(0x200) || r.Contains(0xFF) || !r.Contains(0x1FF) {
		t.Fatal("region bounds wrong")
	}
}
