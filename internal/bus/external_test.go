package bus

import (
	"testing"

	"coemu/internal/amba"
)

// TestExternalMasterContribution drives a half-bus whose only master is
// external: the address phase and write data arrive via the remote
// contribution, and the local slave must see the beats.
func TestExternalMasterContribution(t *testing.T) {
	b := New("half")
	b.AddExternalMaster("remote-dma")
	s := &stubSlave{name: "mem"}
	b.MapSlave(s, Region{0, 0x1000}, 0)

	remote := func(ap amba.AddrPhase, wdata amba.Word, hasWD bool) amba.PartialState {
		return amba.PartialState{
			Req: 1, ReqMask: 1,
			HasAP: true, AP: ap,
			HasWData: hasWD, WData: wdata,
		}
	}

	local := b.Evaluate()
	if local.HasAP {
		t.Fatal("half-bus with external grant owner must not claim the address phase")
	}
	if local.ReqMask != 0 {
		t.Fatalf("local req mask = %x, want 0", local.ReqMask)
	}
	beat := amba.AddrPhase{Addr: 0x40, Trans: amba.TransNonSeq, Write: true, Size: amba.Size32, Burst: amba.BurstSingle}
	b.Commit(remote(beat, 0, false))

	// Data phase: the local slave replies; write data is remote.
	local = b.Evaluate()
	if !local.HasReply {
		t.Fatal("local slave must own the reply")
	}
	if local.HasWData {
		t.Fatal("write data belongs to the remote master")
	}
	res := b.Commit(remote(amba.AddrPhase{}, 0xABCD0123, true))
	if !res.DataValid || res.State.WData != 0xABCD0123 {
		t.Fatalf("data phase result %+v", res)
	}
	if len(s.writes) != 1 || s.writes[0] != 0xABCD0123 {
		t.Fatalf("slave writes %v", s.writes)
	}
}

// TestExternalSlaveContribution drives a half-bus whose slave region is
// external: replies come from the remote contribution.
func TestExternalSlaveContribution(t *testing.T) {
	b := New("half")
	m := &scriptMaster{name: "m", drives: []MasterDrive{
		singleBeat(0x40, false),
		{}, {}, {},
	}}
	b.AddMaster(m)
	b.MapExternalSlave("remote-mem", Region{0, 0x1000})

	// Cycle 0: local master presents; no data phase yet.
	local := b.Evaluate()
	if !local.HasAP || local.HasReply {
		t.Fatalf("cycle 0 contribution %+v", local)
	}
	b.Commit(amba.PartialState{})

	// Cycle 1: the beat is in the external slave's data phase; the
	// reply must come from the remote side.
	local = b.Evaluate()
	if local.HasReply {
		t.Fatal("external slave's reply claimed locally")
	}
	res := b.Commit(amba.PartialState{
		HasReply: true,
		Reply:    amba.SlaveReply{Ready: true, Resp: amba.RespOkay, RData: 0x5555},
	})
	if !res.State.Reply.Ready || res.State.Reply.RData != 0x5555 {
		t.Fatalf("merged reply %v", res.State.Reply)
	}
	if !m.fbs[1].OwnsData || m.fbs[1].RData != 0x5555 {
		t.Fatalf("master feedback %+v", m.fbs[1])
	}
}

// TestDefaultSlaveOwnership: the non-owning half-bus leaves default
// replies to the remote contribution.
func TestDefaultSlaveOwnership(t *testing.T) {
	b := New("half")
	b.SetOwnsDefault(false)
	m := &scriptMaster{name: "m", drives: []MasterDrive{
		singleBeat(0x9000, true), // unmapped
		{}, {},
	}}
	b.AddMaster(m)
	b.MapSlave(&stubSlave{name: "s"}, Region{0, 0x1000}, 0)

	b.Evaluate()
	b.Commit(amba.PartialState{})
	local := b.Evaluate()
	if local.HasReply {
		t.Fatal("non-owner must not drive default-slave replies")
	}
	res := b.Commit(amba.PartialState{
		HasReply: true,
		Reply:    amba.SlaveReply{Ready: false, Resp: amba.RespError},
	})
	if res.State.Reply.Resp != amba.RespError {
		t.Fatalf("merged default reply %v", res.State.Reply)
	}
	if !b.OwnsDefaultSlave() == false {
		t.Fatal("ownership accessor inconsistent")
	}
}

func TestEvaluateCommitGuards(t *testing.T) {
	b := New("g")
	b.AddMaster(&scriptMaster{name: "m"})
	b.MapSlave(&stubSlave{name: "s"}, Region{0, 0x1000}, 0)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("commit without evaluate", func() { b.Commit(amba.PartialState{}) })
	b.Evaluate()
	mustPanic("double evaluate", func() { b.Evaluate() })
	mustPanic("save mid-cycle", func() { b.Save() })
	b.Commit(amba.PartialState{})
}

func TestLocalMasks(t *testing.T) {
	b := New("m")
	b.AddMaster(&scriptMaster{name: "m0"})
	b.AddExternalMaster("m1")
	b.AddMaster(&scriptMaster{name: "m2"})
	if got := b.LocalReqMask(); got != 0b101 {
		t.Fatalf("local req mask = %03b", got)
	}
	if !b.MasterLocal(0) || b.MasterLocal(1) || !b.MasterLocal(2) {
		t.Fatal("master locality wrong")
	}
	b.MapExternalSlave("x", Region{0, 0x100})
	if b.SlaveLocal(0) {
		t.Fatal("external slave reported local")
	}
	if b.LocalSplitMask() != 0 {
		t.Fatal("no split sources -> no split mask")
	}
}
