package bus

import (
	"fmt"
	"reflect"
	"testing"

	"coemu/internal/amba"
	"coemu/internal/par"
)

// poolLane adapts one par.Pool lane to the EvalLane interface, the same
// way the engine wires its bus fan-out lanes.
type poolLane struct{ p *par.Pool }

func (l poolLane) Dispatch(fn func()) { l.p.Dispatch(0, fn) }
func (l poolLane) Wait()              { l.p.Wait(0) }

// patternedBus builds a bus with n scripted masters contending over one
// slave for `cycles` cycles. Master i requests on every cycle where
// (cycle+i)%3 != 0, so grants migrate, park, and collide — the
// arbitration-relevant shape for proving the fan-out merge is
// order-identical to the sequential drive loop.
func patternedBus(n, cycles int) (*Bus, []*scriptMaster) {
	b := New("t")
	masters := make([]*scriptMaster, n)
	for i := range masters {
		drives := make([]MasterDrive, cycles)
		for c := range drives {
			if (c+i)%3 != 0 {
				drives[c] = singleBeat(amba.Addr(0x40*(i+1)+4*c%0x40), i%2 == 0)
			}
		}
		masters[i] = &scriptMaster{name: fmt.Sprintf("m%d", i), drives: drives}
		b.AddMaster(masters[i])
	}
	b.MapSlave(&stubSlave{name: "s", waits: 1}, Region{0, 0x1000}, 0)
	return b, masters
}

// TestEvalLaneBitIdentical drives the same master scripts through a
// sequential bus and a lane-assisted bus and requires every per-cycle
// StepResult and every master's feedback stream to match exactly. The
// lane splits the drive fan-out across two goroutines; the Req merge
// in master-index order must make that invisible.
func TestEvalLaneBitIdentical(t *testing.T) {
	const cycles = 500
	for _, n := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("masters=%d", n), func(t *testing.T) {
			seq, seqMasters := patternedBus(n, cycles)
			lan, lanMasters := patternedBus(n, cycles)

			pool := par.NewPool(1)
			defer pool.Close()
			lan.SetEvalLane(poolLane{pool})
			if got := len(lan.laneIdx) + len(lan.inlineIdx); got != n {
				t.Fatalf("lane partition covers %d of %d local masters", got, n)
			}
			if len(lan.laneIdx) == 0 {
				t.Fatal("no masters assigned to the lane; the test would be vacuous")
			}

			for c := 0; c < cycles; c++ {
				want := seq.Step()
				got := lan.Step()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cycle %d: step result diverged:\nlane: %+v\nseq:  %+v", c, got, want)
				}
			}
			for i := range seqMasters {
				if !reflect.DeepEqual(lanMasters[i].fbs, seqMasters[i].fbs) {
					t.Errorf("master %d feedback stream diverged under the eval lane", i)
				}
			}
		})
	}
}

// TestEvalLaneIgnoredForSingleMaster pins the guard against dispatching
// a fan-out that cannot pay for itself: with fewer than two local
// masters the lane must not be used at all.
func TestEvalLaneIgnoredForSingleMaster(t *testing.T) {
	b, _ := patternedBus(1, 8)
	pool := par.NewPool(1)
	defer pool.Close()
	b.SetEvalLane(poolLane{pool})
	if b.lane != nil || b.laneTask != nil || len(b.laneIdx) != 0 {
		t.Fatalf("single-master bus must ignore the eval lane: lane=%v laneIdx=%v", b.lane, b.laneIdx)
	}
	b.Step() // and stepping must not touch the pool
}

// TestSetEvalLaneNilRestoresSequential verifies detaching the lane
// returns the bus to the plain drive loop.
func TestSetEvalLaneNilRestoresSequential(t *testing.T) {
	b, _ := patternedBus(3, 8)
	pool := par.NewPool(1)
	defer pool.Close()
	b.SetEvalLane(poolLane{pool})
	if len(b.laneIdx) == 0 {
		t.Fatal("lane not armed")
	}
	b.SetEvalLane(nil)
	if b.lane != nil || b.laneTask != nil || len(b.laneIdx) != 0 || len(b.inlineIdx) != 0 {
		t.Fatal("SetEvalLane(nil) left lane state behind")
	}
	b.Step()
}
