package channel

import (
	"testing"

	"coemu/internal/amba"
	"coemu/internal/device"
	"coemu/internal/vclock"
)

// TestAccountNMatchesSends pins the loopback contract: AccountN leaves
// the ledger and every channel statistic bit-identical to n real Sends
// of the same payload size.
func TestAccountNMatchesSends(t *testing.T) {
	var sentLedger, accLedger vclock.Ledger
	sent := New(device.IPROVE(), &sentLedger)
	acc := New(device.IPROVE(), &accLedger)

	payload := make([]amba.Word, 5)
	const n = 9
	for i := 0; i < n; i++ {
		sent.Send(SimToAcc, payload)
		sent.Release(sent.Recv(SimToAcc)) // drain so only accounting differs
	}
	acc.AccountN(SimToAcc, len(payload), n)

	if sentLedger != accLedger {
		t.Fatalf("ledger diverged: send %v, account %v", sentLedger.String(), accLedger.String())
	}
	if sent.Stats() != acc.Stats() {
		t.Fatalf("stats diverged:\nsend:    %+v\naccount: %+v", sent.Stats(), acc.Stats())
	}
}

// TestAccountZeroLengthPaysStartup mirrors Send's doorbell semantics.
func TestAccountZeroLengthPaysStartup(t *testing.T) {
	var l vclock.Ledger
	c := New(device.IPROVE(), &l)
	c.Account(AccToSim, 0)
	if l.Get(vclock.Channel) < c.Stack().Startup() {
		t.Fatalf("zero-length access charged %v, want at least startup %v",
			l.Get(vclock.Channel), c.Stack().Startup())
	}
	if c.Stats().Accesses[AccToSim] != 1 {
		t.Fatal("access not counted")
	}
}
