// Package channel implements the simulator–accelerator channel: a pair
// of packet queues whose every access is charged to the virtual clock
// with the startup + per-word cost structure measured in the paper.
//
// The channel is the scarce resource of the whole system. Conventional
// co-emulation performs two accesses per target cycle (one transfer each
// direction); the prediction packetizing scheme collapses dozens of
// per-cycle transfers into one burst access per transition. All of that
// economics lives here, so the Stats this package collects (accesses,
// words, per-direction histograms) are primary experimental outputs.
package channel

import (
	"fmt"

	"coemu/internal/amba"
	"coemu/internal/device"
	"coemu/internal/vclock"
)

// Dir aliases device.Dir for callers that only import channel.
type Dir = device.Dir

// Directions re-exported for convenience.
const (
	SimToAcc = device.SimToAcc
	AccToSim = device.AccToSim
)

// Stats aggregates channel usage for one run.
type Stats struct {
	Accesses [2]int64 // per direction
	Words    [2]int64
	// SizeHist counts accesses by payload size bucket: <=1, <=2, <=5,
	// <=16, <=64, >64 words — chosen so the paper's "does not exceed
	// five words" observation is directly visible.
	SizeHist [2][6]int64
}

// bucket classifies a payload size into a histogram bucket.
func bucket(words int) int {
	switch {
	case words <= 1:
		return 0
	case words <= 2:
		return 1
	case words <= 5:
		return 2
	case words <= 16:
		return 3
	case words <= 64:
		return 4
	default:
		return 5
	}
}

// BucketLabels returns the histogram bucket labels in order.
func BucketLabels() []string {
	return []string{"<=1", "<=2", "<=5", "<=16", "<=64", ">64"}
}

// TotalAccesses returns the access count summed over both directions.
func (s *Stats) TotalAccesses() int64 { return s.Accesses[0] + s.Accesses[1] }

// TotalWords returns the word count summed over both directions.
func (s *Stats) TotalWords() int64 { return s.Words[0] + s.Words[1] }

// Channel is the cost-accounted transport between the two verification
// domains. It is deliberately synchronous and single-threaded: the
// engine interleaves the domains deterministically, and the channel's
// job is bookkeeping, not concurrency.
//
// The queueing itself is delegated to an embedded Queues transport;
// Channel layers the ledger charging and Stats collection on top. The
// engine holds the accounting and the physical transport separately
// (so the latter can be a socket in another process), but Channel's
// combined Send/Recv API remains for callers that want both in one
// object.
type Channel struct {
	stack  device.Stack
	ledger *vclock.Ledger
	stats  Stats
	q      Queues
}

// New creates a channel over the given device stack, charging access
// costs to ledger.
func New(stack device.Stack, ledger *vclock.Ledger) *Channel {
	if ledger == nil {
		panic("channel: nil ledger")
	}
	return &Channel{stack: stack, ledger: ledger}
}

// Stack returns the underlying transport stack.
func (c *Channel) Stack() device.Stack { return c.stack }

// Stats returns a copy of the usage statistics.
func (c *Channel) Stats() Stats { return c.stats }

// Send enqueues one packet in direction d and charges one channel access
// (startup + per-word payload) to the ledger. Zero-length packets still
// pay the startup overhead, exactly like a real doorbell access.
func (c *Channel) Send(d Dir, payload []amba.Word) {
	// Accounting is shared with the loopback path so the two can never
	// drift: Send is Account plus the physical packet.
	c.Account(d, len(payload))
	c.q.Send(d, payload)
}

// Account charges one access of the given payload size — ledger cost,
// access count, word count and size histogram all exactly as Send of a
// words-length payload — without materializing or enqueuing a packet.
// It is the loopback fast path for the in-process engine, which is
// both endpoints of the channel and already holds the decoded values:
// the modeled economics of the access are preserved bit-for-bit while
// the host skips the serialize/copy/deserialize round trip.
func (c *Channel) Account(d Dir, words int) {
	c.AccountN(d, words, 1)
}

// AccountN charges n identical accesses of the given payload size in
// one call — the batch counterpart of Account used by the engine's
// predicted-quiescence cycle batching. Accounting is bit-identical to
// n sequential Send calls with words-length payloads.
func (c *Channel) AccountN(d Dir, words int, n int64) {
	cost := c.stack.AccessCost(d, words)
	c.ledger.ChargeN(vclock.Channel, cost, n)
	c.stats.Accesses[d] += n
	c.stats.Words[d] += n * int64(words)
	c.stats.SizeHist[d][bucket(words)] += n
}

// Recv dequeues the oldest packet in direction d. Receiving from an
// empty queue panics: the engine's handshake protocol guarantees a
// packet is present, so an empty queue is an engine bug, not a runtime
// condition to soften.
//
// The returned slice is owned by the caller until it hands it back with
// Release (or drops it; Release is an optimization, not an obligation).
func (c *Channel) Recv(d Dir) []amba.Word {
	pkt, err := c.q.Recv(d)
	if err != nil {
		panic(fmt.Sprintf("channel: recv on empty %v queue", d))
	}
	return pkt
}

// Release returns a packet obtained from Recv to the free-list once the
// receiver has fully decoded it. The caller must not touch the slice
// afterwards: the next Send will overwrite it.
func (c *Channel) Release(pkt []amba.Word) {
	c.q.Release(pkt)
}

// Pending returns the number of queued packets in direction d.
func (c *Channel) Pending(d Dir) int {
	return c.q.Pending(d)
}
