package channel

import (
	"testing"
	"time"

	"coemu/internal/amba"
	"coemu/internal/device"
	"coemu/internal/vclock"
)

func TestSendChargesStartupPlusPayload(t *testing.T) {
	var l vclock.Ledger
	c := New(device.IPROVE(), &l)
	c.Send(SimToAcc, []amba.Word{1, 2, 3, 4})
	want := 12200*time.Nanosecond + time.Duration(4*49950/1000)
	if got := l.Get(vclock.Channel); got != want {
		t.Fatalf("charged %v, want %v", got, want)
	}
	if l.Count(vclock.Channel) != 1 {
		t.Fatal("one access must be one charge")
	}
}

func TestRoundTripData(t *testing.T) {
	var l vclock.Ledger
	c := New(device.IPROVE(), &l)
	in := []amba.Word{0xDEAD, 0xBEEF}
	c.Send(AccToSim, in)
	in[0] = 0 // sender reuses its buffer; the packet must be unaffected
	out := c.Recv(AccToSim)
	if len(out) != 2 || out[0] != 0xDEAD || out[1] != 0xBEEF {
		t.Fatalf("recv gave %v", out)
	}
}

func TestQueueOrderingAndPending(t *testing.T) {
	var l vclock.Ledger
	c := New(device.IPROVE(), &l)
	c.Send(SimToAcc, []amba.Word{1})
	c.Send(SimToAcc, []amba.Word{2})
	if c.Pending(SimToAcc) != 2 {
		t.Fatalf("pending = %d", c.Pending(SimToAcc))
	}
	if got := c.Recv(SimToAcc); got[0] != 1 {
		t.Fatalf("fifo order broken: %v", got)
	}
	if got := c.Recv(SimToAcc); got[0] != 2 {
		t.Fatalf("fifo order broken: %v", got)
	}
}

func TestRecvEmptyPanics(t *testing.T) {
	var l vclock.Ledger
	c := New(device.IPROVE(), &l)
	defer func() {
		if recover() == nil {
			t.Fatal("empty recv must panic")
		}
	}()
	c.Recv(SimToAcc)
}

func TestStatsHistogram(t *testing.T) {
	var l vclock.Ledger
	c := New(device.IPROVE(), &l)
	c.Send(SimToAcc, make([]amba.Word, 1))
	c.Send(SimToAcc, make([]amba.Word, 4))
	c.Send(SimToAcc, make([]amba.Word, 40))
	c.Send(AccToSim, make([]amba.Word, 100))
	st := c.Stats()
	if st.TotalAccesses() != 4 || st.TotalWords() != 145 {
		t.Fatalf("stats %+v", st)
	}
	if st.SizeHist[SimToAcc][0] != 1 || st.SizeHist[SimToAcc][2] != 1 || st.SizeHist[SimToAcc][4] != 1 {
		t.Fatalf("sim->acc hist %v", st.SizeHist[SimToAcc])
	}
	if st.SizeHist[AccToSim][5] != 1 {
		t.Fatalf("acc->sim hist %v", st.SizeHist[AccToSim])
	}
	if len(BucketLabels()) != 6 {
		t.Fatal("bucket labels")
	}
}

func TestZeroPayloadStillCostsStartup(t *testing.T) {
	var l vclock.Ledger
	c := New(device.IPROVE(), &l)
	c.Send(SimToAcc, nil)
	if got := l.Get(vclock.Channel); got != 12200*time.Nanosecond {
		t.Fatalf("empty access charged %v", got)
	}
	if got := c.Recv(SimToAcc); len(got) != 0 {
		t.Fatalf("empty packet came back with %d words", len(got))
	}
}

func TestNilLedgerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil ledger must panic")
		}
	}()
	New(device.IPROVE(), nil)
}
