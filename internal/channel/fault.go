package channel

import (
	"errors"
	"fmt"
	"time"

	"coemu/internal/amba"
	"coemu/internal/faultplan"
	"coemu/internal/rng"
)

// ErrFrameCorrupt reports a received frame whose checksum did not
// match its contents — an injected (or real) bit corruption detected
// before the payload could silently diverge the run.
var ErrFrameCorrupt = errors.New("channel: frame checksum mismatch (corrupt packet)")

// ErrFrameLost reports a gap in the received frame sequence numbers: a
// frame was dropped between the endpoints.
var ErrFrameLost = errors.New("channel: frame sequence gap (lost packet)")

// FaultEndpoint wraps any Transport with seeded fault injection on the
// wire path. Every packet is framed with a sequence number and a
// checksum word, then (per the plan's probabilities) delayed,
// duplicated, or bit-corrupted in flight. The receive side verifies
// the checksum — surfacing corruption as ErrFrameCorrupt instead of
// silent divergence — and drops duplicates by sequence number.
//
// Injection is host-side only and carries no accounting: the engine
// charges the modeled channel economics at the unframed payload size
// before handing the packet here, so a run that survives its faults
// produces the exact ledger, stats, and report of a fault-free run.
//
// When the inner transport is a mirrored remote link that suppresses
// sends in the peer-authoritative direction, the endpoint still draws
// its rng and advances its sequence counter for those sends — both
// processes run identical engines, so keeping the injection stream
// identical on each side is what keeps their fault schedules, and
// therefore their reports, bit-identical.
type FaultEndpoint struct {
	inner Transport
	plan  faultplan.ChannelFault
	rng   *rng.Source

	sendSeq [2]uint32
	recvSeq [2]uint32
	scratch []amba.Word
}

// frameTrailerWords is the per-frame overhead: one sequence-number
// word plus one checksum word.
const frameTrailerWords = 2

// NewFaultEndpoint wraps inner with fault injection driven by plan and
// seeded by seed. The plan is copied; a zero plan injects nothing but
// still frames and verifies every packet.
func NewFaultEndpoint(inner Transport, plan *faultplan.ChannelFault, seed uint64) *FaultEndpoint {
	if inner == nil {
		panic("channel: nil inner transport")
	}
	f := &FaultEndpoint{inner: inner}
	if plan != nil {
		f.plan = *plan
	}
	f.rng = rng.New(seed)
	return f
}

// Send frames the payload (sequence number + checksum), applies the
// plan's injections, and ships the resulting physical frame(s) in
// direction d over the inner transport.
func (f *FaultEndpoint) Send(d Dir, payload []amba.Word) error {
	f.sendSeq[d]++
	seq := f.sendSeq[d]

	if f.plan.Delay > 0 && f.plan.MaxDelayUS > 0 && f.rng.Bool(f.plan.Delay) {
		time.Sleep(time.Duration(1+f.rng.Intn(f.plan.MaxDelayUS)) * time.Microsecond)
	}

	copies := 1
	if f.rng.Bool(f.plan.Duplicate) {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		frame := f.frame(payload, seq)
		if f.rng.Bool(f.plan.Corrupt) {
			bit := f.rng.Intn(len(frame) * 32)
			frame[bit/32] ^= 1 << (bit % 32)
		}
		if err := f.inner.Send(d, frame); err != nil {
			return err
		}
	}
	return nil
}

// Recv dequeues the next valid frame in direction d from the inner
// transport, verifies its checksum and sequence number, and returns
// the unframed payload. Duplicate frames are dropped silently; a
// checksum mismatch returns ErrFrameCorrupt and a sequence gap returns
// ErrFrameLost.
//
// The returned slice is owned by the caller until handed back with
// Release.
func (f *FaultEndpoint) Recv(d Dir) ([]amba.Word, error) {
	for {
		frame, err := f.inner.Recv(d)
		if err != nil {
			return nil, err
		}
		if len(frame) < frameTrailerWords {
			return nil, fmt.Errorf("%w: %v runt frame (%d words)", ErrFrameCorrupt, d, len(frame))
		}
		body := frame[:len(frame)-1]
		if FrameSum(body) != frame[len(frame)-1] {
			return nil, fmt.Errorf("%w: %v frame after seq %d", ErrFrameCorrupt, d, f.recvSeq[d])
		}
		seq := uint32(frame[len(frame)-2])
		if seq <= f.recvSeq[d] {
			// Duplicate of an already-delivered frame: drop and retry.
			f.inner.Release(frame)
			continue
		}
		if seq != f.recvSeq[d]+1 {
			return nil, fmt.Errorf("%w: %v expected seq %d, got %d", ErrFrameLost, d, f.recvSeq[d]+1, seq)
		}
		f.recvSeq[d] = seq
		return frame[:len(frame)-frameTrailerWords], nil
	}
}

// Release returns a payload obtained from Recv to the inner transport.
// The caller must not touch the slice afterwards.
func (f *FaultEndpoint) Release(pkt []amba.Word) {
	f.inner.Release(pkt)
}

// Pending returns the number of queued frames in direction d
// (duplicates included — they are physical frames in flight).
func (f *FaultEndpoint) Pending(d Dir) int {
	return f.inner.Pending(d)
}

// Close closes the inner transport.
func (f *FaultEndpoint) Close() error { return f.inner.Close() }

// frame builds the physical frame in the endpoint's scratch buffer:
// payload plus the sequence number and checksum words. The inner
// transport copies (or encodes) on Send, so one scratch suffices.
func (f *FaultEndpoint) frame(payload []amba.Word, seq uint32) []amba.Word {
	frame := append(f.scratch[:0], payload...)
	frame = append(frame, amba.Word(seq))
	frame = append(frame, FrameSum(frame))
	f.scratch = frame[:0]
	return frame
}

// FrameSum computes the FNV-1a checksum of a frame body (payload plus
// sequence word), truncated to one wire word. It is shared with the
// TCP transport, which reuses the same seq+checksum framing on its
// byte stream.
func FrameSum(body []amba.Word) amba.Word {
	h := uint32(2166136261)
	for _, w := range body {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint32(w) >> shift & 0xff
			h *= 16777619
		}
	}
	return amba.Word(h)
}
