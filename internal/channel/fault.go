package channel

import (
	"errors"
	"fmt"
	"time"

	"coemu/internal/amba"
	"coemu/internal/faultplan"
	"coemu/internal/rng"
)

// ErrFrameCorrupt reports a received frame whose checksum did not
// match its contents — an injected (or real) bit corruption detected
// before the payload could silently diverge the run.
var ErrFrameCorrupt = errors.New("channel: frame checksum mismatch (corrupt packet)")

// ErrFrameLost reports a gap in the received frame sequence numbers: a
// frame was dropped between the endpoints.
var ErrFrameLost = errors.New("channel: frame sequence gap (lost packet)")

// FaultEndpoint wraps a Channel with seeded fault injection on the
// wire path. Every packet is framed with a sequence number and a
// checksum word, then (per the plan's probabilities) delayed,
// duplicated, or bit-corrupted in flight. The receive side verifies
// the checksum — surfacing corruption as ErrFrameCorrupt instead of
// silent divergence — and drops duplicates by sequence number.
//
// Injection is host-side only: the modeled channel economics are
// charged through the wrapped Channel's Account at the unframed
// payload size, so a run that survives its faults produces the exact
// ledger, stats, and report of a fault-free run.
type FaultEndpoint struct {
	ch   *Channel
	plan faultplan.ChannelFault
	rng  *rng.Source

	queues  [2]queue
	free    [][]amba.Word
	sendSeq [2]uint32
	recvSeq [2]uint32
}

// frameTrailerWords is the per-frame overhead: one sequence-number
// word plus one checksum word.
const frameTrailerWords = 2

// NewFaultEndpoint wraps ch with fault injection driven by plan and
// seeded by seed. The plan is copied; a zero plan injects nothing but
// still frames and verifies every packet.
func NewFaultEndpoint(ch *Channel, plan *faultplan.ChannelFault, seed uint64) *FaultEndpoint {
	if ch == nil {
		panic("channel: nil channel")
	}
	f := &FaultEndpoint{ch: ch}
	if plan != nil {
		f.plan = *plan
	}
	f.rng = rng.New(seed)
	return f
}

// Send charges the modeled cost of the unframed payload, frames it
// (sequence number + checksum), applies the plan's injections, and
// enqueues the resulting physical frame(s) in direction d.
func (f *FaultEndpoint) Send(d Dir, payload []amba.Word) {
	// Modeled economics: identical to Channel.Send of the same payload.
	// Framing, duplication, and delay are the host-side fault surface,
	// not part of the experiment's cost model.
	f.ch.Account(d, len(payload))
	f.sendSeq[d]++
	seq := f.sendSeq[d]

	if f.plan.Delay > 0 && f.plan.MaxDelayUS > 0 && f.rng.Bool(f.plan.Delay) {
		time.Sleep(time.Duration(1+f.rng.Intn(f.plan.MaxDelayUS)) * time.Microsecond)
	}

	copies := 1
	if f.rng.Bool(f.plan.Duplicate) {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		frame := f.frame(payload, seq)
		if f.rng.Bool(f.plan.Corrupt) {
			bit := f.rng.Intn(len(frame) * 32)
			frame[bit/32] ^= 1 << (bit % 32)
		}
		q := &f.queues[d]
		q.pkts = append(q.pkts, frame)
	}
}

// Recv dequeues the next valid frame in direction d, verifies its
// checksum and sequence number, and returns the unframed payload.
// Duplicate frames are dropped silently; a checksum mismatch returns
// ErrFrameCorrupt and a sequence gap returns ErrFrameLost.
//
// The returned slice is owned by the caller until handed back with
// Release.
func (f *FaultEndpoint) Recv(d Dir) ([]amba.Word, error) {
	for {
		q := &f.queues[d]
		if q.head >= len(q.pkts) {
			panic(fmt.Sprintf("channel: recv on empty %v fault queue", d))
		}
		frame := q.pkts[q.head]
		q.pkts[q.head] = nil
		q.head++
		if q.head == len(q.pkts) {
			q.pkts = q.pkts[:0]
			q.head = 0
		}
		body := frame[:len(frame)-1]
		if frameSum(body) != frame[len(frame)-1] {
			return nil, fmt.Errorf("%w: %v frame after seq %d", ErrFrameCorrupt, d, f.recvSeq[d])
		}
		seq := uint32(frame[len(frame)-2])
		if seq <= f.recvSeq[d] {
			// Duplicate of an already-delivered frame: drop and retry.
			f.Release(frame)
			continue
		}
		if seq != f.recvSeq[d]+1 {
			return nil, fmt.Errorf("%w: %v expected seq %d, got %d", ErrFrameLost, d, f.recvSeq[d]+1, seq)
		}
		f.recvSeq[d] = seq
		return frame[:len(frame)-frameTrailerWords], nil
	}
}

// Release returns a payload obtained from Recv to the endpoint's
// free-list. The caller must not touch the slice afterwards.
func (f *FaultEndpoint) Release(pkt []amba.Word) {
	if cap(pkt) == 0 {
		return
	}
	f.free = append(f.free, pkt)
}

// Pending returns the number of queued frames in direction d
// (duplicates included — they are physical frames in flight).
func (f *FaultEndpoint) Pending(d Dir) int {
	q := &f.queues[d]
	return len(q.pkts) - q.head
}

// frame copies payload into a pooled buffer and appends the sequence
// number and checksum words.
func (f *FaultEndpoint) frame(payload []amba.Word, seq uint32) []amba.Word {
	var frame []amba.Word
	if n := len(f.free); n > 0 {
		frame = f.free[n-1][:0]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
	}
	frame = append(frame, payload...)
	frame = append(frame, amba.Word(seq))
	return append(frame, frameSum(frame))
}

// frameSum computes the FNV-1a checksum of a frame body (payload plus
// sequence word), truncated to one wire word.
func frameSum(body []amba.Word) amba.Word {
	h := uint32(2166136261)
	for _, w := range body {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint32(w) >> shift & 0xff
			h *= 16777619
		}
	}
	return amba.Word(h)
}
