package channel

import (
	"errors"
	"testing"

	"coemu/internal/amba"
	"coemu/internal/faultplan"
)

func TestFaultEndpointRoundTrip(t *testing.T) {
	f := NewFaultEndpoint(NewQueues(), nil, 1)
	in := []amba.Word{0xDEAD, 0xBEEF, 0xCAFE}
	if err := f.Send(SimToAcc, in); err != nil {
		t.Fatalf("Send: %v", err)
	}
	in[0] = 0 // sender reuses its buffer; the frame must be unaffected
	got, err := f.Recv(SimToAcc)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if len(got) != 3 || got[0] != 0xDEAD || got[1] != 0xBEEF || got[2] != 0xCAFE {
		t.Fatalf("payload = %v", got)
	}
	f.Release(got)
}

func TestFaultEndpointFramingOverhead(t *testing.T) {
	// The endpoint carries no accounting of its own — the engine charges
	// the modeled economics at the unframed payload size — so the only
	// physical footprint is the framing: each payload crosses the inner
	// transport exactly frameTrailerWords larger.
	inner := NewQueues()
	f := NewFaultEndpoint(inner, nil, 7)
	payloads := [][]amba.Word{{1}, {2, 3}, {4, 5, 6, 7, 8}, {}}
	for _, p := range payloads {
		if err := f.Send(SimToAcc, p); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	for _, p := range payloads {
		frame, err := inner.Recv(SimToAcc)
		if err != nil {
			t.Fatalf("inner Recv: %v", err)
		}
		if len(frame) != len(p)+frameTrailerWords {
			t.Fatalf("frame = %d words for %d-word payload, want +%d", len(frame), len(p), frameTrailerWords)
		}
		inner.Release(frame)
	}
}

func TestFaultEndpointDropsDuplicates(t *testing.T) {
	plan := &faultplan.ChannelFault{Duplicate: 1}
	f := NewFaultEndpoint(NewQueues(), plan, 3)
	for i := 0; i < 10; i++ {
		if err := f.Send(AccToSim, []amba.Word{amba.Word(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if got := f.Pending(AccToSim); got != 20 {
		t.Fatalf("pending = %d physical frames, want 20", got)
	}
	for i := 0; i < 10; i++ {
		got, err := f.Recv(AccToSim)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != amba.Word(i) {
			t.Fatalf("Recv %d = %v", i, got)
		}
		f.Release(got)
	}
	// The duplicate of the final frame has no successor to trigger its
	// drop, so exactly one stale physical frame remains queued.
	if got := f.Pending(AccToSim); got != 1 {
		t.Fatalf("pending after drain = %d, want 1 trailing duplicate", got)
	}
}

func TestFaultEndpointDetectsCorruption(t *testing.T) {
	plan := &faultplan.ChannelFault{Corrupt: 1}
	f := NewFaultEndpoint(NewQueues(), plan, 11)
	if err := f.Send(SimToAcc, []amba.Word{0xA5A5, 0x5A5A}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := f.Recv(SimToAcc); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("Recv err = %v, want ErrFrameCorrupt", err)
	}
}

func TestFaultEndpointDetectsLoss(t *testing.T) {
	inner := NewQueues()
	f := NewFaultEndpoint(inner, nil, 1)
	f.Send(SimToAcc, []amba.Word{1})
	f.Send(SimToAcc, []amba.Word{2})
	// Simulate a lost frame by stealing the first physical packet off
	// the inner transport.
	if _, err := inner.Recv(SimToAcc); err != nil {
		t.Fatalf("inner Recv: %v", err)
	}
	if _, err := f.Recv(SimToAcc); !errors.Is(err, ErrFrameLost) {
		t.Fatalf("Recv err = %v, want ErrFrameLost", err)
	}
}

func TestFaultEndpointEmptyInnerSurfacesChannelDown(t *testing.T) {
	f := NewFaultEndpoint(NewQueues(), nil, 1)
	if _, err := f.Recv(SimToAcc); !errors.Is(err, ErrChannelDown) {
		t.Fatalf("Recv err = %v, want ErrChannelDown", err)
	}
}

func TestFaultEndpointDeterministic(t *testing.T) {
	run := func() []int {
		plan := &faultplan.ChannelFault{Duplicate: 0.5, Corrupt: 0.1}
		f := NewFaultEndpoint(NewQueues(), plan, 99)
		var outcomes []int
		for i := 0; i < 50; i++ {
			if err := f.Send(SimToAcc, []amba.Word{amba.Word(i), amba.Word(i * 3)}); err != nil {
				t.Fatalf("Send: %v", err)
			}
			outcomes = append(outcomes, f.Pending(SimToAcc))
			got, err := f.Recv(SimToAcc)
			if err != nil {
				outcomes = append(outcomes, -1)
				return outcomes
			}
			f.Release(got)
		}
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}
