package channel

import (
	"errors"
	"testing"

	"coemu/internal/amba"
	"coemu/internal/device"
	"coemu/internal/faultplan"
	"coemu/internal/vclock"
)

func TestFaultEndpointRoundTrip(t *testing.T) {
	var l vclock.Ledger
	f := NewFaultEndpoint(New(device.IPROVE(), &l), nil, 1)
	in := []amba.Word{0xDEAD, 0xBEEF, 0xCAFE}
	f.Send(SimToAcc, in)
	in[0] = 0 // sender reuses its buffer; the frame must be unaffected
	got, err := f.Recv(SimToAcc)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if len(got) != 3 || got[0] != 0xDEAD || got[1] != 0xBEEF || got[2] != 0xCAFE {
		t.Fatalf("payload = %v", got)
	}
	f.Release(got)
}

func TestFaultEndpointAccountingMatchesChannel(t *testing.T) {
	var lf, lc vclock.Ledger
	plan := &faultplan.ChannelFault{Duplicate: 1} // every frame duplicated
	f := NewFaultEndpoint(New(device.IPROVE(), &lf), plan, 7)
	c := New(device.IPROVE(), &lc)
	payloads := [][]amba.Word{{1}, {2, 3}, {4, 5, 6, 7, 8}, {}}
	for _, p := range payloads {
		f.Send(SimToAcc, p)
		c.Send(SimToAcc, p)
	}
	if lf.Get(vclock.Channel) != lc.Get(vclock.Channel) {
		t.Fatalf("faulted ledger %v != clean ledger %v", lf.Get(vclock.Channel), lc.Get(vclock.Channel))
	}
	fs, cs := f.ch.Stats(), c.Stats()
	if fs != cs {
		t.Fatalf("faulted stats %+v != clean stats %+v", fs, cs)
	}
}

func TestFaultEndpointDropsDuplicates(t *testing.T) {
	var l vclock.Ledger
	plan := &faultplan.ChannelFault{Duplicate: 1}
	f := NewFaultEndpoint(New(device.IPROVE(), &l), plan, 3)
	for i := 0; i < 10; i++ {
		f.Send(AccToSim, []amba.Word{amba.Word(i)})
	}
	if got := f.Pending(AccToSim); got != 20 {
		t.Fatalf("pending = %d physical frames, want 20", got)
	}
	for i := 0; i < 10; i++ {
		got, err := f.Recv(AccToSim)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != amba.Word(i) {
			t.Fatalf("Recv %d = %v", i, got)
		}
		f.Release(got)
	}
	// The duplicate of the final frame has no successor to trigger its
	// drop, so exactly one stale physical frame remains queued.
	if got := f.Pending(AccToSim); got != 1 {
		t.Fatalf("pending after drain = %d, want 1 trailing duplicate", got)
	}
}

func TestFaultEndpointDetectsCorruption(t *testing.T) {
	var l vclock.Ledger
	plan := &faultplan.ChannelFault{Corrupt: 1}
	f := NewFaultEndpoint(New(device.IPROVE(), &l), plan, 11)
	f.Send(SimToAcc, []amba.Word{0xA5A5, 0x5A5A})
	if _, err := f.Recv(SimToAcc); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("Recv err = %v, want ErrFrameCorrupt", err)
	}
}

func TestFaultEndpointDetectsLoss(t *testing.T) {
	var l vclock.Ledger
	f := NewFaultEndpoint(New(device.IPROVE(), &l), nil, 1)
	f.Send(SimToAcc, []amba.Word{1})
	f.Send(SimToAcc, []amba.Word{2})
	// Simulate a lost frame by dropping the first physical packet.
	q := &f.queues[SimToAcc]
	q.pkts[q.head] = nil
	q.head++
	if _, err := f.Recv(SimToAcc); !errors.Is(err, ErrFrameLost) {
		t.Fatalf("Recv err = %v, want ErrFrameLost", err)
	}
}

func TestFaultEndpointDeterministic(t *testing.T) {
	run := func() []int {
		var l vclock.Ledger
		plan := &faultplan.ChannelFault{Duplicate: 0.5, Corrupt: 0.1}
		f := NewFaultEndpoint(New(device.IPROVE(), &l), plan, 99)
		var outcomes []int
		for i := 0; i < 50; i++ {
			f.Send(SimToAcc, []amba.Word{amba.Word(i), amba.Word(i * 3)})
			outcomes = append(outcomes, f.Pending(SimToAcc))
			got, err := f.Recv(SimToAcc)
			if err != nil {
				outcomes = append(outcomes, -1)
				return outcomes
			}
			f.Release(got)
		}
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}
