// Package tcpchan carries the engine's packed wire packets between two
// processes over TCP, so the simulator and accelerator domains can run
// on separate hosts while producing bit-identical reports.
//
// # Mirrored lockstep
//
// Rather than teach the engine a client/server split, both processes
// run the full deterministic engine on the identical compiled spec,
// and the transport gives each side authority over one direction:
//
//   - The simulator-role endpoint ships SimToAcc packets over the
//     socket; its AccToSim sends are suppressed (the peer's mirror
//     produces the identical packet locally and ships it the other
//     way).
//   - Every authoritative send is also echoed into a local queue, so
//     the sender's own engine receives it exactly as the in-process
//     transports would deliver it.
//   - Receives in the peer-authoritative direction block on the
//     socket, bounded by Options.RecvTimeout, and fail with
//     channel.ErrChannelDown when the peer stays silent.
//
// Divergence between the mirrors cannot go unnoticed: committed
// remote values genuinely cross the wire, so any drift trips the
// engine's conservative-cycle merge check, a codec unpack error, or
// the end-of-run report exchange (ExchangeSum).
//
// # Framing and recovery
//
// Frames reuse the seq + FNV-1a scheme of channel.FaultEndpoint,
// carried on a length-prefixed byte stream: the checksum constants are
// identical, and summing the little-endian bytes of a word sequence
// equals channel.FrameSum of those words. Each endpoint keeps a
// retransmission window of unacknowledged authoritative frames;
// cumulative acks piggyback on data frames, duplicates are dropped by
// sequence number, and a corrupt or out-of-order frame triggers a
// RESYNC carrying the next expected sequence, answered by retransmission.
// A receiver that waits too long re-sends its resync periodically
// (backing off exponentially, and never faster than the measured round
// trip), and a dead connection is healed by redial (client) or
// re-accept (server) with a resume handshake exchanging next-expected
// sequences — the invariant being that a frame leaves the window only
// once the peer has acknowledged it, so a reconnect can always resume
// exactly where the stream broke. Both healing paths are bounded: the
// dialer by its Redial budget, the acceptor by an equivalent re-accept
// budget, after which the transport goes down instead of waiting
// forever for a peer that crashed.
package tcpchan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"coemu/internal/amba"
	"coemu/internal/channel"
	"coemu/internal/faultplan"
	"coemu/internal/rng"
	"coemu/internal/stats"
	"coemu/internal/trace"
)

// Role identifies which domain this endpoint's process hosts, and
// therefore which channel direction it has send authority over.
type Role uint8

// Endpoint roles.
const (
	// RoleSim hosts the simulator domain: authoritative for SimToAcc.
	RoleSim Role = iota
	// RoleAcc hosts the accelerator domain: authoritative for AccToSim.
	RoleAcc
)

// String returns the role's wire name.
func (r Role) String() string {
	if r == RoleAcc {
		return "acc"
	}
	return "sim"
}

// dir returns the direction this role is authoritative for.
func (r Role) dir() channel.Dir {
	if r == RoleAcc {
		return channel.AccToSim
	}
	return channel.SimToAcc
}

// Wire protocol constants.
const (
	protocolMagic   = "coemu-tcpchan"
	protocolVersion = 1

	kindHello   = 1
	kindHelloOK = 2
	kindData    = 3
	kindResync  = 4
	kindAck     = 5
	kindPing    = 6
	kindPong    = 7
	kindSum     = 8
	// kindBye announces a deliberate shutdown. It is what separates a
	// clean teardown from a crash: a reader that saw a bye goes down
	// immediately instead of burning redial attempts against a peer
	// that is gone on purpose.
	kindBye = 9

	// frameHeadBytes is the fixed frame body overhead after the length
	// prefix: kind, dir, two reserved bytes, seq, ack.
	frameHeadBytes = 12
	// frameSumBytes trails the payload.
	frameSumBytes = 4
	// maxFrameBytes bounds a frame body; a longer length prefix means
	// the stream is corrupt beyond resync and kills the connection.
	maxFrameBytes = 16 << 20

	// ackEvery bounds how many delivered frames may go unacknowledged
	// before a standalone ack is emitted (piggybacked acks usually get
	// there first).
	ackEvery = 64
)

// Defaults for zero Options fields.
const (
	DefaultDialTimeout  = 5 * time.Second
	DefaultRecvTimeout  = 10 * time.Second
	DefaultWriteTimeout = 10 * time.Second
	DefaultRedial       = 8
	DefaultRedialWait   = 50 * time.Millisecond
	DefaultResyncEvery  = 25 * time.Millisecond
)

// windowMax bounds the retransmission window; the engine's exchange
// protocol keeps at most a handful of frames in flight, so hitting the
// bound means the peer stopped acknowledging long ago.
const windowMax = 8192

// maxResyncWait caps the exponential backoff between successive
// resync requests within one blocked Recv.
const maxResyncWait = time.Second

// Options configures one endpoint.
type Options struct {
	// Role selects this endpoint's authoritative direction.
	Role Role
	// Hash is the canonical spec hash announced in the handshake; the
	// accepting side verifies it (via VerifyMeta) so two processes can
	// never co-emulate different systems.
	Hash string
	// Meta is an opaque handshake blob from dialer to acceptor —
	// remote.Run ships the full spec JSON here, which is what lets the
	// server run spec-agnostic.
	Meta []byte
	// VerifyMeta, on the accepting side, validates the dialer's Meta
	// against its announced Hash before the session is admitted.
	VerifyMeta func(meta []byte, hash string) error

	DialTimeout  time.Duration
	RecvTimeout  time.Duration
	WriteTimeout time.Duration
	// Redial bounds reconnect attempts after a connection death
	// (dialer side); RedialWait is the linear backoff step between
	// attempts.
	Redial     int
	RedialWait time.Duration
	// ResyncEvery is the floor of the interval at which a blocked
	// receiver re-sends its resync request: the actual wait starts at
	// max(ResyncEvery, 2×measured RTT) and backs off exponentially up
	// to maxResyncWait while the receiver stays blocked.
	ResyncEvery time.Duration

	// InjectRTT simulates link latency: every authoritative data send
	// sleeps InjectRTT/2 (one way) before hitting the socket.
	// Host-side only; the modeled run is unaffected.
	InjectRTT time.Duration
	// Faults injects wire-level byte faults (delay, duplication, bit
	// corruption) into outgoing data frames, seeded by FaultSeed. The
	// ARQ layer must heal all of them; reports are unaffected.
	Faults    *faultplan.ChannelFault
	FaultSeed uint64
	// PingEvery, when positive, runs a background ping/pong loop
	// sampling round-trip latency into Stats.
	PingEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.RecvTimeout <= 0 {
		o.RecvTimeout = DefaultRecvTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.Redial <= 0 {
		o.Redial = DefaultRedial
	}
	if o.RedialWait <= 0 {
		o.RedialWait = DefaultRedialWait
	}
	if o.ResyncEvery <= 0 {
		o.ResyncEvery = DefaultResyncEvery
	}
	return o
}

// reacceptBudget is how long the acceptor side waits for a crashed
// peer to resume before declaring the session dead — the mirror of the
// dialer's worst case of Redial attempts (each bounded by DialTimeout)
// with linear backoff between them.
func reacceptBudget(o Options) time.Duration {
	b := time.Duration(o.Redial) * o.DialTimeout
	for i := 1; i < o.Redial; i++ {
		b += time.Duration(i) * o.RedialWait
	}
	return b
}

// Stats summarizes one endpoint's wire activity. RTT fields are filled
// from the handshake and ping/pong samples.
type Stats struct {
	Sent          int64 // authoritative data frames first-sent
	Received      int64 // in-order data frames delivered
	Dups          int64 // duplicate frames dropped
	Gaps          int64 // out-of-order frames observed (resync sent)
	CorruptFrames int64 // checksum mismatches observed (resync sent)
	Retransmits   int64 // frames re-sent answering peer resyncs
	Resyncs       int64 // resync requests sent
	Reconnects    int64 // connection deaths healed
	WireFaults    int64 // injected wire faults (Options.Faults)

	RTTSamples int64
	RTTMean    time.Duration
	RTTP99     time.Duration
}

// winFrame is one unacknowledged authoritative frame.
type winFrame struct {
	seq     uint32
	payload []amba.Word
}

// helloMsg is the JSON handshake exchanged on connect and resume.
type helloMsg struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Role    string `json:"role"`
	Hash    string `json:"hash"`
	Meta    []byte `json:"meta,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
	// Expect is the next data sequence number the sender of this
	// message is waiting for; on resume the receiver retransmits its
	// window from here.
	Expect uint32 `json:"expect,omitempty"`
}

// Transport is one endpoint of the mirrored TCP channel. It implements
// channel.Transport. The engine thread calls Send/Recv/Release; a
// background reader goroutine feeds the receive queue and answers
// protocol frames; mu orders the two.
type Transport struct {
	role Role
	opts Options
	hash string

	// echo mirrors authoritative sends back to the local engine;
	// engine-thread only.
	echo *channel.Queues

	// rxq delivers in-order peer-direction payloads from the reader to
	// Recv.
	rxq chan []amba.Word
	// sumq delivers the peer's ExchangeSum payload.
	sumq chan []byte
	// stop is closed exactly once when the transport shuts down
	// (Close, or reconnect exhaustion).
	stop     chan struct{}
	stopOnce sync.Once
	// readerDone is closed when the reader goroutine exits.
	readerDone chan struct{}

	// Dialer-side reconnect target; acceptor-side listener to
	// re-accept on.
	addr string
	ln   *Listener

	mu       sync.Mutex
	conn     net.Conn
	dialing  net.Conn // in-flight redial, closable by Close
	dead     bool     // conn present but known broken
	closed   bool
	peerBye  bool  // peer announced a deliberate shutdown
	gen      int64 // connection generation, for trace/debug
	sendSeq  uint32
	recvNext uint32 // next expected peer data seq
	// pendingSum is this side's ExchangeSum blob; sum frames live
	// outside the data window, so a reconnect re-sends it explicitly
	// (the receiver drops duplicates via its one-slot queue).
	pendingSum []byte
	window     []winFrame
	wfree      [][]amba.Word
	unacked    int // delivered frames since last ack we sent
	wbuf       []byte
	frng       *rng.Source
	st         Stats
	rtt        *stats.Hist // microseconds
	pingSeq    uint32
	pingT0     time.Time
	trc        *trace.Recorder

	killed int64 // test hook: connections killed via Kill
}

func newTransport(role Role, opts Options, hash string) *Transport {
	t := &Transport{
		role:       role,
		opts:       opts,
		hash:       hash,
		echo:       channel.NewQueues(),
		rxq:        make(chan []amba.Word, 1024),
		sumq:       make(chan []byte, 1),
		stop:       make(chan struct{}),
		readerDone: make(chan struct{}),
		recvNext:   1,
		rtt:        stats.NewHist(),
		trc:        trace.NewRecorder(4096),
	}
	if opts.Faults != nil {
		t.frng = rng.New(opts.FaultSeed)
	}
	return t
}

// start launches the background goroutines once the first connection
// is installed.
func (t *Transport) start() {
	go t.run()
	if t.opts.PingEvery > 0 {
		go t.pinger()
	}
}

// Dial connects to a listening endpoint, performs the handshake
// (announcing o.Role, o.Hash and shipping o.Meta), and returns the
// ready transport. The handshake round trip is recorded as the first
// RTT sample.
func Dial(addr string, o Options) (*Transport, error) {
	o = o.withDefaults()
	t := newTransport(o.Role, o, o.Hash)
	t.addr = addr
	conn, err := t.dialOnce(false)
	if err != nil {
		return nil, err
	}
	t.conn = conn
	t.traceLocked(trace.Event{Kind: trace.EvTransportConnect, Domain: uint8(t.role)})
	t.start()
	return t, nil
}

// dialOnce dials and handshakes one connection. With resume set it
// announces the transport's current receive position and retransmits
// the window from the peer's; the caller holds no lock.
func (t *Transport) dialOnce(resume bool) (net.Conn, error) {
	t.mu.Lock()
	expect := t.recvNext
	t.mu.Unlock()
	conn, err := net.DialTimeout("tcp", t.addr, t.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcpchan: dial %s: %w", t.addr, err)
	}
	// Expose the half-open connection so a concurrent Close can cut the
	// handshake short instead of waiting out its deadline.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("tcpchan: transport closed during redial")
	}
	t.dialing = conn
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		t.dialing = nil
		t.mu.Unlock()
	}()
	t0 := time.Now()
	h := helloMsg{
		Magic: protocolMagic, Version: protocolVersion,
		Role: t.role.String(), Hash: t.hash,
		Resume: resume, Expect: expect,
	}
	if !resume {
		h.Meta = t.opts.Meta
	}
	ok, err := handshake(conn, h, t.opts.DialTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ok.Role == t.role.String() {
		conn.Close()
		return nil, fmt.Errorf("tcpchan: peer claims our role %q (two %ss on one link)", ok.Role, ok.Role)
	}
	if t.hash != "" && ok.Hash != t.hash {
		conn.Close()
		return nil, fmt.Errorf("tcpchan: spec hash mismatch: ours %s, peer %s", t.hash, ok.Hash)
	}
	t.mu.Lock()
	t.addSampleLocked(time.Since(t0))
	if resume {
		t.ackWindowLocked(ok.Expect - 1)
	}
	t.mu.Unlock()
	return conn, nil
}

// handshake writes h and reads the peer's reply frame within timeout.
func handshake(conn net.Conn, h helloMsg, timeout time.Duration) (helloMsg, error) {
	deadline := time.Now().Add(timeout)
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	blob, err := json.Marshal(&h)
	if err != nil {
		return helloMsg{}, err
	}
	frame := appendFrame(nil, kindHello, 0, 0, 0, blob)
	if _, err := conn.Write(frame); err != nil {
		return helloMsg{}, fmt.Errorf("tcpchan: handshake write: %w", err)
	}
	k, _, _, _, payload, err := readFrame(conn)
	if err != nil {
		return helloMsg{}, fmt.Errorf("tcpchan: handshake read: %w", err)
	}
	if k != kindHelloOK && k != kindHello {
		return helloMsg{}, fmt.Errorf("tcpchan: handshake got frame kind %d", k)
	}
	var reply helloMsg
	if err := json.Unmarshal(payload, &reply); err != nil {
		return helloMsg{}, fmt.Errorf("tcpchan: handshake decode: %w", err)
	}
	if reply.Magic != protocolMagic || reply.Version != protocolVersion {
		return helloMsg{}, fmt.Errorf("tcpchan: peer speaks %q v%d, want %q v%d",
			reply.Magic, reply.Version, protocolMagic, protocolVersion)
	}
	return reply, nil
}

// Listener accepts tcpchan sessions. One session is active at a time:
// Accept admits a fresh handshake, and while that session runs, its
// transport re-accepts resumed connections off the same listener.
type Listener struct {
	ln net.Listener
}

// Listen opens a TCP listener for tcpchan sessions.
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpchan: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound listener address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting connections.
func (l *Listener) Close() error { return l.ln.Close() }

// Accept waits for a fresh session handshake and returns the ready
// transport plus the dialer's Meta blob. Connections that fail the
// handshake (bad magic, role clash, rejected meta, stale resumes) are
// dropped and accepting continues.
func (l *Listener) Accept(o Options) (*Transport, []byte, error) {
	o = o.withDefaults()
	conn, h, err := l.acceptConn(o)
	if err != nil {
		return nil, nil, err
	}
	t := newTransport(o.Role, o, h.Hash)
	t.ln = l
	t.conn = conn
	t.traceLocked(trace.Event{Kind: trace.EvTransportConnect, Domain: uint8(t.role)})
	t.start()
	return t, h.Meta, nil
}

// deadlineListener is the optional accept-deadline capability
// (*net.TCPListener has it) that makes re-accept waits abortable.
type deadlineListener interface {
	SetDeadline(time.Time) error
}

// acceptConn accepts and handshakes fresh-session connections until
// one is admissible.
func (l *Listener) acceptConn(o Options) (net.Conn, helloMsg, error) {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// A stale accept deadline left behind by a concurrent
				// resume wait (acceptResume); clear it and keep going.
				if dl, ok := l.ln.(deadlineListener); ok {
					dl.SetDeadline(time.Time{})
				}
				continue
			}
			return nil, helloMsg{}, fmt.Errorf("tcpchan: accept: %w", err)
		}
		h, ok := l.admit(conn, o, nil)
		if !ok {
			conn.Close()
			continue
		}
		return conn, h, nil
	}
}

// acceptResume re-accepts a resumed connection for t's broken session.
// Only resume hellos matching the session are admitted; fresh sessions
// are dropped until the next Accept. Unlike the fresh accept this wait
// must not wedge the process: it is chunked by listener deadlines so a
// concurrent Close (t.stop / t.closed) aborts it promptly, and bounded
// by the re-accept budget so a peer that crashed without a bye takes
// the session down instead of squatting on the listener forever.
func (l *Listener) acceptResume(t *Transport) (net.Conn, helloMsg, error) {
	deadline := time.Now().Add(reacceptBudget(t.opts))
	dl, chunked := l.ln.(deadlineListener)
	if chunked {
		defer dl.SetDeadline(time.Time{})
	}
	for {
		select {
		case <-t.stop:
			return nil, helloMsg{}, fmt.Errorf("tcpchan: transport closed during re-accept")
		default:
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return nil, helloMsg{}, fmt.Errorf("tcpchan: transport closed during re-accept")
		}
		now := time.Now()
		if !now.Before(deadline) {
			return nil, helloMsg{}, fmt.Errorf("tcpchan: peer did not resume within %v", reacceptBudget(t.opts))
		}
		if chunked {
			step := deadline.Sub(now)
			if max := 4 * t.opts.RedialWait; step > max {
				step = max
			}
			dl.SetDeadline(now.Add(step))
		}
		conn, err := l.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return nil, helloMsg{}, fmt.Errorf("tcpchan: accept: %w", err)
		}
		h, ok := l.admit(conn, t.opts, t)
		if !ok {
			conn.Close()
			continue
		}
		return conn, h, nil
	}
}

// admit runs the accept-side handshake on one connection.
func (l *Listener) admit(conn net.Conn, o Options, resumeFor *Transport) (helloMsg, bool) {
	deadline := time.Now().Add(o.DialTimeout)
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	k, _, _, _, payload, err := readFrame(conn)
	if err != nil || k != kindHello {
		return helloMsg{}, false
	}
	var h helloMsg
	if err := json.Unmarshal(payload, &h); err != nil {
		return helloMsg{}, false
	}
	if h.Magic != protocolMagic || h.Version != protocolVersion || h.Role == o.Role.String() {
		return helloMsg{}, false
	}
	var expect uint32 = 1
	if resumeFor != nil {
		if !h.Resume || h.Hash != resumeFor.hash {
			return helloMsg{}, false
		}
		resumeFor.mu.Lock()
		expect = resumeFor.recvNext
		resumeFor.mu.Unlock()
	} else {
		if h.Resume {
			return helloMsg{}, false
		}
		if o.VerifyMeta != nil {
			if err := o.VerifyMeta(h.Meta, h.Hash); err != nil {
				return helloMsg{}, false
			}
		}
	}
	reply := helloMsg{
		Magic: protocolMagic, Version: protocolVersion,
		Role: o.Role.String(), Hash: h.Hash, Expect: expect,
	}
	blob, err := json.Marshal(&reply)
	if err != nil {
		return helloMsg{}, false
	}
	if _, err := conn.Write(appendFrame(nil, kindHelloOK, 0, 0, 0, blob)); err != nil {
		return helloMsg{}, false
	}
	return h, true
}

// Send implements channel.Transport. Sends in the peer-authoritative
// direction are suppressed — the peer's mirrored engine produces the
// identical packet on its side — so the call is an intentional no-op,
// not an error. Authoritative sends are framed, recorded in the
// retransmission window, shipped, and echoed locally.
func (t *Transport) Send(d channel.Dir, payload []amba.Word) error {
	if d != t.role.dir() {
		return nil
	}
	if t.opts.InjectRTT > 0 {
		time.Sleep(t.opts.InjectRTT / 2)
	}
	// Wire-fault dice roll before the lock: delay must not stall the
	// reader's protocol responses.
	var dup, corrupt, corrupt2 bool
	if t.frng != nil {
		p := t.opts.Faults
		if p.Delay > 0 && p.MaxDelayUS > 0 && t.frng.Bool(p.Delay) {
			time.Sleep(time.Duration(1+t.frng.Intn(p.MaxDelayUS)) * time.Microsecond)
		}
		dup = t.frng.Bool(p.Duplicate)
		corrupt = t.frng.Bool(p.Corrupt)
		if dup {
			corrupt2 = t.frng.Bool(p.Corrupt)
		}
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("tcpchan: send on closed transport: %w", channel.ErrChannelDown)
	}
	if len(t.window) >= windowMax {
		t.mu.Unlock()
		return fmt.Errorf("tcpchan: %d unacknowledged frames (peer gone?): %w", windowMax, channel.ErrChannelDown)
	}
	t.sendSeq++
	seq := t.sendSeq
	var buf []amba.Word
	if n := len(t.wfree); n > 0 {
		buf = t.wfree[n-1][:0]
		t.wfree[n-1] = nil
		t.wfree = t.wfree[:n-1]
	}
	buf = append(buf, payload...)
	if buf == nil {
		buf = []amba.Word{}
	}
	t.window = append(t.window, winFrame{seq: seq, payload: buf})
	t.st.Sent++
	t.writeDataLocked(seq, buf, corrupt)
	if dup {
		t.st.WireFaults++
		t.writeDataLocked(seq, buf, corrupt2)
	}
	if corrupt || corrupt2 {
		t.st.WireFaults++
	}
	t.mu.Unlock()

	// Local echo: the engine on this side receives its own
	// contribution exactly as an in-process transport would deliver it.
	t.echo.Send(d, payload)
	return nil
}

// writeDataLocked encodes and writes one data frame. A write failure
// marks the connection dead (the reader heals it); the frame stays in
// the window either way.
func (t *Transport) writeDataLocked(seq uint32, payload []amba.Word, corrupt bool) {
	t.wbuf = appendDataFrame(t.wbuf[:0], byte(t.role.dir()), seq, t.recvNext-1, payload)
	if corrupt && len(t.wbuf) > 4 {
		bit := t.frng.Intn((len(t.wbuf) - 4) * 8)
		t.wbuf[4+bit/8] ^= 1 << (bit % 8)
	}
	t.unacked = 0
	t.writeRawLocked(t.wbuf)
}

// writeCtrlLocked encodes and writes one control frame.
func (t *Transport) writeCtrlLocked(kind byte, seq, ack uint32, payload []byte) {
	t.wbuf = appendFrame(t.wbuf[:0], kind, 0, seq, ack, payload)
	t.writeRawLocked(t.wbuf)
}

// writeRawLocked ships pre-encoded bytes on the live connection, if
// any. Errors mark the connection dead and close it, which unblocks
// the reader into its reconnect path.
func (t *Transport) writeRawLocked(b []byte) {
	if t.conn == nil || t.dead {
		return
	}
	t.conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if _, err := t.conn.Write(b); err != nil {
		t.dead = true
		t.conn.Close()
	}
}

// Recv implements channel.Transport. The authoritative direction pops
// the local echo — empty means the engine broke its own exchange
// protocol, reported immediately. The peer direction blocks on the
// socket-fed queue up to RecvTimeout, re-requesting a resync while it
// waits (harmless when nothing was lost: a resync for a sequence the
// peer has not produced retransmits nothing). The resync cadence
// starts at resyncWait — never faster than the measured round trip —
// and backs off exponentially, because each resync makes the peer
// retransmit its whole in-flight window: a fixed short cadence would
// amplify traffic on exactly the high-latency links this transport
// targets.
func (t *Transport) Recv(d channel.Dir) ([]amba.Word, error) {
	if d == t.role.dir() {
		return t.echo.Recv(d)
	}
	select {
	case pkt := <-t.rxq:
		return pkt, nil
	default:
	}
	timer := time.NewTimer(t.opts.RecvTimeout)
	defer timer.Stop()
	wait := t.resyncWait()
	resync := time.NewTimer(wait)
	defer resync.Stop()
	for {
		select {
		case pkt := <-t.rxq:
			return pkt, nil
		case <-resync.C:
			t.mu.Lock()
			t.sendResyncLocked()
			t.mu.Unlock()
			if wait *= 2; wait > maxResyncWait {
				wait = maxResyncWait
			}
			resync.Reset(wait)
		case <-timer.C:
			return nil, fmt.Errorf("tcpchan: recv %v timed out after %v: %w", d, t.opts.RecvTimeout, channel.ErrChannelDown)
		case <-t.stop:
			// A shutdown racing already-delivered data must not eat the
			// packet: drain the receive queue before reporting down.
			select {
			case pkt := <-t.rxq:
				return pkt, nil
			default:
			}
			return nil, fmt.Errorf("tcpchan: transport stopped: %w", channel.ErrChannelDown)
		}
	}
}

// sendResyncLocked asks the peer to retransmit from recvNext.
func (t *Transport) sendResyncLocked() {
	t.st.Resyncs++
	t.traceLocked(trace.Event{Kind: trace.EvTransportResync, Domain: uint8(t.role), Arg: int64(t.recvNext)})
	t.writeCtrlLocked(kindResync, t.recvNext, t.recvNext-1, nil)
}

// resyncWait is the initial resync interval for one blocked Recv: at
// least ResyncEvery, and at least two measured mean round trips, so a
// healthy link whose genuine RTT exceeds ResyncEvery is not flooded
// with redundant retransmission requests.
func (t *Transport) resyncWait() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.opts.ResyncEvery
	if t.rtt.N() > 0 {
		if m := time.Duration(2 * t.rtt.Mean() * float64(time.Microsecond)); m > w {
			w = m
		}
	}
	if w > maxResyncWait {
		w = maxResyncWait
	}
	return w
}

// Release implements channel.Transport. Echo buffers recycle through
// the echo queue's pool; reader-allocated receive buffers retire the
// same way and are reused by future echo sends.
func (t *Transport) Release(pkt []amba.Word) { t.echo.Release(pkt) }

// Pending implements channel.Transport.
func (t *Transport) Pending(d channel.Dir) int {
	if d == t.role.dir() {
		return t.echo.Pending(d)
	}
	return len(t.rxq)
}

// Close shuts the transport down: no reconnects, blocked receivers
// fail, the reader exits.
func (t *Transport) Close() error {
	t.mu.Lock()
	alreadyClosed := t.closed
	t.closed = true
	if t.conn != nil && !t.dead {
		// Tell the peer this is deliberate so it goes down instead of
		// redialing a gone endpoint; the kernel flushes the bye with
		// the FIN.
		t.writeCtrlLocked(kindBye, 0, t.recvNext-1, nil)
	}
	if t.conn != nil {
		t.conn.Close()
	}
	if t.dialing != nil {
		t.dialing.Close()
	}
	t.mu.Unlock()
	t.stopOnce.Do(func() { close(t.stop) })
	if !alreadyClosed {
		<-t.readerDone
	}
	return nil
}

// Kill severs the current connection without closing the transport —
// a test hook standing in for a mid-run network failure. The reader
// notices and heals via the reconnect path.
func (t *Transport) Kill() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn != nil && !t.dead {
		t.killed++
		t.dead = true
		t.conn.Close()
	}
}

// ExchangeSum sends blob to the peer and returns the peer's blob — the
// end-of-run cross-check both mirrors use to compare canonical report
// digests. Symmetric: both sides call it.
func (t *Transport) ExchangeSum(blob []byte, timeout time.Duration) ([]byte, error) {
	t.mu.Lock()
	// Sum frames live outside the data window, so keep the blob for
	// explicit re-send on reconnect — otherwise a connection that is
	// dead right now (write silently dropped) or dies in flight would
	// strand both mirrors in the exchange timeout.
	t.pendingSum = append([]byte(nil), blob...)
	t.writeCtrlLocked(kindSum, 0, t.recvNext-1, t.pendingSum)
	t.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case peer := <-t.sumq:
		return peer, nil
	case <-timer.C:
		return nil, fmt.Errorf("tcpchan: sum exchange timed out after %v: %w", timeout, channel.ErrChannelDown)
	case <-t.stop:
		select {
		case peer := <-t.sumq:
			return peer, nil
		default:
		}
		return nil, fmt.Errorf("tcpchan: transport stopped: %w", channel.ErrChannelDown)
	}
}

// Stats returns a snapshot of the endpoint's wire counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.st
	s.RTTSamples = t.rtt.N()
	if s.RTTSamples > 0 {
		s.RTTMean = time.Duration(t.rtt.Mean() * float64(time.Microsecond))
		s.RTTP99 = time.Duration(t.rtt.Quantile(0.99)) * time.Microsecond
	}
	return s
}

// TraceEvents returns the transport's recorded trace events (connects,
// resyncs, retransmissions, reconnects). Event.Cycle carries the frame
// sequence position, not a target cycle.
func (t *Transport) TraceEvents() []trace.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trc.Events()
}

// addSampleLocked records one RTT sample in microseconds.
func (t *Transport) addSampleLocked(d time.Duration) {
	us := int(d / time.Microsecond)
	if us < 0 {
		return
	}
	t.rtt.Add(us)
}

func (t *Transport) traceLocked(ev trace.Event) {
	ev.Cycle = int64(t.sendSeq)
	t.trc.Record(ev)
}

// ackWindowLocked drops window frames with seq <= ack, recycling their
// buffers.
func (t *Transport) ackWindowLocked(ack uint32) {
	i := 0
	for i < len(t.window) && t.window[i].seq <= ack {
		if cap(t.window[i].payload) > 0 {
			t.wfree = append(t.wfree, t.window[i].payload)
		}
		t.window[i] = winFrame{}
		i++
	}
	if i > 0 {
		t.window = append(t.window[:0], t.window[i:]...)
	}
}

// pinger samples link RTT in the background.
func (t *Transport) pinger() {
	tk := time.NewTicker(t.opts.PingEvery)
	defer tk.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tk.C:
			t.mu.Lock()
			t.pingSeq++
			t.pingT0 = time.Now()
			t.writeCtrlLocked(kindPing, t.pingSeq, t.recvNext-1, nil)
			t.mu.Unlock()
		}
	}
}

// run is the reader goroutine: it drains the live connection and heals
// dead ones until the transport closes or reconnection is exhausted.
func (t *Transport) run() {
	defer close(t.readerDone)
	for {
		t.mu.Lock()
		conn, dead, closed := t.conn, t.dead, t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if conn == nil || dead {
			if !t.reestablish() {
				// Permanently down: wake blocked receivers.
				t.stopOnce.Do(func() { close(t.stop) })
				return
			}
			continue
		}
		t.readLoop(conn)
		t.mu.Lock()
		bye := t.peerBye
		if t.conn == conn && !t.closed {
			t.dead = true
			conn.Close()
		}
		t.mu.Unlock()
		if bye {
			// Deliberate peer shutdown: the link is down for good, not
			// broken. Wake blocked receivers instead of reconnecting.
			t.stopOnce.Do(func() { close(t.stop) })
			return
		}
	}
}

// reestablish replaces a dead connection: the dialer side redials with
// a resume handshake, the acceptor side re-accepts a resume from its
// listener. On success the retransmission window is replayed from the
// peer's next expected sequence.
func (t *Transport) reestablish() bool {
	if t.ln != nil {
		conn, h, err := t.ln.acceptResume(t)
		if err != nil {
			return false
		}
		t.installConn(conn, h.Expect)
		return true
	}
	for attempt := 0; attempt < t.opts.Redial; attempt++ {
		if attempt > 0 {
			select {
			case <-t.stop:
				return false
			case <-time.After(time.Duration(attempt) * t.opts.RedialWait):
			}
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return false
		}
		conn, err := t.dialOnce(true)
		if err != nil {
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return false
		}
		t.mu.Unlock()
		// dialOnce already pruned the window to the peer's expect; the
		// peer told us where to resume via helloOK.Expect handled there.
		t.installConnRetransmit(conn)
		return true
	}
	return false
}

// installConn adopts a resumed connection and retransmits the window
// from the peer's next expected sequence.
func (t *Transport) installConn(conn net.Conn, peerExpect uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ackWindowLocked(peerExpect - 1)
	t.adoptLocked(conn)
}

// installConnRetransmit adopts a redialed connection (window already
// pruned during the resume handshake) and retransmits what remains.
func (t *Transport) installConnRetransmit(conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.adoptLocked(conn)
}

// adoptLocked installs a healed connection and replays the
// un-acknowledged window in order.
func (t *Transport) adoptLocked(conn net.Conn) {
	if t.conn != nil {
		t.conn.Close()
	}
	t.conn = conn
	t.dead = false
	t.gen++
	t.st.Reconnects++
	t.traceLocked(trace.Event{Kind: trace.EvTransportReconnect, Domain: uint8(t.role), Arg: t.gen})
	t.retransmitLocked(0)
	if t.pendingSum != nil {
		// The peer drops a duplicate via its one-slot sum queue.
		t.writeCtrlLocked(kindSum, 0, t.recvNext-1, t.pendingSum)
	}
}

// retransmitLocked re-sends every window frame with seq >= from (0
// replays the whole window).
func (t *Transport) retransmitLocked(from uint32) {
	n := int64(0)
	for _, wf := range t.window {
		if wf.seq < from {
			continue
		}
		t.wbuf = appendDataFrame(t.wbuf[:0], byte(t.role.dir()), wf.seq, t.recvNext-1, wf.payload)
		t.writeRawLocked(t.wbuf)
		n++
	}
	if n > 0 {
		t.st.Retransmits += n
		t.traceLocked(trace.Event{Kind: trace.EvTransportRetransmit, Domain: uint8(t.role), N: n})
	}
}

// readLoop drains one connection until it errors.
func (t *Transport) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		kind, _, seq, ack, payload, err := readFrame(br)
		if err != nil {
			return
		}
		switch kind {
		case kindData:
			t.handleData(seq, ack, payload)
		case kindResync:
			t.mu.Lock()
			t.ackWindowLocked(seq - 1)
			t.retransmitLocked(seq)
			t.mu.Unlock()
		case kindAck:
			t.mu.Lock()
			t.ackWindowLocked(ack)
			t.mu.Unlock()
		case kindPing:
			t.mu.Lock()
			t.writeCtrlLocked(kindPong, seq, t.recvNext-1, nil)
			t.mu.Unlock()
		case kindPong:
			t.mu.Lock()
			if seq == t.pingSeq && !t.pingT0.IsZero() {
				t.addSampleLocked(time.Since(t.pingT0))
				t.pingT0 = time.Time{}
			}
			t.mu.Unlock()
		case kindSum:
			blob := append([]byte(nil), payload...)
			select {
			case t.sumq <- blob:
			default:
			}
		case kindBye:
			t.mu.Lock()
			t.peerBye = true
			t.mu.Unlock()
			return
		case frameCorrupt:
			// readFrame verified the stream framing but the checksum
			// failed: request retransmission of everything undelivered.
			t.mu.Lock()
			t.st.CorruptFrames++
			t.sendResyncLocked()
			t.mu.Unlock()
		default:
			// Unknown control frame: ignore (forward compatibility).
		}
	}
}

// handleData runs the receive side of the ARQ for one data frame.
func (t *Transport) handleData(seq, ack uint32, payload []byte) {
	if len(payload)%amba.WordBytes != 0 {
		t.mu.Lock()
		t.st.CorruptFrames++
		t.sendResyncLocked()
		t.mu.Unlock()
		return
	}
	t.mu.Lock()
	t.ackWindowLocked(ack)
	switch {
	case seq < t.recvNext:
		t.st.Dups++
		t.mu.Unlock()
		return
	case seq > t.recvNext:
		t.st.Gaps++
		t.sendResyncLocked()
		t.mu.Unlock()
		return
	}
	t.recvNext++
	t.st.Received++
	t.unacked++
	if t.unacked >= ackEvery {
		t.unacked = 0
		t.writeCtrlLocked(kindAck, 0, t.recvNext-1, nil)
	}
	t.mu.Unlock()

	words := make([]amba.Word, 0, len(payload)/amba.WordBytes)
	for i := 0; i < len(payload); i += amba.WordBytes {
		words = append(words, amba.GetWord(payload[i:]))
	}
	select {
	case t.rxq <- words:
	case <-t.stop:
	}
}

// frameCorrupt is the in-band kind readFrame returns for a frame whose
// stream framing held but whose checksum failed: the connection is
// still usable, the frame is not.
const frameCorrupt = 0xFF

// appendFrame encodes one frame with a byte payload:
//
//	u32 length | u8 kind | u8 dir | u16 reserved | u32 seq | u32 ack |
//	payload bytes | u32 sum
//
// sum is FNV-1a over the body (kind through payload) with the
// channel.FrameSum constants; over a word payload encoded
// little-endian this equals FrameSum of those words, so the framing is
// byte-for-byte the FaultEndpoint scheme carried onto a stream.
func appendFrame(dst []byte, kind, dir byte, seq, ack uint32, payload []byte) []byte {
	body := frameHeadBytes + len(payload) + frameSumBytes
	dst = le32(dst, uint32(body))
	start := len(dst)
	dst = append(dst, kind, dir, 0, 0)
	dst = le32(dst, seq)
	dst = le32(dst, ack)
	dst = append(dst, payload...)
	return le32(dst, byteSum(dst[start:]))
}

// appendDataFrame is appendFrame for a word payload, avoiding an
// intermediate byte slice.
func appendDataFrame(dst []byte, dir byte, seq, ack uint32, payload []amba.Word) []byte {
	body := frameHeadBytes + len(payload)*amba.WordBytes + frameSumBytes
	dst = le32(dst, uint32(body))
	start := len(dst)
	dst = append(dst, kindData, dir, 0, 0)
	dst = le32(dst, seq)
	dst = le32(dst, ack)
	for _, w := range payload {
		dst = amba.PutWord(dst, w)
	}
	return le32(dst, byteSum(dst[start:]))
}

// readFrame reads one frame off the stream. A checksum mismatch
// returns kind frameCorrupt with no error: the stream framing is
// intact, only the frame content is untrusted. Framing-level damage
// (absurd length) returns an error, killing the connection.
func readFrame(r io.Reader) (kind, dir byte, seq, ack uint32, payload []byte, err error) {
	var head [4]byte
	if _, err = io.ReadFull(r, head[:]); err != nil {
		return 0, 0, 0, 0, nil, err
	}
	n := int(getLE32(head[:]))
	if n < frameHeadBytes+frameSumBytes || n > maxFrameBytes {
		return 0, 0, 0, 0, nil, fmt.Errorf("tcpchan: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, 0, 0, nil, err
	}
	sum := getLE32(body[n-frameSumBytes:])
	if byteSum(body[:n-frameSumBytes]) != sum {
		return frameCorrupt, 0, 0, 0, nil, nil
	}
	kind, dir = body[0], body[1]
	seq = getLE32(body[4:])
	ack = getLE32(body[8:])
	payload = body[frameHeadBytes : n-frameSumBytes]
	return kind, dir, seq, ack, payload, nil
}

// byteSum is FNV-1a with the channel.FrameSum constants, over bytes.
func byteSum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// le32 appends v little-endian.
func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// getLE32 decodes a little-endian u32 from the first 4 bytes of b.
func getLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
