package tcpchan

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"coemu/internal/amba"
	"coemu/internal/channel"
	"coemu/internal/faultplan"
)

// newPair connects a sim-role dialer to an acc-role acceptor over a
// loopback listener and returns both ready transports.
func newPair(t *testing.T, cli, srv Options) (*Transport, *Transport) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cli.Role = RoleSim
	srv.Role = RoleAcc
	type accepted struct {
		tr  *Transport
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		tr, _, err := l.Accept(srv)
		ch <- accepted{tr, err}
	}()
	sim, err := Dial(l.Addr().String(), cli)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sim.Close() })
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	t.Cleanup(func() { acc.tr.Close() })
	return sim, acc.tr
}

func TestRoundTripBothDirections(t *testing.T) {
	sim, acc := newPair(t, Options{}, Options{})
	// Mirrored lockstep: both engines send in both directions; the
	// transport suppresses the non-authoritative copy.
	for i := 0; i < 10; i++ {
		p := []amba.Word{amba.Word(i), amba.Word(i * 7)}
		if err := sim.Send(channel.SimToAcc, p); err != nil {
			t.Fatal(err)
		}
		if err := acc.Send(channel.SimToAcc, p); err != nil { // suppressed
			t.Fatal(err)
		}
		if err := acc.Send(channel.AccToSim, p); err != nil {
			t.Fatal(err)
		}
		if err := sim.Send(channel.AccToSim, p); err != nil { // suppressed
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		want := []amba.Word{amba.Word(i), amba.Word(i * 7)}
		check := func(tr *Transport, d channel.Dir) {
			t.Helper()
			pkt, err := tr.Recv(d)
			if err != nil {
				t.Fatalf("recv %v: %v", d, err)
			}
			if len(pkt) != 2 || pkt[0] != want[0] || pkt[1] != want[1] {
				t.Fatalf("recv %v = %v, want %v", d, pkt, want)
			}
			tr.Release(pkt)
		}
		check(sim, channel.SimToAcc) // local echo
		check(acc, channel.SimToAcc) // over the wire
		check(acc, channel.AccToSim) // local echo
		check(sim, channel.AccToSim) // over the wire
	}
}

func TestZeroLengthPayload(t *testing.T) {
	sim, acc := newPair(t, Options{}, Options{})
	if err := sim.Send(channel.SimToAcc, nil); err != nil {
		t.Fatal(err)
	}
	pkt, err := acc.Recv(channel.SimToAcc)
	if err != nil {
		t.Fatal(err)
	}
	if pkt == nil || len(pkt) != 0 {
		t.Fatalf("zero-length payload arrived as %#v", pkt)
	}
}

func TestRecvTimeoutReturnsChannelDown(t *testing.T) {
	sim, _ := newPair(t, Options{RecvTimeout: 80 * time.Millisecond}, Options{})
	if _, err := sim.Recv(channel.AccToSim); !errors.Is(err, channel.ErrChannelDown) {
		t.Fatalf("recv err = %v, want ErrChannelDown", err)
	}
}

func TestEmptyEchoIsImmediateError(t *testing.T) {
	sim, _ := newPair(t, Options{}, Options{})
	start := time.Now()
	_, err := sim.Recv(channel.SimToAcc)
	if !errors.Is(err, channel.ErrChannelDown) {
		t.Fatalf("recv err = %v, want ErrChannelDown", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("empty echo receive took %v; must fail immediately", d)
	}
}

func TestWireFaultsHealedByARQ(t *testing.T) {
	plan := &faultplan.ChannelFault{Corrupt: 0.2, Duplicate: 0.3, Delay: 0.1, MaxDelayUS: 50}
	sim, acc := newPair(t,
		Options{Faults: plan, FaultSeed: 41, ResyncEvery: 5 * time.Millisecond},
		Options{Faults: plan, FaultSeed: 42, ResyncEvery: 5 * time.Millisecond})
	const n = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := sim.Send(channel.SimToAcc, []amba.Word{amba.Word(i), amba.Word(i ^ 0xABCD)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		pkt, err := acc.Recv(channel.SimToAcc)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(pkt) != 2 || pkt[0] != amba.Word(i) || pkt[1] != amba.Word(i^0xABCD) {
			t.Fatalf("recv %d = %v: ARQ delivered out of order", i, pkt)
		}
		acc.Release(pkt)
	}
	wg.Wait()
	st := sim.Stats()
	if st.WireFaults == 0 {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}
	ast := acc.Stats()
	if ast.CorruptFrames == 0 && ast.Dups == 0 {
		t.Fatalf("receiver observed no faults (%+v); test is vacuous", ast)
	}
}

func TestKillHealsWithReconnect(t *testing.T) {
	sim, acc := newPair(t,
		Options{RedialWait: 10 * time.Millisecond, ResyncEvery: 5 * time.Millisecond},
		Options{ResyncEvery: 5 * time.Millisecond})
	const n = 60
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := sim.Send(channel.SimToAcc, []amba.Word{amba.Word(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if i == 20 {
				sim.Kill()
			}
			if i == 40 {
				acc.Kill()
			}
		}
	}()
	for i := 0; i < n; i++ {
		pkt, err := acc.Recv(channel.SimToAcc)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(pkt) != 1 || pkt[0] != amba.Word(i) {
			t.Fatalf("recv %d = %v after reconnect", i, pkt)
		}
		acc.Release(pkt)
	}
	<-done
	if st := sim.Stats(); st.Reconnects == 0 {
		st2 := acc.Stats()
		if st2.Reconnects == 0 {
			t.Fatalf("no reconnects recorded on either side (sim %+v, acc %+v)", st, st2)
		}
	}
}

// crashedAcceptor returns an acc-role transport whose peer handshook
// and then died abruptly — no bye frame, and no resume will ever
// arrive, so the acceptor's reader is left in its re-accept wait.
func crashedAcceptor(t *testing.T, srv Options) *Transport {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv.Role = RoleAcc
	type accepted struct {
		tr  *Transport
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		tr, _, err := l.Accept(srv)
		ch <- accepted{tr, err}
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := handshake(conn, helloMsg{
		Magic: protocolMagic, Version: protocolVersion,
		Role: RoleSim.String(), Hash: "h",
	}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	t.Cleanup(func() { acc.tr.Close() })
	conn.Close()
	return acc.tr
}

func TestAcceptorCloseUnblocksAfterPeerCrash(t *testing.T) {
	acc := crashedAcceptor(t, Options{RedialWait: 5 * time.Millisecond})
	time.Sleep(50 * time.Millisecond) // let acc's reader enter the re-accept wait
	done := make(chan struct{})
	go func() { acc.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("acceptor Close deadlocked while waiting to re-accept a crashed peer")
	}
}

func TestAcceptorReacceptBudgetBounded(t *testing.T) {
	acc := crashedAcceptor(t, Options{
		Redial: 1, DialTimeout: 150 * time.Millisecond,
		RedialWait: time.Millisecond, RecvTimeout: 30 * time.Second,
	})
	// The re-accept budget (Redial×DialTimeout + backoff) expires and
	// takes the transport down well before RecvTimeout would.
	start := time.Now()
	_, err := acc.Recv(channel.SimToAcc)
	if !errors.Is(err, channel.ErrChannelDown) {
		t.Fatalf("recv err = %v, want ErrChannelDown", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("transport took %v to notice the peer is gone for good", d)
	}
}

func TestExchangeSum(t *testing.T) {
	sim, acc := newPair(t, Options{}, Options{})
	var got [2][]byte
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); got[0], errs[0] = sim.ExchangeSum([]byte("sim-digest"), 2*time.Second) }()
	go func() { defer wg.Done(); got[1], errs[1] = acc.ExchangeSum([]byte("acc-digest"), 2*time.Second) }()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("sum exchange: %v / %v", errs[0], errs[1])
	}
	if string(got[0]) != "acc-digest" || string(got[1]) != "sim-digest" {
		t.Fatalf("sum exchange swapped wrong blobs: %q / %q", got[0], got[1])
	}
}

func TestExchangeSumSurvivesReconnect(t *testing.T) {
	sim, acc := newPair(t,
		Options{RedialWait: 5 * time.Millisecond},
		Options{RedialWait: 5 * time.Millisecond})
	// Kill the connection first: the sum writes land on a dead (or
	// dying) socket and must be re-sent by the reconnect path.
	sim.Kill()
	var got [2][]byte
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); got[0], errs[0] = sim.ExchangeSum([]byte("sim-digest"), 5*time.Second) }()
	go func() { defer wg.Done(); got[1], errs[1] = acc.ExchangeSum([]byte("acc-digest"), 5*time.Second) }()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("sum exchange across a reconnect: %v / %v", errs[0], errs[1])
	}
	if string(got[0]) != "acc-digest" || string(got[1]) != "sim-digest" {
		t.Fatalf("sum exchange delivered wrong blobs: %q / %q", got[0], got[1])
	}
}

func TestResyncBacksOffWhileBlocked(t *testing.T) {
	sim, _ := newPair(t,
		Options{ResyncEvery: time.Millisecond, RecvTimeout: 300 * time.Millisecond},
		Options{})
	if _, err := sim.Recv(channel.AccToSim); !errors.Is(err, channel.ErrChannelDown) {
		t.Fatalf("recv err = %v, want ErrChannelDown", err)
	}
	// A fixed 1ms cadence would send ~300 resyncs in 300ms; the
	// exponential backoff keeps it to a handful.
	if st := sim.Stats(); st.Resyncs > 20 {
		t.Fatalf("blocked Recv sent %d resyncs; backoff is not applied", st.Resyncs)
	}
}

func TestPingSamplesRTT(t *testing.T) {
	sim, _ := newPair(t, Options{PingEvery: 5 * time.Millisecond}, Options{})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := sim.Stats(); st.RTTSamples >= 2 { // handshake + ≥1 ping
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no ping RTT samples after 2s: %+v", sim.Stats())
}

func TestByteSumMatchesFrameSum(t *testing.T) {
	words := []amba.Word{0xDEADBEEF, 1, 0, 0xFFFFFFFF, 0x12345678}
	var b []byte
	for _, w := range words {
		b = amba.PutWord(b, w)
	}
	if byteSum(b) != uint32(channel.FrameSum(words)) {
		t.Fatalf("byteSum %#x != FrameSum %#x: framing is not the FaultEndpoint scheme", byteSum(b), uint32(channel.FrameSum(words)))
	}
}

func TestHandshakeRejectsBadMeta(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		// Reject everything: the accept loop keeps waiting, the dialer
		// must see its connection die.
		l.Accept(Options{Role: RoleAcc, VerifyMeta: func([]byte, string) error {
			return errors.New("no")
		}})
	}()
	_, err = Dial(l.Addr().String(), Options{Role: RoleSim, Meta: []byte("{}"), DialTimeout: time.Second})
	if err == nil {
		t.Fatal("dial succeeded against a rejecting acceptor")
	}
}
