package channel

import (
	"errors"
	"fmt"

	"coemu/internal/amba"
)

// ErrChannelDown reports that a transport could not produce a packet:
// the in-memory queue was empty where the engine's protocol guarantees
// a packet, or a remote peer stopped answering within the receive
// timeout. Engine call sites propagate it as a typed run failure
// instead of blocking forever on a dead peer.
var ErrChannelDown = errors.New("channel: transport down")

// Transport moves materialized wire packets between the two
// verification domains. It is the physical layer under the engine's
// packed codec: implementations range from same-process queues
// (Queues, Loopback) to a real TCP socket (package tcpchan), with
// FaultEndpoint wrapping any of them for seeded fault injection.
//
// Transports carry bits only — they never touch the virtual-clock
// ledger or channel Stats. The engine charges every access explicitly
// through Channel.Account before handing the packet to the transport,
// so the modeled economics are bit-identical across implementations.
//
// Ownership follows the Channel convention: Send may reuse its payload
// slice after the call returns (the transport copies or encodes), and
// a slice returned by Recv belongs to the caller until handed back via
// Release.
type Transport interface {
	// Send ships one packet in direction d.
	Send(d Dir, payload []amba.Word) error
	// Recv returns the oldest undelivered packet in direction d, or an
	// error wrapping ErrChannelDown when none can be produced.
	Recv(d Dir) ([]amba.Word, error)
	// Release recycles a packet obtained from Recv.
	Release(pkt []amba.Word)
	// Pending reports how many packets are queued for delivery in
	// direction d on this endpoint.
	Pending(d Dir) int
	// Close releases transport resources. The in-memory transports
	// treat it as a no-op.
	Close() error
}

// Queues is the in-memory packet transport: a pair of FIFO queues with
// a shared buffer free-list, exactly the queueing machinery Channel
// has always used, split out so it can stand alone behind the
// Transport interface (and under FaultEndpoint). Like Channel it is
// single-threaded by design — the engine interleaves the domains
// deterministically.
type Queues struct {
	queues [2]queue
	free   [][]amba.Word
}

// queue is a FIFO of packets. Dequeuing advances head instead of
// reslicing so the backing array is reused once the queue drains
// (reslicing q[1:] forever walks the buffer forward and forces append
// to reallocate).
type queue struct {
	pkts [][]amba.Word
	head int
}

func (q *queue) push(pkt []amba.Word) {
	q.pkts = append(q.pkts, pkt)
}

// pop removes and returns the oldest packet, or (nil, false) when the
// queue is empty. The nil-out keeps drained buffers collectable.
func (q *queue) pop() ([]amba.Word, bool) {
	if q.head >= len(q.pkts) {
		return nil, false
	}
	pkt := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return pkt, true
}

func (q *queue) len() int { return len(q.pkts) - q.head }

// NewQueues creates an empty in-memory transport.
func NewQueues() *Queues {
	return &Queues{}
}

// Send copies payload into a pooled buffer and enqueues it. It never
// fails.
func (t *Queues) Send(d Dir, payload []amba.Word) error {
	var pkt []amba.Word
	if n := len(t.free); n > 0 {
		pkt = t.free[n-1][:0]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	}
	pkt = append(pkt, payload...)
	if pkt == nil {
		pkt = []amba.Word{} // keep zero-length packets non-nil
	}
	t.queues[d].push(pkt)
	return nil
}

// Recv dequeues the oldest packet in direction d. An empty queue
// returns an error wrapping ErrChannelDown: with both endpoints in one
// process there is no peer to wait for, so a missing packet is a
// protocol violation, surfaced immediately instead of blocking.
func (t *Queues) Recv(d Dir) ([]amba.Word, error) {
	pkt, ok := t.queues[d].pop()
	if !ok {
		return nil, fmt.Errorf("channel: recv on empty %v queue: %w", d, ErrChannelDown)
	}
	return pkt, nil
}

// Release returns a packet obtained from Recv to the free-list. The
// caller must not touch the slice afterwards: the next Send will
// overwrite it.
func (t *Queues) Release(pkt []amba.Word) {
	if cap(pkt) == 0 {
		return
	}
	t.free = append(t.free, pkt)
}

// Pending returns the number of queued packets in direction d.
func (t *Queues) Pending(d Dir) int { return t.queues[d].len() }

// Close is a no-op for the in-memory transport.
func (t *Queues) Close() error { return nil }

// loopbackDepth bounds the packets in flight per direction on the
// Loopback transport. The engine's exchange protocol never holds more
// than one packet per direction; the small fixed ring keeps steady
// state allocation-free while still catching protocol violations that
// an unbounded queue would silently absorb.
const loopbackDepth = 4

// Loopback is the same-process fast-path transport, tuned for the
// engine's strictly alternating exchange pattern: a fixed ring of
// reusable buffers per direction instead of a growable queue and
// shared pool. Unlike Queues it is bounded — sending more than
// loopbackDepth packets into one direction without receiving reports
// ErrChannelDown rather than growing, turning an engine protocol bug
// into an immediate failure.
type Loopback struct {
	rings [2]loopRing
}

// loopRing is a fixed circular buffer of packet slots. Buffers are
// recycled in place on wrap-around, so the steady state allocates
// nothing without any Release bookkeeping.
type loopRing struct {
	slots [loopbackDepth][]amba.Word
	head  int // next slot to deliver
	n     int // occupied slots
}

// NewLoopback creates an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{}
}

// Send copies payload into the next free ring slot.
func (t *Loopback) Send(d Dir, payload []amba.Word) error {
	r := &t.rings[d]
	if r.n == loopbackDepth {
		return fmt.Errorf("channel: loopback %v ring full (%d in flight): %w", d, r.n, ErrChannelDown)
	}
	slot := (r.head + r.n) % loopbackDepth
	buf := append(r.slots[slot][:0], payload...)
	if buf == nil {
		buf = []amba.Word{}
	}
	r.slots[slot] = buf
	r.n++
	return nil
}

// Recv returns the oldest in-flight packet in direction d. The slice
// remains ring-owned: it is valid until loopbackDepth further Sends in
// the same direction, which covers the engine's receive-decode-release
// pattern with room to spare.
func (t *Loopback) Recv(d Dir) ([]amba.Word, error) {
	r := &t.rings[d]
	if r.n == 0 {
		return nil, fmt.Errorf("channel: recv on empty %v loopback ring: %w", d, ErrChannelDown)
	}
	pkt := r.slots[r.head]
	r.head = (r.head + 1) % loopbackDepth
	r.n--
	return pkt, nil
}

// Release is a no-op: ring slots recycle on wrap-around.
func (t *Loopback) Release(pkt []amba.Word) {}

// Pending returns the number of in-flight packets in direction d.
func (t *Loopback) Pending(d Dir) int { return t.rings[d].n }

// Close is a no-op for the loopback transport.
func (t *Loopback) Close() error { return nil }
