// Transport conformance: every Transport implementation — in-memory
// queues, the bounded loopback ring, the fault endpoint wrapper, and a
// real TCP socket pair — must honor the same contract the engine
// depends on: per-direction FIFO delivery (zero-length packets
// included), payload ownership on Send, Release safety, Pending
// accounting, and a typed ErrChannelDown when no packet can be
// produced. This file lives in package channel_test so it can exercise
// tcpchan without an import cycle.
package channel_test

import (
	"errors"
	"testing"
	"time"

	"coemu/internal/amba"
	"coemu/internal/channel"
	"coemu/internal/channel/tcpchan"
	"coemu/internal/faultplan"
)

// link resolves, for one direction, which endpoint transmits and which
// receives. In-process transports are both ends at once; a TCP pair
// maps the authoritative sender per direction.
type link func(d channel.Dir) (tx, rx channel.Transport)

type conformanceCase struct {
	name string
	open func(t *testing.T) link
	// maxInFlight caps packets sent before draining (the loopback ring
	// holds 4).
	maxInFlight int
	// asyncDelivery marks transports whose Pending fills asynchronously
	// (the TCP pair's wire side).
	asyncDelivery bool
	// inexactPending marks transports whose Pending may overcount
	// logical packets (fault duplication enqueues physical frames).
	inexactPending bool
	// emptyRecvBudget bounds how long an empty Recv may take to fail
	// (the TCP wire side waits out its receive timeout first).
	emptyRecvBudget time.Duration
}

func same(tr channel.Transport) link {
	return func(channel.Dir) (channel.Transport, channel.Transport) { return tr, tr }
}

func tcpPair(t *testing.T) link {
	t.Helper()
	l, err := tcpchan.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type accepted struct {
		tr  *tcpchan.Transport
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		tr, _, err := l.Accept(tcpchan.Options{Role: tcpchan.RoleAcc, RecvTimeout: 300 * time.Millisecond})
		ch <- accepted{tr, err}
	}()
	sim, err := tcpchan.Dial(l.Addr().String(), tcpchan.Options{Role: tcpchan.RoleSim, RecvTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sim.Close() })
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	t.Cleanup(func() { acc.tr.Close() })
	return func(d channel.Dir) (channel.Transport, channel.Transport) {
		if d == channel.SimToAcc {
			return sim, acc.tr
		}
		return acc.tr, sim
	}
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{
			name:        "queues",
			open:        func(t *testing.T) link { return same(channel.NewQueues()) },
			maxInFlight: 16,
		},
		{
			name:        "loopback",
			open:        func(t *testing.T) link { return same(channel.NewLoopback()) },
			maxInFlight: 4,
		},
		{
			name: "fault-endpoint-clean",
			open: func(t *testing.T) link {
				return same(channel.NewFaultEndpoint(channel.NewQueues(), nil, 1))
			},
			maxInFlight: 16,
		},
		{
			name: "fault-endpoint-duplicating",
			open: func(t *testing.T) link {
				plan := &faultplan.ChannelFault{Duplicate: 0.5, Delay: 0.2, MaxDelayUS: 3}
				return same(channel.NewFaultEndpoint(channel.NewQueues(), plan, 7))
			},
			maxInFlight:    16,
			inexactPending: true,
		},
		{
			name:            "tcp-pair",
			open:            func(t *testing.T) link { return tcpPair(t) },
			maxInFlight:     16,
			asyncDelivery:   true,
			emptyRecvBudget: 2 * time.Second,
		},
	}
}

// payloadFor builds a distinct packet per (direction, index), with
// index 0 zero-length to pin empty-packet transit.
func payloadFor(d channel.Dir, i int) []amba.Word {
	if i == 0 {
		return nil
	}
	p := make([]amba.Word, i)
	for j := range p {
		p[j] = amba.Word(uint32(d)<<28 | uint32(i)<<16 | uint32(j))
	}
	return p
}

func waitPending(t *testing.T, rx channel.Transport, d channel.Dir, want int, async bool) int {
	t.Helper()
	if !async {
		return rx.Pending(d)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := rx.Pending(d); n >= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTransportConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("fifo-both-directions", func(t *testing.T) {
				lk := tc.open(t)
				for _, d := range []channel.Dir{channel.SimToAcc, channel.AccToSim} {
					tx, rx := lk(d)
					n := tc.maxInFlight
					for i := 0; i < n; i++ {
						if err := tx.Send(d, payloadFor(d, i)); err != nil {
							t.Fatalf("%v send %d: %v", d, i, err)
						}
					}
					got := waitPending(t, rx, d, n, tc.asyncDelivery)
					switch {
					case tc.inexactPending:
						if got < n {
							t.Fatalf("%v pending = %d, want >= %d", d, got, n)
						}
					case got != n:
						t.Fatalf("%v pending = %d, want %d", d, got, n)
					}
					for i := 0; i < n; i++ {
						pkt, err := rx.Recv(d)
						if err != nil {
							t.Fatalf("%v recv %d: %v", d, i, err)
						}
						want := payloadFor(d, i)
						if len(pkt) != len(want) {
							t.Fatalf("%v recv %d: %d words, want %d", d, i, len(pkt), len(want))
						}
						for j := range want {
							if pkt[j] != want[j] {
								t.Fatalf("%v recv %d word %d = %#x, want %#x", d, i, j, pkt[j], want[j])
							}
						}
						rx.Release(pkt)
					}
					if !tc.inexactPending && rx.Pending(d) != 0 {
						t.Fatalf("%v pending after drain = %d", d, rx.Pending(d))
					}
				}
			})

			t.Run("send-does-not-retain-payload", func(t *testing.T) {
				lk := tc.open(t)
				d := channel.SimToAcc
				tx, rx := lk(d)
				p := []amba.Word{1, 2, 3}
				if err := tx.Send(d, p); err != nil {
					t.Fatal(err)
				}
				p[0], p[1], p[2] = 9, 9, 9 // transport must have copied or encoded
				waitPending(t, rx, d, 1, tc.asyncDelivery)
				pkt, err := rx.Recv(d)
				if err != nil {
					t.Fatal(err)
				}
				if len(pkt) != 3 || pkt[0] != 1 || pkt[1] != 2 || pkt[2] != 3 {
					t.Fatalf("received %v: transport aliased the caller's payload", pkt)
				}
				rx.Release(pkt)
			})

			t.Run("empty-recv-is-channel-down", func(t *testing.T) {
				lk := tc.open(t)
				for _, d := range []channel.Dir{channel.SimToAcc, channel.AccToSim} {
					_, rx := lk(d)
					start := time.Now()
					_, err := rx.Recv(d)
					if !errors.Is(err, channel.ErrChannelDown) {
						t.Fatalf("%v empty recv err = %v, want ErrChannelDown", d, err)
					}
					budget := tc.emptyRecvBudget
					if budget == 0 {
						budget = 100 * time.Millisecond
					}
					if took := time.Since(start); took > budget {
						t.Fatalf("%v empty recv took %v, budget %v", d, took, budget)
					}
				}
			})

			t.Run("release-then-reuse", func(t *testing.T) {
				lk := tc.open(t)
				d := channel.AccToSim
				tx, rx := lk(d)
				for round := 0; round < 3; round++ {
					if err := tx.Send(d, []amba.Word{amba.Word(round), 0xF00D}); err != nil {
						t.Fatal(err)
					}
					waitPending(t, rx, d, 1, tc.asyncDelivery)
					pkt, err := rx.Recv(d)
					if err != nil {
						t.Fatal(err)
					}
					if len(pkt) != 2 || pkt[0] != amba.Word(round) || pkt[1] != 0xF00D {
						t.Fatalf("round %d: got %v", round, pkt)
					}
					rx.Release(pkt)
				}
			})
		})
	}
}
