package core

import (
	"context"
	"fmt"
	"testing"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/ip"
	"coemu/internal/workload"
)

// Allocation-regression guards for the engine hot path. The steady-state
// cycle loop — bus evaluate/commit, channel pack/send/recv/unpack, LOB
// deposit and flush, and the once-per-transition rollback store — must
// not allocate: every buffer is engine-, bus-, channel- or
// registry-owned scratch reused across cycles. These tests pin that
// property so it cannot silently rot.
//
// The only allocations tolerated are amortized container growth that is
// not on the per-cycle path: the master's append-only beat log doubles
// its capacity O(log n) times per run. The warm-up loops below grow
// those containers past what the measured window needs, so the asserted
// bound is exactly zero.

// zeroStream is a write-burst generator with no per-transfer heap state:
// Data stays nil (the master drives zero words), so fetching a transfer
// allocates nothing — unlike workload.Stream, which builds a fresh Data
// slice per write burst. That isolates the engine's own allocations from
// workload-owned ones.
type zeroStream struct {
	lo, hi amba.Addr
	cursor amba.Addr
}

func (z *zeroStream) Next() (ip.Xfer, bool) {
	x := ip.Xfer{Addr: z.cursor, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8}
	const span = 8 * 4
	z.cursor += span
	if z.cursor+span > z.hi {
		z.cursor = z.lo
	}
	return x, true
}

func (z *zeroStream) Save() any { return z.SaveInto(nil) }

func (z *zeroStream) SaveInto(prev any) any {
	p, ok := prev.(*amba.Addr)
	if !ok {
		p = new(amba.Addr)
	}
	*p = z.cursor
	return p
}

func (z *zeroStream) Restore(v any) { z.cursor = *(v.(*amba.Addr)) }

// allocDesign is the canonical ALS split (acc-side write master, sim-side
// memory) over the zero-alloc generator.
func allocDesign() Design {
	return Design{
		Masters: []MasterSpec{{
			Name:   "dma",
			Domain: AccDomain,
			NewGen: func() ip.Generator { return &zeroStream{lo: 0, hi: 0x4000} },
		}},
		Slaves: []SlaveSpec{{
			Name:   "mem",
			Domain: SimDomain,
			Region: bus.Region{Lo: 0, Hi: 0x8000},
			New:    func() bus.Slave { return ip.NewSRAM("mem") },
		}},
	}
}

// TestParallelPathsAllocFree extends the zero-alloc guard to the
// Workers>1 steady state: the parallel conservative cycle, the
// pipelined run-ahead/follow-up transition with its worker-side
// quiescence batches, and (at Workers>=4) the per-bus master-drive
// fan-out. AllocsPerRun counts mallocs across all goroutines, so the
// worker lanes are held to the same zero as the coordinator.
func TestParallelPathsAllocFree(t *testing.T) {
	for _, workers := range []int{2, 4} {
		for _, mode := range []Mode{ALS, Conservative} {
			t.Run(fmt.Sprintf("workers=%d/%v", workers, mode), func(t *testing.T) {
				d := allocDesign()
				d.Masters[0].NewGen = func() ip.Generator {
					return workload.NewStream(workload.Window{Lo: 0, Hi: 0x4000}, true,
						amba.BurstIncr8, amba.Size32, 0, 48, 0)
				}
				// A second accelerator-side master gives that bus two
				// local masters, so Workers>=4 really exercises the
				// drive fan-out lanes.
				d.Masters = append(d.Masters, MasterSpec{
					Name:   "dma2",
					Domain: AccDomain,
					NewGen: func() ip.Generator { return &zeroStream{lo: 0x4000, hi: 0x8000, cursor: 0x4000} },
				})
				e, err := NewEngine(d, Config{Mode: mode, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				e.done = ctx.Done()
				e.startWorkers()
				defer e.stopWorkers()
				step := func() {
					leader, decl := e.pickLeader()
					e.recordDeclines(decl, 1)
					if leader == nil {
						if err := e.conservativeCycle(); err != nil {
							t.Fatal(err)
						}
						if err := e.batchConservative(1<<30, decl); err != nil {
							t.Fatal(err)
						}
						return
					}
					if _, err := e.transition(leader, 1<<30); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 500; i++ {
					step()
				}
				if mode == ALS && e.stats.Transitions == 0 {
					t.Fatal("no transitions; the pipelined path never ran")
				}
				allocs := testing.AllocsPerRun(20, step)
				if allocs != 0 {
					t.Fatalf("parallel %v step with %d workers allocated %.1f objects, want 0", mode, workers, allocs)
				}
			})
		}
	}
}

func TestConservativeCycleAllocFree(t *testing.T) {
	e, err := NewEngine(allocDesign(), Config{Mode: Conservative})
	if err != nil {
		t.Fatal(err)
	}
	// Run with a live (non-nil) cancellation channel so the per-cycle
	// context check is measured on its real RunContext configuration.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.done = ctx.Done()
	// Warm up: grow the scratch buffers, channel pools and the master's
	// beat log well past what the measured window will touch.
	for i := 0; i < 3000; i++ {
		if err := e.conservativeCycle(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 100; i++ {
			if err := e.conservativeCycle(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state conservative cycles allocated %.1f objects per 100 cycles, want 0", allocs)
	}
}

// TestALSTransitionAllocFreeWorkloadStream runs the same guard over the
// real workload.Stream generator: since its per-burst Data slices are
// pooled (rollback-safely), the full ALS loop — generator included — no
// longer allocates in steady state.
func TestALSTransitionAllocFreeWorkloadStream(t *testing.T) {
	d := allocDesign()
	d.Masters[0].NewGen = func() ip.Generator {
		return workload.NewStream(workload.Window{Lo: 0, Hi: 0x4000}, true,
			amba.BurstIncr8, amba.Size32, 0, 0, 0)
	}
	e, err := NewEngine(d, Config{Mode: ALS})
	if err != nil {
		t.Fatal(err)
	}
	transition := func() {
		leader := e.chooseLeader()
		if leader == nil {
			if err := e.conservativeCycle(); err != nil {
				t.Fatal(err)
			}
			return
		}
		if _, err := e.transition(leader, 1<<30); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		transition()
	}
	allocs := testing.AllocsPerRun(20, transition)
	if allocs != 0 {
		t.Fatalf("ALS transition over workload.Stream allocated %.1f objects, want 0", allocs)
	}
}

// TestBatchedPathsAllocFree pins the zero-alloc property on the
// predicted-quiescence fast path: an idle-heavy gapped stream drives
// the run-ahead batch, the follow-up batch and (in conservative mode)
// the conservative stretch batch, and none of them may allocate in
// steady state.
func TestBatchedPathsAllocFree(t *testing.T) {
	for _, mode := range []Mode{ALS, Conservative} {
		t.Run(mode.String(), func(t *testing.T) {
			d := allocDesign()
			d.Masters[0].NewGen = func() ip.Generator {
				return workload.NewStream(workload.Window{Lo: 0, Hi: 0x4000}, true,
					amba.BurstIncr8, amba.Size32, 0, 48, 0)
			}
			e, err := NewEngine(d, Config{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			e.done = ctx.Done()
			step := func() {
				leader, decl := e.pickLeader()
				e.recordDeclines(decl, 1)
				if leader == nil {
					if err := e.conservativeCycle(); err != nil {
						t.Fatal(err)
					}
					if err := e.batchConservative(1<<30, decl); err != nil {
						t.Fatal(err)
					}
					return
				}
				if _, err := e.transition(leader, 1<<30); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 500; i++ {
				step()
			}
			if e.stats.BatchedCycles == 0 {
				t.Fatal("batched fast path never fired; the guard would prove nothing")
			}
			allocs := testing.AllocsPerRun(20, step)
			if allocs != 0 {
				t.Fatalf("batched %v step allocated %.1f objects, want 0", mode, allocs)
			}
		})
	}
}

// TestRollbackHeavyAllocFree pins the zero-alloc property on the
// rollback-heavy steady state: with every other prediction check
// injected wrong, each step exercises the incremental snapshot ring
// (anchor and delta saves, clean skips), the restore walk and the
// roll-forth replay. Swept over delta cadences including 1 (the
// full-save reference) and the default, none of it may allocate once
// the ring is warm.
func TestRollbackHeavyAllocFree(t *testing.T) {
	for _, cadence := range []int{1, 4, DefaultDeltaCadence} {
		t.Run(fmt.Sprintf("cadence=%d", cadence), func(t *testing.T) {
			d := allocDesign()
			d.Masters[0].NewGen = func() ip.Generator {
				return workload.NewStream(workload.Window{Lo: 0, Hi: 0x4000}, true,
					amba.BurstIncr8, amba.Size32, 0, 0, 0)
			}
			e, err := NewEngine(d, Config{Mode: ALS, Accuracy: 0.5, FaultSeed: 3, DeltaCadence: cadence})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			e.done = ctx.Done()
			transition := func() {
				leader := e.chooseLeader()
				if leader == nil {
					if err := e.conservativeCycle(); err != nil {
						t.Fatal(err)
					}
					return
				}
				if _, err := e.transition(leader, 1<<30); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 500; i++ {
				transition()
			}
			if e.stats.Rollbacks == 0 {
				t.Fatal("no rollbacks; the guard would prove nothing")
			}
			allocs := testing.AllocsPerRun(20, transition)
			if allocs != 0 {
				t.Fatalf("rollback-heavy transition allocated %.1f objects, want 0", allocs)
			}
		})
	}
}

func TestALSTransitionAllocFree(t *testing.T) {
	e, err := NewEngine(allocDesign(), Config{Mode: ALS})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.done = ctx.Done()
	transition := func() {
		leader := e.chooseLeader()
		if leader == nil {
			if err := e.conservativeCycle(); err != nil {
				t.Fatal(err)
			}
			return
		}
		n, err := e.transition(leader, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("transition committed no cycles")
		}
	}
	for i := 0; i < 300; i++ {
		transition()
	}
	allocs := testing.AllocsPerRun(20, transition)
	if allocs != 0 {
		t.Fatalf("clean ALS transition allocated %.1f objects, want 0", allocs)
	}
}
