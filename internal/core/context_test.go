package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Cancellation tests for RunContext: an already-canceled context stops
// the run before any work, and a cancel arriving mid-run lands within
// the cycle loop rather than waiting for the cycle budget.

func TestRunContextPreCanceled(t *testing.T) {
	for _, mode := range []Mode{Conservative, ALS} {
		e, err := NewEngine(allocDesign(), Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rep, err := e.RunContext(ctx, 1000)
		if rep != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: pre-canceled run: rep=%v err=%v, want nil/context.Canceled", mode, rep, err)
		}
		if e.stats.Committed != 0 {
			t.Fatalf("%v: pre-canceled run committed %d cycles", mode, e.stats.Committed)
		}
	}
}

func TestRunContextMidRunCancel(t *testing.T) {
	// A cycle budget large enough that only cancellation can end the run
	// within the test's lifetime.
	const budget = int64(1) << 40
	for _, mode := range []Mode{Conservative, ALS} {
		e, err := NewEngine(allocDesign(), Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		rep, err := e.RunContext(ctx, budget)
		if rep != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: mid-run cancel: rep=%v err=%v, want nil/context.Canceled", mode, rep, err)
		}
		if e.stats.Committed == 0 {
			t.Fatalf("%v: engine made no progress before cancel", mode)
		}
		if e.stats.Committed >= budget {
			t.Fatalf("%v: run completed despite cancel", mode)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("%v: cancel took %v to land", mode, elapsed)
		}
	}
}

func TestRunContextDeadline(t *testing.T) {
	e, err := NewEngine(allocDesign(), Config{Mode: ALS})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rep, err := e.RunContext(ctx, int64(1)<<40)
	if rep != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run: rep=%v err=%v, want nil/context.DeadlineExceeded", rep, err)
	}
}
