package core
