package core

import (
	"testing"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/ip"
	"coemu/internal/perfmodel"
	"coemu/internal/workload"
)

// --- design fixtures -------------------------------------------------

// streamDesign: one write-streaming master, one deterministic memory,
// placed in the given domains. With masterDom==AccDomain and
// slaveDom==SimDomain this is the canonical ALS configuration: data
// flows acc→sim, the accelerator leads.
func streamDesign(masterDom, slaveDom DomainID, waits int, maxXfers int64) Design {
	return Design{
		Masters: []MasterSpec{{
			Name:   "dma",
			Domain: masterDom,
			NewGen: func() ip.Generator {
				return workload.NewStream(workload.Window{Lo: 0x0, Hi: 0x4000}, true,
					amba.BurstIncr8, amba.Size32, 0, 0, maxXfers)
			},
		}},
		Slaves: []SlaveSpec{{
			Name:      "mem",
			Domain:    slaveDom,
			Region:    bus.Region{Lo: 0x0, Hi: 0x8000},
			New:       func() bus.Slave { return ip.NewMemory("mem", waits, waits) },
			WaitFirst: waits, WaitNext: waits,
		}},
	}
}

// duplexDesign mixes directions and domains: a DMA copying between a
// sim-side and an acc-side memory, plus a CPU-like master, plus an IRQ
// peripheral. Exercises leader flips, read barriers and interrupts.
func duplexDesign(seed uint64) Design {
	return Design{
		Masters: []MasterSpec{
			{
				Name:   "dma",
				Domain: AccDomain,
				NewGen: func() ip.Generator {
					return workload.NewDMACopy(
						workload.Window{Lo: 0x0000, Hi: 0x0800},
						workload.Window{Lo: 0x8000, Hi: 0x8800},
						amba.BurstIncr8, 2, 40)
				},
			},
			{
				Name:   "cpu",
				Domain: SimDomain,
				NewGen: func() ip.Generator {
					return workload.NewCPU([]workload.Window{
						{Lo: 0x0000, Hi: 0x0800},
						{Lo: 0x8000, Hi: 0x8800},
					}, 0.5, 6, 60, seed)
				},
			},
		},
		Slaves: []SlaveSpec{
			{
				Name:   "sram",
				Domain: SimDomain,
				Region: bus.Region{Lo: 0x0000, Hi: 0x4000},
				New:    func() bus.Slave { return ip.NewSRAM("sram") },
			},
			{
				Name:      "ddr",
				Domain:    AccDomain,
				Region:    bus.Region{Lo: 0x8000, Hi: 0xC000},
				New:       func() bus.Slave { return ip.NewMemory("ddr", 2, 1) },
				WaitFirst: 2, WaitNext: 1,
			},
			{
				Name:      "irqc",
				Domain:    AccDomain,
				Region:    bus.Region{Lo: 0xF000, Hi: 0xF100},
				New:       func() bus.Slave { return ip.NewIRQPeriph("irqc", 0x1) },
				IRQMask:   0x1,
				WaitFirst: 1, WaitNext: 1,
			},
		},
	}
}

// runBoth executes the reference and the co-emulated system and fails
// the test on any trace divergence.
func runBoth(t *testing.T, d Design, cfg Config, cycles int64) *Report {
	t.Helper()
	cfg.KeepTrace = true
	cfg.CheckProtocol = true
	want, err := RunReference(d, cycles)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rep, err := e.Run(cycles)
	if err != nil {
		t.Fatalf("run (%v): %v", cfg.Mode, err)
	}
	if rep.Cycles != cycles {
		t.Fatalf("committed %d cycles, want %d", rep.Cycles, cycles)
	}
	if int64(len(rep.Trace)) != cycles {
		t.Fatalf("trace has %d cycles, want %d", len(rep.Trace), cycles)
	}
	for i := range want {
		if !rep.Trace[i].Equal(want[i]) {
			t.Fatalf("mode %v: trace diverged at cycle %d:\nref:   %s\nsplit: %s",
				cfg.Mode, i, want[i], rep.Trace[i])
		}
	}
	return rep
}

// --- LOB -------------------------------------------------------------

func TestLOBPushFlushAccounting(t *testing.T) {
	l := NewLOB(32)
	e := Entry{Out: amba.PartialState{ReqMask: 1}, Pred: amba.PartialState{ReqMask: 2}, HasPred: true}
	if !l.Fits(&e) {
		t.Fatal("entry must fit an empty 32-word LOB")
	}
	l.Push(&e)
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
	wantWords := 1 + e.Words()
	if l.Words() != wantWords {
		t.Fatalf("words = %d, want %d", l.Words(), wantWords)
	}
	l.Reset()
	if l.Len() != 0 || l.Flushes() != 1 {
		t.Fatal("reset bookkeeping wrong")
	}
	if l.PeakWords() != wantWords {
		t.Fatalf("peak = %d", l.PeakWords())
	}
}

func TestLOBOverflowPanics(t *testing.T) {
	l := NewLOB(4)
	l.Push(&Entry{Out: amba.PartialState{}, HasPred: false}) // 1+1 words... header + out
	defer func() {
		if recover() == nil {
			t.Fatal("push after final entry must panic")
		}
	}()
	l.Push(&Entry{Out: amba.PartialState{}})
}

func TestLOBDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero depth must panic")
		}
	}()
	NewLOB(0)
}

// --- packets ----------------------------------------------------------

func TestFlushPacketRoundTrip(t *testing.T) {
	entries := []Entry{
		{Out: amba.PartialState{ReqMask: 1, Req: 1, HasWData: true, WData: 7}, Pred: amba.PartialState{ReqMask: 2, HasReply: true, Reply: amba.OkayReady()}, HasPred: true},
		{Out: amba.PartialState{ReqMask: 1, HasAP: true, AP: amba.AddrPhase{Addr: 8, Trans: amba.TransSeq, Size: amba.Size32, Burst: amba.BurstIncr8}}, Pred: amba.PartialState{ReqMask: 2}, HasPred: true},
		{Out: amba.PartialState{ReqMask: 1}},
	}
	pkt := packFlush(nil, entries)
	got, err := unpackFlush(nil, pkt, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d entries", len(got))
	}
	for i := range entries {
		if !got[i].Out.Equal(entries[i].Out) || got[i].HasPred != entries[i].HasPred {
			t.Fatalf("entry %d mismatch", i)
		}
		if entries[i].HasPred && !got[i].Pred.Equal(entries[i].Pred) {
			t.Fatalf("entry %d pred mismatch", i)
		}
	}
}

func TestReportPacketRoundTrip(t *testing.T) {
	actual := amba.PartialState{ReqMask: 3, Req: 1, HasReply: true, Reply: amba.SlaveReply{Ready: true, RData: 0xBEEF}}
	ok, _, got, err := unpackReport(packReport(nil, true, 0, actual), 0)
	if err != nil || !ok || !got.Equal(actual) {
		t.Fatalf("success report: ok=%v err=%v", ok, err)
	}
	ok, idx, got, err := unpackReport(packReport(nil, false, 17, actual), 0)
	if err != nil || ok || idx != 17 || !got.Equal(actual) {
		t.Fatalf("failure report: ok=%v idx=%d err=%v", ok, idx, err)
	}
}

func TestPacketErrors(t *testing.T) {
	if _, err := unpackFlush(nil, nil, 0, 0); err == nil {
		t.Error("empty flush must fail")
	}
	if _, err := unpackFlush(nil, []amba.Word{0}, 0, 0); err == nil {
		t.Error("zero-entry flush must fail")
	}
	if _, _, _, err := unpackReport(nil, 0); err == nil {
		t.Error("empty report must fail")
	}
}

// --- equivalence ------------------------------------------------------

func TestConservativeEquivalence(t *testing.T) {
	rep := runBoth(t, streamDesign(AccDomain, SimDomain, 0, 0), Config{Mode: Conservative}, 400)
	if rep.Stats.Transitions != 0 {
		t.Fatal("conservative mode must not open transitions")
	}
	if rep.Stats.ConservativeCycles != 400 {
		t.Fatalf("conservative cycles = %d", rep.Stats.ConservativeCycles)
	}
	// Two accesses per cycle, the conventional pattern.
	if got := rep.Channel.TotalAccesses(); got != 800 {
		t.Fatalf("accesses = %d, want 800", got)
	}
}

func TestALSEquivalenceStreaming(t *testing.T) {
	rep := runBoth(t, streamDesign(AccDomain, SimDomain, 0, 0), Config{Mode: ALS}, 600)
	if rep.Stats.Transitions == 0 {
		t.Fatal("ALS on a write stream must open transitions")
	}
	if rep.Stats.RunAheadCycles == 0 {
		t.Fatal("no run-ahead cycles")
	}
	if rep.Stats.Mispredicts != 0 {
		t.Fatalf("deterministic design mispredicted %d times", rep.Stats.Mispredicts)
	}
	// The whole point: far fewer channel accesses than 2/cycle.
	if got := rep.Channel.TotalAccesses(); got >= 600 {
		t.Fatalf("accesses = %d, want far fewer than 2x600", got)
	}
}

func TestSLAEquivalenceStreaming(t *testing.T) {
	rep := runBoth(t, streamDesign(SimDomain, AccDomain, 1, 0), Config{Mode: SLA}, 600)
	if rep.Stats.Transitions == 0 {
		t.Fatal("SLA on a write stream must open transitions")
	}
	if rep.Stats.TransitionsByLead[AccDomain] != 0 {
		t.Fatal("SLA must never let the accelerator lead")
	}
}

func TestALSDeclinesWhenDataFlowsBackward(t *testing.T) {
	// Master in acc reads from a sim memory: read data flows sim→acc,
	// so the accelerator cannot lead; ALS degenerates to conservative.
	d := Design{
		Masters: []MasterSpec{{
			Name: "rdr", Domain: AccDomain,
			NewGen: func() ip.Generator {
				return workload.NewStream(workload.Window{Lo: 0, Hi: 0x1000}, false,
					amba.BurstIncr8, amba.Size32, 0, 0, 0)
			},
		}},
		Slaves: []SlaveSpec{{
			Name: "mem", Domain: SimDomain,
			Region: bus.Region{Lo: 0, Hi: 0x8000},
			New:    func() bus.Slave { return ip.NewSRAM("mem") },
		}},
	}
	rep := runBoth(t, d, Config{Mode: ALS}, 300)
	if rep.Stats.RunAheadCycles > rep.Stats.ConservativeCycles {
		t.Fatalf("read-dominated ALS should be mostly conservative: RA=%d C=%d",
			rep.Stats.RunAheadCycles, rep.Stats.ConservativeCycles)
	}
	if rep.Stats.Declines[DeclineReadData] == 0 {
		t.Fatal("expected read-data declines")
	}
}

func TestAutoEquivalenceDuplex(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 11, 42} {
		rep := runBoth(t, duplexDesign(seed), Config{Mode: Auto}, 800)
		if rep.Stats.Transitions == 0 {
			t.Fatalf("seed %d: auto mode never led", seed)
		}
	}
}

func TestAutoLeaderFollowsDataSource(t *testing.T) {
	rep := runBoth(t, duplexDesign(7), Config{Mode: Auto}, 800)
	if rep.Stats.TransitionsByLead[SimDomain] == 0 || rep.Stats.TransitionsByLead[AccDomain] == 0 {
		t.Fatalf("duplex traffic should let both domains lead: %v", rep.Stats.TransitionsByLead)
	}
}

func TestEquivalenceUnderInjectedFaults(t *testing.T) {
	for _, p := range []float64{0.95, 0.8, 0.5, 0.2} {
		rep := runBoth(t, streamDesign(AccDomain, SimDomain, 0, 0),
			Config{Mode: ALS, Accuracy: p, FaultSeed: 99}, 500)
		if rep.Stats.Injected == 0 {
			t.Fatalf("p=%v: no faults injected", p)
		}
		if rep.Stats.Rollbacks == 0 {
			t.Fatalf("p=%v: faults but no rollbacks", p)
		}
		if rep.Stats.RollForthCycles == 0 {
			t.Fatalf("p=%v: rollbacks but no roll-forth", p)
		}
	}
}

func TestEquivalenceUnderOrganicMispredictions(t *testing.T) {
	// The remote memory jitters; the wait model assumes the base
	// profile, so mispredictions arise organically.
	d := streamDesign(AccDomain, SimDomain, 1, 0)
	d.Slaves[0].New = func() bus.Slave { return ip.NewJitterMemory("mem", 1, 2, 31) }
	rep := runBoth(t, d, Config{Mode: ALS}, 600)
	if rep.Stats.Mispredicts == 0 {
		t.Fatal("jittery slave must cause organic mispredictions")
	}
	if rep.Stats.Rollbacks == 0 {
		t.Fatal("mispredictions must cause rollbacks")
	}
}

func TestEquivalenceErrorResponses(t *testing.T) {
	// Stream aimed partly at an unmapped hole: default-slave two-cycle
	// ERRORs cross the domain boundary.
	d := Design{
		Masters: []MasterSpec{{
			Name: "m", Domain: AccDomain,
			NewGen: func() ip.Generator {
				return workload.NewSequence(
					ip.Xfer{Addr: 0x100, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4, Data: []amba.Word{1, 2, 3, 4}},
					ip.Xfer{Addr: 0x9000, Write: true, Size: amba.Size32, Burst: amba.BurstSingle, Data: []amba.Word{5}},
					ip.Xfer{Addr: 0x110, Write: true, Size: amba.Size32, Burst: amba.BurstSingle, Data: []amba.Word{6}},
				)
			},
		}},
		Slaves: []SlaveSpec{{
			Name: "mem", Domain: SimDomain,
			Region: bus.Region{Lo: 0, Hi: 0x1000},
			New:    func() bus.Slave { return ip.NewSRAM("mem") },
		}},
	}
	for _, mode := range []Mode{Conservative, ALS, Auto} {
		runBoth(t, d, Config{Mode: mode}, 60)
	}
}

func TestEquivalenceRetrySlave(t *testing.T) {
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	d.Slaves[0].New = func() bus.Slave { return ip.NewRetryMemory("mem", 0, 5) }
	for _, mode := range []Mode{Conservative, ALS} {
		rep := runBoth(t, d, Config{Mode: mode}, 400)
		if mode == ALS && rep.Stats.Mispredicts == 0 {
			t.Fatal("RETRY responses must defeat the OKAY-only wait model")
		}
	}
}

func TestEquivalenceSplitSlave(t *testing.T) {
	// A SPLIT-capable memory in the simulator, written by an RTL master
	// in the accelerator. SPLIT responses and HSPLITx release pulses
	// cross the domain boundary; the leader's wait model knows nothing
	// about them, so every split costs rollbacks — and the trace must
	// still be cycle-exact.
	d := Design{
		Masters: []MasterSpec{{
			Name: "dma", Domain: AccDomain,
			NewGen: func() ip.Generator {
				return workload.NewStream(workload.Window{Lo: 0, Hi: 0x4000}, true,
					amba.BurstIncr8, amba.Size32, 0, 0, 0)
			},
		}},
		Slaves: []SlaveSpec{{
			Name: "smem", Domain: SimDomain,
			Region:       bus.Region{Lo: 0, Hi: 0x8000},
			New:          func() bus.Slave { return ip.NewSplitMemory("smem", 0, 5, 6) },
			SplitCapable: true,
		}},
	}
	for _, mode := range []Mode{Conservative, ALS, Auto} {
		rep := runBoth(t, d, Config{Mode: mode}, 500)
		if mode != Conservative && rep.Stats.Mispredicts == 0 {
			t.Fatalf("mode %v: SPLIT traffic must defeat the wait model", mode)
		}
	}
}

func TestEquivalenceSplitContention(t *testing.T) {
	// Two masters in different domains; the split slave parks the
	// high-priority one so the low-priority one overtakes — across the
	// domain boundary, under the optimistic protocol.
	d := Design{
		Masters: []MasterSpec{
			{
				Name: "hp", Domain: AccDomain,
				NewGen: func() ip.Generator {
					return workload.NewStream(workload.Window{Lo: 0, Hi: 0x1000}, true,
						amba.BurstIncr8, amba.Size32, 0, 0, 20)
				},
			},
			{
				Name: "lp", Domain: SimDomain,
				NewGen: func() ip.Generator {
					return workload.NewStream(workload.Window{Lo: 0x8000, Hi: 0x9000}, true,
						amba.BurstIncr4, amba.Size32, 0, 0, 20)
				},
			},
		},
		Slaves: []SlaveSpec{
			{
				Name: "smem", Domain: SimDomain,
				Region:       bus.Region{Lo: 0, Hi: 0x8000},
				New:          func() bus.Slave { return ip.NewSplitMemory("smem", 0, 3, 8) },
				SplitCapable: true,
			},
			{
				Name: "sram", Domain: AccDomain,
				Region: bus.Region{Lo: 0x8000, Hi: 0xA000},
				New:    func() bus.Slave { return ip.NewSRAM("sram") },
			},
		},
	}
	for _, mode := range []Mode{Conservative, Auto} {
		runBoth(t, d, Config{Mode: mode}, 600)
	}
}

func TestSplitCapableFlagValidated(t *testing.T) {
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	// Lies about split capability: the slave is a plain Memory.
	d.Slaves[0].SplitCapable = true
	defer func() {
		if recover() == nil {
			t.Fatal("SplitCapable mismatch must panic at build")
		}
	}()
	_, _ = NewEngine(d, Config{})
}

func TestEquivalenceAllModesManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long equivalence sweep")
	}
	for _, mode := range []Mode{Conservative, SLA, ALS, Auto} {
		for _, seed := range []uint64{5, 17, 23} {
			runBoth(t, duplexDesign(seed), Config{Mode: mode}, 500)
		}
	}
}

// --- extensions ---------------------------------------------------------

// readStreamDesign puts the master in the simulator reading from an
// accelerator memory: in ALS the leading accelerator must predict the
// *remote* master's address phase, which is where the burst tracker and
// its extensions act.
func readStreamDesign(gap int) Design {
	return Design{
		Masters: []MasterSpec{{
			Name: "rdr", Domain: SimDomain,
			NewGen: func() ip.Generator {
				return workload.NewStream(workload.Window{Lo: 0, Hi: 0x4000}, false,
					amba.BurstIncr8, amba.Size32, 0, gap, 0)
			},
		}},
		Slaves: []SlaveSpec{{
			Name: "mem", Domain: AccDomain,
			Region: bus.Region{Lo: 0, Hi: 0x8000},
			New:    func() bus.Slave { return ip.NewSRAM("mem") },
		}},
	}
}

func TestPredictBurstStartsExtendsTransitions(t *testing.T) {
	d := readStreamDesign(0)
	base := runBoth(t, d, Config{Mode: ALS}, 600)
	ext := runBoth(t, d, Config{Mode: ALS, PredictBurstStarts: true}, 600)
	// Transitions stay LOB-bound either way; the stride win is that the
	// burst-boundary prediction is now right, eliminating the rollback
	// that base pays roughly once per burst.
	if base.Stats.Rollbacks == 0 {
		t.Fatal("baseline should roll back at burst boundaries (IDLE predicted, NONSEQ driven)")
	}
	if ext.Stats.Rollbacks >= base.Stats.Rollbacks {
		t.Fatalf("stride prediction did not cut burst-boundary rollbacks: %d vs %d",
			ext.Stats.Rollbacks, base.Stats.Rollbacks)
	}
	if ext.Perf() <= base.Perf() {
		t.Fatalf("stride prediction did not improve performance: %.0f vs %.0f cyc/s",
			ext.Perf(), base.Perf())
	}
}

func TestPredictIdleCrossesGaps(t *testing.T) {
	// A gappy read stream: without idle prediction the leader declines
	// at every idle stretch of the remote master; with it the idle
	// cycles ride the run-ahead.
	d := readStreamDesign(5)
	base := runBoth(t, d, Config{Mode: ALS}, 600)
	ext := runBoth(t, d, Config{Mode: ALS, PredictIdle: true}, 600)
	if ext.Stats.RunAheadCycles <= base.Stats.RunAheadCycles {
		t.Fatalf("idle prediction did not extend run-ahead: %d vs %d",
			ext.Stats.RunAheadCycles, base.Stats.RunAheadCycles)
	}
	// Waking from idle costs rollbacks; they must not break equivalence
	// (runBoth already checked) and must actually occur.
	if ext.Stats.Mispredicts == 0 {
		t.Fatal("idle prediction across burst starts must mispredict sometimes")
	}
}

func TestExtensionsEquivalenceMatrix(t *testing.T) {
	for _, seed := range []uint64{3, 9} {
		d := duplexDesign(seed)
		for _, cfg := range []Config{
			{Mode: Auto, PredictIdle: true},
			{Mode: Auto, PredictBurstStarts: true},
			{Mode: Auto, PredictIdle: true, PredictBurstStarts: true},
			{Mode: Auto, PredictIdle: true, PredictBurstStarts: true, Adaptive: true},
		} {
			runBoth(t, d, cfg, 500)
		}
	}
}

func TestAdaptiveGovernorLimitsLowAccuracyLoss(t *testing.T) {
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	const cycles = 4000
	run := func(cfg Config) *Report {
		e, err := NewEngine(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(cycles)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(Config{Mode: ALS, Accuracy: 0.05, FaultSeed: 8})
	adaptive := run(Config{Mode: ALS, Accuracy: 0.05, FaultSeed: 8, Adaptive: true})
	if adaptive.Perf() <= plain.Perf() {
		t.Fatalf("governor did not help at 5%% accuracy: %.0f vs %.0f cyc/s",
			adaptive.Perf(), plain.Perf())
	}
	if adaptive.Stats.ConservativeCycles == 0 {
		t.Fatal("governor never backed off")
	}
	// At high accuracy the governor must stay out of the way.
	good := run(Config{Mode: ALS, Adaptive: true})
	ref := run(Config{Mode: ALS})
	if good.Perf() < 0.95*ref.Perf() {
		t.Fatalf("governor throttled a healthy run: %.0f vs %.0f", good.Perf(), ref.Perf())
	}
}

func TestPaperStrictTransitions(t *testing.T) {
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	strict := runBoth(t, d, Config{Mode: ALS, PaperStrictTransitions: true}, 600)
	loose := runBoth(t, d, Config{Mode: ALS}, 600)
	// Every strict transition opens with a conservative cycle.
	if strict.Stats.ConservativeCycles < strict.Stats.Transitions {
		t.Fatalf("strict mode: %d conservative cycles for %d transitions",
			strict.Stats.ConservativeCycles, strict.Stats.Transitions)
	}
	// The extra cycle per transition costs performance but nothing else.
	if strict.Perf() >= loose.Perf() {
		t.Fatalf("strict %.0f should be slower than loose %.0f", strict.Perf(), loose.Perf())
	}
	// Under fault injection the strict path must stay equivalent too.
	runBoth(t, d, Config{Mode: ALS, PaperStrictTransitions: true, Accuracy: 0.6, FaultSeed: 5}, 500)
}

// TestDESMatchesAnalyticConventional cross-validates the executable
// engine against the closed-form model on the one configuration where
// both are exactly specified: conservative mode.
func TestDESMatchesAnalyticConventional(t *testing.T) {
	for _, simSpeed := range []float64{1e5, 1e6} {
		e, err := NewEngine(streamDesign(AccDomain, SimDomain, 0, 0),
			Config{Mode: Conservative, SimSpeed: simSpeed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		p := perfmodel.Default()
		p.SimSpeed = simSpeed
		want := p.Conventional()
		got := rep.Perf()
		if rel := (got - want) / want; rel > 0.02 || rel < -0.02 {
			t.Fatalf("sim=%v: DES conventional %.1f vs analytic %.1f (%.1f%% off)",
				simSpeed, got, want, 100*rel)
		}
	}
}

// --- performance sanity ------------------------------------------------

func TestPredictiveBeatsConservative(t *testing.T) {
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	e1, err := NewEngine(d, Config{Mode: Conservative})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := e1.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(d, Config{Mode: ALS})
	if err != nil {
		t.Fatal(err)
	}
	als, err := e2.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	gain := als.Perf() / conv.Perf()
	if gain < 2 {
		t.Fatalf("ALS gain over conventional = %.2f, want >= 2 (conv %.0f vs ALS %.0f cyc/s)",
			gain, conv.Perf(), als.Perf())
	}
	t.Logf("conventional %.1f kcyc/s, ALS %.1f kcyc/s, gain %.2fx",
		conv.Perf()/1e3, als.Perf()/1e3, gain)
}

func TestAccuracyDegradesPerformance(t *testing.T) {
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	var prev float64
	for i, p := range []float64{1.0, 0.9, 0.5} {
		e, err := NewEngine(d, Config{Mode: ALS, Accuracy: p, FaultSeed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(3000)
		if err != nil {
			t.Fatal(err)
		}
		perf := rep.Perf()
		if i > 0 && perf >= prev {
			t.Fatalf("perf did not degrade: p=%v gives %.0f >= %.0f", p, perf, prev)
		}
		prev = perf
	}
}

// --- report / config ---------------------------------------------------

func TestEngineRejectsBadInput(t *testing.T) {
	if _, err := NewEngine(Design{}, Config{}); err == nil {
		t.Error("empty design must fail")
	}
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	if _, err := NewEngine(d, Config{SimSpeed: -1}); err == nil {
		t.Error("negative speed must fail")
	}
	e, err := NewEngine(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Error("zero cycles must fail")
	}
}

func TestDesignValidation(t *testing.T) {
	good := streamDesign(AccDomain, SimDomain, 0, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := good
	dup.Slaves = append([]SlaveSpec{}, good.Slaves...)
	dup.Slaves = append(dup.Slaves, SlaveSpec{Name: "dma", Region: bus.Region{Lo: 0x9000, Hi: 0x9100}, New: func() bus.Slave { return ip.NewSRAM("x") }})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate name must fail")
	}
	noGen := good
	noGen.Masters = []MasterSpec{{Name: "m"}}
	if err := noGen.Validate(); err == nil {
		t.Error("missing generator must fail")
	}
}

func TestDomainIDHelpers(t *testing.T) {
	if SimDomain.Other() != AccDomain || AccDomain.Other() != SimDomain {
		t.Fatal("Other() wrong")
	}
	if SimDomain.String() != "sim" || AccDomain.String() != "acc" {
		t.Fatal("String() wrong")
	}
}
