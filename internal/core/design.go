package core

import (
	"fmt"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/ip"
	"coemu/internal/sim"
)

// DomainID identifies one of the two verification domains.
type DomainID uint8

// The two verification domains of the paper's Figure 2.
const (
	// SimDomain is the software simulator executing transaction-level
	// components.
	SimDomain DomainID = 0
	// AccDomain is the hardware accelerator executing RTL components.
	AccDomain DomainID = 1
)

// String returns the domain name.
func (d DomainID) String() string {
	if d == SimDomain {
		return "sim"
	}
	return "acc"
}

// Other returns the opposite domain.
func (d DomainID) Other() DomainID { return 1 - d }

// MasterSpec declares one bus master of a co-emulated design.
type MasterSpec struct {
	Name   string
	Domain DomainID
	// NewGen constructs the master's traffic generator. It is called
	// once per build (the reference build and the split build each get
	// fresh, identically-seeded instances — determinism is what makes
	// the equivalence check meaningful).
	NewGen func() ip.Generator
	// BusyEvery inserts a BUSY cycle before every n-th burst beat.
	BusyEvery int
	// Vars is the component's rollback-variable weight for the
	// store/restore cost model (0 uses a small default).
	Vars int
}

// SlaveSpec declares one bus slave of a co-emulated design.
type SlaveSpec struct {
	Name   string
	Domain DomainID
	Region bus.Region
	// New constructs the slave.
	New func() bus.Slave
	// WaitFirst/WaitNext declare the slave's nominal deterministic wait
	// profile, which configures the remote-side response predictor. For
	// slaves whose real latency differs (jittery memories), the profile
	// is the predictor's best guess and mispredictions ensue — exactly
	// the experiment the paper's accuracy axis abstracts.
	WaitFirst, WaitNext int
	// IRQMask declares interrupt lines the slave owns (it must
	// implement bus.IRQSource if non-zero).
	IRQMask uint32
	// SplitCapable declares that the slave issues SPLIT responses (it
	// must implement bus.SplitSource). The flag exists because each
	// half-bus must know whether the *remote* domain drives HSPLITx
	// lines without instantiating the remote slave.
	SplitCapable bool
	// Vars is the rollback-variable weight (0 uses a small default).
	Vars int
}

// Design is a complete co-emulated SoC description: components, their
// domain placement, and the address map.
type Design struct {
	Masters []MasterSpec
	Slaves  []SlaveSpec
	// OwnsDefault selects the domain that drives default-slave replies
	// (the simulator by default, where the "rest of the platform"
	// conventionally lives).
	OwnsDefault DomainID
}

// defaultVars is the rollback weight assumed for components that do not
// declare one.
const defaultVars = 25

// Validate checks the design for structural problems.
func (d Design) Validate() error {
	if len(d.Masters) == 0 {
		return fmt.Errorf("core: design has no masters")
	}
	if len(d.Masters) > amba.MaxMasters {
		return fmt.Errorf("core: design has %d masters, max %d", len(d.Masters), amba.MaxMasters)
	}
	names := map[string]bool{}
	for _, m := range d.Masters {
		if m.NewGen == nil {
			return fmt.Errorf("core: master %q has no generator", m.Name)
		}
		if m.Domain > AccDomain {
			return fmt.Errorf("core: master %q has invalid domain", m.Name)
		}
		if names[m.Name] {
			return fmt.Errorf("core: duplicate component name %q", m.Name)
		}
		names[m.Name] = true
	}
	var irqSeen uint32
	for _, s := range d.Slaves {
		if s.New == nil {
			return fmt.Errorf("core: slave %q has no constructor", s.Name)
		}
		if s.Domain > AccDomain {
			return fmt.Errorf("core: slave %q has invalid domain", s.Name)
		}
		if names[s.Name] {
			return fmt.Errorf("core: duplicate component name %q", s.Name)
		}
		names[s.Name] = true
		if s.IRQMask >= 1<<amba.MaxIRQLines {
			// The packet header carries MaxIRQLines interrupt bits;
			// higher lines would be silently dropped on the wire and
			// diverge the domains on the first conservative exchange.
			return fmt.Errorf("core: slave %q IRQ mask %#x uses lines above the %d the wire encoding carries", s.Name, s.IRQMask, amba.MaxIRQLines)
		}
		if s.IRQMask&irqSeen != 0 {
			return fmt.Errorf("core: slave %q reuses IRQ lines %x", s.Name, s.IRQMask&irqSeen)
		}
		irqSeen |= s.IRQMask
	}
	if d.OwnsDefault > AccDomain {
		return fmt.Errorf("core: invalid OwnsDefault domain")
	}
	return nil
}

// referenceSystem is the monolithic golden model: the same components on
// a single bus.
type referenceSystem struct {
	bus     *bus.Bus
	tickers []sim.Clocked
	masters []*ip.TrafficMaster
}

// buildReference constructs the monolithic system.
func buildReference(d Design) (*referenceSystem, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	r := &referenceSystem{bus: bus.New("ref")}
	for _, ms := range d.Masters {
		m := ip.NewTrafficMaster(ms.Name, ms.NewGen(), ms.BusyEvery)
		r.masters = append(r.masters, m)
		r.bus.AddMaster(m)
	}
	for _, ss := range d.Slaves {
		s := ss.New()
		r.bus.MapSlave(s, ss.Region, ss.IRQMask)
		if c, ok := s.(sim.Clocked); ok {
			r.tickers = append(r.tickers, c)
		}
	}
	return r, nil
}

// step advances the reference system one cycle.
func (r *referenceSystem) step(cycle int64) amba.CycleState {
	res := r.bus.Step()
	for _, t := range r.tickers {
		t.Tick(cycle)
	}
	return res.State
}

// RunReference executes the monolithic golden model for the given number
// of cycles with the protocol checker attached and returns its MSABS
// trace. Co-emulated runs of the same design must match it cycle for
// cycle — the equivalence invariant of DESIGN.md §7.
func RunReference(d Design, cycles int64) ([]amba.CycleState, error) {
	r, err := buildReference(d)
	if err != nil {
		return nil, err
	}
	var k amba.Checker
	trace := make([]amba.CycleState, 0, cycles)
	for i := int64(0); i < cycles; i++ {
		cs := r.step(i)
		if err := k.Check(cs); err != nil {
			return nil, fmt.Errorf("core: reference run: %w", err)
		}
		trace = append(trace, cs)
	}
	return trace, nil
}
