package core

import (
	"fmt"
	"math"
	"time"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/ip"
	"coemu/internal/rollback"
	"coemu/internal/sim"
	"coemu/internal/vclock"
)

// Domain is one verification domain: a half-bus model (the paper's HBMS
// or HBMA) populated with the components local to the domain, the
// channel-wrapper bookkeeping (predictor, snapshot registry), and the
// domain's cost parameters (per-cycle evaluation time, store/restore
// cost model).
type Domain struct {
	id   DomainID
	bus  *bus.Bus
	pred *remotePredictor
	reg  rollback.Registry

	masters []*ip.TrafficMaster // local masters (for stats)
	tickers []sim.Clocked
	clock   sim.Clock

	cycleCost time.Duration
	timeCat   vclock.Category
	costModel rollback.CostModel

	evaluated bool

	// snap is the domain's reusable transition snapshot. The engine
	// keeps at most one snapshot live per domain (rb_store at the start
	// of each transition, rb_restore at most once before the next
	// store), so each store recycles the previous transition's buffers.
	snap rollback.Snapshot
}

// buildDomain constructs one half of the split system. deltaCadence
// configures the registry's incremental snapshot ring (1 = full saves
// every transition, the pre-delta behavior).
func buildDomain(d Design, id DomainID, cycleCost time.Duration, costModel rollback.CostModel, opts predictorOptions, deltaCadence int) *Domain {
	dom := &Domain{
		id:        id,
		bus:       bus.New(id.String()),
		cycleCost: cycleCost,
		costModel: costModel,
	}
	dom.reg.SetDeltaCadence(deltaCadence)
	if id == SimDomain {
		dom.timeCat = vclock.Sim
	} else {
		dom.timeCat = vclock.Acc
	}
	dom.bus.SetOwnsDefault(d.OwnsDefault == id)

	for _, ms := range d.Masters {
		if ms.Domain == id {
			gen := ms.NewGen()
			m := ip.NewTrafficMaster(ms.Name, gen, ms.BusyEvery)
			dom.masters = append(dom.masters, m)
			dom.bus.AddMaster(m)
			vars := ms.Vars
			if vars == 0 {
				vars = defaultVars
			}
			dom.reg.Register(ms.Name, m, vars)
			if g, ok := gen.(rollback.Snapshotter); ok {
				dom.reg.Register(ms.Name+".gen", g, 1)
			}
		} else {
			dom.bus.AddExternalMaster(ms.Name)
		}
	}

	waitProfiles := make(map[int][2]int)
	var remoteIRQ uint32
	remoteSplit := false
	for _, ss := range d.Slaves {
		if ss.Domain == id {
			s := ss.New()
			if _, isSplit := s.(bus.SplitSource); isSplit != ss.SplitCapable {
				panic(fmt.Sprintf("core: slave %q: SplitCapable=%v but implementation says %v",
					ss.Name, ss.SplitCapable, isSplit))
			}
			dom.bus.MapSlave(s, ss.Region, ss.IRQMask)
			if j, ok := s.(ip.Journaler); ok {
				// Domains snapshot once per transition and restore at
				// most once, exactly the discipline journal mode
				// requires; O(1) saves beat O(footprint) map copies.
				j.SetJournaling(true)
			}
			if snap, ok := s.(rollback.Snapshotter); ok {
				vars := ss.Vars
				if vars == 0 {
					vars = defaultVars
				}
				dom.reg.Register(ss.Name, snap, vars)
			}
			if c, ok := s.(sim.Clocked); ok {
				dom.tickers = append(dom.tickers, c)
			}
		} else {
			idx := dom.bus.MapExternalSlave(ss.Name, ss.Region)
			waitProfiles[idx] = [2]int{ss.WaitFirst, ss.WaitNext}
			remoteIRQ |= ss.IRQMask
			if ss.SplitCapable {
				remoteSplit = true
			}
		}
	}

	dom.pred = newRemotePredictor(dom.bus, d.OwnsDefault == id, waitProfiles, opts)
	dom.pred.setRemoteIRQMask(remoteIRQ)
	if remoteSplit {
		dom.pred.setRemoteSplitMask((1 << uint(dom.bus.Masters())) - 1)
	}
	dom.reg.Register("bus", dom.bus, 5)
	dom.reg.Register("predictor", dom.pred, 5)
	dom.reg.Register("clock", &dom.clock, 1)
	return dom
}

// ID returns the domain identity.
func (d *Domain) ID() DomainID { return d.id }

// Bus returns the half-bus model.
func (d *Domain) Bus() *bus.Bus { return d.bus }

// Vars returns the domain's rollback-variable count.
func (d *Domain) Vars() int { return d.reg.Vars() }

// Now returns the number of committed target cycles in this domain.
func (d *Domain) Now() int64 { return d.clock.Now() }

// Masters returns the domain's local masters.
func (d *Domain) Masters() []*ip.TrafficMaster { return d.masters }

// Evaluate computes the domain's contribution for the upcoming cycle
// and charges one cycle of domain time to the ledger.
func (d *Domain) Evaluate(ledger *vclock.Ledger) amba.PartialState {
	var p amba.PartialState
	d.EvaluateInto(ledger, &p)
	return p
}

// EvaluateInto is Evaluate writing the contribution through dst — the
// engine deposits it straight into a LOB entry.
func (d *Domain) EvaluateInto(ledger *vclock.Ledger, dst *amba.PartialState) {
	if d.evaluated {
		panic(fmt.Sprintf("core: domain %s: Evaluate without Commit", d.id))
	}
	ledger.Charge(d.timeCat, d.cycleCost)
	d.evaluated = true
	d.bus.EvaluateInto(dst)
}

// Commit completes the cycle with the given remote contribution (real or
// predicted), ticks the domain's clocked components, advances the
// predictor's observation stream, and returns the full merged MSABS
// record.
func (d *Domain) Commit(remote amba.PartialState) amba.CycleState {
	return *d.CommitFrom(&remote)
}

// CommitFrom is Commit reading the remote contribution in place; the
// returned record points into the bus-owned result, valid until the
// next Commit.
func (d *Domain) CommitFrom(remote *amba.PartialState) *amba.CycleState {
	if !d.evaluated {
		panic(fmt.Sprintf("core: domain %s: Commit without Evaluate", d.id))
	}
	d.evaluated = false
	d.pred.StashDataPhase()
	res := d.bus.CommitFrom(remote)
	cycle := d.clock.Advance()
	for _, t := range d.tickers {
		t.Tick(cycle)
	}
	d.pred.Observe(&res.State, remote)
	return &res.State
}

// Predict returns the predicted remote contribution for the upcoming
// cycle, or the reason no prediction is possible. Predict is legal both
// before and after Evaluate: it touches only registered bus state.
func (d *Domain) Predict() (amba.PartialState, DeclineReason) {
	return d.pred.Predict()
}

// PredictInto is Predict writing the prediction through dst (zeroed on
// decline).
func (d *Domain) PredictInto(dst *amba.PartialState) DeclineReason {
	return d.pred.PredictInto(dst)
}

// Snapshot captures the whole domain (components, generators, bus,
// predictor, clock) and charges the store cost. The capture is
// incremental under the registry's delta cadence — periodic full
// snapshots anchor a ring of dirty-component deltas — and recycles the
// buffers of previous Snapshot calls: only the most recent one may
// still be restored, exactly the leader's rollback discipline. The
// modeled store cost is charged identically whatever the host copies:
// the emulated hardware shadows its full register state either way.
func (d *Domain) Snapshot(ledger *vclock.Ledger, vars int) rollback.Snapshot {
	if d.evaluated {
		panic(fmt.Sprintf("core: domain %s: snapshot mid-cycle", d.id))
	}
	ledger.Charge(vclock.Store, d.costModel.StoreCost(vars))
	d.reg.SaveIncremental(&d.snap)
	return d.snap
}

// Rollback restores a snapshot and charges the restore cost.
func (d *Domain) Rollback(ledger *vclock.Ledger, vars int, s rollback.Snapshot) {
	if d.evaluated {
		// A leader waiting in Get-response has an outstanding Evaluate
		// for the final cycle; rolling back cancels it.
		d.evaluated = false
	}
	ledger.Charge(vclock.Restore, d.costModel.RestoreCost(vars))
	d.reg.Restore(s)
}

// LocalIRQMask returns the interrupt lines owned by this domain.
func (d *Domain) LocalIRQMask() uint32 { return d.bus.LocalIRQMask() }

// QuiescentCycles reports for how many upcoming cycles the domain is
// guaranteed, from ground truth, to evaluate an inactive contribution
// and evolve by pure counter advances only: the half-bus is at an idle
// fixed point, every local master is provably idle (gap countdown or
// exhausted generator), and every clocked component can prove its own
// inactivity through sim.Quiescible. Components that cannot prove it
// (a Clocked slave without Quiescible) pin the bound to 0, so the
// engine single-steps rather than guesses. Slaves that act only when
// addressed (memories, jitter/retry/error models) need no say: with no
// data phase in flight the bus never calls them.
//
// The bound is what the predicted-quiescence fast path trades on: for
// n <= QuiescentCycles cycles with an inactive remote contribution,
// Evaluate/Commit rounds are exact repetitions and AdvanceQuiescent(n)
// commits them in one step.
func (d *Domain) QuiescentCycles() int64 {
	if d.evaluated || !d.bus.Quiescent() {
		return 0
	}
	n := int64(math.MaxInt64)
	for _, m := range d.masters {
		if q := m.QuiescentCycles(); q < n {
			n = q
			if n == 0 {
				return 0
			}
		}
	}
	for _, t := range d.tickers {
		qt, ok := t.(sim.Quiescible)
		if !ok {
			return 0
		}
		if q := qt.QuiescentFor(); q < n {
			n = q
			if n == 0 {
				return 0
			}
		}
	}
	return n
}

// PredictionStableCycles reports for how many upcoming cycles the
// domain's remote predictor keeps its current Predict outcome, given
// only idle observations (see remotePredictor.PredictStableFor).
func (d *Domain) PredictionStableCycles() int64 {
	return d.pred.PredictStableFor()
}

// AdvanceQuiescent commits n quiescent cycles in one step: n cycles of
// domain time charged to the ledger, the clock, every master's gap
// countdown, every clocked component and the predictor's idle
// bookkeeping advanced by n — bit-identical to n Evaluate/Commit
// rounds against the inactive remote contribution the caller proved.
// Callers must keep n within QuiescentCycles() (and, when the domain's
// own predictions are being consumed, PredictionStableCycles()).
func (d *Domain) AdvanceQuiescent(ledger *vclock.Ledger, n int64) {
	ledger.ChargeN(d.timeCat, d.cycleCost, n)
	for _, m := range d.masters {
		m.SkipIdle(n)
	}
	for _, t := range d.tickers {
		t.(sim.Quiescible).SkipQuiescent(n)
	}
	d.clock.AdvanceN(n)
	d.bus.SkipQuiescent(n)
	d.pred.SkipIdle(n)
}
