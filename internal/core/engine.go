// Package core implements the paper's contribution: the predictive
// packetizing channel-usage scheme for transaction-level hardware/
// software co-emulation.
//
// An Engine owns the two verification domains (each a half-bus model
// with its local components), the cost-accounted channel between them,
// and the channel-wrapper protocol: conservative cycle-by-cycle
// synchronization, and optimistic transitions consisting of the paper's
// four steps — Run-Ahead (leader commits cycles against predicted
// lagger responses, depositing outputs into the Leader Output Buffer),
// Follow-Up (lagger replays the flushed cycles, checking each
// prediction), and on a misprediction RollBack and Roll-Forth (leader
// restores its pre-transition state and replays to the lagger's
// progress point using the recorded values).
//
// Execution is deterministic — sequential by default, and under
// Config.Workers > 1 parallel across a small worker pool with
// bit-identical reports (see parallel.go for the ownership
// discipline); domain and channel time are charged to a virtual wall
// clock whose total defines the "simulation performance" metric of the
// paper's Table 2 and Figure 4.
//
// # Predicted-quiescence cycle batching
//
// On the host side the engine batches provably repetitive cycles: when
// ground truth (idle masters, quiet peripherals, a half-bus at an idle
// fixed point — Domain.QuiescentCycles) and the predictor
// (remotePredictor.PredictStableFor) together guarantee that the next
// K cycles repeat the one just committed, the engine commits them in
// one step — a single batched ledger charge, clock advance and gap
// countdown instead of K Evaluate/Commit rounds. The fast path exists
// in all three per-cycle loops (conservative stretches, the leader's
// run-ahead, the lagger's follow-up), never crosses a transition
// boundary (so snapshot cadence and rollback granularity are
// unchanged), and replicates every modeled metric bit for bit;
// Config.CycleBatch caps the batch and 1 disables it. See
// ARCHITECTURE.md for the full walk-through.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"coemu/internal/amba"
	"coemu/internal/channel"
	"coemu/internal/device"
	"coemu/internal/faultplan"
	"coemu/internal/par"
	"coemu/internal/predict"
	"coemu/internal/rollback"
	"coemu/internal/stats"
	"coemu/internal/trace"
	"coemu/internal/vclock"
)

// Mode selects the synchronization scheme.
type Mode uint8

// Operating modes. The paper evaluates Conservative (the baseline), SLA
// and ALS; Auto is the dynamic mode of §3 item 4, choosing the leader
// per transition from the direction of data flow.
const (
	Conservative Mode = iota
	SLA               // Simulator Leading Accelerator
	ALS               // Accelerator Leading Simulator
	Auto
)

// String returns the mode mnemonic.
func (m Mode) String() string {
	switch m {
	case Conservative:
		return "conservative"
	case SLA:
		return "SLA"
	case ALS:
		return "ALS"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes an engine run.
type Config struct {
	// Mode selects the synchronization scheme. Default Conservative.
	Mode Mode
	// SimSpeed and AccSpeed are the domain evaluation rates in target
	// cycles per second. The paper's Table 2 uses 1,000 kcycles/s and
	// 10 Mcycles/s. Defaults: 1e6 and 1e7.
	SimSpeed, AccSpeed float64
	// LOBDepth is the Leader Output Buffer capacity in 32-bit words
	// (the paper's Table 2 uses 64). Default 64.
	LOBDepth int
	// Stack is the channel transport model. Default device.IPROVE().
	Stack *device.Stack
	// SimCost/AccCost are the store/restore cost models. Defaults:
	// rollback.SoftwareCost() and rollback.HardwareCost().
	SimCost, AccCost *rollback.CostModel
	// RollbackVars, when positive, overrides the rollback-variable
	// count used for store/restore pricing (the paper assumes 1000).
	// Zero prices the actual registered state.
	RollbackVars int
	// Accuracy, when in [0,1), activates the fault injector: each
	// checked prediction is additionally declared wrong with
	// probability 1-Accuracy, pinning the paper's accuracy axis.
	// Accuracy 1 (default via NaN-free zero value handling: set it
	// explicitly) runs with organic prediction accuracy only.
	Accuracy float64
	// FaultSeed seeds the injector.
	FaultSeed uint64
	// KeepTrace records the merged MSABS trace for equivalence checks.
	KeepTrace bool
	// CheckProtocol attaches the AHB protocol checker to the committed
	// trace stream.
	CheckProtocol bool

	// PredictIdle is an extension beyond the paper: idle remote masters
	// are predicted to stay idle, so leaders run ahead through bus-idle
	// stretches and pay a rollback when the master wakes.
	PredictIdle bool
	// PredictBurstStarts is an extension beyond the paper: the next
	// burst start of a remote master is predicted by stride
	// extrapolation, letting streaming leaders cross burst boundaries
	// without synchronizing.
	PredictBurstStarts bool
	// PaperStrictTransitions reproduces the paper's P-5/P-6 sequence
	// exactly: each transition opens with one conservative cycle, with
	// the rollback state stored at its end ("This is to store the
	// state of leader before taking 'optimistic' operations"), and a
	// transition whose prediction fails immediately afterwards wastes
	// the store (footnote 6). Off by default: snapshotting directly at
	// the sync point is behaviorally identical and one cycle cheaper.
	PaperStrictTransitions bool
	// DeltaCadence sets the incremental-snapshot cadence of the
	// per-transition rollback store: every DeltaCadence-th store is a
	// full capture of the leader's components (a ring anchor), and the
	// stores between anchors capture only components whose state
	// actually moved, as dirty-tracked deltas. It is a host-side knob:
	// the modeled store/restore costs (rollback.CostModel) are charged
	// identically for every setting, so modeled metrics, stats and
	// traces are bit-identical whatever the cadence. 0 selects
	// DefaultDeltaCadence; 1 disables delta saving (every store full,
	// exactly the pre-delta behavior).
	DeltaCadence int
	// CycleBatch caps the predicted-quiescence fast path: when ground
	// truth (idle masters, quiet peripherals, an idle bus fixed point)
	// and the predictor together prove that the next cycles are exact
	// repetitions of the one just committed, the engine commits up to
	// CycleBatch of them per step in one batched advance instead of
	// cycle-by-cycle calls. Modeled metrics are bit-identical for every
	// setting — the knob trades host speed against cancellation
	// granularity (a cancel lands within one batch instead of one
	// cycle). 0 selects DefaultCycleBatch; 1 disables batching.
	CycleBatch int
	// WirePackets forces every channel packet through the amba wire
	// codec (pack on send, unpack on receive) even though both
	// endpoints live in this process. By default the engine uses the
	// channel's loopback accounting — identical modeled cost and
	// statistics, no host-side serialization round trip. The two paths
	// produce bit-identical reports; differential tests pin it.
	WirePackets bool
	// ChannelFaults, when non-nil, wraps the channel endpoints with
	// seeded fault injection (delay jitter, duplication, bit
	// corruption — see faultplan.ChannelFault) and implies WirePackets:
	// faults only make sense on materialized packets. Injection is
	// host-side only — a run that survives its faults produces the
	// bit-identical report of a fault-free run; corruption surfaces as
	// a channel.ErrFrameCorrupt run error.
	ChannelFaults *faultplan.ChannelFault
	// ChannelFaultSeed seeds the channel fault injection stream.
	ChannelFaultSeed uint64
	// Transport, when non-nil, supplies the physical packet transport
	// for the wire path and implies WirePackets. This is how a domain
	// pair splits across processes: each side runs the full engine with
	// a mirrored remote transport (e.g. tcpchan) that ships the
	// authoritative direction over a socket. Transports carry bits only
	// — the engine still charges every access to its own ledger, so the
	// modeled run is bit-identical to the in-process one. When
	// ChannelFaults is also set, the fault endpoint wraps this
	// transport.
	Transport channel.Transport
	// Adaptive enables the dynamic mode governor (the paper's §3 item 4
	// "dynamic decisions among SLA, ALS and conservative operating
	// modes"): when the recent misprediction rate exceeds
	// AdaptiveThreshold the engine falls back to conservative cycles,
	// probing optimism again as the estimate decays.
	Adaptive bool
	// AdaptiveThreshold is the misprediction-rate EWMA above which the
	// governor forces conservative operation. Default 0.35.
	AdaptiveThreshold float64
	// Tracer, when non-nil, records cycle-granular protocol events
	// (run-ahead spans, mispredictions, rollbacks, batch commits,
	// channel flushes) into a ring buffer for post-run export. It is a
	// host-side observability hook: the modeled run is bit-identical
	// with and without it, recording never allocates, and a nil Tracer
	// costs one pointer check per event site.
	Tracer *trace.Recorder
	// Workers sets the host parallelism of the cycle loop. 1 (the
	// default) is the sequential engine. Above 1 the engine runs the
	// two domains' evaluate/commit steps on separate goroutines within
	// each conservative cycle and pipelines the leader's run-ahead with
	// the lagger's follow-up within each transition; at 4 and above it
	// additionally fans each bus's master drives across a lane pair.
	// It is a host-side knob exactly like CycleBatch and DeltaCadence:
	// reports are bit-identical for every setting (every cross-thread
	// effect is either owner-partitioned state or a commutative sum —
	// see the parallel cycle-loop section of ARCHITECTURE.md), so the
	// spec layer excludes it from the canonical hash. The engine never
	// clamps it to GOMAXPROCS: determinism at every width is part of
	// the contract, and the differential CI matrix runs Workers=4 at
	// GOMAXPROCS=1 to prove it.
	Workers int
}

// DefaultCycleBatch is the predicted-quiescence batch cap used when
// Config.CycleBatch is zero. One LOB worth of cycles is a natural
// step: run-ahead batches are LOB-bounded anyway, and conservative
// stretches re-probe quiescence (and cancellation) every 64 cycles.
const DefaultCycleBatch = 64

// DefaultDeltaCadence is the incremental-snapshot cadence used when
// Config.DeltaCadence is zero: one full capture anchors fifteen delta
// saves. Anchors bound the ring the restore walk replays; past ~16 the
// skip savings flatten while the ring's memory footprint keeps
// growing.
const DefaultDeltaCadence = 16

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.SimSpeed == 0 {
		c.SimSpeed = 1e6
	}
	if c.AccSpeed == 0 {
		c.AccSpeed = 1e7
	}
	if c.LOBDepth == 0 {
		c.LOBDepth = 64
	}
	if c.Stack == nil {
		s := device.IPROVE()
		c.Stack = &s
	}
	if c.SimCost == nil {
		m := rollback.SoftwareCost()
		c.SimCost = &m
	}
	if c.AccCost == nil {
		m := rollback.HardwareCost()
		c.AccCost = &m
	}
	if c.Accuracy == 0 {
		c.Accuracy = 1
	}
	if c.AdaptiveThreshold == 0 {
		c.AdaptiveThreshold = 0.35
	}
	if c.CycleBatch == 0 {
		c.CycleBatch = DefaultCycleBatch
	}
	if c.DeltaCadence == 0 {
		c.DeltaCadence = DefaultDeltaCadence
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// maxPartialWords is the wire-size ceiling of one amba.PartialState
// (header + address/control + write data + reply + split word), used to
// reserve LOB room for the final prediction-less entry.
const maxPartialWords = 7

// minLOBDepth is the smallest usable LOB: the framing word plus one
// worst-case bare entry. The paper's smallest evaluated depth is 8.
const minLOBDepth = 1 + maxPartialWords

// Stats collects the engine's behavioral counters.
type Stats struct {
	Committed          int64
	ConservativeCycles int64
	Transitions        int64
	RunAheadCycles     int64 // cycles committed optimistically by a leader
	FollowUpCycles     int64 // cycles committed by laggers
	RollForthCycles    int64 // leader cycles re-executed after rollback
	Rollbacks          int64
	Stores             int64
	Restores           int64
	ChecksTotal        int64
	Mispredicts        int64 // organic + injected
	Injected           int64
	TransitionsByLead  [2]int64
	Declines           map[DeclineReason]int64

	// BatchedCycles counts domain-cycle advances taken through the
	// predicted-quiescence fast path (batched steps rather than single
	// Evaluate/Commit rounds). Leader run-ahead and lagger follow-up
	// count separately, so a target cycle batched on both sides
	// contributes twice and the total can exceed Committed. It is a
	// host-side diagnostic: modeled metrics are bit-identical whatever
	// its value, so the service report view deliberately excludes it.
	BatchedCycles int64
}

// Report is the outcome of an engine run.
type Report struct {
	Mode    Mode
	Cycles  int64
	Ledger  vclock.Ledger
	Stats   Stats
	Channel channel.Stats
	Trace   []amba.CycleState // nil unless Config.KeepTrace

	// LOBPeakWords is the high-water mark of the leader output buffer.
	LOBPeakWords int
	// TransitionLengths is the distribution of committed cycles per
	// transition; RollForthLengths the distribution of replay lengths.
	TransitionLengths *stats.Hist
	RollForthLengths  *stats.Hist
}

// Perf returns the headline metric: target cycles per second of modeled
// wall-clock time.
func (r *Report) Perf() float64 { return r.Ledger.CyclesPerSecond(r.Cycles) }

// Engine drives one co-emulation session.
type Engine struct {
	cfg     Config
	domains [2]*Domain
	ch      *channel.Channel
	// tr is the physical transport every wire-path packet travels
	// through: a Loopback ring by default, a Queues transport under the
	// fault endpoint, or an injected remote transport
	// (Config.Transport). nil unless WirePackets — the loopback
	// accounting path materializes no packets at all. Transports carry
	// bits only; the engine charges all channel economics through e.ch
	// explicitly, so stats and ledger are identical across transports.
	tr      channel.Transport
	ledger  vclock.Ledger
	lob     *LOB
	inject  *predict.FaultInjector
	stats   Stats
	checker amba.Checker
	trace   []amba.CycleState

	transLen *stats.Hist
	rollLen  *stats.Hist

	// failEWMA estimates the recent misprediction rate for the
	// adaptive governor.
	failEWMA float64

	// Scratch buffers reused across cycles and transitions so the
	// steady-state loop is allocation-free. packBuf backs every outbound
	// Pack (the channel copies payloads into its own pooled buffers, so
	// one scratch serves all sends); preds and flushEnt are live only
	// within a single transition.
	packBuf  []amba.Word
	preds    []amba.PartialState
	flushEnt []Entry

	// rxBuf holds the decoded payload of the most recent wire-codec
	// receive per direction (both directions can be in flight within
	// one conservative cycle). predBuf is the scratch for leader-choice
	// probes, whose predicted value is discarded.
	rxBuf   [2]amba.PartialState
	predBuf amba.PartialState

	// consOut and consFull hold the most recent conservative cycle's
	// per-domain contributions and merged state — the template a
	// batched conservative stretch repeats (and the payload sizes its
	// channel accounting replicates).
	consOut  [2]amba.PartialState
	consFull amba.CycleState

	// done is the cancellation channel of the active RunContext call
	// (nil outside one, and for plain Run — a nil channel is never
	// ready, so the per-cycle check costs one non-blocking select).
	done <-chan struct{}

	// pool is the cycle-loop worker pool of a Workers>1 engine, live
	// only inside an active RunContext (startWorkers/stopWorkers own
	// the goroutine lifecycle, so an engine that never runs leaks
	// nothing). par is the preallocated cross-goroutine state of the
	// parallel paths; see parallel.go for the ownership discipline.
	pool *par.Pool
	par  parState

	// consRunStart and consRunN coalesce contiguous conservative cycles
	// into one trace span: per-cycle events would flood the tracer ring
	// during long conservative stretches. The open span is flushed when
	// a transition starts or the run ends. Only maintained with a
	// tracer attached.
	consRunStart int64
	consRunN     int64
}

// errCanceled is the engine-internal cancellation sentinel. The cycle
// loop returns this preallocated error so checking for cancellation
// never allocates; RunContext translates it to the context's own error.
var errCanceled = errors.New("core: run canceled")

// canceled reports whether the active run's context has been canceled.
func (e *Engine) canceled() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// runErr maps the engine-internal cancellation sentinel back to the
// run context's error; every other failure passes through unchanged.
func (e *Engine) runErr(ctx context.Context, err error) error {
	if errors.Is(err, errCanceled) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}

// EWMA constants of the adaptive governor: per-check blending and the
// per-conservative-cycle decay that lets the engine probe optimism again
// after backing off.
const (
	ewmaBlend = 0.05
	ewmaDecay = 0.995
)

// NewEngine builds the split system for a design.
func NewEngine(d Design, cfg Config) (*Engine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.SimSpeed <= 0 || cfg.AccSpeed <= 0 {
		return nil, fmt.Errorf("core: non-positive domain speed")
	}
	if cfg.LOBDepth < minLOBDepth {
		return nil, fmt.Errorf("core: LOB depth %d words < minimum %d (one framing word plus one worst-case entry)", cfg.LOBDepth, minLOBDepth)
	}
	if cfg.CycleBatch < 1 {
		return nil, fmt.Errorf("core: cycle batch %d < 1 (0 selects the default, 1 disables batching)", cfg.CycleBatch)
	}
	if cfg.DeltaCadence < 1 {
		return nil, fmt.Errorf("core: delta cadence %d < 1 (0 selects the default, 1 disables delta snapshots)", cfg.DeltaCadence)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: workers %d < 1 (0 selects the default, 1 runs sequentially)", cfg.Workers)
	}
	if cfg.ChannelFaults != nil {
		if err := (&faultplan.Plan{Channel: cfg.ChannelFaults}).Validate(); err != nil {
			return nil, err
		}
		cfg.WirePackets = true
	}
	if cfg.Transport != nil {
		cfg.WirePackets = true
	}
	e := &Engine{cfg: cfg, lob: NewLOB(cfg.LOBDepth)}
	e.ch = channel.New(*cfg.Stack, &e.ledger)
	e.tr = cfg.Transport
	if e.tr == nil && cfg.WirePackets {
		if cfg.ChannelFaults != nil {
			// The fault endpoint below reorders and drops physical
			// frames; the general queue absorbs that, the bounded
			// loopback ring would not.
			e.tr = channel.NewQueues()
		} else {
			e.tr = channel.NewLoopback()
		}
	}
	if cfg.ChannelFaults != nil {
		e.tr = channel.NewFaultEndpoint(e.tr, cfg.ChannelFaults, cfg.ChannelFaultSeed)
	}
	simCyc := time.Duration(1e9 / cfg.SimSpeed)
	accCyc := time.Duration(1e9 / cfg.AccSpeed)
	opts := predictorOptions{Idle: cfg.PredictIdle, Starts: cfg.PredictBurstStarts}
	e.domains[SimDomain] = buildDomain(d, SimDomain, simCyc, *cfg.SimCost, opts, cfg.DeltaCadence)
	e.domains[AccDomain] = buildDomain(d, AccDomain, accCyc, *cfg.AccCost, opts, cfg.DeltaCadence)
	if cfg.Accuracy < 1 {
		e.inject = predict.NewFaultInjector(cfg.Accuracy, cfg.FaultSeed)
	}
	e.stats.Declines = make(map[DeclineReason]int64)
	e.transLen = stats.NewHist()
	e.rollLen = stats.NewHist()
	return e, nil
}

// Domain returns one of the two domains (for inspection in tests).
func (e *Engine) Domain(id DomainID) *Domain { return e.domains[id] }

// vars returns the rollback-variable count used for pricing stores and
// restores of domain d.
func (e *Engine) vars(d *Domain) int {
	if e.cfg.RollbackVars > 0 {
		return e.cfg.RollbackVars
	}
	return d.Vars()
}

// dirFrom returns the channel direction for traffic sent by domain d.
func dirFrom(d DomainID) channel.Dir {
	if d == SimDomain {
		return channel.SimToAcc
	}
	return channel.AccToSim
}

// commitTrace records a committed cycle in the merged trace stream.
func (e *Engine) commitTrace(cs *amba.CycleState) error {
	return e.commitTraceN(cs, 1)
}

// commitTraceN records n repetitions of a committed cycle — the
// batched counterpart of commitTrace for quiescent stretches, whose
// every cycle merges to the same state. The protocol checker still
// sees one Check per cycle, and the kept trace grows by n identical
// records, exactly as n single commits would leave them.
func (e *Engine) commitTraceN(cs *amba.CycleState, n int64) error {
	if e.cfg.CheckProtocol {
		for i := int64(0); i < n; i++ {
			if err := e.checker.Check(*cs); err != nil {
				return fmt.Errorf("core: committed trace: %w", err)
			}
		}
	}
	if e.cfg.KeepTrace {
		for i := int64(0); i < n; i++ {
			e.trace = append(e.trace, *cs)
		}
	}
	e.stats.Committed += n
	return nil
}

// traceEvent records one protocol event when a tracer is attached. The
// nil check is the entire disabled-path cost: the event is built on the
// caller's stack and Record never allocates.
func (e *Engine) traceEvent(ev trace.Event) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(ev)
	}
}

// noteConservative extends the open conservative trace span by n cycles
// committed at target position start, opening a new span when the
// stretch is not contiguous with the open one.
func (e *Engine) noteConservative(start, n int64) {
	if e.cfg.Tracer == nil {
		return
	}
	if e.consRunN > 0 && e.consRunStart+e.consRunN == start {
		e.consRunN += n
		return
	}
	e.flushConsTrace()
	e.consRunStart, e.consRunN = start, n
}

// flushConsTrace emits the open conservative span, if any.
func (e *Engine) flushConsTrace() {
	if e.consRunN > 0 {
		e.cfg.Tracer.Record(trace.Event{
			Cycle: e.consRunStart, N: e.consRunN,
			Kind: trace.EvConservative, Domain: trace.NoDomain,
		})
	}
	e.consRunN = 0
}

// inactivePartial reports whether a per-cycle contribution is
// inactive: no bus request, no write data, no slave reply, no split
// release and at most an IDLE address phase. Committing an inactive
// remote against a quiescent local domain leaves every registered bus
// state except the cycle counter unchanged — the fixed point the
// predicted-quiescence batching repeats. Interrupt lines may hold any
// constant value: nothing in the fabric reacts to a held line. The
// pointer receiver keeps the per-cycle probe copy-free.
func inactivePartial(p *amba.PartialState) bool {
	return p.Req == 0 && !p.HasWData && !p.HasReply && p.Split == 0 &&
		(!p.HasAP || p.AP.Trans == amba.TransIdle)
}

// sendPartial ships one domain contribution across the channel. Every
// path charges the access at the packed payload size through e.ch — the
// transport only moves bits. The default accounting path materializes
// no packet (the engine is both endpoints and already holds the value);
// WirePackets forces the codec round trip through e.tr.
func (e *Engine) sendPartial(d channel.Dir, p *amba.PartialState) error {
	e.ch.Account(d, p.PackedWords())
	if !e.cfg.WirePackets {
		return nil
	}
	e.packBuf = p.Pack(e.packBuf[:0])
	return e.tr.Send(d, e.packBuf)
}

// recvPartial yields the contribution shipped with sendPartial. sent
// is the value the in-process sender handed over; irqMask is the
// receiver's static configuration for the sender's interrupt lines.
// The loopback path returns sent unchanged — the wire codec
// round-trips every packable state losslessly (design validation
// bounds masters and IRQ lines to the header's eight bits), which the
// wire-codec differential test pins end to end.
func (e *Engine) recvPartial(d channel.Dir, sent *amba.PartialState, irqMask uint32) (*amba.PartialState, error) {
	if !e.cfg.WirePackets {
		return sent, nil
	}
	pkt, err := e.tr.Recv(d)
	if err != nil {
		return nil, err
	}
	p, _, err := amba.Unpack(pkt, irqMask)
	e.tr.Release(pkt)
	e.rxBuf[d] = p
	return &e.rxBuf[d], err
}

// conservativeCycle synchronizes both domains for one cycle the
// conventional way: each domain evaluates and ships its contribution,
// two channel accesses total (the C-path of the paper's Figure 3). The
// committed template (per-domain contributions and merged state) is
// recorded for the conservative batching fast path.
func (e *Engine) conservativeCycle() error {
	if e.pool != nil {
		return e.conservativeCycleParallel()
	}
	if e.canceled() {
		return errCanceled
	}
	simD, accD := e.domains[SimDomain], e.domains[AccDomain]
	simOut := &e.consOut[SimDomain]
	accOut := &e.consOut[AccDomain]
	simD.EvaluateInto(&e.ledger, simOut)
	if err := e.sendPartial(channel.SimToAcc, simOut); err != nil {
		return fmt.Errorf("core: conservative sim->acc: %w", err)
	}
	accD.EvaluateInto(&e.ledger, accOut)
	if err := e.sendPartial(channel.AccToSim, accOut); err != nil {
		return fmt.Errorf("core: conservative acc->sim: %w", err)
	}

	simIn, err := e.recvPartial(channel.AccToSim, accOut, accD.LocalIRQMask())
	if err != nil {
		return fmt.Errorf("core: conservative sim<-acc: %w", err)
	}
	accIn, err := e.recvPartial(channel.SimToAcc, simOut, simD.LocalIRQMask())
	if err != nil {
		return fmt.Errorf("core: conservative acc<-sim: %w", err)
	}

	fullSim := simD.CommitFrom(simIn)
	fullAcc := accD.CommitFrom(accIn)
	if *fullSim != *fullAcc {
		return fmt.Errorf("core: domains diverged on a conservative cycle:\nsim: %s\nacc: %s", fullSim, fullAcc)
	}
	e.consFull = *fullSim
	e.stats.ConservativeCycles++
	e.failEWMA *= ewmaDecay
	e.noteConservative(e.stats.Committed, 1)
	return e.commitTrace(&e.consFull)
}

// batchConservative extends the conservative cycle just committed
// across a provably quiescent stretch: when both domains are idle from
// ground truth, both predictors hold their outcomes (so the per-cycle
// leader choice and its decline accounting replicate exactly), and the
// recorded contributions are inactive, up to CycleBatch-1 further
// cycles are committed in one step. Every ledger charge, channel
// access, statistic and trace record lands exactly as the single-step
// loop would have left it. decl is the decline record of the leader
// choice that preceded the seed cycle, replayed once per batched
// cycle.
func (e *Engine) batchConservative(cycles int64, decl declinePair) error {
	n := int64(e.cfg.CycleBatch) - 1
	if rem := cycles - e.stats.Committed; rem < n {
		n = rem
	}
	if n <= 0 {
		return nil
	}
	if e.cfg.Mode != Conservative && decl == (declinePair{}) {
		// A nil leader without a single recorded decline in an
		// optimistic mode means the seed's choice was made under
		// adaptive-governor back-off: the predictors were never
		// consulted, and the estimate decayed by the seed cycle may
		// re-enable them on the very next choice — a batch would
		// replicate a decision the single-step engine no longer makes.
		// Single-step through the back-off instead. (Checking the
		// decline record rather than failEWMA keeps the guard exact on
		// the threshold-crossing cycle, where the seed saw the
		// pre-decay estimate.)
		return nil
	}
	if !inactivePartial(&e.consOut[SimDomain]) || !inactivePartial(&e.consOut[AccDomain]) {
		return nil
	}
	for _, d := range e.domains {
		if q := d.QuiescentCycles(); q < n {
			n = q
		}
		if q := d.PredictionStableCycles(); q < n {
			n = q
		}
	}
	if n <= 0 {
		return nil
	}
	if e.canceled() {
		return errCanceled
	}

	e.ch.AccountN(channel.SimToAcc, e.consOut[SimDomain].PackedWords(), n)
	e.ch.AccountN(channel.AccToSim, e.consOut[AccDomain].PackedWords(), n)
	e.domains[SimDomain].AdvanceQuiescent(&e.ledger, n)
	e.domains[AccDomain].AdvanceQuiescent(&e.ledger, n)
	e.stats.ConservativeCycles += n
	e.stats.BatchedCycles += n
	e.recordDeclines(decl, n)
	for i := int64(0); i < n; i++ {
		e.failEWMA *= ewmaDecay
	}
	e.traceEvent(trace.Event{
		Cycle: e.stats.Committed, N: n,
		Kind: trace.EvBatchCommit, Domain: trace.NoDomain, Arg: trace.BatchConservative,
	})
	e.noteConservative(e.stats.Committed, n)
	return e.commitTraceN(&e.consFull, n)
}

// declinePair is the decline record of one leader choice: at most two
// predictors are consulted per cycle (Auto tries both orders), and
// DeclineNone slots are empty.
type declinePair [2]DeclineReason

// pickLeader picks the leading domain for the next transition (nil for
// a conservative cycle) and returns which predictors declined. Its
// only side effects are the Predict calls the protocol performs
// anyway; the caller records the declines — separating the choice from
// its accounting is what lets a batched quiescent stretch, across
// which the choice is provably constant, replicate the per-cycle
// decline statistics exactly.
func (e *Engine) pickLeader() (*Domain, declinePair) {
	var decl declinePair
	if e.cfg.Adaptive && e.failEWMA > e.cfg.AdaptiveThreshold {
		// Governor back-off: recent predictions were too unreliable for
		// optimism to pay; run conservative and let the estimate decay.
		return nil, decl
	}
	slot := 0
	try := func(d *Domain) *Domain {
		reason := d.PredictInto(&e.predBuf)
		if reason == DeclineNone {
			return d
		}
		decl[slot] = reason
		slot++
		return nil
	}
	switch e.cfg.Mode {
	case Conservative:
		return nil, decl
	case SLA:
		return try(e.domains[SimDomain]), decl
	case ALS:
		return try(e.domains[AccDomain]), decl
	case Auto:
		// The data source leads: for a write in flight that is the
		// master's domain, for a read the slave's. Idle bus: prefer the
		// accelerator (the faster domain gains more from running ahead).
		b := e.domains[SimDomain].Bus() // both buses agree at sync points
		pref := e.domains[AccDomain]
		if valid, ap, master, slave := b.DataPhase(); valid {
			if ap.Write {
				pref = e.domains[e.masterDomain(master)]
			} else {
				pref = e.domains[e.slaveDomain(slave)]
			}
		}
		if d := try(pref); d != nil {
			return d, decl
		}
		return try(e.domains[pref.ID().Other()]), decl
	default:
		return nil, decl
	}
}

// recordDeclines adds n repetitions of one cycle's decline record to
// the stats.
func (e *Engine) recordDeclines(decl declinePair, n int64) {
	for _, r := range decl {
		if r != DeclineNone {
			e.stats.Declines[r] += n
		}
	}
}

// chooseLeader is pickLeader plus its decline accounting — one cycle's
// leader choice exactly as the run loop performs it.
func (e *Engine) chooseLeader() *Domain {
	d, decl := e.pickLeader()
	e.recordDeclines(decl, 1)
	return d
}

// masterDomain returns the domain of global master index i.
func (e *Engine) masterDomain(i int) DomainID {
	if e.domains[SimDomain].Bus().MasterLocal(i) {
		return SimDomain
	}
	return AccDomain
}

// slaveDomain returns the domain of global slave index i (default slave
// belongs to its owner).
func (e *Engine) slaveDomain(i int) DomainID {
	if i < 0 {
		if e.domains[SimDomain].Bus().OwnsDefaultSlave() {
			return SimDomain
		}
		return AccDomain
	}
	if e.domains[SimDomain].Bus().SlaveLocal(i) {
		return SimDomain
	}
	return AccDomain
}

// transition runs one full optimistic transition with the given leader.
// It returns the number of target cycles committed.
func (e *Engine) transition(leader *Domain, budget int64) (int64, error) {
	if e.pipelineOK() {
		return e.transitionPipelined(leader, budget)
	}
	lagger := e.domains[leader.ID().Other()]
	e.stats.Transitions++
	e.stats.TransitionsByLead[leader.ID()]++
	if e.cfg.Tracer != nil {
		e.flushConsTrace()
		e.traceEvent(trace.Event{
			Cycle: e.stats.Committed, Kind: trace.EvSync, Domain: uint8(leader.ID()),
		})
	}

	committedLead := int64(0)
	if e.cfg.PaperStrictTransitions {
		// P-6: the first P-path cycle runs conservatively; the state
		// store registered in P-5 happens once it completes and the
		// leader's variables have stabilized (footnote 5).
		if err := e.conservativeCycle(); err != nil {
			return 0, err
		}
		committedLead = 1
		budget--
		if budget <= 0 {
			return committedLead, nil
		}
	}

	// rb_store (P-5): capture the leader before optimistic operation.
	snap := leader.Snapshot(&e.ledger, e.vars(leader))
	e.stats.Stores++
	e.lob.Reset()
	// base is the target-cycle position the run-ahead (and its
	// follow-up replay) starts at — every trace span below anchors to
	// it.
	base := e.stats.Committed
	raStart := e.stats.RunAheadCycles
	e.traceEvent(trace.Event{Cycle: base, Kind: trace.EvStore, Domain: uint8(leader.ID())})

	if e.cfg.PaperStrictTransitions {
		if _, reason := leader.Predict(); reason != DeclineNone {
			// Footnote 6: the leader can no longer predict at the very
			// next cycle; the transition ends with the state store
			// spent for nothing.
			e.stats.Declines[reason]++
			return committedLead, nil
		}
	}

	// Run-Ahead (P-path): commit cycles against predictions until the
	// predictor declines, the LOB fills, or the budget is reached. The
	// buffer always keeps room for the final, prediction-less entry
	// (maxPartialWords), which is deposited after the loop decides to
	// stop — by then the cycle is already evaluated. The entry is
	// reused across iterations (Push copies it into the buffer); only
	// its size memo needs an explicit reset.
	preds := e.preds[:0]
	defer func() { e.preds = preds[:0] }()
	var entry Entry
	entry.HasPred = true
	for {
		if e.canceled() {
			return committedLead, errCanceled
		}
		entry.words = 0
		leader.EvaluateInto(&e.ledger, &entry.Out)
		reason := leader.PredictInto(&entry.Pred)
		last := false
		if reason != DeclineNone {
			e.stats.Declines[reason]++
			last = true
		} else if int64(e.lob.Len()+1) >= budget {
			last = true // the budgeted final cycle resolves conventionally
		} else if e.lob.Words()+entry.Words()+maxPartialWords > e.lob.Depth() {
			last = true
		}
		if last {
			final := Entry{Out: entry.Out}
			e.lob.Push(&final)
			break
		}
		e.lob.Push(&entry)
		preds = append(preds, entry.Pred)
		leader.CommitFrom(&entry.Pred)
		e.stats.RunAheadCycles++

		// Predicted-quiescence fast path: when the leader is provably
		// idle and the predictor guarantees the same inactive
		// prediction for the cycles ahead, the coming run-ahead cycles
		// are exact repetitions of the entry just deposited — commit a
		// batch of them in one step (LOB deposits included, so the
		// flush on the wire is unchanged).
		if n := e.runAheadQuiescent(leader, &entry, budget); n > 0 {
			if e.canceled() {
				return committedLead, errCanceled
			}
			for k := int64(0); k < n; k++ {
				e.lob.Push(&entry)
				preds = append(preds, entry.Pred)
			}
			leader.AdvanceQuiescent(&e.ledger, n)
			e.stats.RunAheadCycles += n
			e.stats.BatchedCycles += n
			e.traceEvent(trace.Event{
				Cycle: base + (e.stats.RunAheadCycles - raStart), N: n,
				Kind: trace.EvBatchCommit, Domain: uint8(leader.ID()), Arg: trace.BatchRunAhead,
			})
		}
	}
	if ran := e.stats.RunAheadCycles - raStart; ran > 0 {
		e.traceEvent(trace.Event{
			Cycle: base, N: ran, Kind: trace.EvRunAhead, Domain: uint8(leader.ID()),
		})
	}
	e.traceEvent(trace.Event{
		Cycle: base + (e.stats.RunAheadCycles - raStart), Kind: trace.EvFlush,
		Domain: uint8(leader.ID()), Arg: int64(e.lob.Words()),
	})

	// Flush (S-2): the whole LOB crosses the channel as one burst,
	// charged at the packed size (lob.Words() and the packed flush
	// length agree by construction — the wire-codec differential pins
	// it). The accounting path replays the entries straight from the
	// buffer; WirePackets forces the codec round trip.
	entries := e.lob.Entries()
	got := entries
	e.ch.Account(dirFrom(leader.ID()), e.lob.Words())
	if e.cfg.WirePackets {
		e.packBuf = packFlush(e.packBuf[:0], entries)
		if err := e.tr.Send(dirFrom(leader.ID()), e.packBuf); err != nil {
			return committedLead, fmt.Errorf("core: flush: %w", err)
		}
		flushPkt, err := e.tr.Recv(dirFrom(leader.ID()))
		if err != nil {
			return committedLead, fmt.Errorf("core: flush: %w", err)
		}
		got, err = unpackFlush(e.flushEnt[:0], flushPkt, leader.LocalIRQMask(), lagger.LocalIRQMask())
		e.flushEnt = got[:0]
		e.tr.Release(flushPkt)
		if err != nil {
			return committedLead, err
		}
	}

	// Follow-Up (L-path): the lagger replays each cycle with the
	// leader's outputs and checks each prediction (L-1).
	committed := committedLead
	for i := 0; i < len(got); i++ {
		entry := &got[i]
		if e.canceled() {
			return committed, errCanceled
		}
		var laggerOut amba.PartialState
		lagger.EvaluateInto(&e.ledger, &laggerOut)
		full := lagger.CommitFrom(&entry.Out)
		e.stats.FollowUpCycles++
		if err := e.commitTrace(full); err != nil {
			return committed, err
		}
		committed++

		if !entry.HasPred {
			// Final entry: report the lagger's actual contribution
			// (R-path); the leader completes its pending cycle with it.
			ok, _, actual, err := e.exchangeReport(lagger, true, 0, laggerOut)
			if err != nil || !ok {
				return committed, fmt.Errorf("core: success report: ok=%v err=%v", ok, err)
			}
			leader.CommitFrom(&actual)
			e.traceEvent(trace.Event{
				Cycle: base, N: committed - committedLead,
				Kind: trace.EvFollowUp, Domain: uint8(lagger.ID()),
			})
			return committed, nil
		}

		e.stats.ChecksTotal++
		match := laggerOut == entry.Pred
		injected := false
		if match && e.inject != nil && e.inject.Mispredict() {
			match = false
			injected = true
			e.stats.Injected++
		}
		if match {
			e.failEWMA *= 1 - ewmaBlend
			// Predicted-quiescence fast path: a run of identical idle
			// entries replayed into a provably idle lagger repeats the
			// cycle just checked — commit the run in one step. (The
			// final, prediction-less entry never matches the run, so
			// the batch always stops short of it.)
			if n := e.followUpQuiescent(lagger, got, i); n > 0 {
				lagger.AdvanceQuiescent(&e.ledger, n)
				e.stats.FollowUpCycles += n
				e.stats.ChecksTotal += n
				e.stats.BatchedCycles += n
				for k := int64(0); k < n; k++ {
					e.failEWMA *= 1 - ewmaBlend
				}
				if err := e.commitTraceN(full, n); err != nil {
					return committed, err
				}
				committed += n
				i += int(n)
				e.traceEvent(trace.Event{
					Cycle: base + (committed - committedLead), N: n,
					Kind: trace.EvBatchCommit, Domain: uint8(lagger.ID()), Arg: trace.BatchFollowUp,
				})
			}
			continue
		}
		e.failEWMA = e.failEWMA*(1-ewmaBlend) + ewmaBlend
		e.stats.Mispredicts++
		if e.cfg.Tracer != nil {
			arg := int64(0)
			if injected {
				arg = 1
			}
			e.traceEvent(trace.Event{
				Cycle: base + int64(i), Kind: trace.EvMispredict,
				Domain: uint8(lagger.ID()), Arg: arg,
			})
			e.traceEvent(trace.Event{
				Cycle: base, N: committed - committedLead,
				Kind: trace.EvFollowUp, Domain: uint8(lagger.ID()),
			})
		}

		// Prediction failure (L-5): report the actual contribution.
		ok, idx, actual, err := e.exchangeReport(lagger, false, i, laggerOut)
		if err != nil || ok || idx != i {
			return committed, fmt.Errorf("core: failure report: ok=%v idx=%d err=%v", ok, idx, err)
		}

		// RollBack (S-6) + Roll-Forth (F-path): restore, then replay to
		// the lagger's progress point using recorded predictions (all
		// correct before i) and the reported actual for cycle i.
		leader.Rollback(&e.ledger, e.vars(leader), snap)
		e.stats.Rollbacks++
		e.stats.Restores++
		e.rollLen.Add(i + 1)
		e.traceEvent(trace.Event{
			Cycle: base + int64(i), Kind: trace.EvRollback,
			Domain: uint8(leader.ID()), Arg: int64(i + 1),
		})
		for r := 0; r <= i; r++ {
			var replayOut amba.PartialState
			leader.EvaluateInto(&e.ledger, &replayOut)
			if replayOut != got[r].Out {
				return committed, fmt.Errorf("core: roll-forth diverged at %d/%d:\nwas: %+v\nnow: %+v", r, i, got[r].Out, replayOut)
			}
			remote := &actual
			if r < i {
				remote = &preds[r]
			}
			leader.CommitFrom(remote)
			e.stats.RollForthCycles++
		}
		e.traceEvent(trace.Event{
			Cycle: base, N: int64(i + 1),
			Kind: trace.EvRollForth, Domain: uint8(leader.ID()),
		})
		return committed, nil
	}
	return committed, fmt.Errorf("core: transition fell through (no final entry)")
}

// runAheadQuiescent bounds the number of additional run-ahead cycles
// guaranteed to repeat the entry just committed: the entry must be
// inactive in both directions, the leader provably idle from ground
// truth, the prediction stable, and every batched entry must remain
// non-final — the cycle after the batch still needs budget and LOB
// room (worst-case final entry included) so the stop decision is taken
// on a really-evaluated cycle exactly as in the single-step loop.
// Returns 0 when the next cycle must be evaluated for real.
func (e *Engine) runAheadQuiescent(leader *Domain, entry *Entry, budget int64) int64 {
	n := int64(e.cfg.CycleBatch) - 1
	if n <= 0 {
		return 0
	}
	if !inactivePartial(&entry.Out) || !inactivePartial(&entry.Pred) {
		return 0
	}
	if q := leader.QuiescentCycles(); q < n {
		n = q
	}
	if q := leader.PredictionStableCycles(); q < n {
		n = q
	}
	if byBudget := budget - int64(e.lob.Len()) - 1; byBudget < n {
		n = byBudget
	}
	byWords := int64(e.lob.Depth()-maxPartialWords-e.lob.Words()) / int64(entry.Words())
	if byWords < n {
		n = byWords
	}
	if n < 0 {
		return 0
	}
	return n
}

// followUpQuiescent bounds the number of further flush entries the
// lagger may commit in one step after the matched check at index i:
// the entries must repeat entry i exactly, the lagger must be provably
// idle for the span, and the fault injector must be off (each injector
// check consumes deterministic randomness that must be drawn cycle by
// cycle). The final, prediction-less entry never equals a checked one,
// so the scan always stops before it.
func (e *Engine) followUpQuiescent(lagger *Domain, got []Entry, i int) int64 {
	limit := int64(e.cfg.CycleBatch) - 1
	if limit <= 0 || e.inject != nil {
		return 0
	}
	entry := &got[i]
	if !inactivePartial(&entry.Out) || !inactivePartial(&entry.Pred) {
		return 0
	}
	if q := lagger.QuiescentCycles(); q < limit {
		limit = q
	}
	n := int64(0)
	for n < limit && i+1+int(n) < len(got) && sameEntry(&got[i+1+int(n)], entry) {
		n++
	}
	return n
}

// exchangeReport carries a follow-up report (success, or failure at
// idx, plus the lagger's actual contribution) from lagger to leader
// and returns it as the leader decodes it. The loopback path accounts
// the access and hands the values through; WirePackets forces the
// codec round trip.
func (e *Engine) exchangeReport(lagger *Domain, success bool, idx int, actual amba.PartialState) (bool, int, amba.PartialState, error) {
	e.ch.Account(dirFrom(lagger.ID()), 1+actual.PackedWords())
	if e.cfg.WirePackets {
		e.packBuf = packReport(e.packBuf[:0], success, idx, actual)
		if err := e.tr.Send(dirFrom(lagger.ID()), e.packBuf); err != nil {
			return false, 0, amba.PartialState{}, fmt.Errorf("core: report: %w", err)
		}
		repPkt, err := e.tr.Recv(dirFrom(lagger.ID()))
		if err != nil {
			return false, 0, amba.PartialState{}, fmt.Errorf("core: report: %w", err)
		}
		ok, i, act, err := unpackReport(repPkt, lagger.LocalIRQMask())
		e.tr.Release(repPkt)
		return ok, i, act, err
	}
	return success, idx, actual, nil
}

// Run executes the co-emulation for the given number of target cycles
// and returns the report.
func (e *Engine) Run(cycles int64) (*Report, error) {
	return e.RunContext(context.Background(), cycles)
}

// RunContext is Run with cancellation: the engine polls ctx between
// domain cycles (conservative cycles, run-ahead cycles and follow-up
// cycles alike), so a cancel lands within one target cycle of work.
// A canceled run returns ctx.Err(); the engine must not be reused
// afterwards — a transition may have been abandoned mid-flight.
func (e *Engine) RunContext(ctx context.Context, cycles int64) (*Report, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("core: non-positive cycle count %d", cycles)
	}
	e.done = ctx.Done()
	defer func() { e.done = nil }()
	e.startWorkers()
	defer e.stopWorkers()
	for e.stats.Committed < cycles {
		leader, decl := e.pickLeader()
		e.recordDeclines(decl, 1)
		if leader == nil {
			if err := e.conservativeCycle(); err != nil {
				return nil, e.runErr(ctx, err)
			}
			// Predicted-quiescence fast path: extend the cycle across
			// an idle stretch in one batched step.
			if err := e.batchConservative(cycles, decl); err != nil {
				return nil, e.runErr(ctx, err)
			}
			continue
		}
		n, err := e.transition(leader, cycles-e.stats.Committed)
		if err != nil {
			return nil, e.runErr(ctx, err)
		}
		e.transLen.Add(int(n))
	}
	if e.cfg.Tracer != nil {
		e.flushConsTrace()
	}
	// The Stats struct shallow-copies into the report, but Declines is a
	// map: hand the report its own copy so it describes this run's
	// outcome rather than aliasing live engine state.
	st := e.stats
	st.Declines = make(map[DeclineReason]int64, len(e.stats.Declines))
	for k, v := range e.stats.Declines {
		st.Declines[k] = v
	}
	rep := &Report{
		Mode:              e.cfg.Mode,
		Cycles:            e.stats.Committed,
		Ledger:            e.ledger.Snapshot(),
		Stats:             st,
		Channel:           e.ch.Stats(),
		Trace:             e.trace,
		LOBPeakWords:      e.lob.PeakWords(),
		TransitionLengths: e.transLen,
		RollForthLengths:  e.rollLen,
	}
	return rep, nil
}
