// Package core implements the paper's contribution: the predictive
// packetizing channel-usage scheme for transaction-level hardware/
// software co-emulation.
//
// An Engine owns the two verification domains (each a half-bus model
// with its local components), the cost-accounted channel between them,
// and the channel-wrapper protocol: conservative cycle-by-cycle
// synchronization, and optimistic transitions consisting of the paper's
// four steps — Run-Ahead (leader commits cycles against predicted
// lagger responses, depositing outputs into the Leader Output Buffer),
// Follow-Up (lagger replays the flushed cycles, checking each
// prediction), and on a misprediction RollBack and Roll-Forth (leader
// restores its pre-transition state and replays to the lagger's
// progress point using the recorded values).
//
// Execution is deterministic and single-threaded; domain and channel
// time are charged to a virtual wall clock whose total defines the
// "simulation performance" metric of the paper's Table 2 and Figure 4.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"coemu/internal/amba"
	"coemu/internal/channel"
	"coemu/internal/device"
	"coemu/internal/predict"
	"coemu/internal/rollback"
	"coemu/internal/stats"
	"coemu/internal/vclock"
)

// Mode selects the synchronization scheme.
type Mode uint8

// Operating modes. The paper evaluates Conservative (the baseline), SLA
// and ALS; Auto is the dynamic mode of §3 item 4, choosing the leader
// per transition from the direction of data flow.
const (
	Conservative Mode = iota
	SLA               // Simulator Leading Accelerator
	ALS               // Accelerator Leading Simulator
	Auto
)

// String returns the mode mnemonic.
func (m Mode) String() string {
	switch m {
	case Conservative:
		return "conservative"
	case SLA:
		return "SLA"
	case ALS:
		return "ALS"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes an engine run.
type Config struct {
	// Mode selects the synchronization scheme. Default Conservative.
	Mode Mode
	// SimSpeed and AccSpeed are the domain evaluation rates in target
	// cycles per second. The paper's Table 2 uses 1,000 kcycles/s and
	// 10 Mcycles/s. Defaults: 1e6 and 1e7.
	SimSpeed, AccSpeed float64
	// LOBDepth is the Leader Output Buffer capacity in 32-bit words
	// (the paper's Table 2 uses 64). Default 64.
	LOBDepth int
	// Stack is the channel transport model. Default device.IPROVE().
	Stack *device.Stack
	// SimCost/AccCost are the store/restore cost models. Defaults:
	// rollback.SoftwareCost() and rollback.HardwareCost().
	SimCost, AccCost *rollback.CostModel
	// RollbackVars, when positive, overrides the rollback-variable
	// count used for store/restore pricing (the paper assumes 1000).
	// Zero prices the actual registered state.
	RollbackVars int
	// Accuracy, when in [0,1), activates the fault injector: each
	// checked prediction is additionally declared wrong with
	// probability 1-Accuracy, pinning the paper's accuracy axis.
	// Accuracy 1 (default via NaN-free zero value handling: set it
	// explicitly) runs with organic prediction accuracy only.
	Accuracy float64
	// FaultSeed seeds the injector.
	FaultSeed uint64
	// KeepTrace records the merged MSABS trace for equivalence checks.
	KeepTrace bool
	// CheckProtocol attaches the AHB protocol checker to the committed
	// trace stream.
	CheckProtocol bool

	// PredictIdle is an extension beyond the paper: idle remote masters
	// are predicted to stay idle, so leaders run ahead through bus-idle
	// stretches and pay a rollback when the master wakes.
	PredictIdle bool
	// PredictBurstStarts is an extension beyond the paper: the next
	// burst start of a remote master is predicted by stride
	// extrapolation, letting streaming leaders cross burst boundaries
	// without synchronizing.
	PredictBurstStarts bool
	// PaperStrictTransitions reproduces the paper's P-5/P-6 sequence
	// exactly: each transition opens with one conservative cycle, with
	// the rollback state stored at its end ("This is to store the
	// state of leader before taking 'optimistic' operations"), and a
	// transition whose prediction fails immediately afterwards wastes
	// the store (footnote 6). Off by default: snapshotting directly at
	// the sync point is behaviorally identical and one cycle cheaper.
	PaperStrictTransitions bool
	// Adaptive enables the dynamic mode governor (the paper's §3 item 4
	// "dynamic decisions among SLA, ALS and conservative operating
	// modes"): when the recent misprediction rate exceeds
	// AdaptiveThreshold the engine falls back to conservative cycles,
	// probing optimism again as the estimate decays.
	Adaptive bool
	// AdaptiveThreshold is the misprediction-rate EWMA above which the
	// governor forces conservative operation. Default 0.35.
	AdaptiveThreshold float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.SimSpeed == 0 {
		c.SimSpeed = 1e6
	}
	if c.AccSpeed == 0 {
		c.AccSpeed = 1e7
	}
	if c.LOBDepth == 0 {
		c.LOBDepth = 64
	}
	if c.Stack == nil {
		s := device.IPROVE()
		c.Stack = &s
	}
	if c.SimCost == nil {
		m := rollback.SoftwareCost()
		c.SimCost = &m
	}
	if c.AccCost == nil {
		m := rollback.HardwareCost()
		c.AccCost = &m
	}
	if c.Accuracy == 0 {
		c.Accuracy = 1
	}
	if c.AdaptiveThreshold == 0 {
		c.AdaptiveThreshold = 0.35
	}
	return c
}

// maxPartialWords is the wire-size ceiling of one amba.PartialState
// (header + address/control + write data + reply + split word), used to
// reserve LOB room for the final prediction-less entry.
const maxPartialWords = 7

// minLOBDepth is the smallest usable LOB: the framing word plus one
// worst-case bare entry. The paper's smallest evaluated depth is 8.
const minLOBDepth = 1 + maxPartialWords

// Stats collects the engine's behavioral counters.
type Stats struct {
	Committed          int64
	ConservativeCycles int64
	Transitions        int64
	RunAheadCycles     int64 // cycles committed optimistically by a leader
	FollowUpCycles     int64 // cycles committed by laggers
	RollForthCycles    int64 // leader cycles re-executed after rollback
	Rollbacks          int64
	Stores             int64
	Restores           int64
	ChecksTotal        int64
	Mispredicts        int64 // organic + injected
	Injected           int64
	TransitionsByLead  [2]int64
	Declines           map[DeclineReason]int64
}

// Report is the outcome of an engine run.
type Report struct {
	Mode    Mode
	Cycles  int64
	Ledger  vclock.Ledger
	Stats   Stats
	Channel channel.Stats
	Trace   []amba.CycleState // nil unless Config.KeepTrace

	// LOBPeakWords is the high-water mark of the leader output buffer.
	LOBPeakWords int
	// TransitionLengths is the distribution of committed cycles per
	// transition; RollForthLengths the distribution of replay lengths.
	TransitionLengths *stats.Hist
	RollForthLengths  *stats.Hist
}

// Perf returns the headline metric: target cycles per second of modeled
// wall-clock time.
func (r *Report) Perf() float64 { return r.Ledger.CyclesPerSecond(r.Cycles) }

// Engine drives one co-emulation session.
type Engine struct {
	cfg     Config
	domains [2]*Domain
	ch      *channel.Channel
	ledger  vclock.Ledger
	lob     *LOB
	inject  *predict.FaultInjector
	stats   Stats
	checker amba.Checker
	trace   []amba.CycleState

	transLen *stats.Hist
	rollLen  *stats.Hist

	// failEWMA estimates the recent misprediction rate for the
	// adaptive governor.
	failEWMA float64

	// Scratch buffers reused across cycles and transitions so the
	// steady-state loop is allocation-free. packBuf backs every outbound
	// Pack (the channel copies payloads into its own pooled buffers, so
	// one scratch serves all sends); preds and flushEnt are live only
	// within a single transition.
	packBuf  []amba.Word
	preds    []amba.PartialState
	flushEnt []Entry

	// done is the cancellation channel of the active RunContext call
	// (nil outside one, and for plain Run — a nil channel is never
	// ready, so the per-cycle check costs one non-blocking select).
	done <-chan struct{}
}

// errCanceled is the engine-internal cancellation sentinel. The cycle
// loop returns this preallocated error so checking for cancellation
// never allocates; RunContext translates it to the context's own error.
var errCanceled = errors.New("core: run canceled")

// canceled reports whether the active run's context has been canceled.
func (e *Engine) canceled() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// runErr maps the engine-internal cancellation sentinel back to the
// run context's error; every other failure passes through unchanged.
func (e *Engine) runErr(ctx context.Context, err error) error {
	if errors.Is(err, errCanceled) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}

// EWMA constants of the adaptive governor: per-check blending and the
// per-conservative-cycle decay that lets the engine probe optimism again
// after backing off.
const (
	ewmaBlend = 0.05
	ewmaDecay = 0.995
)

// NewEngine builds the split system for a design.
func NewEngine(d Design, cfg Config) (*Engine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.SimSpeed <= 0 || cfg.AccSpeed <= 0 {
		return nil, fmt.Errorf("core: non-positive domain speed")
	}
	if cfg.LOBDepth < minLOBDepth {
		return nil, fmt.Errorf("core: LOB depth %d words < minimum %d (one framing word plus one worst-case entry)", cfg.LOBDepth, minLOBDepth)
	}
	e := &Engine{cfg: cfg, lob: NewLOB(cfg.LOBDepth)}
	e.ch = channel.New(*cfg.Stack, &e.ledger)
	simCyc := time.Duration(1e9 / cfg.SimSpeed)
	accCyc := time.Duration(1e9 / cfg.AccSpeed)
	opts := predictorOptions{Idle: cfg.PredictIdle, Starts: cfg.PredictBurstStarts}
	e.domains[SimDomain] = buildDomain(d, SimDomain, simCyc, *cfg.SimCost, opts)
	e.domains[AccDomain] = buildDomain(d, AccDomain, accCyc, *cfg.AccCost, opts)
	if cfg.Accuracy < 1 {
		e.inject = predict.NewFaultInjector(cfg.Accuracy, cfg.FaultSeed)
	}
	e.stats.Declines = make(map[DeclineReason]int64)
	e.transLen = stats.NewHist()
	e.rollLen = stats.NewHist()
	return e, nil
}

// Domain returns one of the two domains (for inspection in tests).
func (e *Engine) Domain(id DomainID) *Domain { return e.domains[id] }

// vars returns the rollback-variable count used for pricing stores and
// restores of domain d.
func (e *Engine) vars(d *Domain) int {
	if e.cfg.RollbackVars > 0 {
		return e.cfg.RollbackVars
	}
	return d.Vars()
}

// dirFrom returns the channel direction for traffic sent by domain d.
func dirFrom(d DomainID) channel.Dir {
	if d == SimDomain {
		return channel.SimToAcc
	}
	return channel.AccToSim
}

// commitTrace records a committed cycle in the merged trace stream.
func (e *Engine) commitTrace(cs amba.CycleState) error {
	if e.cfg.CheckProtocol {
		if err := e.checker.Check(cs); err != nil {
			return fmt.Errorf("core: committed trace: %w", err)
		}
	}
	if e.cfg.KeepTrace {
		e.trace = append(e.trace, cs)
	}
	e.stats.Committed++
	return nil
}

// conservativeCycle synchronizes both domains for one cycle the
// conventional way: each domain evaluates and ships its contribution,
// two channel accesses total (the C-path of the paper's Figure 3).
func (e *Engine) conservativeCycle() error {
	if e.canceled() {
		return errCanceled
	}
	simD, accD := e.domains[SimDomain], e.domains[AccDomain]
	simOut := simD.Evaluate(&e.ledger)
	e.packBuf = simOut.Pack(e.packBuf[:0])
	e.ch.Send(channel.SimToAcc, e.packBuf)
	accOut := accD.Evaluate(&e.ledger)
	e.packBuf = accOut.Pack(e.packBuf[:0])
	e.ch.Send(channel.AccToSim, e.packBuf)

	simPkt := e.ch.Recv(channel.AccToSim)
	simIn, _, err := amba.Unpack(simPkt, accD.LocalIRQMask())
	e.ch.Release(simPkt)
	if err != nil {
		return fmt.Errorf("core: conservative sim<-acc: %w", err)
	}
	accPkt := e.ch.Recv(channel.SimToAcc)
	accIn, _, err := amba.Unpack(accPkt, simD.LocalIRQMask())
	e.ch.Release(accPkt)
	if err != nil {
		return fmt.Errorf("core: conservative acc<-sim: %w", err)
	}

	fullSim := simD.Commit(simIn)
	fullAcc := accD.Commit(accIn)
	if !fullSim.Equal(fullAcc) {
		return fmt.Errorf("core: domains diverged on a conservative cycle:\nsim: %s\nacc: %s", fullSim, fullAcc)
	}
	e.stats.ConservativeCycles++
	e.failEWMA *= ewmaDecay
	return e.commitTrace(fullSim)
}

// chooseLeader picks the leading domain for the next transition, or nil
// for a conservative cycle.
func (e *Engine) chooseLeader() *Domain {
	if e.cfg.Adaptive && e.failEWMA > e.cfg.AdaptiveThreshold {
		// Governor back-off: recent predictions were too unreliable for
		// optimism to pay; run conservative and let the estimate decay.
		return nil
	}
	try := func(d *Domain) *Domain {
		if _, reason := d.Predict(); reason == DeclineNone {
			return d
		} else {
			e.stats.Declines[reason]++
		}
		return nil
	}
	switch e.cfg.Mode {
	case Conservative:
		return nil
	case SLA:
		return try(e.domains[SimDomain])
	case ALS:
		return try(e.domains[AccDomain])
	case Auto:
		// The data source leads: for a write in flight that is the
		// master's domain, for a read the slave's. Idle bus: prefer the
		// accelerator (the faster domain gains more from running ahead).
		b := e.domains[SimDomain].Bus() // both buses agree at sync points
		pref := e.domains[AccDomain]
		if valid, ap, master, slave := b.DataPhase(); valid {
			if ap.Write {
				pref = e.domains[e.masterDomain(master)]
			} else {
				pref = e.domains[e.slaveDomain(slave)]
			}
		}
		if d := try(pref); d != nil {
			return d
		}
		return try(e.domains[pref.ID().Other()])
	default:
		return nil
	}
}

// masterDomain returns the domain of global master index i.
func (e *Engine) masterDomain(i int) DomainID {
	if e.domains[SimDomain].Bus().MasterLocal(i) {
		return SimDomain
	}
	return AccDomain
}

// slaveDomain returns the domain of global slave index i (default slave
// belongs to its owner).
func (e *Engine) slaveDomain(i int) DomainID {
	if i < 0 {
		if e.domains[SimDomain].Bus().OwnsDefaultSlave() {
			return SimDomain
		}
		return AccDomain
	}
	if e.domains[SimDomain].Bus().SlaveLocal(i) {
		return SimDomain
	}
	return AccDomain
}

// transition runs one full optimistic transition with the given leader.
// It returns the number of target cycles committed.
func (e *Engine) transition(leader *Domain, budget int64) (int64, error) {
	lagger := e.domains[leader.ID().Other()]
	e.stats.Transitions++
	e.stats.TransitionsByLead[leader.ID()]++

	committedLead := int64(0)
	if e.cfg.PaperStrictTransitions {
		// P-6: the first P-path cycle runs conservatively; the state
		// store registered in P-5 happens once it completes and the
		// leader's variables have stabilized (footnote 5).
		if err := e.conservativeCycle(); err != nil {
			return 0, err
		}
		committedLead = 1
		budget--
		if budget <= 0 {
			return committedLead, nil
		}
	}

	// rb_store (P-5): capture the leader before optimistic operation.
	snap := leader.Snapshot(&e.ledger, e.vars(leader))
	e.stats.Stores++
	e.lob.Reset()

	if e.cfg.PaperStrictTransitions {
		if _, reason := leader.Predict(); reason != DeclineNone {
			// Footnote 6: the leader can no longer predict at the very
			// next cycle; the transition ends with the state store
			// spent for nothing.
			e.stats.Declines[reason]++
			return committedLead, nil
		}
	}

	// Run-Ahead (P-path): commit cycles against predictions until the
	// predictor declines, the LOB fills, or the budget is reached. The
	// buffer always keeps room for the final, prediction-less entry
	// (maxPartialWords), which is deposited after the loop decides to
	// stop — by then the cycle is already evaluated.
	preds := e.preds[:0]
	defer func() { e.preds = preds[:0] }()
	for {
		if e.canceled() {
			return committedLead, errCanceled
		}
		out := leader.Evaluate(&e.ledger)
		pred, reason := leader.Predict()
		entry := Entry{Out: out, Pred: pred, HasPred: true}
		last := false
		if reason != DeclineNone {
			e.stats.Declines[reason]++
			last = true
		} else if int64(e.lob.Len()+1) >= budget {
			last = true // the budgeted final cycle resolves conventionally
		} else if e.lob.Words()+entry.Words()+maxPartialWords > e.lob.Depth() {
			last = true
		}
		if last {
			e.lob.Push(Entry{Out: out})
			break
		}
		e.lob.Push(entry)
		preds = append(preds, pred)
		leader.Commit(pred)
		e.stats.RunAheadCycles++
	}

	// Flush (S-2): the whole LOB crosses the channel as one burst.
	entries := e.lob.Entries()
	e.packBuf = packFlush(e.packBuf[:0], entries)
	e.ch.Send(dirFrom(leader.ID()), e.packBuf)
	flushPkt := e.ch.Recv(dirFrom(leader.ID()))
	got, err := unpackFlush(e.flushEnt[:0], flushPkt, leader.LocalIRQMask(), lagger.LocalIRQMask())
	e.flushEnt = got[:0]
	e.ch.Release(flushPkt)
	if err != nil {
		return committedLead, err
	}

	// Follow-Up (L-path): the lagger replays each cycle with the
	// leader's outputs and checks each prediction (L-1).
	committed := committedLead
	for i, entry := range got {
		if e.canceled() {
			return committed, errCanceled
		}
		laggerOut := lagger.Evaluate(&e.ledger)
		full := lagger.Commit(entry.Out)
		e.stats.FollowUpCycles++
		if err := e.commitTrace(full); err != nil {
			return committed, err
		}
		committed++

		if !entry.HasPred {
			// Final entry: report the lagger's actual contribution
			// (R-path); the leader completes its pending cycle with it.
			e.packBuf = packReport(e.packBuf[:0], true, 0, laggerOut)
			e.ch.Send(dirFrom(lagger.ID()), e.packBuf)
			repPkt := e.ch.Recv(dirFrom(lagger.ID()))
			ok, _, actual, err := unpackReport(repPkt, lagger.LocalIRQMask())
			e.ch.Release(repPkt)
			if err != nil || !ok {
				return committed, fmt.Errorf("core: success report: ok=%v err=%v", ok, err)
			}
			leader.Commit(actual)
			return committed, nil
		}

		e.stats.ChecksTotal++
		match := laggerOut.Equal(entry.Pred)
		if match && e.inject != nil && e.inject.Mispredict() {
			match = false
			e.stats.Injected++
		}
		if match {
			e.failEWMA *= 1 - ewmaBlend
			continue
		}
		e.failEWMA = e.failEWMA*(1-ewmaBlend) + ewmaBlend
		e.stats.Mispredicts++

		// Prediction failure (L-5): report the actual contribution.
		e.packBuf = packReport(e.packBuf[:0], false, i, laggerOut)
		e.ch.Send(dirFrom(lagger.ID()), e.packBuf)
		repPkt := e.ch.Recv(dirFrom(lagger.ID()))
		ok, idx, actual, err := unpackReport(repPkt, lagger.LocalIRQMask())
		e.ch.Release(repPkt)
		if err != nil || ok || idx != i {
			return committed, fmt.Errorf("core: failure report: ok=%v idx=%d err=%v", ok, idx, err)
		}

		// RollBack (S-6) + Roll-Forth (F-path): restore, then replay to
		// the lagger's progress point using recorded predictions (all
		// correct before i) and the reported actual for cycle i.
		leader.Rollback(&e.ledger, e.vars(leader), snap)
		e.stats.Rollbacks++
		e.stats.Restores++
		e.rollLen.Add(i + 1)
		for r := 0; r <= i; r++ {
			replayOut := leader.Evaluate(&e.ledger)
			if !replayOut.Equal(got[r].Out) {
				return committed, fmt.Errorf("core: roll-forth diverged at %d/%d:\nwas: %+v\nnow: %+v", r, i, got[r].Out, replayOut)
			}
			remote := actual
			if r < i {
				remote = preds[r]
			}
			leader.Commit(remote)
			e.stats.RollForthCycles++
		}
		return committed, nil
	}
	return committed, fmt.Errorf("core: transition fell through (no final entry)")
}

// Run executes the co-emulation for the given number of target cycles
// and returns the report.
func (e *Engine) Run(cycles int64) (*Report, error) {
	return e.RunContext(context.Background(), cycles)
}

// RunContext is Run with cancellation: the engine polls ctx between
// domain cycles (conservative cycles, run-ahead cycles and follow-up
// cycles alike), so a cancel lands within one target cycle of work.
// A canceled run returns ctx.Err(); the engine must not be reused
// afterwards — a transition may have been abandoned mid-flight.
func (e *Engine) RunContext(ctx context.Context, cycles int64) (*Report, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("core: non-positive cycle count %d", cycles)
	}
	e.done = ctx.Done()
	defer func() { e.done = nil }()
	for e.stats.Committed < cycles {
		leader := e.chooseLeader()
		if leader == nil {
			if err := e.conservativeCycle(); err != nil {
				return nil, e.runErr(ctx, err)
			}
			continue
		}
		n, err := e.transition(leader, cycles-e.stats.Committed)
		if err != nil {
			return nil, e.runErr(ctx, err)
		}
		e.transLen.Add(int(n))
	}
	// The Stats struct shallow-copies into the report, but Declines is a
	// map: hand the report its own copy so it describes this run's
	// outcome rather than aliasing live engine state.
	st := e.stats
	st.Declines = make(map[DeclineReason]int64, len(e.stats.Declines))
	for k, v := range e.stats.Declines {
		st.Declines[k] = v
	}
	rep := &Report{
		Mode:              e.cfg.Mode,
		Cycles:            e.stats.Committed,
		Ledger:            e.ledger.Snapshot(),
		Stats:             st,
		Channel:           e.ch.Stats(),
		Trace:             e.trace,
		LOBPeakWords:      e.lob.PeakWords(),
		TransitionLengths: e.transLen,
		RollForthLengths:  e.rollLen,
	}
	return rep, nil
}
