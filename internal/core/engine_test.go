package core

import (
	"strings"
	"testing"

	"coemu/internal/amba"
	"coemu/internal/channel"
	"coemu/internal/vclock"
)

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		Conservative: "conservative", SLA: "SLA", ALS: "ALS", Auto: "auto",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode string")
	}
}

func TestDirFrom(t *testing.T) {
	if dirFrom(SimDomain) != channel.SimToAcc || dirFrom(AccDomain) != channel.AccToSim {
		t.Fatal("channel directions wrong")
	}
}

func TestRollbackVarsOverrideChangesStoreCost(t *testing.T) {
	d := streamDesign(SimDomain, AccDomain, 0, 0) // SLA: software store costs
	run := func(vars int) *Report {
		e, err := NewEngine(d, Config{Mode: SLA, RollbackVars: vars})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	small := run(10)
	big := run(100000)
	if big.Ledger.Get(vclock.Store) <= small.Ledger.Get(vclock.Store) {
		t.Fatalf("store cost did not scale with rollback vars: %v vs %v",
			big.Ledger.Get(vclock.Store), small.Ledger.Get(vclock.Store))
	}
	// And it must actually hurt performance.
	if big.Perf() >= small.Perf() {
		t.Fatal("heavier state should cost performance in SLA")
	}
}

func TestFlushDirectionFollowsLeader(t *testing.T) {
	// ALS: flushes travel acc→sim, so that direction carries the bulk.
	als, err := NewEngine(streamDesign(AccDomain, SimDomain, 0, 0), Config{Mode: ALS})
	if err != nil {
		t.Fatal(err)
	}
	repA, err := als.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Channel.Words[channel.AccToSim] <= repA.Channel.Words[channel.SimToAcc] {
		t.Fatalf("ALS words: acc->sim %d should dominate sim->acc %d",
			repA.Channel.Words[channel.AccToSim], repA.Channel.Words[channel.SimToAcc])
	}
	// SLA: the opposite.
	sla, err := NewEngine(streamDesign(SimDomain, AccDomain, 0, 0), Config{Mode: SLA})
	if err != nil {
		t.Fatal(err)
	}
	repS, err := sla.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Channel.Words[channel.SimToAcc] <= repS.Channel.Words[channel.AccToSim] {
		t.Fatalf("SLA words: sim->acc %d should dominate acc->sim %d",
			repS.Channel.Words[channel.SimToAcc], repS.Channel.Words[channel.AccToSim])
	}
}

func TestLOBDepthTooSmallRejected(t *testing.T) {
	d := streamDesign(AccDomain, SimDomain, 0, 0)
	if _, err := NewEngine(d, Config{LOBDepth: 3}); err == nil {
		t.Fatal("tiny LOB must be rejected")
	}
}

func TestDomainGuards(t *testing.T) {
	e, err := NewEngine(streamDesign(AccDomain, SimDomain, 0, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dom := e.Domain(AccDomain)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("commit without evaluate", func() {
		dom.Commit(amba.PartialState{})
	})

	// Evaluate twice without commit panics; so does a mid-cycle snapshot.
	var l vclock.Ledger
	dom.Evaluate(&l)
	mustPanic("double evaluate", func() { dom.Evaluate(&l) })
	mustPanic("snapshot mid-cycle", func() { dom.Snapshot(&l, 10) })
}

func TestReportHistogramsPopulated(t *testing.T) {
	e, err := NewEngine(streamDesign(AccDomain, SimDomain, 0, 0), Config{Mode: ALS, Accuracy: 0.7, FaultSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransitionLengths.N() == 0 {
		t.Fatal("transition lengths not recorded")
	}
	if rep.RollForthLengths.N() == 0 {
		t.Fatal("roll-forth lengths not recorded")
	}
	if rep.LOBPeakWords == 0 {
		t.Fatal("LOB peak not recorded")
	}
	if rep.Stats.Stores == 0 || rep.Stats.Restores == 0 {
		t.Fatal("store/restore counters not populated")
	}
	if rep.Stats.Stores != rep.Stats.Transitions {
		t.Fatalf("stores %d != transitions %d", rep.Stats.Stores, rep.Stats.Transitions)
	}
	if rep.Stats.Restores != rep.Stats.Rollbacks {
		t.Fatalf("restores %d != rollbacks %d", rep.Stats.Restores, rep.Stats.Rollbacks)
	}
}

func TestConservedCycleAccounting(t *testing.T) {
	// Committed cycles must equal conservative + follow-up cycles plus
	// nothing else (run-ahead commits are counted at follow-up time).
	e, err := NewEngine(streamDesign(AccDomain, SimDomain, 0, 0), Config{Mode: ALS, Accuracy: 0.8, FaultSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Stats.ConservativeCycles + rep.Stats.FollowUpCycles; got != rep.Cycles {
		t.Fatalf("cycle accounting: conservative %d + follow-up %d != committed %d",
			rep.Stats.ConservativeCycles, rep.Stats.FollowUpCycles, rep.Cycles)
	}
	// Each domain's clock must have advanced exactly Cycles times at
	// the end of a run (leaders roll back to the committed horizon).
	if e.Domain(SimDomain).Now() != rep.Cycles || e.Domain(AccDomain).Now() != rep.Cycles {
		t.Fatalf("domain clocks %d/%d, want %d",
			e.Domain(SimDomain).Now(), e.Domain(AccDomain).Now(), rep.Cycles)
	}
}

func TestDeclineReasonsSurfaceInStats(t *testing.T) {
	// Duplex traffic flips data direction, so declines of several kinds
	// must be counted.
	e, err := NewEngine(duplexDesign(3), Config{Mode: Auto})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stats.Declines) == 0 {
		t.Fatal("no decline reasons recorded")
	}
	total := int64(0)
	for _, n := range rep.Stats.Declines {
		total += n
	}
	if total == 0 {
		t.Fatal("decline counters all zero")
	}
}
