package core

import (
	"fmt"

	"coemu/internal/amba"
)

// Entry is one run-ahead cycle recorded in the Leader Output Buffer: the
// leader's own contribution for the cycle plus, for all but the final
// entry of a transition, the prediction of the lagger's contribution the
// leader committed with.
//
// The paper's footnote 7: "the last leader-to-lagger data does not
// contain prediction. The last unit cycle operation of leading CW does
// not predict the state of lagger as it tries to read it from lagger as
// conventional method does." HasPred is therefore false exactly once,
// for the final entry.
type Entry struct {
	Out     amba.PartialState
	Pred    amba.PartialState
	HasPred bool

	// words memoizes Words (0 = not yet computed; a packed state is
	// never empty). Words is consulted several times per run-ahead
	// cycle — the repeated PackedWords walks showed in profiles.
	words uint8
}

// Words returns the wire size of the entry in 32-bit words.
func (e *Entry) Words() int {
	if e.words == 0 {
		n := e.Out.PackedWords()
		if e.HasPred {
			n += e.Pred.PackedWords()
		}
		e.words = uint8(n)
	}
	return int(e.words)
}

// sameEntry compares the wire-visible content of two entries, ignoring
// the size memo (which may be computed on one side only).
func sameEntry(a, b *Entry) bool {
	return a.HasPred == b.HasPred && a.Out == b.Out && a.Pred == b.Pred
}

// LOB is the Leader Output Buffer: during the run-ahead step the leader
// deposits its outputs (and predictions) here instead of paying a
// channel access per cycle; a flush ships the whole buffer as one burst.
// Capacity is measured in 32-bit words, matching the paper's "LOB depth"
// parameter (64 words in Table 2, 8 vs 64 in Figure 4).
type LOB struct {
	depth   int
	entries []Entry
	words   int
	flushes int64
	peak    int
}

// NewLOB creates a buffer holding at most depth words. The flush framing
// costs one extra word (the entry count), reserved out of the depth.
func NewLOB(depth int) *LOB {
	if depth < 1 {
		panic(fmt.Sprintf("core: LOB depth %d < 1", depth))
	}
	// Every entry is at least one word, so depth entries is the most the
	// buffer can ever hold: preallocating that keeps Push allocation-free.
	return &LOB{depth: depth, entries: make([]Entry, 0, depth)}
}

// Depth returns the configured capacity in words.
func (l *LOB) Depth() int { return l.depth }

// Len returns the number of buffered entries.
func (l *LOB) Len() int { return len(l.entries) }

// Words returns the current payload size in words, including framing.
func (l *LOB) Words() int { return l.words + 1 }

// Fits reports whether an additional entry would still fit.
func (l *LOB) Fits(e *Entry) bool { return l.Words()+e.Words() <= l.depth }

// Push appends an entry (by value; the pointer only avoids an argument
// copy). Pushing past capacity panics: the leader must check Fits
// first — overflow is a channel-wrapper bug, not a condition to absorb.
func (l *LOB) Push(e *Entry) {
	w := e.Words()
	after := l.words + 1 + w // Words() once the entry is in
	if after > l.depth {
		panic(fmt.Sprintf("core: LOB overflow (%d+%d > %d words)", l.words+1, w, l.depth))
	}
	if n := len(l.entries); n > 0 && !l.entries[n-1].HasPred {
		panic("core: push after the final (prediction-less) entry")
	}
	l.entries = append(l.entries, *e)
	l.words += w
	if after > l.peak {
		l.peak = after
	}
}

// Entries returns the buffered entries in deposit order.
func (l *LOB) Entries() []Entry { return l.entries }

// Reset empties the buffer (after a flush).
func (l *LOB) Reset() {
	l.entries = l.entries[:0]
	l.words = 0
	l.flushes++
}

// Flushes returns how many times the buffer was flushed.
func (l *LOB) Flushes() int64 { return l.flushes }

// PeakWords returns the high-water mark of Words() across the run.
func (l *LOB) PeakWords() int { return l.peak }
