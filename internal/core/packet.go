package core

import (
	"fmt"

	"coemu/internal/amba"
)

// Wire formats for the three packet kinds the channel wrappers exchange.
//
// Conservative exchange packets carry a single PartialState (amba's wire
// encoding). Flush packets carry the whole LOB: a count word followed by
// count entries, where every entry but the last is an (out, pred) pair
// and the last is a bare out — the prediction presence is implied by
// position, so no per-entry marker words are spent. Report packets carry
// a status word (reportSuccess or the zero-based index of the failed
// prediction) followed by the lagger's actual contribution for the
// reported cycle.

// reportSuccess is the status word of a successful follow-up report.
const reportSuccess = ^amba.Word(0)

// packFlush appends the encoded LOB contents to dst and returns the
// extended slice (pass nil to allocate; the engine passes its scratch).
func packFlush(dst []amba.Word, entries []Entry) []amba.Word {
	out := append(dst, amba.Word(len(entries)))
	for i, e := range entries {
		if e.HasPred != (i < len(entries)-1) {
			panic(fmt.Sprintf("core: flush entry %d/%d has unexpected prediction presence", i, len(entries)))
		}
		out = e.Out.Pack(out)
		if e.HasPred {
			out = e.Pred.Pack(out)
		}
	}
	return out
}

// unpackFlush decodes a flush packet, appending the entries to dst
// (pass nil to allocate; the engine passes its scratch). irqMask is the
// IRQ ownership of the sending (leader) domain for its outs; predMask
// is the lagger-side ownership for the predictions (a prediction
// describes the lagger's own contribution).
func unpackFlush(dst []Entry, pkt []amba.Word, outIRQMask, predIRQMask uint32) ([]Entry, error) {
	if len(pkt) == 0 {
		return nil, fmt.Errorf("core: empty flush packet")
	}
	n := int(pkt[0])
	if n < 1 {
		return nil, fmt.Errorf("core: flush packet with %d entries", n)
	}
	rest := pkt[1:]
	entries := dst
	var err error
	for i := 0; i < n; i++ {
		var e Entry
		e.Out, rest, err = amba.Unpack(rest, outIRQMask)
		if err != nil {
			return nil, fmt.Errorf("core: flush entry %d out: %w", i, err)
		}
		if i < n-1 {
			e.HasPred = true
			e.Pred, rest, err = amba.Unpack(rest, predIRQMask)
			if err != nil {
				return nil, fmt.Errorf("core: flush entry %d pred: %w", i, err)
			}
		}
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("core: flush packet has %d trailing words", len(rest))
	}
	return entries, nil
}

// packReport appends a follow-up report to dst: success (all
// predictions held, actual is the lagger contribution for the final
// entry) or failure at index idx (actual is the lagger contribution for
// that cycle).
func packReport(dst []amba.Word, success bool, idx int, actual amba.PartialState) []amba.Word {
	status := reportSuccess
	if !success {
		status = amba.Word(idx)
	}
	out := append(dst, status)
	return actual.Pack(out)
}

// unpackReport decodes a report packet.
func unpackReport(pkt []amba.Word, irqMask uint32) (success bool, idx int, actual amba.PartialState, err error) {
	if len(pkt) == 0 {
		return false, 0, amba.PartialState{}, fmt.Errorf("core: empty report packet")
	}
	status := pkt[0]
	actual, rest, err := amba.Unpack(pkt[1:], irqMask)
	if err != nil {
		return false, 0, amba.PartialState{}, fmt.Errorf("core: report payload: %w", err)
	}
	if len(rest) != 0 {
		return false, 0, amba.PartialState{}, fmt.Errorf("core: report packet has %d trailing words", len(rest))
	}
	if status == reportSuccess {
		return true, 0, actual, nil
	}
	return false, int(status), actual, nil
}
