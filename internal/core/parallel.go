// Parallel cycle loop (Config.Workers > 1).
//
// The engine stays bit-identical to its sequential self by never
// letting goroutines race on anything order-sensitive. Three rules
// carry the whole file:
//
//  1. Owner partitioning. During a parallel span every piece of
//     engine state has exactly one owning goroutine. A conservative
//     cycle splits by domain (coordinator: SimDomain, lane 0:
//     AccDomain — domains share no state, and their ledger charges go
//     to different categories, i.e. different array slots). A
//     pipelined transition splits by role: the coordinator owns the
//     leader domain, the LOB, preds, Declines and the run-ahead stats;
//     the lane-0 worker owns the lagger domain, the fault injector,
//     failEWMA, the kept trace, the protocol checker and the
//     follow-up stats. The join (Pool.Wait) ends the span; afterwards
//     the coordinator owns everything again.
//  2. Commutative sums may interleave. Ledger buckets and channel
//     statistics are pure sums of per-operation charges, so the only
//     cross-goroutine overlap the pipeline allows — lagger follow-up
//     charging its domain category while the leader is still charging
//     run-ahead and channel costs — cannot change any total.
//  3. Anything else keeps its sequential order on the coordinator:
//     channel sends/receives, the rollback restore and roll-forth,
//     report exchange, trace events.
//
// Run-ahead/follow-up handoff: the LOB's backing array never
// reallocates (NewLOB preallocates depth entries), so the leader
// deposits entries with plain writes and publishes them by storing the
// new length to an atomic counter; the worker acquires entries through
// that counter and replays them. A misprediction needs no speculative
// fencing because the sequential engine already completes the entire
// run-ahead before the first follow-up check — the worker just stops
// consuming, the leader runs ahead to its natural stop exactly as the
// sequential engine does, and the coordinator performs the rollback
// after the join. The join IS the fence: the delta-ring restore only
// ever runs with every worker lane idle.
//
// The one deliberately tolerated divergence is Stats.BatchedCycles:
// the worker's follow-up batches are bounded by what has been
// published when it looks, so batch boundaries (not totals of any
// other counter) depend on timing. BatchedCycles is a host-side
// diagnostic excluded from the canonical report view for exactly this
// kind of reason; every view-visible counter (FollowUpCycles,
// ChecksTotal, Committed, the failEWMA stream) is a per-cycle sum that
// batch splits cannot change, which the workers differential suite
// pins.
//
// The pipeline is gated off under WirePackets (the codec round trip
// serializes through shared packet buffers), an attached Tracer (trace
// events read counters across the role split), and
// PaperStrictTransitions (its opening conservative cycle interleaves
// both domains mid-transition). Those runs still parallelize
// conservative cycles and bus evaluation — and still report
// bit-identically, pinned by the fallback differential tests.
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"coemu/internal/amba"
	"coemu/internal/channel"
	"coemu/internal/par"
)

// parState is the preallocated cross-goroutine state of the parallel
// paths. Fields are grouped by protocol; every field is either written
// before a Dispatch and read after (coordinator->worker arguments,
// worker->coordinator results — the pool's counters order them) or is
// one of the two atomics that carry the mid-span handoff.
type parState struct {
	// Conservative-cycle tasks for lane 0, built once in startWorkers
	// so dispatching never allocates.
	evalAcc   func()
	commitAcc func()
	// accIn is commitAcc's argument; fullAcc its result.
	accIn   *amba.PartialState
	fullAcc *amba.CycleState

	// followUpTask runs followUpLoop on lane 0 for one pipelined
	// transition.
	followUpTask func()
	// entries is the full-capacity view of the LOB backing array the
	// worker replays from; published is how many entries are visible.
	entries   []Entry
	published atomic.Int64
	// abort tells the worker to stop consuming (cancellation or a
	// coordinator-side error); the coordinator still joins afterwards.
	abort atomic.Bool

	// Per-transition worker arguments and results.
	lagger     *Domain
	committed  int64             // follow-up cycles committed by the worker
	mispredIdx int               // entry index of the misprediction, -1 = none
	laggerOut  amba.PartialState // lagger contribution of the stopping cycle
	batched    int64             // worker-side BatchedCycles, merged after join
	err        error             // errCanceled or a committed-trace failure
}

// busLane adapts a pool lane to the bus package's EvalLane fan-out
// hook.
type busLane struct {
	pool *par.Pool
	lane int
}

func (l busLane) Dispatch(fn func()) { l.pool.Dispatch(l.lane, fn) }
func (l busLane) Wait()              { l.pool.Wait(l.lane) }

// startWorkers brings up the worker pool for a Workers>1 run. Lane 0
// carries the domain-level work; Workers >= 4 adds a lane per bus for
// the master-drive fan-out. The pool lives strictly within RunContext
// (stopWorkers is deferred right after this call), so an engine that
// is built but never run leaks no goroutines.
func (e *Engine) startWorkers() {
	if e.cfg.Workers <= 1 {
		return
	}
	lanes := 1
	if e.cfg.Workers >= 4 {
		lanes = 3
	}
	e.pool = par.NewPool(lanes)
	if lanes >= 3 {
		e.domains[SimDomain].Bus().SetEvalLane(busLane{e.pool, 1})
		e.domains[AccDomain].Bus().SetEvalLane(busLane{e.pool, 2})
	}
	if e.par.evalAcc == nil {
		e.par.evalAcc = func() {
			e.domains[AccDomain].EvaluateInto(&e.ledger, &e.consOut[AccDomain])
		}
		e.par.commitAcc = func() {
			e.par.fullAcc = e.domains[AccDomain].CommitFrom(e.par.accIn)
		}
		e.par.followUpTask = e.followUpLoop
	}
	// The LOB backing array is stable for the engine's lifetime; one
	// full-capacity view serves every transition.
	e.par.entries = e.lob.entries[:cap(e.lob.entries)]
}

// stopWorkers tears the pool down at run exit. Every lane is idle
// here: each parallel path joins its dispatches before returning, and
// error paths abort-and-join before unwinding to RunContext.
func (e *Engine) stopWorkers() {
	if e.pool == nil {
		return
	}
	e.domains[SimDomain].Bus().SetEvalLane(nil)
	e.domains[AccDomain].Bus().SetEvalLane(nil)
	e.pool.Close()
	e.pool = nil
}

// pipelineOK reports whether transitions run the pipelined path; see
// the file comment for why each gate exists.
func (e *Engine) pipelineOK() bool {
	return e.pool != nil && !e.cfg.WirePackets && e.cfg.Tracer == nil &&
		!e.cfg.PaperStrictTransitions
}

// conservativeCycleParallel is conservativeCycle with the two domains'
// evaluate and commit steps running concurrently: lane 0 handles the
// accelerator domain while the coordinator handles the simulator.
// Domains share no state and charge disjoint ledger categories, so the
// only reordering against the sequential engine is between the two
// domains' category sums — commutative. Channel traffic keeps its
// sequential order on the coordinator, after the evaluation join.
func (e *Engine) conservativeCycleParallel() error {
	if e.canceled() {
		return errCanceled
	}
	simD, accD := e.domains[SimDomain], e.domains[AccDomain]
	simOut := &e.consOut[SimDomain]
	accOut := &e.consOut[AccDomain]
	e.pool.Dispatch(0, e.par.evalAcc)
	simD.EvaluateInto(&e.ledger, simOut)
	e.pool.Wait(0)
	if err := e.sendPartial(channel.SimToAcc, simOut); err != nil {
		return fmt.Errorf("core: conservative sim->acc: %w", err)
	}
	if err := e.sendPartial(channel.AccToSim, accOut); err != nil {
		return fmt.Errorf("core: conservative acc->sim: %w", err)
	}

	simIn, err := e.recvPartial(channel.AccToSim, accOut, accD.LocalIRQMask())
	if err != nil {
		return fmt.Errorf("core: conservative sim<-acc: %w", err)
	}
	accIn, err := e.recvPartial(channel.SimToAcc, simOut, simD.LocalIRQMask())
	if err != nil {
		return fmt.Errorf("core: conservative acc<-sim: %w", err)
	}

	e.par.accIn = accIn
	e.pool.Dispatch(0, e.par.commitAcc)
	fullSim := simD.CommitFrom(simIn)
	e.pool.Wait(0)
	if *fullSim != *e.par.fullAcc {
		return fmt.Errorf("core: domains diverged on a conservative cycle:\nsim: %s\nacc: %s", fullSim, e.par.fullAcc)
	}
	e.consFull = *fullSim
	e.stats.ConservativeCycles++
	e.failEWMA *= ewmaDecay
	e.noteConservative(e.stats.Committed, 1)
	return e.commitTrace(&e.consFull)
}

// transitionPipelined is transition with the leader's run-ahead
// (coordinator) overlapped with the lagger's follow-up (lane 0). The
// run-ahead body is the sequential loop verbatim — plus a publication
// store after each deposit — because the sequential engine's
// run-ahead never depends on follow-up progress. Everything after the
// join (report exchange, rollback, roll-forth) is sequential
// coordinator code again.
func (e *Engine) transitionPipelined(leader *Domain, budget int64) (int64, error) {
	lagger := e.domains[leader.ID().Other()]
	e.stats.Transitions++
	e.stats.TransitionsByLead[leader.ID()]++

	// rb_store (P-5): capture the leader before optimistic operation.
	snap := leader.Snapshot(&e.ledger, e.vars(leader))
	e.stats.Stores++
	e.lob.Reset()

	// Arm and launch the follow-up worker. The publication counter
	// reset must precede the dispatch (the pool's sequence counter
	// orders it); abort is only ever raised by the error paths below.
	p := &e.par
	p.published.Store(0)
	p.abort.Store(false)
	p.lagger = lagger
	p.committed = 0
	p.mispredIdx = -1
	p.batched = 0
	p.err = nil
	e.pool.Dispatch(0, p.followUpTask)

	// abortJoin stops the worker, joins it, and merges its partial
	// results so an early exit leaves the stats exactly as far as the
	// run actually got.
	abortJoin := func(err error) (int64, error) {
		p.abort.Store(true)
		e.pool.Wait(0)
		e.stats.BatchedCycles += p.batched
		if p.err != nil && err == errCanceled {
			err = p.err
		}
		return p.committed, err
	}

	// Run-Ahead (P-path), exactly as the sequential transition.
	preds := e.preds[:0]
	defer func() { e.preds = preds[:0] }()
	var entry Entry
	entry.HasPred = true
	for {
		if e.canceled() {
			return abortJoin(errCanceled)
		}
		entry.words = 0
		leader.EvaluateInto(&e.ledger, &entry.Out)
		reason := leader.PredictInto(&entry.Pred)
		last := false
		if reason != DeclineNone {
			e.stats.Declines[reason]++
			last = true
		} else if int64(e.lob.Len()+1) >= budget {
			last = true // the budgeted final cycle resolves conventionally
		} else if e.lob.Words()+entry.Words()+maxPartialWords > e.lob.Depth() {
			last = true
		}
		if last {
			final := Entry{Out: entry.Out}
			e.lob.Push(&final)
			p.published.Store(int64(e.lob.Len()))
			break
		}
		e.lob.Push(&entry)
		preds = append(preds, entry.Pred)
		leader.CommitFrom(&entry.Pred)
		e.stats.RunAheadCycles++

		// Predicted-quiescence fast path of the run-ahead (see
		// transition); the batch deposits publish together with the
		// seed entry below.
		if n := e.runAheadQuiescent(leader, &entry, budget); n > 0 {
			if e.canceled() {
				p.published.Store(int64(e.lob.Len()))
				return abortJoin(errCanceled)
			}
			for k := int64(0); k < n; k++ {
				e.lob.Push(&entry)
				preds = append(preds, entry.Pred)
			}
			leader.AdvanceQuiescent(&e.ledger, n)
			e.stats.RunAheadCycles += n
			e.stats.BatchedCycles += n
		}
		p.published.Store(int64(e.lob.Len()))
	}

	// Flush (S-2): the pipeline is gated off under WirePackets, so
	// this is always the accounting path — one burst charge at the
	// packed size, no packet materialized.
	got := e.lob.Entries()
	e.ch.Account(dirFrom(leader.ID()), e.lob.Words())

	// Join: after this the worker lane is idle and the coordinator
	// owns every field again. This is the rollback fence — a restore
	// below can never race a follow-up replay.
	e.pool.Wait(0)
	e.stats.BatchedCycles += p.batched
	committed := p.committed
	if p.err != nil {
		return committed, p.err
	}

	if p.mispredIdx < 0 {
		// Every prediction held and the worker replayed through the
		// final, prediction-less entry: report the lagger's actual
		// contribution (R-path); the leader completes its pending
		// cycle with it.
		ok, _, actual, err := e.exchangeReport(lagger, true, 0, p.laggerOut)
		if err != nil || !ok {
			return committed, fmt.Errorf("core: success report: ok=%v err=%v", ok, err)
		}
		leader.CommitFrom(&actual)
		return committed, nil
	}

	// Prediction failure (L-5) at entry i: report, RollBack (S-6),
	// Roll-Forth (F-path) — sequential code on the coordinator.
	i := p.mispredIdx
	ok, idx, actual, err := e.exchangeReport(lagger, false, i, p.laggerOut)
	if err != nil || ok || idx != i {
		return committed, fmt.Errorf("core: failure report: ok=%v idx=%d err=%v", ok, idx, err)
	}
	leader.Rollback(&e.ledger, e.vars(leader), snap)
	e.stats.Rollbacks++
	e.stats.Restores++
	e.rollLen.Add(i + 1)
	for r := 0; r <= i; r++ {
		var replayOut amba.PartialState
		leader.EvaluateInto(&e.ledger, &replayOut)
		if replayOut != got[r].Out {
			return committed, fmt.Errorf("core: roll-forth diverged at %d/%d:\nwas: %+v\nnow: %+v", r, i, got[r].Out, replayOut)
		}
		remote := &actual
		if r < i {
			remote = &preds[r]
		}
		leader.CommitFrom(remote)
		e.stats.RollForthCycles++
	}
	return committed, nil
}

// followUpLoop is the lane-0 task of a pipelined transition: the
// lagger's follow-up replay (the transition's L-path loop verbatim,
// minus trace events — the pipeline is gated on Tracer == nil),
// consuming LOB entries as the leader publishes them. It returns when
// it has replayed the final entry, detected a misprediction, been
// aborted, or seen cancellation; results travel back through parState.
func (e *Engine) followUpLoop() {
	p := &e.par
	lagger := p.lagger
	consumed := int64(0)
	spins := 0
	for {
		avail := p.published.Load()
		if avail <= consumed {
			// Awaiting the leader's next deposit. Yield once past the
			// hot-spin budget so a GOMAXPROCS=1 host schedules the
			// leader instead of stalling on this loop.
			if p.abort.Load() {
				return
			}
			if spins++; spins > 64 {
				runtime.Gosched()
			}
			continue
		}
		spins = 0
		entry := &p.entries[consumed]
		if e.canceled() {
			p.err = errCanceled
			return
		}
		var laggerOut amba.PartialState
		lagger.EvaluateInto(&e.ledger, &laggerOut)
		full := lagger.CommitFrom(&entry.Out)
		e.stats.FollowUpCycles++
		if err := e.commitTrace(full); err != nil {
			p.err = err
			return
		}
		p.committed++
		consumed++

		if !entry.HasPred {
			p.laggerOut = laggerOut
			return
		}

		e.stats.ChecksTotal++
		match := laggerOut == entry.Pred
		if match && e.inject != nil && e.inject.Mispredict() {
			match = false
			e.stats.Injected++
		}
		if match {
			e.failEWMA *= 1 - ewmaBlend
			// Predicted-quiescence fast path over the published
			// prefix. Publication timing only moves batch boundaries;
			// every per-cycle effect below is a sum the boundaries
			// cannot change (except BatchedCycles, merged after the
			// join and excluded from the report view).
			if n := e.followUpQuiescent(lagger, p.entries[:avail], int(consumed-1)); n > 0 {
				lagger.AdvanceQuiescent(&e.ledger, n)
				e.stats.FollowUpCycles += n
				e.stats.ChecksTotal += n
				p.batched += n
				for k := int64(0); k < n; k++ {
					e.failEWMA *= 1 - ewmaBlend
				}
				if err := e.commitTraceN(full, n); err != nil {
					p.err = err
					return
				}
				p.committed += n
				consumed += n
			}
			continue
		}
		e.failEWMA = e.failEWMA*(1-ewmaBlend) + ewmaBlend
		e.stats.Mispredicts++
		p.mispredIdx = int(consumed - 1)
		p.laggerOut = laggerOut
		return
	}
}
