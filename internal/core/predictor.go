package core

import (
	"fmt"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/predict"
)

// remotePredictor composes the paper's §3 predictors into a single
// predictor of the other domain's per-cycle contribution:
//
//   - bus requests and interrupt lines: last-value,
//   - address/control of a remotely-granted master: burst continuation
//     (one tracker per remote master),
//   - responses of a remote active slave: producer-consumer wait model
//     (one per remote slave, configured with its nominal profile),
//   - default-slave replies (when owned remotely): a two-cycle ERROR
//     mirror,
//   - read data and remote write data: never predicted — Predict
//     declines, forcing the channel wrapper to synchronize, which is how
//     the "data source leads" rule emerges.
//
// The predictor advances exclusively through Observe calls, one per
// committed cycle, regardless of whether the committed remote values
// were real or predicted. Predict itself is pure. That discipline makes
// roll-forth replay trivially consistent: restore, then re-Observe.
type remotePredictor struct {
	b *bus.Bus

	remoteReqMask   uint32
	remoteIRQMask   uint32
	remoteSplitMask uint32
	ownsDefault     bool
	// coupleReq derives the granted remote master's request bit from
	// its predicted address phase instead of last-value (enabled with
	// the burst-start extension, whose boundary cycles otherwise
	// mispredict on the request-line blip between bursts).
	coupleReq bool

	req predict.LastValue
	irq predict.LastValue
	// trackers/waits are dense slices indexed by global master/slave
	// number (nil for local components): the per-cycle Predict lookups
	// and the per-transition snapshot walks cost array indexing
	// instead of the map accesses and map iteration that used to
	// dominate the rollback-heavy store/restore profile.
	trackers []*predict.BurstTracker // per remote master
	waits    []*predict.WaitModel    // per remote slave
	defErr   defMirror

	lastValid bool
	lastFull  amba.CycleState

	pendingDP

	// dirty tracks mutation since MarkClean (rollback.DeltaSnapshotter).
	dirty bool
}

// defMirror predicts the two-cycle ERROR sequence of a remotely-owned
// default slave.
type defMirror struct {
	InErr bool
}

// Predict returns the reply the remote default slave will drive.
func (m *defMirror) Predict() amba.SlaveReply {
	if m.InErr {
		return amba.SlaveReply{Ready: true, Resp: amba.RespError}
	}
	return amba.SlaveReply{Ready: false, Resp: amba.RespError}
}

// Observe aligns the mirror with an actual default-slave reply.
func (m *defMirror) Observe(r amba.SlaveReply) {
	m.InErr = r.Resp == amba.RespError && !r.Ready
}

// predictorOptions carries the extension knobs into the tracker setup.
type predictorOptions struct {
	Idle   bool // predict idle continuation
	Starts bool // predict burst starts by stride
}

// newRemotePredictor builds the composite for a domain whose half-bus is
// b. waitProfiles maps global slave indexes of *remote* slaves to their
// nominal (first, next) wait profile.
func newRemotePredictor(b *bus.Bus, ownsDefault bool, waitProfiles map[int][2]int, opts predictorOptions) *remotePredictor {
	p := &remotePredictor{
		b:             b,
		remoteReqMask: ^b.LocalReqMask() & ((1 << uint(b.Masters())) - 1),
		ownsDefault:   ownsDefault,
		trackers:      make([]*predict.BurstTracker, b.Masters()),
		waits:         make([]*predict.WaitModel, b.Slaves()),
		dirty:         true,
	}
	p.coupleReq = opts.Starts
	for i := 0; i < b.Masters(); i++ {
		if !b.MasterLocal(i) {
			p.trackers[i] = &predict.BurstTracker{PredictIdle: opts.Idle, PredictStarts: opts.Starts}
		}
	}
	for idx, prof := range waitProfiles {
		p.waits[idx] = predict.NewWaitModel(prof[0], prof[1])
	}
	return p
}

// setRemoteIRQMask declares which interrupt lines arrive from the remote
// domain.
func (p *remotePredictor) setRemoteIRQMask(m uint32) { p.remoteIRQMask = m }

// setRemoteSplitMask declares which HSPLITx lines the remote domain's
// slaves drive.
func (p *remotePredictor) setRemoteSplitMask(m uint32) { p.remoteSplitMask = m }

// DeclineReason explains why the leader cannot run ahead this cycle; it
// feeds the engine's diagnostics.
type DeclineReason string

// Decline reasons. Empty means "can predict".
const (
	DeclineNone       DeclineReason = ""
	DeclineBurstStart DeclineReason = "remote master at unpredictable burst boundary"
	DeclineReadData   DeclineReason = "read data from remote slave"
	DeclineWriteData  DeclineReason = "write data from remote master"
	DeclineNoModel    DeclineReason = "no wait model for remote slave"
)

// Predict computes the predicted remote contribution for the upcoming
// cycle. It is pure: calling it any number of times between Observes
// returns the same value.
func (p *remotePredictor) Predict() (amba.PartialState, DeclineReason) {
	var out amba.PartialState
	reason := p.PredictInto(&out)
	return out, reason
}

// PredictInto is Predict writing the prediction through dst (zeroed on
// decline) — the engine deposits it straight into a LOB entry.
func (p *remotePredictor) PredictInto(dst *amba.PartialState) DeclineReason {
	out := dst
	*out = amba.PartialState{
		ReqMask: p.remoteReqMask,
		Req:     p.req.Predict() & p.remoteReqMask,
		IRQMask: p.remoteIRQMask,
		IRQ:     p.irq.Predict() & p.remoteIRQMask,
		// HSPLITx lines are pulses; last-value prediction of a raised
		// line would hold it high forever, so predict all-low
		// (Split 0) and absorb one rollback per remote split release.
		SplitMask: p.remoteSplitMask,
	}

	grant := p.b.Grant()
	if !p.b.MasterLocal(grant) {
		out.HasAP = true
		if p.lastValid && !p.lastFull.Reply.Ready {
			// Wait state: the remote master holds its address phase.
			out.AP = p.lastFull.AP
		} else {
			ap, ok := p.trackers[grant].Predict()
			if !ok {
				*out = amba.PartialState{}
				return DeclineBurstStart
			}
			out.AP = ap
		}
		if p.coupleReq {
			bit := uint32(1) << uint(grant)
			if out.AP.Trans != amba.TransIdle {
				out.Req |= bit & p.remoteReqMask
			} else {
				out.Req &^= bit
			}
		}
	}

	dpValid, dpAP, dpMaster, dpSlave := p.b.DataPhase()
	if dpValid {
		if dpAP.Write && !p.b.MasterLocal(dpMaster) {
			*out = amba.PartialState{}
			return DeclineWriteData
		}
		switch {
		case dpSlave == bus.DefaultSlaveIndex:
			if !p.ownsDefault {
				out.HasReply = true
				out.Reply = p.defErr.Predict()
			}
		case !p.b.SlaveLocal(dpSlave):
			if !dpAP.Write {
				*out = amba.PartialState{}
				return DeclineReadData
			}
			wm := p.waits[dpSlave]
			if wm == nil {
				*out = amba.PartialState{}
				return DeclineNoModel
			}
			// wm.Predict advances the wait model, so the predictor is
			// dirty from here on even if no Observe follows.
			p.dirty = true
			out.HasReply = true
			out.Reply = amba.SlaveReply{Ready: wm.Predict(), Resp: amba.RespOkay}
		}
	}
	return DeclineNone
}

// Observe advances the predictor with the remote contribution and full
// merged state of a cycle the domain just committed, both read in
// place (once per committed cycle; value args showed in profiles).
func (p *remotePredictor) Observe(full *amba.CycleState, remote *amba.PartialState) {
	p.dirty = true
	p.req.Observe(remote.Req & p.remoteReqMask)
	p.irq.Observe(remote.IRQ & p.remoteIRQMask)

	// Address-phase progression carries information only on ready
	// cycles; during wait states the value is held.
	if remote.HasAP && full.Reply.Ready {
		p.trackers[full.Grant].Observe(remote.AP)
	}

	// The bus has already committed, so its DataPhase() now describes
	// the NEXT cycle. The reply just observed belongs to the cycle that
	// ended; use the data phase stashed before the commit.
	if p.pendingDPValid {
		if p.pendingDPSlave == bus.DefaultSlaveIndex {
			if !p.ownsDefault {
				p.defErr.Observe(full.Reply)
			}
		} else if !p.b.SlaveLocal(p.pendingDPSlave) {
			if wm := p.waits[p.pendingDPSlave]; wm != nil {
				wm.Observe(full.Reply.Ready)
			}
		}
	}

	p.lastValid = true
	p.lastFull = *full
}

// pendingDP* stash the data-phase occupancy of the cycle being
// evaluated, captured before the bus commit advances the pipeline.
type pendingDP struct {
	pendingDPValid  bool
	pendingDPSlave  int
	pendingDPMaster int
}

// StashDataPhase records the data-phase occupancy for the cycle about to
// commit; it must be called before the bus Commit whose Observe follows.
func (p *remotePredictor) StashDataPhase() {
	v, _, m, s := p.b.DataPhase()
	p.pendingDPValid = v
	p.pendingDPMaster = m
	p.pendingDPSlave = s
	p.dirty = true
}

// PredictStableFor reports for how many upcoming cycles the
// predictor's Predict outcome — the predicted remote contribution and
// the confident/declined verdict alike — is guaranteed to stay
// exactly as it is now, provided only idle cycles are observed in the
// meantime. A data phase in flight or a wait state pins the horizon to
// 0 (response predictions evolve per cycle); otherwise the only
// idle-time evolution is the granted remote master's gap model, whose
// remaining span bounds the horizon. The engine uses this bound both
// to keep per-cycle leader-choice decisions (and their decline
// accounting) replicable across a batched stretch and to guarantee a
// leader's run-ahead predictions stay constant.
func (p *remotePredictor) PredictStableFor() int64 {
	if v, _, _, _ := p.b.DataPhase(); v {
		return 0
	}
	if p.lastValid && !p.lastFull.Reply.Ready {
		return 0
	}
	if t := p.trackers[p.b.Grant()]; t != nil {
		return t.IdleStableFor()
	}
	return predict.Unbounded
}

// SkipIdle advances the predictor across n committed idle cycles in
// one step, bit-identically to n Observe calls with the constant idle
// contribution the stretch repeats: the request/IRQ last-value
// predictors and the wait models are already at fixed points, the
// last-seen full state is unchanged, and only the granted remote
// master's burst tracker accumulates idle time. Callers must have
// proven the stretch (Domain.QuiescentCycles plus PredictStableFor or
// an entry-run check) before skipping.
func (p *remotePredictor) SkipIdle(n int64) {
	if t := p.trackers[p.b.Grant()]; t != nil {
		t.SkipIdle(n)
		p.dirty = true
	}
}

// predictorSnap freezes a remotePredictor. The request/IRQ last-value
// predictors are stored inline (no boxing); tracker and wait-model
// state is boxed per slot, with slots recycled across saves.
type predictorSnap struct {
	Req      uint32
	IRQ      uint32
	Trackers []any
	Waits    []any
	DefErr   defMirror
	LastV    bool
	LastFull amba.CycleState
	Pending  pendingDP
}

// Save implements rollback.Snapshotter.
func (p *remotePredictor) Save() any { return p.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter: the snapshot struct,
// its slices and the per-tracker state buffers inside them are all
// recycled from prev, so the once-per-transition store allocates
// nothing in the steady state.
func (p *remotePredictor) SaveInto(prev any) any {
	s, ok := prev.(*predictorSnap)
	if !ok {
		s = &predictorSnap{
			Trackers: make([]any, len(p.trackers)),
			Waits:    make([]any, len(p.waits)),
		}
	}
	s.Req = p.req.Predict()
	s.IRQ = p.irq.Predict()
	s.DefErr = p.defErr
	s.LastV = p.lastValid
	s.LastFull = p.lastFull
	s.Pending = p.pendingDP
	for i, t := range p.trackers {
		if t != nil {
			s.Trackers[i] = t.SaveInto(s.Trackers[i])
		}
	}
	for i, w := range p.waits {
		if w != nil {
			s.Waits[i] = w.SaveInto(s.Waits[i])
		}
	}
	return s
}

// Restore implements rollback.Snapshotter.
func (p *remotePredictor) Restore(v any) {
	s, ok := v.(*predictorSnap)
	if !ok {
		panic(fmt.Sprintf("core: predictor: bad snapshot %T", v))
	}
	p.req.Observe(s.Req)
	p.irq.Observe(s.IRQ)
	for i, t := range p.trackers {
		if t != nil {
			t.Restore(s.Trackers[i])
		}
	}
	for i, w := range p.waits {
		if w != nil {
			w.Restore(s.Waits[i])
		}
	}
	p.defErr = s.DefErr
	p.lastValid = s.LastV
	p.lastFull = s.LastFull
	p.pendingDP = s.Pending
	p.dirty = true
}

// Dirty implements rollback.DeltaSnapshotter.
func (p *remotePredictor) Dirty() bool { return p.dirty }

// MarkClean implements rollback.DeltaSnapshotter.
func (p *remotePredictor) MarkClean() { p.dirty = false }

// SaveDelta implements rollback.DeltaSnapshotter. A predictor save is
// a handful of small value copies once the tracker tables are dense
// slices, so deltas are self-contained full captures; the delta win is
// the clean skip (a predictor that only skipped idle cycles with no
// tracker armed never dirties).
func (p *remotePredictor) SaveDelta(prev any) any { return p.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (p *remotePredictor) RestoreDelta(newest any) { p.Restore(newest) }
