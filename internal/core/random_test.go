package core

import (
	"fmt"
	"testing"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/ip"
	"coemu/internal/rng"
	"coemu/internal/workload"
)

// randomDesign builds a structurally random but valid design from a
// seed: 1-3 masters with random workloads and domains, 1-3 slaves of
// random kinds and domains, random extension configuration. This is the
// property-test generator for the equivalence invariant.
func randomDesign(seed uint64) Design {
	r := rng.New(seed)
	var d Design
	d.OwnsDefault = DomainID(r.Intn(2))

	slaveKinds := []func(name string, r *rng.Source) (bus.Slave, SlaveSpec){
		func(name string, r *rng.Source) (bus.Slave, SlaveSpec) {
			return nil, SlaveSpec{Name: name, New: func() bus.Slave { return ip.NewSRAM(name) }}
		},
		func(name string, r *rng.Source) (bus.Slave, SlaveSpec) {
			f, n := r.Intn(3), r.Intn(2)
			return nil, SlaveSpec{Name: name,
				New:       func() bus.Slave { return ip.NewMemory(name, f, n) },
				WaitFirst: f, WaitNext: n}
		},
		func(name string, r *rng.Source) (bus.Slave, SlaveSpec) {
			s := r.Uint64()
			return nil, SlaveSpec{Name: name,
				New:       func() bus.Slave { return ip.NewJitterMemory(name, 1, 2, s) },
				WaitFirst: 1, WaitNext: 1}
		},
		func(name string, r *rng.Source) (bus.Slave, SlaveSpec) {
			k := 2 + r.Intn(5)
			return nil, SlaveSpec{Name: name,
				New: func() bus.Slave { return ip.NewRetryMemory(name, 0, k) }}
		},
		func(name string, r *rng.Source) (bus.Slave, SlaveSpec) {
			k, rel := 2+r.Intn(5), r.Intn(8)
			return nil, SlaveSpec{Name: name,
				New:          func() bus.Slave { return ip.NewSplitMemory(name, 0, k, rel) },
				SplitCapable: true}
		},
	}

	nSlaves := 1 + r.Intn(3)
	for i := 0; i < nSlaves; i++ {
		name := fmt.Sprintf("s%d", i)
		_, spec := slaveKinds[r.Intn(len(slaveKinds))](name, r)
		spec.Domain = DomainID(r.Intn(2))
		spec.Region = bus.Region{
			Lo: amba.Addr(i) * 0x10000,
			Hi: amba.Addr(i)*0x10000 + 0x8000, // leave unmapped holes
		}
		d.Slaves = append(d.Slaves, spec)
	}

	windows := make([]workload.Window, 0, nSlaves)
	for _, s := range d.Slaves {
		windows = append(windows, workload.Window{Lo: s.Region.Lo, Hi: s.Region.Lo + 0x2000})
	}

	nMasters := 1 + r.Intn(3)
	for i := 0; i < nMasters; i++ {
		name := fmt.Sprintf("m%d", i)
		dom := DomainID(r.Intn(2))
		kind := r.Intn(3)
		seed := r.Uint64()
		win := windows[r.Intn(len(windows))]
		// All randomness is drawn HERE, outside the closures: NewGen is
		// invoked once per build (reference and split), and a closure
		// that advanced the shared source would give the two builds
		// different workloads.
		var gen func() ip.Generator
		switch kind {
		case 0:
			write := r.Intn(2) == 0
			burst := []amba.Burst{amba.BurstIncr4, amba.BurstIncr8, amba.BurstWrap4}[r.Intn(3)]
			gap := r.Intn(3)
			gen = func() ip.Generator {
				return workload.NewStream(win, write, burst, amba.Size32, 0, gap, 0)
			}
		case 1:
			dst := windows[r.Intn(len(windows))]
			gap := r.Intn(3)
			gen = func() ip.Generator {
				return workload.NewDMACopy(win, dst, amba.BurstIncr4, gap, 0)
			}
		default:
			wr := r.Float64()
			maxGap := r.Intn(4)
			gen = func() ip.Generator {
				return workload.NewCPU(windows, wr, maxGap, 0, seed)
			}
		}
		d.Masters = append(d.Masters, MasterSpec{
			Name: name, Domain: dom, NewGen: gen, BusyEvery: []int{0, 0, 3}[r.Intn(3)],
		})
	}
	return d
}

// TestEquivalenceRandomDesigns is the repository's heaviest property
// test: random designs × random modes × random extension settings, each
// checked cycle-exact against the monolithic reference.
func TestEquivalenceRandomDesigns(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	modes := []Mode{Conservative, SLA, ALS, Auto}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		d := randomDesign(seed * 7919)
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid design: %v", seed, err)
		}
		r := rng.New(seed)
		cfg := Config{
			Mode:               modes[r.Intn(len(modes))],
			PredictIdle:        r.Intn(2) == 0,
			PredictBurstStarts: r.Intn(2) == 0,
			Adaptive:           r.Intn(2) == 0,
		}
		if r.Intn(3) == 0 {
			cfg.Accuracy = 0.5 + r.Float64()/2
			cfg.FaultSeed = seed
		}
		t.Run(fmt.Sprintf("seed=%d/mode=%v", seed, cfg.Mode), func(t *testing.T) {
			runBoth(t, d, cfg, 400)
		})
	}
}
