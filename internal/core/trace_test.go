package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"coemu/internal/amba"
	"coemu/internal/ip"
	"coemu/internal/trace"
	"coemu/internal/workload"
)

// runTraced executes the duplex design with the given accuracy twice —
// tracer detached and attached — and returns both reports plus the
// recorder. The fixture mixes conservative stretches, both leader
// directions, quiescent batches and (at accuracy < 1) rollbacks, so one
// run exercises every tracer hook.
func runTraced(t *testing.T, accuracy float64) (*Report, *Report, *trace.Recorder) {
	t.Helper()
	run := func(rec *trace.Recorder) *Report {
		cfg := Config{Mode: Auto, KeepTrace: true, CheckProtocol: true, Tracer: rec}
		if accuracy < 1 {
			cfg.Accuracy = accuracy
			cfg.FaultSeed = 11
		}
		e, err := NewEngine(duplexDesign(5), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(3000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rec := trace.NewRecorder(1 << 18)
	return run(nil), run(rec), rec
}

// TestTracerDifferentialIdentity pins the tracer as a pure observer:
// the full report — modeled time, channel statistics, behavioral
// counters, histograms and the committed cycle trace — is identical
// with the tracer attached and detached.
func TestTracerDifferentialIdentity(t *testing.T) {
	for _, accuracy := range []float64{1, 0.9} {
		off, on, rec := runTraced(t, accuracy)
		if rec.Len() == 0 {
			t.Fatal("tracer recorded nothing")
		}
		if !reflect.DeepEqual(off.Stats, on.Stats) {
			t.Errorf("accuracy %v: stats diverged with tracer on:\noff: %+v\non:  %+v", accuracy, off.Stats, on.Stats)
		}
		if off.Ledger != on.Ledger {
			t.Errorf("accuracy %v: ledger diverged: %+v vs %+v", accuracy, off.Ledger, on.Ledger)
		}
		if !reflect.DeepEqual(off.Channel, on.Channel) {
			t.Errorf("accuracy %v: channel stats diverged", accuracy)
		}
		if len(off.Trace) != len(on.Trace) {
			t.Fatalf("accuracy %v: trace lengths diverged: %d vs %d", accuracy, len(off.Trace), len(on.Trace))
		}
		for i := range off.Trace {
			if !off.Trace[i].Equal(on.Trace[i]) {
				t.Fatalf("accuracy %v: committed trace diverged at cycle %d", accuracy, i)
			}
		}
		if !reflect.DeepEqual(off.TransitionLengths, on.TransitionLengths) ||
			!reflect.DeepEqual(off.RollForthLengths, on.RollForthLengths) {
			t.Errorf("accuracy %v: histograms diverged", accuracy)
		}
	}
}

// TestTracerEventsMatchStats cross-checks the recorded event stream
// against the engine's own counters: every protocol phase the stats
// account for must appear in the trace with matching totals.
func TestTracerEventsMatchStats(t *testing.T) {
	_, rep, rec := runTraced(t, 0.9)
	if rec.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; grow the test ring", rec.Dropped())
	}
	var (
		consCycles, raCycles, fuCycles, rfCycles int64
		rollbacks, stores, flushes, mispredicts  int64
		syncs                                    int64
	)
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.EvConservative:
			consCycles += ev.N
		case trace.EvRunAhead:
			raCycles += ev.N
		case trace.EvFollowUp:
			fuCycles += ev.N
		case trace.EvRollForth:
			rfCycles += ev.N
		case trace.EvRollback:
			rollbacks++
			if ev.Arg <= 0 {
				t.Errorf("rollback without depth: %+v", ev)
			}
		case trace.EvStore:
			stores++
		case trace.EvFlush:
			flushes++
			if ev.Arg <= 0 {
				t.Errorf("flush without payload words: %+v", ev)
			}
		case trace.EvMispredict:
			mispredicts++
		case trace.EvSync:
			syncs++
		}
	}
	st := rep.Stats
	if consCycles != st.ConservativeCycles {
		t.Errorf("conservative span cycles = %d, stats say %d", consCycles, st.ConservativeCycles)
	}
	if raCycles != st.RunAheadCycles {
		t.Errorf("run-ahead span cycles = %d, stats say %d", raCycles, st.RunAheadCycles)
	}
	if fuCycles != st.FollowUpCycles {
		t.Errorf("follow-up span cycles = %d, stats say %d", fuCycles, st.FollowUpCycles)
	}
	if rfCycles != st.RollForthCycles {
		t.Errorf("roll-forth span cycles = %d, stats say %d", rfCycles, st.RollForthCycles)
	}
	if rollbacks != st.Rollbacks {
		t.Errorf("rollback events = %d, stats say %d", rollbacks, st.Rollbacks)
	}
	if stores != st.Stores {
		t.Errorf("store events = %d, stats say %d", stores, st.Stores)
	}
	if mispredicts != st.Mispredicts {
		t.Errorf("mispredict events = %d, stats say %d", mispredicts, st.Mispredicts)
	}
	if flushes != st.Transitions || syncs != st.Transitions {
		t.Errorf("flush/sync events = %d/%d, transitions = %d", flushes, syncs, st.Transitions)
	}
	if st.Rollbacks == 0 {
		t.Error("fixture produced no rollbacks; the trace never exercised the recovery path")
	}

	// The real event stream must export as a valid Perfetto-loadable
	// document with the protocol tracks populated.
	var b strings.Builder
	if err := trace.WriteChromeTrace(&b, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &arr); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, rec := range arr {
		if n, ok := rec["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"conservative", "run_ahead", "follow_up", "rollback", "flush"} {
		if !names[want] {
			t.Errorf("chrome export missing %q records", want)
		}
	}
}

// TestTracerEnabledAllocFree extends the steady-state allocation guards
// to a run with the tracer attached: Record writes into the
// preallocated ring, so enabling tracing must not add a single
// allocation to the cycle loop.
func TestTracerEnabledAllocFree(t *testing.T) {
	d := allocDesign()
	d.Masters[0].NewGen = func() ip.Generator {
		return workload.NewStream(workload.Window{Lo: 0, Hi: 0x4000}, true,
			amba.BurstIncr8, amba.Size32, 0, 0, 0)
	}
	// A deliberately tiny ring: the guard also covers the wrapped
	// (overwrite) path of Record.
	e, err := NewEngine(d, Config{Mode: ALS, Tracer: trace.NewRecorder(64)})
	if err != nil {
		t.Fatal(err)
	}
	transition := func() {
		leader := e.chooseLeader()
		if leader == nil {
			if err := e.conservativeCycle(); err != nil {
				t.Fatal(err)
			}
			return
		}
		if _, err := e.transition(leader, 1<<30); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		transition()
	}
	allocs := testing.AllocsPerRun(20, transition)
	if allocs != 0 {
		t.Fatalf("traced ALS transition allocated %.1f objects, want 0", allocs)
	}
}
