// Package device models the layered transport stack between the host
// simulator and a PCI-based simulation accelerator: API, device driver
// and physical medium, "each with static startup overhead" (paper §1.2).
//
// The paper measured the composite stack of the iPROVE accelerator on a
// Pentium-4 2.8 GHz host with a 33 MHz 32-bit PCI bus:
//
//	startup overhead     12.2 µs per channel access
//	payload sim→acc      49.95 ns/word
//	payload acc→sim      75.73 ns/word
//
// This package decomposes that startup into plausible per-layer
// contributions (user/kernel crossing, driver doorbell programming, PCI
// bus acquisition) whose sum reproduces the measured 12.2 µs, and
// exposes the effective-bandwidth curve that motivates the whole paper:
// short transfers are startup-dominated, so merging many small transfers
// into one burst is the only way to use the channel efficiently.
package device

import (
	"fmt"
	"time"
)

// Dir is a transfer direction across the host-accelerator boundary.
type Dir uint8

// Transfer directions.
const (
	SimToAcc Dir = iota
	AccToSim
)

// String returns a short direction label.
func (d Dir) String() string {
	if d == SimToAcc {
		return "sim->acc"
	}
	return "acc->sim"
}

// Layer is one element of the transport stack with a fixed startup cost
// paid once per channel access.
type Layer struct {
	Name    string
	Startup time.Duration
}

// Stack is an ordered transport stack plus the physical medium's
// per-word payload costs (in picoseconds, because the measured values
// carry sub-nanosecond precision).
type Stack struct {
	Layers         []Layer
	WordPsSimToAcc int64
	WordPsAccToSim int64
}

// IPROVE returns the stack calibrated to the paper's measurements. The
// per-layer split is a modeling choice (the paper reports only the sum);
// the sum is exactly 12.2 µs.
func IPROVE() Stack {
	return Stack{
		Layers: []Layer{
			{Name: "API (user/kernel crossing, buffer pinning)", Startup: 2700 * time.Nanosecond},
			{Name: "driver (doorbell, descriptor setup)", Startup: 4300 * time.Nanosecond},
			{Name: "PCI (arbitration, address phase, turnaround)", Startup: 5200 * time.Nanosecond},
		},
		WordPsSimToAcc: 49950, // 49.95 ns/word
		WordPsAccToSim: 75730, // 75.73 ns/word
	}
}

// Startup returns the total per-access startup overhead: the sum over
// all layers.
func (s Stack) Startup() time.Duration {
	var t time.Duration
	for _, l := range s.Layers {
		t += l.Startup
	}
	return t
}

// WordCost returns the payload cost of n words in direction d.
func (s Stack) WordCost(d Dir, n int) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("device: negative word count %d", n))
	}
	ps := s.WordPsSimToAcc
	if d == AccToSim {
		ps = s.WordPsAccToSim
	}
	return time.Duration(int64(n) * ps / 1000)
}

// AccessCost returns the total modeled duration of one channel access
// moving n words in direction d: startup plus payload.
func (s Stack) AccessCost(d Dir, n int) time.Duration {
	return s.Startup() + s.WordCost(d, n)
}

// EffectiveBandwidth returns the achieved payload bandwidth in
// words/second for an access of n words in direction d. It is the
// quantity whose collapse at small n motivates prediction packetizing.
func (s Stack) EffectiveBandwidth(d Dir, n int) float64 {
	if n <= 0 {
		return 0
	}
	total := s.AccessCost(d, n)
	return float64(n) / total.Seconds()
}

// StartupFraction returns the share of an access's duration spent on
// startup overhead rather than payload, in [0,1].
func (s Stack) StartupFraction(d Dir, n int) float64 {
	total := s.AccessCost(d, n)
	if total <= 0 {
		return 0
	}
	return float64(s.Startup()) / float64(total)
}
