package device

import (
	"testing"
	"time"
)

func TestIPROVECalibration(t *testing.T) {
	s := IPROVE()
	if got := s.Startup(); got != 12200*time.Nanosecond {
		t.Fatalf("startup = %v, want 12.2µs", got)
	}
	// 100 words sim→acc = 4995 ns.
	if got := s.WordCost(SimToAcc, 100); got != 4995*time.Nanosecond {
		t.Fatalf("payload(100, sim->acc) = %v", got)
	}
	if got := s.WordCost(AccToSim, 100); got != 7573*time.Nanosecond {
		t.Fatalf("payload(100, acc->sim) = %v", got)
	}
	if s.AccessCost(SimToAcc, 0) != s.Startup() {
		t.Fatal("zero-word access must cost exactly the startup")
	}
}

func TestStartupDominatesShortTransfers(t *testing.T) {
	s := IPROVE()
	// The paper's point: a 5-word transfer is almost all startup.
	if frac := s.StartupFraction(SimToAcc, 5); frac < 0.97 {
		t.Fatalf("startup fraction at 5 words = %v, want > 0.97", frac)
	}
	// Very large transfers amortize it away.
	if frac := s.StartupFraction(SimToAcc, 100000); frac > 0.01 {
		t.Fatalf("startup fraction at 100k words = %v, want < 0.01", frac)
	}
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	s := IPROVE()
	prev := 0.0
	for _, n := range []int{1, 2, 5, 16, 64, 256, 1024} {
		bw := s.EffectiveBandwidth(SimToAcc, n)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing at %d words: %g <= %g", n, bw, prev)
		}
		prev = bw
	}
	if s.EffectiveBandwidth(SimToAcc, 0) != 0 {
		t.Fatal("zero-word bandwidth must be 0")
	}
}

func TestAsymmetricDirections(t *testing.T) {
	s := IPROVE()
	if s.WordCost(AccToSim, 10) <= s.WordCost(SimToAcc, 10) {
		t.Fatal("acc->sim must be slower per word (measured 75.73 vs 49.95 ns)")
	}
}

func TestNegativeWordsPanics(t *testing.T) {
	s := IPROVE()
	defer func() {
		if recover() == nil {
			t.Fatal("negative words must panic")
		}
	}()
	s.WordCost(SimToAcc, -1)
}

func TestDirString(t *testing.T) {
	if SimToAcc.String() != "sim->acc" || AccToSim.String() != "acc->sim" {
		t.Fatal("direction labels wrong")
	}
}
