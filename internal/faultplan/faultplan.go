// Package faultplan defines seeded, deterministic fault-injection
// plans for chaos-testing the co-emulation stack. A plan is a small
// JSON document naming fault probabilities at three layers — the
// simulator–accelerator channel, the job-service workers, and the
// persistent result store — plus one seed that makes every injected
// fault reproducible.
//
// Plans are host-side test harness configuration, never part of a
// run's semantics: a spec's canonical hash ignores them, and a run
// that survives its faults must produce bit-identical results to the
// same run with no plan at all. All injection is off by default; a nil
// plan (or nil per-layer section) injects nothing.
//
// Grammar (all fields optional, probabilities in [0,1]):
//
//	{
//	  "seed": 42,
//	  "channel": {"corrupt": 0.001, "duplicate": 0.25, "delay": 0.1, "max_delay_us": 200},
//	  "service": {"worker_panic": 0.2, "slow_run": 0.2, "slow_delay_ms": 50},
//	  "store":   {"write_error": 0.1, "torn_write": 0.1}
//	}
package faultplan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Plan is one seeded fault-injection plan. The zero value (and nil)
// injects no faults anywhere.
type Plan struct {
	// Seed seeds every fault decision the plan drives. Layers derive
	// their own sub-streams from it (see Mix), so the same plan injects
	// the same faults at the same points run after run.
	Seed uint64 `json:"seed,omitempty"`
	// Channel configures channel-endpoint faults; nil disables them.
	Channel *ChannelFault `json:"channel,omitempty"`
	// Service configures service-worker faults; nil disables them.
	Service *ServiceFault `json:"service,omitempty"`
	// Store configures result-store write faults; nil disables them.
	Store *StoreFault `json:"store,omitempty"`
}

// ChannelFault configures fault injection at the channel endpoints:
// per-frame probabilities applied to every packed packet crossing the
// wire path.
type ChannelFault struct {
	// Corrupt is the per-frame probability of flipping one random bit
	// of the framed packet. Corruption is detected by the frame
	// checksum on receive and surfaced as a clean engine error.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Duplicate is the per-frame probability of delivering the frame
	// twice. Duplicates are detected by frame sequence numbers and
	// dropped by the receiver.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Delay is the per-frame probability of sleeping the sending host
	// thread for a random duration up to MaxDelayUS. Delay is host
	// jitter only — the modeled channel cost is unaffected.
	Delay float64 `json:"delay,omitempty"`
	// MaxDelayUS bounds the injected per-frame host delay, in
	// microseconds. 0 disables delay injection even if Delay > 0.
	MaxDelayUS int `json:"max_delay_us,omitempty"`
}

// ServiceFault configures fault injection in the job-service workers.
type ServiceFault struct {
	// WorkerPanic is the per-job probability of panicking the worker
	// mid-run. The service recovers, fails the job, and keeps serving.
	WorkerPanic float64 `json:"worker_panic,omitempty"`
	// SlowRun is the per-job probability of sleeping SlowDelayMS
	// before the run starts, exercising job deadlines and client
	// timeouts.
	SlowRun float64 `json:"slow_run,omitempty"`
	// SlowDelayMS is the injected slow-run delay, in milliseconds.
	// 0 disables slow-run injection even if SlowRun > 0.
	SlowDelayMS int `json:"slow_delay_ms,omitempty"`
}

// StoreFault configures fault injection in the persistent result
// store's write path.
type StoreFault struct {
	// WriteError is the per-Put probability of failing the write with
	// an injected error before touching the disk.
	WriteError float64 `json:"write_error,omitempty"`
	// TornWrite is the per-Put probability of persisting a truncated
	// entry — the torn write a crash mid-write would leave without
	// atomic renames. The store's on-read content-hash verification
	// must quarantine it instead of serving it.
	TornWrite float64 `json:"torn_write,omitempty"`
}

// Parse decodes and validates a JSON fault plan. Unknown fields are
// rejected so a typoed probability cannot silently disable a fault.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultplan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses the JSON fault plan at path.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultplan: %w", err)
	}
	return Parse(data)
}

// Validate checks every probability is in [0,1] and every duration
// bound is non-negative. A nil plan is valid.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if c := p.Channel; c != nil {
		if err := probs("channel", "corrupt", c.Corrupt, "duplicate", c.Duplicate, "delay", c.Delay); err != nil {
			return err
		}
		if c.MaxDelayUS < 0 {
			return fmt.Errorf("faultplan: channel.max_delay_us must be >= 0, got %d", c.MaxDelayUS)
		}
	}
	if s := p.Service; s != nil {
		if err := probs("service", "worker_panic", s.WorkerPanic, "slow_run", s.SlowRun); err != nil {
			return err
		}
		if s.SlowDelayMS < 0 {
			return fmt.Errorf("faultplan: service.slow_delay_ms must be >= 0, got %d", s.SlowDelayMS)
		}
	}
	if s := p.Store; s != nil {
		if err := probs("store", "write_error", s.WriteError, "torn_write", s.TornWrite); err != nil {
			return err
		}
	}
	return nil
}

// probs validates alternating name/value probability pairs for one
// plan section.
func probs(section string, pairs ...any) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		name, v := pairs[i].(string), pairs[i+1].(float64)
		if v < 0 || v > 1 {
			return fmt.Errorf("faultplan: %s.%s must be a probability in [0,1], got %v", section, name, v)
		}
	}
	return nil
}

// Mix derives a sub-stream seed from a plan seed and a salt (a layer
// tag, a job sequence number) with a splitmix64 finalizer, so layers
// and retries draw independent fault sequences from one plan seed.
func Mix(seed, salt uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15*(salt+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
