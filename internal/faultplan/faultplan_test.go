package faultplan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFullPlan(t *testing.T) {
	doc := `{
		"seed": 42,
		"channel": {"corrupt": 0.001, "duplicate": 0.25, "delay": 0.1, "max_delay_us": 200},
		"service": {"worker_panic": 0.2, "slow_run": 0.2, "slow_delay_ms": 50},
		"store": {"write_error": 0.1, "torn_write": 0.1}
	}`
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d, want 42", p.Seed)
	}
	if p.Channel == nil || p.Channel.Duplicate != 0.25 || p.Channel.MaxDelayUS != 200 {
		t.Fatalf("channel section = %+v", p.Channel)
	}
	if p.Service == nil || p.Service.WorkerPanic != 0.2 || p.Service.SlowDelayMS != 50 {
		t.Fatalf("service section = %+v", p.Service)
	}
	if p.Store == nil || p.Store.TornWrite != 0.1 {
		t.Fatalf("store section = %+v", p.Store)
	}
}

func TestParseEmptyPlanIsValid(t *testing.T) {
	p, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Channel != nil || p.Service != nil || p.Store != nil {
		t.Fatalf("empty plan grew sections: %+v", p)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"channel": {"corupt": 0.5}}`, "unknown field"},
		{"probability above one", `{"channel": {"corrupt": 1.5}}`, "probability"},
		{"negative probability", `{"service": {"worker_panic": -0.1}}`, "probability"},
		{"negative delay", `{"channel": {"delay": 0.5, "max_delay_us": -1}}`, "max_delay_us"},
		{"negative slow delay", `{"service": {"slow_run": 0.5, "slow_delay_ms": -3}}`, "slow_delay_ms"},
		{"store probability", `{"store": {"write_error": 2}}`, "probability"},
		{"not json", `{`, "faultplan"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNilPlanValidates(t *testing.T) {
	var p *Plan
	if err := p.Validate(); err != nil {
		t.Fatalf("nil plan Validate: %v", err)
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed": 7, "store": {"write_error": 0.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Seed != 7 || p.Store == nil || p.Store.WriteError != 0.5 {
		t.Fatalf("loaded plan = %+v", p)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestMixDerivesDistinctStreams(t *testing.T) {
	seen := make(map[uint64]uint64)
	for salt := uint64(0); salt < 100; salt++ {
		v := Mix(42, salt)
		if prev, dup := seen[v]; dup {
			t.Fatalf("Mix(42,%d) == Mix(42,%d) == %#x", salt, prev, v)
		}
		seen[v] = salt
	}
	if Mix(42, 3) != Mix(42, 3) {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(42, 3) == Mix(43, 3) {
		t.Fatal("Mix ignores the seed")
	}
}
