package ip

import (
	"math"
	"testing"

	"coemu/internal/amba"
)

// ctrlWrite is a 32-bit write address phase for a peripheral register.
func ctrlWrite(addr amba.Addr) amba.AddrPhase {
	return amba.AddrPhase{Addr: addr, Write: true, Size: amba.Size32, Trans: amba.TransNonSeq}
}

// TestIRQPeriphQuiescence pins the Quiescible contract on the
// countdown peripheral: SkipQuiescent(n) must match n Ticks for every
// n within the advertised bound, and the bound must stop exactly one
// tick short of the interrupt raise.
func TestIRQPeriphQuiescence(t *testing.T) {
	seq := NewIRQPeriph("t", 0x1)
	bat := NewIRQPeriph("t", 0x1)
	if seq.QuiescentFor() != math.MaxInt64 {
		t.Fatal("idle countdown should be quiescent forever")
	}
	for _, p := range []*IRQPeriph{seq, bat} {
		p.WriteCommit(ctrlWrite(PeriphCtrl), 7) // arm a 7-cycle countdown
	}
	q := bat.QuiescentFor()
	if q != 7 {
		t.Fatalf("QuiescentFor = %d, want 7", q)
	}
	for i := int64(0); i < q; i++ {
		seq.Tick(i)
	}
	bat.SkipQuiescent(q)
	if *seq != *bat {
		t.Fatalf("SkipQuiescent diverged: seq %+v, batch %+v", *seq, *bat)
	}
	if bat.IRQ() != 0 {
		t.Fatal("interrupt raised within the quiescent span")
	}
	bat.Tick(q) // the first non-quiescent tick raises the line
	if bat.IRQ() != 0x1 {
		t.Fatal("interrupt not raised on the tick after the span")
	}
}

// TestSplitMemoryQuiescence pins the same contract on the split
// release countdown.
func TestSplitMemoryQuiescence(t *testing.T) {
	seq := NewSplitMemory("s", 0, 4, 9)
	bat := NewSplitMemory("s", 0, 4, 9)
	if seq.QuiescentFor() != math.MaxInt64 {
		t.Fatal("unarmed release should be quiescent forever")
	}
	seq.NotifySplit(2)
	bat.NotifySplit(2)
	q := bat.QuiescentFor()
	if q != 9 {
		t.Fatalf("QuiescentFor = %d, want 9", q)
	}
	for i := int64(0); i < q; i++ {
		seq.Tick(i)
	}
	bat.SkipQuiescent(q)
	if seq.countdown != bat.countdown || seq.release != bat.release {
		t.Fatalf("SkipQuiescent diverged: seq (%d,%x), batch (%d,%x)",
			seq.countdown, seq.release, bat.countdown, bat.release)
	}
	bat.Tick(q)
	if bat.QuiescentFor() != 0 {
		t.Fatal("pending release must pin the bound to 0")
	}
	if bat.SplitRelease() != 1<<2 {
		t.Fatal("release line not raised after the span")
	}
}

// listGen replays a fixed transfer list (a minimal in-package stand-in
// for workload.Sequence, which would import-cycle here).
type listGen struct {
	xfers []Xfer
	i     int
}

func (g *listGen) Next() (Xfer, bool) {
	if g.i >= len(g.xfers) {
		return Xfer{}, false
	}
	x := g.xfers[g.i]
	g.i++
	return x, true
}

// TestTrafficMasterQuiescentCycles pins the master-side ground truth:
// the bound equals the remaining inter-transfer gap and an exhausted
// generator is idle forever.
func TestTrafficMasterQuiescentCycles(t *testing.T) {
	m := NewTrafficMaster("m", &listGen{xfers: []Xfer{{Addr: 0, Write: true, Gap: 5}}}, 0)
	if got := m.QuiescentCycles(); got != 5 {
		t.Fatalf("QuiescentCycles = %d, want the 5-cycle gap", got)
	}
	m.SkipIdle(3)
	if got := m.QuiescentCycles(); got != 2 {
		t.Fatalf("QuiescentCycles after SkipIdle(3) = %d, want 2", got)
	}

	done := NewTrafficMaster("d", &listGen{}, 0)
	if got := done.QuiescentCycles(); got != math.MaxInt64 {
		t.Fatalf("exhausted generator: QuiescentCycles = %d, want forever", got)
	}
}
