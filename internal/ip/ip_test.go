package ip

import (
	"testing"

	"coemu/internal/amba"
	"coemu/internal/bus"
)

// run steps the bus n cycles with the protocol checker attached, failing
// the test on any violation.
func run(t *testing.T, b *bus.Bus, n int) []amba.CycleState {
	t.Helper()
	var k amba.Checker
	var trace []amba.CycleState
	for i := 0; i < n; i++ {
		res := b.Step()
		if err := k.Check(res.State); err != nil {
			t.Fatalf("protocol violation: %v", err)
		}
		trace = append(trace, res.State)
	}
	return trace
}

func seq(xfers ...Xfer) Generator { return &sliceGen{xfers: xfers} }

// sliceGen is a minimal local generator (the workload package provides
// the real ones; keeping a local copy avoids an import cycle in tests).
type sliceGen struct {
	xfers []Xfer
	i     int
}

func (g *sliceGen) Next() (Xfer, bool) {
	if g.i >= len(g.xfers) {
		return Xfer{}, false
	}
	x := g.xfers[g.i]
	g.i++
	return x, true
}

func (g *sliceGen) Save() any     { return g.i }
func (g *sliceGen) Restore(v any) { g.i = v.(int) }

func TestLaneHelpers(t *testing.T) {
	// Byte at offset 2 occupies bits 16..23.
	if got := laneShift(0x1002, amba.Size8); got != 16 {
		t.Errorf("laneShift byte@2 = %d, want 16", got)
	}
	if got := laneMask(0x1002, amba.Size8); got != 0x00ff0000 {
		t.Errorf("laneMask byte@2 = %08x", uint32(got))
	}
	// Halfword at offset 2 occupies bits 16..31.
	if got := laneMask(0x1002, amba.Size16); got != 0xffff0000 {
		t.Errorf("laneMask half@2 = %08x", uint32(got))
	}
	if got := laneMask(0x1000, amba.Size32); got != 0xffffffff {
		t.Errorf("laneMask word = %08x", uint32(got))
	}
	w := InsertLanes(0xAABBCCDD, 0x00110000, 0x1002, amba.Size8)
	if w != 0xAA11CCDD {
		t.Errorf("InsertLanes = %08x", uint32(w))
	}
	if got := ExtractLanes(0xAABBCCDD, 0x1002, amba.Size16); got != 0xAABB0000 {
		t.Errorf("ExtractLanes = %08x", uint32(got))
	}
}

func TestMasterWriteThenReadBack(t *testing.T) {
	data := []amba.Word{0x11111111, 0x22222222, 0x33333333, 0x44444444}
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x100, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4, Data: data},
		Xfer{Addr: 0x100, Write: false, Size: amba.Size32, Burst: amba.BurstIncr4},
	), 0)
	mem := NewSRAM("mem")
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)

	run(t, b, 30)
	if !m.Idle() {
		t.Fatal("master did not finish")
	}
	log := m.Log()
	if len(log) != 8 {
		t.Fatalf("log has %d beats, want 8", len(log))
	}
	for i := 0; i < 4; i++ {
		if got := mem.PeekWord(amba.Addr(0x100 + 4*i)); got != data[i] {
			t.Errorf("mem[%x] = %08x, want %08x", 0x100+4*i, uint32(got), uint32(data[i]))
		}
		rd := log[4+i]
		if rd.Write || rd.Data != data[i] {
			t.Errorf("readback beat %d = %+v", i, rd)
		}
	}
}

func TestMasterSubWordLanes(t *testing.T) {
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x102, Write: true, Size: amba.Size8, Burst: amba.BurstSingle, Data: []amba.Word{0xAB}},
		Xfer{Addr: 0x100, Write: true, Size: amba.Size16, Burst: amba.BurstSingle, Data: []amba.Word{0x1234}},
		Xfer{Addr: 0x102, Write: false, Size: amba.Size8, Burst: amba.BurstSingle},
		Xfer{Addr: 0x100, Write: false, Size: amba.Size32, Burst: amba.BurstSingle},
	), 0)
	mem := NewSRAM("mem")
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	run(t, b, 30)

	log := m.Log()
	if len(log) != 4 {
		t.Fatalf("log %d beats, want 4", len(log))
	}
	if log[2].Data != 0xAB {
		t.Errorf("byte readback = %02x, want AB", uint32(log[2].Data))
	}
	// Word at 0x100: halfword 0x1234 at offset 0, byte AB at offset 2.
	if want := amba.Word(0x00AB1234); log[3].Data != want {
		t.Errorf("word readback = %08x, want %08x", uint32(log[3].Data), uint32(want))
	}
}

func TestMasterWrapBurst(t *testing.T) {
	data := []amba.Word{1, 2, 3, 4}
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x38, Write: true, Size: amba.Size32, Burst: amba.BurstWrap4, Data: data},
	), 0)
	mem := NewSRAM("mem")
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	run(t, b, 20)

	wantAddrs := []amba.Addr{0x38, 0x3c, 0x30, 0x34}
	for i, a := range wantAddrs {
		if got := mem.PeekWord(a); got != data[i] {
			t.Errorf("mem[%x] = %d, want %d", a, got, data[i])
		}
	}
}

func TestMasterWaitStates(t *testing.T) {
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x10, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4, Data: []amba.Word{5, 6, 7, 8}},
		Xfer{Addr: 0x10, Write: false, Size: amba.Size32, Burst: amba.BurstIncr4},
	), 0)
	mem := NewMemory("mem", 3, 1) // slow first beat, one wait after
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	run(t, b, 80)

	if !m.Idle() {
		t.Fatal("master did not finish against wait states")
	}
	log := m.Log()
	if len(log) != 8 {
		t.Fatalf("%d beats, want 8", len(log))
	}
	for i, want := range []amba.Word{5, 6, 7, 8} {
		if log[4+i].Data != want {
			t.Errorf("readback %d = %d, want %d", i, log[4+i].Data, want)
		}
	}
}

func TestMasterBusyInsertion(t *testing.T) {
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x20, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8,
			Data: []amba.Word{1, 2, 3, 4, 5, 6, 7, 8}},
	), 2) // BUSY before every 2nd beat
	mem := NewSRAM("mem")
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	trace := run(t, b, 40)

	busies := 0
	for _, cs := range trace {
		if cs.AP.Trans == amba.TransBusy {
			busies++
		}
	}
	if busies == 0 {
		t.Fatal("no BUSY cycles inserted")
	}
	if beats, _, _ := m.Stats(); beats != 8 {
		t.Fatalf("beats = %d, want 8", beats)
	}
	for i := 0; i < 8; i++ {
		if got := mem.PeekWord(amba.Addr(0x20 + 4*i)); got != amba.Word(i+1) {
			t.Errorf("mem[%x] = %d", 0x20+4*i, got)
		}
	}
}

func TestMasterRetryReissue(t *testing.T) {
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x40, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4, Data: []amba.Word{9, 8, 7, 6}},
	), 0)
	mem := NewRetryMemory("mem", 0, 3) // RETRY first attempt of every 3rd beat
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	run(t, b, 60)

	beats, retries, errs := m.Stats()
	if beats != 4 {
		t.Fatalf("beats = %d, want 4", beats)
	}
	if retries == 0 {
		t.Fatal("no retries seen")
	}
	if errs != 0 {
		t.Fatalf("errors = %d", errs)
	}
	for i, want := range []amba.Word{9, 8, 7, 6} {
		if got := mem.PeekWord(amba.Addr(0x40 + 4*i)); got != want {
			t.Errorf("mem[%x] = %d, want %d", 0x40+4*i, got, want)
		}
	}
}

func TestMasterErrorAbortsTransfer(t *testing.T) {
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x40, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4, Data: []amba.Word{1, 2, 3, 4}},
		Xfer{Addr: 0x80, Write: true, Size: amba.Size32, Burst: amba.BurstSingle, Data: []amba.Word{5}},
	), 0)
	errSlave := NewErrorSlave("err")
	mem := NewSRAM("mem")
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(errSlave, bus.Region{Lo: 0x40, Hi: 0x80}, 0)
	b.MapSlave(mem, bus.Region{Lo: 0x80, Hi: 0x1000}, 0)
	run(t, b, 40)

	_, _, errs := m.Stats()
	if errs != 1 {
		t.Fatalf("errors = %d, want 1 (burst aborted on first ERROR)", errs)
	}
	if !m.Idle() {
		t.Fatal("master should have moved on after the abort")
	}
	if got := mem.PeekWord(0x80); got != 5 {
		t.Fatalf("follow-up transfer did not complete: mem[0x80]=%d", got)
	}
}

func TestTwoMastersInterleave(t *testing.T) {
	m0 := NewTrafficMaster("m0", seq(
		Xfer{Addr: 0x00, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8,
			Data: []amba.Word{1, 2, 3, 4, 5, 6, 7, 8}},
	), 0)
	m1 := NewTrafficMaster("m1", seq(
		Xfer{Addr: 0x100, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8,
			Data: []amba.Word{11, 12, 13, 14, 15, 16, 17, 18}},
	), 0)
	mem := NewSRAM("mem")
	b := bus.New("t")
	b.AddMaster(m0)
	b.AddMaster(m1)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	run(t, b, 60)

	if !m0.Idle() || !m1.Idle() {
		t.Fatal("masters did not finish")
	}
	for i := 0; i < 8; i++ {
		if got := mem.PeekWord(amba.Addr(4 * i)); got != amba.Word(i+1) {
			t.Errorf("m0 data: mem[%x] = %d", 4*i, got)
		}
		if got := mem.PeekWord(amba.Addr(0x100 + 4*i)); got != amba.Word(i+11) {
			t.Errorf("m1 data: mem[%x] = %d", 0x100+4*i, got)
		}
	}
}

// TestSnapshotReplayDeterminism is the rollback cornerstone: freeze the
// whole system mid-flight, run N cycles, restore, run N cycles again —
// the two traces must be bit-identical.
func TestSnapshotReplayDeterminism(t *testing.T) {
	build := func() (*bus.Bus, []interface {
		Save() any
		Restore(any)
	}) {
		gen := &sliceGen{xfers: []Xfer{
			{Addr: 0x10, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8, Data: []amba.Word{1, 2, 3, 4, 5, 6, 7, 8}},
			{Addr: 0x10, Write: false, Size: amba.Size32, Burst: amba.BurstIncr8, Gap: 2},
			{Addr: 0x40, Write: true, Size: amba.Size32, Burst: amba.BurstWrap4, Data: []amba.Word{9, 9, 9, 9}},
			{Addr: 0x40, Write: false, Size: amba.Size32, Burst: amba.BurstWrap4},
		}}
		m := NewTrafficMaster("m", gen, 3)
		mem := NewJitterMemory("mem", 1, 2, 77)
		b := bus.New("t")
		b.AddMaster(m)
		b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
		snaps := []interface {
			Save() any
			Restore(any)
		}{b, m, gen, mem}
		return b, snaps
	}

	b, snaps := build()
	for i := 0; i < 7; i++ {
		b.Step()
	}
	saved := make([]any, len(snaps))
	for i, s := range snaps {
		saved[i] = s.Save()
	}
	const n = 25
	var first []amba.CycleState
	for i := 0; i < n; i++ {
		first = append(first, b.Step().State)
	}
	for i, s := range snaps {
		s.Restore(saved[i])
	}
	for i := 0; i < n; i++ {
		got := b.Step().State
		if !got.Equal(first[i]) {
			t.Fatalf("replay diverged at cycle %d:\nfirst:  %s\nreplay: %s", i, first[i], got)
		}
	}
}

func TestJitterMemoryVariesLatency(t *testing.T) {
	var xfers []Xfer
	for i := 0; i < 12; i++ {
		xfers = append(xfers, Xfer{Addr: amba.Addr(0x10 + 4*i), Write: false, Size: amba.Size32, Burst: amba.BurstSingle})
	}
	m := NewTrafficMaster("m", seq(xfers...), 0)
	mem := NewJitterMemory("mem", 0, 3, 123)
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	trace := run(t, b, 120)

	waits := 0
	for _, cs := range trace {
		if !cs.Reply.Ready {
			waits++
		}
	}
	if waits == 0 {
		t.Fatal("jitter memory never inserted a wait state")
	}
	if beats, _, _ := m.Stats(); beats != 12 {
		t.Fatalf("beats = %d, want 12", beats)
	}
}

func TestIRQPeriph(t *testing.T) {
	m := NewTrafficMaster("m", seq(
		// Start the countdown: fire after 5 cycles.
		Xfer{Addr: 0x800 + PeriphCtrl, Write: true, Size: amba.Size32, Burst: amba.BurstSingle, Data: []amba.Word{5}},
		// Poll status later (read-to-clear).
		Xfer{Addr: 0x800 + PeriphStatus, Write: false, Size: amba.Size32, Burst: amba.BurstSingle, Gap: 12},
		Xfer{Addr: 0x800 + PeriphCount, Write: false, Size: amba.Size32, Burst: amba.BurstSingle},
	), 0)
	p := NewIRQPeriph("irq", 0x1)
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(p, bus.Region{Lo: 0x800, Hi: 0x900}, 0x1)

	sawIRQ := false
	var k amba.Checker
	for i := 0; i < 60; i++ {
		res := b.Step()
		p.Tick(int64(i))
		if err := k.Check(res.State); err != nil {
			t.Fatalf("protocol violation: %v", err)
		}
		if res.State.IRQ&0x1 != 0 {
			sawIRQ = true
		}
	}
	if !sawIRQ {
		t.Fatal("interrupt line never raised")
	}
	log := m.Log()
	if len(log) != 3 {
		t.Fatalf("log %d, want 3", len(log))
	}
	if log[1].Data != 1 {
		t.Errorf("status read = %d, want 1 (pending)", log[1].Data)
	}
	if log[2].Data != 1 {
		t.Errorf("count read = %d, want 1", log[2].Data)
	}
	if p.IRQ() != 0 {
		t.Error("status read must clear the interrupt")
	}
}

func TestMemoryPokePeek(t *testing.T) {
	mem := NewSRAM("m")
	mem.PokeWord(0x100, 0xDEADBEEF)
	if got := mem.PeekWord(0x100); got != 0xDEADBEEF {
		t.Fatalf("PeekWord = %08x", uint32(got))
	}
	if got := mem.Peek(0x101); got != 0xBE {
		t.Fatalf("Peek byte = %02x", got)
	}
	mem.Poke(0x102, 0x55)
	if got := mem.PeekWord(0x100); got != 0xDE55BEEF {
		t.Fatalf("after Poke = %08x", uint32(got))
	}
}

func TestXferBeats(t *testing.T) {
	if (Xfer{Burst: amba.BurstIncr4}).Beats() != 4 {
		t.Error("INCR4 beats")
	}
	if (Xfer{Burst: amba.BurstIncr, Len: 7}).Beats() != 7 {
		t.Error("INCR len beats")
	}
	if (Xfer{Burst: amba.BurstIncr}).Beats() != 1 {
		t.Error("INCR default beats")
	}
}
