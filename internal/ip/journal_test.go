package ip

import (
	"testing"

	"coemu/internal/amba"
)

func wordWrite(addr amba.Addr, w amba.Word) amba.AddrPhase {
	return amba.AddrPhase{Addr: addr, Trans: amba.TransNonSeq, Write: true, Size: amba.Size32, Burst: amba.BurstSingle}
}

func TestMemoryJournalRestore(t *testing.T) {
	m := NewSRAM("m")
	m.SetJournaling(true)
	m.PokeWord(0x100, 0x11111111)

	snap := m.Save()
	// Overwrite an existing word, create a fresh one, and poke a byte.
	m.WriteCommit(wordWrite(0x100, 0), 0x22222222)
	m.WriteCommit(wordWrite(0x200, 0), 0x33333333)
	m.WriteCommit(amba.AddrPhase{Addr: 0x102, Write: true, Size: amba.Size8}, 0x00AB0000)
	if m.PeekWord(0x100) == 0x11111111 {
		t.Fatal("writes did not land")
	}

	m.Restore(snap)
	if got := m.PeekWord(0x100); got != 0x11111111 {
		t.Fatalf("restored 0x100 = %08x", uint32(got))
	}
	if got := m.PeekWord(0x200); got != 0 {
		t.Fatalf("restored 0x200 = %08x, want pristine 0", uint32(got))
	}
	// Never-written cells must read pristine after the undo.
	for i := amba.Addr(0); i < 4; i++ {
		if b := m.Peek(0x200 + i); b != 0 {
			t.Fatalf("journal restore left ghost byte %02x at %x", b, 0x200+i)
		}
	}
}

func TestMemoryJournalRepeatedTransitions(t *testing.T) {
	// The engine's pattern: save, mutate, sometimes restore, save again.
	m := NewSRAM("m")
	m.SetJournaling(true)
	control := NewSRAM("control") // full-copy mode as ground truth

	write := func(addr amba.Addr, v amba.Word) {
		m.WriteCommit(wordWrite(addr, 0), v)
		control.WriteCommit(wordWrite(addr, 0), v)
	}
	for round := 0; round < 50; round++ {
		sj := m.Save()
		sc := control.Save()
		for i := 0; i < 10; i++ {
			write(amba.Addr(0x100+4*((round*7+i*3)%64)), amba.Word(round*100+i))
		}
		if round%3 == 0 {
			m.Restore(sj)
			control.Restore(sc)
		}
	}
	for a := amba.Addr(0x100); a < 0x200; a += 4 {
		if m.PeekWord(a) != control.PeekWord(a) {
			t.Fatalf("journal and copy modes diverge at %x: %08x vs %08x",
				a, uint32(m.PeekWord(a)), uint32(control.PeekWord(a)))
		}
	}
}

func TestMemoryJournalStaleRestorePanics(t *testing.T) {
	m := NewSRAM("m")
	m.SetJournaling(true)
	old := m.Save()
	m.Save() // newer save invalidates old
	defer func() {
		if recover() == nil {
			t.Fatal("stale journal restore must panic")
		}
	}()
	m.Restore(old)
}

func TestJournalModeOffKeepsValueSemantics(t *testing.T) {
	// Full-copy mode allows restoring any older snapshot.
	m := NewSRAM("m")
	m.PokeWord(0x10, 1)
	s1 := m.Save()
	m.PokeWord(0x10, 2)
	s2 := m.Save()
	m.PokeWord(0x10, 3)
	m.Restore(s1)
	if m.PeekWord(0x10) != 1 {
		t.Fatal("restore s1 failed")
	}
	m.Restore(s2)
	if m.PeekWord(0x10) != 2 {
		t.Fatal("restore s2 failed")
	}
}
