// Package ip provides the bus components ("IP blocks") used to populate
// co-emulated SoC designs: traffic-generating bus masters and a family of
// slaves (SRAM, wait-state memory, jittery memory, interrupt peripheral,
// error and retry responders).
//
// Every component is deterministic and snapshotable (implements
// rollback.Snapshotter) so it can live in a leader domain and survive
// rollback/roll-forth replay bit-exactly.
package ip

import "coemu/internal/amba"

// AHB transfers narrower than the bus place their bytes on specific byte
// lanes of the 32-bit data bus according to the address's low bits
// (little-endian byte invariant). These helpers implement the lane
// placement shared by the memory slaves and the master-side data checks.

// laneShift returns the bit offset of the lane carrying the first byte
// of a transfer of size s at address a.
func laneShift(a amba.Addr, s amba.Size) uint {
	off := uint(a) & 0x3
	switch s {
	case amba.Size8:
		return 8 * off
	case amba.Size16:
		return 8 * (off &^ 1)
	default:
		return 0
	}
}

// laneMask returns the data-bus mask covering a transfer of size s at
// address a.
func laneMask(a amba.Addr, s amba.Size) amba.Word {
	var m amba.Word
	switch s {
	case amba.Size8:
		m = 0xff
	case amba.Size16:
		m = 0xffff
	default:
		m = 0xffffffff
	}
	return m << laneShift(a, s)
}

// InsertLanes merges the active lanes of src for a transfer at (a, s)
// into dst and returns the result. Inactive lanes of dst are preserved.
func InsertLanes(dst, src amba.Word, a amba.Addr, s amba.Size) amba.Word {
	m := laneMask(a, s)
	return (dst &^ m) | (src & m)
}

// ExtractLanes returns the active lanes of w for a transfer at (a, s),
// with inactive lanes zeroed. The value stays on its lanes (AHB does not
// re-align narrow data onto lane zero).
func ExtractLanes(w amba.Word, a amba.Addr, s amba.Size) amba.Word {
	return w & laneMask(a, s)
}
