package ip

import (
	"fmt"
	"math"

	"coemu/internal/amba"
	"coemu/internal/bus"
)

// Xfer describes one bus transaction a generator asks a master to issue.
type Xfer struct {
	Addr  amba.Addr
	Write bool
	Size  amba.Size
	Burst amba.Burst
	// Len is the beat count for BurstIncr; fixed-length bursts derive
	// their beat count from the burst type.
	Len int
	// Data holds one value per beat for writes, given in the low bits
	// (the master places them onto the correct byte lanes).
	Data []amba.Word
	// Gap is the number of idle cycles the master waits before
	// requesting the bus for this transfer.
	Gap int
}

// Beats returns the number of beats the transfer will issue.
func (x Xfer) Beats() int {
	if b := x.Burst.Beats(); b > 0 {
		return b
	}
	if x.Len > 0 {
		return x.Len
	}
	return 1
}

// Generator supplies a master with its transfer stream. Implementations
// must be deterministic; when they carry state (counters, PRNGs) they
// must also implement rollback.Snapshotter so a leader domain can replay
// them.
type Generator interface {
	// Next returns the next transfer, or ok=false when the stream ends.
	Next() (x Xfer, ok bool)
}

// BeatResult records one completed (or failed) beat, the master-side
// ground truth used by data-integrity tests.
type BeatResult struct {
	Addr  amba.Addr
	Write bool
	Size  amba.Size
	Data  amba.Word // low-bit normalized: write data sent or read data received
	Resp  amba.Resp
}

// activeXfer is the in-flight transfer with its issue bookkeeping. Beat
// addresses are derived on demand so the state is fully value-typed:
// snapshots are plain struct copies with nothing to alias.
type activeXfer struct {
	Valid     bool
	X         Xfer
	Beats     int
	Issue     int  // next beat index to present on the address phase
	Restarted bool // remainder reissued as INCR after retry/grant loss
	BusyFor   int  // beat index a BUSY was already inserted for (-1 none)

	// Memoized beat-address cursor: the addresses of beats MemoIdx and
	// MemoIdx-1. The per-cycle callers (issue at Issue, data phase at
	// Issue-1) advance monotonically, so addr stays O(1) amortized per
	// beat without materializing the burst's address sequence. Purely a
	// cache of X — value-copied snapshots stay consistent.
	MemoIdx  int
	MemoAddr amba.Addr
	MemoPrev amba.Addr
}

// addr returns the address of beat i, following the original burst's
// address sequence (wrap points included) even after an INCR restart.
func (a *activeXfer) addr(i int) amba.Addr {
	switch {
	case i == a.MemoIdx:
		return a.MemoAddr
	case i == a.MemoIdx-1 && i >= 0:
		return a.MemoPrev
	case i == a.MemoIdx+1:
		a.MemoPrev = a.MemoAddr
		a.MemoAddr = amba.NextAddr(a.MemoAddr, a.X.Size, a.X.Burst)
		a.MemoIdx = i
		return a.MemoAddr
	}
	// Rare (beat reissue after retry or restart): rebuild the cursor by
	// walking from the burst start.
	a.MemoIdx, a.MemoAddr, a.MemoPrev = 0, a.X.Addr, a.X.Addr
	for a.MemoIdx < i {
		a.MemoPrev = a.MemoAddr
		a.MemoAddr = amba.NextAddr(a.MemoAddr, a.X.Size, a.X.Burst)
		a.MemoIdx++
	}
	return a.MemoAddr
}

// masterState is everything a TrafficMaster must roll back.
type masterState struct {
	Cur       activeXfer
	Gap       int
	Granted   bool // owns the address phase in the upcoming cycle
	LastReady bool
	LastAP    amba.AddrPhase
	DataBeat  int // beat index currently in data phase (-1 none)
	Cancel    bool
	Masked    bool // split-masked: present IDLE until HSPLITx releases us
	NeedNS    bool // next issued beat must be NONSEQ
	Done      bool // generator exhausted
	LogLen    int
	Retries   int64
	Errors    int64
	BeatsDone int64
}

// TrafficMaster is the AHB bus master used for every workload in the
// reproduction. It is a full pin-level state machine: bursts, wait-state
// holds, BUSY insertion, two-cycle RETRY/ERROR handling with beat
// re-issue, and burst restart after losing the bus mid-burst.
//
// A TrafficMaster placed in the simulation domain plays the role of a
// transaction-level master; placed in the acceleration domain it plays
// an RTL block. The cycle behavior is identical by construction — which
// is exactly the property micro-architectural TLM promises (§1.1).
type TrafficMaster struct {
	name      string
	gen       Generator
	busyEvery int

	st  masterState
	log []BeatResult

	// dirty tracks mutation since the last MarkClean
	// (rollback.DeltaSnapshotter). Commit sets it unconditionally (it
	// always advances bookkeeping); Drive and SkipIdle set it only
	// when they actually change LastAP or the gap countdown, so an
	// idle master in a batched stretch stays clean and its snapshot is
	// skipped.
	dirty bool
}

var _ bus.Master = (*TrafficMaster)(nil)

// NewTrafficMaster creates a master fed by gen. busyEvery > 0 makes the
// master insert one BUSY cycle before every busyEvery-th beat of a
// burst, exercising the BUSY protocol path; 0 disables it.
func NewTrafficMaster(name string, gen Generator, busyEvery int) *TrafficMaster {
	if gen == nil {
		panic("ip: nil generator")
	}
	m := &TrafficMaster{name: name, gen: gen, busyEvery: busyEvery, dirty: true}
	m.st.DataBeat = -1
	m.st.Cur.BusyFor = -1
	m.st.LastReady = true
	m.fetch()
	return m
}

// Name implements bus.Master.
func (m *TrafficMaster) Name() string { return m.name }

// Log returns the completed-beat log.
func (m *TrafficMaster) Log() []BeatResult { return m.log }

// Stats returns beats completed, retries absorbed and error responses.
func (m *TrafficMaster) Stats() (beats, retries, errors int64) {
	return m.st.BeatsDone, m.st.Retries, m.st.Errors
}

// Idle reports whether the master has no transfer in flight and no more
// traffic to issue.
func (m *TrafficMaster) Idle() bool {
	return !m.st.Cur.Valid && m.st.Done && m.st.DataBeat < 0
}

// QuiescentCycles reports for how many upcoming cycles the master is
// guaranteed to contribute nothing to the bus: no request, an IDLE
// address phase, no beat in either pipeline phase. The bound is exact
// ground truth (the generator has already handed over the next
// transfer, so the remaining inter-transfer gap is known), which is
// what lets the engine's predicted-quiescence batching skip the
// master's Drive/Commit rounds without changing behavior. A master
// that may act on the very next cycle returns 0.
func (m *TrafficMaster) QuiescentCycles() int64 {
	if m.st.DataBeat >= 0 || m.st.Cancel || !m.st.LastReady || m.st.Masked {
		return 0
	}
	if !m.st.Cur.Valid {
		if m.st.Done {
			return math.MaxInt64 // stream exhausted: idle forever
		}
		return 0
	}
	return int64(m.st.Gap) // requests the bus the cycle the gap expires
}

// SkipIdle advances the master across n quiescent cycles in one step.
// The resulting state is bit-identical to n Drive/Commit rounds on an
// idle ready bus: the gap countdown drops by n and the recorded
// address phase is the IDLE one Drive would have driven. Callers must
// keep n <= QuiescentCycles().
func (m *TrafficMaster) SkipIdle(n int64) {
	if m.st.LastAP != (amba.AddrPhase{}) {
		m.st.LastAP = amba.AddrPhase{}
		m.dirty = true
	}
	if m.st.Cur.Valid && m.st.Gap > 0 {
		m.st.Gap -= int(n)
		m.dirty = true
	}
}

// fetch pulls the next transfer from the generator.
func (m *TrafficMaster) fetch() {
	if m.st.Done || m.st.Cur.Valid {
		return
	}
	x, ok := m.gen.Next()
	if !ok {
		m.st.Done = true
		return
	}
	beats := x.Beats()
	m.st.Cur = activeXfer{Valid: true, X: x, Beats: beats, BusyFor: -1,
		MemoAddr: x.Addr, MemoPrev: x.Addr}
	m.st.Gap = x.Gap
	m.st.NeedNS = true
}

// beatWData returns the lane-placed write data of beat i.
func (m *TrafficMaster) beatWData(i int) amba.Word {
	x := m.st.Cur.X
	var raw amba.Word
	if i < len(x.Data) {
		raw = x.Data[i]
	}
	a := m.st.Cur.addr(i)
	return ExtractLanes(raw<<laneShift(a, x.Size), a, x.Size)
}

// Drive implements bus.Master.
func (m *TrafficMaster) Drive() bus.MasterDrive {
	var d bus.MasterDrive
	cur := &m.st.Cur

	if cur.Valid && m.st.Gap == 0 && cur.Issue < cur.Beats {
		d.Req = true
	}
	if m.st.DataBeat >= 0 && cur.Valid && cur.X.Write {
		d.WData = m.beatWData(m.st.DataBeat)
	}

	switch {
	case m.st.Cancel:
		// First cycle of RETRY/ERROR/SPLIT seen last cycle: drive IDLE.
		d.AP = amba.AddrPhase{}
	case !m.st.LastReady:
		// Wait state: hold the address phase.
		d.AP = m.st.LastAP
	case m.st.Masked:
		// Split-masked: keep requesting but present no beats until the
		// slave raises our HSPLITx line.
		d.AP = amba.AddrPhase{}
	case m.st.Granted && d.Req:
		d.AP = m.buildAP()
	default:
		d.AP = amba.AddrPhase{}
	}
	if d.AP != m.st.LastAP {
		m.st.LastAP = d.AP
		m.dirty = true
	}
	return d
}

// buildAP constructs the address phase for the next beat, inserting BUSY
// cycles per configuration and choosing NONSEQ/SEQ per burst progress.
func (m *TrafficMaster) buildAP() amba.AddrPhase {
	cur := &m.st.Cur
	i := cur.Issue
	burst := cur.X.Burst
	if cur.Restarted {
		burst = amba.BurstIncr
	}
	ap := amba.AddrPhase{
		Addr:  cur.addr(i),
		Write: cur.X.Write,
		Size:  cur.X.Size,
		Burst: burst,
		Prot:  amba.ProtData,
	}
	needNS := m.st.NeedNS
	if !needNS && cur.Restarted && cur.addr(i) != cur.addr(i-1)+amba.Addr(cur.X.Size.Bytes()) {
		// Discontinuity in the reissued INCR remainder (a wrap point of
		// the original burst): a fresh NONSEQ is required.
		needNS = true
	}
	if needNS {
		ap.Trans = amba.TransNonSeq
		return ap
	}
	if m.busyEvery > 0 && i%m.busyEvery == 0 && cur.BusyFor != i {
		ap.Trans = amba.TransBusy
		return ap
	}
	ap.Trans = amba.TransSeq
	return ap
}

// Commit implements bus.Master.
func (m *TrafficMaster) Commit(fb bus.MasterFeedback) {
	m.dirty = true
	cur := &m.st.Cur

	if cur.Valid && m.st.Gap > 0 {
		m.st.Gap--
	}

	if !fb.Ready {
		// Wait state, or first cycle of a two-cycle response: remember
		// that the next address phase must be IDLE.
		if fb.OwnsData && fb.Resp != amba.RespOkay {
			m.st.Cancel = true
		}
		m.st.LastReady = false
		m.st.Granted = fb.GrantNext
		m.st.Masked = fb.SplitMasked
		return
	}

	// The clock edge with HREADY high: phases advance.
	issuedActive := fb.Granted && m.st.LastAP.Trans.Active()
	issuedBusy := fb.Granted && m.st.LastAP.Trans == amba.TransBusy
	completed := m.st.DataBeat
	newData := -1

	if issuedActive && cur.Valid {
		newData = cur.Issue
		cur.Issue++
		m.st.NeedNS = false
	}
	if issuedBusy && cur.Valid {
		cur.BusyFor = cur.Issue
	}

	if fb.OwnsData && completed >= 0 && cur.Valid {
		switch fb.Resp {
		case amba.RespOkay:
			m.logBeat(completed, fb.RData, amba.RespOkay)
			m.st.BeatsDone++
			if completed == cur.Beats-1 {
				m.finish()
				newData = -1
			}
		case amba.RespError:
			m.logBeat(completed, fb.RData, amba.RespError)
			m.st.Errors++
			m.finish()
			newData = -1
		case amba.RespRetry, amba.RespSplit:
			// The failed beat must be reissued; the remainder of the
			// burst restarts as INCR.
			m.st.Retries++
			cur.Issue = completed
			cur.Restarted = true
			m.st.NeedNS = true
			newData = -1
		}
	}

	m.st.DataBeat = newData
	m.st.Cancel = false
	m.st.LastReady = true
	m.st.Granted = fb.GrantNext
	m.st.Masked = fb.SplitMasked

	if cur.Valid && cur.Issue < cur.Beats && !fb.GrantNext && cur.Issue > 0 {
		// Lost the bus mid-burst: restart the remainder when regranted.
		cur.Restarted = true
		m.st.NeedNS = true
	}
}

// finish retires the current transfer and prefetches the next.
func (m *TrafficMaster) finish() {
	m.st.Cur = activeXfer{BusyFor: -1}
	m.fetch()
}

// logBeat appends the result of beat i.
func (m *TrafficMaster) logBeat(i int, rdata amba.Word, resp amba.Resp) {
	cur := &m.st.Cur
	a := cur.addr(i)
	sz := cur.X.Size
	var data amba.Word
	if cur.X.Write {
		if i < len(cur.X.Data) {
			data = cur.X.Data[i] & (laneMask(0, sz))
		}
	} else {
		data = ExtractLanes(rdata, a, sz) >> laneShift(a, sz)
	}
	m.log = append(m.log, BeatResult{Addr: a, Write: cur.X.Write, Size: sz, Data: data, Resp: resp})
	m.st.LogLen = len(m.log)
}

// masterSnap freezes a TrafficMaster. masterState is fully value-typed
// apart from Xfer.Data, which generators never mutate after handing the
// transfer out, so a struct copy is a deep copy.
type masterSnap struct {
	St masterState
}

// Save implements rollback.Snapshotter.
func (m *TrafficMaster) Save() any { return m.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a master.
func (m *TrafficMaster) SaveInto(prev any) any {
	s, ok := prev.(*masterSnap)
	if !ok {
		s = new(masterSnap)
	}
	s.St = m.st
	return s
}

// Restore implements rollback.Snapshotter.
func (m *TrafficMaster) Restore(v any) {
	s, ok := v.(*masterSnap)
	if !ok {
		panic(fmt.Sprintf("ip: master %s: bad snapshot %T", m.name, v))
	}
	m.st = s.St
	m.dirty = true
	// The log is append-only; rolling back means truncating to the
	// recorded length.
	if m.st.LogLen <= len(m.log) {
		m.log = m.log[:m.st.LogLen]
	}
}

// Dirty implements rollback.DeltaSnapshotter.
func (m *TrafficMaster) Dirty() bool { return m.dirty }

// MarkClean implements rollback.DeltaSnapshotter.
func (m *TrafficMaster) MarkClean() { m.dirty = false }

// SaveDelta implements rollback.DeltaSnapshotter; masterState is one
// value struct, so deltas are self-contained copies.
func (m *TrafficMaster) SaveDelta(prev any) any { return m.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (m *TrafficMaster) RestoreDelta(newest any) { m.Restore(newest) }
