package ip

import (
	"fmt"
	"math"

	"coemu/internal/amba"
	"coemu/internal/bus"
)

// Register offsets of the IRQPeriph register file.
const (
	// PeriphCtrl starts a countdown: writing N raises the interrupt
	// line after N cycles (N=0 raises it immediately).
	PeriphCtrl amba.Addr = 0x0
	// PeriphStatus reads 1 while the interrupt is pending; reading it
	// acknowledges and clears the interrupt.
	PeriphStatus amba.Addr = 0x4
	// PeriphScratch is a plain read/write register.
	PeriphScratch amba.Addr = 0x8
	// PeriphCount reads the number of interrupts raised so far.
	PeriphCount amba.Addr = 0xC
)

// IRQPeriph is a register-file slave with a countdown timer that raises
// an interrupt line. Interrupts are the paper's example (§3, end) of a
// non-bus signal crossing the domain split: when the peripheral sits in
// one domain and the interrupt consumer in the other, the IRQ bit rides
// the MSABS exchange and is subject to prediction like everything else.
type IRQPeriph struct {
	name string
	line uint32 // bitmask of the IRQ line this peripheral owns

	countdown int64 // -1 idle
	pending   bool
	scratch   amba.Word
	raised    int64
	waitLeft  int
}

var (
	_ bus.Slave     = (*IRQPeriph)(nil)
	_ bus.IRQSource = (*IRQPeriph)(nil)
)

// NewIRQPeriph creates a peripheral owning the given IRQ line bit.
func NewIRQPeriph(name string, line uint32) *IRQPeriph {
	return &IRQPeriph{name: name, line: line, countdown: -1, waitLeft: -1}
}

// Name implements bus.Slave.
func (p *IRQPeriph) Name() string { return p.name }

// IRQ implements bus.IRQSource.
func (p *IRQPeriph) IRQ() uint32 {
	if p.pending {
		return p.line
	}
	return 0
}

// Raised returns the number of interrupts raised so far.
func (p *IRQPeriph) Raised() int64 { return p.raised }

// Tick implements sim.Clocked: the countdown runs on the target clock.
func (p *IRQPeriph) Tick(int64) {
	if p.countdown < 0 {
		return
	}
	if p.countdown == 0 {
		p.pending = true
		p.raised++
		p.countdown = -1
		return
	}
	p.countdown--
}

// QuiescentFor implements sim.Quiescible: with no countdown armed the
// peripheral ticks forever without visible effect; an armed countdown
// of c permits c pure decrements before the tick that raises the
// interrupt line.
func (p *IRQPeriph) QuiescentFor() int64 {
	if p.countdown < 0 {
		return math.MaxInt64
	}
	return p.countdown
}

// SkipQuiescent implements sim.Quiescible: n ticks collapse to one
// countdown subtraction. Callers keep n <= QuiescentFor().
func (p *IRQPeriph) SkipQuiescent(n int64) {
	if p.countdown >= 0 {
		p.countdown -= n
	}
}

// Respond implements bus.Slave. Register access costs one wait state,
// giving the peripheral a distinct (but deterministic) timing profile.
func (p *IRQPeriph) Respond(ap amba.AddrPhase) amba.SlaveReply {
	if p.waitLeft < 0 {
		p.waitLeft = 1
	}
	if p.waitLeft > 0 {
		p.waitLeft--
		return amba.SlaveReply{Ready: false, Resp: amba.RespOkay}
	}
	reply := amba.SlaveReply{Ready: true, Resp: amba.RespOkay}
	if ap.Write {
		return reply
	}
	var v amba.Word
	switch ap.Addr & 0xF {
	case PeriphStatus:
		if p.pending {
			v = 1
		}
		p.pending = false // read-to-clear
	case PeriphScratch:
		v = p.scratch
	case PeriphCount:
		v = amba.Word(p.raised)
	}
	reply.RData = ExtractLanes(v<<laneShift(ap.Addr, ap.Size), ap.Addr, ap.Size)
	return reply
}

// WriteCommit implements bus.Slave: register writes land at the edge.
func (p *IRQPeriph) WriteCommit(ap amba.AddrPhase, wdata amba.Word) {
	v := ExtractLanes(wdata, ap.Addr, ap.Size) >> laneShift(ap.Addr, ap.Size)
	switch ap.Addr & 0xF {
	case PeriphCtrl:
		p.countdown = int64(v)
	case PeriphScratch:
		p.scratch = v
	default:
		// Writes to read-only registers are ignored.
	}
}

// Commit implements bus.Slave.
func (p *IRQPeriph) Commit(ready bool) {
	if ready {
		p.waitLeft = -1
	}
}

// periphSnap freezes an IRQPeriph.
type periphSnap struct {
	Countdown int64
	Pending   bool
	Scratch   amba.Word
	Raised    int64
	WaitLeft  int
}

// Save implements rollback.Snapshotter.
func (p *IRQPeriph) Save() any {
	return periphSnap{Countdown: p.countdown, Pending: p.pending, Scratch: p.scratch, Raised: p.raised, WaitLeft: p.waitLeft}
}

// Restore implements rollback.Snapshotter.
func (p *IRQPeriph) Restore(v any) {
	s, ok := v.(periphSnap)
	if !ok {
		panic(fmt.Sprintf("ip: periph %s: bad snapshot %T", p.name, v))
	}
	p.countdown = s.Countdown
	p.pending = s.Pending
	p.scratch = s.Scratch
	p.raised = s.Raised
	p.waitLeft = s.WaitLeft
}
