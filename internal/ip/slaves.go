package ip

import (
	"fmt"
	"math"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/rng"
)

// Memory pages. Storage is a sparse table of lazily-allocated 4 KB
// pages rather than a byte map: a word-aligned access never crosses a
// page, so a beat costs one table lookup plus array indexing instead of
// four map operations — the difference between the bus hot loop being
// map-bound and memory access being noise.
const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// memPage is one 4 KB page plus its dirty mark: stamp equals the
// memory's current save sequence exactly when the page has already
// been copy-on-write stashed in the current save interval. The mark is
// the per-page dirty bitmap of the delta snapshot scheme — each write
// costs one compare instead of a journal append, and only touched
// pages are ever copied.
type memPage struct {
	data  [pageSize]byte
	stamp uint64
}

// Memory is a byte-addressable memory slave with a configurable,
// deterministic wait-state profile: the first beat of a data-phase
// sequence costs firstWait cycles, subsequent back-to-back beats cost
// nextWait. With both zero it behaves as a zero-wait SRAM; with
// firstWait > nextWait it approximates an SDRAM row hit/miss pattern.
//
// Deterministic wait profiles are what makes slave responses
// "predictable" in the paper's sense: the leader-side response predictor
// runs the same producer-consumer model and stays at 100 % accuracy.
type Memory struct {
	name      string
	firstWait int
	nextWait  int

	pages    map[amba.Addr]*memPage // key: addr >> pageShift
	waitLeft int
	inBurst  bool
	reads    int64
	writes   int64

	// Journal mode: instead of deep-copying the pages on every Save
	// (O(footprint)), copy-on-write stash the prior content of each
	// page on its first write of a save interval and rewind on Restore
	// (O(pages touched since the save)). The leader snapshots once per
	// transition, so this is the difference between O(memory) and
	// O(touched pages) work per transition on the host. Saves seal the
	// interval in O(1).
	journaling bool
	undo       []pageUndo
	undoFree   []*memPage
	saveSeq    uint64

	// mut/savedCtrl/cleanCtrl implement dirty tracking for delta
	// snapshots: mut is set by any memory write, the ctrl compare
	// catches wait-state and counter movement.
	mut       bool
	savedCtrl memCtrl
	cleanCtrl bool
}

// pageUndo is one copy-on-write stash: the content a page held when
// the current save interval began.
type pageUndo struct {
	key amba.Addr // page key (addr >> pageShift)
	old *memPage
}

// memCtrl is the memory's non-page registered state, grouped for
// compare-on-save dirty tracking.
type memCtrl struct {
	WaitLeft int
	InBurst  bool
	Reads    int64
	Writes   int64
}

// Journaler is implemented by components supporting O(1) snapshots via
// undo journaling. Journal mode restricts the snapshot discipline: only
// the most recent Save may be restored (exactly the leader's rollback
// pattern).
type Journaler interface {
	SetJournaling(bool)
}

var _ bus.Slave = (*Memory)(nil)

// NewMemory creates a memory slave.
func NewMemory(name string, firstWait, nextWait int) *Memory {
	if firstWait < 0 || nextWait < 0 {
		panic("ip: negative wait states")
	}
	return &Memory{
		name:      name,
		firstWait: firstWait,
		nextWait:  nextWait,
		pages:     make(map[amba.Addr]*memPage),
		waitLeft:  -1,
	}
}

// NewSRAM creates a zero-wait memory.
func NewSRAM(name string) *Memory { return NewMemory(name, 0, 0) }

// Name implements bus.Slave.
func (s *Memory) Name() string { return s.name }

// Stats returns completed read and write beats.
func (s *Memory) Stats() (reads, writes int64) { return s.reads, s.writes }

// pageFor returns the page containing a, lazily allocating it when
// create is set (nil otherwise).
func (s *Memory) pageFor(a amba.Addr, create bool) *memPage {
	p := s.pages[a>>pageShift]
	if p == nil && create {
		p = new(memPage)
		s.pages[a>>pageShift] = p
	}
	return p
}

// Poke writes one byte directly, for test setup.
func (s *Memory) Poke(a amba.Addr, b byte) {
	p := s.pageFor(a, true)
	s.stash(a, p)
	s.mut = true
	p.data[a&pageMask] = b
}

// Peek reads one byte directly, for test inspection.
func (s *Memory) Peek(a amba.Addr) byte {
	p := s.pageFor(a, false)
	if p == nil {
		return 0
	}
	return p.data[a&pageMask]
}

// PokeWord writes a 32-bit word at a word-aligned address.
func (s *Memory) PokeWord(a amba.Addr, w amba.Word) {
	a &^= 3
	p := s.pageFor(a, true)
	s.stash(a, p)
	s.mut = true
	off := a & pageMask
	for i := 0; i < 4; i++ {
		p.data[off+amba.Addr(i)] = byte(w >> (8 * uint(i)))
	}
}

// PeekWord reads a 32-bit word at a word-aligned address.
func (s *Memory) PeekWord(a amba.Addr) amba.Word {
	a &^= 3
	p := s.pageFor(a, false)
	if p == nil {
		return 0
	}
	off := a & pageMask
	var w amba.Word
	for i := 0; i < 4; i++ {
		w |= amba.Word(p.data[off+amba.Addr(i)]) << (8 * uint(i))
	}
	return w
}

// stash copy-on-write saves page p (holding address a) into the
// current save interval's undo list unless it is already there. It is
// a no-op outside journal mode or before the first save — writes that
// can never be rolled across must not grow an unbounded undo list.
func (s *Memory) stash(a amba.Addr, p *memPage) {
	if !s.journaling || s.saveSeq == 0 || p.stamp == s.saveSeq {
		return
	}
	var buf *memPage
	if k := len(s.undoFree); k > 0 {
		buf = s.undoFree[k-1]
		s.undoFree = s.undoFree[:k-1]
	} else {
		buf = new(memPage)
	}
	*buf = *p
	s.undo = append(s.undo, pageUndo{key: a >> pageShift, old: buf})
	p.stamp = s.saveSeq
}

// waits returns the wait-state budget for a new beat.
func (s *Memory) waits() int {
	if s.inBurst {
		return s.nextWait
	}
	return s.firstWait
}

// Respond implements bus.Slave. The reply is a function of the slave's
// own state only (never of write data), which is what makes leader-side
// response prediction sound.
func (s *Memory) Respond(ap amba.AddrPhase) amba.SlaveReply {
	if s.waitLeft < 0 {
		s.waitLeft = s.waits()
	}
	if s.waitLeft > 0 {
		s.waitLeft--
		return amba.SlaveReply{Ready: false, Resp: amba.RespOkay}
	}
	// Beat completes this cycle.
	reply := amba.SlaveReply{Ready: true, Resp: amba.RespOkay}
	if ap.Write {
		s.writes++
	} else {
		reply.RData = ExtractLanes(s.PeekWord(ap.Addr&^3), ap.Addr, ap.Size)
		s.reads++
	}
	return reply
}

// WriteCommit implements bus.Slave: the completing write beat's data
// lands in memory at the clock edge.
func (s *Memory) WriteCommit(ap amba.AddrPhase, wdata amba.Word) {
	base := ap.Addr &^ 3
	m := laneMask(ap.Addr, ap.Size)
	p := s.pageFor(base, true)
	s.stash(base, p)
	s.mut = true
	off := base & pageMask
	for i := 0; i < 4; i++ {
		if m&(0xff<<(8*uint(i))) != 0 {
			p.data[off+amba.Addr(i)] = byte(wdata >> (8 * uint(i)))
		}
	}
}

// SetJournaling implements Journaler.
func (s *Memory) SetJournaling(on bool) {
	s.journaling = on
	s.recycleUndo()
}

// recycleUndo empties the undo list, returning page buffers to the
// free list.
func (s *Memory) recycleUndo() {
	for i := range s.undo {
		s.undoFree = append(s.undoFree, s.undo[i].old)
		s.undo[i].old = nil
	}
	s.undo = s.undo[:0]
}

// Commit implements bus.Slave.
func (s *Memory) Commit(ready bool) {
	if ready {
		s.waitLeft = -1
		s.inBurst = true
	}
}

// TickIdle informs the memory that a cycle passed with no beat addressed
// to it, ending any back-to-back sequence. The bus does not call Commit
// on idle slaves, so the engine (or the memory's own heuristic) resets
// burst affinity lazily: the simplest correct model keeps inBurst sticky
// within a data-phase run; Reset clears it.
func (s *Memory) TickIdle() { s.inBurst = false }

// memorySnap freezes a Memory. In journal mode Mem is nil and Seq pins
// the snapshot to the most recent Save.
type memorySnap struct {
	Mem      map[amba.Addr]*memPage
	Seq      uint64
	WaitLeft int
	InBurst  bool
	Reads    int64
	Writes   int64
}

// Save implements rollback.Snapshotter.
func (s *Memory) Save() any { return s.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter. In journal mode the
// save is O(1) — it seals the current copy-on-write interval — and,
// with a recycled prev, allocation-free; otherwise the page table is
// deep-copied into prev's map (cleared first) or a fresh one.
func (s *Memory) SaveInto(prev any) any {
	snap, ok := prev.(*memorySnap)
	if !ok {
		snap = new(memorySnap)
	}
	snap.WaitLeft = s.waitLeft
	snap.InBurst = s.inBurst
	snap.Reads = s.reads
	snap.Writes = s.writes
	if s.journaling {
		s.recycleUndo()
		s.saveSeq++
		snap.Seq = s.saveSeq
		snap.Mem = nil
		return snap
	}
	snap.Seq = 0
	if snap.Mem == nil {
		snap.Mem = make(map[amba.Addr]*memPage, len(s.pages))
	}
	copyPages(snap.Mem, s.pages)
	return snap
}

// copyPages deep-copies src into dst, recycling dst's page buffers and
// dropping keys absent from src.
func copyPages(dst, src map[amba.Addr]*memPage) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, sp := range src {
		dp := dst[k]
		if dp == nil {
			dp = new(memPage)
			dst[k] = dp
		}
		*dp = *sp
	}
}

// Restore implements rollback.Snapshotter.
func (s *Memory) Restore(v any) {
	snap, ok := v.(*memorySnap)
	if !ok {
		panic(fmt.Sprintf("ip: memory %s: bad snapshot %T", s.name, v))
	}
	if s.journaling {
		if snap.Seq != s.saveSeq {
			panic(fmt.Sprintf("ip: memory %s: journal restore of stale snapshot (seq %d, current %d)",
				s.name, snap.Seq, s.saveSeq))
		}
		for i := range s.undo {
			u := s.undo[i]
			// The page exists: the stash was recorded by the write that
			// dirtied it. The copy restores both the content and the
			// pre-interval stamp.
			*s.pages[u.key] = *u.old
		}
		s.recycleUndo()
	} else {
		copyPages(s.pages, snap.Mem)
	}
	s.waitLeft = snap.WaitLeft
	s.inBurst = snap.InBurst
	s.reads = snap.Reads
	s.writes = snap.Writes
	s.mut = true
}

// ctrl groups the non-page registered state for dirty comparison.
func (s *Memory) ctrl() memCtrl {
	return memCtrl{WaitLeft: s.waitLeft, InBurst: s.inBurst, Reads: s.reads, Writes: s.writes}
}

// Dirty implements rollback.DeltaSnapshotter: any write since the last
// MarkClean (mut), or any wait-state/counter movement (ctrl compare),
// makes the memory dirty.
func (s *Memory) Dirty() bool { return s.mut || !s.cleanCtrl || s.ctrl() != s.savedCtrl }

// MarkClean implements rollback.DeltaSnapshotter.
func (s *Memory) MarkClean() {
	s.mut = false
	s.savedCtrl = s.ctrl()
	s.cleanCtrl = true
}

// SaveDelta implements rollback.DeltaSnapshotter. In journal mode a
// save is already incremental (an O(1) interval seal whose cost was
// paid page-by-page as writes landed), so the delta is the same
// record; deltas are restorable newest-only, which Registry.Restore
// and the seal sequence check both enforce.
func (s *Memory) SaveDelta(prev any) any { return s.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (s *Memory) RestoreDelta(newest any) { s.Restore(newest) }

// JitterMemory is a memory whose per-beat wait states vary pseudo-
// randomly in [base, base+spread]. Its latency cannot be tracked by a
// static producer-consumer model, so leader-side response predictions
// genuinely miss — the component used to induce organic rollbacks.
type JitterMemory struct {
	Memory
	rng    *rng.Source
	spread int
	own    bool // rng consumed since MarkClean (delta dirty tracking)
}

// NewJitterMemory creates a jittery memory with the given base wait
// count, jitter spread and PRNG seed.
func NewJitterMemory(name string, base, spread int, seed uint64) *JitterMemory {
	if spread <= 0 {
		panic("ip: jitter spread must be positive")
	}
	j := &JitterMemory{rng: rng.New(seed), spread: spread}
	j.Memory = *NewMemory(name, base, base)
	return j
}

// Respond implements bus.Slave, rolling fresh jitter for each new beat.
func (j *JitterMemory) Respond(ap amba.AddrPhase) amba.SlaveReply {
	if j.waitLeft < 0 {
		j.waitLeft = j.firstWait + j.rng.Intn(j.spread+1)
		j.own = true
	}
	return j.Memory.Respond(ap)
}

// jitterSnap composes the memory snapshot with the PRNG state.
type jitterSnap struct {
	Mem any
	Rng any
}

// Save implements rollback.Snapshotter.
func (j *JitterMemory) Save() any { return j.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter. Wrappers around
// Memory must define their own SaveInto: the embedded Memory's would
// otherwise be promoted and snapshot only the memory half.
func (j *JitterMemory) SaveInto(prev any) any {
	s, ok := prev.(*jitterSnap)
	if !ok {
		s = new(jitterSnap)
	}
	s.Mem = j.Memory.SaveInto(s.Mem)
	s.Rng = j.rng.SaveInto(s.Rng)
	return s
}

// Restore implements rollback.Snapshotter.
func (j *JitterMemory) Restore(v any) {
	s, ok := v.(*jitterSnap)
	if !ok {
		panic(fmt.Sprintf("ip: jitter memory: bad snapshot %T", v))
	}
	j.Memory.Restore(s.Mem)
	j.rng.Restore(s.Rng)
	j.own = true
}

// Dirty implements rollback.DeltaSnapshotter (wrappers must override
// the embedded Memory's delta methods; see JitterMemory.SaveInto).
func (j *JitterMemory) Dirty() bool { return j.own || j.Memory.Dirty() }

// MarkClean implements rollback.DeltaSnapshotter.
func (j *JitterMemory) MarkClean() {
	j.own = false
	j.Memory.MarkClean()
}

// SaveDelta implements rollback.DeltaSnapshotter: the composed save is
// already incremental in journal mode (see Memory.SaveDelta).
func (j *JitterMemory) SaveDelta(prev any) any { return j.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (j *JitterMemory) RestoreDelta(newest any) { j.Restore(newest) }

// ErrorSlave responds to every active beat with a two-cycle ERROR, the
// behavior of the AHB default slave, packaged as a mappable component.
type ErrorSlave struct {
	name   string
	second bool
	errors int64
}

var _ bus.Slave = (*ErrorSlave)(nil)

// NewErrorSlave creates an always-erroring slave.
func NewErrorSlave(name string) *ErrorSlave { return &ErrorSlave{name: name} }

// Name implements bus.Slave.
func (e *ErrorSlave) Name() string { return e.name }

// Errors returns the number of ERROR responses issued (counted once per
// two-cycle response).
func (e *ErrorSlave) Errors() int64 { return e.errors }

// Respond implements bus.Slave.
func (e *ErrorSlave) Respond(amba.AddrPhase) amba.SlaveReply {
	if e.second {
		return amba.SlaveReply{Ready: true, Resp: amba.RespError}
	}
	e.errors++
	return amba.SlaveReply{Ready: false, Resp: amba.RespError}
}

// WriteCommit implements bus.Slave; erroring beats never commit data.
func (e *ErrorSlave) WriteCommit(amba.AddrPhase, amba.Word) {}

// Commit implements bus.Slave.
func (e *ErrorSlave) Commit(ready bool) { e.second = !ready }

// Save implements rollback.Snapshotter.
func (e *ErrorSlave) Save() any { return *e }

// Restore implements rollback.Snapshotter.
func (e *ErrorSlave) Restore(v any) {
	s, ok := v.(ErrorSlave)
	if !ok {
		panic(fmt.Sprintf("ip: error slave: bad snapshot %T", v))
	}
	name := e.name
	*e = s
	e.name = name
}

// RetryMemory wraps a Memory and issues a two-cycle RETRY for the first
// attempt of every retryEvery-th beat, forcing masters through the
// retry/reissue path.
type RetryMemory struct {
	Memory
	retryEvery int
	beatCount  int64
	retryPhase int // 0 none, 1 first RETRY cycle issued
	retryDone  bool
	retries    int64
	own        bool // retry bookkeeping moved since MarkClean
}

var _ bus.Slave = (*RetryMemory)(nil)

// NewRetryMemory creates a retrying memory; retryEvery must be >= 1.
func NewRetryMemory(name string, waits, retryEvery int) *RetryMemory {
	if retryEvery < 1 {
		panic("ip: retryEvery must be >= 1")
	}
	r := &RetryMemory{retryEvery: retryEvery}
	r.Memory = *NewMemory(name, waits, waits)
	return r
}

// Retries returns how many RETRY sequences were issued.
func (r *RetryMemory) Retries() int64 { return r.retries }

// Respond implements bus.Slave.
func (r *RetryMemory) Respond(ap amba.AddrPhase) amba.SlaveReply {
	if r.retryPhase == 1 {
		return amba.SlaveReply{Ready: true, Resp: amba.RespRetry}
	}
	if !r.retryDone && (r.beatCount+1)%int64(r.retryEvery) == 0 {
		r.retries++
		r.retryPhase = 1
		r.own = true
		return amba.SlaveReply{Ready: false, Resp: amba.RespRetry}
	}
	return r.Memory.Respond(ap)
}

// Commit implements bus.Slave.
func (r *RetryMemory) Commit(ready bool) {
	r.own = true
	if r.retryPhase == 1 {
		if ready {
			// RETRY sequence finished; the retried beat will come back
			// and must then be accepted.
			r.retryPhase = 0
			r.retryDone = true
		}
		return
	}
	if ready {
		r.beatCount++
		r.retryDone = false
	}
	r.Memory.Commit(ready)
}

// SplitMemory is a memory that answers every splitEvery-th beat with a
// two-cycle SPLIT response, releasing the split-masked master via its
// HSPLITx line releaseAfter cycles later — modeling a slave that parks
// long-latency requests and frees the bus meanwhile (AHB §3.12).
type SplitMemory struct {
	Memory
	splitEvery   int
	releaseAfter int

	beatCount     int64
	phase         int // 0 none, 1 first SPLIT cycle issued
	splitDone     bool
	pendingMaster int
	countdown     int // -1 idle
	release       uint32
	splits        int64
	own           bool // split bookkeeping moved since MarkClean
}

var (
	_ bus.Slave         = (*SplitMemory)(nil)
	_ bus.SplitSource   = (*SplitMemory)(nil)
	_ bus.SplitNotifiee = (*SplitMemory)(nil)
)

// NewSplitMemory creates a splitting memory; splitEvery >= 1,
// releaseAfter >= 0 (0 releases on the very next cycle).
func NewSplitMemory(name string, waits, splitEvery, releaseAfter int) *SplitMemory {
	if splitEvery < 1 {
		panic("ip: splitEvery must be >= 1")
	}
	if releaseAfter < 0 {
		panic("ip: negative releaseAfter")
	}
	s := &SplitMemory{splitEvery: splitEvery, releaseAfter: releaseAfter, countdown: -1}
	s.Memory = *NewMemory(name, waits, waits)
	return s
}

// Splits returns how many SPLIT responses were issued.
func (s *SplitMemory) Splits() int64 { return s.splits }

// Respond implements bus.Slave.
func (s *SplitMemory) Respond(ap amba.AddrPhase) amba.SlaveReply {
	if s.phase == 1 {
		return amba.SlaveReply{Ready: true, Resp: amba.RespSplit}
	}
	if !s.splitDone && (s.beatCount+1)%int64(s.splitEvery) == 0 {
		s.splits++
		s.phase = 1
		s.own = true
		return amba.SlaveReply{Ready: false, Resp: amba.RespSplit}
	}
	return s.Memory.Respond(ap)
}

// Commit implements bus.Slave.
func (s *SplitMemory) Commit(ready bool) {
	s.own = true
	if s.phase == 1 {
		if ready {
			s.phase = 0
			s.splitDone = true
		}
		return
	}
	if ready {
		s.beatCount++
		s.splitDone = false
	}
	s.Memory.Commit(ready)
}

// NotifySplit implements bus.SplitNotifiee: remember whom to release.
func (s *SplitMemory) NotifySplit(master int) {
	s.pendingMaster = master
	s.countdown = s.releaseAfter
	s.own = true
}

// Tick implements sim.Clocked: the release countdown runs on the target
// clock regardless of bus activity.
func (s *SplitMemory) Tick(int64) {
	switch {
	case s.countdown < 0:
	case s.countdown == 0:
		s.release |= 1 << uint(s.pendingMaster)
		s.countdown = -1
		s.own = true
	default:
		s.countdown--
		s.own = true
	}
}

// QuiescentFor implements sim.Quiescible: a pending (raised but not
// yet consumed) release line blocks batching outright; an armed
// countdown of c permits c pure decrements before the tick that
// raises the HSPLITx line; an idle countdown never acts.
func (s *SplitMemory) QuiescentFor() int64 {
	if s.release != 0 {
		return 0
	}
	if s.countdown < 0 {
		return math.MaxInt64
	}
	return int64(s.countdown)
}

// SkipQuiescent implements sim.Quiescible: n ticks collapse to one
// countdown subtraction. Callers keep n <= QuiescentFor().
func (s *SplitMemory) SkipQuiescent(n int64) {
	if s.countdown >= 0 {
		s.countdown -= int(n)
		s.own = true
	}
}

// SplitRelease implements bus.SplitSource: raised lines are consumed by
// the one bus Evaluate of the cycle.
func (s *SplitMemory) SplitRelease() uint32 {
	r := s.release
	if r != 0 {
		s.release = 0
		s.own = true
	}
	return r
}

// splitSnap composes the memory snapshot with split bookkeeping.
type splitSnap struct {
	Mem           any
	BeatCount     int64
	Phase         int
	SplitDone     bool
	PendingMaster int
	Countdown     int
	Release       uint32
	Splits        int64
}

// Save implements rollback.Snapshotter.
func (s *SplitMemory) Save() any { return s.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter (wrappers must
// override the embedded Memory's SaveInto; see JitterMemory.SaveInto).
func (s *SplitMemory) SaveInto(prev any) any {
	snap, ok := prev.(*splitSnap)
	if !ok {
		snap = new(splitSnap)
	}
	snap.Mem = s.Memory.SaveInto(snap.Mem)
	snap.BeatCount = s.beatCount
	snap.Phase = s.phase
	snap.SplitDone = s.splitDone
	snap.PendingMaster = s.pendingMaster
	snap.Countdown = s.countdown
	snap.Release = s.release
	snap.Splits = s.splits
	return snap
}

// Restore implements rollback.Snapshotter.
func (s *SplitMemory) Restore(v any) {
	snap, ok := v.(*splitSnap)
	if !ok {
		panic(fmt.Sprintf("ip: split memory: bad snapshot %T", v))
	}
	s.Memory.Restore(snap.Mem)
	s.beatCount = snap.BeatCount
	s.phase = snap.Phase
	s.splitDone = snap.SplitDone
	s.pendingMaster = snap.PendingMaster
	s.countdown = snap.Countdown
	s.release = snap.Release
	s.splits = snap.Splits
	s.own = true
}

// Dirty implements rollback.DeltaSnapshotter (wrapper override).
func (s *SplitMemory) Dirty() bool { return s.own || s.Memory.Dirty() }

// MarkClean implements rollback.DeltaSnapshotter.
func (s *SplitMemory) MarkClean() {
	s.own = false
	s.Memory.MarkClean()
}

// SaveDelta implements rollback.DeltaSnapshotter.
func (s *SplitMemory) SaveDelta(prev any) any { return s.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (s *SplitMemory) RestoreDelta(newest any) { s.Restore(newest) }

// retrySnap composes the memory snapshot with retry bookkeeping.
type retrySnap struct {
	Mem        any
	BeatCount  int64
	RetryPhase int
	RetryDone  bool
	Retries    int64
}

// Save implements rollback.Snapshotter.
func (r *RetryMemory) Save() any { return r.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter (wrappers must
// override the embedded Memory's SaveInto; see JitterMemory.SaveInto).
func (r *RetryMemory) SaveInto(prev any) any {
	s, ok := prev.(*retrySnap)
	if !ok {
		s = new(retrySnap)
	}
	s.Mem = r.Memory.SaveInto(s.Mem)
	s.BeatCount = r.beatCount
	s.RetryPhase = r.retryPhase
	s.RetryDone = r.retryDone
	s.Retries = r.retries
	return s
}

// Restore implements rollback.Snapshotter.
func (r *RetryMemory) Restore(v any) {
	s, ok := v.(*retrySnap)
	if !ok {
		panic(fmt.Sprintf("ip: retry memory: bad snapshot %T", v))
	}
	r.Memory.Restore(s.Mem)
	r.beatCount = s.BeatCount
	r.retryPhase = s.RetryPhase
	r.retryDone = s.RetryDone
	r.retries = s.Retries
	r.own = true
}

// Dirty implements rollback.DeltaSnapshotter (wrapper override).
func (r *RetryMemory) Dirty() bool { return r.own || r.Memory.Dirty() }

// MarkClean implements rollback.DeltaSnapshotter.
func (r *RetryMemory) MarkClean() {
	r.own = false
	r.Memory.MarkClean()
}

// SaveDelta implements rollback.DeltaSnapshotter.
func (r *RetryMemory) SaveDelta(prev any) any { return r.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (r *RetryMemory) RestoreDelta(newest any) { r.Restore(newest) }
