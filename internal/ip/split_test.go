package ip

import (
	"testing"

	"coemu/internal/amba"
	"coemu/internal/bus"
)

// runSplit steps a bus whose slaves include SplitMemory instances,
// ticking them each cycle (the engine/reference runner does the same).
func runSplit(t *testing.T, b *bus.Bus, tickers []*SplitMemory, n int) []amba.CycleState {
	t.Helper()
	var k amba.Checker
	var trace []amba.CycleState
	for i := 0; i < n; i++ {
		res := b.Step()
		for _, s := range tickers {
			s.Tick(int64(i))
		}
		if err := k.Check(res.State); err != nil {
			t.Fatalf("protocol violation: %v", err)
		}
		trace = append(trace, res.State)
	}
	return trace
}

func TestSplitMemoryCompletesTransfer(t *testing.T) {
	m := NewTrafficMaster("m", seq(
		Xfer{Addr: 0x10, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4, Data: []amba.Word{1, 2, 3, 4}},
		Xfer{Addr: 0x10, Write: false, Size: amba.Size32, Burst: amba.BurstIncr4},
	), 0)
	mem := NewSplitMemory("mem", 0, 3, 4) // SPLIT every 3rd beat, release after 4 cycles
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)

	trace := runSplit(t, b, []*SplitMemory{mem}, 120)

	if mem.Splits() == 0 {
		t.Fatal("no SPLIT responses issued")
	}
	if !m.Idle() {
		t.Fatal("master did not finish")
	}
	log := m.Log()
	if len(log) != 8 {
		t.Fatalf("%d beats, want 8", len(log))
	}
	for i, want := range []amba.Word{1, 2, 3, 4} {
		if log[4+i].Data != want {
			t.Errorf("readback %d = %d, want %d", i, log[4+i].Data, want)
		}
	}
	// The split window must contain idle cycles where the master was
	// masked (it drives IDLE despite owning the grant).
	sawSplit := false
	for _, cs := range trace {
		if cs.Reply.Resp == amba.RespSplit {
			sawSplit = true
		}
		if cs.Split != 0 && cs.Split&1 == 0 {
			t.Fatalf("split release for wrong master: %x", cs.Split)
		}
	}
	if !sawSplit {
		t.Fatal("SPLIT never visible on the bus")
	}
}

func TestSplitFreesBusForOtherMaster(t *testing.T) {
	// m0 targets the splitting slave; m1 targets a plain SRAM. While m0
	// is split-masked, m1 must make progress.
	m0 := NewTrafficMaster("m0", seq(
		Xfer{Addr: 0x10, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8,
			Data: []amba.Word{1, 2, 3, 4, 5, 6, 7, 8}},
	), 0)
	m1 := NewTrafficMaster("m1", seq(
		Xfer{Addr: 0x1000, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8,
			Data: []amba.Word{11, 12, 13, 14, 15, 16, 17, 18}},
	), 0)
	split := NewSplitMemory("split", 0, 2, 10)
	sram := NewSRAM("sram")
	b := bus.New("t")
	b.AddMaster(m0)
	b.AddMaster(m1)
	b.MapSlave(split, bus.Region{Lo: 0, Hi: 0x1000}, 0)
	b.MapSlave(sram, bus.Region{Lo: 0x1000, Hi: 0x2000}, 0)

	var m1DoneAt, m0DoneAt int
	var k amba.Checker
	for i := 0; i < 300; i++ {
		res := b.Step()
		split.Tick(int64(i))
		if err := k.Check(res.State); err != nil {
			t.Fatalf("protocol violation: %v", err)
		}
		if m1.Idle() && m1DoneAt == 0 {
			m1DoneAt = i
		}
		if m0.Idle() && m0DoneAt == 0 {
			m0DoneAt = i
		}
	}
	if m0DoneAt == 0 || m1DoneAt == 0 {
		t.Fatalf("masters did not finish (m0=%d m1=%d)", m0DoneAt, m1DoneAt)
	}
	// m0 has priority, so without SPLIT it would finish first; the
	// splits hand the bus to m1, which must overtake.
	if m1DoneAt >= m0DoneAt {
		t.Fatalf("split-masked m0 (done %d) should not beat m1 (done %d)", m0DoneAt, m1DoneAt)
	}
	if beats, _, _ := m0.Stats(); beats != 8 {
		t.Fatalf("m0 beats = %d", beats)
	}
	for i := 0; i < 8; i++ {
		if got := split.PeekWord(amba.Addr(0x10 + 4*i)); got != amba.Word(i+1) {
			t.Errorf("split mem[%x] = %d", 0x10+4*i, got)
		}
	}
}

func TestSplitMemorySnapshotReplay(t *testing.T) {
	gen := &sliceGen{xfers: []Xfer{
		{Addr: 0x10, Write: true, Size: amba.Size32, Burst: amba.BurstIncr8, Data: []amba.Word{1, 2, 3, 4, 5, 6, 7, 8}},
	}}
	m := NewTrafficMaster("m", gen, 0)
	mem := NewSplitMemory("mem", 1, 3, 5)
	b := bus.New("t")
	b.AddMaster(m)
	b.MapSlave(mem, bus.Region{Lo: 0, Hi: 0x1000}, 0)

	step := func(i int) amba.CycleState {
		res := b.Step()
		mem.Tick(int64(i))
		return res.State
	}
	for i := 0; i < 6; i++ {
		step(i)
	}
	snaps := []any{b.Save(), m.Save(), gen.Save(), mem.Save()}
	var first []amba.CycleState
	for i := 6; i < 40; i++ {
		first = append(first, step(i))
	}
	b.Restore(snaps[0])
	m.Restore(snaps[1])
	gen.Restore(snaps[2])
	mem.Restore(snaps[3])
	for i := 6; i < 40; i++ {
		got := step(i)
		if !got.Equal(first[i-6]) {
			t.Fatalf("replay diverged at cycle %d:\n%s\n%s", i, first[i-6], got)
		}
	}
}

func TestSplitMemoryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("splitEvery=0 must panic")
		}
	}()
	NewSplitMemory("x", 0, 0, 1)
}
