// Package metrics is a dependency-free instrumentation library with
// Prometheus text exposition (version 0.0.4): counters, gauges,
// fixed-bucket histograms and label-keyed families, collected into a
// Registry whose WritePrometheus output a Prometheus server scrapes
// directly.
//
// The package exists so the daemon can expose the quantities the
// paper's claims rest on — misprediction rates, rollback depth,
// batch-commit coverage, channel traffic, job and queue latency —
// without pulling a client library into a module that is deliberately
// free of external dependencies.
//
// Concurrency: every instrument is safe for concurrent use. Counter
// and Gauge are single atomic words; Histogram takes a mutex per
// Observe (it is fed from per-run aggregation and request paths, not
// from the engine's per-cycle hot loop, which stays instrumentation
// free).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is an instrument's Prometheus metric type.
type Kind string

// Prometheus metric types used in TYPE lines.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter's value. It exists for mirrored counters
// — instruments that republish a snapshot of a counter maintained
// elsewhere (service.Counters) at collect time. The source must itself
// be monotone or the exposition will show a counter reset.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// set at construction and never change, so exposition is deterministic.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []int64   // one per bound, non-cumulative
	inf    int64     // observations above the last bound
	sum    float64
	n      int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v in one step — the bulk
// form used when re-binning an already-aggregated distribution (e.g. a
// run report's rollback-depth histogram).
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v * float64(n)
	h.n += n
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i] += n
			return
		}
	}
	h.inf += n
}

// Count returns the total observation count.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, the sum and the count.
func (h *Histogram) snapshot() (cum []int64, sum float64, n int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.bounds)+1)
	var acc int64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	cum[len(h.bounds)] = acc + h.inf
	return cum, h.sum, h.n
}

// instrument is one exposed series: an optional label pairing plus the
// concrete collector.
type instrument struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric family (HELP + TYPE + its series).
type family struct {
	name string
	help string
	kind Kind

	mu          sync.Mutex
	series      []*instrument
	byLabels    map[string]*instrument
	labelNames  []string
	histBuckets []float64
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Families expose in registration-name order, so
// output shape is deterministic.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnCollect registers a hook invoked at the start of every
// WritePrometheus call — the place to refresh mirrored instruments
// (gauges and snapshot counters) right before exposition.
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, f)
}

// register adds a family, panicking on duplicate or invalid names —
// metric registration is program structure, not runtime input.
func (r *Registry) register(name, help string, kind Kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, kind: kind, byLabels: make(map[string]*instrument)}
	r.byName[name] = f
	r.families = append(r.families, f)
	sort.Slice(r.families, func(i, j int) bool { return r.families[i].name < r.families[j].name })
	return f
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, KindCounter)
	c := &Counter{}
	f.series = append(f.series, &instrument{c: c})
	return c
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge)
	g := &Gauge{}
	f.series = append(f.series, &instrument{g: g})
	return g
}

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not ascending", name))
		}
	}
	f := r.register(name, help, KindHistogram)
	f.histBuckets = append([]float64(nil), buckets...)
	h := &Histogram{bounds: f.histBuckets, counts: make([]int64, len(buckets))}
	f.series = append(f.series, &instrument{h: h})
	return h
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.register(name, help, KindCounter)
	f.labelNames = validLabelNames(name, labelNames)
	return &CounterVec{f: f}
}

// With returns the counter for the given label values (one per label
// name, in order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	ins := v.f.withLabels(values)
	if ins.c == nil {
		ins.c = &Counter{}
	}
	return ins.c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	f := r.register(name, help, KindGauge)
	f.labelNames = validLabelNames(name, labelNames)
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	ins := v.f.withLabels(values)
	if ins.g == nil {
		ins.g = &Gauge{}
	}
	return ins.g
}

// withLabels resolves (or creates) the series for one label-value set.
func (f *family) withLabels(values []string) *instrument {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := renderLabels(f.labelNames, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ins, ok := f.byLabels[key]; ok {
		return ins
	}
	ins := &instrument{labels: key}
	f.byLabels[key] = ins
	f.series = append(f.series, ins)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return ins
}

// WritePrometheus renders every family in text exposition format 0.0.4,
// invoking the collect hooks first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	families := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, f := range collectors {
		f()
	}
	var b strings.Builder
	for _, f := range families {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders one family: HELP, TYPE, then every series in sorted
// label order.
func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	series := append([]*instrument{}, f.series...)
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, ins := range series {
		switch {
		case ins.c != nil:
			fmt.Fprintf(b, "%s%s %d\n", f.name, ins.labels, ins.c.Value())
		case ins.g != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, ins.labels, formatFloat(ins.g.Value()))
		case ins.h != nil:
			cum, sum, n := ins.h.snapshot()
			for i, bound := range f.histBuckets {
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, mergeLabels(ins.labels, "le", formatFloat(bound)), cum[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, mergeLabels(ins.labels, "le", "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, ins.labels, formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, ins.labels, n)
		}
	}
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The response is already streaming; nothing to do but drop.
			return
		}
	})
}

// formatFloat renders a float the Prometheus way: integral values
// without an exponent, specials as +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels builds the {k="v",...} suffix for a label-value set.
func renderLabels(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels inserts one extra label pair (the histogram "le" bound)
// into an already-rendered label set.
func mergeLabels(rendered, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelNames validates a label-name list at registration time.
func validLabelNames(metric string, names []string) []string {
	for _, n := range names {
		if !validName(n) || strings.Contains(n, ":") {
			panic(fmt.Sprintf("metrics: metric %q: invalid label name %q", metric, n))
		}
	}
	return append([]string(nil), names...)
}
