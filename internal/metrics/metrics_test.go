package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestGoldenExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("coemu_runs_total", "Engine runs executed.")
	g := reg.NewGauge("coemu_queue", "Jobs waiting in the queue.")
	h := reg.NewHistogram("coemu_job_seconds", "Job wall time.", []float64{0.1, 1, 10})
	v := reg.NewCounterVec("coemu_declines_total", "Prediction declines by reason.", "reason")

	c.Add(3)
	g.Set(2.5)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	v.With("lob_full").Add(2)
	v.With("idle").Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP coemu_declines_total Prediction declines by reason.
# TYPE coemu_declines_total counter
coemu_declines_total{reason="idle"} 1
coemu_declines_total{reason="lob_full"} 2
# HELP coemu_job_seconds Job wall time.
# TYPE coemu_job_seconds histogram
coemu_job_seconds_bucket{le="0.1"} 1
coemu_job_seconds_bucket{le="1"} 2
coemu_job_seconds_bucket{le="10"} 2
coemu_job_seconds_bucket{le="+Inf"} 3
coemu_job_seconds_sum 100.55
coemu_job_seconds_count 3
# HELP coemu_queue Jobs waiting in the queue.
# TYPE coemu_queue gauge
coemu_queue 2.5
# HELP coemu_runs_total Engine runs executed.
# TYPE coemu_runs_total counter
coemu_runs_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestParserRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("a_total", "A.").Add(7)
	reg.NewGauge("b", "B gauge.").Set(-1.25)
	h := reg.NewHistogram("c_seconds", "C latency.", []float64{0.001, 0.01, 0.1})
	h.ObserveN(0.005, 4)
	vec := reg.NewCounterVec("d_total", "D by dir.", "dir")
	vec.With("sim_to_acc").Add(5)
	vec.With("acc_to_sim").Add(6)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	byName := map[string]ParsedFamily{}
	for _, f := range fams {
		if f.Type == "" {
			t.Errorf("family %s has no TYPE line", f.Name)
		}
		if f.Help == "" {
			t.Errorf("family %s has no HELP text", f.Name)
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s has no samples", f.Name)
		}
		byName[f.Name] = f
	}
	if got := len(fams); got != 4 {
		t.Fatalf("parsed %d families, want 4", got)
	}
	if f := byName["a_total"]; f.Type != KindCounter || f.Samples[0].Value != 7 {
		t.Errorf("a_total parsed as %+v", f)
	}
	if f := byName["b"]; f.Type != KindGauge || f.Samples[0].Value != -1.25 {
		t.Errorf("b parsed as %+v", f)
	}
	// Histogram samples all map back to the c_seconds family: 4 buckets
	// (incl. +Inf) + sum + count.
	if f := byName["c_seconds"]; f.Type != KindHistogram || len(f.Samples) != 6 {
		t.Errorf("c_seconds parsed as %+v", f)
	}
	if f := byName["d_total"]; len(f.Samples) != 2 {
		t.Errorf("d_total parsed as %+v", f)
	}
}

// TestCountersMonotoneAcrossScrapes pins the property CI asserts on the
// live daemon: successive scrapes never show a counter going backwards.
func TestCountersMonotoneAcrossScrapes(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("x_total", "X.")
	scrape := func() map[string]float64 {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseExposition(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, f := range fams {
			if f.Type != KindCounter {
				continue
			}
			for _, s := range f.Samples {
				out[s.Name+s.Labels] = s.Value
			}
		}
		return out
	}
	c.Add(1)
	first := scrape()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	second := scrape()
	for k, v := range first {
		if second[k] < v {
			t.Errorf("counter %s went backwards: %v -> %v", k, v, second[k])
		}
	}
	if second["x_total"] != 42 {
		t.Errorf("x_total = %v, want 42", second["x_total"])
	}
}

func TestOnCollectRefreshesMirrors(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGauge("m", "Mirrored.")
	source := 0.0
	reg.OnCollect(func() { g.Set(source) })
	source = 9
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "m 9\n") {
		t.Errorf("collect hook did not refresh gauge:\n%s", b.String())
	}
}

func TestHandlerServesExposition(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("h_total", "H.").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestHistogramBulkAndSpecials(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("d", "Depth.", []float64{1, 2, 4})
	h.ObserveN(2, 10)
	h.ObserveN(100, 1)
	h.ObserveN(1, 0)  // no-op
	h.ObserveN(1, -3) // no-op
	if h.Count() != 11 {
		t.Fatalf("count = %d, want 11", h.Count())
	}
	if h.Sum() != 120 {
		t.Fatalf("sum = %v, want 120", h.Sum())
	}
	g := reg.NewGauge("inf", "Inf gauge.")
	g.Set(math.Inf(1))
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "inf +Inf\n") {
		t.Errorf("missing +Inf rendering:\n%s", b.String())
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("parse with specials: %v", err)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("cc_total", "C.")
	g := reg.NewGauge("cg", "G.")
	h := reg.NewHistogram("ch", "H.", []float64{1, 10})
	vec := reg.NewCounterVec("cv_total", "V.", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 20))
				vec.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if got := vec.With("a").Value() + vec.With("b").Value(); got != 8000 {
		t.Errorf("vec total = %d, want 8000", got)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"orphan_sample 1\n",
		"# HELP a A.\na_bucket{le=\"1\"} 1\n",             // sample before TYPE
		"# HELP a A.\n# TYPE a widget\n",                  // unknown type
		"# HELP a A.\n# TYPE b counter\n",                 // TYPE does not match HELP
		"# HELP a A.\n# TYPE a counter\na{x=\"1\" 2\n",    // unbalanced braces
		"# HELP a A.\n# TYPE a counter\na notanumber\n",   // bad value
		"# HELP a A.\n# TYPE a counter\n# HELP a A.\n",    // duplicate HELP
		"# HELP a A.\n# TYPE a counter\n# TYPE a gauge\n", // duplicate TYPE
	}
	for _, doc := range bad {
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("parse accepted malformed doc %q", doc)
		}
	}
}
