package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample: a metric name (possibly a
// histogram's _bucket/_sum/_count series), its rendered label set and
// its value.
type Sample struct {
	Name   string
	Labels string // the raw {...} suffix, "" when unlabeled
	Value  float64
}

// ParsedFamily is one metric family read back from text exposition:
// its HELP and TYPE metadata plus every sample that belongs to it.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    Kind
	Samples []Sample
}

// ParseExposition reads Prometheus text exposition (format 0.0.4) and
// returns its families in document order. It is strict about the shape
// WritePrometheus guarantees — every sample preceded by its family's
// HELP and TYPE lines, histogram series named after their family — so
// the parser doubles as a round-trip validator in tests and smoke
// checks.
func ParseExposition(r io.Reader) ([]ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []ParsedFamily
	byName := make(map[string]*ParsedFamily)
	var current *ParsedFamily
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "# HELP "):
			rest := strings.TrimPrefix(text, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("metrics: line %d: HELP without a metric name", line)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("metrics: line %d: duplicate HELP for %s", line, name)
			}
			out = append(out, ParsedFamily{Name: name, Help: help})
			current = &out[len(out)-1]
			byName[name] = current
		case strings.HasPrefix(text, "# TYPE "):
			rest := strings.TrimPrefix(text, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("metrics: line %d: malformed TYPE line", line)
			}
			if current == nil || current.Name != name {
				return nil, fmt.Errorf("metrics: line %d: TYPE %s does not follow its HELP line", line, name)
			}
			if current.Type != "" {
				return nil, fmt.Errorf("metrics: line %d: duplicate TYPE for %s", line, name)
			}
			switch Kind(typ) {
			case KindCounter, KindGauge, KindHistogram:
				current.Type = Kind(typ)
			default:
				return nil, fmt.Errorf("metrics: line %d: unknown metric type %q", line, typ)
			}
		case strings.HasPrefix(text, "#"):
			// Other comments are legal exposition; skip.
		default:
			s, err := parseSample(text)
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", line, err)
			}
			fam := familyOf(byName, s.Name)
			if fam == nil {
				return nil, fmt.Errorf("metrics: line %d: sample %s has no preceding HELP/TYPE", line, s.Name)
			}
			if fam.Type == "" {
				return nil, fmt.Errorf("metrics: line %d: sample %s before its TYPE line", line, s.Name)
			}
			fam.Samples = append(fam.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// familyOf resolves a sample name to its family, accounting for the
// histogram series suffixes.
func familyOf(byName map[string]*ParsedFamily, sample string) *ParsedFamily {
	if f, ok := byName[sample]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(sample, suffix)
		if !found {
			continue
		}
		if f, ok := byName[base]; ok && f.Type == KindHistogram {
			return f
		}
	}
	return nil
}

// parseSample splits one sample line into name, label set and value.
func parseSample(text string) (Sample, error) {
	var s Sample
	rest := text
	if i := strings.IndexByte(text, '{'); i >= 0 {
		j := strings.LastIndexByte(text, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced label braces in %q", text)
		}
		s.Name = text[:i]
		s.Labels = text[i : j+1]
		rest = strings.TrimSpace(text[j+1:])
	} else {
		name, val, ok := strings.Cut(text, " ")
		if !ok {
			return s, fmt.Errorf("sample %q has no value", text)
		}
		s.Name = name
		rest = val
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", text, err)
	}
	s.Value = v
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	return s, nil
}

// parseValue parses a sample value, accepting the Prometheus special
// forms.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}
