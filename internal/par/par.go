// Package par provides the engine's intra-cycle worker pool: a fixed
// set of lanes, each backed by one pinned goroutine, over which the
// cycle loop fans out short independent pieces of work (a domain
// evaluation, half a bus's master drives) and joins them before any
// order-sensitive step.
//
// The pool is built for sub-microsecond tasks on a hot loop, so the
// handoff protocol is allocation-free and lock-free on the fast path:
// Dispatch publishes the task through an atomic sequence counter, Wait
// spins on the matching completion counter. Workers spin briefly, then
// yield to the scheduler, then park on a channel — so a pool on a
// GOMAXPROCS=1 host degrades to cooperative scheduling instead of
// livelocking, and an idle pool burns no CPU.
//
// Each lane is a SPSC slot: exactly one goroutine may Dispatch/Wait a
// given lane at a time, with Wait required between Dispatches. The
// engine upholds this by construction — the coordinator owns every
// lane it uses, and a worker that itself coordinates a nested fan-out
// uses different lanes than its own.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Spin thresholds of the wait loops: full-speed polls before the first
// Gosched, and total polls before a worker parks on its wake channel.
// The coordinator's Wait never parks — the joined work is at most a
// cycle's worth, and a blocked join would cost a futex round trip per
// cycle.
const (
	spinHot  = 128
	spinPark = 4096
)

// lane is one worker slot. seq counts dispatched tasks, done completed
// ones; seq > done means the stored fn is pending. parked+wake
// implement the blocking slow path: a worker that announces itself
// parked receives exactly one wake token for the next dispatch.
type lane struct {
	seq    atomic.Uint64
	done   atomic.Uint64
	fn     func()
	parked atomic.Bool
	wake   chan struct{}

	// pad keeps lanes off each other's cache lines; false sharing on
	// the counters would serialize exactly the loop the pool exists to
	// parallelize.
	_ [64]byte
}

// Pool runs tasks on a fixed set of worker lanes.
type Pool struct {
	lanes []*lane
	wg    sync.WaitGroup
}

// NewPool starts n worker goroutines, one per lane. Close must be
// called to release them.
func NewPool(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("par: pool size %d < 1", n))
	}
	p := &Pool{lanes: make([]*lane, n)}
	for i := range p.lanes {
		l := &lane{wake: make(chan struct{}, 1)}
		p.lanes[i] = l
		p.wg.Add(1)
		go p.run(l)
	}
	return p
}

// Lanes returns the number of worker lanes.
func (p *Pool) Lanes() int { return len(p.lanes) }

// Dispatch hands fn to lane i. The caller must Wait(i) before the next
// Dispatch(i); passing a pre-built func value keeps the call
// allocation-free. A nil fn is the shutdown signal and is reserved for
// Close.
func (p *Pool) Dispatch(i int, fn func()) {
	l := p.lanes[i]
	l.fn = fn
	l.seq.Add(1)
	if l.parked.Swap(false) {
		l.wake <- struct{}{}
	}
}

// Wait blocks until lane i's dispatched task has completed. The atomic
// completion counter makes every write of the task visible to the
// caller.
func (p *Pool) Wait(i int) {
	l := p.lanes[i]
	seq := l.seq.Load()
	for spins := 0; l.done.Load() < seq; spins++ {
		if spins > spinHot {
			runtime.Gosched()
		}
	}
}

// Close shuts the workers down and waits for them to exit. Every lane
// must be idle (Waited) when Close is called.
func (p *Pool) Close() {
	for i := range p.lanes {
		p.Dispatch(i, nil)
	}
	p.wg.Wait()
}

// run is the worker loop: await the next sequence number, run the
// task, publish completion.
func (p *Pool) run(l *lane) {
	defer p.wg.Done()
	for next := uint64(1); ; next++ {
		for spins := 0; l.seq.Load() < next; spins++ {
			switch {
			case spins < spinHot:
				// hot spin: the dispatch is usually nanoseconds away
			case spins < spinPark:
				runtime.Gosched()
			default:
				l.park(next)
				spins = spinHot // woken: resume yielding, never re-spin hot
			}
		}
		fn := l.fn
		if fn == nil {
			l.done.Store(next)
			return
		}
		fn()
		l.done.Store(next)
	}
}

// park blocks the worker until the dispatch of sequence number next.
// The handshake with Dispatch guarantees exactly one token per parked
// announcement: whichever side swaps parked back to false first owns
// the decision, and when Dispatch wins it has sent (or is about to
// send) the token the worker must consume.
func (l *lane) park(next uint64) {
	l.parked.Store(true)
	if l.seq.Load() >= next {
		// The dispatch raced in between the spin check and the
		// announcement. If Dispatch already observed the announcement
		// (our swap loses), a token is in flight — drain it.
		if !l.parked.Swap(false) {
			<-l.wake
		}
		return
	}
	<-l.wake
}
