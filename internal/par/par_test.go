package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDispatchWaitOrdering(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	var x, y int
	fx := func() { x++ }
	fy := func() { y += x }
	for i := 0; i < 10000; i++ {
		p.Dispatch(0, fx)
		p.Wait(0)
		p.Dispatch(1, fy)
		p.Wait(1)
	}
	if x != 10000 {
		t.Fatalf("x = %d, want 10000", x)
	}
	// Each fy observes the fx that completed just before it:
	// y = 1 + 2 + ... + 10000.
	if want := 10000 * 10001 / 2; y != want {
		t.Fatalf("y = %d, want %d", y, want)
	}
}

func TestLanesRunConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2 to observe concurrency")
	}
	p := NewPool(2)
	defer p.Close()

	var entered atomic.Int32
	rendezvous := func() {
		entered.Add(1)
		for entered.Load() < 2 {
			runtime.Gosched()
		}
	}
	// Both lanes must be inside the task at once for either to finish.
	p.Dispatch(0, rendezvous)
	p.Dispatch(1, rendezvous)
	p.Wait(0)
	p.Wait(1)
	if entered.Load() != 2 {
		t.Fatalf("entered = %d, want 2", entered.Load())
	}
}

func TestParkWakeStress(t *testing.T) {
	// Force the park path: dispatch rarely enough that workers give up
	// spinning, across enough iterations to exercise the handshake
	// races under -race.
	p := NewPool(1)
	defer p.Close()

	var n int
	fn := func() { n++ }
	for i := 0; i < 300; i++ {
		for s := 0; s < 3*spinPark; s++ {
			runtime.Gosched()
		}
		p.Dispatch(0, fn)
		p.Wait(0)
	}
	if n != 300 {
		t.Fatalf("n = %d, want 300", n)
	}
}

func TestDispatchDoesNotAllocate(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	var n int
	fn := func() { n++ }
	p.Dispatch(0, fn)
	p.Wait(0)
	allocs := testing.AllocsPerRun(1000, func() {
		p.Dispatch(0, fn)
		p.Wait(0)
	})
	if allocs != 0 {
		t.Fatalf("Dispatch+Wait allocates %.1f times per op, want 0", allocs)
	}
}

func TestCloseReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)
	var n atomic.Int64
	fn := func() { n.Add(1) }
	for i := 0; i < 4; i++ {
		p.Dispatch(i, fn)
	}
	for i := 0; i < 4; i++ {
		p.Wait(i)
	}
	p.Close()
	if n.Load() != 4 {
		t.Fatalf("ran %d tasks, want 4", n.Load())
	}
	// Close waits for worker exit, so the goroutine count settles
	// immediately (allow scheduler slack for unrelated runtime
	// goroutines).
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Fatalf("goroutines after Close: %d, want <= %d", got, before+1)
	}
}
