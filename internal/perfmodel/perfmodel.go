// Package perfmodel implements the analytic performance model behind the
// paper's evaluation (§6): Table 2 ("Performance of ALS"), Figure 4 (the
// accuracy sweep over four configurations) and the SLA claims quoted in
// the text.
//
// The paper evaluates the scheme with a closed-form cost model — "We
// assumed simulator speed of 1,000 kcycles/sec, accelerator speed of
// 10 Mcycles/sec, LOB depth of 64 and 1,000 rollback variables" — rather
// than wall-clock measurements of a workload. This package reconstructs
// that model; the executable discrete-event engine (internal/core)
// measures the same quantities directly and the two are cross-checked in
// tests. Calibration choices that the paper leaves implicit are
// documented in DESIGN.md §5 and validated row-by-row in EXPERIMENTS.md:
//
//   - conventional co-emulation pays two channel accesses per cycle with
//     ~2 payload words each way (fits both published baselines:
//     38.9 kcyc/s at 1,000 kcyc/s simulator, 28.8 kcyc/s at 100 kcyc/s);
//   - one run-ahead cycle deposits two LOB words (output + prediction),
//     so the run-ahead span is M = LOBdepth/2 cycles (fits Tch(p=1));
//   - a successful transition pays one channel access (the follow-up
//     report piggybacks on the next flush); a failed one pays two;
//   - accelerator state store/restore is a flat shadow-register cost
//     (~15/29 ns); simulator store/restore is linear in the rollback
//     variable count (~4.7 ns/var — fits both published SLA gains).
package perfmodel

import (
	"fmt"
	"math"

	"coemu/internal/device"
)

// Leader selects which domain runs ahead.
type Leader uint8

// Leaders. ALS = accelerator leads, SLA = simulator leads — the paper's
// two operating modes.
const (
	LeaderAcc Leader = iota // ALS
	LeaderSim               // SLA
)

// String returns the paper's mode name for the leader.
func (l Leader) String() string {
	if l == LeaderAcc {
		return "ALS"
	}
	return "SLA"
}

// Params holds every constant of the analytic model.
type Params struct {
	// SimSpeed and AccSpeed are the domain evaluation rates in target
	// cycles/second.
	SimSpeed, AccSpeed float64
	// LOBDepthWords is the LOB capacity in words; the run-ahead span is
	// LOBDepthWords/2 cycles.
	LOBDepthWords int
	// RollbackVars is the leader state size for store/restore pricing.
	RollbackVars int
	// Stack supplies channel startup and per-word costs.
	Stack device.Stack

	// AccStoreNs/AccRestoreNs: accelerator shadow-register costs (flat).
	AccStoreNs, AccRestoreNs float64
	// SimStoreBaseNs and SimPerVarNs: simulator software store/restore.
	SimStoreBaseNs, SimPerVarNs float64

	// ConvWordsFwd/ConvWordsRev: payload words per conventional cycle
	// in each direction.
	ConvWordsFwd, ConvWordsRev int
	// FlushWordsPerCycle: flush payload words per run-ahead cycle.
	FlushWordsPerCycle int
	// ReportWords: payload words of a follow-up report.
	ReportWords int
}

// Default returns the paper's Table 2 configuration.
func Default() Params {
	return Params{
		SimSpeed:           1e6,
		AccSpeed:           1e7,
		LOBDepthWords:      64,
		RollbackVars:       1000,
		Stack:              device.IPROVE(),
		AccStoreNs:         15,
		AccRestoreNs:       29,
		SimStoreBaseNs:     100,
		SimPerVarNs:        4.7,
		ConvWordsFwd:       2,
		ConvWordsRev:       2,
		FlushWordsPerCycle: 1,
		ReportWords:        4,
	}
}

// seconds helpers derived from the stack.
func (p Params) startup() float64 { return p.Stack.Startup().Seconds() }
func (p Params) fwd() float64     { return float64(p.Stack.WordPsSimToAcc) * 1e-12 }
func (p Params) rev() float64     { return float64(p.Stack.WordPsAccToSim) * 1e-12 }

// tsim/tacc are per-cycle evaluation times.
func (p Params) tsim() float64 { return 1 / p.SimSpeed }
func (p Params) tacc() float64 { return 1 / p.AccSpeed }

// M returns the run-ahead span in cycles.
func (p Params) M() int {
	m := p.LOBDepthWords / 2
	if m < 1 {
		m = 1
	}
	return m
}

// Conventional returns the cycles/second of the conservative baseline:
// every target cycle pays both domain evaluations plus two channel
// accesses.
func (p Params) Conventional() float64 {
	t := p.tsim() + p.tacc() +
		2*p.startup() +
		float64(p.ConvWordsFwd)*p.fwd() +
		float64(p.ConvWordsRev)*p.rev()
	return 1 / t
}

// Row is one line of the paper's Table 2: per-cycle time in each cost
// category, the resulting performance and the ratio to conventional.
type Row struct {
	P        float64 // prediction accuracy
	Tsim     float64 // seconds per committed cycle
	Tacc     float64
	Tstore   float64
	Trestore float64
	Tch      float64
	Perf     float64 // cycles/second
	Ratio    float64 // Perf / Conventional
}

// Total returns the per-cycle total time.
func (r Row) Total() float64 { return r.Tsim + r.Tacc + r.Tstore + r.Trestore + r.Tch }

// Optimistic evaluates the model for the given leader at per-cycle
// prediction accuracy acc.
func (p Params) Optimistic(leader Leader, acc float64) Row {
	if acc < 0 || acc > 1 {
		panic(fmt.Sprintf("perfmodel: accuracy %v out of [0,1]", acc))
	}
	m := float64(p.M())

	// Truncated-geometric transition statistics.
	pm := math.Pow(acc, m) // probability the whole run-ahead succeeds
	pfail := 1 - pm
	var n float64 // expected committed cycles per transition
	if acc == 1 {
		n = m
	} else {
		n = (1 - pm) / (1 - acc)
	}
	// Leader work: the full run-ahead plus the roll-forth replay on a
	// failure (expected failure position).
	leaderCycles := m + (n - m*pm)

	// Channel: one flush per transition; a second access on failure.
	wordRate := p.rev() // ALS flush travels acc→sim
	repRate := p.fwd()
	if leader == LeaderSim {
		wordRate, repRate = p.fwd(), p.rev()
	}
	chPerTransition := (1+pfail)*p.startup() +
		m*float64(p.FlushWordsPerCycle)*wordRate +
		(1+pfail)*float64(p.ReportWords)*repRate

	// Store once per transition plus once more after a rollback (the
	// leader re-arms before the next run-ahead); restore on failure.
	var storeCost, restoreCost float64
	if leader == LeaderAcc {
		storeCost = p.AccStoreNs * 1e-9
		restoreCost = p.AccRestoreNs * 1e-9
	} else {
		storeCost = (p.SimStoreBaseNs + p.SimPerVarNs*float64(p.RollbackVars)) * 1e-9
		restoreCost = storeCost
	}
	storePerTransition := (1 + pfail) * storeCost
	restorePerTransition := pfail * restoreCost

	var row Row
	row.P = acc
	if leader == LeaderAcc {
		row.Tsim = p.tsim()                    // lagger commits each cycle once
		row.Tacc = p.tacc() * leaderCycles / n // leader reruns on rollback
	} else {
		row.Tsim = p.tsim() * leaderCycles / n
		row.Tacc = p.tacc()
	}
	row.Tstore = storePerTransition / n
	row.Trestore = restorePerTransition / n
	row.Tch = chPerTransition / n
	row.Perf = 1 / row.Total()
	row.Ratio = row.Perf / p.Conventional()
	return row
}

// Table2Accuracies is the accuracy grid of the paper's Table 2.
var Table2Accuracies = []float64{1.000, 0.990, 0.960, 0.900, 0.800, 0.600, 0.300, 0.100}

// Table2 regenerates the paper's Table 2: ALS at the default
// configuration across the published accuracy grid.
func Table2() []Row {
	p := Default()
	rows := make([]Row, 0, len(Table2Accuracies))
	for _, acc := range Table2Accuracies {
		rows = append(rows, p.Optimistic(LeaderAcc, acc))
	}
	return rows
}

// Figure4Accuracies is the accuracy grid of the paper's Figure 4.
var Figure4Accuracies = []float64{1, 0.995, 0.99, 0.96, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}

// Figure4Config identifies one of the figure's four series.
type Figure4Config struct {
	SimSpeed float64
	LOBDepth int
}

// Label renders the series name the way the figure's legend does.
func (c Figure4Config) Label() string {
	return fmt.Sprintf("Sim=%.0fk, LOBdepth=%d", c.SimSpeed/1e3, c.LOBDepth)
}

// Figure4Configs lists the four series of the paper's Figure 4.
var Figure4Configs = []Figure4Config{
	{1e5, 64}, {1e5, 8}, {1e6, 64}, {1e6, 8},
}

// Figure4Series holds one curve of Figure 4 plus its conventional
// baseline (the horizontal reference lines in the figure).
type Figure4Series struct {
	Config       Figure4Config
	Rows         []Row
	Conventional float64
}

// Figure4 regenerates the paper's Figure 4: ALS performance versus
// accuracy for four (simulator speed × LOB depth) configurations.
func Figure4() []Figure4Series {
	out := make([]Figure4Series, 0, len(Figure4Configs))
	for _, c := range Figure4Configs {
		p := Default()
		p.SimSpeed = c.SimSpeed
		p.LOBDepthWords = c.LOBDepth
		s := Figure4Series{Config: c, Conventional: p.Conventional()}
		for _, acc := range Figure4Accuracies {
			s.Rows = append(s.Rows, p.Optimistic(LeaderAcc, acc))
		}
		out = append(out, s)
	}
	return out
}

// SLAResult captures the §6 SLA claims for one simulator speed: the
// maximum gain (at accuracy 1) and the break-even accuracy where SLA
// performance equals the conventional baseline.
type SLAResult struct {
	SimSpeed  float64
	MaxGain   float64
	BreakEven float64
}

// SLA regenerates the SLA claims for the two published simulator speeds
// (maximum gains 3.25 and 15.34; break-evens 98% and 70%).
func SLA() []SLAResult {
	var out []SLAResult
	for _, speed := range []float64{1e5, 1e6} {
		p := Default()
		p.SimSpeed = speed
		out = append(out, SLAResult{
			SimSpeed:  speed,
			MaxGain:   p.Optimistic(LeaderSim, 1).Ratio,
			BreakEven: p.BreakEven(LeaderSim),
		})
	}
	return out
}

// BreakEven returns the accuracy at which the optimistic mode's
// performance equals the conventional baseline, found by bisection.
// It returns 0 when the mode beats conventional across the whole range
// (no crossover above accuracy 0).
func (p Params) BreakEven(leader Leader) float64 {
	f := func(acc float64) float64 { return p.Optimistic(leader, acc).Ratio - 1 }
	lo, hi := 0.001, 1.0
	if f(hi) < 0 {
		return 1 // never profitable
	}
	if f(lo) > 0 {
		return 0 // always profitable
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// HeadlineGain returns the abstract's "performance gain of 1500%"
// quantity: the ALS speedup over conventional at 100% accuracy, in
// percent.
func HeadlineGain() float64 {
	return (Default().Optimistic(LeaderAcc, 1).Ratio - 1) * 100
}
