package perfmodel

import (
	"math"
	"testing"
)

// within asserts |got-want|/want <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %g, want 0", name, got)
		}
		return
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > tol {
		t.Errorf("%s = %g, want %g (±%.0f%%), off by %.1f%%", name, got, want, tol*100, rel*100)
	}
}

func TestConventionalBaselines(t *testing.T) {
	p := Default()
	// Paper: 38.9 kcycles/s at a 1,000 kcycles/s simulator.
	within(t, "conventional@1000k", p.Conventional(), 38.9e3, 0.01)
	p.SimSpeed = 1e5
	// Paper: 28.8 kcycles/s at a 100 kcycles/s simulator.
	within(t, "conventional@100k", p.Conventional(), 28.8e3, 0.01)
}

// paperTable2 holds the published rows.
var paperTable2 = []struct {
	p                        float64
	tacc, tstore, trest, tch float64
	perf                     float64
	ratio                    float64
}{
	{1.000, 1.0e-7, 4.69e-10, 0, 4.3e-7, 652e3, 16.75},
	{0.990, 1.6e-7, 7.6e-10, 2.9e-10, 6.8e-7, 543e3, 13.97},
	{0.960, 2.9e-7, 1.6e-9, 1.2e-9, 1.5e-6, 363e3, 9.33},
	{0.900, 4.9e-7, 3.3e-9, 2.9e-9, 2.9e-6, 226e3, 5.80},
	{0.800, 8.1e-7, 6.2e-9, 5.7e-9, 5.4e-6, 138e3, 3.56},
	{0.600, 1.5e-6, 1.2e-8, 1.2e-8, 1.1e-5, 76.7e3, 1.91},
	{0.300, 2.4e-6, 2.1e-8, 2.0e-8, 1.8e-5, 46.1e3, 1.19},
	{0.100, 3.0e-6, 2.7e-8, 2.6e-8, 2.3e-5, 36.7e3, 0.94},
}

func TestTable2AgainstPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != len(paperTable2) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, want := range paperTable2 {
		got := rows[i]
		if got.P != want.p {
			t.Fatalf("row %d accuracy %v", i, got.P)
		}
		// Tsim is 1e-6 in every published row: the lagger (simulator)
		// evaluates each committed cycle exactly once.
		within(t, "Tsim", got.Tsim, 1e-6, 0.001)
		// Leader-work accounting differs from the paper's unpublished
		// formula by up to ~25% in the mid-range; everything else
		// lands within ~15%.
		within(t, "Tacc", got.Tacc, want.tacc, 0.30)
		within(t, "Tstore", got.Tstore, want.tstore, 0.25)
		within(t, "Trestore", got.Trestore, want.trest, 0.25)
		within(t, "Tch", got.Tch, want.tch, 0.15)
		within(t, "Perf", got.Perf, want.perf, 0.10)
		within(t, "Ratio", got.Ratio, want.ratio, 0.10)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	// Performance decreases monotonically as accuracy drops.
	for i := 1; i < len(rows); i++ {
		if rows[i].Perf >= rows[i-1].Perf {
			t.Fatalf("performance not monotone at p=%v", rows[i].P)
		}
	}
	// The paper's crossover: ALS beats conventional down to somewhere
	// between 30% and 10% accuracy.
	if rows[6].Ratio <= 1 { // p=0.3
		t.Fatalf("ratio at p=0.3 = %v, want > 1", rows[6].Ratio)
	}
	if rows[7].Ratio >= 1 { // p=0.1
		t.Fatalf("ratio at p=0.1 = %v, want < 1", rows[7].Ratio)
	}
}

func TestHeadlineGain(t *testing.T) {
	// Abstract: "a performance gain of 1500%" at perfect prediction.
	g := HeadlineGain()
	if g < 1400 || g > 1700 {
		t.Fatalf("headline gain = %.0f%%, want ~1500%%", g)
	}
}

func TestSLAClaims(t *testing.T) {
	res := SLA()
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	// Paper: maximum gains 3.25 (100 kcyc/s) and 15.34 (1,000 kcyc/s).
	within(t, "SLA max gain @100k", res[0].MaxGain, 3.25, 0.03)
	within(t, "SLA max gain @1000k", res[1].MaxGain, 15.34, 0.03)
	// Paper: break-even at 98% and 70% accuracy. The reconstructed
	// model places them in the right order with the right separation;
	// the absolute positions land within a few points.
	if res[0].BreakEven < 0.85 || res[0].BreakEven > 0.99 {
		t.Errorf("SLA break-even @100k = %v, want near 0.98", res[0].BreakEven)
	}
	if res[1].BreakEven < 0.55 || res[1].BreakEven > 0.80 {
		t.Errorf("SLA break-even @1000k = %v, want near 0.70", res[1].BreakEven)
	}
	if res[0].BreakEven <= res[1].BreakEven {
		t.Error("slower simulator must need higher accuracy to break even")
	}
}

func TestSLAWorseThanALSAtLowAccuracy(t *testing.T) {
	// §6: "SLA suffers more from low prediction accuracies" because the
	// leader's per-cycle cost dominates.
	p := Default()
	for _, acc := range []float64{0.6, 0.3, 0.1} {
		als := p.Optimistic(LeaderAcc, acc).Ratio
		sla := p.Optimistic(LeaderSim, acc).Ratio
		if sla >= als {
			t.Errorf("at p=%v SLA ratio %.2f >= ALS ratio %.2f", acc, sla, als)
		}
	}
}

func TestFigure4Properties(t *testing.T) {
	series := Figure4()
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	byLabel := map[string]Figure4Series{}
	for _, s := range series {
		byLabel[s.Config.Label()] = s
		// Every series is monotone in accuracy.
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i].Perf >= s.Rows[i-1].Perf {
				t.Errorf("%s: not monotone at p=%v", s.Config.Label(), s.Rows[i].P)
			}
		}
	}
	deep100 := byLabel["Sim=100k, LOBdepth=64"]
	shallow100 := byLabel["Sim=100k, LOBdepth=8"]
	deep1000 := byLabel["Sim=1000k, LOBdepth=64"]
	shallow1000 := byLabel["Sim=1000k, LOBdepth=8"]
	// At perfect accuracy a deeper LOB also wins at the slower simulator.
	if deep100.Rows[0].Perf <= shallow100.Rows[0].Perf {
		t.Error("deep LOB must win at perfect accuracy (100k simulator)")
	}

	// "The bigger the simulator performance gets, we get the more
	// performance gain": at high accuracy the 1000k curves dominate.
	if deep1000.Rows[0].Perf <= deep100.Rows[0].Perf {
		t.Error("faster simulator must yield higher peak performance")
	}
	// "LOB depth ... tends to accelerate the performance gain ... when
	// the prediction accuracy is high":
	if deep1000.Rows[0].Perf <= shallow1000.Rows[0].Perf {
		t.Error("deep LOB must win at perfect accuracy")
	}
	// "On the other hand, it degrades the performance gain when the
	// prediction accuracy is low": at p=0.1 the shallow LOB wins.
	last := len(deep1000.Rows) - 1
	if deep1000.Rows[last].Perf >= shallow1000.Rows[last].Perf {
		t.Error("shallow LOB must win at 10% accuracy")
	}
	// Conventional baselines match the figure's annotations.
	within(t, "conv line @100k", deep100.Conventional, 28.8e3, 0.01)
	within(t, "conv line @1000k", deep1000.Conventional, 38.9e3, 0.01)
}

func TestBreakEvenBisection(t *testing.T) {
	p := Default()
	be := p.BreakEven(LeaderAcc)
	if be <= 0 || be >= 0.35 {
		t.Fatalf("ALS break-even = %v, want in (0, 0.35) per Table 2's 0.94 ratio at p=0.1", be)
	}
	r := p.Optimistic(LeaderAcc, be)
	within(t, "ratio at break-even", r.Ratio, 1.0, 0.01)
}

func TestOptimisticPanicsOnBadAccuracy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accuracy out of range must panic")
		}
	}()
	Default().Optimistic(LeaderAcc, 1.5)
}

func TestRowTotal(t *testing.T) {
	r := Default().Optimistic(LeaderAcc, 0.9)
	sum := r.Tsim + r.Tacc + r.Tstore + r.Trestore + r.Tch
	within(t, "Total", r.Total(), sum, 1e-12)
	within(t, "Perf inverse", r.Perf, 1/sum, 1e-9)
}

func TestLeaderString(t *testing.T) {
	if LeaderAcc.String() != "ALS" || LeaderSim.String() != "SLA" {
		t.Fatal("leader names")
	}
}
