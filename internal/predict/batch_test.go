package predict

import (
	"testing"

	"coemu/internal/amba"
)

// TestBurstTrackerSkipIdleMatchesObserves pins the batch contract:
// SkipIdle(n) leaves the tracker bit-identical to n idle Observes, for
// every extension configuration.
func TestBurstTrackerSkipIdleMatchesObserves(t *testing.T) {
	configs := []struct{ idle, starts bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	for _, c := range configs {
		seq := &BurstTracker{PredictIdle: c.idle, PredictStarts: c.starts}
		bat := &BurstTracker{PredictIdle: c.idle, PredictStarts: c.starts}
		for _, tr := range []*BurstTracker{seq, bat} {
			observeBurst(tr, 0x1000, amba.BurstIncr4)
			tr.Observe(amba.AddrPhase{Trans: amba.TransIdle}) // the seed idle cycle
		}
		const n = 17
		for i := 0; i < n; i++ {
			seq.Observe(amba.AddrPhase{Trans: amba.TransIdle})
		}
		bat.SkipIdle(n)
		if seq.st != bat.st {
			t.Errorf("idle=%v starts=%v: SkipIdle diverged: seq %+v, batch %+v",
				c.idle, c.starts, seq.st, bat.st)
		}
	}
}

// TestIdleStableForGapModel pins the stability horizon: with the
// burst-start extension armed, predictions hold exactly until the
// learned inter-burst gap elapses.
func TestIdleStableForGapModel(t *testing.T) {
	tr := &BurstTracker{PredictStarts: true}
	// Two bursts separated by a 5-cycle idle gap teach stride and gap.
	observeBurst(tr, 0x1000, amba.BurstIncr4)
	for i := 0; i < 5; i++ {
		tr.Observe(amba.AddrPhase{Trans: amba.TransIdle})
	}
	observeBurst(tr, 0x2000, amba.BurstIncr4)
	tr.Observe(amba.AddrPhase{Trans: amba.TransIdle}) // 1 idle cycle into the gap
	if got := tr.IdleStableFor(); got != 4 {
		t.Fatalf("IdleStableFor = %d, want 4 (5-cycle gap, 1 elapsed)", got)
	}
	// Crossing the horizon flips the prediction to a burst start.
	if ap, ok := tr.Predict(); !ok || ap.Trans.Active() {
		t.Fatalf("inside the gap: predicted %+v ok=%v, want confident idle", ap, ok)
	}
	tr.SkipIdle(4)
	if got := tr.IdleStableFor(); got != 0 {
		t.Fatalf("IdleStableFor after gap = %d, want 0", got)
	}
	if ap, ok := tr.Predict(); !ok || ap.Trans != amba.TransNonSeq || ap.Addr != 0x3000 {
		t.Fatalf("after the gap: predicted %+v ok=%v, want NONSEQ @0x3000", ap, ok)
	}
}

// TestIdleStableForUnboundedWithoutGapModel pins the horizon for
// trackers whose idle prediction cannot change: last-value idle or a
// plain decline, forever.
func TestIdleStableForUnboundedWithoutGapModel(t *testing.T) {
	tr := &BurstTracker{PredictIdle: true}
	observeBurst(tr, 0x1000, amba.BurstIncr4)
	tr.Observe(amba.AddrPhase{Trans: amba.TransIdle})
	if got := tr.IdleStableFor(); got != Unbounded {
		t.Fatalf("IdleStableFor = %d, want Unbounded", got)
	}
}
