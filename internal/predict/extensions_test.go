package predict

import (
	"testing"

	"coemu/internal/amba"
)

// observeBurst feeds a full fixed burst starting at addr.
func observeBurst(t *BurstTracker, addr amba.Addr, burst amba.Burst) {
	ap := amba.AddrPhase{Addr: addr, Trans: amba.TransNonSeq, Size: amba.Size32, Burst: burst, Write: true}
	t.Observe(ap)
	for i := 1; i < burst.Beats(); i++ {
		ap.Trans = amba.TransSeq
		ap.Addr = amba.NextAddr(ap.Addr, ap.Size, ap.Burst)
		t.Observe(ap)
	}
}

func TestPredictIdleExtension(t *testing.T) {
	tr := &BurstTracker{PredictIdle: true}
	ap, ok := tr.Predict()
	if !ok || !ap.Idle() {
		t.Fatal("idle prediction must offer IDLE with no context")
	}
	tr.Observe(amba.AddrPhase{}) // stays idle
	if ap, ok := tr.Predict(); !ok || !ap.Idle() {
		t.Fatal("idle continuation lost")
	}
}

func TestPredictStartsZeroGap(t *testing.T) {
	tr := &BurstTracker{PredictStarts: true}
	// Two back-to-back bursts (no idle between) establish stride 32 and
	// gap 0.
	observeBurst(tr, 0x100, amba.BurstIncr8)
	observeBurst(tr, 0x120, amba.BurstIncr8)
	// Immediately after the second burst's last beat the tracker must
	// predict the third burst's NONSEQ.
	ap, ok := tr.Predict()
	if !ok {
		t.Fatal("no prediction after burst with known stride")
	}
	if ap.Trans != amba.TransNonSeq || ap.Addr != 0x140 {
		t.Fatalf("predicted %v, want NONSEQ@140", ap)
	}
}

func TestPredictStartsWithGap(t *testing.T) {
	tr := &BurstTracker{PredictStarts: true}
	gap := 3
	feed := func(addr amba.Addr) {
		observeBurst(tr, addr, amba.BurstIncr4)
		for i := 0; i < gap; i++ {
			tr.Observe(amba.AddrPhase{})
		}
	}
	feed(0x100)
	feed(0x110)
	// Third round: after the burst the tracker must predict IDLE for
	// exactly `gap` cycles and then the NONSEQ.
	observeBurst(tr, 0x120, amba.BurstIncr4)
	for i := 0; i < gap; i++ {
		ap, ok := tr.Predict()
		if !ok || !ap.Idle() {
			t.Fatalf("gap cycle %d: predicted %v ok=%v, want IDLE", i, ap, ok)
		}
		tr.Observe(amba.AddrPhase{})
	}
	ap, ok := tr.Predict()
	if !ok || ap.Trans != amba.TransNonSeq || ap.Addr != 0x130 {
		t.Fatalf("after gap: predicted %v ok=%v, want NONSEQ@130", ap, ok)
	}
}

func TestPredictStartsStrideChangeSelfCorrects(t *testing.T) {
	tr := &BurstTracker{PredictStarts: true}
	observeBurst(tr, 0x100, amba.BurstIncr4)
	observeBurst(tr, 0x110, amba.BurstIncr4) // stride 0x10
	observeBurst(tr, 0x200, amba.BurstIncr4) // stride jumps to 0xF0
	ap, ok := tr.Predict()
	if !ok || ap.Addr != 0x2F0 {
		t.Fatalf("stride did not update: %v ok=%v", ap, ok)
	}
}

func TestPredictStartsDisabledStaysPaperFaithful(t *testing.T) {
	var tr BurstTracker
	observeBurst(&tr, 0x100, amba.BurstIncr8)
	observeBurst(&tr, 0x120, amba.BurstIncr8)
	ap, ok := tr.Predict()
	if !ok || !ap.Idle() {
		t.Fatalf("paper-faithful tracker must predict IDLE at burst end, got %v ok=%v", ap, ok)
	}
	tr.Observe(amba.AddrPhase{})
	if _, ok := tr.Predict(); ok {
		t.Fatal("paper-faithful tracker must decline for an idle master")
	}
}

func TestBurstTrackerSnapshotWithExtensions(t *testing.T) {
	tr := &BurstTracker{PredictStarts: true, PredictIdle: true}
	observeBurst(tr, 0x100, amba.BurstIncr4)
	observeBurst(tr, 0x110, amba.BurstIncr4)
	snap := tr.Save()
	a1, ok1 := tr.Predict()
	tr.Observe(amba.AddrPhase{Addr: 0x120, Trans: amba.TransNonSeq, Size: amba.Size32, Burst: amba.BurstIncr4, Write: true})
	tr.Restore(snap)
	a2, ok2 := tr.Predict()
	if a1 != a2 || ok1 != ok2 {
		t.Fatal("snapshot replay diverged with extensions enabled")
	}
}
