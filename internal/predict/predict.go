// Package predict implements the signal predictors of the paper's §3:
//
//   - address/control of the active bus master: burst continuation
//     ("their values either increase linearly over time or remain
//     constant throughout a single burst transaction"),
//   - responses of the active bus slave: a producer-consumer wait-state
//     model,
//   - arbitration requests and interrupt lines: last-value prediction,
//
// plus a fault injector used by the evaluation harness to pin prediction
// accuracy to an exact probability, the way the paper's Table 2 and
// Figure 4 sweep it.
//
// Read data and write data are deliberately absent: the paper classifies
// them as non-predictable, and the scheme instead chooses the data
// *source* domain as leader so data only flows leader→lagger.
//
// Predictors and injectors are single-goroutine state machines. Under
// the engine's parallel cycle loop (core.Config.Workers) each domain's
// predictor is owned by whichever goroutine runs that domain in the
// current phase — the leader's on the coordinator during run-ahead, the
// lagger's on the worker lane during follow-up — with the pool join
// ordering every cross-phase handoff (see core/parallel.go).
package predict

import (
	"fmt"
	"math"

	"coemu/internal/amba"
	"coemu/internal/rng"
)

// Unbounded is the quiescence horizon of a predictor whose output is
// provably stable forever (until something other than the passage of
// idle cycles perturbs it). Callers min it against their own bounds.
const Unbounded = int64(math.MaxInt64)

// LastValue predicts a bitmask signal group (bus requests, interrupt
// lines) as "same as last observed". In SoC designs where data flows in
// long bursts, "the arbitration result tends to change only occasionally
// and we can effectively predict its value from its previous one" (§3).
type LastValue struct {
	v uint32
}

// Predict returns the predicted value.
func (l *LastValue) Predict() uint32 { return l.v }

// Observe records the actual value.
func (l *LastValue) Observe(v uint32) { l.v = v }

// Save implements rollback.Snapshotter.
func (l *LastValue) Save() any { return l.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a LastValue (boxing a uint32
// heap-allocates once the value leaves the runtime's small-int cache).
func (l *LastValue) SaveInto(prev any) any {
	v, ok := prev.(*uint32)
	if !ok {
		v = new(uint32)
	}
	*v = l.v
	return v
}

// Restore implements rollback.Snapshotter.
func (l *LastValue) Restore(s any) {
	v, ok := s.(*uint32)
	if !ok {
		panic(fmt.Sprintf("predict: lastvalue: bad snapshot %T", s))
	}
	l.v = *v
}

// BurstTracker predicts the address/control signals of a remote bus
// master by extrapolating its current burst. A prediction is only
// offered mid-burst; at burst boundaries the tracker declines (the
// start-of-burst values must genuinely cross the channel) — unless the
// extensions below are enabled.
//
// Extensions beyond the paper:
//
//   - PredictIdle: an idle master is predicted to stay idle, letting the
//     leader run ahead through bus-idle stretches at the cost of one
//     rollback whenever the master wakes up.
//   - PredictStarts: after a burst completes, the next burst's start is
//     predicted by stride extrapolation over observed NONSEQ addresses,
//     letting streaming leaders run ahead across burst boundaries.
type BurstTracker struct {
	// PredictIdle predicts IDLE continuation for an idle master.
	PredictIdle bool
	// PredictStarts predicts the next NONSEQ by stride extrapolation.
	PredictStarts bool

	st burstState
}

type burstState struct {
	Valid     bool
	Last      amba.AddrPhase
	Remaining int // beats after Last; -1 = INCR (unbounded)

	// Stride extrapolation over burst starts.
	LastStart amba.AddrPhase
	HasStart  bool
	Stride    amba.Addr
	HasStride bool

	// Inter-burst gap tracking: how many IDLE cycles the master spends
	// between the last beat of a burst and the next NONSEQ.
	Ended   bool // a burst completed; counting the idle run
	IdleRun int
	GapLen  int
	HasGap  bool
}

// Observe feeds the actual address phase driven by the tracked master on
// a cycle whose HREADY was high (phases only advance on ready cycles;
// during wait states the held value carries no new information).
func (t *BurstTracker) Observe(ap amba.AddrPhase) {
	switch ap.Trans {
	case amba.TransNonSeq:
		t.st.Valid = true
		t.st.Last = ap
		if beats := ap.Burst.Beats(); beats > 0 {
			t.st.Remaining = beats - 1
		} else {
			t.st.Remaining = -1
		}
		if t.st.HasStart {
			// Last-stride predictor: one inter-start distance is
			// enough; a changed stride self-corrects after the
			// rollback the change causes.
			t.st.Stride = ap.Addr - t.st.LastStart.Addr
			t.st.HasStride = true
		}
		t.st.LastStart = ap
		t.st.HasStart = true
		if t.st.Ended {
			t.st.GapLen = t.st.IdleRun
			t.st.HasGap = true
			t.st.Ended = false
		}
		t.st.IdleRun = 0
		if ap.Burst == amba.BurstSingle {
			t.st.Ended = true
		}
	case amba.TransSeq:
		t.st.Last = ap
		if t.st.Remaining > 0 {
			t.st.Remaining--
		}
		if t.st.Remaining == 0 {
			t.st.Ended = true
			t.st.IdleRun = 0
		}
	case amba.TransBusy:
		// The burst is paused; nothing advances.
	case amba.TransIdle:
		t.st.Valid = false
		if t.st.Ended {
			t.st.IdleRun++
		}
	}
}

// Predict returns the predicted next address phase and whether a
// confident prediction exists. Mid-burst it predicts the SEQ successor.
// After the final beat of a fixed-length burst it predicts the next
// burst start by stride (when PredictStarts is enabled and a stride is
// known) or IDLE. With no burst context it predicts IDLE continuation
// when PredictIdle is enabled; otherwise it declines.
func (t *BurstTracker) Predict() (amba.AddrPhase, bool) {
	// nextStart predicts the upcoming NONSEQ by stride when the
	// observed inter-burst idle gap has elapsed.
	nextStart := func() (amba.AddrPhase, bool) {
		if !t.PredictStarts || !t.st.HasStride || !t.st.HasGap || t.st.IdleRun < t.st.GapLen {
			return amba.AddrPhase{}, false
		}
		next := t.st.LastStart
		next.Addr = t.st.LastStart.Addr + t.st.Stride
		next.Trans = amba.TransNonSeq
		return next, true
	}

	if !t.st.Valid || !t.st.Last.Trans.Active() {
		// Master is idle. Predict the next burst start once the gap is
		// due. While inside a learned gap the IDLE cycles themselves
		// are confident predictions (the gap model covers them), so
		// PredictStarts alone rides through known gaps.
		if ap, ok := nextStart(); ok {
			return ap, true
		}
		if t.PredictStarts && t.st.Ended && t.st.HasGap && t.st.IdleRun < t.st.GapLen {
			return amba.AddrPhase{}, true
		}
		if t.PredictIdle {
			return amba.AddrPhase{}, true
		}
		return amba.AddrPhase{}, false
	}
	if t.st.Remaining == 0 {
		// Fixed-length burst exhausted: the only legal continuations
		// are IDLE or a new NONSEQ. With a known zero gap the next
		// start follows immediately; otherwise IDLE is the right call
		// for the boundary cycle.
		if ap, ok := nextStart(); ok {
			return ap, true
		}
		return amba.AddrPhase{}, true
	}
	next := t.st.Last
	next.Trans = amba.TransSeq
	next.Addr = amba.NextAddr(next.Addr, next.Size, next.Burst)
	return next, true
}

// IdleStableFor reports for how many further idle-observed cycles the
// tracker's Predict outcome (both the predicted value and the
// confident/declined verdict) is guaranteed not to change. It is
// meaningful right after an idle observation (the tracked master drove
// TransIdle on the last ready cycle); a tracker still inside a burst
// returns 0. The only idle-time state the tracker evolves is the
// inter-burst gap counter, so the horizon is the remaining learned gap
// when the gap model is armed and Unbounded otherwise.
func (t *BurstTracker) IdleStableFor() int64 {
	if t.st.Valid && t.st.Last.Trans.Active() {
		return 0
	}
	if t.PredictStarts && t.st.Ended && t.st.HasGap {
		r := int64(t.st.GapLen - t.st.IdleRun)
		if r < 0 {
			r = 0
		}
		return r
	}
	return Unbounded
}

// SkipIdle applies n idle observations in one step: the state after
// SkipIdle(n) is bit-identical to n sequential Observe calls with an
// IDLE address phase. Used by the engine's predicted-quiescence
// batching; callers single-step the cycle that wakes the master.
func (t *BurstTracker) SkipIdle(n int64) {
	t.st.Valid = false
	if t.st.Ended {
		t.st.IdleRun += int(n)
	}
}

// Save implements rollback.Snapshotter.
func (t *BurstTracker) Save() any { return t.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a tracker.
func (t *BurstTracker) SaveInto(prev any) any {
	st, ok := prev.(*burstState)
	if !ok {
		st = new(burstState)
	}
	*st = t.st
	return st
}

// Restore implements rollback.Snapshotter.
func (t *BurstTracker) Restore(s any) {
	st, ok := s.(*burstState)
	if !ok {
		panic(fmt.Sprintf("predict: bursttracker: bad snapshot %T", s))
	}
	t.st = *st
}

// WaitModel predicts a slave's HREADY sequence with the same
// producer-consumer wait machinery the deterministic memory slaves run:
// the first beat of a run costs First wait states, later beats cost
// Next. Observe keeps the model aligned with reality on conservative
// cycles and during roll-forth.
type WaitModel struct {
	First, Next int

	st waitState
}

type waitState struct {
	InBurst  bool
	WaitLeft int // -1 = no beat in progress
}

// NewWaitModel creates a wait model mirroring a slave with the given
// deterministic profile.
func NewWaitModel(first, next int) *WaitModel {
	return &WaitModel{First: first, Next: next, st: waitState{WaitLeft: -1}}
}

// begin initializes the countdown for a new beat if none is in progress.
func (w *WaitModel) begin() {
	if w.st.WaitLeft < 0 {
		if w.st.InBurst {
			w.st.WaitLeft = w.Next
		} else {
			w.st.WaitLeft = w.First
		}
	}
}

// Predict returns the predicted HREADY for the beat currently in the
// data phase and advances the model as if the prediction were true.
func (w *WaitModel) Predict() bool {
	w.begin()
	if w.st.WaitLeft > 0 {
		w.st.WaitLeft--
		return false
	}
	w.st.WaitLeft = -1
	w.st.InBurst = true
	return true
}

// Observe aligns the model with the actual HREADY of a data-phase cycle.
func (w *WaitModel) Observe(ready bool) {
	w.begin()
	if ready {
		w.st.WaitLeft = -1
		w.st.InBurst = true
		return
	}
	if w.st.WaitLeft > 0 {
		w.st.WaitLeft--
	}
}

// Save implements rollback.Snapshotter.
func (w *WaitModel) Save() any { return w.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a wait model.
func (w *WaitModel) SaveInto(prev any) any {
	st, ok := prev.(*waitState)
	if !ok {
		st = new(waitState)
	}
	*st = w.st
	return st
}

// Restore implements rollback.Snapshotter.
func (w *WaitModel) Restore(s any) {
	st, ok := s.(*waitState)
	if !ok {
		panic(fmt.Sprintf("predict: waitmodel: bad snapshot %T", s))
	}
	w.st = *st
}

// FaultInjector pins prediction accuracy for the evaluation sweeps: each
// checked prediction is declared wrong with probability 1-p, regardless
// of its real outcome. Injection happens at the lagger's check, so the
// committed behavior stays correct while the full rollback/roll-forth
// cost is paid — exactly the quantity the paper's model measures.
type FaultInjector struct {
	p      float64
	r      *rng.Source
	checks int64
	faults int64
}

// NewFaultInjector creates an injector with per-check success
// probability p in [0,1]. p=1 never injects; p=0 fails every check.
func NewFaultInjector(p float64, seed uint64) *FaultInjector {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("predict: accuracy %v out of [0,1]", p))
	}
	return &FaultInjector{p: p, r: rng.New(seed)}
}

// Mispredict reports whether the current check must be treated as a
// prediction failure.
func (f *FaultInjector) Mispredict() bool {
	f.checks++
	if f.r.Bool(1 - f.p) {
		f.faults++
		return true
	}
	return false
}

// Stats returns checks performed and faults injected.
func (f *FaultInjector) Stats() (checks, faults int64) { return f.checks, f.faults }

// Accuracy returns the configured success probability.
func (f *FaultInjector) Accuracy() float64 { return f.p }
