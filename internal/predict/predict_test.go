package predict

import (
	"testing"

	"coemu/internal/amba"
)

func TestLastValue(t *testing.T) {
	var l LastValue
	if l.Predict() != 0 {
		t.Fatal("initial prediction must be 0")
	}
	l.Observe(0b101)
	if l.Predict() != 0b101 {
		t.Fatal("last value not tracked")
	}
	s := l.Save()
	l.Observe(0b111)
	l.Restore(s)
	if l.Predict() != 0b101 {
		t.Fatal("restore failed")
	}
}

func TestBurstTrackerPredictsSeqChain(t *testing.T) {
	var b BurstTracker
	ap := amba.AddrPhase{Addr: 0x100, Trans: amba.TransNonSeq, Size: amba.Size32, Burst: amba.BurstIncr4, Write: true}
	b.Observe(ap)
	for i := 1; i < 4; i++ {
		pred, ok := b.Predict()
		if !ok {
			t.Fatalf("no prediction at beat %d", i)
		}
		want := amba.Addr(0x100 + 4*i)
		if pred.Trans != amba.TransSeq || pred.Addr != want {
			t.Fatalf("beat %d predicted %v, want SEQ@%x", i, pred, want)
		}
		if !pred.Write || pred.Burst != amba.BurstIncr4 {
			t.Fatalf("control not held: %v", pred)
		}
		b.Observe(pred)
	}
	// Burst exhausted: tracker predicts IDLE.
	pred, ok := b.Predict()
	if !ok || !pred.Idle() {
		t.Fatalf("after burst end: pred=%v ok=%v, want IDLE", pred, ok)
	}
}

func TestBurstTrackerWrap(t *testing.T) {
	var b BurstTracker
	b.Observe(amba.AddrPhase{Addr: 0x3c, Trans: amba.TransNonSeq, Size: amba.Size32, Burst: amba.BurstWrap4})
	pred, ok := b.Predict()
	if !ok || pred.Addr != 0x30 {
		t.Fatalf("wrap prediction %v ok=%v, want 0x30", pred, ok)
	}
}

func TestBurstTrackerDeclinesWithoutContext(t *testing.T) {
	var b BurstTracker
	if _, ok := b.Predict(); ok {
		t.Fatal("fresh tracker must decline")
	}
	b.Observe(amba.AddrPhase{}) // IDLE
	if _, ok := b.Predict(); ok {
		t.Fatal("idle master must decline")
	}
}

func TestBurstTrackerIncrUnbounded(t *testing.T) {
	var b BurstTracker
	b.Observe(amba.AddrPhase{Addr: 0x0, Trans: amba.TransNonSeq, Size: amba.Size32, Burst: amba.BurstIncr})
	for i := 1; i <= 20; i++ {
		pred, ok := b.Predict()
		if !ok || pred.Addr != amba.Addr(4*i) {
			t.Fatalf("INCR beat %d: %v ok=%v", i, pred, ok)
		}
		b.Observe(pred)
	}
}

func TestBurstTrackerSnapshot(t *testing.T) {
	var b BurstTracker
	b.Observe(amba.AddrPhase{Addr: 0x10, Trans: amba.TransNonSeq, Size: amba.Size32, Burst: amba.BurstIncr8})
	s := b.Save()
	p1, _ := b.Predict()
	b.Observe(p1)
	b.Restore(s)
	p2, _ := b.Predict()
	if p1 != p2 {
		t.Fatal("snapshot replay diverged")
	}
}

func TestWaitModelMirrorsMemoryProfile(t *testing.T) {
	w := NewWaitModel(2, 1)
	// First beat: 2 waits then ready.
	if w.Predict() || w.Predict() {
		t.Fatal("first two cycles must be waits")
	}
	if !w.Predict() {
		t.Fatal("third cycle must be ready")
	}
	// Next beat: 1 wait then ready.
	if w.Predict() {
		t.Fatal("next beat first cycle must wait")
	}
	if !w.Predict() {
		t.Fatal("next beat second cycle must be ready")
	}
}

func TestWaitModelObserveRealigns(t *testing.T) {
	w := NewWaitModel(0, 0)
	// Model expects ready immediately, but the real slave waited twice.
	w.Observe(false)
	w.Observe(false)
	w.Observe(true)
	// After the beat completes, the model starts the next beat cleanly.
	if !w.Predict() {
		t.Fatal("zero-wait model must predict ready on a fresh beat")
	}
}

func TestWaitModelSnapshot(t *testing.T) {
	w := NewWaitModel(3, 1)
	w.Predict()
	s := w.Save()
	a := w.Predict()
	w.Restore(s)
	b := w.Predict()
	if a != b {
		t.Fatal("snapshot replay diverged")
	}
}

func TestFaultInjectorExtremes(t *testing.T) {
	f := NewFaultInjector(1, 1)
	for i := 0; i < 1000; i++ {
		if f.Mispredict() {
			t.Fatal("p=1 must never mispredict")
		}
	}
	g := NewFaultInjector(0, 1)
	for i := 0; i < 1000; i++ {
		if !g.Mispredict() {
			t.Fatal("p=0 must always mispredict")
		}
	}
	checks, faults := g.Stats()
	if checks != 1000 || faults != 1000 {
		t.Fatalf("stats %d/%d", checks, faults)
	}
}

func TestFaultInjectorRate(t *testing.T) {
	f := NewFaultInjector(0.9, 7)
	const n = 100000
	faults := 0
	for i := 0; i < n; i++ {
		if f.Mispredict() {
			faults++
		}
	}
	rate := float64(faults) / n
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("fault rate %g, want ~0.10", rate)
	}
	if f.Accuracy() != 0.9 {
		t.Fatal("accuracy accessor")
	}
}

func TestFaultInjectorBadAccuracyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accuracy > 1 must panic")
		}
	}()
	NewFaultInjector(1.5, 1)
}
