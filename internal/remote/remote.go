// Package remote runs cross-process co-emulation: each side of the
// simulator–accelerator split hosts the full deterministic engine on
// the identical compiled spec, wired together by a mirrored tcpchan
// transport (see that package for the lockstep protocol). The spec
// travels in the connect handshake, so the serving side is
// spec-agnostic: `coemud -domain-serve` hosts whatever system a client
// dials in with, after verifying the canonical spec hash.
//
// Both mirrors finish by exchanging the SHA-256 of their canonical
// report JSON; any divergence the engine's own checks missed fails the
// run here. The modeled run is bit-identical to an in-process one —
// the differential suites at the repo root pin that across every
// example spec, under chaos and under fuzz.
package remote

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"coemu/internal/channel/tcpchan"
	"coemu/internal/core"
	"coemu/internal/faultplan"
	"coemu/internal/service"
	"coemu/internal/spec"
	"coemu/internal/trace"
	"coemu/internal/vclock"
)

// sumTimeout bounds the end-of-run report digest exchange.
const sumTimeout = 15 * time.Second

// defaultPingEvery is the RTT sampling cadence used when the spec asks
// for measured latency and the caller did not pick one.
const defaultPingEvery = 20 * time.Millisecond

// Measured is the host-side latency measurement collected when
// run.measured_latency is set. It never enters the canonical report:
// masking measured (wall-clock) round trips instead of the modeled Tch
// is an observability estimate, not part of the deterministic
// experiment.
type Measured struct {
	// RTTMean and RTTP99 summarize handshake + ping/pong samples.
	RTTMean time.Duration
	RTTP99  time.Duration
	Samples int64
	// MaskedPerf estimates target cycles per second with the modeled
	// channel time replaced by measured round trips: the performance
	// the predictor's packetizing would deliver against this link
	// rather than against the modeled channel.
	MaskedPerf float64
}

// Result is the client side's outcome of one remote run.
type Result struct {
	Report *core.Report
	// View is the canonical report JSON (the byte string the
	// differential suites compare and the digest exchange hashes).
	View      []byte
	Transport tcpchan.Stats
	// Events are the transport's trace events (connects, resyncs,
	// retransmits, reconnects), sequence-indexed.
	Events   []trace.Event
	Measured *Measured
}

// RunOptions tunes the client endpoint.
type RunOptions struct {
	// Tracer optionally records engine protocol events, exactly as an
	// in-process run's Config.Tracer would.
	Tracer      *trace.Recorder
	DialTimeout time.Duration
	RecvTimeout time.Duration
	// InjectRTT / Faults / FaultSeed inject wire-level latency and
	// byte faults into this endpoint's sends (host-side; the ARQ layer
	// heals faults and the report is unaffected).
	InjectRTT time.Duration
	Faults    *faultplan.ChannelFault
	FaultSeed uint64
	PingEvery time.Duration
	// OnTransport observes the connected transport before the engine
	// starts — the chaos suite uses it to schedule mid-run connection
	// kills.
	OnTransport func(*tcpchan.Transport)
}

// ServeOptions tunes the serving endpoint.
type ServeOptions struct {
	RecvTimeout time.Duration
	InjectRTT   time.Duration
	Faults      *faultplan.ChannelFault
	FaultSeed   uint64
	// Once serves a single session and returns its error instead of
	// accepting forever.
	Once bool
	// OnSession observes each finished session (metrics, logging).
	OnSession func(SessionInfo)
	// Logf, when non-nil, receives serve-loop progress lines.
	Logf func(format string, args ...any)
}

// SessionInfo summarizes one served session.
type SessionInfo struct {
	Hash      string
	Err       error
	Transport tcpchan.Stats
	Report    *core.Report
	// View is the canonical report JSON of the serving mirror.
	View []byte
}

// CanonicalView marshals the canonical report JSON both mirrors
// compare byte-for-byte.
func CanonicalView(rep *core.Report) ([]byte, error) {
	return json.Marshal(service.NewReportView(rep))
}

// prepare normalizes sp and derives the handshake identity.
func prepare(sp *spec.Spec) (*spec.Spec, string, []byte, error) {
	n, err := sp.Normalized()
	if err != nil {
		return nil, "", nil, err
	}
	hash, err := n.CanonicalHash()
	if err != nil {
		return nil, "", nil, err
	}
	meta, err := json.Marshal(n)
	if err != nil {
		return nil, "", nil, err
	}
	return n, hash, meta, nil
}

// runEngine compiles sp, runs the engine over tr, and cross-checks the
// canonical report digest with the peer mirror.
func runEngine(ctx context.Context, sp *spec.Spec, tr *tcpchan.Transport, tracer *trace.Recorder) (*core.Report, []byte, error) {
	d, cfg, err := sp.Compile()
	if err != nil {
		return nil, nil, err
	}
	cfg.Transport = tr
	cfg.Tracer = tracer
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := eng.RunContext(ctx, sp.Run.Cycles)
	if err != nil {
		return nil, nil, err
	}
	view, err := CanonicalView(rep)
	if err != nil {
		return nil, nil, err
	}
	sum := sha256.Sum256(view)
	peer, err := tr.ExchangeSum(sum[:], sumTimeout)
	if err != nil {
		return rep, view, fmt.Errorf("remote: report cross-check: %w", err)
	}
	if !bytes.Equal(peer, sum[:]) {
		return rep, view, fmt.Errorf("remote: mirrored runs diverged: local report digest %x, peer %x", sum[:8], peer[:8])
	}
	return rep, view, nil
}

// Run drives sp against a domain host at addr and returns the local
// (client-mirror) report. The client takes the simulator role; the
// host runs the accelerator-authoritative mirror of the same spec.
func Run(ctx context.Context, addr string, sp *spec.Spec, o RunOptions) (*Result, error) {
	n, hash, meta, err := prepare(sp)
	if err != nil {
		return nil, err
	}
	topts := tcpchan.Options{
		Role: tcpchan.RoleSim, Hash: hash, Meta: meta,
		DialTimeout: o.DialTimeout, RecvTimeout: o.RecvTimeout,
		InjectRTT: o.InjectRTT, Faults: o.Faults, FaultSeed: o.FaultSeed,
		PingEvery: o.PingEvery,
	}
	if n.Run.MeasuredLatency && topts.PingEvery == 0 {
		topts.PingEvery = defaultPingEvery
	}
	tr, err := tcpchan.Dial(addr, topts)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	if o.OnTransport != nil {
		o.OnTransport(tr)
	}
	rep, view, err := runEngine(ctx, n, tr, o.Tracer)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Report: rep, View: view,
		Transport: tr.Stats(), Events: tr.TraceEvents(),
	}
	if n.Run.MeasuredLatency {
		res.Measured = measure(rep, res.Transport)
	}
	return res, nil
}

// measure builds the measured-latency estimate: the modeled channel
// total is replaced by one measured round trip per channel access.
func measure(rep *core.Report, st tcpchan.Stats) *Measured {
	m := &Measured{RTTMean: st.RTTMean, RTTP99: st.RTTP99, Samples: st.RTTSamples}
	if st.RTTSamples == 0 || rep.Cycles == 0 {
		return m
	}
	modeled := rep.Ledger.Get(vclock.Channel)
	masked := rep.Ledger.Total() - modeled + time.Duration(rep.Channel.TotalAccesses())*st.RTTMean
	if masked > 0 {
		m.MaskedPerf = float64(rep.Cycles) / masked.Seconds()
	}
	return m
}

// VerifyMeta is the accept-side handshake check: the dialer's spec
// blob must parse, validate, and hash to the announced canonical hash.
func VerifyMeta(meta []byte, hash string) error {
	sp, err := spec.Parse(meta)
	if err != nil {
		return fmt.Errorf("remote: handshake spec: %w", err)
	}
	n, err := sp.Normalized()
	if err != nil {
		return err
	}
	h, err := n.CanonicalHash()
	if err != nil {
		return err
	}
	if h != hash {
		return fmt.Errorf("remote: handshake hash %s does not match spec (%s)", hash, h)
	}
	return nil
}

// Serve hosts the accelerator domain on l: each accepted session ships
// a spec in its handshake, runs the accelerator-authoritative mirror
// of it, and cross-checks the final report with the client. Returns
// when ctx is canceled or the listener dies (or after one session with
// o.Once).
func Serve(ctx context.Context, l *tcpchan.Listener, o ServeOptions) error {
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		topts := tcpchan.Options{
			Role: tcpchan.RoleAcc, VerifyMeta: VerifyMeta,
			RecvTimeout: o.RecvTimeout,
			InjectRTT:   o.InjectRTT, Faults: o.Faults, FaultSeed: o.FaultSeed,
		}
		tr, meta, err := l.Accept(topts)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		info := serveSession(ctx, tr, meta)
		tr.Close()
		if info.Err != nil {
			logf("session %s failed: %v", info.Hash, info.Err)
		} else {
			logf("session %s: %d cycles, perf %.0f cyc/s, rtt %v (%d samples)",
				info.Hash, info.Report.Cycles, info.Report.Perf(), info.Transport.RTTMean, info.Transport.RTTSamples)
		}
		if o.OnSession != nil {
			o.OnSession(info)
		}
		if o.Once {
			return info.Err
		}
	}
}

// serveSession runs one accepted session to completion.
func serveSession(ctx context.Context, tr *tcpchan.Transport, meta []byte) SessionInfo {
	var info SessionInfo
	sp, err := spec.Parse(meta)
	if err != nil {
		info.Err = err
		return info
	}
	n, err := sp.Normalized()
	if err != nil {
		info.Err = err
		return info
	}
	info.Hash, _ = n.CanonicalHash()
	rep, view, err := runEngine(ctx, n, tr, nil)
	info.Report, info.View, info.Err = rep, view, err
	info.Transport = tr.Stats()
	return info
}

// PairResult is the outcome of Pair: both mirrors' reports and errors,
// for differential tests that need the two sides of one run.
type PairResult struct {
	Client    *Result
	ClientErr error

	ServerReport *core.Report
	ServerView   []byte
	ServerErr    error
	ServerStats  tcpchan.Stats
}

// Pair runs sp across both roles of a real TCP socket pair inside this
// process: a serving mirror on a loopback listener and a client mirror
// dialed into it. It is the in-binary cross-process harness the
// differential and fuzz suites drive; true two-process coverage comes
// from the subprocess cases layered on top.
func Pair(ctx context.Context, sp *spec.Spec, client RunOptions, server ServeOptions) (*PairResult, error) {
	l, err := tcpchan.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	server.Once = true
	sessions := make(chan SessionInfo, 1)
	prev := server.OnSession
	server.OnSession = func(info SessionInfo) {
		if prev != nil {
			prev(info)
		}
		sessions <- info
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, l, server) }()

	res := &PairResult{}
	res.Client, res.ClientErr = Run(ctx, l.Addr().String(), sp, client)
	select {
	case info := <-sessions:
		res.ServerReport, res.ServerView, res.ServerErr = info.Report, info.View, info.Err
		res.ServerStats = info.Transport
	case <-time.After(sumTimeout + 5*time.Second):
		return nil, fmt.Errorf("remote: serving mirror never finished")
	}
	<-serveErr
	return res, nil
}
