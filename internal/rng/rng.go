// Package rng provides a tiny deterministic pseudo-random number
// generator with snapshot support.
//
// Components of a leader domain must be perfectly replayable during
// roll-forth, including any randomized behavior (jittery slave latencies,
// randomized CPU traffic, forced-accuracy prediction faults). The
// standard library's math/rand sources cannot be snapshotted cheaply, so
// the engine uses this xorshift64* generator whose entire state is one
// word.
package rng

// Source is a snapshotable xorshift64* PRNG. The zero value is invalid;
// use New.
type Source struct {
	s uint64
}

// New returns a source seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Source{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Save implements rollback.Snapshotter.
func (r *Source) Save() any { return r.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a source (boxing the raw
// uint64 state would heap-allocate on almost every save).
func (r *Source) SaveInto(prev any) any {
	p, ok := prev.(*uint64)
	if !ok {
		p = new(uint64)
	}
	*p = r.s
	return p
}

// Restore implements rollback.Snapshotter.
func (r *Source) Restore(v any) {
	s, ok := v.(*uint64)
	if !ok {
		panic("rng: bad snapshot type")
	}
	r.s = *s
}
