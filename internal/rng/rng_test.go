package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestSaveRestore(t *testing.T) {
	r := New(7)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	s := r.Save()
	var first []uint64
	for i := 0; i < 50; i++ {
		first = append(first, r.Uint64())
	}
	r.Restore(s)
	for i := 0; i < 50; i++ {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(99)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) frequency = %g", frac)
	}
}

func TestRestoreBadTypePanics(t *testing.T) {
	r := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad snapshot must panic")
		}
	}()
	r.Restore("nope")
}
