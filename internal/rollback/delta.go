package rollback

import "fmt"

// DeltaSnapshotter is an optional extension of InPlaceSnapshotter for
// components that track their own dirtiness between captures and can
// save just the state touched since the previous capture — the
// incremental state saving of the Time Warp literature, applied to the
// once-per-transition rb_store.
//
// The registry drives the protocol: after every capture (full or
// delta) it calls MarkClean; Dirty then reports whether any state may
// have changed since. A clean component is skipped entirely on the
// next incremental save — its ring entry just points back at the
// previous capture — and skipped again on restore when it is still
// clean, because its state provably never moved.
//
// SaveDelta captures the state changed since the previous capture,
// recycling prev exactly like SaveInto. A delta record is restorable
// only while it is the component's most recent capture, and only
// through Registry.Restore: the registry walks its ring back across
// clean entries to the component's newest capture and hands it to
// RestoreDelta, and the component replays whatever internal undo state
// the rewind needs (ip.Memory, for example, rewinds the copy-on-write
// page stash of its current save interval). Components whose whole
// state is a small value struct simply return a self-contained copy
// from SaveDelta and restore it directly.
type DeltaSnapshotter interface {
	InPlaceSnapshotter
	// Dirty reports whether state may have changed since the last
	// MarkClean. False negatives corrupt snapshots; implementations
	// must err on the side of reporting dirty.
	Dirty() bool
	// MarkClean resets dirty tracking. The registry calls it right
	// after capturing or restoring the component.
	MarkClean()
	// SaveDelta captures the state changed since the previous capture
	// into a delta record, recycling prev (a value previously returned
	// by SaveDelta of the same component) when possible.
	SaveDelta(prev any) any
	// RestoreDelta rewinds the component to newest, its most recent
	// delta record. The registry guarantees newest-only restore order,
	// so implementations may rely on internal undo state accumulated
	// since that capture.
	RestoreDelta(newest any)
}

// snapKind classifies one component's entry in a ring slot.
type snapKind uint8

const (
	// kindFull is a self-contained capture restorable on its own.
	kindFull snapKind = iota
	// kindDelta is an incremental capture; restoring it relies on the
	// component's newest-only restore contract.
	kindDelta
	// kindClean marks a component unchanged since its previous
	// capture; the entry holds no value (any buffer present is stale
	// scratch kept for recycling).
	kindClean
)

// ringSlot is one incremental save: a kind and value per component.
type ringSlot struct {
	kinds []snapKind
	vals  []any
}

// SetDeltaCadence configures incremental saving: every k-th
// SaveIncremental is a full capture of every component (a ring
// anchor); the k-1 saves between anchors capture only dirty
// components, as deltas where supported. k <= 1 keeps SaveIncremental
// byte-equivalent to SaveInto (every save full and self-contained —
// exactly the pre-delta behavior). Changing the cadence invalidates
// any snapshot taken earlier.
func (r *Registry) SetDeltaCadence(k int) {
	if k < 1 {
		k = 1
	}
	r.cadence = k
	r.ring = nil
	r.pos = -1
}

// DeltaCadence returns the configured cadence (0 or 1 = full saves).
func (r *Registry) DeltaCadence() int { return r.cadence }

// ensureRing (re)builds the ring buffers for the current component
// set. Saves are the cheap path; this runs once per topology.
func (r *Registry) ensureRing() {
	if len(r.ring) == r.cadence && len(r.ring[0].kinds) == len(r.snaps) {
		return
	}
	r.ring = make([]ringSlot, r.cadence)
	for i := range r.ring {
		r.ring[i] = ringSlot{
			kinds: make([]snapKind, len(r.snaps)),
			vals:  make([]any, len(r.snaps)),
		}
	}
	r.lastCap = make([]int, len(r.snaps))
	r.pos = -1
}

// SaveIncremental captures every registered component into dst under
// the configured delta cadence. At an anchor (the first save, and
// every cadence-th save after) every component is captured in full; in
// between, clean components are skipped entirely and dirty
// DeltaSnapshotters record deltas. dst becomes a handle into the
// registry's ring: only the most recent incremental snapshot is
// restorable — the same single-live-snapshot discipline SaveInto
// documents, now enforced. The modeled cost of a store is charged by
// the caller and does not depend on what the host copies here.
func (r *Registry) SaveIncremental(dst *Snapshot) {
	if r.cadence <= 1 {
		r.SaveInto(dst)
		return
	}
	r.ensureRing()
	if r.pos < 0 || r.pos == r.cadence-1 {
		r.pos = 0
	} else {
		r.pos++
	}
	slot := &r.ring[r.pos]
	anchor := r.pos == 0
	for i := range r.snaps {
		e := &r.snaps[i]
		switch {
		case anchor || e.ds == nil:
			if e.ips != nil {
				slot.vals[i] = e.ips.SaveInto(slot.vals[i])
			} else {
				slot.vals[i] = e.s.Save()
			}
			slot.kinds[i] = kindFull
			r.lastCap[i] = r.pos
		case !e.ds.Dirty():
			slot.kinds[i] = kindClean
		default:
			slot.vals[i] = e.ds.SaveDelta(slot.vals[i])
			slot.kinds[i] = kindDelta
			r.lastCap[i] = r.pos
		}
		if e.ds != nil {
			e.ds.MarkClean()
		}
	}
	r.seq++
	dst.values = nil
	dst.n = len(r.snaps)
	dst.reg = r
	dst.seq = r.seq
}

// restoreIncremental rewinds every component to the ring snapshot s:
// for each component it walks back across clean entries (via the
// maintained last-capture index) to the newest real capture —
// ultimately the full anchor — and reapplies it, skipping components
// that provably never moved since the save.
func (r *Registry) restoreIncremental(s Snapshot) {
	if s.reg != r {
		panic("rollback: incremental snapshot restored into a foreign registry")
	}
	if s.n != len(r.snaps) {
		panic(fmt.Sprintf("rollback: snapshot of %d components restored into %d", s.n, len(r.snaps)))
	}
	if s.seq != r.seq {
		panic(fmt.Sprintf("rollback: incremental snapshot %d is stale (latest %d); only the most recent is restorable", s.seq, r.seq))
	}
	for i := range r.snaps {
		e := &r.snaps[i]
		if e.ds != nil && !e.ds.Dirty() {
			// Untouched since the capture: the state never moved.
			continue
		}
		p := r.lastCap[i]
		slot := &r.ring[p]
		if slot.kinds[i] == kindDelta {
			e.ds.RestoreDelta(slot.vals[i])
		} else {
			e.s.Restore(slot.vals[i])
		}
		if e.ds != nil {
			e.ds.MarkClean()
		}
	}
}
