package rollback

import "testing"

// deltaComp is a DeltaSnapshotter test double: an integer state with
// call counters proving which capture path the registry took.
type deltaComp struct {
	v     int
	dirty bool

	fullSaves  int
	deltaSaves int
	restores   int
}

func (c *deltaComp) set(v int) {
	c.v = v
	c.dirty = true
}

func (c *deltaComp) Save() any { return c.SaveInto(nil) }

func (c *deltaComp) SaveInto(prev any) any {
	c.fullSaves++
	p, ok := prev.(*int)
	if !ok {
		p = new(int)
	}
	*p = c.v
	return p
}

func (c *deltaComp) Restore(v any) {
	c.restores++
	c.v = *v.(*int)
	c.dirty = true
}

func (c *deltaComp) Dirty() bool { return c.dirty }
func (c *deltaComp) MarkClean()  { c.dirty = false }
func (c *deltaComp) SaveDelta(prev any) any {
	c.deltaSaves++
	p, ok := prev.(*int)
	if !ok {
		p = new(int)
	}
	*p = c.v
	return p
}
func (c *deltaComp) RestoreDelta(newest any) { c.Restore(newest) }

// plainComp implements only Snapshotter: the registry must capture it
// in full on every incremental save.
type plainComp struct {
	v     int
	saves int
}

func (c *plainComp) Save() any {
	c.saves++
	return c.v
}
func (c *plainComp) Restore(v any) { c.v = v.(int) }

func TestIncrementalCadenceAndCleanSkip(t *testing.T) {
	var r Registry
	d := &deltaComp{dirty: true}
	p := &plainComp{}
	r.Register("d", d, 1)
	r.Register("p", p, 1)
	r.SetDeltaCadence(4)

	var s Snapshot
	// Save 1: anchor — full capture for both components.
	r.SaveIncremental(&s)
	if d.fullSaves != 1 || d.deltaSaves != 0 {
		t.Fatalf("anchor: %d full / %d delta saves", d.fullSaves, d.deltaSaves)
	}
	// Save 2: d untouched — clean skip; plain component saved anyway.
	r.SaveIncremental(&s)
	if d.fullSaves != 1 || d.deltaSaves != 0 {
		t.Fatalf("clean save still captured: %d full / %d delta", d.fullSaves, d.deltaSaves)
	}
	if p.saves != 2 {
		t.Fatalf("plain component saved %d times, want every save", p.saves)
	}
	// Save 3: d dirty — delta capture.
	d.set(7)
	r.SaveIncremental(&s)
	if d.deltaSaves != 1 {
		t.Fatalf("dirty save took no delta (%d)", d.deltaSaves)
	}
	// Save 4 is the cadence-4 ring's last slot; save 5 must re-anchor.
	r.SaveIncremental(&s)
	d.set(9)
	r.SaveIncremental(&s)
	if d.fullSaves != 2 {
		t.Fatalf("no re-anchor after a full ring (%d full saves)", d.fullSaves)
	}
}

func TestIncrementalRestoreWalksToNewestCapture(t *testing.T) {
	var r Registry
	d := &deltaComp{dirty: true}
	r.Register("d", d, 1)
	r.SetDeltaCadence(8)

	var s Snapshot
	d.set(1)
	r.SaveIncremental(&s) // anchor: captures 1
	d.set(2)
	r.SaveIncremental(&s) // delta: captures 2
	r.SaveIncremental(&s) // clean
	r.SaveIncremental(&s) // clean
	d.set(99)             // post-save mutation to roll back
	r.Restore(s)
	if d.v != 2 {
		t.Fatalf("restored %d, want 2 (the newest capture behind the clean entries)", d.v)
	}
	if d.restores != 1 {
		t.Fatalf("%d restores, want 1", d.restores)
	}
}

func TestIncrementalRestoreSkipsUntouched(t *testing.T) {
	var r Registry
	d := &deltaComp{dirty: true}
	r.Register("d", d, 1)
	r.SetDeltaCadence(4)

	var s Snapshot
	d.set(5)
	r.SaveIncremental(&s)
	r.Restore(s) // nothing moved since the save
	if d.restores != 0 {
		t.Fatalf("untouched component was restored %d times", d.restores)
	}
	if d.v != 5 {
		t.Fatalf("state moved to %d", d.v)
	}
}

func TestIncrementalStaleRestorePanics(t *testing.T) {
	var r Registry
	d := &deltaComp{dirty: true}
	r.Register("d", d, 1)
	r.SetDeltaCadence(4)

	var old, cur Snapshot
	r.SaveIncremental(&old)
	r.SaveIncremental(&cur)
	defer func() {
		if recover() == nil {
			t.Fatal("stale incremental restore must panic")
		}
	}()
	r.Restore(old)
}

func TestIncrementalForeignRegistryPanics(t *testing.T) {
	var r1, r2 Registry
	r1.Register("d", &deltaComp{}, 1)
	r2.Register("d", &deltaComp{}, 1)
	r1.SetDeltaCadence(4)
	r2.SetDeltaCadence(4)
	var s Snapshot
	r1.SaveIncremental(&s)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign-registry restore must panic")
		}
	}()
	r2.Restore(s)
}

func TestCadenceOneIsFullSaves(t *testing.T) {
	var r Registry
	d := &deltaComp{dirty: true}
	r.Register("d", d, 1)
	r.SetDeltaCadence(1)

	var s Snapshot
	r.SaveIncremental(&s)
	r.SaveIncremental(&s)
	if d.deltaSaves != 0 || d.fullSaves != 2 {
		t.Fatalf("cadence 1 took %d delta / %d full saves, want all full", d.deltaSaves, d.fullSaves)
	}
	// The snapshot is self-contained (no ring handle): restorable via
	// the legacy path.
	d.set(3)
	r.Restore(s)
	if d.v != 0 {
		t.Fatalf("restored %d, want the saved 0", d.v)
	}
}
