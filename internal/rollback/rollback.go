// Package rollback provides the state store/restore machinery the
// optimistic co-emulation scheme depends on: the leader domain stores its
// state before running ahead (the paper's rb_store, P-5) and restores it
// when the lagger reports a misprediction (rb_restore, S-6).
//
// Components register as Snapshotters with a Registry. A Registry.Save
// captures every component atomically; Restore rewinds them all. The cost
// of a store/restore is modeled, not measured: a hardware accelerator
// shadows its registers in parallel (tens of nanoseconds regardless of
// state size), while a software simulator copies its rollback variables
// one by one (cost linear in the variable count). Both cost models come
// from fitting the paper's Table 2 and SLA figures; see DESIGN.md §5.
//
// Registries are not safe for concurrent use, and the engine's parallel
// cycle loop (core.Config.Workers) never needs them to be: each domain
// owns its registry exclusively, and the coordinating goroutine joins
// every worker lane before a Save, Restore or roll-forth touches one —
// the join is the rollback fence (see core/parallel.go).
package rollback

import (
	"fmt"
	"time"
)

// Snapshotter is implemented by every stateful component of a leader
// domain. Save must return a deep, self-contained copy: a Restore with
// that value must reproduce the exact externally visible behavior, or
// roll-forth replay diverges and the equivalence invariant breaks.
type Snapshotter interface {
	Save() any
	Restore(any)
}

// InPlaceSnapshotter is an optional extension of Snapshotter for
// components on the once-per-transition store path. SaveInto behaves
// like Save but may recycle prev — a value previously returned by Save
// or SaveInto of the same component — instead of heap-allocating a
// fresh snapshot. Passing nil (or a foreign value) must fall back to
// allocating, so SaveInto(nil) is always equivalent to Save().
//
// The contract mirrors the leader's rollback discipline: at most one
// snapshot is live at a time, so recycling the previous transition's
// buffers is safe. Callers that need overlapping snapshot lifetimes
// (tests, checkpointing) must keep using Save.
type InPlaceSnapshotter interface {
	Snapshotter
	SaveInto(prev any) any
}

// CostModel prices a store or restore of n rollback variables.
type CostModel struct {
	// StoreBase/RestoreBase are fixed per-operation costs.
	StoreBase   time.Duration
	RestoreBase time.Duration
	// StorePerVarPs/RestorePerVarPs are per-rollback-variable costs in
	// picoseconds (time.Duration cannot express sub-nanosecond values);
	// zero for hardware shadow-register stores, which copy in parallel.
	StorePerVarPs   int64
	RestorePerVarPs int64
}

// StoreCost returns the modeled duration of one state store.
func (m CostModel) StoreCost(vars int) time.Duration {
	return m.StoreBase + time.Duration(int64(vars)*m.StorePerVarPs/1000)
}

// RestoreCost returns the modeled duration of one state restore.
func (m CostModel) RestoreCost(vars int) time.Duration {
	return m.RestoreBase + time.Duration(int64(vars)*m.RestorePerVarPs/1000)
}

// HardwareCost models an accelerator that stores its state into shadow
// registers in parallel: the cost is flat and tiny. The constants are
// fitted from Table 2 (Tstore at p=1.0 gives ~15 ns per store; Trestore
// rows give ~29 ns per restore).
func HardwareCost() CostModel {
	return CostModel{StoreBase: 15 * time.Nanosecond, RestoreBase: 29 * time.Nanosecond}
}

// SoftwareCost models a simulator that copies its rollback variables in
// software. The per-variable constant (~4.7 ns/var) is fitted from the
// paper's SLA maximum-gain figures (3.25 at 100 kcycles/s, 15.34 at
// 1,000 kcycles/s); with the paper's 1000 rollback variables a store
// costs ~4.7 µs.
func SoftwareCost() CostModel {
	return CostModel{
		StoreBase: 100 * time.Nanosecond, RestoreBase: 100 * time.Nanosecond,
		StorePerVarPs: 4700, RestorePerVarPs: 4700,
	}
}

// Registry holds the snapshotters of one domain in registration order.
type Registry struct {
	snaps []entry
	vars  int

	// Incremental (delta) saving state; see SetDeltaCadence. cadence
	// 0/1 keeps every save full. The ring holds the last saves since
	// the anchor (slot 0, always a full capture); pos is the most
	// recent slot, seq the save sequence number handles are checked
	// against.
	cadence int
	ring    []ringSlot
	pos     int
	seq     uint64
	lastCap []int // per component: ring slot of its newest capture
}

type entry struct {
	name string
	s    Snapshotter
	ips  InPlaceSnapshotter // non-nil when s supports in-place saves
	ds   DeltaSnapshotter   // non-nil when s supports delta saves
}

// Snapshot is an atomic capture of a whole Registry. Snapshots from
// Save/SaveInto are self-contained; snapshots from SaveIncremental are
// handles into the registry's delta ring, restorable only while they
// are the registry's most recent save.
type Snapshot struct {
	values []any
	n      int // number of snapshotters at capture time

	// reg/seq identify a ring handle (reg nil for self-contained).
	reg *Registry
	seq uint64
}

// Register adds a snapshotter under a diagnostic name. The extra
// rollback-variable count vars feeds the cost model (it approximates how
// much state the component contributes).
func (r *Registry) Register(name string, s Snapshotter, vars int) {
	if s == nil {
		panic(fmt.Sprintf("rollback: register nil snapshotter %q", name))
	}
	if vars < 0 {
		panic(fmt.Sprintf("rollback: negative var count for %q", name))
	}
	ips, _ := s.(InPlaceSnapshotter)
	ds, _ := s.(DeltaSnapshotter)
	r.snaps = append(r.snaps, entry{name, s, ips, ds})
	r.vars += vars
}

// Vars returns the total number of registered rollback variables.
func (r *Registry) Vars() int { return r.vars }

// Components returns how many snapshotters are registered.
func (r *Registry) Components() int { return len(r.snaps) }

// Save captures every registered component into a fresh Snapshot.
func (r *Registry) Save() Snapshot {
	vals := make([]any, len(r.snaps))
	for i, e := range r.snaps {
		vals[i] = e.s.Save()
	}
	return Snapshot{values: vals, n: len(r.snaps)}
}

// SaveInto captures every registered component into dst, recycling the
// buffers of whatever dst previously held. Components implementing
// InPlaceSnapshotter save without heap allocation; the rest fall back
// to Save. The previous contents of dst are invalidated — SaveInto is
// for the leader's single-live-snapshot store path, not for keeping
// multiple checkpoints (use Save for that).
func (r *Registry) SaveInto(dst *Snapshot) {
	if cap(dst.values) < len(r.snaps) {
		dst.values = make([]any, len(r.snaps))
	}
	dst.values = dst.values[:len(r.snaps)]
	dst.n = len(r.snaps)
	dst.reg = nil
	dst.seq = 0
	for i, e := range r.snaps {
		if e.ips != nil {
			dst.values[i] = e.ips.SaveInto(dst.values[i])
		} else {
			dst.values[i] = e.s.Save()
		}
	}
}

// Restore rewinds every registered component to the snapshot. Restoring
// a snapshot taken with a different component set panics: it means the
// engine rolled across a topology change, which the scheme forbids.
// Ring snapshots (SaveIncremental) dispatch to the delta-aware path,
// which walks back to the nearest full capture and replays deltas
// forward.
func (r *Registry) Restore(s Snapshot) {
	if s.reg != nil {
		r.restoreIncremental(s)
		return
	}
	if s.n != len(r.snaps) {
		panic(fmt.Sprintf("rollback: snapshot of %d components restored into %d", s.n, len(r.snaps)))
	}
	for i, e := range r.snaps {
		e.s.Restore(s.values[i])
	}
}
