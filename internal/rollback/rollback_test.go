package rollback

import (
	"testing"
	"time"
)

type counter struct{ n int }

func (c *counter) Save() any     { return c.n }
func (c *counter) Restore(v any) { c.n = v.(int) }

func TestRegistrySaveRestore(t *testing.T) {
	var r Registry
	a, b := &counter{1}, &counter{2}
	r.Register("a", a, 10)
	r.Register("b", b, 20)
	if r.Vars() != 30 {
		t.Fatalf("Vars = %d", r.Vars())
	}
	if r.Components() != 2 {
		t.Fatalf("Components = %d", r.Components())
	}
	snap := r.Save()
	a.n, b.n = 100, 200
	r.Restore(snap)
	if a.n != 1 || b.n != 2 {
		t.Fatalf("restore gave %d,%d", a.n, b.n)
	}
}

func TestRegistryNilPanics(t *testing.T) {
	var r Registry
	defer func() {
		if recover() == nil {
			t.Fatal("nil snapshotter must panic")
		}
	}()
	r.Register("x", nil, 0)
}

func TestRegistryNegativeVarsPanics(t *testing.T) {
	var r Registry
	defer func() {
		if recover() == nil {
			t.Fatal("negative vars must panic")
		}
	}()
	r.Register("x", &counter{}, -1)
}

func TestRestoreTopologyMismatchPanics(t *testing.T) {
	var r Registry
	r.Register("a", &counter{}, 1)
	snap := r.Save()
	r.Register("b", &counter{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("topology mismatch must panic")
		}
	}()
	r.Restore(snap)
}

func TestHardwareCostFlat(t *testing.T) {
	m := HardwareCost()
	if m.StoreCost(0) != m.StoreCost(100000) {
		t.Error("hardware store cost must not depend on variable count")
	}
	if m.StoreCost(1000) != 15*time.Nanosecond {
		t.Errorf("hardware store = %v", m.StoreCost(1000))
	}
	if m.RestoreCost(1000) != 29*time.Nanosecond {
		t.Errorf("hardware restore = %v", m.RestoreCost(1000))
	}
}

func TestSoftwareCostLinear(t *testing.T) {
	m := SoftwareCost()
	// 1000 vars at 4.7 ns/var = 4.7 µs + 100 ns base.
	want := 4700*time.Nanosecond + 100*time.Nanosecond
	if got := m.StoreCost(1000); got != want {
		t.Errorf("software store(1000) = %v, want %v", got, want)
	}
	if m.StoreCost(2000) <= m.StoreCost(1000) {
		t.Error("software store cost must grow with variable count")
	}
}

func TestSnapshotIndependent(t *testing.T) {
	var r Registry
	c := &counter{5}
	r.Register("c", c, 1)
	s1 := r.Save()
	c.n = 6
	s2 := r.Save()
	r.Restore(s1)
	if c.n != 5 {
		t.Fatal("first snapshot corrupted")
	}
	r.Restore(s2)
	if c.n != 6 {
		t.Fatal("second snapshot corrupted")
	}
}
