package service

import (
	"container/list"
	"sync"
)

// resultCache is an LRU cache of completed run results keyed by the
// canonical spec hash. A hit returns the exact *Result pointer that was
// stored, so duplicate submissions observe bit-identical results
// (results are treated as immutable once published).
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached result for key, marking it most recently used.
func (c *resultCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a report under key, evicting the least recently used entry
// when the cache is full. A zero or negative capacity disables caching.
func (c *resultCache) Put(key string, res *Result) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// Stats returns the hit/miss counters and current size.
func (c *resultCache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
