package service

import (
	"container/list"
	"sync"

	"coemu/internal/core"
)

// resultCache is an LRU cache of completed run reports keyed by the
// canonical spec hash. A hit returns the exact *core.Report pointer the
// original run produced, so duplicate submissions observe bit-identical
// results (reports are treated as immutable once published).
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key string
	rep *core.Report
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached report for key, marking it most recently used.
func (c *resultCache) Get(key string) (*core.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// Put stores a report under key, evicting the least recently used entry
// when the cache is full. A zero or negative capacity disables caching.
func (c *resultCache) Put(key string, rep *core.Report) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, rep: rep})
}

// Stats returns the hit/miss counters and current size.
func (c *resultCache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
