package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"coemu/internal/faultplan"
	"coemu/internal/spec"
)

// timeoutSpec is testSpec plus a run.timeout.
func timeoutSpec(t *testing.T, cycles int64, timeout string) *spec.Spec {
	t.Helper()
	src := fmt.Sprintf(`{
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": %d, "timeout": %q}
	}`, cycles, timeout)
	s, err := spec.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorkerPanicIsolatesJob(t *testing.T) {
	svc := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 3, Service: &faultplan.ServiceFault{WorkerPanic: 1}},
	})
	job, err := svc.Submit(testSpec(t, 2000), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("Wait err = %v, want ErrWorkerPanic", err)
	}
	if got := job.Info().Status; got != StatusFailed {
		t.Fatalf("status = %s, want failed", got)
	}
	if got := svc.Counters().WorkerPanics; got != 1 {
		t.Fatalf("worker_panics = %d, want 1", got)
	}

	// The worker recovered: the pool keeps serving. A fault-free
	// service would be needed for success, so just verify the single
	// worker still processes jobs (they fail by injection, not by a
	// dead worker).
	job2, err := svc.Submit(testSpec(t, 2500), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job2.Wait(context.Background()); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("second Wait err = %v, want ErrWorkerPanic from a live worker", err)
	}
}

func TestExecuteJobRecoversPanics(t *testing.T) {
	// The recover contract, pinned directly: a panic mid-execution
	// (the injected one stands in for any engine panic) converts to an
	// ErrWorkerPanic return instead of unwinding the worker goroutine.
	svc := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 3, Service: &faultplan.ServiceFault{WorkerPanic: 1}},
	})
	job := &Job{svc: svc, spec: testSpec(t, 100), ctx: context.Background()}
	rep, err := svc.executeJob(job, 0)
	if rep != nil || !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("executeJob = %v/%v, want nil/ErrWorkerPanic", rep, err)
	}

	// And a canceled submission context passes through untouched.
	plain := newTestService(t, Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plain.executeJob(&Job{svc: plain, spec: testSpec(t, 100), ctx: ctx}, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled executeJob err = %v, want context.Canceled", err)
	}
}

func TestJobTimeoutFailsWithCounter(t *testing.T) {
	// A slow-run injection far beyond the deadline forces the timeout
	// deterministically (probability 1).
	svc := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 5, Service: &faultplan.ServiceFault{SlowRun: 1, SlowDelayMS: 5000}},
	})
	job, err := svc.Submit(timeoutSpec(t, 2000, "50ms"), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("Wait = %v/%v, want ErrJobTimeout", res, err)
	}
	if got := job.Info().Status; got != StatusFailed {
		t.Fatalf("status = %s, want failed (a deadline is not a client cancel)", got)
	}
	c := svc.Counters()
	if c.JobTimeouts != 1 {
		t.Fatalf("job_timeouts = %d, want 1", c.JobTimeouts)
	}
	if !strings.Contains(err.Error(), "50ms") {
		t.Fatalf("timeout error %q does not name the deadline", err)
	}
}

func TestClientCancelStillReportsCanceled(t *testing.T) {
	// With a deadline configured but the client aborting first, the job
	// must report canceled, not timed out.
	svc := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 5, Service: &faultplan.ServiceFault{SlowRun: 1, SlowDelayMS: 5000}},
	})
	job, err := svc.Submit(timeoutSpec(t, 2000, "1h"), false)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		job.cancel()
	}()
	if _, err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	if got := job.Info().Status; got != StatusCanceled {
		t.Fatalf("status = %s, want canceled", got)
	}
	if got := svc.Counters().JobTimeouts; got != 0 {
		t.Fatalf("job_timeouts = %d, want 0", got)
	}
}

func TestServiceChannelFaultsPreserveResults(t *testing.T) {
	// A service-level channel plan that the protocol absorbs
	// (duplicates only) must yield byte-identical results to a
	// fault-free service.
	clean := newTestService(t, Options{Workers: 1})
	jc, err := clean.Submit(testSpec(t, 4000), false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := jc.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	chaotic := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 8, Channel: &faultplan.ChannelFault{Duplicate: 1}},
	})
	jf, err := chaotic.Submit(testSpec(t, 4000), false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jf.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.JSON) != string(want.JSON) {
		t.Fatalf("faulted service result differs from clean service:\nfaulted: %s\nclean:   %s", got.JSON, want.JSON)
	}
}

func TestRetriedJobDrawsFreshChannelFaults(t *testing.T) {
	// Per-job fault seeds: two jobs for the same spec (same hash) must
	// draw different fault sequences, so a client retry of a corrupted
	// run can succeed. Pin it at the seed-derivation level.
	svc := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 8, Channel: &faultplan.ChannelFault{Corrupt: 0.5}},
	})
	a := &Job{seq: 1, spec: testSpec(t, 100)}
	b := &Job{seq: 2, spec: testSpec(t, 100)}
	_, seedA := svc.jobChannelFaults(a)
	_, seedB := svc.jobChannelFaults(b)
	if seedA == seedB {
		t.Fatalf("jobs with distinct seqs share fault seed %#x", seedA)
	}
}

func TestSpecLevelPlanWinsOverServicePlan(t *testing.T) {
	svc := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 8, Channel: &faultplan.ChannelFault{Corrupt: 1}},
	})
	sp := testSpec(t, 100)
	sp.Run.FaultPlan = &faultplan.Plan{Seed: 1, Channel: &faultplan.ChannelFault{Duplicate: 1}}
	if chf, _ := svc.jobChannelFaults(&Job{seq: 1, spec: sp}); chf != nil {
		t.Fatalf("service plan %+v overrides the spec's own plan", chf)
	}
}
