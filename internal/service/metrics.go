package service

import (
	"time"

	"coemu/internal/channel"
	"coemu/internal/core"
	"coemu/internal/metrics"
)

// Metrics instruments a Service with Prometheus-style metrics: latency
// histograms for the job pipeline (queue wait, engine run, sweep
// points, store I/O) and cumulative engine-protocol counters aggregated
// from every completed run's core.Stats. Construct one with NewMetrics
// and pass it via Options.Metrics; a nil *Metrics disables every
// observation at the cost of one pointer check per site.
//
// The service-wide lifecycle counters (Counters) are deliberately not
// duplicated here: the HTTP layer mirrors them into the same registry
// with a collect hook, so /v1/stats and /metrics always agree.
type Metrics struct {
	jobSeconds        *metrics.Histogram
	queueSeconds      *metrics.Histogram
	sweepPointSeconds *metrics.Histogram
	storeReadSeconds  *metrics.Histogram
	storeWriteSeconds *metrics.Histogram

	engineCommitted    *metrics.Counter
	engineConservative *metrics.Counter
	engineRunAhead     *metrics.Counter
	engineFollowUp     *metrics.Counter
	engineRollForth    *metrics.Counter
	engineBatched      *metrics.Counter
	engineTransitions  *metrics.Counter
	engineRollbacks    *metrics.Counter
	engineSnapshots    *metrics.Counter
	engineChecks       *metrics.Counter
	engineMispredicts  *metrics.Counter
	engineInjected     *metrics.Counter
	engineDeclines     *metrics.CounterVec
	rollbackDepth      *metrics.Histogram
	transitionLength   *metrics.Histogram
	channelAccesses    *metrics.CounterVec
	channelWords       *metrics.CounterVec
}

// latencyBuckets spans sub-millisecond cache hits to multi-second
// engine runs.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// storeBuckets spans the persistent store's file I/O latencies.
var storeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.1, 0.5,
}

// cycleBuckets bins per-transition cycle counts (rollback depths,
// transition lengths), LOB-scaled: powers of two to one beyond the
// default depth.
var cycleBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// NewMetrics registers the service's instruments on reg and returns
// the handle to pass as Options.Metrics.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		jobSeconds: reg.NewHistogram("coemu_job_seconds",
			"Engine-run wall time per executed job.", latencyBuckets),
		queueSeconds: reg.NewHistogram("coemu_job_queue_seconds",
			"Time a job waited in the queue before a worker picked it up.", latencyBuckets),
		sweepPointSeconds: reg.NewHistogram("coemu_sweep_point_seconds",
			"Sweep point latency from submission to settlement.", latencyBuckets),
		storeReadSeconds: reg.NewHistogram("coemu_store_read_seconds",
			"Persistent store read (probe) latency.", storeBuckets),
		storeWriteSeconds: reg.NewHistogram("coemu_store_write_seconds",
			"Persistent store write-through latency.", storeBuckets),

		engineCommitted: reg.NewCounter("coemu_engine_committed_cycles_total",
			"Target cycles committed across completed runs."),
		engineConservative: reg.NewCounter("coemu_engine_conservative_cycles_total",
			"Conservatively synchronized cycles across completed runs."),
		engineRunAhead: reg.NewCounter("coemu_engine_run_ahead_cycles_total",
			"Leader cycles committed optimistically across completed runs."),
		engineFollowUp: reg.NewCounter("coemu_engine_follow_up_cycles_total",
			"Lagger follow-up replay cycles across completed runs."),
		engineRollForth: reg.NewCounter("coemu_engine_roll_forth_cycles_total",
			"Leader cycles re-executed after rollbacks across completed runs."),
		engineBatched: reg.NewCounter("coemu_engine_batched_cycles_total",
			"Domain cycles advanced through the predicted-quiescence fast path."),
		engineTransitions: reg.NewCounter("coemu_engine_transitions_total",
			"Optimistic transitions started across completed runs."),
		engineRollbacks: reg.NewCounter("coemu_engine_rollbacks_total",
			"Leader state restores after mispredictions across completed runs."),
		engineSnapshots: reg.NewCounter("coemu_engine_snapshots_total",
			"Rollback state stores captured across completed runs."),
		engineChecks: reg.NewCounter("coemu_engine_prediction_checks_total",
			"Predictions checked by laggers across completed runs."),
		engineMispredicts: reg.NewCounter("coemu_engine_mispredicts_total",
			"Failed prediction checks (organic plus injected) across completed runs."),
		engineInjected: reg.NewCounter("coemu_engine_injected_mispredicts_total",
			"Mispredictions forced by the accuracy fault injector."),
		engineDeclines: reg.NewCounterVec("coemu_engine_declines_total",
			"Predictor declines across completed runs, by reason.", "reason"),
		rollbackDepth: reg.NewHistogram("coemu_engine_rollback_depth_cycles",
			"Cycles discarded and replayed per rollback.", cycleBuckets),
		transitionLength: reg.NewHistogram("coemu_engine_transition_length_cycles",
			"Target cycles committed per optimistic transition.", cycleBuckets),
		channelAccesses: reg.NewCounterVec("coemu_channel_accesses_total",
			"Inter-domain channel accesses across completed runs, by direction.", "dir"),
		channelWords: reg.NewCounterVec("coemu_channel_words_total",
			"Inter-domain channel payload words across completed runs, by direction.", "dir"),
	}
}

// observeQueueWait records the queue dwell of one dequeued job.
func (m *Metrics) observeQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.queueSeconds.Observe(d.Seconds())
}

// observeJob records one executed job's engine-run wall time.
func (m *Metrics) observeJob(d time.Duration) {
	if m == nil {
		return
	}
	m.jobSeconds.Observe(d.Seconds())
}

// observeSweepPoint records one sweep point's submission-to-settle
// latency.
func (m *Metrics) observeSweepPoint(d time.Duration) {
	if m == nil {
		return
	}
	m.sweepPointSeconds.Observe(d.Seconds())
}

// observeStoreRead records one persistent-store probe's latency.
func (m *Metrics) observeStoreRead(d time.Duration) {
	if m == nil {
		return
	}
	m.storeReadSeconds.Observe(d.Seconds())
}

// observeStoreWrite records one persistent-store write-through's
// latency.
func (m *Metrics) observeStoreWrite(d time.Duration) {
	if m == nil {
		return
	}
	m.storeWriteSeconds.Observe(d.Seconds())
}

// channelDirNames renders channel directions as label values.
var channelDirNames = [2]string{channel.SimToAcc: "sim_to_acc", channel.AccToSim: "acc_to_sim"}

// observeReport folds one completed run's engine report into the
// cumulative protocol counters.
func (m *Metrics) observeReport(rep *core.Report) {
	if m == nil || rep == nil {
		return
	}
	st := rep.Stats
	m.engineCommitted.Add(st.Committed)
	m.engineConservative.Add(st.ConservativeCycles)
	m.engineRunAhead.Add(st.RunAheadCycles)
	m.engineFollowUp.Add(st.FollowUpCycles)
	m.engineRollForth.Add(st.RollForthCycles)
	m.engineBatched.Add(st.BatchedCycles)
	m.engineTransitions.Add(st.Transitions)
	m.engineRollbacks.Add(st.Rollbacks)
	m.engineSnapshots.Add(st.Stores)
	m.engineChecks.Add(st.ChecksTotal)
	m.engineMispredicts.Add(st.Mispredicts)
	m.engineInjected.Add(st.Injected)
	for reason, n := range st.Declines {
		m.engineDeclines.With(string(reason)).Add(n)
	}
	if rep.RollForthLengths != nil {
		rep.RollForthLengths.Each(func(v int, count int64) {
			m.rollbackDepth.ObserveN(float64(v), count)
		})
	}
	if rep.TransitionLengths != nil {
		rep.TransitionLengths.Each(func(v int, count int64) {
			m.transitionLength.ObserveN(float64(v), count)
		})
	}
	for dir, name := range channelDirNames {
		m.channelAccesses.With(name).Add(rep.Channel.Accesses[dir])
		m.channelWords.With(name).Add(rep.Channel.Words[dir])
	}
}
