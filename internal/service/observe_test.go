package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"coemu/internal/faultplan"
	"coemu/internal/metrics"
	"coemu/internal/spec"
)

// monotoneFields lists the Counters fields that may never decrease
// between two snapshots.
func monotoneFields(c Counters) map[string]int64 {
	return map[string]int64{
		"cache_hits":      c.CacheHits,
		"cache_misses":    c.CacheMisses,
		"engine_runs":     c.EngineRuns,
		"sweeps":          c.Sweeps,
		"sweep_points":    c.SweepPoints,
		"store_hits":      c.StoreHits,
		"store_misses":    c.StoreMisses,
		"store_puts":      c.StorePuts,
		"worker_panics":   c.WorkerPanics,
		"job_timeouts":    c.JobTimeouts,
		"faults_injected": c.FaultsInjected,
	}
}

// TestCountersConsistentUnderLoad hammers Counters while a sweep and a
// stream of duplicate submissions run, asserting every monotone field
// only moves forward and the snapshot is internally consistent. Run
// with -race this also pins that the whole snapshot — cache and store
// statistics included — is taken under the service mutex rather than
// assembled from torn reads.
func TestCountersConsistentUnderLoad(t *testing.T) {
	svc := newTestService(t, Options{Workers: 4, QueueDepth: 64})

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	// Load: distinct and duplicate submissions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopc:
				return
			default:
			}
			job, err := svc.Submit(testSpec(t, int64(1000+i%8*250)), false)
			if err != nil {
				continue
			}
			job.Wait(context.Background())
		}
	}()
	// Scrapers: hammer snapshots and check monotonicity.
	snapErr := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := monotoneFields(svc.Counters())
			for i := 0; i < 500; i++ {
				c := svc.Counters()
				cur := monotoneFields(c)
				for k, v := range cur {
					if v < prev[k] {
						select {
						case snapErr <- fmt.Errorf("counter %s went backwards: %d -> %d", k, prev[k], v):
						default:
						}
						return
					}
				}
				// Internal consistency: every engine run was preceded
				// by a cache miss (runs never outnumber misses).
				if c.EngineRuns > c.CacheMisses {
					select {
					case snapErr <- fmt.Errorf("engine_runs %d > cache_misses %d in one snapshot", c.EngineRuns, c.CacheMisses):
					default:
					}
					return
				}
				prev = cur
			}
		}()
	}
	// One short sweep riding along.
	sw, err := svc.StartSweepPoints(context.Background(),
		[]*spec.Spec{testSpec(t, 1100), testSpec(t, 1200), testSpec(t, 1300)}, false)
	if err != nil {
		t.Fatal(err)
	}
	<-sw.Done()
	close(stopc)
	wg.Wait()
	select {
	case err := <-snapErr:
		t.Fatal(err)
	default:
	}
}

// TestMetricsObservations wires a Metrics into a service, runs jobs and
// a sweep, and checks that the exposition carries the expected families
// with non-zero observations.
func TestMetricsObservations(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	svc := newTestService(t, Options{Workers: 2, Metrics: m})

	job, err := svc.Submit(testSpec(t, 4000), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sw, err := svc.StartSweepPoints(context.Background(),
		[]*spec.Spec{testSpec(t, 4000), testSpec(t, 4500)}, false)
	if err != nil {
		t.Fatal(err)
	}
	<-sw.Done()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	fams, err := metrics.ParseExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("exposition does not round-trip: %v\n%s", err, doc)
	}
	byName := map[string]metrics.ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	// count sums a counter family's samples, or reads a histogram
	// family's observation count.
	count := func(name string) float64 {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %s missing from exposition:\n%s", name, doc)
		}
		var total float64
		for _, s := range f.Samples {
			if f.Type == metrics.KindHistogram {
				if s.Name == name+"_count" {
					total += s.Value
				}
				continue
			}
			total += s.Value
		}
		return total
	}
	if count("coemu_engine_committed_cycles_total") < 4000+4500 {
		t.Errorf("committed cycles not aggregated:\n%s", doc)
	}
	for _, name := range []string{
		"coemu_job_seconds", "coemu_job_queue_seconds", "coemu_sweep_point_seconds",
		"coemu_engine_transitions_total", "coemu_channel_words_total",
	} {
		if count(name) <= 0 {
			t.Errorf("family %s has no observations:\n%s", name, doc)
		}
	}
}

func TestJobWatchLifecycle(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	job, err := svc.Submit(testSpec(t, 3000), false)
	if err != nil {
		t.Fatal(err)
	}
	var seen []Status
	for info := range job.Watch() {
		if len(seen) == 0 || seen[len(seen)-1] != info.Status {
			seen = append(seen, info.Status)
		}
	}
	if len(seen) == 0 || seen[len(seen)-1] != StatusDone {
		t.Fatalf("watch statuses %v, want a sequence ending in done", seen)
	}

	// Watching a finished job yields exactly one terminal snapshot and
	// an immediate close.
	var after []Info
	for info := range job.Watch() {
		after = append(after, info)
	}
	if len(after) != 1 || after[0].Status != StatusDone {
		t.Fatalf("finished-job watch = %+v, want one done snapshot", after)
	}
}

func TestJobTraceCapture(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})

	// Untraced jobs expose no trace.
	plain, err := svc.Submit(testSpec(t, 2000), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Trace(); err == nil {
		t.Fatal("untraced job returned a trace")
	}

	// A traced duplicate of a cached spec still runs fresh and records.
	sp := testSpec(t, 2000)
	sp.Run.Trace = true
	sp.Run.TraceRing = 1 << 14
	traced, err := svc.Submit(sp, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traced.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if traced.Info().Cached {
		t.Fatal("traced submission was served from cache; no events could have been recorded")
	}
	rec, err := traced.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("traced job recorded no events")
	}

	// The trace is unavailable while a job is still queued/running.
	if _, err := (&Job{svc: svc, status: StatusRunning}).Trace(); err == nil {
		t.Fatal("running job returned a trace")
	}

	// And the traced run still fed the shared result cache: an untraced
	// duplicate is now a cache hit.
	dup, err := svc.Submit(testSpec(t, 2000), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dup.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !dup.Info().Cached {
		t.Fatal("untraced duplicate of a traced run missed the cache")
	}
}

func TestFaultsInjectedCounter(t *testing.T) {
	svc := newTestService(t, Options{
		Workers: 1,
		Faults:  &faultplan.Plan{Seed: 5, Service: &faultplan.ServiceFault{WorkerPanic: 1}},
	})
	job, err := svc.Submit(testSpec(t, 1500), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("Wait err = %v, want ErrWorkerPanic", err)
	}
	c := svc.Counters()
	if c.FaultsInjected != 1 || c.WorkerPanics != 1 {
		t.Fatalf("faults_injected=%d worker_panics=%d, want 1 and 1", c.FaultsInjected, c.WorkerPanics)
	}
}
