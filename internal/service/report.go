package service

import (
	"coemu/internal/channel"
	"coemu/internal/core"
	"coemu/internal/stats"
	"coemu/internal/vclock"
)

// ReportView is the JSON projection of a core.Report. Its encoding is
// deterministic (fixed struct fields; the decline map has string keys,
// which encoding/json sorts), so equal reports marshal to equal bytes —
// the property the cache-hit bit-identity guarantee rests on. The MSABS
// trace is intentionally excluded: it can dwarf every other field and
// belongs to the VCD/CSV exporters.
type ReportView struct {
	Mode   string `json:"mode"`
	Cycles int64  `json:"cycles"`

	// VirtualNs is the modeled wall-clock total; Perf the headline
	// simulation performance in target cycles per modeled second.
	VirtualNs int64   `json:"virtual_ns"`
	Perf      float64 `json:"perf_cycles_per_sec"`

	// Costs break the virtual time down by Table 2 row.
	Costs map[string]CostView `json:"costs"`

	Stats   StatsView     `json:"stats"`
	Channel channel.Stats `json:"channel"`

	LOBPeakWords      int       `json:"lob_peak_words"`
	TransitionLengths *HistView `json:"transition_lengths,omitempty"`
	RollForthLengths  *HistView `json:"roll_forth_lengths,omitempty"`
}

// CostView is one virtual-time category.
type CostView struct {
	TotalNs    int64   `json:"total_ns"`
	PerCycleNs float64 `json:"per_cycle_ns"`
	Charges    int64   `json:"charges"`
}

// StatsView mirrors core.Stats with JSON-friendly field names.
type StatsView struct {
	Committed          int64            `json:"committed"`
	ConservativeCycles int64            `json:"conservative_cycles"`
	Transitions        int64            `json:"transitions"`
	TransitionsSimLed  int64            `json:"transitions_sim_led"`
	TransitionsAccLed  int64            `json:"transitions_acc_led"`
	RunAheadCycles     int64            `json:"run_ahead_cycles"`
	FollowUpCycles     int64            `json:"follow_up_cycles"`
	RollForthCycles    int64            `json:"roll_forth_cycles"`
	Rollbacks          int64            `json:"rollbacks"`
	Stores             int64            `json:"stores"`
	Restores           int64            `json:"restores"`
	ChecksTotal        int64            `json:"checks_total"`
	Mispredicts        int64            `json:"mispredicts"`
	Injected           int64            `json:"injected"`
	Declines           map[string]int64 `json:"declines,omitempty"`
}

// HistView summarizes an integer histogram.
type HistView struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	P50  int     `json:"p50"`
	P95  int     `json:"p95"`
	Max  int     `json:"max"`
}

// NewReportView projects a report for serialization.
func NewReportView(rep *core.Report) *ReportView {
	v := &ReportView{
		Mode:         rep.Mode.String(),
		Cycles:       rep.Cycles,
		VirtualNs:    rep.Ledger.Total().Nanoseconds(),
		Perf:         rep.Perf(),
		Costs:        make(map[string]CostView, 5),
		Channel:      rep.Channel,
		LOBPeakWords: rep.LOBPeakWords,
	}
	for _, c := range vclock.Categories() {
		total := rep.Ledger.Get(c).Nanoseconds()
		v.Costs[c.String()] = CostView{
			TotalNs:    total,
			PerCycleNs: float64(total) / float64(rep.Cycles),
			Charges:    rep.Ledger.Count(c),
		}
	}
	s := rep.Stats
	v.Stats = StatsView{
		Committed:          s.Committed,
		ConservativeCycles: s.ConservativeCycles,
		Transitions:        s.Transitions,
		TransitionsSimLed:  s.TransitionsByLead[core.SimDomain],
		TransitionsAccLed:  s.TransitionsByLead[core.AccDomain],
		RunAheadCycles:     s.RunAheadCycles,
		FollowUpCycles:     s.FollowUpCycles,
		RollForthCycles:    s.RollForthCycles,
		Rollbacks:          s.Rollbacks,
		Stores:             s.Stores,
		Restores:           s.Restores,
		ChecksTotal:        s.ChecksTotal,
		Mispredicts:        s.Mispredicts,
		Injected:           s.Injected,
	}
	if len(s.Declines) > 0 {
		v.Stats.Declines = make(map[string]int64, len(s.Declines))
		for r, n := range s.Declines {
			v.Stats.Declines[string(r)] = n
		}
	}
	v.TransitionLengths = histView(rep.TransitionLengths)
	v.RollForthLengths = histView(rep.RollForthLengths)
	return v
}

func histView(h *stats.Hist) *HistView {
	if h == nil || h.N() == 0 {
		return nil
	}
	return &HistView{
		N:    h.N(),
		Mean: h.Mean(),
		P50:  h.Quantile(0.5),
		P95:  h.Quantile(0.95),
		Max:  h.Quantile(1),
	}
}
