package service

import (
	"encoding/json"
	"fmt"

	"coemu/internal/core"
)

// Result is a completed run's outcome. JSON always holds the canonical
// compact encoding of the run's ReportView — the bit-identity unit the
// cache, the on-disk store and the HTTP layer all agree on. Report is
// the in-memory report the view was projected from; it is nil when the
// result was served from the persistent store by a process that never
// ran the engine for it.
type Result struct {
	Report *core.Report
	JSON   []byte
}

// NewResult projects a freshly produced report into a Result.
func NewResult(rep *core.Report) (*Result, error) {
	data, err := EncodeReport(rep)
	if err != nil {
		return nil, err
	}
	return &Result{Report: rep, JSON: data}, nil
}

// View decodes the canonical JSON back into a ReportView. Decode →
// re-encode is byte-stable (fixed struct fields, sorted map keys,
// round-tripping float formatting), so a view obtained here serializes
// exactly like the original run's response.
func (r *Result) View() (*ReportView, error) {
	var v ReportView
	if err := json.Unmarshal(r.JSON, &v); err != nil {
		return nil, fmt.Errorf("service: decode stored report: %w", err)
	}
	return &v, nil
}

// EncodeReport marshals a report's canonical view bytes.
func EncodeReport(rep *core.Report) ([]byte, error) {
	data, err := json.Marshal(NewReportView(rep))
	if err != nil {
		return nil, fmt.Errorf("service: encode report: %w", err)
	}
	return data, nil
}
