// Package service turns the co-emulation engine into a job service: a
// bounded worker pool executes declarative run specs (internal/spec),
// an LRU cache keyed by the canonical spec hash serves duplicate
// submissions bit-identical reports without re-running, and every job
// carries a context so client aborts and shutdown cancel in-flight
// engine runs at domain-cycle granularity (core.Engine.RunContext).
//
// Below the in-memory cache sits an optional persistent result store
// (internal/store): completed results are written through to disk, and
// a submission that misses the memory cache is answered from the store
// — so a restarted daemon, or a sibling process sharing the directory,
// reuses every previously computed point with zero engine runs.
// Parameter sweeps (spec.SweepSpec) fan out over the same pool via
// StartSweep, one job per expanded point, deduplicated like any other
// submission.
//
// Concurrency model: engine runs are independent, so the pool runs up
// to Workers of them in parallel (the cmd/sweep -j pattern); all job
// bookkeeping is guarded by one service mutex. An engine run may itself
// be parallel (run.workers > 1); the service clamps each engine to its
// fair share of GOMAXPROCS so a full pool never oversubscribes the
// host. The clamp is invisible in results: worker width never changes
// a report.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"coemu/internal/core"
	"coemu/internal/faultplan"
	"coemu/internal/rng"
	"coemu/internal/spec"
	"coemu/internal/store"
	"coemu/internal/trace"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Service errors.
var (
	// ErrQueueFull is returned by Submit when the pending-job queue is
	// at capacity (backpressure; retry later).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("service: shut down")
	// ErrUnknownJob is returned for job IDs the service does not know.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrWorkerPanic marks a job whose engine run panicked (organically
	// or by fault injection). The worker recovers and keeps serving;
	// only the job fails.
	ErrWorkerPanic = errors.New("service: worker panic")
	// ErrJobTimeout marks a job that exceeded its spec's run.timeout
	// deadline. Distinct from a client cancellation: the job fails
	// rather than reporting canceled.
	ErrJobTimeout = errors.New("service: job deadline exceeded")
)

// Options configures a Service.
type Options struct {
	// Workers is the worker-pool width. Default: runtime.NumCPU().
	Workers int
	// CacheSize is the LRU result-cache capacity in reports. Default
	// 128; negative disables caching.
	CacheSize int
	// QueueDepth bounds the pending-job queue. Default 256.
	QueueDepth int
	// RetainJobs bounds how many completed jobs stay queryable by ID
	// before the oldest are forgotten. Default 1024.
	RetainJobs int
	// Store, when non-nil, is the persistent result store used as a
	// write-through layer under the in-memory cache.
	Store *store.Store
	// Logf, when non-nil, receives operational warnings (e.g. a failed
	// store write-through). log.Printf fits.
	Logf func(format string, args ...any)
	// Faults, when non-nil, injects chaos-testing faults per its
	// probabilities: the service section drives worker panics and slow
	// runs, and the channel section rides into every engine run whose
	// spec does not carry its own plan. The store section is consumed
	// by store.Open, not here. Nil injects nothing.
	Faults *faultplan.Plan
	// Metrics, when non-nil, receives latency and engine-protocol
	// observations from every job (see NewMetrics). Nil disables
	// instrumentation.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 1024
	}
	return o
}

// Job is one submitted run. All state is guarded by the owning
// service's mutex; read it through Info, Wait and Result.
type Job struct {
	svc  *Service
	id   string
	seq  int64
	hash string
	spec *spec.Spec

	status    Status
	result    *Result
	err       error
	cached    bool // completed without an engine run (cache or store)
	fromStore bool // the cached result came from the persistent store
	finished  bool
	done      chan struct{}

	ctx    context.Context
	cancel context.CancelFunc

	// waiters counts live Wait calls; ephemeral jobs (synchronous HTTP
	// runs) cancel when the last waiter abandons them. A non-ephemeral
	// (fire-and-forget) submission pins the job regardless of waiters.
	// pendingRefs bridges the gap between an ephemeral Submit and that
	// submitter's Wait: the Submit takes a reference under the service
	// lock, and the first Wait per pending reference inherits it, so a
	// concurrent abort by an earlier waiter cannot cancel a job another
	// client was just handed. An ephemeral Submit must therefore be
	// followed by Wait.
	waiters     int
	pendingRefs int
	ephemeral   bool

	// watchers are live Watch channels; each receives a snapshot on
	// every status change and is closed at the terminal one.
	watchers []chan Info

	// tracer holds the run's protocol event recorder when the spec set
	// run.trace. Written by the executing worker before the terminal
	// state publishes, read only after Done closes — the service mutex
	// in finishLocked orders the two.
	tracer *trace.Recorder

	submitted time.Time
	started   time.Time
	ended     time.Time
}

// Info is a point-in-time snapshot of a job, shaped for JSON.
type Info struct {
	ID        string     `json:"id"`
	Name      string     `json:"name,omitempty"`
	Hash      string     `json:"hash"`
	Status    Status     `json:"status"`
	Cached    bool       `json:"cached"`
	FromStore bool       `json:"from_store,omitempty"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Ended     *time.Time `json:"ended,omitempty"`
}

// Service is the co-emulation job service.
type Service struct {
	opts  Options
	ctx   context.Context
	stop  context.CancelFunc
	wg    sync.WaitGroup
	queue chan *Job
	cache *resultCache
	disk  *store.Store // optional persistent layer (nil = disabled)

	// space is a capacity-1 wakeup channel: workers signal it after
	// every dequeue so sweep submission can wait for queue room instead
	// of spinning (see SweepJob.submitPoint).
	space chan struct{}

	// frngMu guards frng, the seeded stream behind every service-layer
	// fault decision (worker panics, slow runs); nil without a plan.
	frngMu sync.Mutex
	frng   *rng.Source

	// engineWorkers caps each engine's Config.Workers so that, with all
	// service workers busy, the process does not oversubscribe the host:
	// max(1, GOMAXPROCS / Workers). A spec asking for more parallelism
	// than its fair share is clamped, never rejected — run.workers is a
	// host-side knob, so the clamp cannot change any reported result.
	engineWorkers int

	mu       sync.Mutex
	closed   bool
	seq      int64
	sweepSeq int64
	jobs     map[string]*Job
	inflight map[string]*Job // canonical hash -> queued/running job
	retain   []string        // job IDs in submission order, for pruning

	// Cumulative counters surfaced by Counters.
	engineRuns     int64
	sweeps         int64
	sweepPoints    int64
	workerPanics   int64
	jobTimeouts    int64
	faultsInjected int64
}

// New starts a service with the given options.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Service{
		opts:     opts,
		ctx:      ctx,
		stop:     stop,
		queue:    make(chan *Job, opts.QueueDepth),
		space:    make(chan struct{}, 1),
		cache:    newResultCache(opts.CacheSize),
		disk:     opts.Store,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	s.engineWorkers = runtime.GOMAXPROCS(0) / opts.Workers
	if s.engineWorkers < 1 {
		s.engineWorkers = 1
	}
	if opts.Faults != nil {
		s.frng = rng.New(faultplan.Mix(opts.Faults.Seed, 0x5e54))
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				// Queue room opened up: wake one submitter waiting out
				// backpressure (non-blocking; the flag is level-triggered).
				select {
				case s.space <- struct{}{}:
				default:
				}
				s.runJob(job)
			}
		}()
	}
	return s
}

// QueueDepth reports the pending-job queue's occupancy and capacity.
func (s *Service) QueueDepth() (pending, capacity int) {
	return len(s.queue), cap(s.queue)
}

// Saturated reports whether the pending-job queue is full — the state
// in which Submit returns ErrQueueFull and an HTTP front end should
// shed load instead of stalling clients.
func (s *Service) Saturated() bool {
	return len(s.queue) >= cap(s.queue)
}

// Close shuts the service down: no new submissions, every queued and
// running job is canceled, and Close returns once the workers exit.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Cancel in-flight engine runs, then let the workers drain the
	// queue (each queued job is already canceled, so draining is fast).
	s.stop()
	close(s.queue)
	s.wg.Wait()
}

// Submit enqueues a run for the given spec, deduplicating against the
// result cache (completed identical runs) and in-flight jobs (running
// identical runs). ephemeral marks a submission that should not outlive
// its waiters — a synchronous HTTP request whose client may abort.
//
// The returned job may already be complete (cache hit); callers should
// Wait regardless.
func (s *Service) Submit(sp *spec.Spec, ephemeral bool) (*Job, error) {
	hash, err := sp.CanonicalHash()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if job, err, handled := s.submitFastLocked(sp, hash, ephemeral); handled {
		s.mu.Unlock()
		return job, err
	}
	probeDisk := s.disk != nil && !sp.Run.Trace
	s.mu.Unlock()

	// Probe the persistent store outside the service lock: a store read
	// is file I/O and must not stall job bookkeeping. The memory layers
	// are re-checked under the lock afterwards, so whatever landed in
	// the meantime (a finished duplicate, an in-flight submission)
	// still wins.
	var stored *Result
	if probeDisk {
		rstart := time.Now()
		if data, ok := s.disk.Get(hash); ok {
			stored = &Result{JSON: data}
		}
		s.opts.Metrics.observeStoreRead(time.Since(rstart))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if job, err, handled := s.submitFastLocked(sp, hash, ephemeral); handled {
		return job, err
	}
	if stored != nil {
		// Promote the persisted result into the memory cache so the
		// next duplicate skips the disk.
		s.cache.Put(hash, stored)
		return s.newCachedJobLocked(sp, hash, stored, true), nil
	}

	job := s.newJobLocked(sp, hash)
	job.ephemeral = ephemeral
	if ephemeral {
		job.pendingRefs++
	}
	select {
	case s.queue <- job:
	default:
		job.cancel()
		delete(s.jobs, job.id)
		s.retain = s.retain[:len(s.retain)-1] // newJobLocked appended it last
		return nil, ErrQueueFull
	}
	s.inflight[hash] = job
	return job, nil
}

// submitFastLocked resolves a submission against the in-memory layers
// — shutdown state, the result cache, and in-flight duplicates — and
// reports whether it was handled. Caller holds s.mu.
func (s *Service) submitFastLocked(sp *spec.Spec, hash string, ephemeral bool) (*Job, error, bool) {
	if s.closed {
		return nil, ErrClosed, true
	}
	if sp.Run.Trace {
		// A traced submission wants the protocol event stream, which
		// only a real engine run produces: skip every dedup layer and
		// run fresh. run.trace is hash-excluded, so the result still
		// lands in the cache for untraced duplicates.
		return nil, nil, false
	}
	if res, ok := s.cache.Get(hash); ok {
		return s.newCachedJobLocked(sp, hash, res, false), nil, true
	}
	if job, ok := s.inflight[hash]; ok {
		if ephemeral {
			// Hold a reference for this submitter until its Wait runs,
			// so an abort by the original waiter in the interim cannot
			// cancel a job we just handed out.
			job.pendingRefs++
		} else {
			// A fire-and-forget submission pins the job even if the
			// original (ephemeral) submitter aborts.
			job.ephemeral = false
		}
		return job, nil, true
	}
	return nil, nil, false
}

// newCachedJobLocked registers a job born terminal: its result came
// from the memory cache or the persistent store. Caller holds s.mu.
func (s *Service) newCachedJobLocked(sp *spec.Spec, hash string, res *Result, fromStore bool) *Job {
	job := s.newJobLocked(sp, hash)
	job.status = StatusDone
	job.result = res
	job.cached = true
	job.fromStore = fromStore
	job.finished = true
	job.started = job.submitted
	job.ended = job.submitted
	job.cancel() // release the context immediately; nothing runs
	close(job.done)
	return job
}

// newJobLocked allocates and registers a job. Caller holds s.mu.
func (s *Service) newJobLocked(sp *spec.Spec, hash string) *Job {
	s.seq++
	job := &Job{
		svc:       s,
		id:        fmt.Sprintf("job-%06d", s.seq),
		seq:       s.seq,
		hash:      hash,
		spec:      sp,
		status:    StatusQueued,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	job.ctx, job.cancel = context.WithCancel(s.ctx)
	s.jobs[job.id] = job
	s.retain = append(s.retain, job.id)
	// Forget the oldest completed jobs past the retention bound. An
	// unfinished job at the front stops pruning — active jobs are never
	// dropped.
	for len(s.jobs) > s.opts.RetainJobs && len(s.retain) > 0 {
		old, ok := s.jobs[s.retain[0]]
		if ok && !old.finished {
			break
		}
		if ok {
			delete(s.jobs, old.id)
		}
		s.retain = s.retain[1:]
	}
	return job
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return job, nil
}

// Jobs snapshots every known job, newest first.
func (s *Service) Jobs() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	type seqInfo struct {
		seq  int64
		info Info
	}
	all := make([]seqInfo, 0, len(s.jobs))
	for _, job := range s.jobs {
		all = append(all, seqInfo{job.seq, job.infoLocked()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	out := make([]Info, len(all))
	for i, si := range all {
		out[i] = si.info
	}
	return out
}

// JobCount returns how many jobs are currently known (retained).
func (s *Service) JobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Cancel cancels a job by ID. Completed jobs are unaffected.
func (s *Service) Cancel(id string) error {
	job, err := s.Job(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if job.status == StatusQueued {
		// The worker will observe the canceled context when it dequeues
		// the job, but flip the visible state now.
		s.finishLocked(job, StatusCanceled, nil, context.Canceled)
	}
	s.mu.Unlock()
	job.cancel()
	return nil
}

// CacheStats reports result-cache hits, misses and current size.
func (s *Service) CacheStats() (hits, misses int64, size int) {
	return s.cache.Stats()
}

// Lookup resolves a canonical spec hash against the completed-result
// layers only — the in-memory cache, then the persistent store — and
// never schedules work: a miss simply reports false. It backs the
// daemon's lightweight GET /v1/results/{hash} endpoint, which fleet
// clients probe before re-submitting a point so a store-held result is
// spliced into the sweep instead of re-queued. A store hit is promoted
// into the memory cache, mirroring Submit.
func (s *Service) Lookup(hash string) (*Result, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	if res, ok := s.cache.Get(hash); ok {
		s.mu.Unlock()
		return res, true
	}
	disk := s.disk
	s.mu.Unlock()
	if disk == nil {
		return nil, false
	}
	rstart := time.Now()
	data, ok := disk.Get(hash)
	s.opts.Metrics.observeStoreRead(time.Since(rstart))
	if !ok {
		return nil, false
	}
	res := &Result{JSON: data}
	s.mu.Lock()
	if !s.closed {
		s.cache.Put(hash, res)
	}
	s.mu.Unlock()
	return res, true
}

// StoreStats snapshots the persistent store's counters; ok is false
// when the service runs without a store.
func (s *Service) StoreStats() (store.Stats, bool) {
	if s.disk == nil {
		return store.Stats{}, false
	}
	return s.disk.Stats(), true
}

// Counters is the service-wide counter snapshot served by /v1/stats:
// memory-cache and persistent-store traffic, real engine executions,
// and sweep volume.
type Counters struct {
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`

	// EngineRuns counts jobs that actually executed the engine (every
	// terminal job is either an engine run, a cache/store hit, or was
	// canceled while still queued).
	EngineRuns int64 `json:"engine_runs"`

	// Sweeps counts StartSweep calls; SweepPoints the points they
	// expanded to.
	Sweeps      int64 `json:"sweeps"`
	SweepPoints int64 `json:"sweep_points"`

	// Store* mirror the persistent store's own counters; all zero when
	// no store is configured.
	StoreHits      int64 `json:"store_hits"`
	StoreMisses    int64 `json:"store_misses"`
	StorePuts      int64 `json:"store_puts"`
	StoreEvictions int64 `json:"store_evictions"`
	StoreEntries   int   `json:"store_entries"`

	// Fault observations: worker panics recovered (organic or
	// injected), jobs failed on their run.timeout deadline, store
	// entries quarantined after failing content verification, and
	// service-layer faults fired by the active plan (slow runs and
	// panics actually injected, before their outcome).
	WorkerPanics     int64 `json:"worker_panics"`
	JobTimeouts      int64 `json:"job_timeouts"`
	StoreQuarantined int64 `json:"store_quarantined"`
	FaultsInjected   int64 `json:"faults_injected"`

	Jobs int `json:"jobs"`
}

// Counters snapshots the service-wide counters. The whole snapshot is
// taken inside one critical section — cache and store statistics
// included — so the fields are mutually consistent: a scrape can never
// observe, say, an engine run without the cache miss that caused it.
// (Lock order s.mu → cache.mu is the submission path's order; the
// store's counters are plain atomics behind its own mutex and never
// call back into the service.)
func (s *Service) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	hits, misses, size := s.cache.Stats()
	c := Counters{
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheSize:      size,
		EngineRuns:     s.engineRuns,
		Sweeps:         s.sweeps,
		SweepPoints:    s.sweepPoints,
		WorkerPanics:   s.workerPanics,
		JobTimeouts:    s.jobTimeouts,
		FaultsInjected: s.faultsInjected,
		Jobs:           len(s.jobs),
	}
	if s.disk != nil {
		st := s.disk.Stats()
		c.StoreHits, c.StoreMisses = st.Hits, st.Misses
		c.StorePuts, c.StoreEvictions = st.Puts, st.Evictions
		c.StoreEntries = st.Entries
		c.StoreQuarantined = st.Quarantined
	}
	return c
}

// runJob executes one job on a worker.
func (s *Service) runJob(job *Job) {
	s.mu.Lock()
	if job.status != StatusQueued {
		s.mu.Unlock()
		return
	}
	if job.ctx.Err() != nil {
		s.finishLocked(job, StatusCanceled, nil, job.ctx.Err())
		s.mu.Unlock()
		return
	}
	job.status = StatusRunning
	job.started = time.Now()
	s.engineRuns++
	s.notifyLocked(job)
	s.mu.Unlock()
	s.opts.Metrics.observeQueueWait(job.started.Sub(job.submitted))

	timeout := job.spec.Run.JobTimeout()
	rep, err := s.executeJob(job, timeout)
	s.opts.Metrics.observeJob(time.Since(job.started))
	if err == nil {
		s.opts.Metrics.observeReport(rep)
	}

	var res *Result
	if err == nil {
		res, err = NewResult(rep)
	}
	if err == nil && s.disk != nil {
		// Write-through before the result becomes observable: once a
		// waiter sees the job done, a restarted daemon can serve it. A
		// store failure only costs persistence, never the run.
		wstart := time.Now()
		if perr := s.disk.Put(job.hash, res.JSON); perr != nil {
			s.logf("store write-through for %s: %v", job.hash, perr)
		}
		s.opts.Metrics.observeStoreWrite(time.Since(wstart))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.cache.Put(job.hash, res)
		s.finishLocked(job, StatusDone, res, nil)
	case errors.Is(err, ErrWorkerPanic):
		s.workerPanics++
		s.finishLocked(job, StatusFailed, nil, err)
	case errors.Is(err, context.DeadlineExceeded) && job.ctx.Err() == nil:
		// The job's own deadline fired while the submission context is
		// still live: a timeout failure, not a client cancellation.
		s.jobTimeouts++
		s.finishLocked(job, StatusFailed, nil, fmt.Errorf("%w (run.timeout %v)", ErrJobTimeout, timeout))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.finishLocked(job, StatusCanceled, nil, err)
	default:
		s.finishLocked(job, StatusFailed, nil, err)
	}
}

// executeJob runs one job's engine under its deadline and the active
// fault plan, converting a panicking run (organic or injected) into an
// ErrWorkerPanic failure so the worker survives.
func (s *Service) executeJob(job *Job, timeout time.Duration) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("%w: %v", ErrWorkerPanic, r)
		}
	}()
	ctx := job.ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if f := s.serviceFaults(); f != nil {
		if f.SlowRun > 0 && f.SlowDelayMS > 0 && s.faultHit(f.SlowRun) {
			s.noteFaultInjected()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(f.SlowDelayMS) * time.Millisecond):
			}
		}
		if f.WorkerPanic > 0 && s.faultHit(f.WorkerPanic) {
			s.noteFaultInjected()
			panic("faultplan: injected worker panic")
		}
	}
	var rec *trace.Recorder
	if job.spec.Run.Trace {
		rec = trace.NewRecorder(job.spec.Run.TraceRing)
		job.tracer = rec
	}
	chf, seed := s.jobChannelFaults(job)
	return runSpec(ctx, job.spec, chf, seed, rec, s.engineWorkers)
}

// noteFaultInjected counts one service-layer fault actually fired by
// the active plan.
func (s *Service) noteFaultInjected() {
	s.mu.Lock()
	s.faultsInjected++
	s.mu.Unlock()
}

// serviceFaults returns the active plan's service section, if any.
func (s *Service) serviceFaults() *faultplan.ServiceFault {
	if s.opts.Faults == nil {
		return nil
	}
	return s.opts.Faults.Service
}

// faultHit draws one seeded fault decision.
func (s *Service) faultHit(p float64) bool {
	s.frngMu.Lock()
	defer s.frngMu.Unlock()
	return s.frng.Bool(p)
}

// jobChannelFaults returns the channel faults to apply to one job's
// engine run: the spec's own plan wins (Compile applies it; returning
// nil here leaves it in place), otherwise the service-level plan's
// channel section with a per-job seed — each retry of a fated point is
// a new job with a new seq, so it draws a fresh fault sequence instead
// of failing forever.
func (s *Service) jobChannelFaults(job *Job) (*faultplan.ChannelFault, uint64) {
	fp := s.opts.Faults
	if fp == nil || fp.Channel == nil {
		return nil, 0
	}
	if jp := job.spec.Run.FaultPlan; jp != nil && jp.Channel != nil {
		return nil, 0
	}
	return fp.Channel, faultplan.Mix(fp.Seed, uint64(job.seq))
}

// logf forwards to the configured warning logger, if any.
func (s *Service) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// finishLocked publishes a job's terminal state exactly once. Caller
// holds s.mu.
func (s *Service) finishLocked(job *Job, st Status, res *Result, err error) {
	if job.finished {
		return
	}
	job.finished = true
	job.status = st
	job.result = res
	job.err = err
	job.ended = time.Now()
	if s.inflight[job.hash] == job {
		delete(s.inflight, job.hash)
	}
	s.notifyLocked(job)
	for _, ch := range job.watchers {
		close(ch)
	}
	job.watchers = nil
	// Release the job's context registration in s.ctx; leaving it would
	// leak one context child per job for the service's lifetime.
	job.cancel()
	close(job.done)
}

// notifyLocked delivers the job's current snapshot to every watcher.
// Sends are non-blocking: each watcher channel is buffered for the
// full queued→running→terminal sequence, so a drop only happens to a
// consumer that stopped reading — and the close still tells it the job
// ended. Caller holds s.mu.
func (s *Service) notifyLocked(job *Job) {
	if len(job.watchers) == 0 {
		return
	}
	info := job.infoLocked()
	for _, ch := range job.watchers {
		select {
		case ch <- info:
		default:
		}
	}
}

// runSpec compiles and executes a spec under ctx. chf, when non-nil,
// is a service-level channel fault plan applied to the engine (a
// spec-level plan was already compiled in and is never overridden —
// jobChannelFaults returns nil for those specs). rec, when non-nil,
// attaches the protocol event tracer. maxWorkers clamps the engine's
// run.workers request to the service's per-job fair share.
func runSpec(ctx context.Context, sp *spec.Spec, chf *faultplan.ChannelFault, seed uint64, rec *trace.Recorder, maxWorkers int) (*core.Report, error) {
	d, cfg, err := sp.Compile()
	if err != nil {
		return nil, err
	}
	if maxWorkers >= 1 && cfg.Workers > maxWorkers {
		cfg.Workers = maxWorkers
	}
	if chf != nil && cfg.ChannelFaults == nil {
		cfg.ChannelFaults = chf
		cfg.ChannelFaultSeed = seed
	}
	cfg.Tracer = rec
	e, err := core.NewEngine(d, cfg)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, sp.Run.Cycles)
}

// ID returns the job's service-unique identifier.
func (j *Job) ID() string { return j.id }

// Hash returns the canonical spec hash the job runs under.
func (j *Job) Hash() string { return j.hash }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info snapshots the job state.
func (j *Job) Info() Info {
	j.svc.mu.Lock()
	defer j.svc.mu.Unlock()
	return j.infoLocked()
}

func (j *Job) infoLocked() Info {
	info := Info{
		ID:        j.id,
		Name:      j.spec.Name,
		Hash:      j.hash,
		Status:    j.status,
		Cached:    j.cached,
		FromStore: j.fromStore,
		Submitted: j.submitted,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.ended.IsZero() {
		t := j.ended
		info.Ended = &t
	}
	return info
}

// Watch returns a channel delivering a status snapshot for every
// lifecycle change — the current state immediately, then one per
// transition — closed once the job is terminal. The channel is
// buffered for the full lifecycle sequence; a consumer that stops
// reading misses intermediate snapshots but still observes the close.
func (j *Job) Watch() <-chan Info {
	j.svc.mu.Lock()
	defer j.svc.mu.Unlock()
	// Capacity 4 covers the longest sequence (initial snapshot, queued
	// → running, running → terminal) with room to spare.
	ch := make(chan Info, 4)
	ch <- j.infoLocked()
	if j.finished {
		close(ch)
		return ch
	}
	j.watchers = append(j.watchers, ch)
	return ch
}

// Trace returns the job's recorded protocol events. It is only
// available after the job finished, and only for jobs whose spec set
// run.trace that actually executed an engine run — a submission
// answered from the cache or store replays a stored result and records
// nothing.
func (j *Job) Trace() (*trace.Recorder, error) {
	j.svc.mu.Lock()
	defer j.svc.mu.Unlock()
	if !j.finished {
		return nil, fmt.Errorf("service: job %s still %s", j.id, j.status)
	}
	if j.tracer == nil {
		return nil, fmt.Errorf("service: job %s has no trace (submit with run.trace to record one)", j.id)
	}
	return j.tracer, nil
}

// Result returns the job's terminal outcome; call only after Done is
// closed (Wait does this for you).
func (j *Job) Result() (*Result, error) {
	j.svc.mu.Lock()
	defer j.svc.mu.Unlock()
	if !j.finished {
		return nil, fmt.Errorf("service: job %s still %s", j.id, j.status)
	}
	return j.result, j.err
}

// Wait blocks until the job completes or ctx is done. If the waiting
// client abandons an ephemeral job and no other waiter remains, the job
// is canceled — the engine run stops within one domain cycle.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	j.svc.mu.Lock()
	j.waiters++
	if j.pendingRefs > 0 {
		// Inherit the reference the ephemeral Submit took for us.
		j.pendingRefs--
	}
	j.svc.mu.Unlock()
	defer j.release()

	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release drops one waiter reference, canceling an abandoned ephemeral
// job.
func (j *Job) release() {
	j.svc.mu.Lock()
	j.waiters--
	abandon := j.ephemeral && j.waiters == 0 && j.pendingRefs == 0 && !j.finished
	j.svc.mu.Unlock()
	if abandon {
		j.cancel()
	}
}
