package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"coemu/internal/spec"
)

// testSpec builds the canonical ALS stream spec with a distinguishing
// cycle budget (distinct budgets hash to distinct runs).
func testSpec(t *testing.T, cycles int64) *spec.Spec {
	t.Helper()
	src := fmt.Sprintf(`{
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": %d}
	}`, cycles)
	s, err := spec.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

func TestSubmitAndWait(t *testing.T) {
	svc := newTestService(t, Options{Workers: 2})
	job, err := svc.Submit(testSpec(t, 2000), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.Cycles != 2000 {
		t.Fatalf("result %+v, want a 2000-cycle in-memory report", res)
	}
	info := job.Info()
	if info.Status != StatusDone || info.Cached {
		t.Fatalf("info %+v, want done/uncached", info)
	}
}

func TestDuplicateServedFromCacheBitIdentical(t *testing.T) {
	svc := newTestService(t, Options{Workers: 2})
	first, err := svc.Submit(testSpec(t, 3000), false)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := first.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	second, err := svc.Submit(testSpec(t, 3000), false)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := second.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Info().Cached {
		t.Fatal("duplicate spec not served from cache")
	}
	if res1 != res2 {
		t.Fatal("cache hit returned a different result object")
	}
	if string(res1.JSON) != string(res2.JSON) {
		t.Fatal("cache hit serialized differently from the original run")
	}
	b1, err := json.Marshal(NewReportView(res1.Report))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(res1.JSON) {
		t.Fatal("canonical result bytes disagree with a fresh projection")
	}
	if hits, _, _ := svc.CacheStats(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

func TestConcurrentDistinctAndDuplicateSubmissions(t *testing.T) {
	svc := newTestService(t, Options{Workers: 4})
	// 4 distinct specs, each submitted 4 times concurrently: every
	// duplicate must coalesce onto one run (or its cached result) and
	// every report must match its spec's cycle budget.
	const distinct, dups = 4, 4
	var wg sync.WaitGroup
	errs := make(chan error, distinct*dups)
	for d := 0; d < distinct; d++ {
		cycles := int64(1000 + 500*d)
		for k := 0; k < dups; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				job, err := svc.Submit(testSpec(t, cycles), false)
				if err != nil {
					errs <- err
					return
				}
				res, err := job.Wait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if res.Report.Cycles != cycles {
					errs <- fmt.Errorf("got %d cycles, want %d", res.Report.Cycles, cycles)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every duplicate coalesced onto one run per distinct spec: the
	// cache holds exactly `distinct` entries, and a fresh submission of
	// each spec is now a pure hit.
	if _, _, size := svc.CacheStats(); size != distinct {
		t.Fatalf("cache holds %d entries, want %d", size, distinct)
	}
	for d := 0; d < distinct; d++ {
		job, err := svc.Submit(testSpec(t, int64(1000+500*d)), false)
		if err != nil {
			t.Fatal(err)
		}
		if !job.Info().Cached {
			t.Fatalf("re-submission of spec %d missed the cache", d)
		}
	}
}

func TestClientAbortCancelsSoleWaiterJob(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	// A budget big enough that only cancellation finishes it quickly.
	big := testSpec(t, int64(1)<<40)
	job, err := svc.Submit(big, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel() // the client aborts
	}()
	if _, err := job.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait returned %v, want context.Canceled", err)
	}
	// The abandoned ephemeral job must reach a terminal canceled state
	// promptly (the engine polls per domain cycle).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if info := job.Info(); info.Status == StatusCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s long after abort", job.Info().Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSecondWaiterPinsEphemeralJob(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	sp := testSpec(t, 200000)
	job, err := svc.Submit(sp, true)
	if err != nil {
		t.Fatal(err)
	}
	// A duplicate non-ephemeral submission coalesces onto the same job
	// and pins it.
	job2, err := svc.Submit(testSpec(t, 200000), false)
	if err != nil {
		t.Fatal(err)
	}
	if job2 != job {
		t.Fatal("duplicate in-flight submission created a second job")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted wait returned %v", err)
	}
	// The job survives the abort because of the pinned submission.
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatalf("pinned job failed: %v", err)
	}
	if res.Report.Cycles != 200000 {
		t.Fatalf("ran %d cycles", res.Report.Cycles)
	}
}

func TestEphemeralDuplicateSurvivesFirstWaiterAbort(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	sp := testSpec(t, 300000)
	j1, err := svc.Submit(sp, true)
	if err != nil {
		t.Fatal(err)
	}
	// A second ephemeral client submits the same spec before the first
	// one's Wait/abort resolves: the submit itself must hold the job.
	j2, err := svc.Submit(testSpec(t, 300000), true)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j1 {
		t.Fatal("duplicate ephemeral submission created a second job")
	}
	// The first client aborts before the second client ever waits.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := j1.Wait(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted wait returned %v", err)
	}
	if info := j1.Info(); info.Status == StatusCanceled {
		t.Fatal("job canceled while a second submitter still held it")
	}
	res, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatalf("second submitter's run failed: %v", err)
	}
	if res.Report.Cycles != 300000 {
		t.Fatalf("ran %d cycles", res.Report.Cycles)
	}
}

func TestCancelByID(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	// Occupy the single worker so the second job stays queued.
	blocker, err := svc.Submit(testSpec(t, int64(1)<<40), false)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(testSpec(t, int64(2)<<40), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if info := queued.Info(); info.Status != StatusCanceled {
		t.Fatalf("queued job %s after cancel, want canceled", info.Status)
	}
	if err := svc.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := blocker.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("running job wait returned %v, want context.Canceled", err)
	}
	if err := svc.Cancel("job-does-not-exist"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job cancel returned %v", err)
	}
}

func TestCloseCancelsInFlight(t *testing.T) {
	svc := New(Options{Workers: 2})
	a, err := svc.Submit(testSpec(t, int64(1)<<40), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Submit(testSpec(t, int64(2)<<40), false)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	svc.Close()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("close took %v", elapsed)
	}
	for _, job := range []*Job{a, b} {
		if info := job.Info(); info.Status != StatusCanceled {
			t.Fatalf("job %s after close, want canceled", info.Status)
		}
	}
	if _, err := svc.Submit(testSpec(t, 100), false); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close returned %v", err)
	}
}

func TestInvalidSpecRejectedAtSubmit(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	bad := testSpec(t, 100)
	bad.Run.Mode = "bogus"
	if _, err := svc.Submit(bad, false); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestQueueBackpressure(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1, QueueDepth: 1})
	if _, err := svc.Submit(testSpec(t, int64(1)<<40), false); err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot, then overflow it. Distinct cycle
	// budgets keep the specs from coalescing.
	var sawFull bool
	for i := int64(0); i < 10; i++ {
		_, err := svc.Submit(testSpec(t, (3+i)<<40), false)
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("queue never reported backpressure")
	}
}

// TestEngineWorkersFairShare pins the oversubscription guard: each
// engine's run.workers is clamped to GOMAXPROCS divided by the service
// pool width, never below 1.
func TestEngineWorkersFairShare(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	for _, poolWidth := range []int{1, 2, maxprocs, 4 * maxprocs} {
		s := New(Options{Workers: poolWidth, CacheSize: -1})
		want := maxprocs / poolWidth
		if want < 1 {
			want = 1
		}
		if s.engineWorkers != want {
			t.Errorf("pool width %d: engineWorkers = %d, want %d", poolWidth, s.engineWorkers, want)
		}
		s.Close()
	}
}
