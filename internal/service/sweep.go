package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"coemu/internal/spec"
)

// PointResult is one expanded sweep point's outcome, delivered in
// point order on SweepJob.Results.
type PointResult struct {
	// Index is the point's position in the expanded grid.
	Index int
	// Name is the expanded point's spec name ("base[run.accuracy=0.9]").
	Name string
	// Hash is the point's canonical spec hash ("" if submission failed
	// before hashing).
	Hash string
	// Result is the completed run's result; nil when Err is set.
	Result *Result
	// Err is the point's submission, run or cancellation error.
	Err error
	// Cached marks a point answered without an engine run; FromStore
	// narrows that to the persistent store.
	Cached    bool
	FromStore bool
}

// SweepJob is one submitted sweep: every expanded point fanned out
// over the service's worker pool as an ordinary (deduplicated,
// cancelable) job. Results delivers per-point outcomes in point order
// as they settle; Progress reports aggregate completion.
type SweepJob struct {
	id      string
	total   int
	results chan PointResult

	svc  *Service
	done chan struct{} // closed when every point has settled

	// progress is guarded by svc.mu.
	completed int
	errors    int
}

// StartSweep expands a sweep document and fans the points out over the
// worker pool. Points are submitted eagerly (so the pool saturates)
// and their results are delivered in point order on Results. ctx
// governs the whole sweep: canceling it abandons every point the way
// an aborting client abandons a single ephemeral run — points no other
// client shares are canceled at domain-cycle granularity.
//
// Duplicate points — within the sweep or against other traffic —
// coalesce exactly like duplicate Submit calls: one engine run per
// distinct canonical hash, the rest served from the cache or store.
func (s *Service) StartSweep(ctx context.Context, ss *spec.SweepSpec, ephemeral bool) (*SweepJob, error) {
	points, err := ss.Expand()
	if err != nil {
		return nil, err
	}
	return s.StartSweepPoints(ctx, points, ephemeral)
}

// StartSweepPoints runs an already-expanded point list as a sweep; see
// StartSweep.
func (s *Service) StartSweepPoints(ctx context.Context, points []*spec.Spec, ephemeral bool) (*SweepJob, error) {
	if len(points) == 0 {
		return nil, errors.New("service: sweep has no points")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.sweepSeq++
	s.sweeps++
	s.sweepPoints += int64(len(points))
	sw := &SweepJob{
		id:      fmt.Sprintf("sweep-%04d", s.sweepSeq),
		total:   len(points),
		results: make(chan PointResult, len(points)),
		svc:     s,
		done:    make(chan struct{}),
	}
	s.mu.Unlock()

	go sw.run(ctx, points, ephemeral)
	return sw, nil
}

// ID returns the sweep's service-unique identifier.
func (sw *SweepJob) ID() string { return sw.id }

// Total returns the number of expanded points.
func (sw *SweepJob) Total() int { return sw.total }

// Results delivers one PointResult per point, in point order, as they
// settle. The channel is closed after the last point.
func (sw *SweepJob) Results() <-chan PointResult { return sw.results }

// Done is closed once every point has settled.
func (sw *SweepJob) Done() <-chan struct{} { return sw.done }

// Progress reports how many points have settled, how many of those
// failed, and the total.
func (sw *SweepJob) Progress() (completed, failed, total int) {
	sw.svc.mu.Lock()
	defer sw.svc.mu.Unlock()
	return sw.completed, sw.errors, sw.total
}

// run submits every point, then waits them out in order. Submission is
// eager so up to Workers points run concurrently; waiting in order
// keeps Results deterministic. On ctx cancellation the remaining
// points are still waited (each Wait returns immediately) so every
// ephemeral reference is released and unshared runs cancel.
func (sw *SweepJob) run(ctx context.Context, points []*spec.Spec, ephemeral bool) {
	defer close(sw.done)
	defer close(sw.results)

	jobs := make([]*Job, len(points))
	errs := make([]error, len(points))
	submitted := make([]time.Time, len(points))
	for i, sp := range points {
		submitted[i] = time.Now()
		jobs[i], errs[i] = sw.submitPoint(ctx, sp, ephemeral)
	}

	for i := range points {
		pr := PointResult{Index: i, Name: points[i].Name, Err: errs[i]}
		if job := jobs[i]; job != nil {
			pr.Hash = job.Hash()
			pr.Result, pr.Err = job.Wait(ctx)
			info := job.Info()
			pr.Cached, pr.FromStore = info.Cached, info.FromStore
			sw.svc.opts.Metrics.observeSweepPoint(time.Since(submitted[i]))
		}
		sw.svc.mu.Lock()
		sw.completed++
		if pr.Err != nil {
			sw.errors++
		}
		sw.svc.mu.Unlock()
		sw.results <- pr // buffered to Total; never blocks
	}
}

// submitPoint submits one point, riding out queue backpressure until
// ctx is canceled. Instead of polling on a timer it parks on the
// service's wakeup channel, which a worker signals on every dequeue —
// a full queue costs one channel receive per freed slot, not a spin.
// Several waiting sweeps may race for one slot; the losers miss the
// signal, fail the next Submit, and park again, so progress is
// guaranteed without a thundering herd.
func (sw *SweepJob) submitPoint(ctx context.Context, sp *spec.Spec, ephemeral bool) (*Job, error) {
	for {
		job, err := sw.svc.Submit(sp, ephemeral)
		if err == nil || !errors.Is(err, ErrQueueFull) {
			return job, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-sw.svc.ctx.Done():
			return nil, ErrClosed
		case <-sw.svc.space:
		}
	}
}
