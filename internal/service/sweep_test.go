package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"coemu/internal/spec"
	"coemu/internal/store"
)

// testSweep builds a sweep document over the canonical stream design
// with the given sweep block.
func testSweep(t *testing.T, cycles int64, sweep string) *spec.SweepSpec {
	t.Helper()
	src := fmt.Sprintf(`{
	  "name": "svc-sweep",
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": %d},
	  "sweep": %s
	}`, cycles, sweep)
	ss, err := spec.ParseSweep([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func collect(t *testing.T, sw *SweepJob) []PointResult {
	t.Helper()
	var out []PointResult
	for pr := range sw.Results() {
		out = append(out, pr)
	}
	return out
}

func TestSweepFanOutOrderedResults(t *testing.T) {
	svc := newTestService(t, Options{Workers: 4})
	ss := testSweep(t, 1500, `{"axes": [
		{"field": "run.accuracy", "values": [1, 0.9, 0.5]},
		{"field": "run.lob_depth", "values": [32, 64]}
	]}`)
	sw, err := svc.StartSweep(context.Background(), ss, false)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Total() != 6 {
		t.Fatalf("total %d, want 6", sw.Total())
	}
	results := collect(t, sw)
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	for i, pr := range results {
		if pr.Index != i {
			t.Fatalf("result %d has index %d", i, pr.Index)
		}
		if pr.Err != nil || pr.Result == nil {
			t.Fatalf("point %d: %+v", i, pr)
		}
		if pr.Result.Report.Cycles != 1500 {
			t.Fatalf("point %d ran %d cycles", i, pr.Result.Report.Cycles)
		}
	}
	completed, failed, total := sw.Progress()
	if completed != 6 || failed != 0 || total != 6 {
		t.Fatalf("progress %d/%d/%d", completed, failed, total)
	}
	c := svc.Counters()
	if c.Sweeps != 1 || c.SweepPoints != 6 {
		t.Fatalf("counters %+v", c)
	}
	if c.EngineRuns != 6 {
		t.Fatalf("engine runs %d, want 6", c.EngineRuns)
	}
}

func TestSweepDuplicatePointsCoalesce(t *testing.T) {
	svc := newTestService(t, Options{Workers: 2})
	// cycle_batch is excluded from the canonical hash, so the two axis
	// values expand to two points with one canonical identity.
	ss := testSweep(t, 1200, `{"axes": [
		{"field": "run.cycle_batch", "values": [16, 64]}
	]}`)
	sw, err := svc.StartSweep(context.Background(), ss, false)
	if err != nil {
		t.Fatal(err)
	}
	results := collect(t, sw)
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Hash != results[1].Hash {
		t.Fatal("hash-identical points hashed apart")
	}
	if string(results[0].Result.JSON) != string(results[1].Result.JSON) {
		t.Fatal("coalesced points returned different bytes")
	}
	if c := svc.Counters(); c.EngineRuns != 1 {
		t.Fatalf("engine runs %d, want 1 (dedup)", c.EngineRuns)
	}
}

func TestSweepSurvivesQueueBackpressure(t *testing.T) {
	// Queue depth 1 with 6 points: eager submission must ride out
	// ErrQueueFull and still deliver every point.
	svc := newTestService(t, Options{Workers: 1, QueueDepth: 1})
	ss := testSweep(t, 800, `{"axes": [
		{"field": "run.lob_depth", "values": [8, 16, 32, 64, 128, 256]}
	]}`)
	sw, err := svc.StartSweep(context.Background(), ss, false)
	if err != nil {
		t.Fatal(err)
	}
	results := collect(t, sw)
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	for i, pr := range results {
		if pr.Err != nil {
			t.Fatalf("point %d: %v", i, pr.Err)
		}
	}
}

func TestSweepCancellationAbandonsPoints(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	ss := testSweep(t, int64(1)<<40, `{"axes": [
		{"field": "run.lob_depth", "values": [32, 64, 128]}
	]}`)
	ctx, cancel := context.WithCancel(context.Background())
	sw, err := svc.StartSweep(ctx, ss, true)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	cancel()
	results := collect(t, sw)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, pr := range results {
		if pr.Err == nil {
			t.Fatalf("point %d completed despite cancellation", i)
		}
	}
	// Every ephemeral point must reach a terminal canceled state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		canceled := 0
		for _, info := range svc.Jobs() {
			if info.Status == StatusCanceled {
				canceled++
			}
		}
		if canceled == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 points canceled", canceled)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStoreWriteThroughAndRestart(t *testing.T) {
	dir := t.TempDir()
	disk, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, Options{Workers: 2, Store: disk})
	job, err := svc.Submit(testSpec(t, 1700), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 1 {
		t.Fatalf("store holds %d entries after a run", disk.Len())
	}

	// A "restarted daemon": fresh service, fresh store handle, same
	// directory, cold memory cache.
	disk2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc2 := newTestService(t, Options{Workers: 2, Store: disk2})
	job2, err := svc2.Submit(testSpec(t, 1700), false)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := job2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	info := job2.Info()
	if !info.Cached || !info.FromStore {
		t.Fatalf("restarted submission info %+v, want cached from store", info)
	}
	if res2.Report != nil {
		t.Fatal("store-served result claims an in-memory report")
	}
	if string(res.JSON) != string(res2.JSON) {
		t.Fatal("store-served bytes differ from the original run")
	}
	c := svc2.Counters()
	if c.EngineRuns != 0 || c.StoreHits != 1 {
		t.Fatalf("restart counters %+v, want zero engine runs and one store hit", c)
	}

	// The store hit was promoted into the memory cache: a third
	// duplicate is a pure memory hit.
	job3, err := svc2.Submit(testSpec(t, 1700), false)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := job3.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if job3.Info().FromStore {
		t.Fatal("memory-cache hit attributed to the store")
	}
	if string(res3.JSON) != string(res.JSON) {
		t.Fatal("promoted result bytes differ")
	}
}

func TestSweepAfterRestartServedEntirelyFromStore(t *testing.T) {
	dir := t.TempDir()
	sweepBlock := `{"axes": [
		{"field": "run.accuracy", "values": [1, 0.9]},
		{"field": "run.lob_depth", "values": [32, 64]}
	]}`

	disk, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, Options{Workers: 4, Store: disk})
	sw, err := svc.StartSweep(context.Background(), testSweep(t, 900, sweepBlock), false)
	if err != nil {
		t.Fatal(err)
	}
	first := collect(t, sw)

	disk2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc2 := newTestService(t, Options{Workers: 4, Store: disk2})
	sw2, err := svc2.StartSweepPoints(context.Background(), mustExpand(t, testSweep(t, 900, sweepBlock)), false)
	if err != nil {
		t.Fatal(err)
	}
	second := collect(t, sw2)
	if len(second) != len(first) {
		t.Fatalf("point counts differ: %d vs %d", len(second), len(first))
	}
	for i := range second {
		if !second[i].FromStore {
			t.Fatalf("point %d not served from store", i)
		}
		if string(second[i].Result.JSON) != string(first[i].Result.JSON) {
			t.Fatalf("point %d bytes differ across restart", i)
		}
	}
	if c := svc2.Counters(); c.EngineRuns != 0 {
		t.Fatalf("restarted sweep ran %d engine runs, want 0", c.EngineRuns)
	}
}

func mustExpand(t *testing.T, ss *spec.SweepSpec) []*spec.Spec {
	t.Helper()
	points, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return points
}
