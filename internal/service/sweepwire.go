package service

import (
	"encoding/json"
)

// Sweep wire format: the NDJSON stream served by coemud's /v1/sweep
// and produced locally by cmd/sweep -grid. One SweepLine per point, in
// point order, followed by one SweepAggregateLine. The per-point
// Report field carries the run's canonical ReportView bytes verbatim,
// so a point's line is byte-identical whether the result was computed
// in-process, served from the daemon's cache, or read back from the
// persistent store.

// SweepLine is one per-point NDJSON line.
type SweepLine struct {
	Index  int             `json:"index"`
	Name   string          `json:"name,omitempty"`
	Hash   string          `json:"hash,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// SweepTableRow is one row of the final aggregate table: the point's
// identity plus its headline metrics, or its error.
type SweepTableRow struct {
	Index       int     `json:"index"`
	Name        string  `json:"name,omitempty"`
	Hash        string  `json:"hash,omitempty"`
	Perf        float64 `json:"perf_cycles_per_sec,omitempty"`
	Committed   int64   `json:"committed,omitempty"`
	Transitions int64   `json:"transitions,omitempty"`
	Rollbacks   int64   `json:"rollbacks,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// SweepAggregate summarizes a finished sweep.
type SweepAggregate struct {
	Points    int             `json:"points"`
	OK        int             `json:"ok"`
	Errors    int             `json:"errors"`
	CacheHits int             `json:"cache_hits"`
	StoreHits int             `json:"store_hits"`
	Table     []SweepTableRow `json:"table"`
}

// SweepAggregateLine is the stream's final NDJSON line, keyed
// "aggregate" so consumers can tell it from point lines.
type SweepAggregateLine struct {
	Aggregate SweepAggregate `json:"aggregate"`
}

// SweepAggregator folds PointResults into the wire format: Add returns
// the point's NDJSON line and accumulates the aggregate; Line returns
// the final aggregate line.
type SweepAggregator struct {
	agg SweepAggregate
}

// NewSweepAggregator starts an aggregation over total points.
func NewSweepAggregator(total int) *SweepAggregator {
	return &SweepAggregator{agg: SweepAggregate{Points: total, Table: make([]SweepTableRow, 0, total)}}
}

// Add folds one point result in and returns its per-point line.
func (a *SweepAggregator) Add(pr PointResult) SweepLine {
	line := SweepLine{Index: pr.Index, Name: pr.Name, Hash: pr.Hash}
	row := SweepTableRow{Index: pr.Index, Name: pr.Name, Hash: pr.Hash}
	switch {
	case pr.Err != nil:
		line.Error = pr.Err.Error()
		row.Error = pr.Err.Error()
		a.agg.Errors++
	default:
		line.Report = json.RawMessage(pr.Result.JSON)
		a.agg.OK++
		if v, err := pr.Result.View(); err == nil {
			row.Perf = v.Perf
			row.Committed = v.Stats.Committed
			row.Transitions = v.Stats.Transitions
			row.Rollbacks = v.Stats.Rollbacks
		}
		if pr.FromStore {
			a.agg.StoreHits++
		} else if pr.Cached {
			a.agg.CacheHits++
		}
	}
	a.agg.Table = append(a.agg.Table, row)
	return line
}

// Line returns the final aggregate line.
func (a *SweepAggregator) Line() SweepAggregateLine {
	return SweepAggregateLine{Aggregate: a.agg}
}
