package sim

import "testing"

// TestClockAdvanceN pins the batch contract on the cycle counter.
func TestClockAdvanceN(t *testing.T) {
	var seq, bat Clock
	for i := 0; i < 42; i++ {
		seq.Advance()
	}
	bat.AdvanceN(42)
	if seq.Now() != bat.Now() {
		t.Fatalf("AdvanceN diverged: %d vs %d", seq.Now(), bat.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AdvanceN must panic")
		}
	}()
	bat.AdvanceN(-1)
}
