// Package sim provides the minimal cycle-accurate simulation kernel the
// two verification domains run on: a cycle counter, a reset protocol and
// an ordered set of clocked components.
//
// The kernel is deliberately simple. AHB confines inter-component
// communication to clock edges (the property the paper leans on in §3 to
// rule out combinational half-loops across the domain split), so a
// two-phase drive/commit discipline sequenced by the bus model is
// sufficient; no general event wheel is needed. What the kernel owns is
// the cycle counter, reset fan-out, and the ticking of components that
// live beside the bus (interrupt timers, watchdogs) rather than on it.
package sim

import "fmt"

// Clocked is a component evaluated once per target clock cycle, after
// the bus has settled. Tick must be deterministic: the co-emulation
// engine replays cycles during roll-forth and relies on identical
// behavior given identical state.
type Clocked interface {
	// Tick advances the component by one clock cycle. cycle is the
	// index of the cycle being completed.
	Tick(cycle int64)
}

// Resettable is implemented by components with a reset state.
type Resettable interface {
	Reset()
}

// Quiescible is an optional extension of Clocked for components that
// can prove inactivity, enabling the engine's predicted-quiescence
// cycle batching. QuiescentFor returns how many upcoming Tick calls
// are guaranteed to be pure internal counter advances: no change to
// any externally visible output (interrupt lines, split releases,
// bus replies) and no dependence on the cycle index. SkipQuiescent
// applies n such ticks in one step; the resulting component state must
// be bit-identical to n sequential Tick calls. Callers must keep
// n <= QuiescentFor().
//
// A Clocked component that does not implement Quiescible simply caps
// its domain's batch size at zero — the engine falls back to
// single-stepping, never to guessing.
type Quiescible interface {
	Clocked
	QuiescentFor() int64
	SkipQuiescent(n int64)
}

// Clock is a target-clock cycle counter with snapshot support, so a
// leader domain can roll its notion of time back together with its
// components.
type Clock struct {
	cycle int64

	// saved/clean implement compare-on-save dirty tracking
	// (rollback.DeltaSnapshotter) with zero cost on the Advance path.
	saved int64
	clean bool
}

// Now returns the number of completed cycles.
func (c *Clock) Now() int64 { return c.cycle }

// Advance moves the clock forward one cycle and returns the index of the
// cycle just completed.
func (c *Clock) Advance() int64 {
	n := c.cycle
	c.cycle++
	return n
}

// AdvanceN moves the clock forward n cycles in one step, the batch
// counterpart of Advance for quiescent stretches. Negative n panics.
func (c *Clock) AdvanceN(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("sim: clock advance by negative %d", n))
	}
	c.cycle += n
}

// Save returns an opaque snapshot of the clock.
func (c *Clock) Save() any { return c.SaveInto(nil) }

// SaveInto behaves like Save but recycles prev when it came from an
// earlier Save/SaveInto of a clock (rollback.InPlaceSnapshotter).
func (c *Clock) SaveInto(prev any) any {
	v, ok := prev.(*int64)
	if !ok {
		v = new(int64)
	}
	*v = c.cycle
	return v
}

// Restore rewinds the clock to a snapshot produced by Save.
func (c *Clock) Restore(s any) {
	v, ok := s.(*int64)
	if !ok {
		panic(fmt.Sprintf("sim: bad clock snapshot %T", s))
	}
	c.cycle = *v
}

// Dirty implements rollback.DeltaSnapshotter: the clock changed iff it
// advanced past the last MarkClean point.
func (c *Clock) Dirty() bool { return !c.clean || c.cycle != c.saved }

// MarkClean implements rollback.DeltaSnapshotter.
func (c *Clock) MarkClean() {
	c.saved = c.cycle
	c.clean = true
}

// SaveDelta implements rollback.DeltaSnapshotter. The clock's whole
// state is one counter, so the delta is a self-contained copy.
func (c *Clock) SaveDelta(prev any) any { return c.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (c *Clock) RestoreDelta(newest any) { c.Restore(newest) }

// Reset implements Resettable.
func (c *Clock) Reset() { c.cycle = 0 }

// Kernel owns a clock and an ordered list of clocked components. The
// order of registration is the order of evaluation, and it must be
// identical between the reference system and the split system for traces
// to compare equal.
type Kernel struct {
	clock      Clock
	components []Clocked
}

// Register appends a component to the evaluation order. Registering nil
// panics immediately rather than at the first Step.
func (k *Kernel) Register(c Clocked) {
	if c == nil {
		panic("sim: register nil component")
	}
	k.components = append(k.components, c)
}

// Clock returns the kernel's clock.
func (k *Kernel) Clock() *Clock { return &k.clock }

// Now returns the number of completed cycles.
func (k *Kernel) Now() int64 { return k.clock.Now() }

// Step completes one target cycle: every registered component ticks in
// order, then the clock advances. It returns the index of the completed
// cycle.
func (k *Kernel) Step() int64 {
	n := k.clock.Now()
	for _, c := range k.components {
		c.Tick(n)
	}
	k.clock.Advance()
	return n
}

// Run executes n cycles.
func (k *Kernel) Run(n int64) {
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}

// Reset resets the clock and every component implementing Resettable.
func (k *Kernel) Reset() {
	k.clock.Reset()
	for _, c := range k.components {
		if r, ok := c.(Resettable); ok {
			r.Reset()
		}
	}
}
