package sim

import "testing"

type probe struct {
	ticks  []int64
	resets int
}

func (p *probe) Tick(c int64) { p.ticks = append(p.ticks, c) }
func (p *probe) Reset()       { p.resets++ }

func TestKernelStepOrderAndClock(t *testing.T) {
	var k Kernel
	a, b := &probe{}, &probe{}
	k.Register(a)
	k.Register(b)
	k.Run(3)
	if k.Now() != 3 {
		t.Fatalf("Now = %d", k.Now())
	}
	want := []int64{0, 1, 2}
	for i, w := range want {
		if a.ticks[i] != w || b.ticks[i] != w {
			t.Fatalf("tick %d: a=%d b=%d want %d", i, a.ticks[i], b.ticks[i], w)
		}
	}
}

func TestKernelRegisterNilPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("nil component must panic")
		}
	}()
	k.Register(nil)
}

func TestKernelReset(t *testing.T) {
	var k Kernel
	p := &probe{}
	k.Register(p)
	k.Run(5)
	k.Reset()
	if k.Now() != 0 {
		t.Fatalf("Now after reset = %d", k.Now())
	}
	if p.resets != 1 {
		t.Fatalf("resets = %d", p.resets)
	}
}

func TestClockSaveRestore(t *testing.T) {
	var c Clock
	c.Advance()
	c.Advance()
	s := c.Save()
	c.Advance()
	c.Restore(s)
	if c.Now() != 2 {
		t.Fatalf("restored Now = %d", c.Now())
	}
}

func TestClockRestoreBadTypePanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("bad snapshot must panic")
		}
	}()
	c.Restore("x")
}

func TestStepReturnsCompletedCycle(t *testing.T) {
	var k Kernel
	if got := k.Step(); got != 0 {
		t.Fatalf("first Step = %d", got)
	}
	if got := k.Step(); got != 1 {
		t.Fatalf("second Step = %d", got)
	}
}
