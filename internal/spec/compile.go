package spec

import (
	"fmt"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/core"
)

// Compile translates the spec into the engine's native Design and
// Config. The returned design builds fresh, identically-parameterized
// component instances per engine (reference and split builds alike), so
// a compiled spec behaves exactly like its closure-built counterpart.
// The cycle budget travels separately as s.Run.Cycles.
func (s *Spec) Compile() (core.Design, core.Config, error) {
	n, err := s.Normalized()
	if err != nil {
		return core.Design{}, core.Config{}, err
	}

	var d core.Design
	for _, m := range n.Design.Masters {
		dom, _ := parseDomain(m.Domain)
		d.Masters = append(d.Masters, core.MasterSpec{
			Name:      m.Name,
			Domain:    core.DomainID(dom),
			NewGen:    generatorKinds[m.Generator.Kind].build(m.Generator),
			BusyEvery: m.BusyEvery,
			Vars:      m.Vars,
		})
	}
	for _, sl := range n.Design.Slaves {
		dom, _ := parseDomain(sl.Domain)
		kind := slaveKinds[sl.Kind]
		d.Slaves = append(d.Slaves, core.SlaveSpec{
			Name:         sl.Name,
			Domain:       core.DomainID(dom),
			Region:       bus.Region{Lo: amba.Addr(sl.Region.Lo), Hi: amba.Addr(sl.Region.Hi)},
			New:          kind.build(sl),
			WaitFirst:    sl.WaitFirst,
			WaitNext:     sl.WaitNext,
			IRQMask:      sl.IRQMask,
			SplitCapable: kind.splitCapable,
			Vars:         sl.Vars,
		})
	}
	ownsDefault, _ := parseDomain(n.Design.OwnsDefault)
	d.OwnsDefault = core.DomainID(ownsDefault)

	if err := d.Validate(); err != nil {
		return core.Design{}, core.Config{}, fmt.Errorf("spec: %w", err)
	}

	cfg := core.Config{
		Mode:                   core.Mode(modeNames[n.Run.Mode]),
		SimSpeed:               n.Run.SimSpeed,
		AccSpeed:               n.Run.AccSpeed,
		LOBDepth:               n.Run.LOBDepth,
		Accuracy:               n.Run.Accuracy,
		FaultSeed:              n.Run.FaultSeed,
		RollbackVars:           n.Run.RollbackVars,
		CycleBatch:             n.Run.CycleBatch,
		DeltaCadence:           n.Run.DeltaCadence,
		Workers:                n.Run.Workers,
		PredictIdle:            n.Run.PredictIdle,
		PredictBurstStarts:     n.Run.PredictBurstStarts,
		Adaptive:               n.Run.Adaptive,
		AdaptiveThreshold:      n.Run.AdaptiveThreshold,
		PaperStrictTransitions: n.Run.PaperStrict,
		KeepTrace:              n.Run.KeepTrace,
		CheckProtocol:          n.Run.CheckProtocol,
	}
	// The channel section of a spec-level fault plan rides into the
	// engine config; the service and store sections are consumed by
	// their own layers. CanonicalHash strips the whole plan, so chaos
	// runs share cache entries with plain runs.
	if fp := n.Run.FaultPlan; fp != nil && fp.Channel != nil {
		cfg.ChannelFaults = fp.Channel
		cfg.ChannelFaultSeed = fp.Seed
	}
	return d, cfg, nil
}
