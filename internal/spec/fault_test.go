package spec

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"coemu/internal/faultplan"
)

// withRun returns streamSpecJSON with extra fields merged into "run".
func withRun(t *testing.T, extra map[string]any) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(streamSpecJSON), &m); err != nil {
		t.Fatal(err)
	}
	run := m["run"].(map[string]any)
	for k, v := range extra {
		run[k] = v
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestTimeoutValidationAndParse(t *testing.T) {
	s, err := Parse(withRun(t, map[string]any{"timeout": "30s"}))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := s.Run.JobTimeout(); got != 30*time.Second {
		t.Fatalf("JobTimeout = %v, want 30s", got)
	}
	var none Run
	if got := none.JobTimeout(); got != 0 {
		t.Fatalf("empty timeout JobTimeout = %v, want 0", got)
	}
	for _, bad := range []string{"banana", "-5s", "0s"} {
		if _, err := Parse(withRun(t, map[string]any{"timeout": bad})); err == nil || !strings.Contains(err.Error(), "timeout") {
			t.Errorf("timeout %q: err = %v, want timeout error", bad, err)
		}
	}
}

func TestFaultPlanValidationAndCompile(t *testing.T) {
	raw := withRun(t, map[string]any{"fault_plan": map[string]any{
		"seed":    9,
		"channel": map[string]any{"duplicate": 0.5},
	}})
	s, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, cfg, err := s.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cfg.ChannelFaults == nil || cfg.ChannelFaults.Duplicate != 0.5 || cfg.ChannelFaultSeed != 9 {
		t.Fatalf("compiled channel faults = %+v seed %d", cfg.ChannelFaults, cfg.ChannelFaultSeed)
	}

	bad := withRun(t, map[string]any{"fault_plan": map[string]any{
		"channel": map[string]any{"corrupt": 2.0},
	}})
	if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "fault_plan") {
		t.Fatalf("bad plan: err = %v, want fault_plan error", err)
	}
}

func TestHostKnobsDoNotSplitCanonicalHash(t *testing.T) {
	base := parseOK(t, streamSpecJSON)
	want, err := base.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	variants := []map[string]any{
		{"timeout": "45s"},
		{"fault_plan": map[string]any{"seed": 3, "channel": map[string]any{"duplicate": 1.0}}},
		{"timeout": "1m", "fault_plan": map[string]any{"service": map[string]any{"worker_panic": 0.5}}},
		{"trace": true},
		{"trace": true, "trace_ring": 4096},
		{"trace_ring": 128, "timeout": "30s"},
		{"workers": 4},
		{"workers": 2, "trace": true, "timeout": "20s"},
	}
	for i, extra := range variants {
		s, err := Parse(withRun(t, extra))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got, err := s.CanonicalHash()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("variant %d: hash %s != base %s — host-side knobs must not split the result cache", i, got, want)
		}
	}
}

func TestNormalizedKeepsHostKnobs(t *testing.T) {
	s, err := Parse(withRun(t, map[string]any{
		"timeout":    "10s",
		"fault_plan": map[string]any{"store": map[string]any{"write_error": 0.25}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Run.Timeout != "10s" {
		t.Fatalf("Normalized dropped timeout: %q", n.Run.Timeout)
	}
	if n.Run.FaultPlan == nil || n.Run.FaultPlan.Store == nil || n.Run.FaultPlan.Store.WriteError != 0.25 {
		t.Fatalf("Normalized dropped fault plan: %+v", n.Run.FaultPlan)
	}
}

func TestFaultPlanRejectsUnknownFields(t *testing.T) {
	// The plan is decoded as part of the spec; spec-level
	// DisallowUnknownFields must reach into it.
	raw := withRun(t, map[string]any{"fault_plan": map[string]any{
		"channel": map[string]any{"corupt": 0.5},
	}})
	if _, err := Parse(raw); err == nil {
		t.Fatal("accepted fault plan with unknown field")
	}
	// And standalone parsing agrees.
	if _, err := faultplan.Parse([]byte(`{"channel": {"corupt": 0.5}}`)); err == nil {
		t.Fatal("faultplan.Parse accepted unknown field")
	}
}
