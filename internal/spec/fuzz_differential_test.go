// Cross-transport differential fuzzing. This file is package spec_test
// (not spec) so it can drive the remote runner — remote imports spec,
// so the differential must sit outside the package to avoid a cycle.
package spec_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"coemu/internal/core"
	"coemu/internal/remote"
	"coemu/internal/spec"
)

// fuzzCycleCap bounds generated runs so one fuzz input stays cheap:
// long enough to reach flush, report-exchange and rollback traffic,
// short enough for thousands of executions per smoke run.
const fuzzCycleCap = 1200

// FuzzRemoteDifferential feeds fuzzer-grown spec documents through
// both transports: a plain in-process wire-codec run and a mirrored
// pair of engines over a real loopback TCP socket. For every valid
// spec the two must agree — byte-identical canonical report JSON on
// success, and errors on both paths when the spec compiles but cannot
// run. The transport layer must never be the thing that decides a
// run's outcome.
func FuzzRemoteDifferential(f *testing.F) {
	if paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "spec.json")); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(`{
	  "design": {
	    "masters": [{"name": "m", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x1000"},
	                    "write": true, "burst": "INCR4", "gap": 3}}],
	    "slaves": [{"name": "s", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x2000"}}]
	  },
	  "run": {"mode": "conservative", "cycles": 300}
	}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := spec.Parse(data)
		if err != nil {
			return // invalid documents may be rejected freely
		}
		// Host-side guardrails. Cycles are capped for speed; the timeout
		// and fault plan are cleared so the differential compares the
		// transports, not the chaos layer (remote_chaos_test.go owns
		// that) or a wall-clock deadline racing two schedulers.
		if sp.Run.Cycles > fuzzCycleCap {
			sp.Run.Cycles = fuzzCycleCap
		}
		sp.Run.Timeout = ""
		sp.Run.FaultPlan = nil

		d, cfg, err := sp.Compile()
		if err != nil {
			return // uncompilable specs never reach a transport
		}
		cfg.WirePackets = true
		eng, err := core.NewEngine(d, cfg)
		if err != nil {
			return // unrunnable configs never reach a transport
		}
		var localView []byte
		rep, localErr := eng.Run(sp.Run.Cycles)
		if localErr == nil {
			localView, err = remote.CanonicalView(rep)
			if err != nil {
				t.Fatalf("canonical view: %v", err)
			}
		}

		res, err := remote.Pair(context.Background(), sp, remote.RunOptions{}, remote.ServeOptions{})
		if err != nil {
			t.Fatalf("socket pair harness died: %v\nspec: %s", err, data)
		}

		if localErr != nil {
			// The modeled run fails in-process; the mirrored runs must
			// fail too, not invent a result over the socket.
			if res.ClientErr == nil || res.ServerErr == nil {
				t.Fatalf("in-process run failed (%v) but remote run succeeded (client %v, server %v)",
					localErr, res.ClientErr, res.ServerErr)
			}
			return
		}
		if res.ClientErr != nil || res.ServerErr != nil {
			t.Fatalf("in-process run succeeded but remote run failed: client %v, server %v\nspec: %s",
				res.ClientErr, res.ServerErr, data)
		}
		if !bytes.Equal(res.Client.View, localView) {
			t.Fatalf("client mirror diverged from in-process run\nremote: %s\nlocal:  %s", res.Client.View, localView)
		}
		if !bytes.Equal(res.ServerView, localView) {
			t.Fatalf("serving mirror diverged from in-process run\nremote: %s\nlocal:  %s", res.ServerView, localView)
		}
	})
}
