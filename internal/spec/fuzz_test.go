package spec

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSweepSpec pins the determinism properties the whole caching and
// store stack rests on, for every parseable document the fuzzer finds:
//
//   - CanonicalHash is stable across repeated calls;
//   - the hash is insensitive to formatting (re-indented input) and to
//     field order / stray text form (re-parse of the struct's own
//     marshaling hashes identically);
//   - normalization is idempotent and hash-preserving;
//   - sweep expansion is deterministic: two Expands agree point for
//     point on names and hashes, and every point validates and hashes.
func FuzzSweepSpec(f *testing.F) {
	// Seed with every example spec shipped in the repository...
	if paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "spec.json")); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(data)
			}
		}
	}
	// ...a sweep document... (kept in sync with the grammar tests)
	f.Add([]byte(`{
	  "name": "seed",
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": 2000},
	  "sweep": {"axes": [
	    {"field": "run.accuracy", "values": [1, 0.9]},
	    {"field": "design.masters[0].generator.gap", "values": [0, 8]}
	  ]}
	}`))
	// ...and degenerate inputs.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"design":{"masters":[]},"run":{"mode":"als","cycles":1}}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ss, err := ParseSweep(data)
		if err != nil {
			return // invalid documents may be rejected freely
		}

		h1, err := ss.Spec.CanonicalHash()
		if err != nil {
			t.Fatalf("parsed spec does not hash: %v", err)
		}
		if h2, _ := ss.Spec.CanonicalHash(); h2 != h1 {
			t.Fatalf("hash unstable across calls: %s vs %s", h1, h2)
		}

		// Formatting insensitivity: re-indent the raw input.
		var indented bytes.Buffer
		if err := json.Indent(&indented, data, " ", "\t"); err == nil {
			ss2, err := ParseSweep(indented.Bytes())
			if err != nil {
				t.Fatalf("re-indented document rejected: %v", err)
			}
			if h2, _ := ss2.Spec.CanonicalHash(); h2 != h1 {
				t.Fatalf("hash depends on formatting: %s vs %s", h1, h2)
			}
		}

		// Text-form insensitivity: the struct's own marshaling (default
		// field order, numeric addresses, filled pointers) must re-parse
		// to the same identity.
		enc, err := json.Marshal(ss)
		if err != nil {
			t.Fatalf("marshal of parsed document: %v", err)
		}
		ss3, err := ParseSweep(enc)
		if err != nil {
			t.Fatalf("round-tripped document rejected: %v\n%s", err, enc)
		}
		if h3, _ := ss3.Spec.CanonicalHash(); h3 != h1 {
			t.Fatalf("hash depends on text form: %s vs %s", h1, h3)
		}

		// Normalization idempotence.
		n, err := ss.Spec.Normalized()
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		n2, err := n.Normalized()
		if err != nil {
			t.Fatalf("re-normalize: %v", err)
		}
		b1, _ := json.Marshal(n)
		b2, _ := json.Marshal(n2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("normalization not idempotent:\n%s\n%s", b1, b2)
		}
		if hn, _ := n.CanonicalHash(); hn != h1 {
			t.Fatalf("normalization changed the hash: %s vs %s", hn, h1)
		}

		// Sweep expansion determinism. Cap the grid so a fuzzer-grown
		// axis list cannot make the test slow.
		if ss.Points() > 64 {
			return
		}
		a, errA := ss.Expand()
		b, errB := ss.Expand()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("expansion errors disagree: %v vs %v", errA, errB)
		}
		if errA != nil {
			return // per-point invalidity is allowed, as long as it is stable
		}
		if len(a) != len(b) {
			t.Fatalf("expansion lengths disagree: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if err := a[i].Validate(); err != nil {
				t.Fatalf("expanded point %d invalid: %v", i, err)
			}
			ha, err := a[i].CanonicalHash()
			if err != nil {
				t.Fatalf("expanded point %d does not hash: %v", i, err)
			}
			hb, _ := b[i].CanonicalHash()
			if ha != hb || a[i].Name != b[i].Name {
				t.Fatalf("expansion not deterministic at point %d", i)
			}
		}
	})
}
