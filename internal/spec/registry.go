package spec

import (
	"fmt"
	"sort"

	"coemu/internal/amba"
	"coemu/internal/bus"
	"coemu/internal/ip"
	"coemu/internal/workload"
)

// The registries mapping spec kind names to the built-in IP blocks and
// workload generators. Each kind supplies three hooks:
//
//   - validate: structural checks on the kind's own parameters;
//   - canon: strip fields the kind does not consume and fill the
//     kind's defaults, so the canonical hash is insensitive to stray
//     or explicitly-defaulted fields;
//   - build: produce a deterministic factory (called once per engine
//     build — the reference build and the split build each get fresh,
//     identically-parameterized instances).
//
// Registration is open: RegisterGenerator/RegisterSlave let an
// embedding program add custom kinds before parsing specs.

type generatorKind struct {
	validate func(*Generator) error
	canon    func(Generator) Generator
	build    func(Generator) func() ip.Generator
}

type slaveKind struct {
	validate func(*Slave) error
	canon    func(Slave) Slave
	build    func(Slave) func() bus.Slave
	// splitCapable marks kinds whose slaves issue SPLIT responses.
	splitCapable bool
}

var (
	generatorKinds = map[string]generatorKind{}
	slaveKinds     = map[string]slaveKind{}
)

// RegisterGenerator adds a generator kind to the registry. Registering
// a duplicate kind panics: kinds are program-wide vocabulary.
func RegisterGenerator(kind string, validate func(*Generator) error,
	canon func(Generator) Generator, build func(Generator) func() ip.Generator) {
	if _, dup := generatorKinds[kind]; dup {
		panic(fmt.Sprintf("spec: generator kind %q registered twice", kind))
	}
	if validate == nil || canon == nil || build == nil {
		panic(fmt.Sprintf("spec: generator kind %q: nil hook", kind))
	}
	generatorKinds[kind] = generatorKind{validate, canon, build}
}

// RegisterSlave adds a slave kind to the registry. splitCapable marks
// kinds that issue SPLIT responses (they must implement
// bus.SplitSource). Registering a duplicate kind panics.
func RegisterSlave(kind string, splitCapable bool, validate func(*Slave) error,
	canon func(Slave) Slave, build func(Slave) func() bus.Slave) {
	if _, dup := slaveKinds[kind]; dup {
		panic(fmt.Sprintf("spec: slave kind %q registered twice", kind))
	}
	if validate == nil || canon == nil || build == nil {
		panic(fmt.Sprintf("spec: slave kind %q: nil hook", kind))
	}
	slaveKinds[kind] = slaveKind{validate, canon, build, splitCapable}
}

// GeneratorKinds lists the registered generator kinds, sorted.
func GeneratorKinds() []string {
	kinds := make([]string, 0, len(generatorKinds))
	for k := range generatorKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// SlaveKinds lists the registered slave kinds, sorted.
func SlaveKinds() []string {
	kinds := make([]string, 0, len(slaveKinds))
	for k := range slaveKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// parseBurst resolves a burst mnemonic, defaulting empty to SINGLE.
func parseBurst(name string) (amba.Burst, error) {
	if name == "" {
		return amba.BurstSingle, nil
	}
	b, ok := workload.ParseBurst(name)
	if !ok {
		return 0, fmt.Errorf("unknown burst %q", name)
	}
	return b, nil
}

// parseBits resolves a transfer width, defaulting 0 to 32 bits.
func parseBits(bits int) (amba.Size, error) {
	if bits == 0 {
		bits = 32
	}
	sz, ok := workload.ParseSizeBits(bits)
	if !ok {
		return 0, fmt.Errorf("unsupported width %d (want 8, 16 or 32)", bits)
	}
	return sz, nil
}

// windowOf converts a spec window.
func windowOf(w Window) workload.Window {
	return workload.Window{Lo: amba.Addr(w.Lo), Hi: amba.Addr(w.Hi)}
}

func validWindow(w *Window, what string) error {
	if w == nil {
		return fmt.Errorf("missing %s", what)
	}
	if w.Hi <= w.Lo {
		return fmt.Errorf("empty %s [%#x, %#x)", what, uint64(w.Lo), uint64(w.Hi))
	}
	if w.Hi > 1<<32 {
		return fmt.Errorf("%s end %#x beyond the 32-bit address space", what, uint64(w.Hi))
	}
	return nil
}

func init() {
	// stream: workload.NewStream — the unidirectional burst run the
	// paper's prediction thrives on.
	RegisterGenerator("stream",
		func(g *Generator) error {
			if err := validWindow(g.Window, "window"); err != nil {
				return err
			}
			b, err := parseBurst(g.Burst)
			if err != nil {
				return err
			}
			if _, err := parseBits(g.Bits); err != nil {
				return err
			}
			if b == amba.BurstIncr && g.Len <= 0 {
				return fmt.Errorf("INCR burst requires len")
			}
			if g.Len < 0 || g.Gap < 0 || g.Max < 0 {
				return fmt.Errorf("negative len, gap or max")
			}
			return nil
		},
		func(g Generator) Generator {
			b, _ := parseBurst(g.Burst)
			out := Generator{Kind: g.Kind, Window: g.Window, Write: g.Write,
				Burst: burstName(b), Bits: g.Bits, Len: g.Len, Gap: g.Gap, Max: g.Max}
			if out.Bits == 0 {
				out.Bits = 32
			}
			if b != amba.BurstIncr {
				out.Len = 0 // fixed-length bursts derive beats from the type
			}
			return out
		},
		func(g Generator) func() ip.Generator {
			b, _ := parseBurst(g.Burst)
			sz, _ := parseBits(g.Bits)
			win := windowOf(*g.Window)
			write, length, gap, max := g.Write, g.Len, g.Gap, g.Max
			return func() ip.Generator {
				return workload.NewStream(win, write, b, sz, length, gap, max)
			}
		})

	// dma: workload.NewDMACopy — read bursts from src alternating with
	// write bursts to dst.
	RegisterGenerator("dma",
		func(g *Generator) error {
			if err := validWindow(g.Src, "src"); err != nil {
				return err
			}
			if err := validWindow(g.Dst, "dst"); err != nil {
				return err
			}
			b, err := parseBurst(g.Burst)
			if err != nil {
				return err
			}
			if b.Beats() == 0 {
				return fmt.Errorf("dma requires a fixed-length burst, got %q", g.Burst)
			}
			if g.Gap < 0 || g.Max < 0 {
				return fmt.Errorf("negative gap or max")
			}
			return nil
		},
		func(g Generator) Generator {
			b, _ := parseBurst(g.Burst)
			return Generator{Kind: g.Kind, Src: g.Src, Dst: g.Dst,
				Burst: burstName(b), Gap: g.Gap, Max: g.Max}
		},
		func(g Generator) func() ip.Generator {
			b, _ := parseBurst(g.Burst)
			src, dst := windowOf(*g.Src), windowOf(*g.Dst)
			gap, max := g.Gap, g.Max
			return func() ip.Generator {
				return workload.NewDMACopy(src, dst, b, gap, max)
			}
		})

	// cpu: workload.NewCPU — randomized single transfers and short
	// bursts across a window set.
	RegisterGenerator("cpu",
		func(g *Generator) error {
			if len(g.Windows) == 0 {
				return fmt.Errorf("cpu requires at least one window")
			}
			for i := range g.Windows {
				if err := validWindow(&g.Windows[i], fmt.Sprintf("windows[%d]", i)); err != nil {
					return err
				}
			}
			if g.WriteRatio < 0 || g.WriteRatio > 1 {
				return fmt.Errorf("write_ratio %v outside [0, 1]", g.WriteRatio)
			}
			if g.MaxGap < 0 || g.Max < 0 {
				return fmt.Errorf("negative max_gap or max")
			}
			return nil
		},
		func(g Generator) Generator {
			return Generator{Kind: g.Kind, Windows: g.Windows,
				WriteRatio: g.WriteRatio, MaxGap: g.MaxGap, Max: g.Max, Seed: g.Seed}
		},
		func(g Generator) func() ip.Generator {
			wins := make([]workload.Window, len(g.Windows))
			for i, w := range g.Windows {
				wins[i] = windowOf(w)
			}
			ratio, maxGap, max, seed := g.WriteRatio, g.MaxGap, g.Max, g.Seed
			return func() ip.Generator {
				return workload.NewCPU(wins, ratio, maxGap, max, seed)
			}
		})

	// script: workload.ParseScript — a fixed transfer list in the
	// textual script format.
	RegisterGenerator("script",
		func(g *Generator) error {
			if g.Script == "" {
				return fmt.Errorf("script generator requires a script")
			}
			if _, err := workload.ParseScript(g.Script); err != nil {
				return err
			}
			return nil
		},
		func(g Generator) Generator {
			return Generator{Kind: g.Kind, Script: g.Script}
		},
		func(g Generator) func() ip.Generator {
			src := g.Script
			return func() ip.Generator {
				gen, err := workload.ParseScript(src)
				if err != nil {
					panic(err) // validated at spec parse time
				}
				return gen
			}
		})

	// Slave kinds. wait_first/wait_next always feed the predictor
	// profile; kinds whose constructors take wait parameters draw them
	// from the same fields, so spec files cannot desynchronize the
	// model from the component the way closure designs can.

	// sram: ip.NewSRAM — a zero-wait memory.
	RegisterSlave("sram", false,
		func(s *Slave) error {
			if s.WaitFirst != 0 || s.WaitNext != 0 {
				return fmt.Errorf("sram is zero-wait; wait_first/wait_next must be 0")
			}
			return nil
		},
		func(s Slave) Slave {
			return baseSlave(s)
		},
		func(s Slave) func() bus.Slave {
			name := s.Name
			return func() bus.Slave { return ip.NewSRAM(name) }
		})

	// memory: ip.NewMemory — deterministic wait profile.
	RegisterSlave("memory", false,
		func(s *Slave) error {
			if s.WaitFirst < 0 || s.WaitNext < 0 {
				return fmt.Errorf("negative wait profile")
			}
			return nil
		},
		func(s Slave) Slave {
			out := baseSlave(s)
			out.WaitFirst, out.WaitNext = s.WaitFirst, s.WaitNext
			return out
		},
		func(s Slave) func() bus.Slave {
			name, first, next := s.Name, s.WaitFirst, s.WaitNext
			return func() bus.Slave { return ip.NewMemory(name, first, next) }
		})

	// jitter: ip.NewJitterMemory — pseudo-random extra latency the
	// predictor cannot track.
	RegisterSlave("jitter", false,
		func(s *Slave) error {
			if s.Base < 0 || s.Spread < 0 {
				return fmt.Errorf("negative base or spread")
			}
			if s.WaitFirst < 0 || s.WaitNext < 0 {
				return fmt.Errorf("negative wait profile")
			}
			return nil
		},
		func(s Slave) Slave {
			out := baseSlave(s)
			out.WaitFirst, out.WaitNext = s.WaitFirst, s.WaitNext
			out.Base, out.Spread, out.Seed = s.Base, s.Spread, s.Seed
			return out
		},
		func(s Slave) func() bus.Slave {
			name, base, spread, seed := s.Name, s.Base, s.Spread, s.Seed
			return func() bus.Slave { return ip.NewJitterMemory(name, base, spread, seed) }
		})

	// retry: ip.NewRetryMemory — RETRYs the first attempt of every
	// retry_every-th beat.
	RegisterSlave("retry", false,
		func(s *Slave) error {
			if s.Waits < 0 {
				return fmt.Errorf("negative waits")
			}
			if s.RetryEvery <= 0 {
				return fmt.Errorf("retry requires retry_every >= 1")
			}
			if s.WaitFirst < 0 || s.WaitNext < 0 {
				return fmt.Errorf("negative wait profile")
			}
			return nil
		},
		func(s Slave) Slave {
			out := baseSlave(s)
			out.WaitFirst, out.WaitNext = s.WaitFirst, s.WaitNext
			out.Waits, out.RetryEvery = s.Waits, s.RetryEvery
			return out
		},
		func(s Slave) func() bus.Slave {
			name, waits, every := s.Name, s.Waits, s.RetryEvery
			return func() bus.Slave { return ip.NewRetryMemory(name, waits, every) }
		})

	// split: ip.NewSplitMemory — SPLITs every split_every-th beat,
	// releasing the parked master release_after cycles later.
	RegisterSlave("split", true,
		func(s *Slave) error {
			if s.Waits < 0 {
				return fmt.Errorf("negative waits")
			}
			if s.SplitEvery <= 0 {
				return fmt.Errorf("split requires split_every >= 1")
			}
			if s.ReleaseAfter <= 0 {
				return fmt.Errorf("split requires release_after >= 1")
			}
			if s.WaitFirst < 0 || s.WaitNext < 0 {
				return fmt.Errorf("negative wait profile")
			}
			return nil
		},
		func(s Slave) Slave {
			out := baseSlave(s)
			out.WaitFirst, out.WaitNext = s.WaitFirst, s.WaitNext
			out.Waits, out.SplitEvery, out.ReleaseAfter = s.Waits, s.SplitEvery, s.ReleaseAfter
			return out
		},
		func(s Slave) func() bus.Slave {
			name, waits, every, release := s.Name, s.Waits, s.SplitEvery, s.ReleaseAfter
			return func() bus.Slave { return ip.NewSplitMemory(name, waits, every, release) }
		})

	// error: ip.NewErrorSlave — answers every beat with a two-cycle
	// ERROR.
	RegisterSlave("error", false,
		func(s *Slave) error { return nil },
		func(s Slave) Slave {
			return baseSlave(s)
		},
		func(s Slave) func() bus.Slave {
			name := s.Name
			return func() bus.Slave { return ip.NewErrorSlave(name) }
		})

	// irq: ip.NewIRQPeriph — a register-file peripheral with a
	// countdown interrupt on the irq_mask line bit.
	RegisterSlave("irq", false,
		func(s *Slave) error {
			if s.IRQMask == 0 {
				return fmt.Errorf("irq peripheral requires a non-zero irq_mask")
			}
			if s.IRQMask&(s.IRQMask-1) != 0 {
				return fmt.Errorf("irq_mask %#x is not a single line bit", s.IRQMask)
			}
			if s.WaitFirst < 0 || s.WaitNext < 0 {
				return fmt.Errorf("negative wait profile")
			}
			return nil
		},
		func(s Slave) Slave {
			out := baseSlave(s)
			out.WaitFirst, out.WaitNext = s.WaitFirst, s.WaitNext
			out.IRQMask = s.IRQMask
			return out
		},
		func(s Slave) func() bus.Slave {
			name, line := s.Name, s.IRQMask
			return func() bus.Slave { return ip.NewIRQPeriph(name, line) }
		})
}

// baseSlave copies the fields every slave kind shares, dropping all
// kind-specific parameters (the canon hooks add back what they use).
func baseSlave(s Slave) Slave {
	return Slave{Name: s.Name, Domain: s.Domain, Region: s.Region, Kind: s.Kind, Vars: s.Vars}
}

// burstName renders a burst encoding back to its canonical mnemonic.
func burstName(b amba.Burst) string {
	switch b {
	case amba.BurstSingle:
		return "SINGLE"
	case amba.BurstIncr:
		return "INCR"
	case amba.BurstWrap4:
		return "WRAP4"
	case amba.BurstIncr4:
		return "INCR4"
	case amba.BurstWrap8:
		return "WRAP8"
	case amba.BurstIncr8:
		return "INCR8"
	case amba.BurstWrap16:
		return "WRAP16"
	case amba.BurstIncr16:
		return "INCR16"
	default:
		return fmt.Sprintf("Burst(%d)", b)
	}
}
