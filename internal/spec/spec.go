// Package spec provides a declarative, JSON-serializable description of
// a complete co-emulation run: the SoC design (masters with workload
// generators, slaves with address regions, domain placement) plus the
// engine configuration and cycle budget.
//
// A Spec is the wire format of the system: it is what cmd/coemud
// accepts over HTTP, what cmd/coemu and cmd/sweep load with -spec, and
// what the result cache keys on. Where the Go API builds designs from
// closures (coemu.MasterSpec.NewGen, coemu.SlaveSpec.New), a Spec names
// component kinds from a registry of the built-in IP blocks and
// workload generators, so new scenarios need a JSON file rather than a
// recompile.
//
// Determinism is the load-bearing property: Normalized fills every
// default and strips every field the named kinds do not consume, so two
// specs describing the same run byte-for-byte share one CanonicalHash —
// the key under which the job service deduplicates and caches runs.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"coemu/internal/core"
	"coemu/internal/faultplan"
)

// Addr is a bus address. It unmarshals from either a JSON number or a
// string ("0x40000" or decimal), and always marshals as a number so the
// canonical encoding is unique.
type Addr uint64

// UnmarshalJSON implements json.Unmarshaler.
func (a *Addr) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
		if err != nil {
			return fmt.Errorf("spec: address %q: %w", s, err)
		}
		*a = Addr(v)
		return nil
	}
	var v uint64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*a = Addr(v)
	return nil
}

// Window is a half-open address range [Lo, Hi).
type Window struct {
	Lo Addr `json:"lo"`
	Hi Addr `json:"hi"`
}

// Generator describes one workload generator by registry kind. Only the
// fields the kind consumes are meaningful; Normalized zeroes the rest.
type Generator struct {
	// Kind selects the generator builder: "stream", "dma", "cpu" or
	// "script" (see GeneratorKinds).
	Kind string `json:"kind"`

	// stream: a unidirectional burst run through Window.
	Window *Window `json:"window,omitempty"`
	Write  bool    `json:"write,omitempty"`
	Burst  string  `json:"burst,omitempty"` // SINGLE, INCR, WRAP4/8/16, INCR4/8/16
	Bits   int     `json:"bits,omitempty"`  // transfer width: 8, 16 or 32 (default 32)
	Len    int     `json:"len,omitempty"`   // beat count for INCR
	Gap    int     `json:"gap,omitempty"`   // idle cycles between transfers
	Max    int64   `json:"max,omitempty"`   // transfer bound (0 = unbounded)

	// dma: alternating read-from-Src / write-to-Dst bursts.
	Src *Window `json:"src,omitempty"`
	Dst *Window `json:"dst,omitempty"`

	// cpu: randomized traffic over Windows.
	Windows    []Window `json:"windows,omitempty"`
	WriteRatio float64  `json:"write_ratio,omitempty"`
	MaxGap     int      `json:"max_gap,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`

	// script: an inline transfer script in workload.ParseScript format.
	Script string `json:"script,omitempty"`
}

// Master declares one bus master.
type Master struct {
	Name      string    `json:"name"`
	Domain    string    `json:"domain"` // "sim" or "acc"
	Generator Generator `json:"generator"`
	// BusyEvery inserts a BUSY cycle before every n-th burst beat.
	BusyEvery int `json:"busy_every,omitempty"`
	// Vars is the rollback-variable weight (0 uses the engine default).
	Vars int `json:"vars,omitempty"`
}

// Slave declares one bus slave by registry kind. wait_first/wait_next
// double as the remote-side response-predictor profile, exactly like
// coemu.SlaveSpec.WaitFirst/WaitNext.
type Slave struct {
	Name   string `json:"name"`
	Domain string `json:"domain"` // "sim" or "acc"
	Region Window `json:"region"`
	// Kind selects the slave builder: "sram", "memory", "jitter",
	// "retry", "split", "error" or "irq" (see SlaveKinds).
	Kind string `json:"kind"`

	// memory/jitter/retry/split: deterministic wait profile. For
	// "memory" these are also the constructor's wait parameters.
	WaitFirst int `json:"wait_first,omitempty"`
	WaitNext  int `json:"wait_next,omitempty"`

	// jitter: real latency is Base plus pseudo-random extra in
	// [0, Spread] seeded by Seed.
	Base   int    `json:"base,omitempty"`
	Spread int    `json:"spread,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`

	// retry/split: Waits per beat; retry RETRYs every RetryEvery-th
	// beat, split SPLITs every SplitEvery-th beat and releases the
	// parked master ReleaseAfter cycles later.
	Waits        int `json:"waits,omitempty"`
	RetryEvery   int `json:"retry_every,omitempty"`
	SplitEvery   int `json:"split_every,omitempty"`
	ReleaseAfter int `json:"release_after,omitempty"`

	// irq: the interrupt line bit the peripheral owns (doubles as the
	// design's IRQ mask for the line).
	IRQMask uint32 `json:"irq_mask,omitempty"`

	// Vars is the rollback-variable weight (0 uses the engine default).
	Vars int `json:"vars,omitempty"`
}

// DesignSpec is the serializable counterpart of coemu.Design.
type DesignSpec struct {
	Masters []Master `json:"masters"`
	Slaves  []Slave  `json:"slaves"`
	// OwnsDefault selects the domain driving default-slave replies
	// ("sim" by default).
	OwnsDefault string `json:"owns_default,omitempty"`
}

// Run is the serializable counterpart of coemu.Config plus the cycle
// budget.
type Run struct {
	// Mode is "conservative", "sla", "als" or "auto".
	Mode string `json:"mode"`
	// Cycles is the target-cycle budget of the run.
	Cycles int64 `json:"cycles"`

	SimSpeed     float64 `json:"sim_speed,omitempty"` // cycles/s, default 1e6
	AccSpeed     float64 `json:"acc_speed,omitempty"` // cycles/s, default 1e7
	LOBDepth     int     `json:"lob_depth,omitempty"` // words, default 64
	Accuracy     float64 `json:"accuracy,omitempty"`  // (0,1]; 0 and 1 both mean organic
	FaultSeed    uint64  `json:"fault_seed,omitempty"`
	RollbackVars int     `json:"rollback_vars,omitempty"`

	// CycleBatch caps the engine's predicted-quiescence cycle
	// batching (host-side fast path; modeled metrics are bit-identical
	// for every setting). 0 selects the engine default (64); 1
	// disables batching.
	CycleBatch int `json:"cycle_batch,omitempty"`
	// DeltaCadence sets the incremental-snapshot cadence of the
	// rollback store (host-side fast path; modeled metrics are
	// bit-identical for every setting). 0 selects the engine default
	// (16); 1 forces full snapshots every transition.
	DeltaCadence int `json:"delta_cadence,omitempty"`
	// Workers sets the engine's host parallelism (goroutines in the
	// cycle loop; host-side fast path; reports are bit-identical for
	// every setting, pinned by the workers differential suite). 0 and
	// 1 both run sequentially. Excluded from the canonical hash like
	// CycleBatch/DeltaCadence.
	Workers int `json:"workers,omitempty"`

	PredictIdle        bool    `json:"predict_idle,omitempty"`
	PredictBurstStarts bool    `json:"predict_burst_starts,omitempty"`
	Adaptive           bool    `json:"adaptive,omitempty"`
	AdaptiveThreshold  float64 `json:"adaptive_threshold,omitempty"`
	PaperStrict        bool    `json:"paper_strict,omitempty"`

	KeepTrace     bool `json:"keep_trace,omitempty"`
	CheckProtocol bool `json:"check_protocol,omitempty"`

	// Timeout is the per-job wall-clock deadline as a Go duration
	// string ("30s", "2m"). Empty means no deadline. It bounds host
	// execution, not the modeled run, so it is a host-side knob:
	// excluded from the canonical hash like CycleBatch/DeltaCadence.
	Timeout string `json:"timeout,omitempty"`
	// FaultPlan configures seeded chaos-testing fault injection for
	// this run (see faultplan). Host-side test harness configuration:
	// excluded from the canonical hash — a run that survives its
	// faults produces bit-identical results to the plan-free run.
	FaultPlan *faultplan.Plan `json:"fault_plan,omitempty"`

	// Trace attaches the cycle-granular protocol tracer to the run
	// (run-ahead spans, rollbacks, batch commits — see internal/trace).
	// Pure host-side observability: the modeled run is bit-identical
	// with and without it, so it is excluded from the canonical hash
	// like CycleBatch/DeltaCadence.
	Trace bool `json:"trace,omitempty"`
	// TraceRing caps the tracer's event ring (events retained; the
	// oldest are overwritten past the cap). 0 selects the tracer
	// default. Host-side knob, excluded from the canonical hash.
	TraceRing int `json:"trace_ring,omitempty"`

	// MeasuredLatency asks a cross-process run (coemu -remote-domain)
	// to sample the real link round trip (handshake + ping/pong) and
	// report a performance estimate with the modeled Tch replaced by
	// the measured latency — the paper's prediction packetizing masking
	// a physical channel instead of a modeled one. Pure host-side
	// observability: the canonical report is bit-identical with and
	// without it, so it is excluded from the canonical hash like
	// Trace/TraceRing. In-process runs ignore it.
	MeasuredLatency bool `json:"measured_latency,omitempty"`
}

// Spec is a complete declarative co-emulation run.
type Spec struct {
	// Name is a human label. It does not influence the run and is
	// excluded from the canonical hash.
	Name   string     `json:"name,omitempty"`
	Design DesignSpec `json:"design"`
	Run    Run        `json:"run"`
}

// Parse decodes and validates a JSON spec. Unknown fields are errors so
// a typo cannot silently change a run.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: parse: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("spec: parse: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// parseDomain resolves a domain name.
func parseDomain(s string) (uint8, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sim":
		return 0, nil
	case "acc":
		return 1, nil
	default:
		return 0, fmt.Errorf("unknown domain %q (want \"sim\" or \"acc\")", s)
	}
}

// modeNames maps run-mode names to core.Mode ordinals (kept in sync by
// TestModeNames in this package).
var modeNames = map[string]uint8{
	"conservative": 0,
	"sla":          1,
	"als":          2,
	"auto":         3,
}

// Validate checks the spec structurally: every named kind exists, its
// required parameters are present and legal, domains and mode parse,
// and the cycle budget is positive. Cross-component checks (duplicate
// names, overlapping IRQ lines) are performed by Compile via
// core.Design.Validate.
func (s *Spec) Validate() error {
	if len(s.Design.Masters) == 0 {
		return fmt.Errorf("spec: design has no masters")
	}
	for i := range s.Design.Masters {
		m := &s.Design.Masters[i]
		if m.Name == "" {
			return fmt.Errorf("spec: master %d has no name", i)
		}
		if _, err := parseDomain(m.Domain); err != nil {
			return fmt.Errorf("spec: master %q: %w", m.Name, err)
		}
		if m.BusyEvery < 0 || m.Vars < 0 {
			return fmt.Errorf("spec: master %q: negative busy_every or vars", m.Name)
		}
		k, ok := generatorKinds[m.Generator.Kind]
		if !ok {
			return fmt.Errorf("spec: master %q: unknown generator kind %q (have %s)",
				m.Name, m.Generator.Kind, strings.Join(GeneratorKinds(), ", "))
		}
		if err := k.validate(&m.Generator); err != nil {
			return fmt.Errorf("spec: master %q: %w", m.Name, err)
		}
	}
	for i := range s.Design.Slaves {
		sl := &s.Design.Slaves[i]
		if sl.Name == "" {
			return fmt.Errorf("spec: slave %d has no name", i)
		}
		if _, err := parseDomain(sl.Domain); err != nil {
			return fmt.Errorf("spec: slave %q: %w", sl.Name, err)
		}
		if sl.Region.Hi <= sl.Region.Lo {
			return fmt.Errorf("spec: slave %q: empty region [%#x, %#x)", sl.Name, uint64(sl.Region.Lo), uint64(sl.Region.Hi))
		}
		if sl.Region.Hi > 1<<32 {
			return fmt.Errorf("spec: slave %q: region end %#x beyond the 32-bit address space", sl.Name, uint64(sl.Region.Hi))
		}
		if sl.Vars < 0 {
			return fmt.Errorf("spec: slave %q: negative vars", sl.Name)
		}
		k, ok := slaveKinds[sl.Kind]
		if !ok {
			return fmt.Errorf("spec: slave %q: unknown slave kind %q (have %s)",
				sl.Name, sl.Kind, strings.Join(SlaveKinds(), ", "))
		}
		if err := k.validate(sl); err != nil {
			return fmt.Errorf("spec: slave %q: %w", sl.Name, err)
		}
	}
	if s.Design.OwnsDefault != "" {
		if _, err := parseDomain(s.Design.OwnsDefault); err != nil {
			return fmt.Errorf("spec: owns_default: %w", err)
		}
	}
	r := &s.Run
	if _, ok := modeNames[strings.ToLower(strings.TrimSpace(r.Mode))]; !ok {
		return fmt.Errorf("spec: unknown mode %q (want conservative, sla, als or auto)", r.Mode)
	}
	if r.Cycles <= 0 {
		return fmt.Errorf("spec: run.cycles must be positive, got %d", r.Cycles)
	}
	if r.SimSpeed < 0 || r.AccSpeed < 0 || r.LOBDepth < 0 || r.RollbackVars < 0 || r.CycleBatch < 0 || r.DeltaCadence < 0 || r.Workers < 0 || r.TraceRing < 0 {
		return fmt.Errorf("spec: negative run parameter")
	}
	if r.Accuracy < 0 || r.Accuracy > 1 {
		return fmt.Errorf("spec: accuracy %v outside [0, 1]", r.Accuracy)
	}
	if r.AdaptiveThreshold < 0 || r.AdaptiveThreshold > 1 {
		return fmt.Errorf("spec: adaptive_threshold %v outside [0, 1]", r.AdaptiveThreshold)
	}
	if r.Timeout != "" {
		d, err := time.ParseDuration(r.Timeout)
		if err != nil {
			return fmt.Errorf("spec: run.timeout: %w", err)
		}
		if d <= 0 {
			return fmt.Errorf("spec: run.timeout %q must be positive", r.Timeout)
		}
	}
	if err := r.FaultPlan.Validate(); err != nil {
		return fmt.Errorf("spec: run.fault_plan: %w", err)
	}
	return nil
}

// JobTimeout returns the parsed per-job deadline, or 0 when the spec
// sets none. It assumes a validated spec; an unparsable duration
// (impossible after Validate) also returns 0.
func (r *Run) JobTimeout() time.Duration {
	if r.Timeout == "" {
		return 0
	}
	d, err := time.ParseDuration(r.Timeout)
	if err != nil || d <= 0 {
		return 0
	}
	return d
}

// Normalized returns a validated copy with every default filled in and
// every field not consumed by the named kinds zeroed, so that all specs
// describing the same run normalize to the same value. Name is
// preserved (CanonicalHash strips it separately).
func (s *Spec) Normalized() (*Spec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := *s
	n.Design.Masters = make([]Master, len(s.Design.Masters))
	copy(n.Design.Masters, s.Design.Masters)
	n.Design.Slaves = make([]Slave, len(s.Design.Slaves))
	copy(n.Design.Slaves, s.Design.Slaves)

	for i := range n.Design.Masters {
		m := &n.Design.Masters[i]
		m.Domain = strings.ToLower(strings.TrimSpace(m.Domain))
		m.Generator = generatorKinds[m.Generator.Kind].canon(m.Generator)
	}
	for i := range n.Design.Slaves {
		sl := &n.Design.Slaves[i]
		sl.Domain = strings.ToLower(strings.TrimSpace(sl.Domain))
		*sl = slaveKinds[sl.Kind].canon(*sl)
	}
	if n.Design.OwnsDefault == "" {
		n.Design.OwnsDefault = "sim"
	} else {
		n.Design.OwnsDefault = strings.ToLower(strings.TrimSpace(n.Design.OwnsDefault))
	}

	r := &n.Run
	r.Mode = strings.ToLower(strings.TrimSpace(r.Mode))
	if r.SimSpeed == 0 {
		r.SimSpeed = 1e6
	}
	if r.AccSpeed == 0 {
		r.AccSpeed = 1e7
	}
	if r.LOBDepth == 0 {
		r.LOBDepth = 64
	}
	if r.CycleBatch == 0 {
		r.CycleBatch = core.DefaultCycleBatch
	}
	if r.DeltaCadence == 0 {
		r.DeltaCadence = core.DefaultDeltaCadence
	}
	if r.Accuracy == 0 {
		r.Accuracy = 1
	}
	if r.Accuracy == 1 {
		// No fault injector: the seed cannot influence the run.
		r.FaultSeed = 0
	}
	if r.Adaptive {
		if r.AdaptiveThreshold == 0 {
			r.AdaptiveThreshold = 0.35
		}
	} else {
		r.AdaptiveThreshold = 0
	}
	return &n, nil
}

// CanonicalHash returns the deterministic identity of the run the spec
// describes: a sha256 over the canonical JSON encoding of the
// normalized spec with the non-semantic Name stripped. Two specs with
// equal hashes compile to runs with bit-identical reports, which is
// what the job service's result cache keys on.
func (s *Spec) CanonicalHash() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	n.Name = ""
	// CycleBatch and DeltaCadence are host-side knobs: the engine's
	// batching fast path and delta-snapshot ring produce bit-identical
	// reports at every setting (pinned by the batch and delta
	// differential tests), so they must not split the result cache.
	// CycleBatch hashes as its canonical default (it has been part of
	// the canonical encoding since it existed); DeltaCadence hashes as
	// absent (zero + omitempty), so canonical hashes — and with them
	// every entry of a pre-existing persistent store — are unchanged
	// from before the knob existed.
	n.Run.CycleBatch = core.DefaultCycleBatch
	n.Run.DeltaCadence = 0
	// Workers parallelizes the host cycle loop; reports are
	// bit-identical at every width (pinned by the workers differential
	// suite), so it hashes as absent (zero + omitempty) and canonical
	// hashes are unchanged from before the knob existed.
	n.Run.Workers = 0
	// Timeout and FaultPlan are host-side too: a deadline bounds host
	// execution without touching modeled results, and fault injection
	// is a chaos harness whose surviving runs are bit-identical to
	// fault-free ones. Both hash as absent so a chaos-tested or
	// deadline-bounded run shares its cache entry with the plain run.
	n.Run.Timeout = ""
	n.Run.FaultPlan = nil
	// Trace and TraceRing attach a host-side observer whose runs are
	// bit-identical to untraced ones (pinned by the tracer differential
	// test). Both hash as absent so a traced run shares its cache entry
	// with the plain run.
	n.Run.Trace = false
	n.Run.TraceRing = 0
	// MeasuredLatency attaches host-side link measurement to a remote
	// run; the canonical report is unaffected (the remote differential
	// suite pins it), so it hashes as absent too.
	n.Run.MeasuredLatency = false
	b, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("spec: canonical encode: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
