package spec

import (
	"encoding/json"
	"strings"
	"testing"

	"coemu/internal/core"
)

// streamSpecJSON is the canonical ALS configuration (an accelerator
// write-stream into a simulator memory) in spec form.
const streamSpecJSON = `{
  "name": "als-stream",
  "design": {
    "masters": [
      {"name": "dma", "domain": "acc",
       "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
                     "write": true, "burst": "INCR8", "bits": 32}}
    ],
    "slaves": [
      {"name": "mem", "domain": "sim", "kind": "sram",
       "region": {"lo": 0, "hi": "0x80000"}}
    ]
  },
  "run": {"mode": "als", "cycles": 5000}
}`

func parseOK(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseAndCompile(t *testing.T) {
	s := parseOK(t, streamSpecJSON)
	d, cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Masters) != 1 || len(d.Slaves) != 1 {
		t.Fatalf("compiled %d masters / %d slaves", len(d.Masters), len(d.Slaves))
	}
	if cfg.Mode != core.ALS {
		t.Fatalf("mode %v, want ALS", cfg.Mode)
	}
	if s.Run.Cycles != 5000 {
		t.Fatalf("cycles %d", s.Run.Cycles)
	}
	// The compiled design must pass the engine's own validation and run.
	rep, err := core.NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cycles != 200 {
		t.Fatalf("ran %d cycles", out.Cycles)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		edit func(raw map[string]any)
	}{
		{"unknown field", func(m map[string]any) { m["bogus"] = 1 }},
		{"unknown mode", func(m map[string]any) { m["run"].(map[string]any)["mode"] = "warp" }},
		{"zero cycles", func(m map[string]any) { m["run"].(map[string]any)["cycles"] = 0 }},
		{"no masters", func(m map[string]any) {
			m["design"].(map[string]any)["masters"] = []any{}
		}},
		{"unknown generator", func(m map[string]any) {
			gen := master0(m)["generator"].(map[string]any)
			gen["kind"] = "quantum"
		}},
		{"missing window", func(m map[string]any) {
			gen := master0(m)["generator"].(map[string]any)
			delete(gen, "window")
		}},
		{"bad domain", func(m map[string]any) { master0(m)["domain"] = "fpga" }},
		{"accuracy out of range", func(m map[string]any) {
			m["run"].(map[string]any)["accuracy"] = 1.5
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m map[string]any
			if err := json.Unmarshal([]byte(streamSpecJSON), &m); err != nil {
				t.Fatal(err)
			}
			tc.edit(m)
			raw, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Parse(raw); err == nil {
				t.Fatalf("accepted invalid spec (%s)", tc.name)
			}
		})
	}
}

func master0(m map[string]any) map[string]any {
	return m["design"].(map[string]any)["masters"].([]any)[0].(map[string]any)
}

func TestParseRejectsTrailingData(t *testing.T) {
	for _, tail := range []string{"]", "garbage", "{}", "null"} {
		if _, err := Parse([]byte(streamSpecJSON + tail)); err == nil {
			t.Fatalf("accepted spec with trailing %q", tail)
		}
	}
	// Trailing whitespace is fine.
	if _, err := Parse([]byte(streamSpecJSON + "\n\t \n")); err != nil {
		t.Fatalf("rejected trailing whitespace: %v", err)
	}
}

func TestCanonicalHashDeterministic(t *testing.T) {
	a := parseOK(t, streamSpecJSON)
	ha, err := a.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := parseOK(t, streamSpecJSON).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("same spec hashed differently: %s vs %s", ha, hb)
	}
	// Key order, whitespace, hex-vs-decimal addresses, the non-semantic
	// name, and explicitly-written defaults must not change the hash.
	reordered := `{
	  "run": {"cycles": 5000, "mode": "ALS", "sim_speed": 1e6,
	          "acc_speed": 1e7, "lob_depth": 64, "accuracy": 1},
	  "name": "renamed",
	  "design": {
	    "slaves": [{"kind": "sram", "region": {"hi": 524288, "lo": 0},
	                "name": "mem", "domain": "sim"}],
	    "masters": [{"generator": {"bits": 32, "burst": "incr8",
	                               "write": true,
	                               "window": {"hi": 262144, "lo": 0},
	                               "kind": "stream"},
	                 "domain": "acc", "name": "dma"}],
	    "owns_default": "sim"
	  }
	}`
	hc, err := parseOK(t, reordered).CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if hc != ha {
		t.Fatalf("equivalent spec hashed differently: %s vs %s", hc, ha)
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := parseOK(t, streamSpecJSON)
	h0, _ := base.CanonicalHash()
	edits := []func(*Spec){
		func(s *Spec) { s.Run.Cycles = 6000 },
		func(s *Spec) { s.Run.Mode = "sla" },
		func(s *Spec) { s.Run.LOBDepth = 128 },
		func(s *Spec) { s.Run.Accuracy = 0.9 },
		func(s *Spec) { s.Design.Masters[0].Generator.Write = false },
		func(s *Spec) { s.Design.Masters[0].Generator.Window.Hi = 0x20000 },
		func(s *Spec) { s.Design.Slaves[0].Domain = "acc"; s.Design.Masters[0].Domain = "sim" },
	}
	for i, edit := range edits {
		s := parseOK(t, streamSpecJSON)
		edit(s)
		h, err := s.CanonicalHash()
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if h == h0 {
			t.Fatalf("edit %d did not change the hash", i)
		}
	}
	// The fault seed is inert at accuracy 1 but meaningful below it.
	s := parseOK(t, streamSpecJSON)
	s.Run.FaultSeed = 99
	if h, _ := s.CanonicalHash(); h != h0 {
		t.Fatal("fault seed changed the hash of an organic-accuracy run")
	}
	s.Run.Accuracy = 0.9
	ha, _ := s.CanonicalHash()
	s.Run.FaultSeed = 100
	if hb, _ := s.CanonicalHash(); hb == ha {
		t.Fatal("fault seed ignored at pinned accuracy")
	}
}

func TestModeNames(t *testing.T) {
	want := map[string]core.Mode{
		"conservative": core.Conservative,
		"sla":          core.SLA,
		"als":          core.ALS,
		"auto":         core.Auto,
	}
	for name, mode := range want {
		if got := core.Mode(modeNames[name]); got != mode {
			t.Fatalf("modeNames[%q] = %v, want %v", name, got, mode)
		}
	}
	if len(modeNames) != len(want) {
		t.Fatalf("modeNames has %d entries, want %d", len(modeNames), len(want))
	}
}

func TestAllKindsCompile(t *testing.T) {
	src := `{
	  "design": {
	    "masters": [
	      {"name": "m-stream", "domain": "acc",
	       "generator": {"kind": "stream", "window": {"lo": 0, "hi": 4096}, "write": true, "burst": "INCR4"}},
	      {"name": "m-dma", "domain": "sim",
	       "generator": {"kind": "dma", "src": {"lo": 0, "hi": 4096}, "dst": {"lo": "0x8000", "hi": "0x9000"}, "burst": "INCR4", "gap": 2}},
	      {"name": "m-cpu", "domain": "sim",
	       "generator": {"kind": "cpu", "windows": [{"lo": 0, "hi": 4096}], "write_ratio": 0.5, "max_gap": 3, "seed": 7}},
	      {"name": "m-script", "domain": "acc",
	       "generator": {"kind": "script", "script": "W 0x100 INCR4 32\nR 0x100 INCR4 32"}}
	    ],
	    "slaves": [
	      {"name": "s-sram", "domain": "sim", "kind": "sram", "region": {"lo": 0, "hi": "0x2000"}},
	      {"name": "s-mem", "domain": "acc", "kind": "memory", "region": {"lo": "0x8000", "hi": "0xA000"}, "wait_first": 2, "wait_next": 1},
	      {"name": "s-jit", "domain": "sim", "kind": "jitter", "region": {"lo": "0xA000", "hi": "0xB000"}, "base": 1, "spread": 2, "seed": 3, "wait_first": 1, "wait_next": 1},
	      {"name": "s-retry", "domain": "acc", "kind": "retry", "region": {"lo": "0xB000", "hi": "0xC000"}, "waits": 1, "retry_every": 4},
	      {"name": "s-split", "domain": "sim", "kind": "split", "region": {"lo": "0xC000", "hi": "0xD000"}, "waits": 1, "split_every": 4, "release_after": 8, "wait_first": 1, "wait_next": 1},
	      {"name": "s-err", "domain": "acc", "kind": "error", "region": {"lo": "0xD000", "hi": "0xE000"}},
	      {"name": "s-irq", "domain": "acc", "kind": "irq", "region": {"lo": "0xF000", "hi": "0xF100"}, "irq_mask": 1, "wait_first": 1, "wait_next": 1}
	    ]
	  },
	  "run": {"mode": "auto", "cycles": 500}
	}`
	s := parseOK(t, src)
	d, cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Slaves[4].SplitCapable {
		t.Fatal("split slave not marked SplitCapable")
	}
	e, err := core.NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(s.Run.Cycles); err != nil {
		t.Fatal(err)
	}
}

func TestKindLists(t *testing.T) {
	gk := strings.Join(GeneratorKinds(), ",")
	if gk != "cpu,dma,script,stream" {
		t.Fatalf("generator kinds: %s", gk)
	}
	sk := strings.Join(SlaveKinds(), ",")
	if sk != "error,irq,jitter,memory,retry,split,sram" {
		t.Fatalf("slave kinds: %s", sk)
	}
}

func TestCycleBatchNormalizationAndHash(t *testing.T) {
	// Omitted cycle_batch normalizes to the engine default.
	s := parseOK(t, streamSpecJSON)
	n, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Run.CycleBatch != 64 {
		t.Fatalf("normalized cycle_batch = %d, want 64", n.Run.CycleBatch)
	}
	// The knob is host-side only: reports are bit-identical at every
	// setting, so it must not split the result cache.
	h0, _ := s.CanonicalHash()
	s1 := parseOK(t, streamSpecJSON)
	s1.Run.CycleBatch = 1
	h1, err := s1.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h0 {
		t.Fatal("cycle_batch changed the canonical hash")
	}
	// But it still reaches the compiled engine config.
	_, cfg, err := s1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CycleBatch != 1 {
		t.Fatalf("compiled CycleBatch = %d, want 1", cfg.CycleBatch)
	}
	// Negative values are rejected.
	bad := parseOK(t, streamSpecJSON)
	bad.Run.CycleBatch = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cycle_batch validated")
	}
}

func TestDeltaCadenceNormalizationAndHash(t *testing.T) {
	// Omitted delta_cadence normalizes to the engine default.
	s := parseOK(t, streamSpecJSON)
	n, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Run.DeltaCadence != 16 {
		t.Fatalf("normalized delta_cadence = %d, want 16", n.Run.DeltaCadence)
	}
	// The knob is host-side only: reports are bit-identical at every
	// cadence, so it must not split the result cache — and it hashes
	// as absent, so canonical hashes (and pre-existing store entries)
	// are unchanged from before the knob existed.
	h0, _ := s.CanonicalHash()
	s1 := parseOK(t, streamSpecJSON)
	s1.Run.DeltaCadence = 1
	h1, err := s1.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h0 {
		t.Fatal("delta_cadence changed the canonical hash")
	}
	// But it still reaches the compiled engine config.
	_, cfg, err := s1.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DeltaCadence != 1 {
		t.Fatalf("compiled DeltaCadence = %d, want 1", cfg.DeltaCadence)
	}
	// Negative values are rejected.
	bad := parseOK(t, streamSpecJSON)
	bad.Run.DeltaCadence = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative delta_cadence validated")
	}
}

func TestTraceKnobsHostOnlyAndHashExcluded(t *testing.T) {
	// The tracer is a host-side observer: reports are bit-identical
	// with and without it (pinned by the tracer differential test in
	// internal/core), so trace/trace_ring must not split the result
	// cache. Both hash as absent, so canonical hashes — and every entry
	// of a pre-existing persistent store — are unchanged from before
	// the knobs existed.
	h0, _ := parseOK(t, streamSpecJSON).CanonicalHash()
	s1 := parseOK(t, streamSpecJSON)
	s1.Run.Trace = true
	s1.Run.TraceRing = 4096
	h1, err := s1.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h0 {
		t.Fatal("trace knobs changed the canonical hash")
	}
	// Normalization preserves the knobs so the executing layer (which
	// attaches the recorder) still sees them.
	n, err := s1.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !n.Run.Trace || n.Run.TraceRing != 4096 {
		t.Fatalf("normalization dropped trace knobs: trace=%v ring=%d", n.Run.Trace, n.Run.TraceRing)
	}
	// Negative ring sizes are rejected.
	bad := parseOK(t, streamSpecJSON)
	bad.Run.TraceRing = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative trace_ring validated")
	}
}
