// Sweep grammar: a declarative parameter grid over a base spec.
//
// A sweep document is a normal run spec plus a "sweep" block naming
// axes — JSON paths into the spec ("run.accuracy",
// "design.masters[0].generator.gap") each with a value list. Expansion
// is the row-major cartesian product of the axes (the last axis varies
// fastest), and every expanded point is a complete, independently
// validated Spec with its own canonical hash — the unit the job
// service deduplicates, caches and persists on.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// MaxSweepPoints is the default expansion bound: a sweep whose axes
// multiply out beyond it is rejected at validation time (raise it per
// document with sweep.max_points).
const MaxSweepPoints = 1024

// Axis is one swept parameter: a JSON path into the spec plus the
// values the grid takes along that axis.
type Axis struct {
	// Field is a dot-separated JSON path into the spec document, with
	// [i] indexing for arrays: "run.accuracy", "run.lob_depth",
	// "design.masters[0].generator.gap", "design.slaves[1].wait_first".
	Field string `json:"field"`
	// Values are the JSON values the field takes, in sweep order.
	Values []json.RawMessage `json:"values"`
}

// Sweep is the grid block of a sweep document.
type Sweep struct {
	// Axes are expanded as a cartesian product in listed order; the
	// last axis varies fastest.
	Axes []Axis `json:"axes"`
	// MaxPoints overrides the MaxSweepPoints expansion bound (0 keeps
	// the default).
	MaxPoints int `json:"max_points,omitempty"`
}

// SweepSpec is a complete sweep document: a base run spec plus an
// optional parameter grid. Without a sweep block it expands to exactly
// its base spec, so every plain spec is also a valid sweep document.
type SweepSpec struct {
	Spec
	Sweep *Sweep `json:"sweep,omitempty"`
}

// ParseSweep decodes and validates a JSON sweep document. Unknown
// fields are errors, exactly as in Parse.
func ParseSweep(data []byte) (*SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var ss SweepSpec
	if err := dec.Decode(&ss); err != nil {
		return nil, fmt.Errorf("spec: parse sweep: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("spec: parse sweep: trailing data after sweep object")
	}
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	return &ss, nil
}

// LoadSweep reads and parses a sweep document file.
func LoadSweep(path string) (*SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	ss, err := ParseSweep(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return ss, nil
}

// Validate checks the base spec and the grid: every axis has a
// parseable field path and at least one value, no two axes name the
// same field, and the product of the axis lengths stays within the
// point bound. Per-point validity (an axis value that breaks the spec)
// is reported by Expand, which validates every expanded point.
func (ss *SweepSpec) Validate() error {
	if err := ss.Spec.Validate(); err != nil {
		return err
	}
	if ss.Sweep == nil {
		return nil
	}
	if len(ss.Sweep.Axes) == 0 {
		return fmt.Errorf("spec: sweep block has no axes")
	}
	if ss.Sweep.MaxPoints < 0 {
		return fmt.Errorf("spec: sweep: negative max_points")
	}
	seen := make(map[string]bool, len(ss.Sweep.Axes))
	points := 1
	bound := ss.Sweep.MaxPoints
	if bound == 0 {
		bound = MaxSweepPoints
	}
	for i, ax := range ss.Sweep.Axes {
		segs, err := parseFieldPath(ax.Field)
		if err != nil {
			return fmt.Errorf("spec: sweep axis %d: %w", i, err)
		}
		if seen[ax.Field] {
			return fmt.Errorf("spec: sweep axis %d: duplicate field %q", i, ax.Field)
		}
		seen[ax.Field] = true
		if len(segs) == 0 || segs[0].name == "sweep" || segs[0].name == "name" {
			return fmt.Errorf("spec: sweep axis %d: field %q is not sweepable", i, ax.Field)
		}
		if len(ax.Values) == 0 {
			return fmt.Errorf("spec: sweep axis %d (%s): no values", i, ax.Field)
		}
		for j, v := range ax.Values {
			if !json.Valid(v) {
				return fmt.Errorf("spec: sweep axis %d (%s): value %d is not valid JSON", i, ax.Field, j)
			}
		}
		if points > bound/len(ax.Values) {
			return fmt.Errorf("spec: sweep expands beyond %d points", bound)
		}
		points *= len(ax.Values)
	}
	return nil
}

// Points returns how many concrete specs the document expands to.
func (ss *SweepSpec) Points() int {
	n := 1
	if ss.Sweep != nil {
		for _, ax := range ss.Sweep.Axes {
			n *= len(ax.Values)
		}
	}
	return n
}

// Expand materializes the grid: one fully validated Spec per point, in
// deterministic row-major order (the last axis varies fastest). Each
// point's Name is the base name plus a "[field=value,...]" suffix, and
// each point hashes independently via CanonicalHash. A value that makes
// a point invalid fails the whole expansion with the offending point
// named.
func (ss *SweepSpec) Expand() ([]*Spec, error) {
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	if ss.Sweep == nil {
		base := ss.Spec
		return []*Spec{&base}, nil
	}

	// Work on the generic JSON form of the base spec so axis paths can
	// address any field uniformly; each point re-enters the strict
	// parser, which catches axis typos (unknown fields) and value-type
	// mismatches.
	baseJSON, err := json.Marshal(&ss.Spec)
	if err != nil {
		return nil, fmt.Errorf("spec: sweep: encode base: %w", err)
	}

	axes := ss.Sweep.Axes
	paths := make([][]pathSeg, len(axes))
	for i, ax := range axes {
		paths[i], _ = parseFieldPath(ax.Field) // validated above
	}

	total := ss.Points()
	points := make([]*Spec, 0, total)
	idx := make([]int, len(axes))
	for p := 0; p < total; p++ {
		var doc any
		if err := json.Unmarshal(baseJSON, &doc); err != nil {
			return nil, fmt.Errorf("spec: sweep: decode base: %w", err)
		}
		var label strings.Builder
		for a, ax := range axes {
			var val any
			if err := json.Unmarshal(ax.Values[idx[a]], &val); err != nil {
				return nil, fmt.Errorf("spec: sweep axis %s value %d: %w", ax.Field, idx[a], err)
			}
			if err := setPath(doc, paths[a], val); err != nil {
				return nil, fmt.Errorf("spec: sweep axis %s: %w", ax.Field, err)
			}
			if a > 0 {
				label.WriteByte(',')
			}
			fmt.Fprintf(&label, "%s=%s", ax.Field, compactJSON(ax.Values[idx[a]]))
		}
		name := fmt.Sprintf("%s[%s]", ss.Name, label.String())
		if m, ok := doc.(map[string]any); ok {
			m["name"] = name
		}
		enc, err := json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("spec: sweep point %s: encode: %w", name, err)
		}
		sp, err := Parse(enc)
		if err != nil {
			return nil, fmt.Errorf("spec: sweep point %s: %w", name, err)
		}
		points = append(points, sp)

		// Odometer increment: last axis fastest.
		for a := len(axes) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return points, nil
}

// compactJSON renders a raw value in its compact form for point labels.
func compactJSON(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return strings.TrimSpace(string(raw))
	}
	return buf.String()
}

// pathSeg is one step of a field path: a key, optionally followed by
// one or more array indices ("masters[0]").
type pathSeg struct {
	name    string
	indices []int
}

// parseFieldPath splits "design.masters[0].generator.gap" into typed
// segments.
func parseFieldPath(path string) ([]pathSeg, error) {
	if strings.TrimSpace(path) == "" {
		return nil, fmt.Errorf("empty field path")
	}
	parts := strings.Split(path, ".")
	segs := make([]pathSeg, 0, len(parts))
	for _, part := range parts {
		name := part
		var indices []int
		for {
			open := strings.IndexByte(name, '[')
			if open < 0 {
				break
			}
			rest := name[open:]
			name = name[:open]
			for rest != "" {
				if rest[0] != '[' {
					return nil, fmt.Errorf("field path %q: malformed index in %q", path, part)
				}
				close := strings.IndexByte(rest, ']')
				if close < 0 {
					return nil, fmt.Errorf("field path %q: unclosed index in %q", path, part)
				}
				n, err := strconv.Atoi(rest[1:close])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("field path %q: bad index %q", path, rest[1:close])
				}
				indices = append(indices, n)
				rest = rest[close+1:]
			}
			break
		}
		if name == "" {
			return nil, fmt.Errorf("field path %q: empty segment", path)
		}
		segs = append(segs, pathSeg{name: name, indices: indices})
	}
	return segs, nil
}

// setPath assigns val at the segment path inside a decoded JSON
// document. Maps and slices are reference types, so writing through
// the navigated containers mutates the document in place. Intermediate
// objects are created for missing map keys (an omitted optional field
// can still be swept); arrays are never grown.
func setPath(doc any, segs []pathSeg, val any) error {
	if len(segs) == 0 {
		return fmt.Errorf("empty path")
	}
	seg := segs[0]
	m, ok := doc.(map[string]any)
	if !ok {
		return fmt.Errorf("segment %q: parent is not an object", seg.name)
	}
	if len(seg.indices) == 0 {
		if len(segs) == 1 {
			m[seg.name] = val
			return nil
		}
		child, ok := m[seg.name]
		if !ok || child == nil {
			child = map[string]any{}
			m[seg.name] = child
		}
		return setPath(child, segs[1:], val)
	}
	cell, ok := m[seg.name]
	if !ok || cell == nil {
		return fmt.Errorf("segment %q: indexing a missing array", seg.name)
	}
	for ii, n := range seg.indices {
		arr, ok := cell.([]any)
		if !ok {
			return fmt.Errorf("segment %q: not an array", seg.name)
		}
		if n >= len(arr) {
			return fmt.Errorf("segment %q: index %d out of range (len %d)", seg.name, n, len(arr))
		}
		if ii == len(seg.indices)-1 {
			if len(segs) == 1 {
				arr[n] = val
				return nil
			}
			return setPath(arr[n], segs[1:], val)
		}
		cell = arr[n]
	}
	return fmt.Errorf("segment %q: unreachable index state", seg.name)
}
