package spec

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// sweepDoc builds a sweep document around the canonical stream design.
func sweepDoc(sweep string) string {
	base := `{
	  "name": "base",
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8"}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": "als", "cycles": 2000}`
	if sweep == "" {
		return base + "\n}"
	}
	return base + ",\n  \"sweep\": " + sweep + "\n}"
}

func TestSweepExpandGrid(t *testing.T) {
	doc := sweepDoc(`{"axes": [
		{"field": "run.accuracy", "values": [1, 0.9, 0.5]},
		{"field": "run.lob_depth", "values": [32, 64]}
	]}`)
	ss, err := ParseSweep([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Points() != 6 {
		t.Fatalf("Points() = %d, want 6", ss.Points())
	}
	points, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("expanded %d points, want 6", len(points))
	}
	// Row-major: the last axis (lob_depth) varies fastest.
	wantAcc := []float64{1, 1, 0.9, 0.9, 0.5, 0.5}
	wantLOB := []int{32, 64, 32, 64, 32, 64}
	hashes := make(map[string]int)
	for i, p := range points {
		if p.Run.Accuracy != wantAcc[i] || p.Run.LOBDepth != wantLOB[i] {
			t.Fatalf("point %d: accuracy=%v lob=%d, want %v/%d",
				i, p.Run.Accuracy, p.Run.LOBDepth, wantAcc[i], wantLOB[i])
		}
		if !strings.HasPrefix(p.Name, "base[") {
			t.Fatalf("point %d name %q lacks the base prefix", i, p.Name)
		}
		h, err := p.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := hashes[h]; dup {
			t.Fatalf("points %d and %d share hash %s", prev, i, h)
		}
		hashes[h] = i
	}
}

func TestSweepExpandDeterministic(t *testing.T) {
	doc := sweepDoc(`{"axes": [
		{"field": "run.accuracy", "values": [1, 0.9]},
		{"field": "design.masters[0].generator.gap", "values": [0, 8, 32]}
	]}`)
	ss, err := ParseSweep([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("expansions disagree on length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ha, _ := a[i].CanonicalHash()
		hb, _ := b[i].CanonicalHash()
		if ha != hb || a[i].Name != b[i].Name {
			t.Fatalf("point %d differs across expansions: %s/%s vs %s/%s",
				i, a[i].Name, ha, b[i].Name, hb)
		}
	}
}

func TestSweepGeneratorFieldReachesCompile(t *testing.T) {
	doc := sweepDoc(`{"axes": [
		{"field": "design.masters[0].generator.gap", "values": [0, 16]}
	]}`)
	ss, err := ParseSweep([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	points, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Design.Masters[0].Generator.Gap != 0 ||
		points[1].Design.Masters[0].Generator.Gap != 16 {
		t.Fatalf("generator gap not swept: %d/%d",
			points[0].Design.Masters[0].Generator.Gap,
			points[1].Design.Masters[0].Generator.Gap)
	}
	for _, p := range points {
		if _, _, err := p.Compile(); err != nil {
			t.Fatalf("point %s does not compile: %v", p.Name, err)
		}
	}
}

func TestPlainSpecIsASweepOfOne(t *testing.T) {
	ss, err := ParseSweep([]byte(sweepDoc("")))
	if err != nil {
		t.Fatal(err)
	}
	points, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("plain spec expanded to %d points", len(points))
	}
	hBase, _ := ss.Spec.CanonicalHash()
	hPoint, _ := points[0].CanonicalHash()
	if hBase != hPoint {
		t.Fatalf("single point hash %s differs from base %s", hPoint, hBase)
	}
}

func TestSweepRejections(t *testing.T) {
	cases := []struct {
		name  string
		sweep string
	}{
		{"no axes", `{"axes": []}`},
		{"empty values", `{"axes": [{"field": "run.accuracy", "values": []}]}`},
		{"duplicate field", `{"axes": [
			{"field": "run.accuracy", "values": [1]},
			{"field": "run.accuracy", "values": [0.5]}]}`},
		{"bad path", `{"axes": [{"field": "run..accuracy", "values": [1]}]}`},
		{"unsweepable name", `{"axes": [{"field": "name", "values": ["x"]}]}`},
		{"unsweepable sweep", `{"axes": [{"field": "sweep.axes", "values": [1]}]}`},
		{"too many points", fmt.Sprintf(`{"axes": [
			{"field": "run.accuracy", "values": [%s 1]},
			{"field": "run.lob_depth", "values": [%s 1]}]}`,
			strings.Repeat("0.5,", 40), strings.Repeat("8,", 40))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseSweep([]byte(sweepDoc(c.sweep))); err == nil {
				t.Fatalf("sweep %s accepted", c.sweep)
			}
		})
	}
}

func TestSweepBadPointValuesFailExpand(t *testing.T) {
	cases := []string{
		// Unknown field name: caught by the strict per-point re-parse.
		`{"axes": [{"field": "run.bogus_knob", "values": [1]}]}`,
		// Legal path, illegal value for the kind.
		`{"axes": [{"field": "run.accuracy", "values": [2.5]}]}`,
		// Array index out of range.
		`{"axes": [{"field": "design.masters[3].generator.gap", "values": [1]}]}`,
	}
	for _, sweep := range cases {
		ss, err := ParseSweep([]byte(sweepDoc(sweep)))
		if err != nil {
			continue // rejected even earlier, also fine
		}
		if _, err := ss.Expand(); err == nil {
			t.Fatalf("sweep %s expanded without error", sweep)
		}
	}
}

func TestSweepMaxPointsOverride(t *testing.T) {
	vals := make([]string, 1500)
	for i := range vals {
		vals[i] = fmt.Sprintf("%d", i+1)
	}
	axis := fmt.Sprintf(`{"axes": [{"field": "run.lob_depth", "values": [%s]}]`,
		strings.Join(vals, ","))
	if _, err := ParseSweep([]byte(sweepDoc(axis + "}"))); err == nil {
		t.Fatal("1500-point sweep accepted without a max_points override")
	}
	ss, err := ParseSweep([]byte(sweepDoc(axis + `, "max_points": 2000}`)))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Points() != 1500 {
		t.Fatalf("Points() = %d", ss.Points())
	}
}

func TestSweepDocRoundTripsThroughJSON(t *testing.T) {
	doc := sweepDoc(`{"axes": [{"field": "run.accuracy", "values": [1, 0.5]}]}`)
	ss, err := ParseSweep([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(ss)
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := ParseSweep(enc)
	if err != nil {
		t.Fatalf("re-parse of marshaled sweep doc: %v\n%s", err, enc)
	}
	a, _ := ss.Expand()
	b, _ := ss2.Expand()
	if len(a) != len(b) {
		t.Fatalf("round trip changed point count %d -> %d", len(a), len(b))
	}
	for i := range a {
		ha, _ := a[i].CanonicalHash()
		hb, _ := b[i].CanonicalHash()
		if ha != hb {
			t.Fatalf("round trip changed point %d hash", i)
		}
	}
}
