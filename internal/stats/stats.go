// Package stats provides the small statistical aggregates the experiment
// harness reports: streaming summaries (count/mean/min/max) and integer
// histograms (transition lengths, rollback distances, packet sizes).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a streaming aggregate over float64 observations.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the population standard deviation (0 when n < 2).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// String renders the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g", s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// Hist is an exact integer histogram.
type Hist struct {
	counts map[int]int64
	total  int64
}

// NewHist creates an empty histogram.
func NewHist() *Hist { return &Hist{counts: make(map[int]int64)} }

// Add records one observation of value v.
func (h *Hist) Add(v int) {
	h.counts[v]++
	h.total++
}

// N returns the observation count.
func (h *Hist) N() int64 { return h.total }

// Each calls fn once per distinct observed value in ascending order,
// with that value's occurrence count. It lets exporters re-bin the
// histogram without reaching into its representation.
func (h *Hist) Each(fn func(v int, count int64)) {
	for _, k := range h.sortedKeys() {
		fn(k, h.counts[k])
	}
}

// Count returns the occurrences of value v.
func (h *Hist) Count(v int) int64 { return h.counts[v] }

// Mean returns the mean value.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.counts {
		s += float64(v) * float64(c)
	}
	return s / float64(h.total)
}

// Quantile returns the q-quantile (q in [0,1]) by exact counting.
func (h *Hist) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	keys := h.sortedKeys()
	target := int64(q * float64(h.total-1))
	var seen int64
	for _, k := range keys {
		seen += h.counts[k]
		if seen > target {
			return k
		}
	}
	return keys[len(keys)-1]
}

func (h *Hist) sortedKeys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// String renders "value:count" pairs in ascending value order.
func (h *Hist) String() string {
	var b strings.Builder
	for i, k := range h.sortedKeys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, h.counts[k])
	}
	return b.String()
}
