package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 6} {
		s.Add(v)
	}
	if s.N() != 3 || s.Mean() != 4 || s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("summary %v", s.String())
	}
	want := math.Sqrt((4.0 + 0 + 4.0) / 3.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", s.StdDev(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary must be all zeros")
	}
}

func TestHistCountsAndMean(t *testing.T) {
	h := NewHist()
	for _, v := range []int{1, 1, 2, 8} {
		h.Add(v)
	}
	if h.N() != 4 || h.Count(1) != 2 || h.Count(5) != 0 {
		t.Fatal("counts wrong")
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if got := h.String(); !strings.Contains(got, "1:2") || !strings.Contains(got, "8:1") {
		t.Fatalf("string %q", got)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %d", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q1 = %d", q)
	}
	med := h.Quantile(0.5)
	if med < 49 || med > 51 {
		t.Errorf("median = %d", med)
	}
	if NewHist().Quantile(0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	// Out-of-range q clamps.
	if h.Quantile(2) != 100 || h.Quantile(-1) != 1 {
		t.Error("quantile clamping")
	}
}

// Property: min <= mean <= max and quantiles are monotone.
func TestSummaryHistProperties(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		h := NewHist()
		for _, v := range raw {
			s.Add(float64(v))
			h.Add(int(v))
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		prev := h.Quantile(0)
		for _, q := range []float64{0.25, 0.5, 0.75, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
