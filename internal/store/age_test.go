package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// backdate pushes a file's mtime (the persisted recency) into the past.
func backdate(t *testing.T, path string, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAgeEvictsOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	fresh, old1, old2 := key("fresh"), key("old1"), key("old2")
	for _, k := range []string{fresh, old1, old2} {
		if err := s.Put(k, []byte("payload-"+k[:4])); err != nil {
			t.Fatal(err)
		}
	}
	backdate(t, s.path(old1), 2*time.Hour)
	backdate(t, s.path(old2), 3*time.Hour)

	s2, err := Open(dir, Options{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store kept %d entries, want only the fresh one", s2.Len())
	}
	if _, ok := s2.Get(fresh); !ok {
		t.Fatal("fresh entry lost to the age bound")
	}
	if _, ok := s2.Get(old1); ok {
		t.Fatal("expired entry served")
	}
	if _, err := os.Stat(s2.path(old2)); !os.IsNotExist(err) {
		t.Fatal("expired entry file not deleted")
	}
	if st := s2.Stats(); st.AgeEvictions != 2 {
		t.Fatalf("AgeEvictions = %d, want 2", st.AgeEvictions)
	}
}

func TestMaxAgeEvictsLiveEntryOnGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxAge: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	k := key("short-lived")
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("entry missing immediately after Put")
	}
	time.Sleep(60 * time.Millisecond)
	// Still asked for, but past the age bound: deleted, not served.
	if _, ok := s.Get(k); ok {
		t.Fatal("expired entry served")
	}
	if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
		t.Fatal("expired entry file not deleted")
	}
	st := s.Stats()
	if st.AgeEvictions != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v, want 1 age eviction and 0 entries", st)
	}
}

func TestMaxAgeRejectsStaleSiblingEntry(t *testing.T) {
	// An aged store must not adopt a sibling-written entry whose mtime
	// is already past the bound: the disk-probe path enforces age too.
	dir := t.TempDir()
	aged, err := Open(dir, Options{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	sibling := open(t, dir, 0)
	k := key("stale-sibling")
	if err := sibling.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	backdate(t, sibling.path(k), 2*time.Hour)

	if _, ok := aged.Get(k); ok {
		t.Fatal("stale sibling entry served through the aged store")
	}
	if st := aged.Stats(); st.AgeEvictions != 1 {
		t.Fatalf("AgeEvictions = %d, want 1", st.AgeEvictions)
	}
}

// plantQuarantine drops a fake quarantined file of the given size and
// age into a store directory.
func plantQuarantine(t *testing.T, dir, label string, size int, age time.Duration) string {
	t.Helper()
	qdir := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(qdir, key(label)+".json")
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	backdate(t, path, age)
	return path
}

func TestQuarantineSweptByAgeOnOpen(t *testing.T) {
	dir := t.TempDir()
	oldPath := plantQuarantine(t, dir, "old-evidence", 64, 2*time.Hour)
	freshPath := plantQuarantine(t, dir, "fresh-evidence", 64, time.Minute)

	s, err := Open(dir, Options{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldPath); !os.IsNotExist(err) {
		t.Fatal("expired quarantine file survived Open")
	}
	if _, err := os.Stat(freshPath); err != nil {
		t.Fatal("fresh quarantine file swept")
	}
	if st := s.Stats(); st.QuarantineSwept != 1 {
		t.Fatalf("QuarantineSwept = %d, want 1", st.QuarantineSwept)
	}
}

func TestQuarantineSweptByBytes(t *testing.T) {
	// Repeated corruption faults pile files into quarantine/; the byte
	// budget must hold there too, oldest evidence discarded first.
	dir := t.TempDir()
	oldest := plantQuarantine(t, dir, "q-oldest", 400, 3*time.Hour)
	middle := plantQuarantine(t, dir, "q-middle", 400, 2*time.Hour)
	newest := plantQuarantine(t, dir, "q-newest", 400, time.Minute)

	s, err := Open(dir, Options{MaxBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldest); !os.IsNotExist(err) {
		t.Fatal("oldest quarantine file kept though the total was over budget")
	}
	if _, err := os.Stat(middle); err != nil {
		t.Fatal("quarantine sweep removed more than needed")
	}
	if _, err := os.Stat(newest); err != nil {
		t.Fatal("newest quarantine file swept")
	}
	if st := s.Stats(); st.QuarantineSwept != 1 {
		t.Fatalf("QuarantineSwept = %d, want 1", st.QuarantineSwept)
	}
}

func TestQuarantineSweepRunsOnCorruption(t *testing.T) {
	dir := t.TempDir()
	// Old oversized evidence already sits in quarantine; the next
	// corruption event must trigger a sweep that clears it.
	oldPath := plantQuarantine(t, dir, "stale-evidence", 2000, 2*time.Hour)

	s, err := Open(dir, Options{MaxBytes: 1 << 20, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Opening already sweeps; re-plant to test the corruption path.
	if _, statErr := os.Stat(oldPath); !os.IsNotExist(statErr) {
		t.Fatal("Open did not sweep the stale quarantine file")
	}
	oldPath = plantQuarantine(t, dir, "stale-evidence-2", 2000, 2*time.Hour)

	k := key("to-corrupt")
	if err := s.Put(k, []byte(`{"report":"x"}`)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(s.path(k), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	if _, statErr := os.Stat(oldPath); !os.IsNotExist(statErr) {
		t.Fatal("quarantining new evidence did not sweep the stale file")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.QuarantineSwept != 2 {
		t.Fatalf("stats %+v, want 1 quarantined and 2 swept", st)
	}
	// The fresh evidence itself survives (within both budgets).
	if _, statErr := os.Stat(filepath.Join(dir, quarantineDir, k+".json")); statErr != nil {
		t.Fatal("fresh quarantine evidence swept")
	}
}
