package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coemu/internal/faultplan"
)

// corrupt rewrites the stored file for key with raw bytes, bypassing
// Put — the torn or bit-flipped entry a crash or bad disk would leave.
func corrupt(t *testing.T, s *Store, k string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(s.path(k), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumMismatchQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	k := key("poisoned")
	if err := s.Put(k, []byte(`{"report": 1}`)); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes but keep the old trailer: the content hash no
	// longer matches.
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	corrupt(t, s, k, raw)

	if _, ok := s.Get(k); ok {
		t.Fatal("served a checksum-mismatched entry")
	}
	if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still at its path: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, k+".json")); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v, want 1 quarantined / 0 entries", st)
	}
	// The key is reusable: a fresh Put of the true content serves again.
	if err := s.Put(k, []byte(`{"report": 1}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || string(got) != `{"report": 1}` {
		t.Fatalf("Get after re-Put = %q/%v", got, ok)
	}
}

func TestTruncatedFileQuarantines(t *testing.T) {
	for _, tc := range []struct {
		name string
		cut  func(raw []byte) []byte
	}{
		{"below trailer length", func(raw []byte) []byte { return raw[:10] }},
		{"mid-trailer", func(raw []byte) []byte { return raw[:len(raw)-20] }},
		{"empty", func([]byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, t.TempDir(), 0)
			k := key("torn-" + tc.name)
			if err := s.Put(k, []byte(`{"report": 2}`)); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(s.path(k))
			if err != nil {
				t.Fatal(err)
			}
			corrupt(t, s, k, tc.cut(raw))
			if _, ok := s.Get(k); ok {
				t.Fatal("served a truncated entry")
			}
			if got := s.Stats().Quarantined; got != 1 {
				t.Fatalf("quarantined = %d, want 1", got)
			}
		})
	}
}

func TestSiblingRecoversFromCorruptEntry(t *testing.T) {
	// Two stores over one directory, as two coemud processes would be.
	// One sibling's entry is corrupted on disk; the other must detect
	// it on read, quarantine it, and accept a clean rewrite — the
	// recovery path the chaos suite leans on when daemons share a
	// store.
	dir := t.TempDir()
	a := open(t, dir, 0)
	b := open(t, dir, 0)
	k := key("shared-corrupt")
	if err := a.Put(k, []byte("good")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, a, k, []byte("torn-garbage"))

	if _, ok := b.Get(k); ok {
		t.Fatal("sibling served the corrupt entry")
	}
	if err := a.Put(k, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Get(k); !ok || string(got) != "good" {
		t.Fatalf("sibling Get after recovery = %q/%v", got, ok)
	}
	// Quarantine moved the file once; the sibling that re-read after
	// the rewrite must not double-count.
	if got := b.Stats().Quarantined; got != 1 {
		t.Fatalf("sibling quarantined = %d, want 1", got)
	}
}

func TestOpenSkipsQuarantineAndSweepsTmp(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	k := key("to-quarantine")
	if err := s.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, k, []byte("bad"))
	if _, ok := s.Get(k); ok {
		t.Fatal("served corrupt entry")
	}

	// A fresh orphan (crashed writer moments ago) and a stale one.
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(sub, "."+key("f")+".tmp-123")
	stale := filepath.Join(sub, "."+key("s")+".tmp-456")
	for _, p := range []string{fresh, stale} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if s2.Len() != 0 {
		t.Fatalf("reopened store indexed %d entries; quarantined files must stay out", s2.Len())
	}
	if got := s2.Stats().TmpSwept; got != 1 {
		t.Fatalf("tmp_swept = %d, want 1 (stale only)", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale orphan survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file swept within the grace period: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, k+".json")); err != nil {
		t.Fatalf("quarantined file missing after reopen: %v", err)
	}
}

func TestInjectedWriteError(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		Faults:    &faultplan.StoreFault{WriteError: 1},
		FaultSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := key("doomed")
	if err := s.Put(k, []byte("x")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("Put err = %v, want ErrInjectedWrite", err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("entry exists after injected write error")
	}
}

func TestInjectedTornWriteIsQuarantinedOnRead(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		Faults:    &faultplan.StoreFault{TornWrite: 1},
		FaultSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := key("half-written")
	if err := s.Put(k, []byte(`{"report": 3}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("served a torn write")
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
}

func TestFaultsAreSeededDeterministic(t *testing.T) {
	outcomes := func(seed uint64) []bool {
		s, err := Open(t.TempDir(), Options{
			Faults:    &faultplan.StoreFault{WriteError: 0.5},
			FaultSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var res []bool
		for i := 0; i < 32; i++ {
			err := s.Put(key2(t, i), []byte("x"))
			res = append(res, errors.Is(err, ErrInjectedWrite))
		}
		return res
	}
	a, b := outcomes(11), outcomes(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at Put %d", i)
		}
	}
}

// key2 derives a distinct canonical key from an index.
func key2(t *testing.T, i int) string {
	t.Helper()
	return key(string(rune('a'+i)) + "-det")
}
