// Package store is the persistent, content-addressed result store of
// the job service: canonical spec hash → canonical report bytes, on
// disk. It is the write-through layer under internal/service's
// in-memory LRU — a coemud restart (or a sibling process pointed at
// the same directory) serves previously computed runs without an
// engine run, with the exact bytes the original run produced.
//
// Layout: <dir>/<hh>/<hash>.json, where hh is the first two hex digits
// of the 64-hex-digit sha256 key (one fanout level keeps directories
// small at six-figure entry counts). Writes are atomic — a temp file
// in the same directory, fsynced and renamed over the final path — so
// a crashed or concurrent writer can never leave a torn entry, and
// concurrent writers of the same key converge on identical content
// (keys are content addresses).
//
// Every file carries a content-hash trailer (a newline plus the hex
// sha256 of the payload). Get verifies it before serving: an entry
// whose bytes do not match — torn by a crash, flipped by the disk, or
// injected by a fault plan — is quarantined under <dir>/quarantine/
// and reported as a miss, never served. Orphaned temp files older than
// a grace period are swept on Open.
//
// The store is LRU-bounded by entry count and bytes, and optionally by
// age: entries unused for longer than Options.MaxAge are deleted
// instead of served, so a long-lived fleet's shared store does not
// grow without bound. Recency survives restarts through file
// modification times: Get touches the entry's mtime, Open rebuilds the
// recency order from the directory scan. The quarantine directory is
// swept under the same byte/age budgets so repeated corruption faults
// cannot fill the disk.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"coemu/internal/faultplan"
	"coemu/internal/rng"
)

// DefaultMaxEntries bounds the store when Options.MaxEntries is 0.
const DefaultMaxEntries = 4096

// ErrBadKey is returned for keys that are not 64-digit lowercase hex
// strings (the canonical sha256 form); the restriction keeps keys safe
// to use as file names.
var ErrBadKey = errors.New("store: key is not a canonical sha256 hex string")

// ErrInjectedWrite is the error an active fault plan's write_error
// injection returns from Put; callers see a failed write with the
// disk untouched.
var ErrInjectedWrite = errors.New("store: injected write error (fault plan)")

// quarantineDir is the subdirectory corrupt entries are moved to.
const quarantineDir = "quarantine"

// trailerLen is the on-disk overhead of the content-hash trailer: a
// newline plus the 64-hex-digit sha256 of the payload.
const trailerLen = 1 + 64

// tmpSweepAge is how old an orphaned temp file must be before Open
// deletes it. The grace period keeps a live sibling's in-flight write
// safe from a concurrently starting process.
const tmpSweepAge = time.Hour

// Options configures Open.
type Options struct {
	// MaxEntries bounds the store's entry count; the least recently
	// used entries are evicted past it. 0 selects DefaultMaxEntries;
	// negative means unbounded.
	MaxEntries int
	// MaxBytes bounds the total size of stored payloads on disk; the
	// least recently used entries are evicted until the total fits.
	// 0 or negative means unbounded (the entry bound still applies).
	// Sizes count payload bytes (the content-hash trailer is
	// excluded), not filesystem block or inode overhead.
	MaxBytes int64
	// MaxAge bounds how long an entry may sit unused: entries whose
	// recency timestamp (file mtime; refreshed by every Get) is older
	// are deleted instead of served. 0 or negative means no age bound.
	MaxAge time.Duration
	// Faults, when non-nil, injects write faults (failed and torn
	// writes) per its probabilities, driven by FaultSeed. Chaos
	// testing only; nil injects nothing.
	Faults *faultplan.StoreFault
	// FaultSeed seeds the write-fault stream.
	FaultSeed uint64
}

// Stats is a point-in-time snapshot of the store's counters. Hits and
// misses count Get outcomes, Puts successful writes, Evictions entries
// removed by the LRU bounds (entry count or total bytes),
// AgeEvictions entries removed past Options.MaxAge, Quarantined
// entries moved aside after failing content verification,
// QuarantineSwept quarantined files deleted by the byte/age sweep,
// TmpSwept orphaned temp files deleted on Open.
type Stats struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Puts            int64 `json:"puts"`
	Evictions       int64 `json:"evictions"`
	AgeEvictions    int64 `json:"age_evictions"`
	Quarantined     int64 `json:"quarantined"`
	QuarantineSwept int64 `json:"quarantine_swept"`
	TmpSwept        int64 `json:"tmp_swept"`
	Entries         int   `json:"entries"`
	Bytes           int64 `json:"bytes"`
}

// Store is a content-addressed on-disk result store. All methods are
// safe for concurrent use.
type Store struct {
	dir      string
	max      int
	maxBytes int64
	maxAge   time.Duration
	faults   *faultplan.StoreFault

	mu    sync.Mutex
	byKey map[string]*entry
	order []*entry // index 0 = least recently used
	bytes int64    // total payload bytes of indexed entries
	stats Stats
	frng  *rng.Source // write-fault stream; nil without faults
}

// entry tracks one stored key with its payload size and recency rank.
type entry struct {
	key  string
	size int64
	used time.Time
}

// Open creates (if needed) and indexes a store rooted at dir. Existing
// entries are adopted with their file mtimes as recency; unreadable or
// misnamed files are ignored, quarantined entries are skipped, and
// orphaned temp files older than a grace period are deleted. Opening
// the same directory from several processes is safe: writes are
// atomic and reads fall back to disk on index misses, so siblings see
// each other's results.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := (&faultplan.Plan{Store: opts.Faults}).Validate(); err != nil {
		return nil, err
	}
	max := opts.MaxEntries
	if max == 0 {
		max = DefaultMaxEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, max: max, maxBytes: opts.MaxBytes, maxAge: opts.MaxAge, byKey: make(map[string]*entry)}
	if opts.Faults != nil {
		s.faults = opts.Faults
		s.frng = rng.New(faultplan.Mix(opts.FaultSeed, 0x5704e))
	}
	now := time.Now()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil //nolint:nilerr // skip unreadable subtrees, index the rest
		}
		if d.IsDir() {
			if d.Name() == quarantineDir && filepath.Dir(path) == dir {
				return fs.SkipDir // quarantined entries stay out of the index
			}
			return nil
		}
		if isTmpFile(d.Name()) {
			// A crashed writer's orphan. Live siblings rename their temp
			// files within moments, so anything past the grace period is
			// garbage.
			if info, err := d.Info(); err == nil && now.Sub(info.ModTime()) > tmpSweepAge {
				if os.Remove(path) == nil {
					s.stats.TmpSwept++
				}
			}
			return nil
		}
		key, ok := keyOfFile(d.Name())
		if !ok {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		size := info.Size() - trailerLen
		if size < 0 {
			size = 0 // truncated below the trailer; Get will quarantine it
		}
		e := &entry{key: key, size: size, used: info.ModTime()}
		s.byKey[key] = e
		s.order = append(s.order, e)
		s.bytes += e.size
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i].used.Before(s.order[j].used) })
	s.mu.Lock()
	s.evictLocked()
	s.stats.Evictions = 0 // adoption trimming is not an eviction
	s.sweepQuarantineLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the bytes stored under key and marks the entry most
// recently used. The entry's content-hash trailer is verified first:
// an entry whose bytes do not match is quarantined and reported as a
// miss. An index miss probes the disk before reporting a miss so
// results written by sibling processes are found.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, indexed := s.byKey[key]
	if indexed && s.expired(time.Now(), e.used) {
		// Past the age bound: delete instead of serve — the age GC must
		// hold even for keys that are still asked for.
		s.dropLocked(e)
		_ = os.Remove(s.path(key))
		s.stats.AgeEvictions++
		s.stats.Misses++
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		// The file is gone (pruned externally, or never existed): drop
		// any stale index entry and report a miss.
		if indexed {
			s.dropLocked(e)
		}
		s.stats.Misses++
		return nil, false
	}
	data, ok := verifyTrailer(raw)
	if !ok {
		// Torn, truncated, or bit-flipped: move the evidence aside and
		// miss, so the service recomputes instead of serving garbage.
		s.quarantineLocked(key)
		if indexed {
			s.dropLocked(e)
		}
		s.stats.Misses++
		return nil, false
	}
	if !indexed {
		if s.maxAge > 0 {
			// A sibling-written entry carries its recency in its mtime;
			// respect the age bound before adopting it.
			if info, serr := os.Stat(s.path(key)); serr == nil && s.expired(time.Now(), info.ModTime()) {
				_ = os.Remove(s.path(key))
				s.stats.AgeEvictions++
				s.stats.Misses++
				return nil, false
			}
		}
		if s.maxBytes > 0 && int64(len(data)) > s.maxBytes {
			// A sibling (with a different budget) wrote a payload larger
			// than this store's whole byte bound: serve it but do not
			// adopt it — indexing it would evict every other entry, the
			// same wipe Put's admission guard prevents.
			s.stats.Hits++
			return data, true
		}
		e = &entry{key: key, size: int64(len(data))}
		s.byKey[key] = e
		s.order = append(s.order, e)
		s.bytes += e.size
	}
	s.touchLocked(e)
	s.stats.Hits++
	if !indexed {
		// Disk-probe adoption (a sibling process wrote the entry) must
		// enforce the bounds too, or a store-hit-only workload never
		// trims the directory back under budget.
		s.evictLocked()
	}
	return data, true
}

// Put stores data under key, atomically and durably (the temp file is
// fsynced before the rename), and marks the entry most recently used.
// The payload is written with its content-hash trailer so Get can
// verify it. Storing an existing key refreshes its recency (the
// content is already equal by construction: keys are content
// addresses). A payload larger than the whole byte budget is not
// admitted at all — admitting it would evict every other entry and
// still leave the store over budget.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return ErrBadKey
	}
	if s.maxBytes > 0 && int64(len(data)) > s.maxBytes {
		s.mu.Lock()
		if e, ok := s.byKey[key]; ok {
			s.dropLocked(e)
			_ = os.Remove(s.path(key))
		}
		s.mu.Unlock()
		return nil
	}
	framed := withTrailer(data)
	torn := false
	if s.faults != nil {
		s.mu.Lock()
		inject := s.frng.Bool(s.faults.WriteError)
		torn = s.frng.Bool(s.faults.TornWrite)
		s.mu.Unlock()
		if inject {
			return ErrInjectedWrite
		}
		if torn {
			// A torn write persists only a prefix — what a crash between
			// write and fsync would leave without the atomic rename. The
			// trailer check quarantines it on first read.
			framed = framed[:len(framed)/2]
		}
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	// Durability: the data must be on stable storage before the rename
	// makes it visible, or a power loss could publish a torn entry.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Dir(path))

	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byKey[key]
	if !ok {
		e = &entry{key: key}
		s.byKey[key] = e
		s.order = append(s.order, e)
	}
	s.bytes += int64(len(data)) - e.size
	e.size = int64(len(data))
	s.touchLocked(e)
	s.stats.Puts++
	s.evictLocked()
	return nil
}

// Bytes returns the total payload bytes of indexed entries.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Stats snapshots the store's counters. Age-expired entries are
// collected first so the snapshot reflects the bound.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(time.Now())
	st := s.stats
	st.Entries = len(s.byKey)
	st.Bytes = s.bytes
	return st
}

// path maps a key to its sharded file path.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// quarantineLocked moves the entry file for key into the quarantine
// subdirectory (or deletes it if the move fails) so it is never served
// again but remains available for post-mortem inspection.
func (s *Store) quarantineLocked(key string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		_ = os.Remove(s.path(key))
	} else if err := os.Rename(s.path(key), filepath.Join(qdir, key+".json")); err != nil {
		_ = os.Remove(s.path(key))
	}
	s.stats.Quarantined++
	s.sweepQuarantineLocked()
}

// sweepQuarantineLocked bounds the quarantine directory by the same
// age and byte budgets as live entries, oldest files first, so
// repeated corruption faults cannot fill the disk. Quarantined files
// are dead evidence, not served data, so they get their own copy of
// the byte budget (sizes here are raw file sizes, trailer included)
// rather than competing with live entries for it.
func (s *Store) sweepQuarantineLocked() {
	if s.maxAge <= 0 && s.maxBytes <= 0 {
		return
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	dirents, err := os.ReadDir(qdir)
	if err != nil {
		return
	}
	type qfile struct {
		path string
		size int64
		mod  time.Time
	}
	files := make([]qfile, 0, len(dirents))
	var total int64
	now := time.Now()
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		info, ierr := de.Info()
		if ierr != nil {
			continue
		}
		files = append(files, qfile{filepath.Join(qdir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, qf := range files {
		expired := s.maxAge > 0 && now.Sub(qf.mod) > s.maxAge
		over := s.maxBytes > 0 && total > s.maxBytes
		if !expired && !over {
			// Sorted oldest first: everything after is newer still, and
			// the total already fits.
			break
		}
		if os.Remove(qf.path) == nil {
			total -= qf.size
			s.stats.QuarantineSwept++
		}
	}
}

// expired reports whether a recency timestamp is past the age bound.
func (s *Store) expired(now, used time.Time) bool {
	return s.maxAge > 0 && now.Sub(used) > s.maxAge
}

// expireLocked deletes entries unused for longer than MaxAge, oldest
// first (the order slice is recency-sorted, so the scan stops at the
// first survivor).
func (s *Store) expireLocked(now time.Time) {
	for len(s.order) > 0 && s.expired(now, s.order[0].used) {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.byKey, victim.key)
		s.bytes -= victim.size
		_ = os.Remove(s.path(victim.key))
		s.stats.AgeEvictions++
	}
}

// touchLocked moves e to the most-recently-used end and persists the
// recency in the file mtime (best effort — recency is advisory).
func (s *Store) touchLocked(e *entry) {
	e.used = time.Now()
	for i, o := range s.order {
		if o == e {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), e)
			_ = os.Chtimes(s.path(e.key), e.used, e.used)
			return
		}
	}
	s.order = append(s.order, e)
	_ = os.Chtimes(s.path(e.key), e.used, e.used)
}

// dropLocked removes e from the index without touching the disk.
func (s *Store) dropLocked(e *entry) {
	delete(s.byKey, e.key)
	s.bytes -= e.size
	for i, o := range s.order {
		if o == e {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// evictLocked enforces the age, entry, and byte bounds, deleting
// age-expired entries first and then the least recently used files
// until both size bounds fit.
func (s *Store) evictLocked() {
	s.expireLocked(time.Now())
	over := func() bool {
		if s.max >= 0 && len(s.order) > s.max {
			return true
		}
		return s.maxBytes > 0 && s.bytes > s.maxBytes && len(s.order) > 0
	}
	for over() {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.byKey, victim.key)
		s.bytes -= victim.size
		_ = os.Remove(s.path(victim.key))
		s.stats.Evictions++
	}
}

// withTrailer appends the content-hash trailer to a payload copy.
func withTrailer(data []byte) []byte {
	sum := sha256.Sum256(data)
	framed := make([]byte, 0, len(data)+trailerLen)
	framed = append(framed, data...)
	framed = append(framed, '\n')
	return hex.AppendEncode(framed, sum[:])
}

// verifyTrailer splits a stored file into payload and trailer and
// checks the content hash, reporting whether the payload is intact.
func verifyTrailer(raw []byte) ([]byte, bool) {
	if len(raw) < trailerLen || raw[len(raw)-trailerLen] != '\n' {
		return nil, false
	}
	data := raw[:len(raw)-trailerLen]
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != string(raw[len(raw)-trailerLen+1:]) {
		return nil, false
	}
	return data, true
}

// syncDir fsyncs a directory so a rename within it is durable. Best
// effort: some filesystems reject directory fsync, and losing only
// recency-of-visibility is acceptable there.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// isTmpFile reports whether name looks like one of Put's in-flight
// temp files (".<hash>.tmp-<random>").
func isTmpFile(name string) bool {
	return strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-")
}

// validKey reports whether key is a canonical 64-digit lowercase hex
// sha256 string.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// keyOfFile extracts the key from a store file name ("<hash>.json").
func keyOfFile(name string) (string, bool) {
	key, ok := strings.CutSuffix(name, ".json")
	if !ok || !validKey(key) {
		return "", false
	}
	return key, true
}
